// pdc-bench regenerates the paper's evaluation figures against the
// synthetic workloads.
//
// Usage:
//
//	pdc-bench -fig all                 # every figure + ablations
//	pdc-bench -fig 3 -logn 22          # Fig. 3 at 4M particles
//	pdc-bench -fig 6 -servers 64       # scalability sweep
//	pdc-bench -fig 5 -boss 50000       # BOSS experiment
//
// Times are modeled (virtual) seconds from the deterministic cost model;
// see DESIGN.md for the calibration and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pdcquery/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6, ablations, concurrent, scaleout, plancache, or all (scaleout and plancache only by name)")
	flag.IntVar(&cfg.LogN, "logn", cfg.LogN, "VPIC scale: 2^logn particles")
	flag.IntVar(&cfg.Servers, "servers", cfg.Servers, "PDC server count for Figs. 3-5")
	flag.IntVar(&cfg.BOSSObjects, "boss", cfg.BOSSObjects, "BOSS object count for Fig. 5")
	flag.IntVar(&cfg.FluxLen, "flux", cfg.FluxLen, "flux samples per BOSS object")
	flag.IntVar(&cfg.RegionSteps, "steps", cfg.RegionSteps, "region sizes to sweep in Fig. 3 (max 6)")
	flag.BoolVar(&cfg.Verify, "verify", false, "cross-check every result against a brute-force oracle")
	flag.IntVar(&cfg.Concurrency, "concurrency", cfg.Concurrency, "client sessions for the concurrent-clients experiment")
	seed := flag.Uint64("seed", cfg.Seed, "dataset seed")
	csvDir := flag.String("csv", "", "also write each figure's rows as CSV files under this directory")
	faults := flag.Bool("faults", false, "also run the fault-recovery overhead experiment (seeded connection drops vs a clean run)")
	flag.Parse()
	cfg.Seed = *seed

	run := func(name string, f func()) {
		switch *fig {
		case "all", name:
			f()
		}
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdc-bench:", err)
			os.Exit(1)
		}
	}
	writeCSV := func(name string, emit func(io.Writer)) {
		if *csvDir == "" {
			return
		}
		fail(os.MkdirAll(*csvDir, 0o755))
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		fail(err)
		emit(f)
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "pdc-bench: wrote %s\n", path)
	}
	ran := false
	run("3", func() {
		rows, err := bench.Fig3Run(cfg)
		fail(err)
		bench.Fig3Print(os.Stdout, rows)
		bench.Fig3Speedups(os.Stdout, rows)
		writeCSV("fig3.csv", func(w io.Writer) { bench.Fig3CSV(w, rows) })
		ran = true
	})
	run("4", func() {
		rows, err := bench.Fig4Run(cfg)
		fail(err)
		bench.Fig4Print(os.Stdout, rows)
		writeCSV("fig4.csv", func(w io.Writer) { bench.Fig4CSV(w, rows) })
		ran = true
	})
	run("5", func() {
		rows, err := bench.Fig5Run(cfg)
		fail(err)
		bench.Fig5Print(os.Stdout, rows)
		writeCSV("fig5.csv", func(w io.Writer) { bench.Fig5CSV(w, rows) })
		ran = true
	})
	run("6", func() {
		rows, err := bench.Fig6Run(cfg)
		fail(err)
		bench.Fig6Print(os.Stdout, rows)
		writeCSV("fig6.csv", func(w io.Writer) { bench.Fig6CSV(w, rows) })
		ran = true
	})
	run("ablations", func() { fail(bench.Ablations(os.Stdout, cfg)); ran = true })
	// The scale-out figure boots real clusters (catalog + members), so it
	// runs only when asked for by name, not under "all".
	if *fig == "scaleout" {
		rows, err := bench.ScaleoutRun(cfg)
		fail(err)
		bench.ScaleoutPrint(os.Stdout, rows)
		writeCSV("scaleout.csv", func(w io.Writer) { bench.ScaleoutCSV(w, rows) })
		f, err := os.Create("BENCH_scaleout.json")
		fail(err)
		fail(bench.ScaleoutJSON(f, rows))
		fail(f.Close())
		fmt.Fprintln(os.Stderr, "pdc-bench: wrote BENCH_scaleout.json")
		ran = true
	}
	// The plan-cache figure, like scaleout, runs only by name: it writes
	// a committed JSON artifact and should be regenerated deliberately.
	if *fig == "plancache" {
		rows, err := bench.PlanCacheRun(cfg)
		fail(err)
		bench.PlanCachePrint(os.Stdout, rows)
		writeCSV("plancache.csv", func(w io.Writer) { bench.PlanCacheCSV(w, rows) })
		f, err := os.Create("BENCH_plancache.json")
		fail(err)
		fail(bench.PlanCacheJSON(f, rows))
		fail(f.Close())
		fmt.Fprintln(os.Stderr, "pdc-bench: wrote BENCH_plancache.json")
		ran = true
	}
	run("concurrent", func() {
		rows, err := bench.ConcurrentRun(cfg)
		fail(err)
		bench.ConcurrentPrint(os.Stdout, rows)
		ran = true
	})
	if *faults {
		row, err := bench.FaultsRun(cfg)
		fail(err)
		bench.FaultsPrint(os.Stdout, row)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "pdc-bench: unknown figure %q (want 3, 4, 5, 6, ablations, concurrent, scaleout, plancache, or all)\n", *fig)
		os.Exit(2)
	}
}
