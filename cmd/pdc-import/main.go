// pdc-import generates a synthetic dataset, imports it into a PDC store
// (regions, histograms, optional bitmap indexes and sorted replica), and
// prints the resulting system inventory: objects, regions, metadata
// sizes, index overhead, and the modeled import cost — the offline costs
// the paper reports alongside its query results (§V notes the FastBit
// index at 15-17% of the data and the sorted copy at a full replica).
//
//	pdc-import -dataset vpic -logn 22 -index -sorted
//	pdc-import -dataset boss -objects 50000 -snapshot meta.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/simio"
	"pdcquery/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "vpic", "dataset to generate: vpic or boss")
	logn := flag.Int("logn", 20, "VPIC scale: 2^logn particles")
	objects := flag.Int("objects", 20000, "BOSS object count")
	fluxLen := flag.Int("flux", 500, "flux samples per BOSS object")
	regionKB := flag.Int64("region-kb", 64, "region size in KiB")
	index := flag.Bool("index", true, "build per-region bitmap indexes")
	sorted := flag.Bool("sorted", false, "build the Energy sorted replica (vpic only)")
	seed := flag.Uint64("seed", 42, "dataset seed")
	snapshot := flag.String("snapshot", "", "write the metadata snapshot to this file")
	out := flag.String("out", "", "write a full deployment checkpoint (data + metadata + replicas) to this file; pdc-server can -load it")
	flag.Parse()

	d := core.NewDeployment(core.Options{
		Servers:     1,
		RegionBytes: *regionKB << 10,
		BuildIndex:  *index,
	})
	cont := d.CreateContainer(*dataset)

	switch *dataset {
	case "vpic":
		n := 1 << *logn
		fmt.Printf("generating VPIC: %d particles, %d objects...\n", n, len(workload.VPICNames))
		v := workload.GenerateVPIC(n, *seed)
		var energy object.ID
		for _, name := range workload.VPICNames {
			o, err := d.ImportObject(cont.ID, object.Property{
				Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
			}, dtype.Bytes(v.Vars[name]))
			fail(err)
			if name == "Energy" {
				energy = o.ID
			}
		}
		if *sorted {
			fmt.Println("building Energy sorted replica...")
			fail(d.BuildSortedReplica(energy))
		}
	case "boss":
		fmt.Printf("generating BOSS: %d fiber objects x %d flux samples...\n", *objects, *fluxLen)
		for _, bo := range workload.GenerateBOSS(*objects, *fluxLen, *seed) {
			_, err := d.ImportObject(cont.ID, object.Property{
				Name: bo.Name, Type: dtype.Float32, Dims: []uint64{uint64(len(bo.Flux))},
				Tags: map[string]string{"RADEG": bo.RADeg, "DECDEG": bo.DECDeg},
			}, dtype.Bytes(bo.Flux))
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown dataset %q", *dataset))
	}

	// Inventory.
	objs := d.Meta().Objects()
	var regions int
	var dataBytes int64
	for _, o := range objs {
		regions += len(o.Regions)
		dataBytes += o.ByteSize()
	}
	fmt.Printf("\nimported %d objects, %d regions, %s data\n",
		len(objs), regions, sizeLabel(dataBytes))
	if *index {
		ib := d.IndexBytes()
		fmt.Printf("bitmap indexes: %s (%.1f%% of data)\n", sizeLabel(ib), 100*float64(ib)/float64(dataBytes))
	}
	if *sorted {
		sortedBytes := d.Store().TotalBytes(simio.PFS) - dataBytes - d.IndexBytes()
		fmt.Printf("sorted replica: %s (values + permutation)\n", sizeLabel(sortedBytes))
	}
	fmt.Printf("modeled import cost: %v\n", d.ImportCost().Total())

	if *snapshot != "" {
		snap, err := d.Meta().Snapshot()
		fail(err)
		fail(os.WriteFile(*snapshot, snap, 0o644))
		fmt.Printf("metadata snapshot: %s (%s)\n", *snapshot, sizeLabel(int64(len(snap))))
	}
	if *out != "" {
		f, err := os.Create(*out)
		fail(err)
		fail(d.SaveCheckpoint(f))
		fail(f.Close())
		st, err := os.Stat(*out)
		fail(err)
		fmt.Printf("deployment checkpoint: %s (%s)\n", *out, sizeLabel(st.Size()))
	}
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-import:", err)
		os.Exit(1)
	}
}
