// pdc-debugsmoke is an end-to-end smoke test of the observability
// surface: it boots a real pdc-server daemon, runs a query against it,
// then scrapes /metrics, /debug/events, and /debug/pprof and validates
// what comes back — the metrics exposition parses strictly (every line,
// no duplicate series), the expected query/cache/phase/runtime series
// are present, and the flight recorder shows the query it just served.
//
// CI runs it via `make debug-smoke`. Exit status 0 means the whole
// observability path — record, aggregate, expose, scrape — works
// against a live daemon, not just in unit tests.
//
//	pdc-debugsmoke -server bin/pdc-server [-logn 12]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

func main() {
	serverBin := flag.String("server", "bin/pdc-server", "path to the pdc-server binary")
	logn := flag.Int("logn", 12, "VPIC scale for the smoke dataset: 2^logn particles")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline for the smoke run")
	flag.Parse()

	// Wall time flows through the telemetry seam (the repo's one
	// sanctioned clock); the smoke harness measures a live daemon, so
	// real waiting is its job.
	deadline := telemetry.Wall.Now() + timeout.Nanoseconds()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort())
	metricsAddr := fmt.Sprintf("127.0.0.1:%d", freePort())

	cmd := exec.Command(*serverBin,
		"-addr", addr, "-id", "0", "-n", "1",
		"-logn", fmt.Sprint(*logn),
		"-metrics-addr", metricsAddr,
		// A 1ns threshold makes every query a "slow query": the smoke run
		// exercises the slow-query log path on the daemon's stderr too.
		"-slow-query", "1ns")
	cmd.Stderr = os.Stderr
	cmd.Stdout = os.Stdout
	if err := cmd.Start(); err != nil {
		log.Fatalf("debug-smoke: start %s: %v", *serverBin, err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	conn := dialRetry(addr, deadline)
	cli := client.New([]transport.Conn{conn}, nil)
	defer cli.Close()
	if err := cli.SyncMeta(); err != nil {
		log.Fatalf("debug-smoke: sync meta: %v", err)
	}
	meta := cli.Meta()
	root, err := query.Parse("Energy > 2.0", func(name string) (object.ID, bool) {
		o, ok := meta.GetByName(name)
		if !ok {
			return 0, false
		}
		return o.ID, true
	})
	if err != nil {
		log.Fatalf("debug-smoke: parse query: %v", err)
	}
	res, err := cli.Run(&query.Query{Root: root})
	if err != nil {
		log.Fatalf("debug-smoke: query: %v", err)
	}
	log.Printf("debug-smoke: query answered: %d hits", res.Sel.NHits)

	// The metrics exposition must parse strictly and carry the query,
	// cache, recorder, phase, and runtime series the daemon promises.
	metrics := httpGet("http://"+metricsAddr+"/metrics", deadline)
	if err := telemetry.CheckPrometheusText(metrics); err != nil {
		log.Fatalf("debug-smoke: /metrics failed strict parse: %v", err)
	}
	for _, want := range []string{
		"query_count", "cache_hits", "cache_misses",
		"recorder_capacity", "recorder_events",
		"phase_region_exec_vns", "phase_merge_vns",
		"runtime_goroutines", "runtime_heap_bytes",
	} {
		if !strings.Contains(string(metrics), want) {
			log.Fatalf("debug-smoke: /metrics missing expected series %q", want)
		}
	}
	log.Printf("debug-smoke: /metrics OK (%d bytes, strict parse clean)", len(metrics))

	// The flight recorder must show the query this run just issued.
	events := string(httpGet("http://"+metricsAddr+"/debug/events", deadline))
	if !strings.HasPrefix(events, "flight recorder:") {
		log.Fatalf("debug-smoke: /debug/events missing header, got %q", firstLine(events))
	}
	for _, want := range []string{"kind=admit", "kind=dispatch", "kind=query-done"} {
		if !strings.Contains(events, want) {
			log.Fatalf("debug-smoke: /debug/events missing %q events", want)
		}
	}
	log.Printf("debug-smoke: /debug/events OK (%s)", firstLine(events))

	// The pprof surface must answer.
	if out := httpGet("http://"+metricsAddr+"/debug/pprof/cmdline", deadline); len(out) == 0 {
		log.Fatal("debug-smoke: /debug/pprof/cmdline returned nothing")
	}
	log.Print("debug-smoke: /debug/pprof OK")
	fmt.Println("debug-smoke: PASS")
}

// freePort asks the kernel for an unused TCP port. The tiny window
// between closing the probe listener and the daemon binding it is
// acceptable for a smoke harness.
func freePort() int {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("debug-smoke: probe port: %v", err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// dialRetry dials the query port until the daemon finishes importing
// its dataset and starts listening.
func dialRetry(addr string, deadline int64) transport.Conn {
	for {
		conn, err := transport.Dial(addr)
		if err == nil {
			return conn
		}
		if telemetry.Wall.Now() > deadline {
			log.Fatalf("debug-smoke: server never came up on %s: %v", addr, err)
		}
		telemetry.WallSleep.Sleep(100 * time.Millisecond)
	}
}

// httpGet fetches a URL, retrying until the debug listener is up, and
// requires a 200.
func httpGet(url string, deadline int64) []byte {
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				log.Fatalf("debug-smoke: read %s: %v", url, rerr)
			}
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("debug-smoke: GET %s: status %d", url, resp.StatusCode)
			}
			return body
		}
		if telemetry.Wall.Now() > deadline {
			log.Fatalf("debug-smoke: GET %s: %v", url, err)
		}
		telemetry.WallSleep.Sleep(100 * time.Millisecond)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
