// pdc-clustersmoke is the end-to-end smoke test of the multi-process
// cluster: it boots a real pdc-server catalog plus three pdc-server
// member processes over TCP, imports a dataset through the catalog with
// R=2 replication, and answers a pinned query corpus byte-identically
// to an in-process brute-force oracle — including while one member is
// SIGKILLed mid-corpus and a replacement joins and pulls its regions.
// It finishes by scraping the catalog's and members' /metrics and
// validating the exposition strictly.
//
// CI runs it via `make cluster-smoke`. Exit status 0 means the whole
// distributed path — catalog placement, import replication, epoch-
// stamped routing, crash failover, join transfer — works against live
// processes, not just the in-proc harness.
//
//	pdc-clustersmoke -server bin/pdc-server [-particles 4096]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/selection"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/workload"
)

func main() {
	serverBin := flag.String("server", "bin/pdc-server", "path to the pdc-server binary")
	particles := flag.Int("particles", 4096, "VPIC particles in the smoke dataset")
	timeout := flag.Duration("timeout", 120*time.Second, "overall deadline for the smoke run")
	flag.Parse()

	deadline := telemetry.Wall.Now() + timeout.Nanoseconds()

	// The oracle: an in-proc deployment holding the same dataset. Ground
	// truth comes from clean brute-force reads before the cluster exists.
	src, queries, truths := buildSource(*particles)

	p, err := core.StartProcessDeployment(core.ProcessOptions{
		BinPath: *serverBin,
		Members: 3, R: 2, Seed: 42,
		Metrics: true,
		Stderr:  os.Stderr,
	})
	if err != nil {
		log.Fatalf("cluster-smoke: start cluster: %v", err)
	}
	defer p.Close()
	log.Printf("cluster-smoke: catalog %s, members %v", p.CatalogAddr(), p.MemberAddrs())

	s, err := p.Session()
	if err != nil {
		log.Fatalf("cluster-smoke: session: %v", err)
	}
	defer s.Close()
	if err := s.Import(src); err != nil {
		log.Fatalf("cluster-smoke: import: %v", err)
	}
	if err := s.Verify(src); err != nil {
		log.Fatalf("cluster-smoke: verify after import: %v", err)
	}
	log.Printf("cluster-smoke: imported %d objects with R=2", len(src.Meta().Objects()))

	corpus := func(stage string) {
		for i, q := range queries {
			out, err := s.Run(q)
			if err != nil {
				log.Fatalf("cluster-smoke: %s: query %d: %v", stage, i, err)
			}
			if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
				log.Fatalf("cluster-smoke: %s: query %d: WRONG ANSWER (%d hits, oracle %d)",
					stage, i, out.Sel.NHits, truths[i].NHits)
			}
		}
		log.Printf("cluster-smoke: %s: %d queries byte-identical to oracle", stage, len(queries))
	}
	corpus("baseline")

	// SIGKILL one member so the kill races the corpus: queries that catch
	// the dying member fail over onto the replicas, and every answer must
	// still be exact.
	victim := p.MemberAddrs()[0]
	killDone := make(chan error, 1)
	go func() { killDone <- p.Kill(victim) }()
	corpus("during kill")
	if err := <-killDone; err != nil {
		log.Fatalf("cluster-smoke: kill: %v", err)
	}
	if err := p.WaitMembers(2, remaining(deadline)); err != nil {
		log.Fatalf("cluster-smoke: settle after kill: %v", err)
	}
	log.Printf("cluster-smoke: killed %s, failover clean", victim)

	// A replacement joins; the catalog rebalances and the joiner pulls
	// its regions from the survivors before the new view commits.
	replacement, err := p.Spawn()
	if err != nil {
		log.Fatalf("cluster-smoke: replacement: %v", err)
	}
	if err := p.WaitMembers(3, remaining(deadline)); err != nil {
		log.Fatalf("cluster-smoke: settle after join: %v", err)
	}
	s.Invalidate()
	if err := s.Verify(src); err != nil {
		log.Fatalf("cluster-smoke: verify after replacement: %v", err)
	}
	corpus("after replacement")
	log.Printf("cluster-smoke: replacement %s joined and holds its regions", replacement)

	// Strict metrics: every scrape must parse cleanly and carry the
	// series the cluster run just produced.
	checkMetrics("catalog", p.MetricsAddr("catalog"), deadline,
		"cluster_members 3", "cluster_member_join", "cluster_member_down", "cluster_rebalances", "cluster_imports 1")
	checkMetrics("survivor", p.MetricsAddr(p.MemberAddrs()[0]), deadline,
		"ingest_extents", "cluster_epoch", "query_count")
	checkMetrics("replacement", p.MetricsAddr(replacement), deadline,
		"cluster_transfers", "cluster_transfer_bytes", "cluster_epoch")

	fmt.Println("cluster-smoke: PASS")
}

// buildSource imports the VPIC dataset into an in-proc deployment and
// oracles the query corpus.
func buildSource(particles int) (*core.Deployment, []*query.Query, []*selection.Selection) {
	d := core.NewDeployment(core.Options{Servers: 2, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	c := d.CreateContainer("cluster-smoke")
	v := workload.GenerateVPIC(particles, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(particles)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			log.Fatalf("cluster-smoke: import %s: %v", name, err)
		}
		ids[name] = o.ID
	}
	queries := workload.SingleObjectQueries(ids["Energy"])
	truths := make([]*selection.Selection, len(queries))
	for i, q := range queries {
		sel, err := d.GroundTruth(q)
		if err != nil {
			log.Fatalf("cluster-smoke: ground truth %d: %v", i, err)
		}
		truths[i] = sel
	}
	return d, queries, truths
}

// checkMetrics scrapes one process's /metrics, insists the exposition
// parses strictly, and checks the expected series are present.
func checkMetrics(who, addr string, deadline int64, wants ...string) {
	if addr == "" {
		log.Fatalf("cluster-smoke: %s has no metrics address", who)
	}
	body := httpGet("http://"+addr+"/metrics", deadline)
	if err := telemetry.CheckPrometheusText(body); err != nil {
		log.Fatalf("cluster-smoke: %s /metrics failed strict parse: %v", who, err)
	}
	for _, want := range wants {
		if !strings.Contains(string(body), want) {
			log.Fatalf("cluster-smoke: %s /metrics missing expected series %q", who, want)
		}
	}
	log.Printf("cluster-smoke: %s /metrics OK (%d bytes, strict parse clean)", who, len(body))
}

// httpGet fetches a URL, retrying until the debug listener answers,
// and requires a 200.
func httpGet(url string, deadline int64) []byte {
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				log.Fatalf("cluster-smoke: read %s: %v", url, rerr)
			}
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("cluster-smoke: GET %s: status %d", url, resp.StatusCode)
			}
			return body
		}
		if telemetry.Wall.Now() > deadline {
			log.Fatalf("cluster-smoke: GET %s: %v", url, err)
		}
		telemetry.WallSleep.Sleep(100 * time.Millisecond)
	}
}

// remaining converts the absolute deadline into a wait budget.
func remaining(deadline int64) time.Duration {
	d := time.Duration(deadline - telemetry.Wall.Now())
	if d < time.Second {
		d = time.Second
	}
	return d
}
