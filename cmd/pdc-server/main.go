// pdc-server runs one PDC query server as a standalone TCP daemon.
//
// A deployment of N daemons (ranks 0..N-1) serves the same deterministic
// synthetic dataset — each daemon generates and imports it locally with
// the shared seed, mirroring a parallel file system every server can
// reach — and answers the client protocol on its port. Point cmd/pdc-query
// at all N addresses.
//
//	pdc-server -addr 127.0.0.1:7100 -id 0 -n 2 &
//	pdc-server -addr 127.0.0.1:7101 -id 1 -n 2 &
//	pdc-query -servers 127.0.0.1:7100,127.0.0.1:7101 -query "Energy > 2.0"
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pdcquery/internal/core"
	"pdcquery/internal/exec"
	"pdcquery/internal/server"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	id := flag.Int("id", 0, "this server's rank in [0, n)")
	n := flag.Int("n", 1, "total number of servers in the deployment")
	logn := flag.Int("logn", 18, "VPIC scale: 2^logn particles")
	load := flag.String("load", "", "load a deployment checkpoint written by pdc-import -out instead of generating data")
	seed := flag.Uint64("seed", 42, "dataset seed (must match across the deployment)")
	strategy := flag.String("strategy", "PDC-H", "evaluation strategy: PDC-F, PDC-H, PDC-HI, PDC-SH")
	regionKB := flag.Int64("region-kb", 64, "region size in KiB")
	index := flag.Bool("index", true, "build bitmap indexes at import")
	sorted := flag.Bool("sorted", true, "build the Energy sorted replica at import")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address at /metrics, plus /debug/events and /debug/pprof (empty disables)")
	queryLog := flag.Bool("querylog", false, "emit a structured JSON record per handled query on stderr")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this wall-clock threshold with their trace span and surrounding flight-recorder events (0 disables)")
	recorderEvents := flag.Int("recorder-events", telemetry.DefaultRecorderEvents, "flight-recorder ring capacity (events)")
	// The worker default is a fixed constant, not NumCPU: results and
	// costs are identical at any worker count (the determinism contract),
	// so the default only changes latency, and a fixed value keeps daemon
	// behavior reproducible across machines.
	workers := flag.Int("workers", 4, "region-task workers shared by all sessions (0 or 1 = serial evaluation)")
	queueDepth := flag.Int("queue-depth", server.DefaultQueueDepth, "admitted requests per session before the server answers busy")
	checkpoint := flag.String("checkpoint", "", "write a deployment checkpoint here after startup (the persistence a crashed rank is restarted from via -load)")
	crashAfter := flag.Uint64("crash-after", 0, "fault injection: exit(3) abruptly after serving this many queries (0 disables)")
	catalogMode := flag.Bool("catalog", false, "run the cluster catalog service instead of a data server")
	join := flag.String("join", "", "join the cluster at this catalog address as a data member (starts empty; import through the catalog)")
	clusterR := flag.Int("cluster-r", 2, "catalog mode: replication factor for placements")
	heartbeat := flag.Duration("heartbeat", 250*time.Millisecond, "member mode: heartbeat interval (0 disables)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 2*time.Second, "catalog mode: declare a member down after this long without a beat (0 disables)")
	flag.Parse()

	strat, err := exec.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-server:", err)
		os.Exit(2)
	}
	if *catalogMode && *join != "" {
		fmt.Fprintln(os.Stderr, "pdc-server: -catalog and -join are mutually exclusive")
		os.Exit(2)
	}
	if *catalogMode {
		runCatalog(*addr, *seed, *clusterR, *heartbeatTimeout, *metricsAddr, *recorderEvents)
		return
	}
	if *join != "" {
		runMember(*join, *addr, strat, *workers, *queueDepth, *heartbeat, *metricsAddr, *recorderEvents, *queryLog)
		return
	}
	if *id < 0 || *id >= *n {
		fmt.Fprintln(os.Stderr, "pdc-server: id must be in [0, n)")
		os.Exit(2)
	}

	var d *core.Deployment
	if *load != "" {
		log.Printf("pdc-server rank %d/%d: loading checkpoint %s...", *id, *n, *load)
		f, err := os.Open(*load)
		if err != nil {
			log.Fatalf("pdc-server: %v", err)
		}
		d, err = core.LoadCheckpoint(f, core.Options{Servers: 1})
		f.Close()
		if err != nil {
			log.Fatalf("pdc-server: load: %v", err)
		}
	} else {
		log.Printf("pdc-server rank %d/%d: importing 2^%d particles...", *id, *n, *logn)
		var err error
		d, err = importVPIC(*logn, *seed, *regionKB<<10, *index, *sorted)
		if err != nil {
			log.Fatalf("pdc-server: import: %v", err)
		}
	}
	if *checkpoint != "" {
		// The paper's PDC persists metadata periodically for fault
		// tolerance; here the full import is written once at startup, so a
		// crashed rank restarts with -load and recovers identical state.
		f, err := os.Create(*checkpoint)
		if err != nil {
			log.Fatalf("pdc-server: checkpoint: %v", err)
		}
		if err := d.SaveCheckpoint(f); err != nil {
			log.Fatalf("pdc-server: checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("pdc-server: checkpoint: %v", err)
		}
		log.Printf("pdc-server rank %d: checkpoint written to %s", *id, *checkpoint)
	}
	cfg := server.Config{
		ID: *id, N: *n,
		Store:      d.Store(),
		Meta:       d.Meta(),
		Replicas:   d.Replicas(),
		Strategy:   strat,
		Workers:    *workers,
		QueueDepth: *queueDepth,
		// The daemon is a real deployment: traced queries may carry
		// wall-clock span times (they never enter deterministic encodings).
		Clock:          telemetry.Wall,
		RecorderEvents: *recorderEvents,
		SlowQueryNs:    slowQuery.Nanoseconds(),
	}
	if *queryLog || *slowQuery > 0 {
		// The slow-query log rides on the structured logger: -slow-query
		// alone installs it (at warn level only the slow records appear
		// unless -querylog also asked for the per-query info records).
		opts := &slog.HandlerOptions{Level: slog.LevelWarn}
		if *queryLog {
			opts.Level = slog.LevelInfo
		}
		cfg.Log = slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	if *crashAfter > 0 {
		rank := *id
		limit := *crashAfter
		cfg.OnQuery = func(served uint64) {
			if served >= limit {
				// A crash, not a shutdown: no teardown, no reply flush —
				// clients see the connection drop mid-conversation and must
				// recover via redial against the restarted rank.
				log.Printf("pdc-server rank %d: injected crash after %d queries", rank, served)
				os.Exit(3)
			}
		}
	}
	srv := server.New(cfg)

	l, err := transport.Listen(*addr)
	if err != nil {
		log.Fatalf("pdc-server: listen: %v", err)
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg := srv.Metrics()
			// Fold live Go runtime health (heap, GC, scheduler latency)
			// into the scrape: the gauges land beside the query metrics,
			// so one endpoint answers both "is the service slow" and "is
			// the process sick".
			telemetry.SampleRuntime(reg)
			telemetry.WritePrometheus(w, reg)
		})
		// Live introspection: the flight-recorder ring as text, and the
		// standard pprof surface (profiles, goroutine dumps, heap) on the
		// same loopback-intended listener.
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			events, total := srv.Recorder().SnapshotTotal()
			telemetry.WriteEvents(w, events, total)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pdc-server rank %d: metrics on http://%s/metrics (debug: /debug/events, /debug/pprof)", *id, *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("pdc-server: metrics server: %v", err)
			}
		}()
	}
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// connections finish their current request loop.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("pdc-server rank %d: %v, shutting down", *id, s)
		l.Close()
	}()

	log.Printf("pdc-server rank %d/%d serving on %s (strategy %s)", *id, *n, l.Addr(), strat)
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			break // listener closed
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(conn); err != nil {
				log.Printf("pdc-server: connection: %v", err)
			}
			conn.Close()
		}()
	}
	wg.Wait()
	srv.Shutdown()
	log.Printf("pdc-server rank %d: bye", *id)
}
