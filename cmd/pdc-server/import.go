package main

import (
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/workload"
)

// importVPIC builds a local deployment-shaped store holding the shared
// deterministic VPIC dataset (every daemon of the fleet imports the same
// bytes, standing in for a parallel file system all servers reach).
func importVPIC(logn int, seed uint64, regionBytes int64, index, sorted bool) (*core.Deployment, error) {
	n := 1 << logn
	v := workload.GenerateVPIC(n, seed)
	d := core.NewDeployment(core.Options{
		Servers:     1, // the daemon wraps exactly one server.Server
		RegionBytes: regionBytes,
		BuildIndex:  index,
	})
	c := d.CreateContainer("vpic")
	var energy object.ID
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			return nil, err
		}
		if name == "Energy" {
			energy = o.ID
		}
	}
	if sorted {
		if err := d.BuildSortedReplica(energy); err != nil {
			return nil, err
		}
	}
	return d, nil
}
