// Cluster modes: `pdc-server -catalog` runs the placement catalog;
// `pdc-server -join <catalog-addr>` runs a data member that joins it.
// A multi-process deployment is one catalog plus N members:
//
//	pdc-server -catalog -addr 127.0.0.1:7000 &
//	pdc-server -join 127.0.0.1:7000 -addr 127.0.0.1:7101 &
//	pdc-server -join 127.0.0.1:7000 -addr 127.0.0.1:7102 &
//	pdc-server -join 127.0.0.1:7000 -addr 127.0.0.1:7103 &
//	pdc-query -catalog 127.0.0.1:7000 -query "Energy > 2.0"
//
// Members start empty: a client imports a dataset through the catalog
// (see cluster.Session.Import and cmd/pdc-clustersmoke), which writes
// every region's extents to all R placement owners. Both modes print
// a `PDC_LISTENING <addr>` handshake line on stdout once they accept
// connections — the process harness (core.ProcessDeployment) and shell
// scripts wait for it instead of polling ports.
package main

import (
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdcquery/internal/cluster"
	"pdcquery/internal/exec"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

// runCatalog serves the catalog until SIGINT/SIGTERM. Heartbeat expiry
// sweeps run on wall time through the telemetry seams (the only
// sanctioned clock); everything else is driven by member and client
// messages.
func runCatalog(addr string, seed uint64, r int, hbTimeout time.Duration, metricsAddr string, recorderEvents int) {
	cat := cluster.NewCatalog(cluster.CatalogConfig{
		Seed:               seed,
		R:                  r,
		Clock:              telemetry.Wall,
		HeartbeatTimeoutNs: hbTimeout.Nanoseconds(),
		Log:                slog.New(slog.NewTextHandler(os.Stderr, nil)),
		Recorder:           telemetry.NewRecorder(recorderEvents, telemetry.Wall),
	})
	l, err := transport.Listen(addr)
	if err != nil {
		log.Fatalf("pdc-server: catalog listen: %v", err)
	}
	mAddr := ""
	if metricsAddr != "" {
		mAddr = serveClusterMetrics(metricsAddr, "catalog", cat.Metrics, cat.Recorder)
	}
	if hbTimeout > 0 {
		sweep := hbTimeout / 4
		if sweep < 10*time.Millisecond {
			sweep = 10 * time.Millisecond
		}
		go func() {
			for {
				telemetry.WallSleep.Sleep(sweep)
				cat.CheckExpiry(telemetry.Wall.Now())
			}
		}()
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("pdc-server catalog: %v, shutting down", s)
		_ = l.Close()
		cat.Close()
	}()

	fmt.Printf("PDC_LISTENING %s\n", l.Addr())
	if mAddr != "" {
		fmt.Printf("PDC_METRICS %s\n", mAddr)
	}
	log.Printf("pdc-server catalog serving on %s (R=%d, heartbeat timeout %v)", l.Addr(), r, hbTimeout)
	for {
		conn, err := l.Accept()
		if err != nil {
			break
		}
		go cat.ServeConn(conn)
	}
	log.Printf("pdc-server catalog: bye")
}

// runMember joins the catalog and serves queries until SIGINT/SIGTERM
// or until the catalog commits a view without it (a drain).
func runMember(catalogAddr, addr string, strat exec.Strategy, workers, queueDepth int, heartbeat time.Duration, metricsAddr string, recorderEvents int, queryLog bool) {
	opts := cluster.MemberOptions{
		Net:            cluster.TCPNetwork{},
		CatalogAddr:    catalogAddr,
		ListenAddr:     addr,
		Strategy:       strat,
		Workers:        workers,
		QueueDepth:     queueDepth,
		Clock:          telemetry.Wall,
		HeartbeatNs:    heartbeat.Nanoseconds(),
		Sleeper:        telemetry.WallSleep,
		RecorderEvents: recorderEvents,
	}
	if queryLog {
		opts.Log = slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	m, err := cluster.StartMember(opts)
	if err != nil {
		log.Fatalf("pdc-server: join %s: %v", catalogAddr, err)
	}
	mAddr := ""
	if metricsAddr != "" {
		mAddr = serveClusterMetrics(metricsAddr, fmt.Sprintf("member %d", m.ID()), m.Server().Metrics, m.Server().Recorder)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("PDC_LISTENING %s\n", m.Addr())
	if mAddr != "" {
		fmt.Printf("PDC_METRICS %s\n", mAddr)
	}
	log.Printf("pdc-server member %d serving on %s (catalog %s)", m.ID(), m.Addr(), catalogAddr)
	select {
	case <-m.Done():
		// Drained (or the catalog connection died): the member already
		// tore itself down.
		log.Printf("pdc-server member %d: left the cluster, bye", m.ID())
	case s := <-sigs:
		log.Printf("pdc-server member %d: %v, shutting down", m.ID(), s)
		m.Close()
	}
}

// serveClusterMetrics exposes /metrics and /debug/events for a cluster
// process (same surface as the standalone daemon's metrics listener)
// and returns the bound address, so ":0" listeners can report the real
// port in the PDC_METRICS handshake line.
func serveClusterMetrics(addr, who string, metrics func() *telemetry.Registry, recorder func() *telemetry.Recorder) string {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg := metrics()
		telemetry.SampleRuntime(reg)
		telemetry.WritePrometheus(w, reg)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		events, total := recorder().SnapshotTotal()
		telemetry.WriteEvents(w, events, total)
	})
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("pdc-server %s: metrics listen %s: %v", who, addr, err)
		return ""
	}
	go func() {
		log.Printf("pdc-server %s: metrics on http://%s/metrics", who, lis.Addr())
		if err := http.Serve(lis, mux); err != nil {
			log.Printf("pdc-server: metrics server: %v", err)
		}
	}()
	return lis.Addr().String()
}
