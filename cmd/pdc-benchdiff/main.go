// Command pdc-benchdiff is the repository's performance ratchet: it
// measures a fixed set of deterministic figures — allocations per
// operation for the hot kernels the zero-alloc sweep pinned, and modeled
// virtual-time query latencies from the Fig. 3 harness — and compares
// them against the committed baseline in BENCH_seed.json.
//
// Both figure families are deterministic by construction (AllocsPerRun
// over fixed inputs; virtual-clock times from the cost model), so the
// gate runs in CI without noise margins for machine speed. It fails when
// an allocs/op figure regresses by more than 10% (any allocation at all
// for figures pinned at zero) or a modeled latency regresses by more
// than 15%.
//
// Usage:
//
//	pdc-benchdiff            compare against BENCH_seed.json, exit 1 on regression
//	pdc-benchdiff -write     re-measure and rewrite the baseline
//	pdc-benchdiff -baseline p  use a different baseline path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"pdcquery/internal/bench"
	"pdcquery/internal/exec"
	"pdcquery/internal/selection"
	"pdcquery/internal/transport"
	"pdcquery/internal/wah"
)

// Baseline is the committed shape of BENCH_seed.json.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// AllocsPerOp maps kernel name to heap allocations per operation.
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
	// ModeledNs maps figure name to modeled virtual wall-clock in
	// nanoseconds.
	ModeledNs map[string]int64 `json:"modeled_ns"`
}

const (
	// allocSlack tolerates a 10% allocs/op increase; a zero baseline
	// tolerates nothing (those kernels are pinned allocation-free).
	allocSlack = 1.10
	// timeSlack tolerates a 15% modeled wall-clock increase.
	timeSlack = 1.15

	baselineNote = "deterministic perf baseline; regenerate with `make bench-seed` (go run ./cmd/pdc-benchdiff -write)"
)

// measureAllocs runs the pinned hot kernels under testing.AllocsPerRun
// with warm, pre-sized buffers — the steady-state regime the hotalloc
// budget and the zero-alloc tests describe.
func measureAllocs() map[string]float64 {
	out := map[string]float64{}

	const nbits = 1 << 14
	a := wah.FromIndices([]uint64{1, 5, 100, 101, 3000, 3001, 9000}, nbits)
	b := wah.FromIndices([]uint64{5, 99, 100, 2999, 3001, 9000, 16383}, nbits)
	dst := wah.AndInto(nil, a, b)
	out["wah.AndInto.warm"] = testing.AllocsPerRun(200, func() { dst = wah.AndInto(dst, a, b) })
	dst = wah.OrInto(nil, a, b)
	out["wah.OrInto.warm"] = testing.AllocsPerRun(200, func() { dst = wah.OrInto(dst, a, b) })
	u := wah.Or(a, b)
	idx := u.ToIndicesInto(nil)
	out["wah.ToIndicesInto.warm"] = testing.AllocsPerRun(200, func() { idx = u.ToIndicesInto(idx) })

	ca := make([]uint64, 0, 4096)
	cb := make([]uint64, 0, 4096)
	for i := uint64(0); i < 8192; i++ {
		if i%2 == 0 {
			ca = append(ca, i)
		}
		if i%3 == 0 {
			cb = append(cb, i)
		}
	}
	idst := make([]uint64, 0, min(len(ca), len(cb)))
	out["selection.IntersectCoords.presized"] = testing.AllocsPerRun(200, func() { idst = selection.IntersectCoords(idst, ca, cb) })
	mdst := make([]uint64, 0, len(ca)+len(cb))
	out["selection.MergeCoords.presized"] = testing.AllocsPerRun(200, func() { mdst = selection.MergeCoords(mdst, ca, cb) })

	m := transport.Message{Type: 3, ReqID: 8, Trace: 5, Deadline: 2, Payload: make([]byte, 512)}
	fbuf := transport.AppendFrame(nil, m)
	out["transport.AppendFrame.warm"] = testing.AllocsPerRun(200, func() { fbuf = transport.AppendFrame(fbuf[:0], m) })

	c := exec.NewCache(1 << 20)
	c.Put("region", make([]byte, 4096))
	out["exec.Cache.Get.hit"] = testing.AllocsPerRun(200, func() { c.Get("region") })

	return out
}

// measureModeled runs the Fig. 3 harness at a small fixed scale and sums
// the modeled (virtual-clock) query time per approach. Virtual time is
// deterministic, so these figures catch cost-model and evaluation-path
// regressions without benchmark noise.
func measureModeled() (map[string]int64, error) {
	rows, err := bench.Fig3Run(bench.Config{LogN: 16, Servers: 4, Seed: 42, RegionSteps: 1})
	if err != nil {
		return nil, err
	}
	sums := map[string]time.Duration{}
	for _, r := range rows {
		for _, ap := range bench.Approaches {
			sums[ap] += r.QueryTime[ap]
		}
	}
	out := make(map[string]int64, len(sums))
	for ap, d := range sums {
		out["fig3.logn16."+ap] = int64(d)
	}

	// Plan-cache figures: the declarative corpus cold (round 0, every
	// plan built) and warm (last round, every plan from the LRU). Both
	// are modeled virtual time, so they gate the planner's cost model
	// and the cache's hit path.
	pcRows, err := bench.PlanCacheRun(bench.Config{LogN: 16, Servers: 4, Seed: 42})
	if err != nil {
		return nil, err
	}
	if len(pcRows) >= 2 {
		out["plancache.logn16.cold"] = pcRows[0].TimeNs
		out["plancache.logn16.warm"] = pcRows[len(pcRows)-1].TimeNs
	}
	return out, nil
}

// compare checks cur against base under the given slack factor (zero
// baselines tolerate nothing) and returns formatted table rows plus the
// regressions found. Figures present in only one side are regressions
// too: the baseline must be regenerated deliberately, not drift.
func compare[N int64 | float64](kind string, base, cur map[string]N, slack float64, rows *[]string, regressions *[]string) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			*regressions = append(*regressions, fmt.Sprintf("%s %q: in baseline but not measured (stale baseline? run -write)", kind, name))
			continue
		}
		limit := N(float64(b) * slack)
		status := "ok"
		if float64(c) > float64(limit)+1e-9 {
			status = "REGRESSION"
			*regressions = append(*regressions, fmt.Sprintf("%s %q: %v -> %v (limit %v)", kind, name, b, c, limit))
		}
		*rows = append(*rows, fmt.Sprintf("  %-38s base=%-12v cur=%-12v %s", name, b, c, status))
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			*regressions = append(*regressions, fmt.Sprintf("%s %q: measured but missing from baseline (run -write to adopt it)", kind, name))
		}
	}
}

func main() {
	write := flag.Bool("write", false, "re-measure and rewrite the baseline file")
	path := flag.String("baseline", "BENCH_seed.json", "baseline file path")
	flag.Parse()

	allocs := measureAllocs()
	modeled, err := measureModeled()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdc-benchdiff: modeled figures: %v\n", err)
		os.Exit(1)
	}

	if *write {
		bl := Baseline{Note: baselineNote, AllocsPerOp: allocs, ModeledNs: modeled}
		data, err := json.MarshalIndent(&bl, "", " ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdc-benchdiff: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pdc-benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d allocs/op figures, %d modeled figures)\n", *path, len(allocs), len(modeled))
		return
	}

	data, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdc-benchdiff: read baseline: %v (run with -write to create it)\n", err)
		os.Exit(1)
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		fmt.Fprintf(os.Stderr, "pdc-benchdiff: parse baseline: %v\n", err)
		os.Exit(1)
	}

	var rows, regressions []string
	compare("allocs/op", bl.AllocsPerOp, allocs, allocSlack, &rows, &regressions)
	compare("modeled-ns", bl.ModeledNs, modeled, timeSlack, &rows, &regressions)

	fmt.Printf("pdc-benchdiff vs %s (allocs slack %+.0f%%, modeled slack %+.0f%%):\n",
		*path, (allocSlack-1)*100, (timeSlack-1)*100)
	for _, r := range rows {
		fmt.Println(r)
	}
	if len(regressions) > 0 {
		fmt.Println("\nregressions:")
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		os.Exit(1)
	}
	fmt.Println("all figures within budget")
}
