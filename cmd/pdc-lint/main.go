// pdc-lint is the repo's multichecker: it runs the custom invariant
// analyzers in internal/lint over Go packages — the four per-package
// checkers (nondeterminism, mutexguard, protoexhaustive, nopanic) plus
// the call-graph tier (vclockcharge, wiresymmetry, lockorder,
// ctxpropagate).
//
// Standalone:
//
//	go run ./cmd/pdc-lint ./...
//	go run ./cmd/pdc-lint -nondeterminism=false ./internal/server
//	go run ./cmd/pdc-lint -json ./...   # one JSON diagnostic per line
//	go run ./cmd/pdc-lint -list         # print the analyzer catalog
//
// As a vet tool (unitchecker mode — the go command hands the tool one
// *.cfg file per package):
//
//	go build -o bin/pdc-lint ./cmd/pdc-lint
//	go vet -vettool=$(pwd)/bin/pdc-lint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pdcquery/internal/lint"
)

func main() {
	// The go command probes vet tools before using them: -V=full for a
	// cache key, -flags for the JSON flag inventory. Answer both before
	// normal flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlagsJSON(lint.All())
			return
		}
	}

	analyzers := lint.All()
	enabled := make(map[string]*bool, len(analyzers))
	fs := flag.NewFlagSet("pdc-lint", flag.ExitOnError)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line on stdout (standalone mode)")
	listOut := fs.Bool("list", false, "print the analyzer catalog and exit")
	hotallocReport := fs.Bool("hotalloc-report", false, "print the hot-path allocation census as budget-file JSON and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pdc-lint [flags] packages...\n       pdc-lint config.cfg  (go vet -vettool mode)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}
	if *listOut {
		printCatalog(analyzers)
		return
	}
	var active []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		os.Exit(1)
	}

	// Unitchecker mode: a single JSON config file from `go vet`. The
	// -json flag is ignored here; the go command owns the output format.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0], active)
		return
	}

	pkgs, err := lint.Load("", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-lint:", err)
		os.Exit(1)
	}
	if *hotallocReport {
		// The census in hotalloc_budget.json shape: pipe through jq (or
		// edit by hand) to prune into the committed budget.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.HotAllocReport(pkgs)); err != nil {
			fmt.Fprintln(os.Stderr, "pdc-lint:", err)
			os.Exit(1)
		}
		return
	}
	diags, err := lint.RunAnalyzers(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-lint:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			// One object per line so CI can annotate PRs by streaming.
			// The schema (lint.JSONDiagnostic) is pinned by a unit test.
			if err := enc.Encode(lint.ToJSON(d)); err != nil {
				fmt.Fprintln(os.Stderr, "pdc-lint:", err)
				os.Exit(1)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pdc-lint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}

// printCatalog answers -list: one analyzer per line with its scope and
// one-line summary.
func printCatalog(analyzers []*lint.Analyzer) {
	for _, a := range analyzers {
		scope := "package"
		if a.Global {
			scope = "global "
		}
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		fmt.Printf("%-16s %s  %s\n", a.Name, scope, doc)
	}
}
