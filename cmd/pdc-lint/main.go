// pdc-lint is the repo's multichecker: it runs the fourteen custom
// invariant analyzers in internal/lint over Go packages — the
// per-package checkers (nondeterminism, mutexguard, protoexhaustive,
// nopanic), the call-graph tier (vclockcharge, wiresymmetry, lockorder,
// ctxpropagate, aliasguard, hotalloc), and the CFG/dataflow tier
// (barrierdet, errflow, nilcharge, lockhold). All analyzers in one
// invocation share a single loaded package set, call graph, and CFG
// cache.
//
// Standalone:
//
//	go run ./cmd/pdc-lint ./...
//	go run ./cmd/pdc-lint -nondeterminism=false ./internal/server
//	go run ./cmd/pdc-lint -json ./...    # one JSON diagnostic per line
//	go run ./cmd/pdc-lint -sarif ./...   # one SARIF 2.1.0 log on stdout
//	go run ./cmd/pdc-lint -timing ./...  # per-analyzer wall time on stderr
//	go run ./cmd/pdc-lint -list          # print the analyzer catalog
//
// Standalone runs that include the hotalloc analyzer also verify the
// committed allocation budget (internal/lint/hotalloc_budget.json) is
// not stale: an entry whose function no longer exists fails the run.
//
// As a vet tool (unitchecker mode — the go command hands the tool one
// *.cfg file per package):
//
//	go build -o bin/pdc-lint ./cmd/pdc-lint
//	go vet -vettool=$(pwd)/bin/pdc-lint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics found
// (stale budget entries count as findings).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pdcquery/internal/lint"
)

func main() {
	// The go command probes vet tools before using them: -V=full for a
	// cache key, -flags for the JSON flag inventory. Answer both before
	// normal flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlagsJSON(lint.All())
			return
		}
	}

	analyzers := lint.All()
	enabled := make(map[string]*bool, len(analyzers))
	fs := flag.NewFlagSet("pdc-lint", flag.ExitOnError)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line on stdout (standalone mode)")
	sarifOut := fs.Bool("sarif", false, "emit one SARIF 2.1.0 log on stdout (standalone mode)")
	timing := fs.Bool("timing", false, "print per-analyzer wall time on stderr (standalone mode)")
	listOut := fs.Bool("list", false, "print the analyzer catalog and exit")
	hotallocReport := fs.Bool("hotalloc-report", false, "print the hot-path allocation census as budget-file JSON and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pdc-lint [flags] packages...\n       pdc-lint config.cfg  (go vet -vettool mode)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}
	if *listOut {
		printCatalog(analyzers)
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "pdc-lint: -json and -sarif are mutually exclusive")
		os.Exit(1)
	}
	var active []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		os.Exit(1)
	}

	// Unitchecker mode: a single JSON config file from `go vet`. The
	// -json flag is ignored here; the go command owns the output format.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0], active)
		return
	}

	pkgs, err := lint.Load("", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-lint:", err)
		os.Exit(1)
	}
	if *hotallocReport {
		// The census in hotalloc_budget.json shape: pipe through jq (or
		// edit by hand) to prune into the committed budget.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.HotAllocReport(pkgs)); err != nil {
			fmt.Fprintln(os.Stderr, "pdc-lint:", err)
			os.Exit(1)
		}
		return
	}

	// One session for the whole run: the call graph and CFG cache are
	// built once and shared by every analyzer — and by the budget
	// staleness check afterwards.
	session := lint.NewSession(pkgs)
	diags, err := runActive(session, active, *timing)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-lint:", err)
		os.Exit(1)
	}

	// Budget hygiene rides along whenever hotalloc itself runs: entries
	// naming functions that no longer exist fail the run so renames
	// can't leave justification orphans behind.
	failures := len(diags)
	if *enabled["hotalloc"] {
		for _, e := range lint.StaleHotAllocBudget(pkgs, session.Graph(), lint.HotAllocBudget()) {
			fmt.Fprintf(os.Stderr, "pdc-lint: stale budget entry: %s (%s) no longer exists; delete it from internal/lint/hotalloc_budget.json\n", e.Func, e.Kind)
			failures++
		}
	}

	switch {
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// The serialized shape is pinned by the golden test in
		// internal/lint/sarif_test.go.
		if err := enc.Encode(lint.ToSARIF(diags, active)); err != nil {
			fmt.Fprintln(os.Stderr, "pdc-lint:", err)
			os.Exit(1)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			// One object per line so CI can annotate PRs by streaming.
			// The schema (lint.JSONDiagnostic) is pinned by a unit test.
			if err := enc.Encode(lint.ToJSON(d)); err != nil {
				fmt.Fprintln(os.Stderr, "pdc-lint:", err)
				os.Exit(1)
			}
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "pdc-lint: %d finding(s)\n", failures)
		os.Exit(2)
	}
}

// runActive applies the active analyzers over one session. Without
// -timing that is a single Run; with it, one Run per analyzer so each
// step's wall time can be measured and printed — the shared session
// keeps the call graph and CFGs cached across steps, so the split costs
// only scheduling noise.
func runActive(session *lint.Session, active []*lint.Analyzer, timing bool) ([]lint.Diagnostic, error) {
	if !timing {
		return session.Run(active)
	}
	var diags []lint.Diagnostic
	var total time.Duration
	for _, a := range active {
		start := time.Now() //lint:ignore nondeterminism -timing measures the lint run itself, not simulated behaviour
		ds, err := session.Run([]*lint.Analyzer{a})
		if err != nil {
			return nil, err
		}
		step := time.Now().Sub(start) //lint:ignore nondeterminism -timing measures the lint run itself, not simulated behaviour
		total += step
		fmt.Fprintf(os.Stderr, "pdc-lint: timing %-16s %8.1fms  %d finding(s)\n",
			a.Name, float64(step.Microseconds())/1000, len(ds))
		diags = append(diags, ds...)
	}
	fmt.Fprintf(os.Stderr, "pdc-lint: timing %-16s %8.1fms\n", "total", float64(total.Microseconds())/1000)
	// Interleaving per-analyzer runs loses the global position sort a
	// single Run would produce; restore it.
	lint.SortDiagnostics(diags)
	return diags, nil
}

// printCatalog answers -list: one analyzer per line with its scope and
// one-line summary.
func printCatalog(analyzers []*lint.Analyzer) {
	for _, a := range analyzers {
		scope := "package"
		if a.Global {
			scope = "global "
		}
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		fmt.Printf("%-16s %s  %s\n", a.Name, scope, doc)
	}
}
