// pdc-lint is the repo's multichecker: it runs the custom invariant
// analyzers in internal/lint over Go packages.
//
// Standalone:
//
//	go run ./cmd/pdc-lint ./...
//	go run ./cmd/pdc-lint -nondeterminism=false ./internal/server
//
// As a vet tool (unitchecker mode — the go command hands the tool one
// *.cfg file per package):
//
//	go build -o bin/pdc-lint ./cmd/pdc-lint
//	go vet -vettool=$(pwd)/bin/pdc-lint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdcquery/internal/lint"
)

func main() {
	// The go command probes vet tools before using them: -V=full for a
	// cache key, -flags for the JSON flag inventory. Answer both before
	// normal flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlagsJSON(lint.All())
			return
		}
	}

	analyzers := lint.All()
	enabled := make(map[string]*bool, len(analyzers))
	fs := flag.NewFlagSet("pdc-lint", flag.ExitOnError)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	jsonOut := fs.Bool("json", false, "ignored (accepted for go vet compatibility)")
	_ = jsonOut
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pdc-lint [flags] packages...\n       pdc-lint config.cfg  (go vet -vettool mode)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}
	var active []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		os.Exit(1)
	}

	// Unitchecker mode: a single JSON config file from `go vet`.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0], active)
		return
	}

	pkgs, err := lint.Load("", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-lint:", err)
		os.Exit(1)
	}
	diags, err := lint.RunAnalyzers(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdc-lint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pdc-lint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}
