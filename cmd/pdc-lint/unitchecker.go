// Unitchecker mode: the protocol `go vet -vettool` speaks. For every
// package in the build, the go command invokes the tool with a JSON
// config file describing the unit (files, import map, export data
// locations) and expects per-package "facts" output at VetxOutput plus
// diagnostics on stderr (nonzero exit when any are found).
//
// This is a dependency-free re-implementation of the subset of
// golang.org/x/tools/go/analysis/unitchecker that pdc-lint needs: our
// analyzers exchange no facts, so dependency passes (VetxOnly) only
// touch the facts file and skip analysis entirely.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"

	"pdcquery/internal/lint"
)

// vetConfig mirrors the fields of the go command's vet config
// (cmd/go/internal/work's vetConfig, also unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string, analyzers []*lint.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing vet config %s: %v", cfgFile, err))
	}
	// The go command requires the facts file to exist even though our
	// analyzers produce none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, and we have none
	}

	fset := token.NewFileSet()
	imp := lint.NewVetImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := lint.TypecheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdc-lint:", err)
	os.Exit(1)
}

// printFlagsJSON answers the go command's -flags probe: a JSON array of
// the flags the tool accepts (cmd/go/internal/vet/vetflag.go).
func printFlagsJSON(analyzers []*lint.Analyzer) {
	type flagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	descs := []flagDesc{{Name: "json", Bool: true, Usage: "accepted for compatibility; ignored"}}
	for _, a := range analyzers {
		descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(descs); err != nil {
		fatal(err)
	}
}

// printVersion answers the go command's -V=full probe. The reply's last
// word must be a content hash of the tool so vet results are cached
// correctly across rebuilds (see cmd/go/internal/work.(*Builder).toolID).
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("pdc-lint version devel buildID=%02x\n", h.Sum(nil))
}
