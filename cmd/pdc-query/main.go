// pdc-query is an interactive client for a fleet of pdc-server daemons:
// it parses a textual query, broadcasts it, and prints the hit count,
// modeled times, and optionally the matching data of one object.
//
//	pdc-query -servers 127.0.0.1:7100,127.0.0.1:7101 \
//	          -query "Energy > 2.0 and 100 < x and x < 200" \
//	          -data Energy -limit 10
//
// Subcommands:
//
//	pdc-query trace -servers ... -query "..."   run the query traced and
//	                                            print the plan with
//	                                            actuals plus the span tree
//	pdc-query stats -servers ...                print the fleet's merged
//	                                            telemetry registry
//	                                            (Prometheus text format)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdcquery/internal/client"
	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

func main() {
	mode := ""
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "trace" || args[0] == "stats") {
		mode = args[0]
		args = args[1:]
	}
	servers := flag.String("servers", "127.0.0.1:7100", "comma-separated server addresses")
	qstr := flag.String("query", "", "query text, e.g. \"Energy > 2.0 and x < 200\"")
	dataObj := flag.String("data", "", "also fetch the matching values of this object")
	limit := flag.Int("limit", 10, "print at most this many matches")
	countOnly := flag.Bool("count", false, "only report the number of hits")
	explain := flag.Bool("explain", false, "print the evaluation plan (condition order + selectivity estimates) and exit")
	flag.CommandLine.Parse(args)
	if *qstr == "" && mode != "stats" {
		fmt.Fprintln(os.Stderr, "pdc-query: -query is required")
		os.Exit(2)
	}

	var conns []transport.Conn
	for _, addr := range strings.Split(*servers, ",") {
		conn, err := transport.Dial(strings.TrimSpace(addr))
		if err != nil {
			fatal(err)
		}
		conns = append(conns, conn)
	}
	cli := client.New(conns, nil)
	defer cli.Close()

	if mode == "stats" {
		perServer, merged, err := cli.ServerStats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d servers\n", len(perServer))
		telemetry.WritePrometheus(os.Stdout, merged)
		return
	}

	if err := cli.SyncMeta(); err != nil {
		fatal(err)
	}
	meta := cli.Meta()

	root, err := query.Parse(*qstr, func(name string) (object.ID, bool) {
		o, ok := meta.GetByName(name)
		if !ok {
			return 0, false
		}
		return o.ID, true
	})
	if err != nil {
		fatal(err)
	}
	q := &query.Query{Root: root}

	if mode == "trace" {
		a, err := cli.ExplainAnalyze(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(a)
		fmt.Println()
		fmt.Print(a.Res.Trace().Render(true))
		return
	}

	if *explain {
		plan, err := cli.Explain(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}

	if *countOnly {
		res, err := cli.RunCount(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hits: %d\nmodeled query time: %v (server max %v)\n",
			res.Sel.NHits, res.Info.Elapsed.Total(), res.Info.ServerMax.Total())
		return
	}

	res, err := cli.Run(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hits: %d\nmodeled query time: %v (server max %v)\n",
		res.Sel.NHits, res.Info.Elapsed.Total(), res.Info.ServerMax.Total())
	fmt.Printf("regions: %d evaluated, %d pruned, %d sorted; %d elements scanned\n",
		res.Info.Stats.RegionsEvaluated, res.Info.Stats.RegionsPruned,
		res.Info.Stats.SortedRegions, res.Info.Stats.ElementsScanned)

	show := int(res.Sel.NHits)
	if show > *limit {
		show = *limit
	}
	if *dataObj == "" {
		for i := 0; i < show; i++ {
			fmt.Printf("  match[%d] at index %d\n", i, res.Sel.Coords[i])
		}
		return
	}
	o, ok := meta.GetByName(*dataObj)
	if !ok {
		fatal(fmt.Errorf("unknown object %q", *dataObj))
	}
	data, info, err := res.GetData(o.ID)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modeled get-data time: %v (%d bytes)\n", info.Elapsed.Total(), len(data))
	for i := 0; i < show; i++ {
		fmt.Printf("  %s[%d] = %g\n", *dataObj, res.Sel.Coords[i], dtype.At(o.Type, data, i))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdc-query:", err)
	os.Exit(1)
}
