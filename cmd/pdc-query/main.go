// pdc-query is an interactive client for a fleet of pdc-server daemons:
// it parses a textual query, broadcasts it, and prints the hit count,
// modeled times, and optionally the matching data of one object.
//
//	pdc-query -servers 127.0.0.1:7100,127.0.0.1:7101 \
//	          -query "Energy > 2.0 and 100 < x and x < 200" \
//	          -data Energy -limit 10
//
// Against a cluster deployment (pdc-server -catalog / -join), pass the
// catalog instead of a server list; the committed view supplies the
// members and the query is stamped with the placement epoch:
//
//	pdc-query -catalog 127.0.0.1:7000 -query "Energy > 2.0"
//
// Subcommands:
//
//	pdc-query run "select count where ..."      execute a declarative
//	                                            statement through the
//	                                            cost-based planner
//	                                            (-force pins the strategy)
//	pdc-query explain "select ... where ..."    print the plan without
//	                                            executing ("explain
//	                                            analyze select ..." runs
//	                                            it and adds actuals)
//	pdc-query trace -servers ... -query "..."   run the query traced and
//	                                            print the plan with
//	                                            actuals plus the span tree
//	pdc-query stats -servers ...                print the fleet's merged
//	                                            telemetry registry
//	                                            (Prometheus text format)
//	pdc-query top -servers ...                  one-shot health dashboard:
//	                                            fleet counters, phase
//	                                            latency quantiles, and a
//	                                            per-server table
//	pdc-query events -servers ...               dump every server's
//	                                            flight-recorder ring
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/cluster"
	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/plan"
	"pdcquery/internal/qlang"
	"pdcquery/internal/query"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

func main() {
	mode := ""
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "trace" || args[0] == "stats" || args[0] == "top" || args[0] == "events" ||
		args[0] == "run" || args[0] == "explain") {
		mode = args[0]
		args = args[1:]
	}
	servers := flag.String("servers", "127.0.0.1:7100", "comma-separated server addresses")
	catalog := flag.String("catalog", "", "cluster mode: resolve the serving members from this catalog address instead of -servers")
	qstr := flag.String("query", "", "query text, e.g. \"Energy > 2.0 and x < 200\"")
	dataObj := flag.String("data", "", "also fetch the matching values of this object")
	limit := flag.Int("limit", 10, "print at most this many matches")
	countOnly := flag.Bool("count", false, "only report the number of hits")
	explain := flag.Bool("explain", false, "print the evaluation plan (condition order + selectivity estimates) and exit")
	forceStr := flag.String("force", "", "run/explain modes: pin the planner strategy (scan, bitmap, sorted; default cost-based)")
	flag.CommandLine.Parse(args)
	queryless := mode == "stats" || mode == "top" || mode == "events" ||
		mode == "run" || mode == "explain"
	if *qstr == "" && !queryless {
		fmt.Fprintln(os.Stderr, "pdc-query: -query is required")
		os.Exit(2)
	}

	var cli *client.Client
	if *catalog != "" {
		// Cluster mode: the catalog hands us the committed view and the
		// metadata snapshot; the session builds an epoch-stamped client
		// routed by placement.
		sess, err := cluster.DialSession(cluster.SessionOptions{
			Net:         cluster.TCPNetwork{},
			CatalogAddr: *catalog,
			CallTimeout: 30 * time.Second,
			RetryWait:   50 * time.Millisecond,
			Sleeper:     telemetry.WallSleep,
			Clock:       telemetry.Wall,
		})
		if err != nil {
			fatal(err)
		}
		defer sess.Close()
		if cli, err = sess.Client(); err != nil {
			fatal(err)
		}
	} else {
		var conns []transport.Conn
		for _, addr := range strings.Split(*servers, ",") {
			conn, err := transport.Dial(strings.TrimSpace(addr))
			if err != nil {
				fatal(err)
			}
			conns = append(conns, conn)
		}
		cli = client.New(conns, nil)
		defer cli.Close()
	}

	if mode == "stats" {
		perServer, merged, err := cli.ServerStats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d servers\n", len(perServer))
		telemetry.WritePrometheus(os.Stdout, merged)
		return
	}

	if mode == "top" {
		perServer, merged, err := cli.ServerStats()
		if err != nil {
			fatal(err)
		}
		printTop(perServer, merged)
		return
	}

	if mode == "events" {
		events, totals, err := cli.ServerEvents()
		if err != nil {
			fatal(err)
		}
		for i := range events {
			fmt.Printf("# server %d\n", i)
			telemetry.WriteEvents(os.Stdout, events[i], totals[i])
		}
		return
	}

	if err := cli.SyncMeta(); err != nil {
		fatal(err)
	}
	meta := cli.Meta()

	if mode == "run" || mode == "explain" {
		text := strings.TrimSpace(strings.Join(flag.CommandLine.Args(), " "))
		if text == "" {
			text = *qstr
		}
		if text == "" {
			fatal(fmt.Errorf("%s mode needs a statement, e.g. pdc-query %s 'select count where Energy > 2'", mode, mode))
		}
		if mode == "explain" && !strings.HasPrefix(strings.ToLower(strings.TrimSpace(text)), "explain") {
			text = "explain " + text
		}
		force, err := plan.ParseForce(*forceStr)
		if err != nil {
			fatal(err)
		}
		res, err := cli.RunText(text, force)
		if err != nil {
			fatal(err)
		}
		printTextResult(res, *limit)
		return
	}

	root, err := query.Parse(*qstr, func(name string) (object.ID, bool) {
		o, ok := meta.GetByName(name)
		if !ok {
			return 0, false
		}
		return o.ID, true
	})
	if err != nil {
		fatal(err)
	}
	q := &query.Query{Root: root}

	if mode == "trace" {
		a, err := cli.ExplainAnalyze(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(a)
		fmt.Println()
		fmt.Print(a.Res.Trace().Render(true))
		return
	}

	if *explain {
		plan, err := cli.Explain(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}

	if *countOnly {
		res, err := cli.RunCount(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hits: %d\nmodeled query time: %v (server max %v)\n",
			res.Sel.NHits, res.Info.Elapsed.Total(), res.Info.ServerMax.Total())
		return
	}

	res, err := cli.Run(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hits: %d\nmodeled query time: %v (server max %v)\n",
		res.Sel.NHits, res.Info.Elapsed.Total(), res.Info.ServerMax.Total())
	fmt.Printf("regions: %d evaluated, %d pruned, %d sorted; %d elements scanned\n",
		res.Info.Stats.RegionsEvaluated, res.Info.Stats.RegionsPruned,
		res.Info.Stats.SortedRegions, res.Info.Stats.ElementsScanned)

	show := int(res.Sel.NHits)
	if show > *limit {
		show = *limit
	}
	if *dataObj == "" {
		for i := 0; i < show; i++ {
			fmt.Printf("  match[%d] at index %d\n", i, res.Sel.Coords[i])
		}
		return
	}
	o, ok := meta.GetByName(*dataObj)
	if !ok {
		fatal(fmt.Errorf("unknown object %q", *dataObj))
	}
	data, info, err := res.GetData(o.ID)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modeled get-data time: %v (%d bytes)\n", info.Elapsed.Total(), len(data))
	for i := 0; i < show; i++ {
		fmt.Printf("  %s[%d] = %g\n", *dataObj, res.Sel.Coords[i], dtype.At(o.Type, data, i))
	}
}

// printTextResult renders a text-query outcome: the EXPLAIN text when
// the statement asked for it, then the projection's answer.
func printTextResult(res *client.TextResult, limit int) {
	if res.Explain != "" {
		fmt.Print(res.Explain)
		if res.Sel == nil {
			// Plain EXPLAIN does not execute.
			return
		}
		fmt.Println()
	}
	fmt.Printf("hits: %d\nmodeled query time: %v (server max %v)\n",
		res.Sel.NHits, res.Info.Elapsed.Total(), res.Info.ServerMax.Total())
	switch res.Statement.Projection.Kind {
	case qlang.ProjIDs:
		show := int(res.Sel.NHits)
		if show > limit {
			show = limit
		}
		for i := 0; i < show; i++ {
			fmt.Printf("  match[%d] at index %d\n", i, res.Sel.Coords[i])
		}
	case qlang.ProjHist:
		h := res.Hist
		fmt.Printf("hist(%s): %d values, min %g max %g\n",
			res.Statement.Projection.Col, h.Total, h.Min, h.Max)
		for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
			fmt.Printf("  p%02.0f = %g\n", 100*q, h.Quantile(q))
		}
	}
}

// printTop renders a one-shot health dashboard from the fleet's
// telemetry: headline counters, latency quantiles over the mergeable
// phase distributions, and a per-server table.
func printTop(perServer []*telemetry.Registry, merged *telemetry.Registry) {
	fmt.Printf("fleet: %d servers\n", len(perServer))
	fmt.Printf("queries: %d (slow %d, rejected %d, errors %d)\n",
		merged.Counter("query.count"), merged.Counter("query.slow"),
		merged.Counter("sched.rejected"), merged.Counter("errors"))
	hits, misses := merged.Counter("cache.hits"), merged.Counter("cache.misses")
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("cache: %d hits / %d misses (%.1f%% hit), %d evictions\n",
		hits, misses, rate, merged.Counter("cache.evictions"))
	fmt.Printf("flight recorder: %d events recorded fleet-wide\n", merged.Counter("recorder.events"))
	// Cluster deployments carry membership/rebalance telemetry; the
	// section only appears when the fleet reports a placement epoch.
	if epoch := merged.Gauge("cluster.epoch"); epoch > 0 {
		fmt.Printf("cluster: epoch %.0f; %d transfers (%d bytes, %d errors), %d failover regions promoted\n",
			epoch, merged.Counter("cluster.transfers"), merged.Counter("cluster.transfer.bytes"),
			merged.Counter("cluster.transfer.errors"), merged.Counter("cluster.failover.regions"))
		fmt.Printf("ingest: %d extents (%d bytes), %d meta snapshots\n",
			merged.Counter("ingest.extents"), merged.Counter("ingest.bytes"), merged.Counter("ingest.meta"))
	}
	fmt.Println()

	fmt.Printf("%-28s %8s %12s %12s %12s %12s\n", "latency", "count", "p50", "p95", "p99", "mean")
	for _, name := range merged.DistNames() {
		if !strings.HasPrefix(name, "phase.") && !strings.HasPrefix(name, "query.") &&
			!strings.HasPrefix(name, "sched.") {
			continue
		}
		d := merged.Dist(name)
		if d == nil || d.Count() == 0 {
			continue
		}
		fmt.Printf("%-28s %8d %12v %12v %12v %12v\n", name, d.Count(),
			time.Duration(int64(d.Quantile(0.5))), time.Duration(int64(d.Quantile(0.95))),
			time.Duration(int64(d.Quantile(0.99))), time.Duration(int64(d.Sum/float64(d.Count()))))
	}
	fmt.Println()

	fmt.Printf("%-6s %8s %9s %12s %16s %8s\n", "server", "queries", "sessions", "queue(d/hw)", "cache(hit/miss)", "events")
	for i, r := range perServer {
		fmt.Printf("%-6d %8d %9.0f %6.0f/%-5.0f %8d/%-7d %8d\n", i,
			r.Counter("query.count"), r.Gauge("sessions.live"),
			r.Gauge("sched.queue.depth"), r.Gauge("sched.queue.hiwater"),
			r.Counter("cache.hits"), r.Counter("cache.misses"),
			r.Counter("recorder.events"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdc-query:", err)
	os.Exit(1)
}
