// BOSS example: the paper's astronomy workload (§VI-C). Millions of
// small fiber objects carry sky-position metadata; an astronomer first
// narrows to the fibers at one sky position with a metadata (tag) query,
// then counts flux values in a range across just those objects — without
// traversing the rest of the survey.
package main

import (
	"flag"
	"fmt"
	"log"

	"pdcquery"
	"pdcquery/internal/dtype"
	"pdcquery/internal/workload"
)

func main() {
	objects := flag.Int("objects", 10000, "number of fiber objects")
	fluxLen := flag.Int("flux", 200, "flux samples per fiber")
	flag.Parse()

	fmt.Printf("importing %d fiber objects (%d flux samples each)...\n", *objects, *fluxLen)
	fibers := workload.GenerateBOSS(*objects, *fluxLen, 7)

	d := pdcquery.NewDeployment(pdcquery.Options{Servers: 8, RegionBytes: 1 << 20})
	cont := d.CreateContainer("h5boss")
	for _, f := range fibers {
		_, err := d.ImportObject(cont.ID, pdcquery.Property{
			Name: f.Name, Type: pdcquery.Float32, Dims: []uint64{uint64(len(f.Flux))},
			Tags: map[string]string{"RADEG": f.RADeg, "DECDEG": f.DECDeg},
		}, dtype.Bytes(f.Flux))
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Metadata query (PDCquery_tag): the paper's
	// "RADEG=153.17 AND DECDEG=23.06" selecting 1000 objects.
	conds := []pdcquery.TagCond{
		{Key: "RADEG", Value: fibers[0].RADeg},
		{Key: "DECDEG", Value: fibers[0].DECDeg},
	}
	matched, tagInfo, err := d.Client().QueryTag(conds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metadata query RADEG=%s AND DECDEG=%s: %d objects in %v\n",
		fibers[0].RADeg, fibers[0].DECDeg, len(matched), tagInfo.Elapsed.Total())

	// Data condition over just the matched objects: 0 < flux < 20.
	var hits, total uint64
	for _, id := range matched {
		q := pdcquery.NewQuery(pdcquery.Between(id, 0, 20, false, false))
		res, err := d.Client().RunCount(q)
		if err != nil {
			log.Fatal(err)
		}
		hits += res.Sel.NHits
		total += uint64(*fluxLen)
	}
	fmt.Printf("data query 0 < flux < 20 over the %d matched fibers: %d of %d values (%.1f%%)\n",
		len(matched), hits, total, 100*float64(hits)/float64(total))
	fmt.Println("(the HDF5 baseline would have opened and inspected every file in the survey)")
}
