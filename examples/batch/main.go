// Batch example: out-of-core retrieval with PDCquery_get_data_batch. A
// query selects far more data than the analysis wants to hold at once;
// the client streams the matching values in fixed-size batches and folds
// them into a running statistic (here, mean and max of the selected
// energies).
package main

import (
	"flag"
	"fmt"
	"log"

	"pdcquery"
	"pdcquery/internal/dtype"
	"pdcquery/internal/workload"
)

func main() {
	logn := flag.Int("logn", 18, "2^logn particles")
	batch := flag.Uint64("batch", 4096, "hits per batch")
	flag.Parse()
	n := 1 << *logn

	v := workload.GenerateVPIC(n, 42)
	d := pdcquery.NewDeployment(pdcquery.Options{Servers: 4, RegionBytes: 64 << 10})
	cont := d.CreateContainer("vpic")
	obj, err := d.ImportObject(cont.ID, pdcquery.Property{
		Name: "Energy", Type: pdcquery.Float32, Dims: []uint64{uint64(n)},
	}, dtype.Bytes(v.Vars["Energy"]))
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// A low threshold on purpose: the result is "too large" relative to
	// the batch size, the case PDCquery_get_data_batch exists for.
	q := pdcquery.NewQuery(pdcquery.QueryCreate(obj.ID, pdcquery.OpGT, 0.5))
	res, err := d.Client().Run(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query Energy > 0.5: %d hits; streaming in batches of %d\n", res.Sel.NHits, *batch)

	var (
		batches int
		count   float64
		sum     float64
		max     float64
	)
	info, err := res.GetDataBatch(obj.ID, *batch, func(sel *pdcquery.Selection, data []byte) error {
		batches++
		for _, e := range dtype.View[float32](data) {
			sum += float64(e)
			count++
			if float64(e) > max {
				max = float64(e)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d batches (%0.f values): mean energy %.4f, max %.4f\n",
		batches, count, sum/count, max)
	fmt.Printf("modeled retrieval time: %v\n", info.Elapsed.Total())
}
