// Quickstart: create a PDC-Query deployment, import an object, and run a
// range query — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"pdcquery"
	"pdcquery/internal/dtype"
)

func main() {
	// A deployment with 4 query servers over in-process transport.
	d := pdcquery.NewDeployment(pdcquery.Options{Servers: 4})
	cont := d.CreateContainer("demo")

	// One float32 object holding a million samples of a sine-ish signal.
	const n = 1 << 20
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i%1000) / 10 // 0.0 .. 99.9, repeating
	}
	obj, err := d.ImportObject(cont.ID, pdcquery.Property{
		Name: "signal", Type: pdcquery.Float32, Dims: []uint64{n},
	}, dtype.Bytes(vals))
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// "signal > 99.5" — built with the PDCquery_create/and equivalents.
	q := pdcquery.NewQuery(pdcquery.QueryCreate(obj.ID, pdcquery.OpGT, 99.5))
	res, err := d.Client().Run(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q matched %d of %d elements\n", "signal > 99.5", res.Sel.NHits, n)
	fmt.Printf("modeled elapsed: %v (slowest server %v)\n",
		res.Info.Elapsed.Total(), res.Info.ServerMax.Total())

	// Fetch the matching values (PDCquery_get_data).
	data, info, err := res.GetData(obj.ID)
	if err != nil {
		log.Fatal(err)
	}
	first := dtype.View[float32](data)[0]
	fmt.Printf("fetched %d values in %v; first match: signal[%d] = %v\n",
		res.Sel.NHits, info.Elapsed.Total(), res.Sel.Coords[0], first)
}
