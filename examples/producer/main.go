// Producer example: the PDC write path. A simulation produces an object
// region by region — each "rank" writes its share in arbitrary order, and
// the system generates per-region histograms, min/max, and bitmap indexes
// on the spot (§III-D2: histograms are generated "when data is either
// produced within PDC or imported"). After finalization the object is
// immediately queryable with every strategy, and the system can be
// checkpointed for later server fleets.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"pdcquery"
	"pdcquery/internal/dtype"
)

func main() {
	logn := flag.Int("logn", 18, "2^logn elements")
	ckpt := flag.String("checkpoint", "", "optionally save a deployment checkpoint here")
	flag.Parse()
	n := 1 << *logn

	d := pdcquery.NewDeployment(pdcquery.Options{
		Servers: 4, RegionBytes: 64 << 10, BuildIndex: true,
		Strategy: pdcquery.StrategyHistogram,
	})
	cont := d.CreateContainer("simulation")
	obj, err := d.CreateObject(cont.ID, pdcquery.Property{
		Name: "pressure", Type: pdcquery.Float32, Dims: []uint64{uint64(n)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object %q created with %d regions; producing out of order...\n",
		obj.Name, len(obj.Regions))

	// "Ranks" write their regions in shuffled order, as a parallel
	// simulation would.
	order := rand.New(rand.NewSource(7)).Perm(len(obj.Regions))
	for _, ri := range order {
		r := obj.Regions[ri].Region
		vals := make([]float32, r.NumElems())
		base := float32(ri) // each region has its own pressure regime
		for i := range vals {
			vals[i] = base + float32(i%100)/100
		}
		if err := d.WriteRegion(obj.ID, ri, dtype.Bytes(vals)); err != nil {
			log.Fatal(err)
		}
	}
	if err := d.FinalizeObject(obj.ID); err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// The freshly produced object is queryable; region pruning works
	// because each region's histogram was built at write time.
	mid := float64(len(obj.Regions) / 2)
	q := pdcquery.NewQuery(pdcquery.Between(obj.ID, mid, mid+0.5, false, false))
	res, err := d.Client().Run(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %.1f < pressure < %.1f: %d hits, %d regions pruned of %d\n",
		mid, mid+0.5, res.Sel.NHits, res.Info.Stats.RegionsPruned, len(obj.Regions))

	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.SaveCheckpoint(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s (serve it with: pdc-server -load %s)\n", *ckpt, *ckpt)
	}
}
