// VPIC example: the paper's motivating plasma-physics workload. A
// synthetic magnetic-reconnection particle dataset is imported with
// histograms, bitmap indexes, and an energy-sorted replica; the example
// then hunts for highly energetic particles with each of the four
// evaluation strategies and compares their modeled costs — a miniature
// Fig. 3/Fig. 4.
package main

import (
	"flag"
	"fmt"
	"log"

	"pdcquery"
	"pdcquery/internal/dtype"
	"pdcquery/internal/workload"
)

func main() {
	logn := flag.Int("logn", 18, "2^logn particles")
	flag.Parse()
	n := 1 << *logn

	fmt.Printf("generating %d particles (7 objects: %v)...\n", n, workload.VPICNames)
	v := workload.GenerateVPIC(n, 42)

	d := pdcquery.NewDeployment(pdcquery.Options{
		Servers:     8,
		RegionBytes: 64 << 10,
		BuildIndex:  true,
	})
	cont := d.CreateContainer("vpic")
	ids := map[string]pdcquery.ObjectID{}
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(cont.ID, pdcquery.Property{
			Name: name, Type: pdcquery.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			log.Fatal(err)
		}
		ids[name] = o.ID
	}
	// The user hint from §III-D3: keep a sorted copy keyed by Energy.
	if err := d.BuildSortedReplica(ids["Energy"]); err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// The physicist's question: where are the energetic particles inside
	// the reconnection region?
	q := pdcquery.NewQuery(pdcquery.And(
		pdcquery.QueryCreate(ids["Energy"], pdcquery.OpGT, 2.5),
		pdcquery.And(
			pdcquery.Between(ids["x"], 100, 200, false, false),
			pdcquery.Between(ids["y"], -90, 0, false, false))))

	fmt.Printf("\nquery: Energy > 2.5 AND 100 < x < 200 AND -90 < y < 0\n\n")
	fmt.Printf("%-8s %12s %12s %10s %10s\n", "strategy", "query-time", "get-data", "hits", "pruned")
	for _, s := range []pdcquery.Strategy{
		pdcquery.StrategyFullScan, pdcquery.StrategyHistogram,
		pdcquery.StrategyIndex, pdcquery.StrategySorted,
	} {
		d.SetStrategy(s)
		d.ResetCaches()
		res, err := d.Client().Run(q)
		if err != nil {
			log.Fatal(err)
		}
		data, dinfo, err := res.GetData(ids["Energy"])
		if err != nil {
			log.Fatal(err)
		}
		_ = data
		fmt.Printf("%-8s %12v %12v %10d %10d\n",
			s, res.Info.Elapsed.Total(), dinfo.Elapsed.Total(),
			res.Sel.NHits, res.Info.Stats.RegionsPruned)
	}

	// And the global histogram the system maintains for free (§IV).
	h, _, err := d.Client().GetHistogram(ids["Energy"])
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := h.SelectivityBounds(2.5, 1e9, false, false)
	fmt.Printf("\nglobal histogram: %d bins, estimated selectivity of Energy > 2.5: %.4f%%..%.4f%%\n",
		h.NumBins(), 100*lo, 100*hi)
}
