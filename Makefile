# PDC-Query reproduction — common workflows.

GO ?= go

.PHONY: all build test race bench figures verify examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper figure + ablations + throughput benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation (modeled times).
figures:
	$(GO) run ./cmd/pdc-bench -fig all -logn 20 -servers 64

# Figures with brute-force verification of every query result.
verify:
	$(GO) run ./cmd/pdc-bench -fig all -logn 18 -servers 16 -verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vpic -logn 18
	$(GO) run ./examples/boss -objects 5000
	$(GO) run ./examples/batch -logn 18
	$(GO) run ./examples/producer -logn 18

clean:
	$(GO) clean ./...
