# PDC-Query reproduction — common workflows.

GO ?= go

.PHONY: all build lint test cover race fuzz stress chaos bench bench-diff bench-seed bench-smoke debug-smoke cluster-smoke cluster-test hotalloc-report figures verify examples clean

all: build lint test

build:
	$(GO) build ./...

# Static analysis in one gate: go vet plus the fourteen project
# invariant checkers (see internal/lint and `pdc-lint -list`):
# determinism, mutex guarding, protocol exhaustiveness, no panics on
# request paths, charged request-path I/O, wire symmetry, lock-order
# acyclicity, cancellation propagation, alias escapes from exported
# methods (aliasguard), hot-path allocation budgets (hotalloc), and the
# CFG/dataflow tier — barrier determinism in pooled workers
# (barrierdet), request-path error propagation (errflow), path-sensitive
# nilness at charge sites (nilcharge), and lock-hold hygiene (lockhold).
# One pdc-lint invocation runs all fourteen over a single loaded package
# set, call graph, and CFG cache; -timing prints the per-analyzer step
# budget, and the run also fails on stale hotalloc_budget.json entries.
# Also usable as `go vet -vettool=$$(pwd)/bin/pdc-lint ./...`.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/pdc-lint -timing ./...

test:
	$(GO) test ./...

# Coverage over all packages; writes cover.out and prints the total.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

race:
	$(GO) test -race ./...

# Scheduler stress under the race detector: concurrent sessions vs the
# brute-force oracle, admission-control overload, worker-count
# determinism, busy-retry, and async-lifetime leak checks. A separate CI
# step so scheduler interleaving failures are attributable at a glance.
stress:
	$(GO) test -race -count=2 -run \
		'TestConcurrentSessionsStress|TestOverloadBusyReplies|TestWorkerCountDeterminism' \
		./internal/core/
	$(GO) test -race -count=2 -run \
		'TestBusyRetry|TestQueryBudgetEndToEnd|TestRunAsyncReapedOnClose|TestClosedClientReturnsError' \
		./internal/client/
	$(GO) test -race -count=2 -run 'Test' ./internal/sched/

# Chaos soak: CHAOS_SEEDS seeded fault schedules (drop/corrupt/storage
# faults at deterministic operation counts) against the brute-force
# oracle, plus the pinned corpus and the checkpoint crash-recovery
# round-trip. Invariant: zero wrong answers — every fault is masked by
# recovery or surfaces as a typed error. A failing seed replays exactly;
# pin it in internal/fault/corpus_test.go.
CHAOS_SEEDS ?= 64
CLUSTER_SEEDS ?= 32
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestCorpus|TestClusterChaos' \
		./internal/fault/ -chaos-seeds $(CHAOS_SEEDS) -cluster-seeds $(CLUSTER_SEEDS)

# Short fuzz smoke on the serialization-heavy packages; CI runs this.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz=FuzzWAHRoundTrip -fuzztime=$(FUZZTIME) ./internal/wah/
	$(GO) test -fuzz=FuzzHistogramMerge -fuzztime=$(FUZZTIME) ./internal/histogram/
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=$(FUZZTIME) ./internal/qlang/

# One benchmark per paper figure + ablations + throughput benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Performance ratchet: deterministic allocs/op (hot kernels) and modeled
# virtual-time figures vs the committed BENCH_seed.json baseline. Fails
# on >10% allocs/op (any alloc for zero-pinned kernels) or >15% modeled
# wall-clock regression. Deterministic by construction, so CI runs it.
bench-diff:
	$(GO) run ./cmd/pdc-benchdiff

# Regenerate the committed baseline after a deliberate perf change.
bench-seed:
	$(GO) run ./cmd/pdc-benchdiff -write

# CI smoke alias: the ratchet is cheap enough to run on every push.
bench-smoke: bench-diff

# Observability smoke: boot a real pdc-server daemon, run a query, then
# scrape /metrics (strict text-exposition parse, expected series),
# /debug/events (the flight recorder shows the query just served), and
# /debug/pprof. Validates the whole record→aggregate→expose→scrape path.
debug-smoke:
	$(GO) build -o bin/pdc-server ./cmd/pdc-server
	$(GO) run ./cmd/pdc-debugsmoke -server bin/pdc-server

# Distributed smoke: boot a real pdc-server catalog plus three member
# processes over TCP, import with R=2 replication, answer the corpus
# byte-identically to the brute-force oracle through a mid-corpus
# SIGKILL and a replacement join, then strictly parse every process's
# /metrics. Exercises the whole multi-process path end to end.
cluster-smoke:
	$(GO) build -o bin/pdc-server ./cmd/pdc-server
	$(GO) run ./cmd/pdc-clustersmoke -server bin/pdc-server

# Multi-process cluster tests (process spawn + drain) outside -short.
cluster-test:
	$(GO) test -race -count=1 -run 'TestProcess' ./internal/core/
	$(GO) test -race -count=1 -run 'TestCluster|TestCatalog|TestPlacement' ./internal/cluster/

# Regenerate the hot-path allocation census (the shape the committed
# internal/lint/hotalloc_budget.json entries are drawn from).
hotalloc-report:
	$(GO) run ./cmd/pdc-lint -hotalloc-report ./...

# Regenerate every figure of the paper's evaluation (modeled times).
figures:
	$(GO) run ./cmd/pdc-bench -fig all -logn 20 -servers 64

# Figures with brute-force verification of every query result.
verify:
	$(GO) run ./cmd/pdc-bench -fig all -logn 18 -servers 16 -verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vpic -logn 18
	$(GO) run ./examples/boss -objects 5000
	$(GO) run ./examples/batch -logn 18
	$(GO) run ./examples/producer -logn 18

clean:
	$(GO) clean ./...
