// Package pdcquery is a Go reproduction of "Parallel Query Service for
// Object-centric Data Management Systems" (Tang, Byna, Dong, Koziol —
// IPDPS 2020): PDC-Query, a parallel querying service that operates
// directly on the objects of an object-centric data management system.
//
// The public API mirrors the paper's Fig. 1 interface:
//
//	d := pdcquery.NewDeployment(pdcquery.Options{Servers: 64})
//	cont := d.CreateContainer("vpic")
//	energy, _ := d.ImportObject(cont.ID, pdcquery.Property{
//		Name: "Energy", Type: pdcquery.Float32, Dims: []uint64{n},
//	}, raw)
//	_ = d.Start()
//
//	// PDCquery_create / PDCquery_and / PDCquery_or
//	q := pdcquery.NewQuery(pdcquery.And(
//		pdcquery.QueryCreate(energy.ID, pdcquery.OpGT, 2.1),
//		pdcquery.QueryCreate(energy.ID, pdcquery.OpLT, 2.2)))
//
//	res, _ := d.Client().Run(q)        // PDCquery_get_selection
//	data, _, _ := res.GetData(energy.ID) // PDCquery_get_data
//
// Four evaluation strategies are available (§III-D): full scan (PDC-F),
// global-histogram pruning and ordering (PDC-H, the default), bitmap
// indexes (PDC-HI), and sorted reorganization (PDC-SH). The experiment
// harness under cmd/pdc-bench regenerates every figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package pdcquery

import (
	"pdcquery/internal/client"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/histogram"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/selection"
)

// Deployment assembles N PDC servers, a metadata service, the storage
// substrate, and a connected client.
type Deployment = core.Deployment

// Options configures a deployment (server count, strategy, region size,
// index construction, cost model).
type Options = core.Options

// NewDeployment creates an empty deployment; import objects, then Start.
func NewDeployment(opts Options) *Deployment { return core.NewDeployment(opts) }

// Client is the application-facing library (the paper's PDC client).
type Client = client.Client

// QueryResult is a completed query with its merged selection.
type QueryResult = client.QueryResult

// Info reports the modeled execution profile of a client call.
type Info = client.Info

// Future is an in-flight asynchronous query (Client.RunAsync).
type Future = client.Future

// Plan is a query's evaluation plan (Client.Explain).
type Plan = client.Plan

// Object model ---------------------------------------------------------------

// ObjectID identifies a data object.
type ObjectID = object.ID

// ContainerID identifies a container.
type ContainerID = object.ContainerID

// Object is a data object with its region metadata.
type Object = object.Object

// Property describes an object at creation time.
type Property = object.Property

// Region is an N-dimensional hyper-rectangle (for spatial constraints).
type Region = region.Region

// NewRegion builds a region from offsets and counts.
func NewRegion(offset, count []uint64) Region { return region.New(offset, count) }

// Selection is the set of matching element locations a query returns.
type Selection = selection.Selection

// Histogram is the mergeable (global) histogram of §IV.
type Histogram = histogram.Histogram

// TagCond is one metadata equality condition for QueryTag.
type TagCond = metadata.TagCond

// Element types supported by data objects.
const (
	Float32 = dtype.Float32
	Float64 = dtype.Float64
	Int8    = dtype.Int8
	Int16   = dtype.Int16
	Int32   = dtype.Int32
	Int64   = dtype.Int64
	Uint8   = dtype.Uint8
	Uint16  = dtype.Uint16
	Uint32  = dtype.Uint32
	Uint64  = dtype.Uint64
)

// Query construction ---------------------------------------------------------

// Query is a condition tree plus an optional spatial constraint.
type Query = query.Query

// Node is one node of the condition tree.
type Node = query.Node

// Op is a comparison operator.
type Op = query.Op

// Comparison operators for QueryCreate.
const (
	OpGT = query.OpGT
	OpGE = query.OpGE
	OpLT = query.OpLT
	OpLE = query.OpLE
	OpEQ = query.OpEQ
)

// QueryCreate builds a one-sided comparison on an object
// (PDCquery_create).
func QueryCreate(obj ObjectID, op Op, value float64) *Node {
	return query.Leaf(obj, op, value)
}

// And combines two conditions (PDCquery_and).
func And(l, r *Node) *Node { return query.And(l, r) }

// Or combines two conditions (PDCquery_or).
func Or(l, r *Node) *Node { return query.Or(l, r) }

// Between builds lo < obj < hi with the given bound inclusivity.
func Between(obj ObjectID, lo, hi float64, loIncl, hiIncl bool) *Node {
	return query.Between(obj, lo, hi, loIncl, hiIncl)
}

// NewQuery wraps a condition tree into an executable query.
func NewQuery(root *Node) *Query { return &Query{Root: root} }

// Strategies -----------------------------------------------------------------

// Strategy selects the query evaluation optimization (§III-D).
type Strategy = exec.Strategy

// The paper's four approaches.
const (
	StrategyFullScan  = exec.FullScan        // PDC-F
	StrategyHistogram = exec.Histogram       // PDC-H (default)
	StrategyIndex     = exec.HistogramIndex  // PDC-HI
	StrategySorted    = exec.SortedHistogram // PDC-SH
)

// ParseStrategy accepts "PDC-F", "PDC-H", "PDC-HI", "PDC-SH" and plain
// names ("fullscan", "histogram", "index", "sorted").
func ParseStrategy(s string) (Strategy, error) { return exec.ParseStrategy(s) }
