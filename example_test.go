package pdcquery_test

import (
	"fmt"
	"log"

	pdcquery "pdcquery"
	"pdcquery/internal/dtype"
)

// Example demonstrates the Fig. 1 workflow end to end: import an object,
// query a value range, and fetch the matching data.
func Example() {
	d := pdcquery.NewDeployment(pdcquery.Options{Servers: 4})
	cont := d.CreateContainer("demo")

	vals := make([]float32, 10000)
	for i := range vals {
		vals[i] = float32(i) / 100 // 0.00 .. 99.99
	}
	obj, err := d.ImportObject(cont.ID, pdcquery.Property{
		Name: "temperature", Type: pdcquery.Float32, Dims: []uint64{10000},
	}, dtype.Bytes(vals))
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// 99 < temperature <= 99.5
	q := pdcquery.NewQuery(pdcquery.Between(obj.ID, 99, 99.5, false, true))
	res, err := d.Client().Run(q)
	if err != nil {
		log.Fatal(err)
	}
	data, _, err := res.GetData(obj.ID)
	if err != nil {
		log.Fatal(err)
	}
	first := dtype.View[float32](data)[0]
	fmt.Printf("hits: %d\n", res.Sel.NHits)
	fmt.Printf("first match: temperature[%d] = %v\n", res.Sel.Coords[0], first)
	// Output:
	// hits: 50
	// first match: temperature[9901] = 99.01
}
