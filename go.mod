module pdcquery

go 1.22
