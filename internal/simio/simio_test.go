package simio

import (
	"bytes"
	"testing"
	"time"

	"pdcquery/internal/vclock"
)

func testModel() Model {
	m := DefaultModel()
	m.Streams = 1
	return m
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New(testModel())
	a := vclock.NewAccount()
	data := []byte("hello, lustre")
	s.Write(a, "obj/0", PFS, data)
	got, err := s.ReadAll(a, "obj/0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q, want %q", got, data)
	}
	// Write copied: mutating the original must not affect the store.
	data[0] = 'X'
	got, _ = s.ReadAll(nil, "obj/0")
	if got[0] != 'h' {
		t.Error("Write did not copy its input")
	}
}

func TestReadPartial(t *testing.T) {
	s := New(testModel())
	s.Write(nil, "e", Memory, []byte("0123456789"))
	got, err := s.Read(nil, "e", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "3456" {
		t.Errorf("partial read = %q, want 3456", got)
	}
}

func TestReadErrors(t *testing.T) {
	s := New(testModel())
	s.Write(nil, "e", Memory, make([]byte, 10))
	if _, err := s.Read(nil, "missing", 0, 1); err == nil {
		t.Error("read of missing extent succeeded")
	}
	if _, err := s.Read(nil, "e", 8, 4); err == nil {
		t.Error("out-of-bounds read succeeded")
	}
	if _, err := s.Read(nil, "e", -1, 2); err == nil {
		t.Error("negative offset read succeeded")
	}
	if _, err := s.ReadAll(nil, "missing"); err == nil {
		t.Error("ReadAll of missing extent succeeded")
	}
}

func TestCostLatencyPlusBandwidth(t *testing.T) {
	m := testModel()
	m.Tiers[PFS] = TierParams{ReadLatency: time.Millisecond, ReadBW: 1e9}
	m.BWFactor = 1
	s := New(m)
	s.Write(nil, "e", PFS, make([]byte, 1e6))
	a := vclock.NewAccount()
	if _, err := s.ReadAll(a, "e"); err != nil {
		t.Fatal(err)
	}
	// 1ms latency + 1e6 bytes / 1e9 B/s = 1ms transfer = 2ms total.
	if got := a.Cost().Part(vclock.Storage); got != 2*time.Millisecond {
		t.Errorf("read cost = %v, want 2ms", got)
	}
	if a.Counter("read.ops") != 1 || a.Counter("read.bytes") != 1e6 {
		t.Errorf("counters = %s", a.Snapshot())
	}
}

func TestContentionCapsBandwidth(t *testing.T) {
	m := testModel()
	m.Tiers[PFS] = TierParams{ReadBW: 10e9, SharedBW: 20e9}
	s := New(m)
	s.Write(nil, "e", PFS, make([]byte, 1e6))

	read := func(streams int) time.Duration {
		s.SetStreams(streams)
		a := vclock.NewAccount()
		if _, err := s.ReadAll(a, "e"); err != nil {
			t.Fatal(err)
		}
		return a.Cost().Total()
	}
	t1 := read(1)   // 10 GB/s per stream
	t64 := read(64) // shared 20/64 GB/s per stream
	if t64 <= t1 {
		t.Errorf("contention not applied: 1 stream %v vs 64 streams %v", t1, t64)
	}
	// 64 streams: effective bw = 20e9/64 = 0.3125e9 -> 32x slower than 10e9.
	if ratio := float64(t64) / float64(t1); ratio < 30 || ratio > 34 {
		t.Errorf("contention ratio = %.1f, want ~32", ratio)
	}
}

func TestBWFactorSlowsReads(t *testing.T) {
	m := testModel()
	m.Tiers[PFS] = TierParams{ReadBW: 1e9}
	s := New(m)
	s.Write(nil, "e", PFS, make([]byte, 1e6))
	a1 := vclock.NewAccount()
	s.ReadAll(a1, "e")

	m.BWFactor = 0.5
	s2 := New(m)
	s2.Write(nil, "e", PFS, make([]byte, 1e6))
	a2 := vclock.NewAccount()
	s2.ReadAll(a2, "e")

	if a2.Cost().Total() <= a1.Cost().Total() {
		t.Errorf("BWFactor 0.5 not slower: %v vs %v", a2.Cost().Total(), a1.Cost().Total())
	}
}

func TestReadRangesAggregation(t *testing.T) {
	m := testModel()
	m.Tiers[PFS] = TierParams{ReadLatency: time.Millisecond, ReadBW: 1e9}
	m.AggGap = 100
	s := New(m)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	s.Write(nil, "e", PFS, data)

	// Three ranges: first two 50 bytes apart (merge), third 500 away (no merge).
	ranges := []Range{{0, 100}, {150, 100}, {800, 100}}
	a := vclock.NewAccount()
	out, err := s.ReadRanges(a, "e", ranges)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		if !bytes.Equal(out[i], data[r.Off:r.Off+r.Len]) {
			t.Errorf("range %d content mismatch", i)
		}
	}
	if got := a.Counter("read.ops"); got != 2 {
		t.Errorf("aggregated ops = %d, want 2", got)
	}
	// merged bytes: [0,250) = 250 plus [800,900) = 100 -> 350.
	if got := a.Counter("read.bytes"); got != 350 {
		t.Errorf("aggregated bytes = %d, want 350", got)
	}
}

func TestReadRangesNoAggregation(t *testing.T) {
	m := testModel()
	m.Aggregate = false
	s := New(m)
	s.Write(nil, "e", PFS, make([]byte, 1000))
	a := vclock.NewAccount()
	if _, err := s.ReadRanges(a, "e", []Range{{0, 10}, {10, 10}, {20, 10}}); err != nil {
		t.Fatal(err)
	}
	// Even adjacent ranges stay separate ops without aggregation.
	if got := a.Counter("read.ops"); got != 3 {
		t.Errorf("ops = %d, want 3", got)
	}
	if got := a.Counter("read.bytes"); got != 30 {
		t.Errorf("bytes = %d, want 30", got)
	}
}

func TestReadRangesUnsortedInput(t *testing.T) {
	s := New(testModel())
	data := []byte("abcdefghij")
	s.Write(nil, "e", Memory, data)
	out, err := s.ReadRanges(nil, "e", []Range{{8, 2}, {0, 2}, {4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ij", "ab", "ef"}
	for i := range want {
		if string(out[i]) != want[i] {
			t.Errorf("out[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

func TestReadRangesOutOfBounds(t *testing.T) {
	s := New(testModel())
	s.Write(nil, "e", Memory, make([]byte, 10))
	if _, err := s.ReadRanges(nil, "e", []Range{{5, 10}}); err == nil {
		t.Error("out-of-bounds range read succeeded")
	}
	if _, err := s.ReadRanges(nil, "missing", nil); err == nil {
		t.Error("missing extent ReadRanges succeeded")
	}
}

func TestMigrate(t *testing.T) {
	s := New(testModel())
	a := vclock.NewAccount()
	s.Write(nil, "e", PFS, []byte("data"))
	if err := s.Migrate(a, "e", Memory); err != nil {
		t.Fatal(err)
	}
	tier, err := s.TierOf("e")
	if err != nil {
		t.Fatal(err)
	}
	if tier != Memory {
		t.Errorf("tier after migrate = %v, want memory", tier)
	}
	if a.Counter("migrate.ops") != 1 {
		t.Errorf("migrate ops = %d", a.Counter("migrate.ops"))
	}
	// Same-tier migrate is free.
	a2 := vclock.NewAccount()
	if err := s.Migrate(a2, "e", Memory); err != nil {
		t.Fatal(err)
	}
	if a2.Cost().Total() != 0 {
		t.Errorf("same-tier migrate charged %v", a2.Cost().Total())
	}
	if err := s.Migrate(nil, "missing", Memory); err == nil {
		t.Error("migrate of missing extent succeeded")
	}
}

func TestDeleteExistsKeys(t *testing.T) {
	s := New(testModel())
	s.Write(nil, "b", Memory, []byte("1"))
	s.Write(nil, "a", PFS, []byte("22"))
	if !s.Exists("a") || !s.Exists("b") {
		t.Error("extents missing after write")
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
	if got := s.TotalBytes(-1); got != 3 {
		t.Errorf("total bytes = %d, want 3", got)
	}
	if got := s.TotalBytes(PFS); got != 2 {
		t.Errorf("pfs bytes = %d, want 2", got)
	}
	s.Delete("a")
	s.Delete("a") // no-op
	if s.Exists("a") {
		t.Error("extent a still exists after delete")
	}
}

func TestWriteOwnedNoCopy(t *testing.T) {
	s := New(testModel())
	data := []byte("owned")
	s.WriteOwned(nil, "e", Memory, data)
	got, _ := s.ReadAll(nil, "e")
	if &got[0] != &data[0] {
		t.Error("WriteOwned copied the buffer")
	}
}

func TestTierString(t *testing.T) {
	if Memory.String() != "memory" || PFS.String() != "pfs" || BurstBuffer.String() != "burst-buffer" {
		t.Error("tier names wrong")
	}
	if Tier(9).String() == "" {
		t.Error("unknown tier name empty")
	}
}

func TestMemoryTierMuchFasterThanPFS(t *testing.T) {
	s := New(testModel())
	s.Write(nil, "mem", Memory, make([]byte, 1<<20))
	s.Write(nil, "pfs", PFS, make([]byte, 1<<20))
	am, ap := vclock.NewAccount(), vclock.NewAccount()
	s.ReadAll(am, "mem")
	s.ReadAll(ap, "pfs")
	if am.Cost().Total()*10 > ap.Cost().Total() {
		t.Errorf("memory read %v not >>10x faster than pfs %v", am.Cost().Total(), ap.Cost().Total())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(testModel())
	s.Write(nil, "a", PFS, []byte("alpha"))
	s.Write(nil, "b/nested", Memory, make([]byte, 10000))
	s.Write(nil, "c", BurstBuffer, nil)

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New(testModel())
	s2.Write(nil, "stale", PFS, []byte("gone")) // replaced by ReadFrom
	if _, err := s2.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Exists("stale") {
		t.Error("ReadFrom kept pre-existing extents")
	}
	keys := s2.Keys()
	if len(keys) != 3 {
		t.Fatalf("restored keys = %v", keys)
	}
	got, err := s2.ReadAll(nil, "a")
	if err != nil || string(got) != "alpha" {
		t.Errorf("restored a = %q, %v", got, err)
	}
	tier, _ := s2.TierOf("b/nested")
	if tier != Memory {
		t.Errorf("restored tier = %v", tier)
	}
	if sz, _ := s2.Size("c"); sz != 0 {
		t.Errorf("restored empty extent size = %d", sz)
	}
}

func TestSnapshotErrors(t *testing.T) {
	s := New(testModel())
	if _, err := s.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
	bad := make([]byte, 16)
	if _, err := s.ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid snapshot, truncated mid-extent.
	src := New(testModel())
	src.Write(nil, "x", PFS, make([]byte, 100))
	var buf bytes.Buffer
	src.WriteTo(&buf)
	full := buf.Bytes()
	if _, err := s.ReadFrom(bytes.NewReader(full[:len(full)-10])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}
