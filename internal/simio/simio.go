// Package simio is the storage substrate under the PDC servers: a
// deterministic model of an HPC storage hierarchy that really stores the
// bytes and charges virtual time for every access.
//
// The paper's PDC runs against Lustre with data spread across storage
// devices and small reads aggregated into larger ones (§III-E); regions can
// live on any layer of the memory/storage hierarchy (§II). This package
// models three tiers (memory, burst buffer, parallel file system) with
// per-operation latency, per-stream bandwidth, and a shared backend
// bandwidth cap that creates contention when many servers stream at once.
// Costs are charged to a vclock.Account instead of sleeping, so experiments
// are deterministic and fast while preserving the two drivers behind every
// result in the paper: bytes touched and number of non-contiguous
// operations.
package simio

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"pdcquery/internal/dtype"
	"pdcquery/internal/vclock"
)

// Tier identifies a layer of the storage hierarchy.
type Tier int

const (
	// Memory is server DRAM (the region cache target).
	Memory Tier = iota
	// BurstBuffer is an NVRAM/SSD layer.
	BurstBuffer
	// PFS is the parallel file system (Lustre in the paper).
	PFS
	numTiers
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case Memory:
		return "memory"
	case BurstBuffer:
		return "burst-buffer"
	case PFS:
		return "pfs"
	}
	//lint:ignore hotalloc unreachable for defined tiers; debug fallback only
	return fmt.Sprintf("Tier(%d)", int(t))
}

// TierParams is the cost model for one tier.
type TierParams struct {
	// ReadLatency is charged once per read operation.
	ReadLatency time.Duration
	// WriteLatency is charged once per write operation.
	WriteLatency time.Duration
	// ReadBW and WriteBW are per-stream bandwidths in bytes/second.
	ReadBW  float64
	WriteBW float64
	// SharedBW caps the aggregate backend bandwidth across all concurrent
	// streams (0 means uncapped). With S concurrent streams the effective
	// per-stream bandwidth is min(ReadBW, SharedBW/S).
	SharedBW float64
}

// Model is the full cost model for a Store.
type Model struct {
	Tiers [numTiers]TierParams
	// Streams is the number of concurrent readers assumed for contention
	// (typically the number of PDC servers in the experiment). Zero or one
	// means no contention.
	Streams int
	// AggGap is the maximum gap in bytes between two requested ranges for
	// them to be merged into one operation by ReadRanges when aggregation
	// is on. Wasted gap bytes are still charged for transfer.
	AggGap int64
	// Aggregate enables small-read merging (the PDC read path). The
	// HDF5-F baseline runs with Aggregate=false.
	Aggregate bool
	// BWFactor scales effective bandwidth; the paper attributes ~2x of
	// PDC-F's advantage over HDF5-F to better data distribution across
	// storage devices, modeled as BWFactor 1.0 (PDC) vs 0.5 (HDF5 path).
	BWFactor float64
}

// DefaultModel returns a cost model loosely calibrated to a Cori-class
// system: DRAM, NVMe burst buffer, and a Lustre-like PFS.
func DefaultModel() Model {
	var m Model
	m.Tiers[Memory] = TierParams{
		ReadLatency: 100 * time.Nanosecond, WriteLatency: 100 * time.Nanosecond,
		ReadBW: 30e9, WriteBW: 20e9,
	}
	m.Tiers[BurstBuffer] = TierParams{
		ReadLatency: 30 * time.Microsecond, WriteLatency: 50 * time.Microsecond,
		ReadBW: 5e9, WriteBW: 3e9, SharedBW: 400e9,
	}
	m.Tiers[PFS] = TierParams{
		ReadLatency: 2 * time.Millisecond, WriteLatency: 3 * time.Millisecond,
		ReadBW: 1.5e9, WriteBW: 1.2e9, SharedBW: 96e9,
	}
	m.Streams = 1
	m.AggGap = 256 << 10
	m.Aggregate = true
	m.BWFactor = 1.0
	return m
}

// effReadBW returns the effective per-stream read bandwidth for a tier.
func (m *Model) effReadBW(t Tier) float64 {
	p := m.Tiers[t]
	bw := p.ReadBW
	if p.SharedBW > 0 && m.Streams > 1 {
		if shared := p.SharedBW / float64(m.Streams); shared < bw {
			bw = shared
		}
	}
	if m.BWFactor > 0 {
		bw *= m.BWFactor
	}
	return bw
}

func (m *Model) effWriteBW(t Tier) float64 {
	p := m.Tiers[t]
	bw := p.WriteBW
	if p.SharedBW > 0 && m.Streams > 1 {
		if shared := p.SharedBW / float64(m.Streams); shared < bw {
			bw = shared
		}
	}
	if m.BWFactor > 0 {
		bw *= m.BWFactor
	}
	return bw
}

// ReadCost returns the modeled cost of one read of n bytes from tier t.
func (m *Model) ReadCost(t Tier, n int64) vclock.Cost {
	d := m.Tiers[t].ReadLatency
	if bw := m.effReadBW(t); bw > 0 && n > 0 {
		d += time.Duration(float64(n) / bw * 1e9)
	}
	return vclock.CostOf(vclock.Storage, d)
}

// WriteCost returns the modeled cost of one write of n bytes to tier t.
func (m *Model) WriteCost(t Tier, n int64) vclock.Cost {
	d := m.Tiers[t].WriteLatency
	if bw := m.effWriteBW(t); bw > 0 && n > 0 {
		d += time.Duration(float64(n) / bw * 1e9)
	}
	return vclock.CostOf(vclock.Storage, d)
}

// Range is a byte range [Off, Off+Len) within an extent.
type Range struct {
	Off int64
	Len int64
}

// extent is one named stored byte stream on a particular tier.
type extent struct {
	data []byte
	tier Tier
}

// AccessHook observes (and may perturb) every read the store performs.
// It returns an extra modeled delay charged on top of the tier cost
// (a fault-injected tier slowdown) and/or an error that fails the read
// (a fault-injected storage error). A nil return of both leaves the
// access untouched. Hooks must be deterministic: the store calls them
// synchronously under no lock, once per Read/ReadRanges call.
type AccessHook func(op, key string, tier Tier, bytes int64) (time.Duration, error)

// Store holds named extents and charges modeled costs for every access.
// It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	extents map[string]*extent
	model   Model
	hook    AccessHook
}

// New returns an empty store with the given cost model.
func New(model Model) *Store {
	return &Store{extents: make(map[string]*extent), model: model}
}

// Model returns a copy of the store's cost model.
func (s *Store) Model() Model {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.model
}

// SetStreams updates the contention stream count (number of concurrent
// server readers for the current experiment).
func (s *Store) SetStreams(n int) {
	s.mu.Lock()
	s.model.Streams = n
	s.mu.Unlock()
}

// SetAggregate toggles read aggregation.
func (s *Store) SetAggregate(on bool) {
	s.mu.Lock()
	s.model.Aggregate = on
	s.mu.Unlock()
}

// SetAccessHook installs (or, with nil, removes) the read-path fault
// seam. Install before serving queries; the hook fires on every Read,
// ReadAll, and ReadRanges.
func (s *Store) SetAccessHook(h AccessHook) {
	s.mu.Lock()
	s.hook = h
	s.mu.Unlock()
}

// applyHook runs the access hook for one read of n bytes, charging any
// injected slowdown to a. It returns the hook's error, wrapped with the
// extent key so failures are attributable.
func (s *Store) applyHook(h AccessHook, a *vclock.Account, op, key string, tier Tier, n int64) error {
	if h == nil {
		return nil
	}
	extra, err := h(op, key, tier, n)
	if extra > 0 && a != nil {
		a.ChargeCost(vclock.CostOf(vclock.Storage, extra))
		a.Count("fault.slow.ops", 1)
	}
	if err != nil {
		return fmt.Errorf("simio: %s %q: %w", op, key, err)
	}
	return nil
}

// Write stores data (copied) under key on the given tier, replacing any
// previous extent, and charges the write cost to a.
func (s *Store) Write(a *vclock.Account, key string, tier Tier, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.extents[key] = &extent{data: cp, tier: tier}
	model := s.model
	s.mu.Unlock()
	if a != nil {
		a.ChargeCost(model.WriteCost(tier, int64(len(data))))
		countRW(a, "write", tier, 1, int64(len(data)))
	}
}

// WriteOwned is like Write but takes ownership of data without copying.
// The caller must not modify data afterwards. It exists so bulk dataset
// imports do not double peak memory.
func (s *Store) WriteOwned(a *vclock.Account, key string, tier Tier, data []byte) {
	s.mu.Lock()
	s.extents[key] = &extent{data: data, tier: tier}
	model := s.model
	s.mu.Unlock()
	if a != nil {
		a.ChargeCost(model.WriteCost(tier, int64(len(data))))
		countRW(a, "write", tier, 1, int64(len(data)))
	}
}

// countRW records an access on both the aggregate counters ("read.ops",
// "read.bytes") and the per-tier ones ("read.ops.pfs", ...), so telemetry
// can break read traffic down by storage tier.
func countRW(a *vclock.Account, op string, t Tier, ops, bytes int64) {
	a.Count(op+".ops", ops)
	a.Count(op+".bytes", bytes)
	a.Count(op+".ops."+t.String(), ops)
	a.Count(op+".bytes."+t.String(), bytes)
}

// Read returns the bytes [off, off+n) of extent key, charging the modeled
// cost to a. The returned view aliases the stored data — that is what
// makes reads zero-copy — and its dtype.ROBytes type declares it
// read-only; aliasguard rejects writes through it.
func (s *Store) Read(a *vclock.Account, key string, off, n int64) (dtype.ROBytes, error) {
	s.mu.RLock()
	e, ok := s.extents[key]
	model := s.model
	hook := s.hook
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("simio: extent %q not found", key)
	}
	if off < 0 || n < 0 || off+n > int64(len(e.data)) {
		return nil, fmt.Errorf("simio: read [%d,%d) out of bounds of %q (%d bytes)", off, off+n, key, len(e.data))
	}
	if err := s.applyHook(hook, a, "read", key, e.tier, n); err != nil {
		return nil, err
	}
	if a != nil {
		a.ChargeCost(model.ReadCost(e.tier, n))
		countRW(a, "read", e.tier, 1, n)
	}
	return e.data[off : off+n], nil
}

// ReadAll reads the whole extent as a read-only view.
func (s *Store) ReadAll(a *vclock.Account, key string) (dtype.ROBytes, error) {
	sz, err := s.Size(key)
	if err != nil {
		return nil, err
	}
	return s.Read(a, key, 0, sz)
}

// ReadRanges reads multiple byte ranges from one extent. When aggregation
// is enabled, ranges whose gaps are at most AggGap are coalesced into a
// single operation (one latency charge; gap bytes are charged for transfer,
// modeling the over-read). Results are returned in the order requested.
func (s *Store) ReadRanges(a *vclock.Account, key string, ranges []Range) ([]dtype.ROBytes, error) {
	s.mu.RLock()
	e, ok := s.extents[key]
	model := s.model
	hook := s.hook
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("simio: extent %q not found", key)
	}
	out := make([]dtype.ROBytes, len(ranges))
	var want int64
	for i, r := range ranges {
		if r.Off < 0 || r.Len < 0 || r.Off+r.Len > int64(len(e.data)) {
			return nil, fmt.Errorf("simio: range [%d,%d) out of bounds of %q", r.Off, r.Off+r.Len, key)
		}
		out[i] = e.data[r.Off : r.Off+r.Len]
		want += r.Len
	}
	if err := s.applyHook(hook, a, "readranges", key, e.tier, want); err != nil {
		return nil, err
	}
	if a == nil {
		return out, nil
	}
	// Cost accounting: sort a copy of the ranges and merge.
	sorted := make([]Range, len(ranges))
	copy(sorted, ranges)
	slices.SortFunc(sorted, func(x, y Range) int { return cmp.Compare(x.Off, y.Off) })
	gap := model.AggGap
	if !model.Aggregate {
		gap = -1
	}
	var ops int64
	var bytes int64
	for i := 0; i < len(sorted); {
		end := sorted[i].Off + sorted[i].Len
		j := i + 1
		for j < len(sorted) && gap >= 0 && sorted[j].Off-end <= gap {
			if e2 := sorted[j].Off + sorted[j].Len; e2 > end {
				end = e2
			}
			j++
		}
		ops++
		bytes += end - sorted[i].Off
		i = j
	}
	var d time.Duration
	d = time.Duration(ops) * model.Tiers[e.tier].ReadLatency
	if bw := model.effReadBW(e.tier); bw > 0 {
		d += time.Duration(float64(bytes) / bw * 1e9)
	}
	a.ChargeCost(vclock.CostOf(vclock.Storage, d))
	countRW(a, "read", e.tier, ops, bytes)
	return out, nil
}

// Size returns the length in bytes of extent key.
func (s *Store) Size(key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.extents[key]
	if !ok {
		return 0, fmt.Errorf("simio: extent %q not found", key)
	}
	return int64(len(e.data)), nil
}

// TierOf returns the tier an extent currently resides on.
func (s *Store) TierOf(key string) (Tier, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.extents[key]
	if !ok {
		return 0, fmt.Errorf("simio: extent %q not found", key)
	}
	return e.tier, nil
}

// Migrate moves an extent to another tier, charging a read from the old
// tier and a write to the new one. This is the substrate for PDC's
// transparent data movement across the hierarchy.
func (s *Store) Migrate(a *vclock.Account, key string, to Tier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.extents[key]
	if !ok {
		return fmt.Errorf("simio: extent %q not found", key)
	}
	if e.tier == to {
		return nil
	}
	if a != nil {
		n := int64(len(e.data))
		a.ChargeCost(s.model.ReadCost(e.tier, n))
		a.ChargeCost(s.model.WriteCost(to, n))
		a.Count("migrate.ops", 1)
		a.Count("migrate.bytes", n)
	}
	e.tier = to
	return nil
}

// Delete removes an extent. Deleting a missing extent is a no-op.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	delete(s.extents, key)
	s.mu.Unlock()
}

// Exists reports whether an extent is present.
func (s *Store) Exists(key string) bool {
	s.mu.RLock()
	_, ok := s.extents[key]
	s.mu.RUnlock()
	return ok
}

// Keys returns all extent keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.extents))
	for k := range s.extents {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	slices.Sort(keys)
	return keys
}

// TotalBytes returns the sum of extent sizes, optionally filtered by tier
// (pass a negative tier for all tiers).
func (s *Store) TotalBytes(t Tier) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, e := range s.extents {
		if t < 0 || e.tier == t {
			n += int64(len(e.data))
		}
	}
	return n
}
