package simio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot format: the paper persists metadata periodically for fault
// tolerance (§II); this extends the same idea to the whole extent store
// so a deployment can be checkpointed to a file and reloaded (see
// cmd/pdc-import and cmd/pdc-server).
const (
	snapMagic   = uint32(0x50444353) // "PDCS"
	snapVersion = uint32(1)
)

// WriteTo serializes every extent (key, tier, bytes) to w.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	put := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapVersion)
	keys := s.Keys()
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(keys)))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	for _, key := range keys {
		data, err := s.ReadAll(nil, key)
		if err != nil {
			return n, err
		}
		tier, err := s.TierOf(key)
		if err != nil {
			return n, err
		}
		var meta [13]byte
		binary.LittleEndian.PutUint32(meta[0:4], uint32(len(key)))
		meta[4] = byte(tier)
		binary.LittleEndian.PutUint64(meta[5:13], uint64(len(data)))
		if err := put(meta[:]); err != nil {
			return n, err
		}
		if err := put([]byte(key)); err != nil {
			return n, err
		}
		if err := put(data); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom replaces the store's extents with a snapshot written by
// WriteTo. The cost model is unchanged.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var n int64
	read := func(b []byte) error {
		m, err := io.ReadFull(br, b)
		n += int64(m)
		return err
	}
	var hdr [16]byte
	if err := read(hdr[:]); err != nil {
		return n, fmt.Errorf("simio: snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapMagic {
		return n, fmt.Errorf("simio: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapVersion {
		return n, fmt.Errorf("simio: unsupported snapshot version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	extents := make(map[string]*extent, count)
	for i := uint64(0); i < count; i++ {
		var meta [13]byte
		if err := read(meta[:]); err != nil {
			return n, fmt.Errorf("simio: extent %d header: %w", i, err)
		}
		keyLen := binary.LittleEndian.Uint32(meta[0:4])
		tier := Tier(meta[4])
		dataLen := binary.LittleEndian.Uint64(meta[5:13])
		if keyLen > 1<<16 {
			return n, fmt.Errorf("simio: extent %d key length %d", i, keyLen)
		}
		if tier < 0 || tier >= numTiers {
			return n, fmt.Errorf("simio: extent %d bad tier %d", i, tier)
		}
		key := make([]byte, keyLen)
		if err := read(key); err != nil {
			return n, err
		}
		data := make([]byte, dataLen)
		if err := read(data); err != nil {
			return n, err
		}
		extents[string(key)] = &extent{data: data, tier: tier}
	}
	s.mu.Lock()
	s.extents = extents
	s.mu.Unlock()
	return n, nil
}
