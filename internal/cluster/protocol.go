package cluster

import (
	"encoding/binary"
	"fmt"
)

// Catalog protocol message kinds. They ride the same transport.Message
// framing as the query protocol but live in a disjoint numeric range
// (64+) so a connection wired to the wrong endpoint fails loudly
// instead of misparsing.
const (
	MsgCatHello       byte = 64 // member -> catalog: join request (listen addr); reply MsgCatHelloResult
	MsgCatHelloResult byte = 65 // catalog -> member: assigned id + committed view + meta snapshot
	MsgCatHeartbeat   byte = 66 // member -> catalog: liveness beacon (no reply)
	MsgCatPrepare     byte = 67 // catalog -> member: pending view push; member transfers, replies MsgCatReady
	MsgCatReady       byte = 68 // member -> catalog: transfers for pending epoch complete
	MsgCatCommit      byte = 69 // catalog -> member/session: committed view (push and MsgCatView reply)
	MsgCatView        byte = 70 // session -> catalog: fetch committed view; reply MsgCatCommit
	MsgCatImport      byte = 71 // session -> catalog: publish meta snapshot; reply MsgCatCommit or MsgCatError
	MsgCatMeta        byte = 72 // session -> catalog: fetch meta snapshot; reply MsgCatMetaResult
	MsgCatMetaResult  byte = 73 // catalog -> session: meta snapshot bytes
	MsgCatReport      byte = 74 // session -> catalog: member observed down; reply MsgCatOK
	MsgCatDrain       byte = 75 // operator -> catalog: drain member, migrate regions off; reply MsgCatOK or MsgCatError
	MsgCatOK          byte = 76 // catalog -> session: acknowledgement
	MsgCatError       byte = 77 // catalog -> session/member: failure, payload is the message
)

// CatMsgName returns a human-readable name for a catalog message kind.
func CatMsgName(t byte) string {
	switch t {
	case MsgCatHello:
		return "CatHello"
	case MsgCatHelloResult:
		return "CatHelloResult"
	case MsgCatHeartbeat:
		return "CatHeartbeat"
	case MsgCatPrepare:
		return "CatPrepare"
	case MsgCatReady:
		return "CatReady"
	case MsgCatCommit:
		return "CatCommit"
	case MsgCatView:
		return "CatView"
	case MsgCatImport:
		return "CatImport"
	case MsgCatMeta:
		return "CatMeta"
	case MsgCatMetaResult:
		return "CatMetaResult"
	case MsgCatReport:
		return "CatReport"
	case MsgCatDrain:
		return "CatDrain"
	case MsgCatOK:
		return "CatOK"
	case MsgCatError:
		return "CatError"
	default:
		return fmt.Sprintf("CatUnknown(%d)", t)
	}
}

// Encode serializes a view: epoch u64 | seed u64 | r u16 | count u16,
// then per member id u32 | addr-len u16 | addr bytes. Sections are
// emitted in decode order (wiresymmetry).
func (v View) Encode() []byte {
	n := 8 + 8 + 2 + 2 + 6*len(v.Members)
	for i := 0; i < len(v.Members); i++ {
		n += len(v.Members[i].Addr)
	}
	buf := make([]byte, 0, n)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], v.Epoch)
	buf = append(buf, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], v.Seed)
	buf = append(buf, u64[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(v.R))
	buf = append(buf, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(v.Members)))
	buf = append(buf, u16[:]...)
	for _, m := range v.Members {
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(m.ID))
		buf = append(buf, u32[:]...)
		binary.LittleEndian.PutUint16(u16[:], uint16(len(m.Addr)))
		buf = append(buf, u16[:]...)
		buf = append(buf, m.Addr...)
	}
	return buf
}

// DecodeView parses a View and returns the number of bytes consumed so
// callers can embed views inside larger payloads.
func DecodeView(b []byte) (View, int, error) {
	var v View
	if len(b) < 20 {
		return v, 0, fmt.Errorf("cluster: view truncated: %d bytes", len(b))
	}
	v.Epoch = binary.LittleEndian.Uint64(b[0:])
	v.Seed = binary.LittleEndian.Uint64(b[8:])
	v.R = int(binary.LittleEndian.Uint16(b[16:]))
	count := int(binary.LittleEndian.Uint16(b[18:]))
	off := 20
	v.Members = make([]MemberInfo, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < off+6 {
			return v, 0, fmt.Errorf("cluster: view member %d truncated", i)
		}
		id := MemberID(binary.LittleEndian.Uint32(b[off:]))
		alen := int(binary.LittleEndian.Uint16(b[off+4:]))
		off += 6
		if len(b) < off+alen {
			return v, 0, fmt.Errorf("cluster: view member %d addr truncated", i)
		}
		v.Members = append(v.Members, MemberInfo{ID: id, Addr: string(b[off : off+alen])})
		off += alen
	}
	return v, off, nil
}

// EncodeHello builds a MsgCatHello payload: the joiner's listen address.
func EncodeHello(addr string) []byte {
	buf := make([]byte, 2+len(addr))
	binary.LittleEndian.PutUint16(buf, uint16(len(addr)))
	copy(buf[2:], addr)
	return buf
}

// DecodeHello parses a MsgCatHello payload.
func DecodeHello(b []byte) (string, error) {
	if len(b) < 2 {
		return "", fmt.Errorf("cluster: hello truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", fmt.Errorf("cluster: hello addr truncated")
	}
	return string(b[2 : 2+n]), nil
}

// HelloResult is the catalog's join reply: the assigned member ID, the
// committed view at join time, and the current metadata snapshot so the
// joiner can serve queries without a separate meta fetch.
type HelloResult struct {
	ID   MemberID
	View View
	Meta []byte
}

// Encode serializes a HelloResult: id u32 | view-len u32 | view |
// meta bytes (rest). Sections are emitted in decode order
// (wiresymmetry).
func (h HelloResult) Encode() []byte {
	buf := make([]byte, 0, 8+len(h.Meta))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(h.ID))
	buf = append(buf, u32[:]...)
	vb := h.View.Encode()
	binary.LittleEndian.PutUint32(u32[:], uint32(len(vb)))
	buf = append(buf, u32[:]...)
	buf = append(buf, vb...)
	buf = append(buf, h.Meta...)
	return buf
}

// DecodeHelloResult parses a MsgCatHelloResult payload.
func DecodeHelloResult(b []byte) (HelloResult, error) {
	var h HelloResult
	if len(b) < 8 {
		return h, fmt.Errorf("cluster: hello result truncated")
	}
	h.ID = MemberID(binary.LittleEndian.Uint32(b[0:]))
	vlen := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) < 8+vlen {
		return h, fmt.Errorf("cluster: hello result view truncated")
	}
	v, _, err := DecodeView(b[8 : 8+vlen])
	if err != nil {
		return h, err
	}
	h.View = v
	h.Meta = append([]byte(nil), b[8+vlen:]...)
	return h, nil
}

// Prepare is the catalog's rebalance push: the view transfers are
// sourced from and the pending view they establish. A member computes
// its gained regions as a pure diff of the two placements.
type Prepare struct {
	Source  View
	Pending View
}

// Encode serializes a Prepare: source-len u32 | source view | pending
// view (rest). Sections are emitted in decode order (wiresymmetry).
func (p Prepare) Encode() []byte {
	sb := p.Source.Encode()
	pb := p.Pending.Encode()
	buf := make([]byte, 0, 4+len(sb)+len(pb))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(sb)))
	buf = append(buf, u32[:]...)
	buf = append(buf, sb...)
	buf = append(buf, pb...)
	return buf
}

// DecodePrepare parses a MsgCatPrepare payload.
func DecodePrepare(b []byte) (Prepare, error) {
	var p Prepare
	if len(b) < 4 {
		return p, fmt.Errorf("cluster: prepare truncated")
	}
	slen := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+slen {
		return p, fmt.Errorf("cluster: prepare source view truncated")
	}
	src, _, err := DecodeView(b[4 : 4+slen])
	if err != nil {
		return p, err
	}
	pend, _, err := DecodeView(b[4+slen:])
	if err != nil {
		return p, err
	}
	p.Source, p.Pending = src, pend
	return p, nil
}

// EncodeMemberID builds the single-id payload shared by MsgCatHeartbeat,
// MsgCatReady (with epoch), MsgCatReport, and MsgCatDrain.
func EncodeMemberID(id MemberID) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(id))
	return buf[:]
}

// DecodeMemberID parses a single-member-id payload.
func DecodeMemberID(b []byte) (MemberID, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("cluster: member id truncated")
	}
	return MemberID(binary.LittleEndian.Uint32(b)), nil
}

// EncodeReady builds a MsgCatReady payload: member id + the pending
// epoch whose transfers completed.
func EncodeReady(id MemberID, pendingEpoch uint64) []byte {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(id))
	binary.LittleEndian.PutUint64(buf[4:], pendingEpoch)
	return buf[:]
}

// DecodeReady parses a MsgCatReady payload.
func DecodeReady(b []byte) (MemberID, uint64, error) {
	if len(b) < 12 {
		return 0, 0, fmt.Errorf("cluster: ready truncated")
	}
	return MemberID(binary.LittleEndian.Uint32(b[0:])), binary.LittleEndian.Uint64(b[4:]), nil
}
