package cluster

import (
	"fmt"
	"log/slog"
	"sync"

	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

// memberState tracks where a member is in its lifecycle.
type memberState int

const (
	// stateJoining: Hello received; the member is transferring its
	// assigned regions and is not yet in the committed view.
	stateJoining memberState = iota
	// stateUp: in the committed view and serving queries.
	stateUp
	// stateDraining: in the committed view but scheduled for removal;
	// leaves once the view without it commits.
	stateDraining
	// stateDown: removed (heartbeat timeout, report, or drain done).
	stateDown
)

func (s memberState) String() string {
	switch s {
	case stateJoining:
		return "joining"
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	case stateDown:
		return "down"
	}
	return fmt.Sprintf("memberState(%d)", int(s))
}

// catMember is the catalog's book-keeping for one member.
type catMember struct {
	info       MemberInfo
	state      memberState
	conn       transport.Conn // control connection (Prepare/Commit pushes)
	lastBeat   int64          // Clock.Now() at the last heartbeat
	readyEpoch uint64         // highest pending epoch the member acked
}

// CatalogConfig configures a Catalog.
type CatalogConfig struct {
	// Seed parameterizes the placement ring (reproducible placements).
	Seed uint64
	// R is the replication factor (min 1; the ISSUE ships R=2).
	R int
	// Clock supplies heartbeat timestamps. telemetry.NoClock disables
	// heartbeat expiry entirely — deterministic tests drive membership
	// through Drain/Report/connection errors instead of wall time.
	Clock telemetry.Clock
	// HeartbeatTimeoutNs: a member whose last beat is older than this is
	// declared down on the next CheckExpiry sweep. 0 means never.
	HeartbeatTimeoutNs int64
	// Log receives membership transitions (nil = silent).
	Log *slog.Logger
	// Registry and Recorder receive cluster.* counters and membership
	// events; nil values allocate private instances.
	Registry *telemetry.Registry
	Recorder *telemetry.Recorder
}

// Catalog is the placement authority of a cluster: it assigns member
// IDs, owns the committed View, runs the prepare/commit rebalance
// protocol on every membership change, and hands out views and metadata
// snapshots to client sessions.
//
// Determinism contract: placement is a pure function of the view, and
// every membership decision is driven by explicit inputs (Hello, Drain,
// Report, connection errors, or CheckExpiry(now) calls). The only wall
// time in the subsystem is the heartbeat sweep, gated behind the Clock
// seam — under telemetry.NoClock the catalog is fully deterministic.
type Catalog struct {
	cfg CatalogConfig
	reg *telemetry.Registry
	rec *telemetry.Recorder

	mu      sync.Mutex
	nextID  MemberID
	members map[MemberID]*catMember
	view    View   // committed
	meta    []byte // metadata snapshot published at import
	// pendingEpoch > view.Epoch while a rebalance is in flight.
	pendingEpoch uint64
	pendingView  View
	closed       bool
}

// NewCatalog builds a catalog service. Serve it with ServeConn per
// accepted connection (see cmd/pdc-server -catalog).
func NewCatalog(cfg CatalogConfig) *Catalog {
	if cfg.R < 1 {
		cfg.R = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = telemetry.NoClock
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.NewRecorder(256, cfg.Clock)
	}
	return &Catalog{
		cfg:     cfg,
		reg:     reg,
		rec:     rec,
		members: make(map[MemberID]*catMember),
		view:    View{Epoch: 1, Seed: cfg.Seed, R: cfg.R},
	}
}

// Metrics returns the catalog's telemetry registry (cluster.* counters
// plus membership gauges).
func (c *Catalog) Metrics() *telemetry.Registry {
	c.mu.Lock()
	out := c.reg.Clone()
	up, joining := 0, 0
	for _, m := range c.members {
		switch m.state {
		case stateUp, stateDraining:
			up++
		case stateJoining:
			joining++
		}
	}
	epoch := c.view.Epoch
	c.mu.Unlock()
	out.SetGauge("cluster.members", float64(up))
	out.SetGauge("cluster.members.joining", float64(joining))
	out.SetGauge("cluster.epoch", float64(epoch))
	return out
}

// Recorder returns the catalog's flight recorder.
func (c *Catalog) Recorder() *telemetry.Recorder { return c.rec }

// CommittedView returns the current committed view.
func (c *Catalog) CommittedView() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// push is a deferred control-plane send, collected under c.mu and
// delivered after unlock (lockhold: no transport sends under a mutex).
type push struct {
	conn transport.Conn
	msg  transport.Message
}

func sendPushes(pushes []push) {
	for _, p := range pushes {
		// Send errors surface on the member's control-reader side (its
		// conn breaks), which reports the member down on the next read.
		_ = p.conn.Send(p.msg)
	}
}

// ServeConn handles one catalog connection until it closes. Member
// control connections stay open for the catalog's lifetime (their
// closure is a death signal); session connections are short-lived.
func (c *Catalog) ServeConn(conn transport.Conn) {
	// The member ID bound to this connection once a Hello arrives; its
	// teardown marks the member down.
	bound := MemberID(-1)
	defer func() {
		_ = conn.Close()
		if bound >= 0 {
			c.markDown(bound, telemetry.DownReasonConn)
		}
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case MsgCatHello:
			id, err := c.handleHello(conn, m)
			if err != nil {
				_ = conn.Send(transport.Message{Type: MsgCatError, ReqID: m.ReqID, Payload: []byte(err.Error())})
				return
			}
			bound = id
		case MsgCatHeartbeat:
			if id, err := DecodeMemberID(m.Payload); err == nil {
				c.beat(id)
			}
		case MsgCatReady:
			if id, epoch, err := DecodeReady(m.Payload); err == nil {
				c.markReady(id, epoch)
			}
		case MsgCatView:
			_ = conn.Send(transport.Message{Type: MsgCatCommit, ReqID: m.ReqID, Payload: c.CommittedView().Encode()})
		case MsgCatMeta:
			c.mu.Lock()
			meta := append([]byte(nil), c.meta...)
			c.mu.Unlock()
			_ = conn.Send(transport.Message{Type: MsgCatMetaResult, ReqID: m.ReqID, Payload: meta})
		case MsgCatImport:
			if err := c.handleImport(m.Payload); err != nil {
				_ = conn.Send(transport.Message{Type: MsgCatError, ReqID: m.ReqID, Payload: []byte(err.Error())})
				break
			}
			_ = conn.Send(transport.Message{Type: MsgCatCommit, ReqID: m.ReqID, Payload: c.CommittedView().Encode()})
		case MsgCatReport:
			if id, err := DecodeMemberID(m.Payload); err == nil {
				c.reg.Add("cluster.reports", 1)
				c.markDown(id, telemetry.DownReasonReport)
			}
			_ = conn.Send(transport.Message{Type: MsgCatOK, ReqID: m.ReqID})
		case MsgCatDrain:
			if id, err := DecodeMemberID(m.Payload); err != nil {
				_ = conn.Send(transport.Message{Type: MsgCatError, ReqID: m.ReqID, Payload: []byte(err.Error())})
			} else if err := c.drain(id); err != nil {
				_ = conn.Send(transport.Message{Type: MsgCatError, ReqID: m.ReqID, Payload: []byte(err.Error())})
			} else {
				_ = conn.Send(transport.Message{Type: MsgCatOK, ReqID: m.ReqID})
			}
		default:
			_ = conn.Send(transport.Message{Type: MsgCatError, ReqID: m.ReqID,
				Payload: []byte(fmt.Sprintf("catalog: unexpected message %s", CatMsgName(m.Type)))})
		}
	}
}

// handleHello admits a joiner: assigns an ID, replies with the current
// committed view + meta snapshot, and kicks off a rebalance that will
// commit a view including it.
func (c *Catalog) handleHello(conn transport.Conn, m transport.Message) (MemberID, error) {
	addr, err := DecodeHello(m.Payload)
	if err != nil {
		return -1, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return -1, fmt.Errorf("catalog: closed")
	}
	id := c.nextID
	c.nextID++
	cm := &catMember{
		info:     MemberInfo{ID: id, Addr: addr},
		state:    stateJoining,
		conn:     conn,
		lastBeat: c.cfg.Clock.Now(),
	}
	c.members[id] = cm
	reply := HelloResult{ID: id, View: c.view.Clone(), Meta: append([]byte(nil), c.meta...)}
	pushes := c.rebalanceLocked()
	c.mu.Unlock()

	if c.cfg.Log != nil {
		c.cfg.Log.Info("cluster member joining", "member", id, "addr", addr)
	}
	if err := conn.Send(transport.Message{Type: MsgCatHelloResult, ReqID: m.ReqID, Payload: reply.Encode()}); err != nil {
		c.markDown(id, telemetry.DownReasonConn)
		return -1, err
	}
	sendPushes(pushes)
	return id, nil
}

// handleImport installs a metadata snapshot. Imports are rejected while
// a rebalance is pending: the importer would race the placement it is
// writing against.
func (c *Catalog) handleImport(meta []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingEpoch > c.view.Epoch {
		return fmt.Errorf("catalog: rebalance in progress (epoch %d -> %d), retry import", c.view.Epoch, c.pendingEpoch)
	}
	if len(c.view.Members) == 0 {
		return fmt.Errorf("catalog: no serving members")
	}
	c.meta = append([]byte(nil), meta...)
	c.reg.Add("cluster.imports", 1)
	return nil
}

// beat refreshes a member's heartbeat timestamp.
func (c *Catalog) beat(id MemberID) {
	c.mu.Lock()
	if m, ok := c.members[id]; ok && m.state != stateDown {
		m.lastBeat = c.cfg.Clock.Now()
	}
	c.reg.Add("cluster.heartbeats", 1)
	c.mu.Unlock()
}

// CheckExpiry sweeps heartbeats: members whose last beat is older than
// HeartbeatTimeoutNs at `now` are declared down. Exposed so tests (and
// the daemon loop) control when wall time enters the system.
func (c *Catalog) CheckExpiry(now int64) {
	if c.cfg.HeartbeatTimeoutNs <= 0 {
		return
	}
	c.mu.Lock()
	var expired []MemberID
	for id, m := range c.members {
		if m.state == stateDown {
			continue
		}
		if now-m.lastBeat > c.cfg.HeartbeatTimeoutNs {
			expired = append(expired, id)
		}
	}
	c.mu.Unlock()
	for _, id := range expired {
		c.reg.Add("cluster.heartbeat.misses", 1)
		c.markDown(id, telemetry.DownReasonHeartbeat)
	}
}

// markDown removes a member and rebalances the survivors. Idempotent.
func (c *Catalog) markDown(id MemberID, reason int64) {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok || m.state == stateDown {
		c.mu.Unlock()
		return
	}
	m.state = stateDown
	pushes := c.rebalanceLocked()
	epoch := c.pendingEpoch
	c.mu.Unlock()

	c.rec.Record(telemetry.EvMemberDown, uint8(reason), int32(id), 0, int64(epoch), reason)
	c.reg.Add("cluster.member.down", 1)
	if c.cfg.Log != nil {
		c.cfg.Log.Info("cluster member down", "member", id, "reason", reason)
	}
	sendPushes(pushes)
}

// drain schedules a member's graceful removal: it stays in the view
// (and keeps serving) until the pending view without it commits.
func (c *Catalog) drain(id MemberID) error {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok || m.state == stateDown {
		c.mu.Unlock()
		return fmt.Errorf("catalog: unknown member %d", id)
	}
	if m.state == stateDraining {
		c.mu.Unlock()
		return nil
	}
	m.state = stateDraining
	pushes := c.rebalanceLocked()
	c.mu.Unlock()

	c.rec.Record(telemetry.EvMemberDown, uint8(telemetry.DownReasonDrain), int32(id), 0, 0, telemetry.DownReasonDrain)
	c.reg.Add("cluster.drains", 1)
	if c.cfg.Log != nil {
		c.cfg.Log.Info("cluster member draining", "member", id)
	}
	sendPushes(pushes)
	return nil
}

// markReady records a member's transfer completion for a pending epoch
// and commits the view when every required member is ready.
func (c *Catalog) markReady(id MemberID, epoch uint64) {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok || m.state == stateDown {
		c.mu.Unlock()
		return
	}
	if epoch > m.readyEpoch {
		m.readyEpoch = epoch
	}
	pushes := c.maybeCommitLocked()
	c.mu.Unlock()
	sendPushes(pushes)
}

// rebalanceLocked starts (or restarts) a view change covering the
// current membership: pending view = Joining + Up + Draining-still-
// serving members minus drained/down ones. Called with c.mu held;
// returns the Prepare pushes to send after unlock.
func (c *Catalog) rebalanceLocked() []push {
	next := View{Epoch: c.maxEpochLocked() + 1, Seed: c.cfg.Seed, R: c.cfg.R}
	for id := MemberID(0); id < c.nextID; id++ {
		m, ok := c.members[id]
		if !ok {
			continue
		}
		switch m.state {
		case stateJoining, stateUp:
			next.Members = append(next.Members, m.info)
		}
	}
	c.pendingEpoch = next.Epoch
	c.pendingView = next
	c.reg.Add("cluster.rebalances", 1)

	prep := Prepare{Source: c.view.Clone(), Pending: next.Clone()}
	payload := prep.Encode()
	var pushes []push
	for _, m := range c.members {
		if m.state == stateDown || m.conn == nil {
			continue
		}
		pushes = append(pushes, push{conn: m.conn, msg: transport.Message{Type: MsgCatPrepare, Payload: payload}})
	}
	// A pending view may need nothing transferred (e.g. pure removal:
	// survivors already hold replicas of everything). Members still ack
	// with Ready; commit happens when the last ack arrives. If the
	// pending membership is empty, commit immediately.
	if len(next.Members) == 0 {
		return append(pushes, c.maybeCommitLocked()...)
	}
	return pushes
}

func (c *Catalog) maxEpochLocked() uint64 {
	if c.pendingEpoch > c.view.Epoch {
		return c.pendingEpoch
	}
	return c.view.Epoch
}

// maybeCommitLocked commits the pending view once every member of it
// has acked the pending epoch. Called with c.mu held; returns the
// Commit pushes to send after unlock.
func (c *Catalog) maybeCommitLocked() []push {
	if c.pendingEpoch <= c.view.Epoch {
		return nil
	}
	for _, mi := range c.pendingView.Members {
		m, ok := c.members[mi.ID]
		if !ok || m.state == stateDown {
			// A pending member died mid-rebalance; markDown will start a
			// fresh rebalance, so this epoch is obsolete.
			return nil
		}
		if m.readyEpoch < c.pendingEpoch {
			return nil
		}
	}
	c.view = c.pendingView.Clone()
	payload := c.view.Encode()
	var pushes []push
	for _, mi := range c.pendingView.Members {
		m := c.members[mi.ID]
		if m.state == stateJoining {
			m.state = stateUp
			c.rec.Record(telemetry.EvMemberJoin, 0, int32(mi.ID), 0, int64(c.view.Epoch), int64(len(c.view.Members)))
			c.reg.Add("cluster.member.join", 1)
			if c.cfg.Log != nil {
				c.cfg.Log.Info("cluster member up", "member", mi.ID, "epoch", c.view.Epoch)
			}
		}
	}
	c.reg.Add("cluster.commits", 1)
	// Push the commit to every live member — including draining ones,
	// which see themselves absent from the committed view and exit.
	for _, m := range c.members {
		if m.state == stateDown || m.conn == nil {
			continue
		}
		pushes = append(pushes, push{conn: m.conn, msg: transport.Message{Type: MsgCatCommit, Payload: payload}})
		if m.state == stateDraining {
			m.state = stateDown
		}
	}
	return pushes
}

// Close marks the catalog closed; new Hellos are rejected. Existing
// connections are owned by their ServeConn callers.
func (c *Catalog) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}
