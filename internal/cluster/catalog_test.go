package cluster

import (
	"testing"

	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

// stepClock is a test clock the test advances by hand.
type stepClock struct{ ns int64 }

func (c *stepClock) Now() int64 { return c.ns }

// fakeMember joins the catalog over a pipe and acks every Prepare, like
// a real member that never has extents to pull.
type fakeMember struct {
	id   MemberID
	conn transport.Conn
	done chan struct{}
}

func joinFake(t *testing.T, cat *Catalog, addr string) *fakeMember {
	t.Helper()
	local, remote := transport.Pipe()
	go cat.ServeConn(remote)
	if err := local.Send(transport.Message{Type: MsgCatHello, ReqID: 1, Payload: EncodeHello(addr)}); err != nil {
		t.Fatalf("hello send: %v", err)
	}
	reply, err := local.Recv()
	if err != nil {
		t.Fatalf("hello recv: %v", err)
	}
	if reply.Type != MsgCatHelloResult {
		t.Fatalf("hello reply = %s, want hello_result", CatMsgName(reply.Type))
	}
	hr, err := DecodeHelloResult(reply.Payload)
	if err != nil {
		t.Fatalf("decode hello result: %v", err)
	}
	f := &fakeMember{id: hr.ID, conn: local, done: make(chan struct{})}
	go f.loop()
	t.Cleanup(func() { _ = local.Close(); <-f.done })
	return f
}

// loop acks Prepares so rebalances commit; Commits need no reply.
func (f *fakeMember) loop() {
	defer close(f.done)
	for {
		m, err := f.conn.Recv()
		if err != nil {
			return
		}
		if m.Type == MsgCatPrepare {
			p, perr := DecodePrepare(m.Payload)
			if perr != nil {
				return
			}
			_ = f.conn.Send(transport.Message{Type: MsgCatReady, Payload: EncodeReady(f.id, p.Pending.Epoch)})
		}
	}
}

func (f *fakeMember) beat() error {
	return f.conn.Send(transport.Message{Type: MsgCatHeartbeat, Payload: EncodeMemberID(f.id)})
}

func waitView(t *testing.T, cat *Catalog, n int) View {
	t.Helper()
	for i := 0; i < 25000; i++ {
		v := cat.CommittedView()
		if len(v.Members) == n {
			return v
		}
		telemetry.WallSleep.Sleep(waitPoll)
	}
	v := cat.CommittedView()
	t.Fatalf("view has %d members, want %d", len(v.Members), n)
	return v
}

func TestCatalogHeartbeatExpiry(t *testing.T) {
	clk := &stepClock{}
	cat := NewCatalog(CatalogConfig{Seed: 7, R: 2, Clock: clk, HeartbeatTimeoutNs: 100})
	defer cat.Close()

	a := joinFake(t, cat, "fake:a")
	joinFake(t, cat, "fake:b")
	waitView(t, cat, 2)

	// Member a keeps beating; b goes silent. Advance the clock past the
	// timeout: the sweep must expire exactly b and commit a one-member
	// view (a was a replica for every region, so promotion needs no
	// data movement — stateDown members are simply dropped).
	clk.ns = 80
	if err := a.beat(); err != nil {
		t.Fatalf("beat: %v", err)
	}
	// The beat is handled asynchronously; wait for it to land before
	// sweeping, or a could expire too.
	for i := 0; i < 25000 && cat.Metrics().Counter("cluster.heartbeats") == 0; i++ {
		telemetry.WallSleep.Sleep(waitPoll)
	}
	clk.ns = 150
	cat.CheckExpiry(clk.ns)
	v := waitView(t, cat, 1)
	if v.Members[0].ID != a.id {
		t.Fatalf("survivor = %d, want %d", v.Members[0].ID, a.id)
	}
	if got := cat.Metrics().Counter("cluster.heartbeat.misses"); got != 1 {
		t.Errorf("cluster.heartbeat.misses = %d, want 1", got)
	}
	if got := cat.Metrics().Counter("cluster.member.down"); got != 1 {
		t.Errorf("cluster.member.down = %d, want 1", got)
	}

	// Sweeping again at the same instant is a no-op: a beat at 80.
	cat.CheckExpiry(clk.ns)
	if got := len(cat.CommittedView().Members); got != 1 {
		t.Fatalf("second sweep removed the live member (view has %d)", got)
	}
}

func TestCatalogExpiryDisabled(t *testing.T) {
	// HeartbeatTimeoutNs = 0 (the deterministic default): members never
	// expire no matter how far the sweep time advances.
	cat := NewCatalog(CatalogConfig{Seed: 7, R: 2})
	defer cat.Close()
	joinFake(t, cat, "fake:a")
	waitView(t, cat, 1)
	cat.CheckExpiry(1 << 60)
	if got := len(cat.CommittedView().Members); got != 1 {
		t.Fatalf("expiry ran with timeout disabled (view has %d)", got)
	}
}

func TestCatalogReport(t *testing.T) {
	cat := NewCatalog(CatalogConfig{Seed: 7, R: 2})
	defer cat.Close()
	a := joinFake(t, cat, "fake:a")
	b := joinFake(t, cat, "fake:b")
	waitView(t, cat, 2)

	// A client report is the fast path to failover: no clock involved.
	local, remote := transport.Pipe()
	go cat.ServeConn(remote)
	defer func() { _ = local.Close() }()
	if err := local.Send(transport.Message{Type: MsgCatReport, Payload: EncodeMemberID(b.id)}); err != nil {
		t.Fatalf("report send: %v", err)
	}
	if _, err := local.Recv(); err != nil {
		t.Fatalf("report recv: %v", err)
	}
	v := waitView(t, cat, 1)
	if v.Members[0].ID != a.id {
		t.Fatalf("survivor = %d, want %d", v.Members[0].ID, a.id)
	}
}
