package cluster

import (
	"fmt"
	"sync"

	"pdcquery/internal/transport"
)

// Network abstracts dialing and listening so the same member and
// session code runs over real TCP (process deployments) and in-process
// pipes (the Local harness used by deterministic tests and chaos).
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (transport.Conn, error)
}

// Listener accepts member or catalog connections.
type Listener interface {
	Accept() (transport.Conn, error)
	Addr() string
	Close() error
}

// TCPNetwork is the production Network: real sockets.
type TCPNetwork struct{}

type tcpListener struct{ l *transport.Listener }

func (t tcpListener) Accept() (transport.Conn, error) { return t.l.Accept() }
func (t tcpListener) Addr() string                    { return t.l.Addr() }
func (t tcpListener) Close() error                    { return t.l.Close() }

// Listen binds a TCP listener ("127.0.0.1:0" picks a free port).
func (TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial connects to a TCP peer.
func (TCPNetwork) Dial(addr string) (transport.Conn, error) { return transport.Dial(addr) }

// LocalNetwork is an in-process Network over transport.Pipe: a name
// registry of listeners. It gives cluster tests real message framing
// and real concurrency with no sockets or processes.
type LocalNetwork struct {
	mu        sync.Mutex
	next      int
	listeners map[string]*localListener
}

// NewLocalNetwork returns an empty in-process network.
func NewLocalNetwork() *LocalNetwork {
	return &LocalNetwork{listeners: make(map[string]*localListener)}
}

type localListener struct {
	addr   string
	net    *LocalNetwork
	accept chan transport.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *localListener) Accept() (transport.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("cluster: listener %s closed", l.addr)
	}
}

func (l *localListener) Addr() string { return l.addr }

func (l *localListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Listen registers a named endpoint; an empty addr is auto-assigned.
func (n *LocalNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		addr = fmt.Sprintf("local:%d", n.next)
		n.next++
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("cluster: address %s in use", addr)
	}
	l := &localListener{
		addr:   addr,
		net:    n,
		accept: make(chan transport.Conn, 16),
		closed: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a registered endpoint with a fresh pipe pair.
func (n *LocalNetwork) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	l := n.listeners[addr]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("cluster: dial %s: connection refused", addr)
	}
	server, client := transport.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("cluster: dial %s: connection refused", addr)
	}
}
