// Package cluster is the distributed-deployment subsystem: N independent
// pdc-server processes over the TCP transport, coordinated by a catalog
// service that owns object/region→server placement.
//
// Placement is deterministic consistent hashing: the catalog publishes a
// View (epoch, seed, replication factor, member list) and every party —
// catalog, servers, clients — derives the identical region→owner map
// from it as a pure function. Membership changes produce a new View with
// a higher epoch; queries are stamped with the client's epoch and
// rejected on mismatch, so a query is never evaluated under two
// different placements at once (which could double- or zero-count
// regions).
//
// Replication: each region has R owners (primary + replicas) — imports
// write extents to all of them, queries are answered by the primary
// only, and when a member dies the consistent-hash walk promotes the
// next surviving owner without data movement.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pdcquery/internal/object"
)

// MemberID identifies one cluster member (a pdc-server process). IDs are
// assigned by the catalog at join and never reused within a catalog's
// lifetime.
type MemberID int32

// MemberInfo is one serving member of a committed view.
type MemberInfo struct {
	ID   MemberID
	Addr string
}

// View is a committed placement epoch: the serving member set plus the
// parameters of the consistent-hash ring. Everything needed to compute
// region ownership is in the View, so the catalog ships member lists,
// not placement maps.
type View struct {
	// Epoch increases with every committed membership change. Queries
	// carry the client's epoch; servers reject mismatches.
	Epoch uint64
	// Seed parameterizes the hash ring, making placements reproducible:
	// the same seed and member set always yield the same map.
	Seed uint64
	// R is the replication factor (owners per region, primary first).
	R int
	// Members are the serving members, sorted by ID.
	Members []MemberInfo
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	out := v
	out.Members = append([]MemberInfo(nil), v.Members...)
	return out
}

// Member returns the member with the given ID, if present.
func (v View) Member(id MemberID) (MemberInfo, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return MemberInfo{}, false
}

// vnodesPerMember is the number of ring points each member contributes.
// More points smooth the load split and shrink the movement caused by a
// membership change toward the ideal 1/N.
const vnodesPerMember = 64

// splitmix64 is the deterministic 64-bit mixer behind every ring hash
// (seeded, stateless — the nondeterminism contract for placement).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ringPoint is one virtual node: a member's position on the hash circle.
type ringPoint struct {
	hash uint64
	slot int // index into View.Members
}

// Placement is the materialized consistent-hash ring of one View:
// precomputed sorted vnode points, so per-region owner lookups are a
// binary search plus a short walk.
type Placement struct {
	view   View
	points []ringPoint
}

// NewPlacement builds the ring for a view. The construction is a pure
// function of (Seed, Members): any two parties holding the same view
// compute identical placements.
func NewPlacement(v View) *Placement {
	p := &Placement{view: v.Clone()}
	p.points = make([]ringPoint, 0, len(v.Members)*vnodesPerMember)
	for slot, m := range p.view.Members {
		base := splitmix64(v.Seed ^ (uint64(uint32(m.ID)) * 0x9e3779b97f4a7c15))
		for vn := 0; vn < vnodesPerMember; vn++ {
			p.points = append(p.points, ringPoint{
				hash: splitmix64(base + uint64(vn)),
				slot: slot,
			})
		}
	}
	sort.Slice(p.points, func(i, j int) bool {
		if p.points[i].hash != p.points[j].hash {
			return p.points[i].hash < p.points[j].hash
		}
		// Tie-break on member ID so the order is total and deterministic
		// even in the astronomically unlikely event of a hash collision.
		return p.view.Members[p.points[i].slot].ID < p.view.Members[p.points[j].slot].ID
	})
	return p
}

// View returns the view the placement was built from.
func (p *Placement) View() View { return p.view }

// regionHash positions one (object, region) key on the circle.
func (p *Placement) regionHash(obj object.ID, region int) uint64 {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(obj))
	binary.LittleEndian.PutUint64(buf[8:], uint64(region))
	h := p.view.Seed
	h = splitmix64(h ^ binary.LittleEndian.Uint64(buf[0:]))
	h = splitmix64(h ^ binary.LittleEndian.Uint64(buf[8:]))
	return h
}

// Owners returns the region's owner slots (indexes into View.Members),
// primary first: the first R distinct members found walking clockwise
// from the region's hash. With fewer than R members, every member owns
// every region.
func (p *Placement) Owners(obj object.ID, region int) []int {
	r := p.view.R
	if r <= 0 {
		r = 1
	}
	if r > len(p.view.Members) {
		r = len(p.view.Members)
	}
	if r == 0 {
		return nil
	}
	h := p.regionHash(obj, region)
	start := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= h })
	owners := make([]int, 0, r)
	seen := 0
	for i := 0; seen < r && i < len(p.points); i++ {
		pt := p.points[(start+i)%len(p.points)]
		dup := false
		for _, o := range owners {
			if o == pt.slot {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		owners = append(owners, pt.slot)
		seen++
	}
	return owners
}

// Primary returns the member ID of the region's primary owner (the only
// member that evaluates the region for queries at this view's epoch).
func (p *Placement) Primary(obj object.ID, region int) MemberID {
	owners := p.Owners(obj, region)
	if len(owners) == 0 {
		return -1
	}
	return p.view.Members[owners[0]].ID
}

// OwnerIDs returns the region's owner member IDs, primary first.
func (p *Placement) OwnerIDs(obj object.ID, region int) []MemberID {
	owners := p.Owners(obj, region)
	ids := make([]MemberID, len(owners))
	for i, o := range owners {
		ids[i] = p.view.Members[o].ID
	}
	return ids
}

// Owns reports whether member id is among the region's R owners.
func (p *Placement) Owns(id MemberID, obj object.ID, region int) bool {
	for _, o := range p.Owners(obj, region) {
		if p.view.Members[o].ID == id {
			return true
		}
	}
	return false
}

// String renders a compact description (for golden tests and logs).
func (p *Placement) String() string {
	return fmt.Sprintf("placement{epoch %d, seed %d, R %d, %d members, %d points}",
		p.view.Epoch, p.view.Seed, p.view.R, len(p.view.Members), len(p.points))
}
