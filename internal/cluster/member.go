package cluster

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdcquery/internal/exec"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/server"
	"pdcquery/internal/simio"
	"pdcquery/internal/sortstore"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/vclock"
)

// MemberOptions configures one cluster member (a pdc-server process in
// cluster mode, or an in-proc member under the Local harness).
type MemberOptions struct {
	// Net is the transport fabric (TCPNetwork for processes,
	// LocalNetwork for in-proc tests). Required.
	Net Network
	// CatalogAddr is the catalog endpoint to join. Required.
	CatalogAddr string
	// ListenAddr is the member's serving endpoint ("" auto-assigns:
	// a free port under TCP, a generated name under LocalNetwork).
	ListenAddr string
	// Strategy, CacheBytes, Workers, QueueDepth configure the embedded
	// query server exactly as server.Config does.
	Strategy   exec.Strategy
	CacheBytes int64
	Workers    int
	QueueDepth int
	// Model overrides the storage cost model (nil = simio.DefaultModel).
	Model *simio.Model
	// Clock and Log thread into the embedded server (trace spans,
	// slow-query log). Nil Clock keeps everything virtual-time only.
	Clock telemetry.Clock
	Log   *slog.Logger
	// HeartbeatNs > 0 starts a heartbeat goroutine beating that often,
	// paced by Sleeper (daemons pass telemetry.WallSleep; deterministic
	// tests leave it zero and drive liveness through explicit inputs).
	HeartbeatNs int64
	Sleeper     telemetry.Sleeper
	// RecorderEvents sizes the member's flight recorder ring (0 = the
	// telemetry default).
	RecorderEvents int
}

// viewState is the atomically swapped placement snapshot: the assign
// path reads epoch check and region share from one pointer load, so a
// rebalance can never split a request across two views.
type viewState struct {
	view  View
	place *Placement
}

// Member is one cluster data server: an embedded query server over a
// private store, plus the catalog agent that keeps its placement view
// current (transfers on Prepare, installs on Commit, heartbeats).
type Member struct {
	opts MemberOptions
	net  Network

	store *simio.Store
	meta  *metadata.Service
	srv   *server.Server
	reg   *telemetry.Registry
	acct  *vclock.Account // transfer/ingest I/O account

	id      MemberID
	lis     Listener
	catConn transport.Conn

	vs atomic.Pointer[viewState]

	done chan struct{} // closed when the member leaves the cluster
	wg   sync.WaitGroup

	mu     sync.Mutex
	conns  map[transport.Conn]struct{}
	closed bool
}

// StartMember joins the catalog and starts serving. On return the
// member has its ID, the committed view at join time, and the metadata
// snapshot; it becomes queryable once the catalog commits a view that
// includes it.
func StartMember(opts MemberOptions) (*Member, error) {
	if opts.Net == nil {
		return nil, fmt.Errorf("cluster: MemberOptions.Net is required")
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 1 << 30
	}
	if opts.Sleeper == nil {
		opts.Sleeper = telemetry.NoSleep
	}
	model := simio.DefaultModel()
	if opts.Model != nil {
		model = *opts.Model
	}
	model.Streams = 1

	m := &Member{
		opts:  opts,
		net:   opts.Net,
		store: simio.New(model),
		meta:  metadata.NewService(),
		reg:   telemetry.NewRegistry(),
		acct:  vclock.NewAccount(),
		conns: make(map[transport.Conn]struct{}),
		done:  make(chan struct{}),
	}

	lis, err := opts.Net.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	m.lis = lis

	cat, err := opts.Net.Dial(opts.CatalogAddr)
	if err != nil {
		_ = lis.Close()
		return nil, err
	}
	m.catConn = cat
	if err := cat.Send(transport.Message{Type: MsgCatHello, Payload: EncodeHello(lis.Addr())}); err != nil {
		_ = lis.Close()
		_ = cat.Close()
		return nil, err
	}
	reply, err := cat.Recv()
	if err != nil {
		_ = lis.Close()
		_ = cat.Close()
		return nil, err
	}
	if reply.Type == MsgCatError {
		_ = lis.Close()
		_ = cat.Close()
		return nil, fmt.Errorf("cluster: join rejected: %s", reply.Payload)
	}
	if reply.Type != MsgCatHelloResult {
		_ = lis.Close()
		_ = cat.Close()
		return nil, fmt.Errorf("cluster: unexpected join reply %s", CatMsgName(reply.Type))
	}
	hr, err := DecodeHelloResult(reply.Payload)
	if err != nil {
		_ = lis.Close()
		_ = cat.Close()
		return nil, err
	}
	m.id = hr.ID
	if len(hr.Meta) > 0 {
		if err := m.meta.Restore(hr.Meta); err != nil {
			_ = lis.Close()
			_ = cat.Close()
			return nil, err
		}
	}
	m.installView(hr.View)

	m.srv = server.New(server.Config{
		ID:             int(hr.ID),
		N:              1,
		Store:          m.store,
		Meta:           m.meta,
		Strategy:       opts.Strategy,
		CacheBytes:     opts.CacheBytes,
		Workers:        opts.Workers,
		QueueDepth:     opts.QueueDepth,
		Clock:          opts.Clock,
		Log:            opts.Log,
		RecorderEvents: opts.RecorderEvents,
		ClusterAssign:  m.assign,
		Ingest:         true,
		ExtraMetrics:   m.reg,
		TagOwner:       m.ownsTag,
	})

	m.wg.Add(2)
	go m.acceptLoop()
	go m.catalogLoop()
	if opts.HeartbeatNs > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
	return m, nil
}

// ID returns the catalog-assigned member ID.
func (m *Member) ID() MemberID { return m.id }

// Addr returns the member's serving address.
func (m *Member) Addr() string { return m.lis.Addr() }

// Done is closed when the member leaves the cluster (drained out of the
// committed view, crashed, or closed).
func (m *Member) Done() <-chan struct{} { return m.done }

// View returns the member's installed placement view (zero View before
// the first install).
func (m *Member) View() View {
	if vs := m.vs.Load(); vs != nil {
		return vs.view.Clone()
	}
	return View{}
}

// Server exposes the embedded query server (metrics, recorder).
func (m *Member) Server() *server.Server { return m.srv }

// Store exposes the member's private storage substrate (tests assert
// transfer effects through it).
func (m *Member) Store() *simio.Store { return m.store }

// installView swaps the placement snapshot and refreshes the membership
// gauges the server's Metrics merges in.
func (m *Member) installView(v View) {
	m.vs.Store(&viewState{view: v.Clone(), place: NewPlacement(v)})
	m.reg.SetGauge("cluster.epoch", float64(v.Epoch))
	m.reg.SetGauge("cluster.view.members", float64(len(v.Members)))
}

// assign is the server's ClusterAssign seam: one atomic snapshot gives
// both the epoch check and the region share, so queries are evaluated
// under exactly one placement or rejected.
func (m *Member) assign(epoch uint64, anchor *object.Object, rep *sortstore.Replica) (exec.Assignment, error) {
	vs := m.vs.Load()
	if vs == nil {
		return exec.Assignment{}, fmt.Errorf("cluster: member %d has no installed view", m.id)
	}
	if _, serving := vs.view.Member(m.id); !serving {
		return exec.Assignment{}, fmt.Errorf("cluster: member %d not serving at epoch %d", m.id, vs.view.Epoch)
	}
	if epoch != vs.view.Epoch {
		return exec.Assignment{}, fmt.Errorf("cluster: epoch mismatch: request %d, member at %d", epoch, vs.view.Epoch)
	}
	var a exec.Assignment
	for r := range anchor.Regions {
		if vs.place.Primary(anchor.ID, r) == m.id {
			a.Orig = append(a.Orig, r)
		}
	}
	// Sorted replicas are not replicated across the cluster; cluster
	// deployments evaluate from original regions (rep stays unused).
	_ = rep
	return a, nil
}

// ownsTag shards tag-query answers: the member answers for an object
// iff it is the placement primary of the object's first region, keeping
// the client-side union disjoint across members.
func (m *Member) ownsTag(id object.ID) bool {
	vs := m.vs.Load()
	if vs == nil {
		return false
	}
	if _, serving := vs.view.Member(m.id); !serving {
		return false
	}
	return vs.place.Primary(id, 0) == m.id
}

func (m *Member) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.lis.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			_ = conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			_ = m.srv.Serve(conn)
			_ = conn.Close()
			m.mu.Lock()
			delete(m.conns, conn)
			m.mu.Unlock()
		}()
	}
}

// catalogLoop consumes catalog pushes: Prepare (transfer + ack) and
// Commit (install, or exit when drained out of the view). A broken
// catalog connection is not fatal — the member keeps serving its last
// installed view; the catalog marks it down on its side.
func (m *Member) catalogLoop() {
	defer m.wg.Done()
	for {
		msg, err := m.catConn.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgCatPrepare:
			p, err := DecodePrepare(msg.Payload)
			if err != nil {
				continue
			}
			m.handlePrepare(p)
		case MsgCatCommit:
			v, _, err := DecodeView(msg.Payload)
			if err != nil {
				continue
			}
			m.handleCommit(v)
			if _, serving := v.Member(m.id); !serving {
				// Drained: the cluster no longer routes to this member.
				m.shutdown()
				return
			}
		}
	}
}

func (m *Member) heartbeatLoop() {
	defer m.wg.Done()
	period := time.Duration(m.opts.HeartbeatNs)
	for {
		select {
		case <-m.done:
			return
		default:
		}
		m.opts.Sleeper.Sleep(period)
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return
		}
		if err := m.catConn.Send(transport.Message{Type: MsgCatHeartbeat, Payload: EncodeMemberID(m.id)}); err != nil {
			return
		}
	}
}

// handlePrepare pulls the extents the pending view assigns to this
// member but its store lacks, then acks readiness for the epoch. The
// fetch plan is a pure diff of the two placements over local metadata.
func (m *Member) handlePrepare(p Prepare) {
	if _, ok := p.Pending.Member(m.id); ok {
		srcPlace := NewPlacement(p.Source)
		pendPlace := NewPlacement(p.Pending)
		needs := m.missingExtents(srcPlace, pendPlace, p.Pending)
		for _, src := range sortedSources(needs) {
			m.fetchFrom(p, src, needs[src])
		}
	}
	_ = m.catConn.Send(transport.Message{Type: MsgCatReady, Payload: EncodeReady(m.id, p.Pending.Epoch)})
}

// missingExtents groups the keys this member must fetch by source
// member: for each region the pending placement assigns here (primary
// or replica) whose extent is absent locally, the source is the first
// old owner that is still alive (present in the pending view) and is
// not this member.
func (m *Member) missingExtents(srcPlace, pendPlace *Placement, pending View) map[MemberID][]string {
	needs := make(map[MemberID][]string)
	for _, o := range m.meta.Objects() {
		for i := range o.Regions {
			if !pendPlace.Owns(m.id, o.ID, i) {
				continue
			}
			rm := &o.Regions[i]
			keys := make([]string, 0, 2)
			if rm.ExtentKey != "" && !m.store.Exists(rm.ExtentKey) {
				keys = append(keys, rm.ExtentKey)
			}
			if rm.IndexKey != "" && !m.store.Exists(rm.IndexKey) {
				keys = append(keys, rm.IndexKey)
			}
			if len(keys) == 0 {
				continue
			}
			src := MemberID(-1)
			for _, owner := range srcPlace.OwnerIDs(o.ID, i) {
				if owner == m.id {
					continue
				}
				if _, alive := pending.Member(owner); alive {
					src = owner
					break
				}
			}
			if src < 0 {
				// No live source holds the region (e.g. the whole owner
				// set died). Nothing to fetch from; queries over it will
				// surface storage errors rather than wrong answers.
				m.reg.Add("cluster.transfer.unsourced", 1)
				continue
			}
			needs[src] = append(needs[src], keys...)
		}
	}
	return needs
}

func sortedSources(needs map[MemberID][]string) []MemberID {
	out := make([]MemberID, 0, len(needs))
	for id := range needs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// transferBatch bounds the keys per MsgFetchExtents request so a
// rebalance streams in chunks instead of one giant frame.
const transferBatch = 64

// fetchFrom streams the given keys from one source member and writes
// them into local storage.
func (m *Member) fetchFrom(p Prepare, src MemberID, keys []string) {
	info, ok := p.Source.Member(src)
	if !ok {
		info, ok = p.Pending.Member(src)
	}
	if !ok {
		return
	}
	conn, err := m.net.Dial(info.Addr)
	if err != nil {
		m.reg.Add("cluster.transfer.errors", 1)
		return
	}
	defer func() { _ = conn.Close() }()
	var regions, bytes int64
	for start := 0; start < len(keys); start += transferBatch {
		end := start + transferBatch
		if end > len(keys) {
			end = len(keys)
		}
		batch := keys[start:end]
		if err := conn.Send(transport.Message{Type: server.MsgFetchExtents, Payload: server.EncodeFetchExtents(batch)}); err != nil {
			m.reg.Add("cluster.transfer.errors", 1)
			return
		}
		reply, err := conn.Recv()
		if err != nil || reply.Type != server.MsgExtentsResult {
			m.reg.Add("cluster.transfer.errors", 1)
			return
		}
		exts, err := server.DecodeExtentsResult(reply.Payload)
		if err != nil {
			m.reg.Add("cluster.transfer.errors", 1)
			return
		}
		for _, e := range exts {
			if !e.Present {
				m.reg.Add("cluster.transfer.unsourced", 1)
				continue
			}
			// Recv allocates payloads per frame, so the extent slice is
			// safe to hand to the store without copying.
			m.store.WriteOwned(m.acct, e.Key, simio.PFS, e.Data)
			regions++
			bytes += int64(len(e.Data))
		}
	}
	if regions > 0 {
		m.srv.Recorder().Record(telemetry.EvTransfer, 0, int32(src), 0, regions, bytes)
		m.reg.Add("cluster.transfers", regions)
		m.reg.Add("cluster.transfer.bytes", bytes)
	}
}

// handleCommit installs a committed view, recording promotions: regions
// whose previous primary left the view and whose new primary is this
// member are failover promotions (served from the local replica, no
// data movement).
func (m *Member) handleCommit(v View) {
	prev := m.vs.Load()
	if prev != nil && v.Epoch <= prev.view.Epoch {
		return // stale push
	}
	place := NewPlacement(v)
	if prev != nil {
		var promoted int64
		for _, o := range m.meta.Objects() {
			for i := range o.Regions {
				if place.Primary(o.ID, i) != m.id {
					continue
				}
				oldPrimary := prev.place.Primary(o.ID, i)
				if oldPrimary == m.id {
					continue
				}
				if _, alive := v.Member(oldPrimary); !alive {
					promoted++
				}
			}
		}
		if promoted > 0 {
			m.srv.Recorder().Record(telemetry.EvFailover, 0, int32(m.id), 0, int64(v.Epoch), promoted)
			m.reg.Add("cluster.failover.regions", promoted)
		}
	}
	m.vs.Store(&viewState{view: v.Clone(), place: place})
	m.reg.SetGauge("cluster.epoch", float64(v.Epoch))
	m.reg.SetGauge("cluster.view.members", float64(len(v.Members)))
}

// shutdown tears the member down: stop accepting, end sessions, stop
// the embedded server. Idempotent.
func (m *Member) shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	conns := make([]transport.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	_ = m.lis.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	_ = m.catConn.Close()
	m.srv.Shutdown()
	close(m.done)
}

// Crash kills the member abruptly — the in-proc stand-in for SIGKILL:
// every connection drops mid-whatever, no drain, no goodbye to the
// catalog.
func (m *Member) Crash() { m.shutdown() }

// Close shuts the member down gracefully from the caller's side (use
// the catalog's Drain for a data-safe exit that migrates regions off
// first).
func (m *Member) Close() {
	m.shutdown()
	m.wg.Wait()
}
