package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/transport"
)

// fakeTime is a frozen clock that only moves when something sleeps on
// it or the test advances it by hand — virtual time, no wall waits.
type fakeTime struct {
	mu     sync.Mutex
	ns     int64
	sleeps int
}

func (f *fakeTime) Now() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ns
}

func (f *fakeTime) Sleep(d time.Duration) {
	f.mu.Lock()
	f.ns += int64(d)
	f.sleeps++
	f.mu.Unlock()
}

func (f *fakeTime) Advance(d time.Duration) {
	f.mu.Lock()
	f.ns += int64(d)
	f.mu.Unlock()
}

func (f *fakeTime) Sleeps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sleeps
}

// refusingNet fails every dial with a retryable connection error and
// charges virtual time for the attempt, simulating a slow unreachable
// catalog.
type refusingNet struct {
	ft       *fakeTime
	perDial  time.Duration
	mu       sync.Mutex
	attempts int
}

func (n *refusingNet) Listen(addr string) (Listener, error) {
	return nil, errors.New("refusingNet: listen unsupported")
}

func (n *refusingNet) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	n.attempts++
	n.mu.Unlock()
	n.ft.Advance(n.perDial)
	return nil, fmt.Errorf("dial %s: connection refused", addr)
}

func (n *refusingNet) Attempts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attempts
}

// Regression: Session.call used to sleep RetryWait between attempts
// with no regard for the caller's CallTimeout budget — after the
// deadline had already expired it would keep sleeping and retrying up
// to MaxAttempts, multiplying the caller's wait by the attempt count.
// Post-fix the loop checks the budget before each sleep and returns
// the typed timeout. Pre-fix this test fails on all three assertions:
// 8 dials, 7 sleeps, and an untyped "giving up after 8 attempts" error.
func TestSessionCallStopsAtDeadline(t *testing.T) {
	ft := &fakeTime{}
	net := &refusingNet{ft: ft, perDial: 40 * time.Millisecond}
	s, err := DialSession(SessionOptions{
		Net:         net,
		CatalogAddr: "catalog",
		CallTimeout: 100 * time.Millisecond,
		MaxAttempts: 8,
		RetryWait:   25 * time.Millisecond,
		Sleeper:     ft,
		Clock:       ft,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.call(func(cli *client.Client) error { return nil })
	if err == nil {
		t.Fatal("call must fail when the catalog is unreachable")
	}
	// Budget math: dial 1 ends at 40ms; sleeping 25ms is still inside
	// the 100ms budget, so attempt 2 runs and ends at 105ms; the next
	// sleep would end past the deadline, so the loop must stop there.
	if !errors.Is(err, client.ErrTimeout) {
		t.Errorf("error %v must match the typed client.ErrTimeout", err)
	}
	if got := net.Attempts(); got != 2 {
		t.Errorf("dial attempts = %d, want 2 (budget stops the loop)", got)
	}
	if got := ft.Sleeps(); got != 1 {
		t.Errorf("retry sleeps = %d, want 1 (no sleeping past the deadline)", got)
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("error %q should say the retry budget was exhausted", err)
	}
}

// Without a CallTimeout there is no budget: the loop runs to
// MaxAttempts exactly as before the fix.
func TestSessionCallNoTimeoutRetriesToMaxAttempts(t *testing.T) {
	ft := &fakeTime{}
	net := &refusingNet{ft: ft, perDial: 40 * time.Millisecond}
	s, err := DialSession(SessionOptions{
		Net:         net,
		CatalogAddr: "catalog",
		MaxAttempts: 5,
		RetryWait:   25 * time.Millisecond,
		Sleeper:     ft,
		Clock:       ft,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.call(func(cli *client.Client) error { return nil })
	if err == nil {
		t.Fatal("call must fail when the catalog is unreachable")
	}
	if got := net.Attempts(); got != 5 {
		t.Errorf("dial attempts = %d, want MaxAttempts 5", got)
	}
	if !strings.Contains(err.Error(), "giving up after 5 attempts") {
		t.Errorf("error %q should report giving up after MaxAttempts", err)
	}
}

// The deterministic default (NoClock reads zero) keeps the budget
// inert as long as RetryWait fits inside CallTimeout, so existing
// harnesses see no behavior change.
func TestSessionCallNoClockKeepsRetrying(t *testing.T) {
	ft := &fakeTime{}
	net := &refusingNet{ft: ft, perDial: 40 * time.Millisecond}
	s, err := DialSession(SessionOptions{
		Net:         net,
		CatalogAddr: "catalog",
		CallTimeout: 100 * time.Millisecond,
		MaxAttempts: 4,
		RetryWait:   25 * time.Millisecond,
		Sleeper:     ft,
		// Clock left nil: defaults to telemetry.NoClock.
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.call(func(cli *client.Client) error { return nil })
	if err == nil {
		t.Fatal("call must fail when the catalog is unreachable")
	}
	if got := net.Attempts(); got != 4 {
		t.Errorf("dial attempts = %d, want MaxAttempts 4 under NoClock", got)
	}
}
