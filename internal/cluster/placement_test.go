package cluster

import (
	"fmt"
	"testing"

	"pdcquery/internal/object"
)

// testView builds a view with n members (IDs 0..n-1) at the given seed.
func testView(n int, seed uint64, r int) View {
	v := View{Epoch: 1, Seed: seed, R: r}
	for i := 0; i < n; i++ {
		v.Members = append(v.Members, MemberInfo{ID: MemberID(i), Addr: fmt.Sprintf("member-%d", i)})
	}
	return v
}

// placementDigest folds the full region→owners map for a synthetic
// workload (8 objects × 64 regions) into one 64-bit value. Any change
// to the hash function, vnode count, walk order, or replica selection
// changes the digest.
func placementDigest(p *Placement) uint64 {
	var h uint64 = 0x243f6a8885a308d3
	for obj := object.ID(1); obj <= 8; obj++ {
		for region := 0; region < 64; region++ {
			for _, id := range p.OwnerIDs(obj, region) {
				h = splitmix64(h ^ uint64(uint32(id)))
			}
		}
	}
	return h
}

// TestPlacementGolden pins the consistent-hash region→server map for a
// seeded catalog at N=3,5,8 members. These digests are part of the wire
// contract: clients and servers compute placement independently from
// the same View, so the map may only change with a deliberate epoch of
// the placement algorithm itself.
func TestPlacementGolden(t *testing.T) {
	golden := map[int]uint64{
		3: 0x3979fe50fd0ce2f5,
		5: 0x24856ffce1e21402,
		8: 0x7e709b17439dedd1,
	}
	for n, want := range golden {
		p := NewPlacement(testView(n, 42, 2))
		got := placementDigest(p)
		if got != want {
			t.Errorf("N=%d: placement digest = %#x, want %#x (placement algorithm changed?)", n, got, want)
		}
	}
}

// TestPlacementDeterminism: two independently built placements from the
// same view agree on every owner list.
func TestPlacementDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := NewPlacement(testView(n, 7, 2))
		b := NewPlacement(testView(n, 7, 2))
		if da, db := placementDigest(a), placementDigest(b); da != db {
			t.Fatalf("N=%d: same view produced different placements: %#x vs %#x", n, da, db)
		}
	}
}

// TestPlacementSeedSensitivity: different seeds give different maps (the
// seed is the knob that reshuffles placement for tests).
func TestPlacementSeedSensitivity(t *testing.T) {
	a := NewPlacement(testView(5, 1, 2))
	b := NewPlacement(testView(5, 2, 2))
	if placementDigest(a) == placementDigest(b) {
		t.Fatal("different seeds produced identical placements")
	}
}

// TestPlacementOwnersDistinct: owner lists never repeat a member and
// respect R (capped by the member count).
func TestPlacementOwnersDistinct(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		p := NewPlacement(testView(n, 42, 2))
		wantLen := 2
		if n < 2 {
			wantLen = n
		}
		for obj := object.ID(1); obj <= 4; obj++ {
			for region := 0; region < 32; region++ {
				owners := p.Owners(obj, region)
				if len(owners) != wantLen {
					t.Fatalf("N=%d obj=%d region=%d: got %d owners, want %d", n, obj, region, len(owners), wantLen)
				}
				seen := map[int]bool{}
				for _, o := range owners {
					if seen[o] {
						t.Fatalf("N=%d obj=%d region=%d: duplicate owner %d", n, obj, region, o)
					}
					seen[o] = true
				}
			}
		}
	}
}

// TestPlacementMinimalMovement: adding one member to an N-member ring
// reassigns roughly 1/(N+1) of the region primaries — the consistent-
// hashing property that makes join/drain rebalances cheap. We allow 2×
// the ideal fraction as slack for vnode variance.
func TestPlacementMinimalMovement(t *testing.T) {
	const objects = 16
	const regions = 64
	for _, n := range []int{3, 5, 8} {
		before := NewPlacement(testView(n, 42, 2))
		after := NewPlacement(testView(n+1, 42, 2))
		total, moved, movedElsewhere := 0, 0, 0
		newID := MemberID(n)
		for obj := object.ID(1); obj <= objects; obj++ {
			for region := 0; region < regions; region++ {
				total++
				pb := before.Primary(obj, region)
				pa := after.Primary(obj, region)
				if pb != pa {
					moved++
					if pa != newID {
						movedElsewhere++
					}
				}
			}
		}
		ideal := float64(total) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("N=%d→%d: %d/%d primaries moved, want ≤ ~%d (2× ideal 1/N)",
				n, n+1, moved, total, int(2*ideal))
		}
		// Consistent hashing guarantee: an insertion only moves regions
		// TO the joiner; no region changes hands between survivors.
		if movedElsewhere != 0 {
			t.Errorf("N=%d→%d: %d regions moved between pre-existing members on insert", n, n+1, movedElsewhere)
		}
	}
}

// TestPlacementRemovalPromotes: removing a member only reassigns the
// regions it owned, and each reassignment promotes an existing owner
// (the next member on the ring) — so failover needs no data movement
// when R≥2.
func TestPlacementRemovalPromotes(t *testing.T) {
	const n = 5
	v := testView(n, 42, 2)
	before := NewPlacement(v)
	// Remove member 2.
	removed := MemberID(2)
	var survivors []MemberInfo
	for _, m := range v.Members {
		if m.ID != removed {
			survivors = append(survivors, m)
		}
	}
	after := NewPlacement(View{Epoch: 2, Seed: v.Seed, R: v.R, Members: survivors})
	for obj := object.ID(1); obj <= 8; obj++ {
		for region := 0; region < 64; region++ {
			pb := before.Primary(obj, region)
			pa := after.Primary(obj, region)
			if pb != removed {
				if pa != pb {
					t.Fatalf("obj=%d region=%d: primary moved %d→%d though %d did not fail",
						obj, region, pb, pa, removed)
				}
				continue
			}
			// The dead member's regions must land on one of its former
			// replicas: failover without data movement.
			wasOwner := false
			for _, id := range before.OwnerIDs(obj, region) {
				if id == pa {
					wasOwner = true
					break
				}
			}
			if !wasOwner {
				t.Fatalf("obj=%d region=%d: new primary %d was not a replica before removal", obj, region, pa)
			}
		}
	}
}

// TestPlacementBalance: with vnodes the load split stays within a
// reasonable factor of even.
func TestPlacementBalance(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		p := NewPlacement(testView(n, 42, 2))
		counts := make(map[MemberID]int)
		total := 0
		for obj := object.ID(1); obj <= 16; obj++ {
			for region := 0; region < 64; region++ {
				counts[p.Primary(obj, region)]++
				total++
			}
		}
		mean := float64(total) / float64(n)
		for id, c := range counts {
			if float64(c) > 2.5*mean || float64(c) < mean/4 {
				t.Errorf("N=%d: member %d owns %d/%d primaries (mean %.0f) — badly unbalanced", n, id, c, total, mean)
			}
		}
	}
}

// TestViewCloneIndependence: mutating a clone's member list does not
// alias the original.
func TestViewCloneIndependence(t *testing.T) {
	v := testView(3, 1, 2)
	c := v.Clone()
	c.Members[0].Addr = "mutated"
	if v.Members[0].Addr == "mutated" {
		t.Fatal("Clone aliases the original member slice")
	}
}
