package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/plan"
	"pdcquery/internal/query"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

// SessionOptions configures a cluster client session.
type SessionOptions struct {
	// Net and CatalogAddr locate the cluster. Required.
	Net         Network
	CatalogAddr string
	// CallTimeout bounds each broadcast in wall time (0 = none; process
	// deployments set it so a SIGKILLed server cannot hang a query).
	CallTimeout time.Duration
	// MaxAttempts bounds the refresh-and-retry loop per call (default 8).
	MaxAttempts int
	// RetryWait paces retries via Sleeper (default 25ms under a real
	// sleeper; telemetry.NoSleep makes retries immediate).
	RetryWait time.Duration
	Sleeper   telemetry.Sleeper
	// Clock supplies the wall readings the retry loop uses to enforce
	// CallTimeout across attempts: once the budget is spent the loop
	// returns the typed timeout instead of sleeping past the caller's
	// deadline. Default telemetry.NoClock reads zero, which keeps
	// deterministic harnesses budget-free; daemons install
	// telemetry.Wall alongside a real sleeper.
	Clock telemetry.Clock
	// Recorder, when set, receives client-side recovery events.
	Recorder *telemetry.Recorder
}

// Session is the catalog-aware query client: it fetches the committed
// view, builds a client over the serving members, stamps queries with
// the placement epoch, and on failure (epoch mismatch after a
// rebalance, a member dying mid-call, a timeout) reports, refreshes,
// and retries — returning either the one true answer or a typed error,
// never a wrong or partial result.
type Session struct {
	opts SessionOptions
	net  Network

	mu    sync.Mutex
	view  View
	place *Placement
	cli   *client.Client
	meta  *metadata.Service
	ranks map[MemberID]int // member → conn index in cli
	stale bool
}

// DialSession connects to a cluster through its catalog.
func DialSession(opts SessionOptions) (*Session, error) {
	if opts.Net == nil {
		return nil, fmt.Errorf("cluster: SessionOptions.Net is required")
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.Sleeper == nil {
		opts.Sleeper = telemetry.NoSleep
	}
	if opts.Clock == nil {
		opts.Clock = telemetry.NoClock
	}
	if opts.RetryWait <= 0 {
		opts.RetryWait = 25 * time.Millisecond
	}
	s := &Session{opts: opts, net: opts.Net, stale: true}
	return s, nil
}

// catCall performs one request/reply exchange with the catalog on a
// fresh connection.
func (s *Session) catCall(msgType byte, payload []byte) (transport.Message, error) {
	conn, err := s.net.Dial(s.opts.CatalogAddr)
	if err != nil {
		return transport.Message{}, fmt.Errorf("cluster: catalog dial: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(transport.Message{Type: msgType, ReqID: 1, Payload: payload}); err != nil {
		return transport.Message{}, fmt.Errorf("cluster: catalog send: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return transport.Message{}, fmt.Errorf("cluster: catalog recv: %w", err)
	}
	if reply.Type == MsgCatError {
		return transport.Message{}, fmt.Errorf("catalog: %s", reply.Payload)
	}
	return reply, nil
}

// FetchView asks the catalog for the committed view.
func (s *Session) FetchView() (View, error) {
	reply, err := s.catCall(MsgCatView, nil)
	if err != nil {
		return View{}, err
	}
	if reply.Type != MsgCatCommit {
		return View{}, fmt.Errorf("cluster: unexpected view reply %s", CatMsgName(reply.Type))
	}
	v, _, err := DecodeView(reply.Payload)
	return v, err
}

// Report tells the catalog a member looks dead (the client-initiated
// fast path to failover; the heartbeat timeout is the backstop).
func (s *Session) Report(id MemberID) {
	_, _ = s.catCall(MsgCatReport, EncodeMemberID(id))
}

// Drain asks the catalog to migrate a member's regions off and retire
// it.
func (s *Session) Drain(id MemberID) error {
	_, err := s.catCall(MsgCatDrain, EncodeMemberID(id))
	return err
}

// Invalidate marks the session's view stale; the next call refreshes.
func (s *Session) Invalidate() {
	s.mu.Lock()
	s.stale = true
	s.mu.Unlock()
}

// refresh rebuilds the member client from a fresh committed view. All
// the network work — view fetch, meta fetch, member dials — happens
// off the session lock (lockhold: no transport I/O under a mutex); the
// finished state is installed atomically at the end. Two racing
// refreshes are safe: the loser's client is closed on install and any
// caller still using it sees a retryable ErrClosed.
func (s *Session) refresh() error {
	v, err := s.FetchView()
	if err != nil {
		return err
	}
	if len(v.Members) == 0 {
		return fmt.Errorf("cluster: no serving members")
	}
	s.mu.Lock()
	meta := s.meta
	s.mu.Unlock()
	if meta == nil {
		reply, err := s.catCall(MsgCatMeta, nil)
		if err != nil {
			return err
		}
		if len(reply.Payload) == 0 {
			return fmt.Errorf("cluster: catalog has no metadata (import first)")
		}
		meta = metadata.NewService()
		if err := meta.Restore(reply.Payload); err != nil {
			return err
		}
	}
	conns := make([]transport.Conn, 0, len(v.Members))
	ranks := make(map[MemberID]int, len(v.Members))
	for _, mi := range v.Members {
		conn, err := s.net.Dial(mi.Addr)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			// A member the committed view lists but nobody can reach is
			// dead news the catalog hasn't heard yet — report it so the
			// next refresh sees a view without it.
			s.Report(mi.ID)
			return fmt.Errorf("cluster: dial member %d (%s): %w", mi.ID, mi.Addr, err)
		}
		ranks[mi.ID] = len(conns)
		conns = append(conns, conn)
	}
	place := NewPlacement(v)
	cli := client.New(conns, meta)
	cli.SetEpoch(v.Epoch)
	cli.SetCallTimeout(s.opts.CallTimeout)
	cli.SetSleeper(s.opts.Sleeper)
	if s.opts.Recorder != nil {
		cli.SetRecorder(s.opts.Recorder)
	}
	cli.SetRouter(func(o *object.Object, region int) int {
		if rank, ok := ranks[place.Primary(o.ID, region)]; ok {
			return rank
		}
		return 0
	})
	s.mu.Lock()
	old := s.cli
	s.view, s.place, s.cli, s.meta, s.ranks, s.stale = v, place, cli, meta, ranks, false
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// client returns a current client, refreshing if stale.
func (s *Session) client() (*client.Client, error) {
	s.mu.Lock()
	cli, stale := s.cli, s.stale
	s.mu.Unlock()
	if cli != nil && !stale {
		return cli, nil
	}
	if err := s.refresh(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	cli = s.cli
	s.mu.Unlock()
	return cli, nil
}

// View returns the session's current view (refreshing if stale).
func (s *Session) View() (View, error) {
	if _, err := s.client(); err != nil {
		return View{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view.Clone(), nil
}

// retryable classifies failures the refresh-and-retry loop can mask:
// placement moved under the call (epoch mismatch, member not serving),
// a member died (typed down errors, timeouts), or the fabric refused a
// connection mid-rebalance. Anything else — validation errors, decode
// errors, storage faults — surfaces to the caller unchanged.
func retryable(err error) bool {
	var down *client.ServerDownError
	if errors.As(err, &down) {
		return true
	}
	if errors.Is(err, client.ErrTimeout) || errors.Is(err, client.ErrClosed) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "epoch mismatch") ||
		strings.Contains(msg, "not serving at epoch") ||
		strings.Contains(msg, "has no installed view") ||
		strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "connection:") ||
		strings.Contains(msg, "no serving members")
}

// reportFailure turns a typed down error into a catalog report, so
// failover starts now rather than at the next heartbeat sweep.
func (s *Session) reportFailure(err error) {
	var down *client.ServerDownError
	if !errors.As(err, &down) {
		return
	}
	s.mu.Lock()
	var id MemberID = -1
	for mid, rank := range s.ranks {
		if rank == down.Srv {
			id = mid
			break
		}
	}
	s.mu.Unlock()
	if id >= 0 {
		s.Report(id)
	}
}

// call runs one client operation under the refresh-and-retry loop.
// The loop is bounded two ways: MaxAttempts caps the retry count, and
// CallTimeout (when a real Clock is installed) caps the wall budget —
// before each retry sleep the loop checks whether sleeping would
// outlive the budget and, if so, returns the typed timeout instead of
// burning RetryWait on a deadline that has already passed.
func (s *Session) call(fn func(cli *client.Client) error) error {
	start := s.opts.Clock.Now()
	var deadline int64
	if s.opts.CallTimeout > 0 {
		deadline = start + int64(s.opts.CallTimeout)
	}
	var lastErr error
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if deadline != 0 && s.opts.Clock.Now()+int64(s.opts.RetryWait) > deadline {
				return fmt.Errorf("cluster: retry budget exhausted after %d attempts: %w (last error: %v)",
					attempt, client.ErrTimeout, lastErr)
			}
			s.opts.Sleeper.Sleep(s.opts.RetryWait)
		}
		cli, err := s.client()
		if err != nil {
			lastErr = err
			if !retryable(err) {
				return err
			}
			continue
		}
		err = fn(cli)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		s.reportFailure(err)
		s.Invalidate()
	}
	return fmt.Errorf("cluster: giving up after %d attempts: %w", s.opts.MaxAttempts, lastErr)
}

// Run executes a query with selection transfer (PDCquery_get_sel_obj
// against the cluster).
func (s *Session) Run(q *query.Query) (*client.QueryResult, error) {
	var res *client.QueryResult
	err := s.call(func(cli *client.Client) error {
		var err error
		res, err = cli.Run(q)
		return err
	})
	return res, err
}

// RunCount executes a query for the hit count only.
func (s *Session) RunCount(q *query.Query) (*client.QueryResult, error) {
	var res *client.QueryResult
	err := s.call(func(cli *client.Client) error {
		var err error
		res, err = cli.RunCount(q)
		return err
	})
	return res, err
}

// RunText executes a declarative text query against the cluster with
// the session's epoch-refresh retry loop: a rebalance under the query
// invalidates the view, and the retry replans against the new epoch.
func (s *Session) RunText(text string, force plan.Force) (*client.TextResult, error) {
	var res *client.TextResult
	err := s.call(func(cli *client.Client) error {
		var err error
		res, err = cli.RunText(text, force)
		return err
	})
	return res, err
}

// QueryTag runs a metadata tag query across the cluster.
func (s *Session) QueryTag(conds []metadata.TagCond) ([]object.ID, error) {
	var ids []object.ID
	err := s.call(func(cli *client.Client) error {
		var err error
		ids, _, err = cli.QueryTag(conds)
		return err
	})
	return ids, err
}

// Client returns the session's current member client (refreshing if
// stale) for direct use — e.g. result GetData fetches. The client is
// valid until the next refresh.
func (s *Session) Client() (*client.Client, error) {
	return s.client()
}

// Close tears down the member client. The session can be reused; the
// next call refreshes.
func (s *Session) Close() {
	s.mu.Lock()
	cli := s.cli
	s.cli = nil
	s.stale = true
	s.mu.Unlock()
	if cli != nil {
		_ = cli.Close()
	}
}
