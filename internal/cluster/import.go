package cluster

import (
	"fmt"

	"pdcquery/internal/metadata"
	"pdcquery/internal/server"
	"pdcquery/internal/simio"
	"pdcquery/internal/transport"
	"pdcquery/internal/vclock"
)

// Source is where an import reads from: any holder of a metadata
// service and a store with the standard extent layout. core.Deployment
// satisfies it, so a locally imported dataset (which doubles as the
// brute-force oracle) pushes straight into a cluster.
type Source interface {
	Meta() *metadata.Service
	Store() *simio.Store
}

// Import publishes a source's dataset into the cluster: the metadata
// snapshot goes to the catalog and every serving member, then each
// region's extents (data + index) are written to all R placement
// owners. Replication happens here, at import — failover later needs no
// data movement.
func (s *Session) Import(src Source) error {
	snap, err := src.Meta().Snapshot()
	if err != nil {
		return err
	}
	reply, err := s.catCall(MsgCatImport, snap)
	if err != nil {
		return err
	}
	if reply.Type != MsgCatCommit {
		return fmt.Errorf("cluster: unexpected import reply %s", CatMsgName(reply.Type))
	}
	v, _, err := DecodeView(reply.Payload)
	if err != nil {
		return err
	}
	if len(v.Members) == 0 {
		return fmt.Errorf("cluster: no serving members to import into")
	}
	place := NewPlacement(v)

	conns := make(map[MemberID]transport.Conn, len(v.Members))
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for _, mi := range v.Members {
		conn, err := s.net.Dial(mi.Addr)
		if err != nil {
			return fmt.Errorf("cluster: import dial member %d: %w", mi.ID, err)
		}
		conns[mi.ID] = conn
	}

	// Step 1: every member gets the metadata snapshot.
	for _, mi := range v.Members {
		if err := importCall(conns[mi.ID], server.MsgPutMeta, snap); err != nil {
			return fmt.Errorf("cluster: put meta to member %d: %w", mi.ID, err)
		}
	}

	// Step 2: each region's extents go to its R owners (primary first).
	acct := vclock.NewAccount()
	for _, o := range src.Meta().Objects() {
		for i := range o.Regions {
			rm := &o.Regions[i]
			keys := make([]string, 0, 2)
			if rm.ExtentKey != "" {
				keys = append(keys, rm.ExtentKey)
			}
			if rm.IndexKey != "" {
				keys = append(keys, rm.IndexKey)
			}
			owners := place.OwnerIDs(o.ID, i)
			for _, key := range keys {
				data, err := src.Store().ReadAll(acct, key)
				if err != nil {
					return fmt.Errorf("cluster: import read %s: %w", key, err)
				}
				payload := server.EncodePutExtent(key, data)
				for _, owner := range owners {
					if err := importCall(conns[owner], server.MsgPutExtent, payload); err != nil {
						return fmt.Errorf("cluster: put extent %s to member %d: %w", key, owner, err)
					}
				}
			}
		}
	}
	s.Invalidate()
	return nil
}

// importCall is one synchronous request/ack on a member connection
// (single outstanding request, so replies need no demultiplexing).
func importCall(conn transport.Conn, msgType byte, payload []byte) error {
	if err := conn.Send(transport.Message{Type: msgType, ReqID: 1, Payload: payload}); err != nil {
		return err
	}
	reply, err := conn.Recv()
	if err != nil {
		return err
	}
	switch reply.Type {
	case server.MsgOK:
		return nil
	case server.MsgError:
		return fmt.Errorf("%s", reply.Payload)
	default:
		return fmt.Errorf("unexpected reply %s", server.MsgName(reply.Type))
	}
}

// Verify checks every serving member holds all extents placement
// assigns it (tests and the smoke tool call this after imports and
// rebalances). It reports the first hole found.
func (s *Session) Verify(src Source) error {
	v, err := s.View()
	if err != nil {
		return err
	}
	place := NewPlacement(v)
	for _, mi := range v.Members {
		conn, err := s.net.Dial(mi.Addr)
		if err != nil {
			return fmt.Errorf("cluster: verify dial member %d: %w", mi.ID, err)
		}
		var keys []string
		for _, o := range src.Meta().Objects() {
			for i := range o.Regions {
				if !place.Owns(mi.ID, o.ID, i) {
					continue
				}
				rm := &o.Regions[i]
				if rm.ExtentKey != "" {
					keys = append(keys, rm.ExtentKey)
				}
				if rm.IndexKey != "" {
					keys = append(keys, rm.IndexKey)
				}
			}
		}
		holes, err := fetchPresence(conn, keys)
		_ = conn.Close()
		if err != nil {
			return fmt.Errorf("cluster: verify member %d: %w", mi.ID, err)
		}
		if len(holes) > 0 {
			return fmt.Errorf("cluster: member %d missing %d extents (first: %s)", mi.ID, len(holes), holes[0])
		}
	}
	return nil
}

// fetchPresence asks a member for the given keys and returns the ones
// it lacks.
func fetchPresence(conn transport.Conn, keys []string) ([]string, error) {
	var holes []string
	for start := 0; start < len(keys); start += transferBatch {
		end := start + transferBatch
		if end > len(keys) {
			end = len(keys)
		}
		if err := conn.Send(transport.Message{Type: server.MsgFetchExtents, ReqID: 1, Payload: server.EncodeFetchExtents(keys[start:end])}); err != nil {
			return nil, err
		}
		reply, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		if reply.Type != server.MsgExtentsResult {
			return nil, fmt.Errorf("unexpected reply %s", server.MsgName(reply.Type))
		}
		exts, err := server.DecodeExtentsResult(reply.Payload)
		if err != nil {
			return nil, err
		}
		for _, e := range exts {
			if !e.Present {
				holes = append(holes, e.Key)
			}
		}
	}
	return holes, nil
}
