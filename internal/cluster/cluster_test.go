// End-to-end cluster tests: a real catalog and members over the
// in-process network, answering the pinned corpus byte-identically to
// the single-deployment brute-force oracle through imports, crashes,
// joins, and drains.
//
// External test package: internal/core imports internal/cluster (the
// process deployment), so these tests — which use core.Deployment as
// the import source and oracle — cannot live in package cluster.
package cluster_test

import (
	"bytes"
	"testing"
	"time"

	"pdcquery/internal/cluster"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/selection"
	"pdcquery/internal/workload"
)

// newSource builds a small VPIC deployment that serves as both the
// import source and the brute-force oracle. Small regions so queries
// span several extents (and therefore several placement owners).
func newSource(t *testing.T, particles int) (*core.Deployment, []*query.Query, []*selection.Selection) {
	t.Helper()
	d := core.NewDeployment(core.Options{
		Servers:     2,
		Strategy:    exec.Histogram,
		RegionBytes: 8 << 10,
	})
	c := d.CreateContainer("cluster-e2e")
	v := workload.GenerateVPIC(particles, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(particles)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			t.Fatalf("import %s: %v", name, err)
		}
		ids[name] = o.ID
	}
	queries := workload.SingleObjectQueries(ids["Energy"])
	truths := make([]*selection.Selection, len(queries))
	for i, q := range queries {
		sel, err := d.GroundTruth(q)
		if err != nil {
			t.Fatalf("ground truth %d: %v", i, err)
		}
		truths[i] = sel
	}
	t.Cleanup(func() { _ = d.Close() })
	return d, queries, truths
}

// startCluster boots an n-member local cluster and imports the source.
func startCluster(t *testing.T, src *core.Deployment, n, r int) (*cluster.Local, *cluster.Session) {
	t.Helper()
	l, err := cluster.StartLocal(cluster.LocalOptions{Members: n, R: r, Seed: 42})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(l.Close)
	s, err := l.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	t.Cleanup(s.Close)
	if err := s.Import(src); err != nil {
		t.Fatalf("import: %v", err)
	}
	return l, s
}

// runCorpus answers every query through the session and insists on
// byte-identical agreement with the oracle.
func runCorpus(t *testing.T, s *cluster.Session, queries []*query.Query, truths []*selection.Selection) {
	t.Helper()
	for i, q := range queries {
		out, err := s.Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
			t.Fatalf("query %d: cluster answer differs from oracle (%d vs %d hits)",
				i, out.Sel.NHits, truths[i].NHits)
		}
	}
}

func TestClusterImportAndQuery(t *testing.T) {
	src, queries, truths := newSource(t, 4000)
	l, s := startCluster(t, src, 3, 2)
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify after import: %v", err)
	}
	runCorpus(t, s, queries, truths)

	reg := l.Catalog().Metrics()
	if got := reg.Counter("cluster.imports"); got != 1 {
		t.Errorf("cluster.imports = %d, want 1", got)
	}
	if got := reg.Counter("cluster.member.join"); got < 3 {
		t.Errorf("cluster.member.join = %d, want >= 3", got)
	}
	if got := reg.Gauge("cluster.members"); got != 3 {
		t.Errorf("cluster.members gauge = %v, want 3", got)
	}
}

func TestClusterReplicationPlacement(t *testing.T) {
	src, _, _ := newSource(t, 2000)
	l, s := startCluster(t, src, 3, 2)
	v, err := s.View()
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	place := cluster.NewPlacement(v)
	// Every region of every object must live on exactly R distinct members.
	for _, o := range src.Meta().Objects() {
		for i := range o.Regions {
			owners := place.OwnerIDs(o.ID, i)
			if len(owners) != 2 {
				t.Fatalf("object %d region %d: %d owners, want 2", o.ID, i, len(owners))
			}
			for _, id := range owners {
				m := l.Member(id)
				if m == nil {
					t.Fatalf("object %d region %d: owner %d not running", o.ID, i, id)
				}
				rm := &o.Regions[i]
				if rm.ExtentKey != "" && !m.Store().Exists(rm.ExtentKey) {
					t.Fatalf("member %d missing replica extent %s", id, rm.ExtentKey)
				}
			}
		}
	}
}

func TestClusterFailover(t *testing.T) {
	src, queries, truths := newSource(t, 4000)
	l, s := startCluster(t, src, 3, 2)
	runCorpus(t, s, queries, truths)

	// Kill one member without a goodbye. The catalog learns through the
	// broken control connection, promotes replicas, and the session
	// retries onto the two-member view — answers stay byte-identical.
	victim := l.MemberIDs()[0]
	if err := l.Crash(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := l.WaitMembers(2, 5*time.Second); err != nil {
		t.Fatalf("wait after crash: %v", err)
	}
	runCorpus(t, s, queries, truths)

	reg := l.Catalog().Metrics()
	if got := reg.Counter("cluster.member.down"); got != 1 {
		t.Errorf("cluster.member.down = %d, want 1", got)
	}
	v, err := s.View()
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	if len(v.Members) != 2 {
		t.Fatalf("view has %d members after failover, want 2", len(v.Members))
	}
	if _, ok := v.Member(victim); ok {
		t.Fatalf("crashed member %d still in view", victim)
	}
}

func TestClusterJoinTransfersAndEpochRetry(t *testing.T) {
	src, queries, truths := newSource(t, 4000)
	l, s := startCluster(t, src, 3, 2)
	// Warm the session at the three-member epoch so the post-join corpus
	// run exercises the epoch-mismatch refresh path.
	runCorpus(t, s, queries[:1], truths[:1])

	m, err := l.AddMember()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if err := l.WaitMembers(4, 5*time.Second); err != nil {
		t.Fatalf("wait after join: %v", err)
	}
	// The joiner must have pulled every extent the new placement assigns
	// it before the commit — Verify would report the first hole.
	s.Invalidate()
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify after join: %v", err)
	}
	if m.View().Epoch < 2 {
		t.Fatalf("joiner at epoch %d, want >= 2", m.View().Epoch)
	}
	runCorpus(t, s, queries, truths)

	// The joiner's server must have recorded inbound transfers unless
	// placement assigned it nothing (practically impossible at 4 members).
	if got := m.Server().Metrics().Counter("cluster.transfers"); got == 0 {
		t.Errorf("joiner recorded no transfers")
	}
}

func TestClusterDrain(t *testing.T) {
	src, queries, truths := newSource(t, 4000)
	l, s := startCluster(t, src, 3, 2)
	runCorpus(t, s, queries[:1], truths[:1])

	victim := l.MemberIDs()[1]
	if err := l.Drain(victim, 5*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := l.WaitMembers(2, 5*time.Second); err != nil {
		t.Fatalf("wait after drain: %v", err)
	}
	// Survivors must hold everything the two-member placement assigns
	// them (the drain's rebalance moved the victim's sole copies off).
	s.Invalidate()
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify after drain: %v", err)
	}
	runCorpus(t, s, queries, truths)

	reg := l.Catalog().Metrics()
	if got := reg.Counter("cluster.drains"); got != 1 {
		t.Errorf("cluster.drains = %d, want 1", got)
	}
}

func TestClusterCrashThenJoin(t *testing.T) {
	src, queries, truths := newSource(t, 4000)
	l, s := startCluster(t, src, 3, 2)
	runCorpus(t, s, queries[:1], truths[:1])

	if err := l.Crash(l.MemberIDs()[0]); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := l.WaitMembers(2, 5*time.Second); err != nil {
		t.Fatalf("wait after crash: %v", err)
	}
	if _, err := l.AddMember(); err != nil {
		t.Fatalf("replacement join: %v", err)
	}
	if err := l.WaitMembers(3, 5*time.Second); err != nil {
		t.Fatalf("wait after replacement: %v", err)
	}
	s.Invalidate()
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify after replacement: %v", err)
	}
	runCorpus(t, s, queries, truths)
}

func TestClusterTagQuery(t *testing.T) {
	src, _, _ := newSource(t, 2000)
	// Tag every object before the import so the tags travel in the
	// metadata snapshot to every member.
	all := src.Meta().Objects()
	if len(all) == 0 {
		t.Fatal("no objects")
	}
	for _, o := range all {
		if err := src.Meta().AddTag(o.ID, "kind", "vpic"); err != nil {
			t.Fatalf("tag %d: %v", o.ID, err)
		}
	}
	_, s := startCluster(t, src, 3, 2)
	// Every member holds the full metadata snapshot; the TagOwner seam
	// must keep the cluster-wide union exact — no duplicates from the
	// R-way replication, no holes.
	ids, err := s.QueryTag([]metadata.TagCond{{Key: "kind", Value: "vpic"}})
	if err != nil {
		t.Fatalf("tag query: %v", err)
	}
	seen := make(map[object.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate object %d in cluster tag query", id)
		}
		seen[id] = true
	}
	if len(ids) != len(all) {
		t.Fatalf("tag query returned %d objects, want %d", len(ids), len(all))
	}
}
