package cluster_test

import (
	"bytes"
	"strings"
	"testing"

	"pdcquery/internal/object"
	"pdcquery/internal/plan"
	"pdcquery/internal/qlang"
	"pdcquery/internal/query"
)

// lowerAgainst resolves a statement against the source deployment's
// metadata (names and IDs survive the import unchanged).
func lowerAgainst(t *testing.T, resolve func(string) (*object.Object, bool), text string) *query.Query {
	t.Helper()
	parsed, err := qlang.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	low, err := parsed.Lower(func(name string) (object.ID, bool) {
		o, ok := resolve(name)
		if !ok {
			return 0, false
		}
		return o.ID, true
	})
	if err != nil {
		t.Fatalf("lower %q: %v", text, err)
	}
	return low.Query
}

// TestClusterTextQuery runs text statements through the cluster session
// (catalog view, epoch-stamped broadcast, placement routing) and checks
// every forcing against the single-deployment oracle.
func TestClusterTextQuery(t *testing.T) {
	src, _, _ := newSource(t, 4000)
	_, s := startCluster(t, src, 3, 2)

	corpus := []string{
		"select ids where Energy > 2",
		"select ids where Energy between 1 and 2.5",
		"select ids where Energy > 2 and x < 100",
	}
	for _, text := range corpus {
		q := lowerAgainst(t, src.Meta().GetByName, text)
		want, err := src.GroundTruth(q)
		if err != nil {
			t.Fatalf("truth %q: %v", text, err)
		}
		for _, force := range []plan.Force{plan.ForceAuto, plan.ForceScan, plan.ForceBitmap} {
			out, err := s.RunText(text, force)
			if err != nil {
				t.Fatalf("%q force=%v: %v", text, force, err)
			}
			if !bytes.Equal(out.Sel.Encode(), want.Encode()) {
				t.Errorf("%q force=%v: cluster answer differs from oracle (%d vs %d hits)",
					text, force, out.Sel.NHits, want.NHits)
			}
		}
	}

	// EXPLAIN renders from the session client's catalog-restored
	// metadata without touching the members.
	res, err := s.RunText("explain select count where Energy > 2", plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel != nil || !strings.Contains(res.Explain, "conjunct 0:") {
		t.Errorf("cluster EXPLAIN output:\n%s", res.Explain)
	}
}
