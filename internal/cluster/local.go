package cluster

import (
	"fmt"
	"sync"
	"time"

	"pdcquery/internal/exec"
	"pdcquery/internal/simio"
	"pdcquery/internal/telemetry"
)

// LocalOptions configures an in-process cluster.
type LocalOptions struct {
	// Members is the initial member count (≥1).
	Members int
	// R is the replication factor (default 2).
	R int
	// Seed parameterizes placement.
	Seed uint64
	// Strategy, Workers, CacheBytes configure each member's server.
	Strategy   exec.Strategy
	Workers    int
	CacheBytes int64
	// Model overrides the storage cost model for members.
	Model *simio.Model
}

// Local is a whole cluster in one process: a catalog and N members over
// pipe transport. It is the deterministic harness behind the cluster
// tests, the chaos mode, and the scale-out bench — same placement, same
// protocol, same failover paths as the process deployment, no sockets.
type Local struct {
	opts    LocalOptions
	net     *LocalNetwork
	catalog *Catalog
	catLis  Listener
	catAddr string

	wg sync.WaitGroup

	mu      sync.Mutex
	members map[MemberID]*Member
}

// StartLocal boots a catalog and the initial members, waiting until the
// committed view includes them all.
func StartLocal(opts LocalOptions) (*Local, error) {
	if opts.Members < 1 {
		opts.Members = 1
	}
	if opts.R <= 0 {
		opts.R = 2
	}
	l := &Local{
		opts:    opts,
		net:     NewLocalNetwork(),
		members: make(map[MemberID]*Member),
	}
	l.catalog = NewCatalog(CatalogConfig{Seed: opts.Seed, R: opts.R})
	lis, err := l.net.Listen("catalog")
	if err != nil {
		return nil, err
	}
	l.catLis = lis
	l.catAddr = lis.Addr()
	l.wg.Add(1)
	go l.acceptCatalog()
	for i := 0; i < opts.Members; i++ {
		if _, err := l.AddMember(); err != nil {
			l.Close()
			return nil, err
		}
	}
	if err := l.WaitMembers(opts.Members, 5*time.Second); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

func (l *Local) acceptCatalog() {
	defer l.wg.Done()
	for {
		conn, err := l.catLis.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.catalog.ServeConn(conn)
		}()
	}
}

// Catalog exposes the catalog (tests drive heartbeat expiry and inspect
// metrics through it).
func (l *Local) Catalog() *Catalog { return l.catalog }

// CatalogAddr returns the catalog endpoint on the local network.
func (l *Local) CatalogAddr() string { return l.catAddr }

// Net returns the in-process network fabric.
func (l *Local) Net() *LocalNetwork { return l.net }

// AddMember starts one more member (a join: the catalog rebalances and
// the joiner pulls its regions from current owners).
func (l *Local) AddMember() (*Member, error) {
	m, err := StartMember(MemberOptions{
		Net:         l.net,
		CatalogAddr: l.catAddr,
		Strategy:    l.opts.Strategy,
		Workers:     l.opts.Workers,
		CacheBytes:  l.opts.CacheBytes,
		Model:       l.opts.Model,
	})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.members[m.ID()] = m
	l.mu.Unlock()
	return m, nil
}

// Member returns a running member by ID (nil if unknown or crashed).
func (l *Local) Member(id MemberID) *Member {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.members[id]
}

// MemberIDs lists the running members in ID order.
func (l *Local) MemberIDs() []MemberID {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]MemberID, 0, len(l.members))
	for id := range l.members {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// Crash SIGKILLs a member, in-proc style: all its connections drop and
// the catalog finds out through broken pipes, not a goodbye.
func (l *Local) Crash(id MemberID) error {
	l.mu.Lock()
	m := l.members[id]
	delete(l.members, id)
	l.mu.Unlock()
	if m == nil {
		return fmt.Errorf("cluster: no member %d", id)
	}
	m.Crash()
	return nil
}

// Drain gracefully removes a member through the catalog and waits for
// it to exit.
func (l *Local) Drain(id MemberID, timeout time.Duration) error {
	l.mu.Lock()
	m := l.members[id]
	l.mu.Unlock()
	if m == nil {
		return fmt.Errorf("cluster: no member %d", id)
	}
	s, err := DialSession(SessionOptions{Net: l.net, CatalogAddr: l.catAddr})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Drain(id); err != nil {
		return err
	}
	if !waitDone(m.Done(), timeout) {
		return fmt.Errorf("cluster: member %d did not exit after drain", id)
	}
	l.mu.Lock()
	delete(l.members, id)
	l.mu.Unlock()
	return nil
}

// waitPoll is the polling interval of the Local harness's wait loops,
// paced through the telemetry sleep seam (the nondeterminism contract
// keeps raw timers out of production packages).
const waitPoll = 200 * time.Microsecond

func waitDone(done <-chan struct{}, timeout time.Duration) bool {
	for waited := time.Duration(0); ; waited += waitPoll {
		select {
		case <-done:
			return true
		default:
		}
		if waited >= timeout {
			return false
		}
		telemetry.WallSleep.Sleep(waitPoll)
	}
}

// WaitMembers blocks until the committed view has n members (the
// rebalance protocol runs in member/catalog goroutines, so even the
// in-proc cluster has genuinely asynchronous commits).
func (l *Local) WaitMembers(n int, timeout time.Duration) error {
	for waited := time.Duration(0); ; waited += waitPoll {
		v := l.catalog.CommittedView()
		if len(v.Members) == n {
			return nil
		}
		if waited >= timeout {
			return fmt.Errorf("cluster: %d members in view after %v, want %d", len(v.Members), timeout, n)
		}
		telemetry.WallSleep.Sleep(waitPoll)
	}
}

// Session opens a catalog-aware client session on the local cluster.
func (l *Local) Session() (*Session, error) {
	return DialSession(SessionOptions{Net: l.net, CatalogAddr: l.catAddr})
}

// Close tears the whole cluster down.
func (l *Local) Close() {
	l.catalog.Close()
	_ = l.catLis.Close()
	l.mu.Lock()
	members := make([]*Member, 0, len(l.members))
	for _, m := range l.members {
		members = append(members, m)
	}
	l.members = make(map[MemberID]*Member)
	l.mu.Unlock()
	for _, m := range members {
		m.Crash()
	}
}
