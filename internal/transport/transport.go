// Package transport is the message layer between PDC clients and servers:
// typed, request-correlated frames over either in-process channel pairs
// (the default deployment, one goroutine per server) or TCP (the
// cmd/pdc-server daemon).
//
// The paper's client library serializes query conditions and broadcasts
// them to all servers, then aggregates responses asynchronously (§III-C);
// this package provides the duplex connections those flows run on, plus
// the modeled wire cost used for virtual-time accounting.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Message is one frame: an application-defined type, a request
// correlation ID, and an opaque payload. Trace carries the telemetry
// TraceID of the query the frame belongs to (zero when untraced); it
// rides in the frame header so servers can correlate spans without
// re-parsing payloads. Deadline is the request's virtual-time budget in
// nanoseconds (zero = none); it also rides in the header so the server's
// scheduler can enforce it without decoding the payload.
type Message struct {
	Type     byte
	ReqID    uint64
	Trace    uint64
	Deadline uint64
	Payload  []byte
}

// Conn is a duplex message connection. Send and Recv may be used
// concurrently with each other; concurrent Sends are serialized.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// Wire cost model: a Cray-Aries-class interconnect.
const (
	// DefaultLatency is the per-message one-way latency.
	DefaultLatency = 5 * time.Microsecond
	// DefaultBW is the link bandwidth in bytes/second.
	DefaultBW = 10e9
)

// WireCost returns the modeled time to move one message of n payload
// bytes between client and server at the default parameters.
func WireCost(n int) time.Duration {
	return WireCostWith(DefaultLatency, DefaultBW, n)
}

// WireCostWith models a message of n bytes under explicit parameters
// (scaled deployments shrink the latency along with their storage
// latencies; see internal/bench).
func WireCostWith(latency time.Duration, bw float64, n int) time.Duration {
	d := latency
	if bw > 0 {
		d += time.Duration(float64(n) / bw * 1e9)
	}
	return d
}

// --- in-process transport --------------------------------------------------

type pipeConn struct {
	send      chan<- Message
	recv      <-chan Message
	closeOnce sync.Once
	closed    chan struct{}
	peer      *pipeConn
}

// Pipe returns two connected in-process endpoints. Messages sent on one
// side are received on the other, in order.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	a := &pipeConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &pipeConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *pipeConn) Send(m Message) error {
	// Check for closure first: the select below chooses randomly among
	// ready cases, and a buffered send could otherwise win over a
	// closed-channel case.
	select {
	case <-c.closed:
		return fmt.Errorf("transport: send on closed connection")
	case <-c.peer.closed:
		return fmt.Errorf("transport: peer closed")
	default:
	}
	select {
	case <-c.closed:
		return fmt.Errorf("transport: send on closed connection")
	case <-c.peer.closed:
		return fmt.Errorf("transport: peer closed")
	case c.send <- m:
		return nil
	}
}

func (c *pipeConn) Recv() (Message, error) {
	select {
	case <-c.closed:
		return Message{}, io.EOF
	case m := <-c.recv:
		return m, nil
	case <-c.peer.closed:
		// Drain any messages the peer sent before closing.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// --- TCP transport -----------------------------------------------------------

// maxFrame guards against corrupt length prefixes. It is a variable only
// so framing tests can exercise the oversized-frame path without
// gigabyte scripts.
var maxFrame = 1 << 30

// FrameError reports a malformed but well-delimited frame: the header
// parsed, so the payload boundary is known and the stream stays in sync,
// but the frame itself is unusable. Servers reply with an error frame
// and keep the session alive instead of tearing it down.
type FrameError struct {
	Type   byte
	ReqID  uint64
	Trace  uint64
	Reason string
}

func (e *FrameError) Error() string { return "transport: " + e.Reason }

// TornFrameError reports a connection that died in the middle of a
// frame: some bytes of the header or payload arrived and then the stream
// ended. Unlike a clean EOF between frames, a torn frame means the peer
// (or the network) failed mid-message, so readers surface it as a typed,
// deterministic error — never a clean close, a hang, or a partial-read
// loop. It unwraps to io.ErrUnexpectedEOF so existing truncation checks
// keep matching.
type TornFrameError struct {
	// Stage is the part of the frame that was cut: "header" or "payload".
	Stage string
	// Got and Want count the bytes received vs. expected for that stage.
	Got, Want int
}

func (e *TornFrameError) Error() string {
	return fmt.Sprintf("transport: connection cut mid-frame (%s: %d of %d bytes)", e.Stage, e.Got, e.Want)
}

func (e *TornFrameError) Unwrap() error { return io.ErrUnexpectedEOF }

type tcpConn struct {
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	mu  sync.Mutex // serializes Send
	buf []byte     // reused frame buffer, guarded by mu
}

// frame layout: u32 payload length | u8 type | u64 reqID | u64 trace |
// u64 deadline | payload.
const frameHeader = 4 + 1 + 8 + 8 + 8

// AppendFrame appends the wire encoding of m — the fixed header followed
// by the payload — to dst and returns it. It grows dst at most once, so
// a connection that reuses its frame buffer encodes without allocating
// after the buffer warms to its peak message size.
func AppendFrame(dst []byte, m Message) []byte {
	if need := frameHeader + len(m.Payload); cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(m.Payload)))
	hdr[4] = m.Type
	binary.LittleEndian.PutUint64(hdr[5:13], m.ReqID)
	binary.LittleEndian.PutUint64(hdr[13:21], m.Trace)
	binary.LittleEndian.PutUint64(hdr[21:29], m.Deadline)
	dst = append(dst, hdr[:]...)
	return append(dst, m.Payload...)
}

func (c *tcpConn) Send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = AppendFrame(c.buf[:0], m)
	if _, err := c.bw.Write(c.buf); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (Message, error) {
	var hdr [frameHeader]byte
	if n, err := io.ReadFull(c.br, hdr[:]); err != nil {
		// A clean close lands exactly between frames (zero header bytes,
		// io.EOF). Any other cut is a torn frame and must be typed: an EOF
		// after a partial header would otherwise read as a graceful close
		// with a request silently in flight.
		if n > 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			return Message{}, &TornFrameError{Stage: "header", Got: n, Want: frameHeader}
		}
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	m := Message{
		Type:     hdr[4],
		ReqID:    binary.LittleEndian.Uint64(hdr[5:13]),
		Trace:    binary.LittleEndian.Uint64(hdr[13:21]),
		Deadline: binary.LittleEndian.Uint64(hdr[21:29]),
	}
	if int64(n) > int64(maxFrame) {
		// The frame is well-delimited (the peer is sending n payload
		// bytes) but too large to accept. Discard the payload to keep
		// the stream in sync and report a FrameError carrying the header
		// fields, so the server can answer this request with an error
		// frame and keep the session alive.
		if d, err := io.CopyN(io.Discard, c.br, int64(n)); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Message{}, &TornFrameError{Stage: "payload", Got: int(d), Want: int(n)}
			}
			return Message{}, err
		}
		return Message{}, &FrameError{
			Type: m.Type, ReqID: m.ReqID, Trace: m.Trace,
			Reason: fmt.Sprintf("frame of %d bytes exceeds limit", n),
		}
	}
	if n > 0 {
		m.Payload = make([]byte, n)
		if got, err := io.ReadFull(c.br, m.Payload); err != nil {
			// The header promised n payload bytes; any EOF before they all
			// arrive — including at exactly the header/payload boundary,
			// where ReadFull reports a clean io.EOF — is a torn frame.
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Message{}, &TornFrameError{Stage: "payload", Got: got, Want: int(n)}
			}
			return Message{}, err
		}
	}
	return m, nil
}

func (c *tcpConn) Close() error { return c.c.Close() }

func wrapTCP(nc net.Conn) Conn {
	return &tcpConn{c: nc, br: bufio.NewReaderSize(nc, 1<<16), bw: bufio.NewWriterSize(nc, 1<<16)}
}

// NewNetConn wraps an established net.Conn in the framed message
// protocol used by the TCP transport. It lets callers (and failure-path
// tests) supply their own connection — e.g. one with injected faults —
// instead of going through Listen/Dial.
func NewNetConn(nc net.Conn) Conn { return wrapTCP(nc) }

// Listener accepts message connections over TCP.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return wrapTCP(nc), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Dial connects to a Listener.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return wrapTCP(nc), nil
}
