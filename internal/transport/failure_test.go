package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// scriptConn is a net.Conn whose reads come from a fixed byte script and
// whose writes can be made to fail after a budget of accepted bytes. It
// lets the failure tests drive the framed transport without goroutines
// or real sockets.
type scriptConn struct {
	r          *bytes.Reader
	wrote      bytes.Buffer
	writeQuota int // bytes accepted before writes fail; -1 means unlimited
	writeErr   error
	closed     bool
}

func newScriptConn(read []byte) *scriptConn {
	return &scriptConn{r: bytes.NewReader(read), writeQuota: -1}
}

func (c *scriptConn) Read(p []byte) (int, error) { return c.r.Read(p) }

func (c *scriptConn) Write(p []byte) (int, error) {
	if c.writeQuota < 0 {
		return c.wrote.Write(p)
	}
	if len(p) <= c.writeQuota {
		c.writeQuota -= len(p)
		return c.wrote.Write(p)
	}
	n := c.writeQuota
	c.writeQuota = 0
	c.wrote.Write(p[:n])
	if c.writeErr == nil {
		c.writeErr = errors.New("short write")
	}
	return n, c.writeErr
}

func (c *scriptConn) Close() error                     { c.closed = true; return nil }
func (c *scriptConn) LocalAddr() net.Addr              { return nil }
func (c *scriptConn) RemoteAddr() net.Addr             { return nil }
func (c *scriptConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(time.Time) error { return nil }

// frameBytes builds a raw frame with an arbitrary claimed payload length,
// independent of the actual payload bytes appended.
func frameBytes(claimed uint32, typ byte, reqID uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], claimed)
	hdr[4] = typ
	binary.LittleEndian.PutUint64(hdr[5:13], reqID)
	return append(hdr[:], payload...)
}

func TestRecvOversizedFrame(t *testing.T) {
	defer func(old int) { maxFrame = old }(maxFrame)
	maxFrame = 64
	// An oversized frame whose payload really is on the wire, followed by
	// a well-formed frame: Recv must report the first as a FrameError
	// (header fields intact, payload discarded) and stay in sync for the
	// second.
	script := append(frameBytes(100, 1, 7, make([]byte, 100)),
		frameBytes(3, 2, 8, []byte("abc"))...)
	c := NewNetConn(newScriptConn(script))
	_, err := c.Recv()
	var fe *FrameError
	if !errors.As(err, &fe) || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: err = %v, want FrameError with limit text", err)
	}
	if fe.Type != 1 || fe.ReqID != 7 {
		t.Errorf("FrameError header = type %d req %d, want type 1 req 7", fe.Type, fe.ReqID)
	}
	m, err := c.Recv()
	if err != nil || m.ReqID != 8 || string(m.Payload) != "abc" {
		t.Errorf("frame after oversized frame = %+v, %v; want req 8 payload abc", m, err)
	}
}

func TestRecvTruncatedPayload(t *testing.T) {
	// Header promises 64 payload bytes; only 10 arrive before EOF.
	c := NewNetConn(newScriptConn(frameBytes(64, 2, 9, make([]byte, 10))))
	if _, err := c.Recv(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload: err = %v, want unexpected EOF", err)
	}
}

func TestRecvTruncatedHeader(t *testing.T) {
	c := NewNetConn(newScriptConn([]byte{1, 2, 3}))
	if _, err := c.Recv(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: err = %v, want unexpected EOF", err)
	}
	c = NewNetConn(newScriptConn(nil))
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
}

func TestSendShortWrite(t *testing.T) {
	// The connection accepts a handful of bytes, then fails. The payload
	// exceeds the bufio buffer so the failure surfaces during Send's
	// writes, not only at Flush.
	sc := newScriptConn(nil)
	sc.writeQuota = 5
	c := NewNetConn(sc)
	err := c.Send(Message{Type: 1, ReqID: 3, Payload: make([]byte, 1<<17)})
	if err == nil || !strings.Contains(err.Error(), "short write") {
		t.Errorf("Send on failing conn: err = %v, want short write error", err)
	}
	// A small message only fails at Flush; the error must still surface.
	sc2 := newScriptConn(nil)
	sc2.writeQuota = 0
	c2 := NewNetConn(sc2)
	if err := c2.Send(Message{Type: 1}); err == nil {
		t.Error("Send with failing flush returned nil")
	}
}

func TestSendOnClosedTCPConn(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan Conn, 1)
	go func() {
		sc, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- sc
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	defer srv.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Message{Type: 1, Payload: []byte("x")}); err == nil {
		t.Error("Send on closed connection returned nil")
	}
	if _, err := c.Recv(); err == nil {
		t.Error("Recv on closed connection returned nil")
	}
}

// TestRecvCutAtEveryByte sweeps a connection cut at every byte offset of
// an encoded frame. Offset 0 is a clean close between frames (io.EOF);
// any cut strictly inside the frame must surface the typed
// TornFrameError — never a clean EOF, which would make a mid-request
// server death indistinguishable from a graceful shutdown (the client
// would report a closed connection with a request silently in flight),
// and never a hang or partial-read loop. The boundary cut exactly
// between header and payload is the regression pin: io.ReadFull reports
// a clean io.EOF there, which used to leak through untyped.
func TestRecvCutAtEveryByte(t *testing.T) {
	sc := newScriptConn(nil)
	enc := NewNetConn(sc)
	msg := Message{Type: 3, ReqID: 42, Trace: 7, Deadline: 11, Payload: []byte("torn-frame-sweep")}
	if err := enc.Send(msg); err != nil {
		t.Fatal(err)
	}
	frame := sc.wrote.Bytes()
	if len(frame) != frameHeader+len(msg.Payload) {
		t.Fatalf("encoded frame is %d bytes, want %d", len(frame), frameHeader+len(msg.Payload))
	}
	for cut := 0; cut <= len(frame); cut++ {
		c := NewNetConn(newScriptConn(frame[:cut]))
		m, err := c.Recv()
		switch {
		case cut == 0:
			if !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: err = %v, want clean io.EOF", cut, err)
			}
		case cut < len(frame):
			var torn *TornFrameError
			if !errors.As(err, &torn) {
				t.Fatalf("cut %d: err = %v, want TornFrameError", cut, err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: TornFrameError must unwrap to io.ErrUnexpectedEOF", cut)
			}
			wantStage := "payload"
			if cut < frameHeader {
				wantStage = "header"
			}
			if torn.Stage != wantStage || torn.Got >= torn.Want {
				t.Fatalf("cut %d: torn = %+v, want stage %q with Got < Want", cut, torn, wantStage)
			}
		default:
			if err != nil || m.ReqID != 42 || string(m.Payload) != "torn-frame-sweep" {
				t.Fatalf("cut %d (full frame): m = %+v, err = %v", cut, m, err)
			}
		}
	}
}

// TestRecvOversizedFrameTorn: the stream dies while Recv is discarding an
// oversized frame's payload — the cut must be typed, not a clean EOF.
func TestRecvOversizedFrameTorn(t *testing.T) {
	defer func(old int) { maxFrame = old }(maxFrame)
	maxFrame = 8
	// Claims 64 payload bytes, delivers 10, then EOF mid-discard.
	c := NewNetConn(newScriptConn(frameBytes(64, 1, 5, make([]byte, 10))))
	_, err := c.Recv()
	var torn *TornFrameError
	if !errors.As(err, &torn) || torn.Stage != "payload" || torn.Got != 10 || torn.Want != 64 {
		t.Fatalf("oversized torn frame: err = %v, want payload TornFrameError 10/64", err)
	}
}
