package transport

import (
	"encoding/binary"
	"testing"
)

// TestAppendFrameLayout pins the wire layout AppendFrame emits against
// the header constants Recv decodes with.
func TestAppendFrameLayout(t *testing.T) {
	m := Message{Type: 7, ReqID: 42, Trace: 99, Deadline: 1234, Payload: []byte("payload")}
	f := AppendFrame(nil, m)
	if len(f) != frameHeader+len(m.Payload) {
		t.Fatalf("frame length %d, want %d", len(f), frameHeader+len(m.Payload))
	}
	if got := binary.LittleEndian.Uint32(f[0:4]); got != uint32(len(m.Payload)) {
		t.Errorf("payload length field = %d", got)
	}
	if f[4] != m.Type {
		t.Errorf("type field = %d", f[4])
	}
	if got := binary.LittleEndian.Uint64(f[5:13]); got != m.ReqID {
		t.Errorf("reqID field = %d", got)
	}
	if got := binary.LittleEndian.Uint64(f[13:21]); got != m.Trace {
		t.Errorf("trace field = %d", got)
	}
	if got := binary.LittleEndian.Uint64(f[21:29]); got != m.Deadline {
		t.Errorf("deadline field = %d", got)
	}
	if string(f[frameHeader:]) != "payload" {
		t.Errorf("payload bytes = %q", f[frameHeader:])
	}
	// Appending to an existing buffer preserves its prefix.
	withPrefix := AppendFrame([]byte("pre"), m)
	if string(withPrefix[:3]) != "pre" || string(withPrefix[3:]) != string(f) {
		t.Error("AppendFrame clobbered the destination prefix")
	}
}

// TestAppendFrameZeroAlloc pins the send path's encode cost: once the
// frame buffer has warmed to the message size, header + payload encode
// allocates nothing per frame.
func TestAppendFrameZeroAlloc(t *testing.T) {
	m := Message{Type: 3, ReqID: 8, Trace: 5, Deadline: 2, Payload: make([]byte, 512)}
	buf := AppendFrame(nil, m)
	if n := testing.AllocsPerRun(200, func() { buf = AppendFrame(buf[:0], m) }); n != 0 {
		t.Errorf("AppendFrame with warm buffer allocated %.1f/op, want 0", n)
	}
}
