package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func testRoundTrip(t *testing.T, a, b Conn) {
	t.Helper()
	want := Message{Type: 3, ReqID: 42, Trace: 0xDEADBEEF, Deadline: 1500, Payload: []byte("hello")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.ReqID != want.ReqID || got.Trace != want.Trace ||
		got.Deadline != want.Deadline || !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("round trip: %+v != %+v", got, want)
	}
	// And the reverse direction.
	reply := Message{Type: 4, ReqID: 42, Payload: []byte("world")}
	if err := b.Send(reply); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != 4 || string(got.Payload) != "world" {
		t.Errorf("reverse = %+v", got)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b)
}

func TestPipeOrdering(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := a.Send(Message{ReqID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.ReqID != uint64(i) {
			t.Fatalf("out of order: got %d, want %d", m.ReqID, i)
		}
	}
}

func TestPipeClose(t *testing.T) {
	a, b := Pipe()
	a.Send(Message{ReqID: 1})
	a.Close()
	// Message sent before close is still deliverable.
	if m, err := b.Recv(); err != nil || m.ReqID != 1 {
		t.Fatalf("pre-close message lost: %v %v", m, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("Recv after peer close = %v, want EOF", err)
	}
	if err := b.Send(Message{}); err == nil {
		t.Error("Send to closed peer succeeded")
	}
	if err := a.Send(Message{}); err == nil {
		t.Error("Send on closed conn succeeded")
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Error(err)
	}
}

func TestPipeConcurrentSenders(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if err := a.Send(Message{ReqID: uint64(g)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if _, err := b.Recv(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not drain")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		done <- c
	}()
	a, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := <-done
	defer b.Close()
	testRoundTrip(t, a, b)
}

func TestTCPLargePayload(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	a, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := <-accepted
	defer b.Close()

	payload := make([]byte, 3<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		if err := a.Send(Message{Type: 9, ReqID: 7, Payload: payload}); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("large payload corrupted")
	}
}

func TestTCPRecvAfterClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	a, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Error("Recv on closed TCP conn succeeded")
	}
	b.Close()
}

func TestTCPEmptyPayload(t *testing.T) {
	l, _ := Listen("127.0.0.1:0")
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	a, _ := Dial(l.Addr())
	defer a.Close()
	b := <-accepted
	defer b.Close()
	if err := a.Send(Message{Type: 1, ReqID: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != 1 || m.ReqID != 2 || len(m.Payload) != 0 {
		t.Errorf("empty payload frame = %+v", m)
	}
}

func TestWireCost(t *testing.T) {
	small := WireCost(0)
	if small != DefaultLatency {
		t.Errorf("WireCost(0) = %v", small)
	}
	big := WireCost(1 << 30)
	if big < 100*time.Millisecond || big > 200*time.Millisecond {
		t.Errorf("WireCost(1GB) = %v, want ~107ms", big)
	}
	if WireCost(100) <= small {
		t.Error("WireCost not monotone")
	}
}
