package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pdcquery/internal/cluster"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/selection"
	"pdcquery/internal/workload"
)

// ScaleoutRow is one cluster-size measurement of the distributed
// deployment: the full single-object corpus answered through a catalog
// session against P members with R=2 replication.
type ScaleoutRow struct {
	// Members is the serving member count of the cluster.
	Members int `json:"members"`
	// Queries is the corpus size (all rows run the same corpus).
	Queries int `json:"queries"`
	// NHits sums the hits across the corpus (identical for every row —
	// the answers are byte-identical regardless of cluster size).
	NHits uint64 `json:"hits"`
	// TimeNs is the summed modeled elapsed time of the corpus.
	TimeNs int64 `json:"modeled_ns"`
	// Speedup is relative to the single-member row.
	Speedup float64 `json:"speedup"`
}

// ScaleoutMembers are the cluster sizes the scale-out figure sweeps.
var ScaleoutMembers = []int{1, 2, 4, 8}

// ScaleoutRun measures how query time falls as the same dataset is
// spread over more cluster members: for each P it boots an in-process
// cluster (catalog + P members over pipe transport — the same
// placement, protocol, and routing as the multi-process deployment),
// imports the VPIC dataset with R=2 replication, and answers the
// 15-query single-object corpus through an epoch-stamped session.
// More members means fewer regions per member, so the per-member
// modeled time (and with it the corpus total) must fall.
func ScaleoutRun(c Config) ([]ScaleoutRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := RegionSweep(n, 6)[0]
	model := scaledModel(n)

	// The source deployment holds the dataset at the swept region size
	// and doubles as the brute-force oracle.
	src := core.NewDeployment(core.Options{
		Servers: 2, Strategy: exec.Histogram, RegionBytes: rs.Bytes, Model: &model,
	})
	defer src.Close()
	cont := src.CreateContainer("scaleout")
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := src.ImportObject(cont.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			return nil, err
		}
		ids[name] = o.ID
	}
	queries := workload.SingleObjectQueries(ids["Energy"])
	var truths []*selection.Selection
	if c.Verify {
		truths = make([]*selection.Selection, len(queries))
		for i, q := range queries {
			sel, err := src.GroundTruth(q)
			if err != nil {
				return nil, err
			}
			truths[i] = sel
		}
	}

	var rows []ScaleoutRow
	for _, p := range ScaleoutMembers {
		row, err := scaleoutOne(c, p, src, queries, truths)
		if err != nil {
			return nil, fmt.Errorf("scaleout members=%d: %w", p, err)
		}
		rows = append(rows, row)
	}
	for i := range rows {
		rows[i].Speedup = float64(rows[0].TimeNs) / float64(rows[i].TimeNs)
	}
	return rows, nil
}

// scaleoutOne boots a P-member cluster, imports the source, and runs
// the corpus through a catalog session, summing modeled time.
func scaleoutOne(c Config, p int, src *core.Deployment, queries []*query.Query, truths []*selection.Selection) (ScaleoutRow, error) {
	n := 1 << c.LogN
	model := scaledModel(n)
	l, err := cluster.StartLocal(cluster.LocalOptions{
		Members: p, R: 2, Seed: c.Seed,
		Strategy: exec.Histogram, Model: &model,
	})
	if err != nil {
		return ScaleoutRow{}, err
	}
	defer l.Close()
	s, err := l.Session()
	if err != nil {
		return ScaleoutRow{}, err
	}
	defer s.Close()
	if err := s.Import(src); err != nil {
		return ScaleoutRow{}, err
	}
	row := ScaleoutRow{Members: p, Queries: len(queries)}
	var total time.Duration
	for i, q := range queries {
		res, err := s.Run(q)
		if err != nil {
			return ScaleoutRow{}, fmt.Errorf("query %d: %w", i, err)
		}
		if truths != nil && !bytes.Equal(res.Sel.Encode(), truths[i].Encode()) {
			return ScaleoutRow{}, fmt.Errorf("query %d: %d hits, truth %d", i, res.Sel.NHits, truths[i].NHits)
		}
		total += res.Info.Elapsed.Total()
		row.NHits += res.Sel.NHits
	}
	row.TimeNs = int64(total)
	return row, nil
}

// ScaleoutPrint renders the table.
func ScaleoutPrint(w io.Writer, rows []ScaleoutRow) {
	printHeader(w, "Scale-out: distributed cluster, 1→8 members (R=2)")
	if len(rows) > 0 {
		fmt.Fprintf(w, "corpus: %d single-object queries, %d total hits\n", rows[0].Queries, rows[0].NHits)
	}
	fmt.Fprintf(w, "%-10s %11s %9s\n", "members", "modeled", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %s %8.2fx\n", r.Members, secs(time.Duration(r.TimeNs)), r.Speedup)
	}
}

// ScaleoutCSV writes the rows as CSV.
func ScaleoutCSV(w io.Writer, rows []ScaleoutRow) {
	fmt.Fprintln(w, "members,queries,hits,modeled_s,speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%d,%.9f,%.4f\n",
			r.Members, r.Queries, r.NHits, time.Duration(r.TimeNs).Seconds(), r.Speedup)
	}
}

// ScaleoutJSON writes the rows as the BENCH_scaleout.json document.
func ScaleoutJSON(w io.Writer, rows []ScaleoutRow) error {
	doc := struct {
		Figure string        `json:"figure"`
		Rows   []ScaleoutRow `json:"rows"`
	}{Figure: "scaleout", Rows: rows}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
