package bench

import (
	"fmt"
	"io"
	"time"

	"pdcquery/internal/baseline"
	"pdcquery/internal/exec"
	"pdcquery/internal/workload"
)

// Fig4Row is one multi-object query of Fig. 4.
type Fig4Row struct {
	QueryIdx    int
	Label       string
	Selectivity float64
	NHits       uint64
	QueryTime   map[string]time.Duration
	GetDataTime map[string]time.Duration
}

// Fig4Run reproduces Fig. 4: the six (Energy, x, y, z) queries at the
// best region size (the paper's 32 MB equivalent — the 4th step of the
// sweep).
func Fig4Run(c Config) ([]Fig4Row, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := bestRegion(n) // the paper's 32MB-equivalent step
	d, ids, err := deployVPIC(v, c.Servers, rs.Bytes, true, true)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	queries := workload.MultiObjectQueries(ids.Energy, ids.X, ids.Y, ids.Z)
	rows := make([]Fig4Row, len(queries))
	for k := range rows {
		rows[k] = Fig4Row{
			QueryIdx: k, Label: workload.MultiQueryLabel(k),
			QueryTime:   make(map[string]time.Duration),
			GetDataTime: make(map[string]time.Duration),
		}
	}

	hcfg := baseline.DefaultConfig(d.Store().Model(), c.Servers)
	for k, q := range queries {
		res, err := baseline.FullScan(d.Store(), d.Meta().Get, q, hcfg)
		if err != nil {
			return nil, err
		}
		rows[k].QueryTime["HDF5-F"] = baseline.AmortizedElapsed(res.ReadElapsed, res.ScanElapsed, len(queries))
		rows[k].NHits = res.NHits
		rows[k].Selectivity = 100 * float64(res.NHits) / float64(n)
	}

	for _, name := range Approaches[1:] {
		strat := pdcStrategies[name]
		d.SetStrategy(strat)
		d.ResetCaches()
		var times []time.Duration
		for k, q := range queries {
			res, err := d.Client().Run(q)
			if err != nil {
				return nil, err
			}
			if c.Verify {
				truth, err := d.GroundTruth(q)
				if err != nil {
					return nil, err
				}
				if truth.NHits != res.Sel.NHits {
					return nil, fmt.Errorf("fig4 %s q%d: %d hits, truth %d", name, k, res.Sel.NHits, truth.NHits)
				}
			}
			times = append(times, res.Info.Elapsed.Total())
			if res.Sel.NHits > 0 {
				_, dinfo, err := res.GetData(ids.Energy)
				if err != nil {
					return nil, err
				}
				rows[k].GetDataTime[name] = dinfo.Elapsed.Total()
			}
		}
		if strat == exec.FullScan {
			var total time.Duration
			for _, t := range times {
				total += t
			}
			avg := total / time.Duration(len(times))
			for k := range rows {
				rows[k].QueryTime[name] = avg
			}
		} else {
			for k := range rows {
				rows[k].QueryTime[name] = times[k]
			}
		}
	}
	return rows, nil
}

// Fig4Print renders the table.
func Fig4Print(w io.Writer, rows []Fig4Row) {
	printHeader(w, "Fig. 4: multi-object (Energy,x,y,z) queries — 32MB-equivalent regions")
	fmt.Fprintf(w, "%-40s %10s %8s", "query", "sel%", "nhits")
	for _, a := range Approaches {
		fmt.Fprintf(w, " %10s", a)
	}
	for _, a := range Approaches[1:] {
		fmt.Fprintf(w, " %10s", a+"+gd")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-40s %10.4f %8d", r.Label, r.Selectivity, r.NHits)
		for _, a := range Approaches {
			fmt.Fprintf(w, " %s", secs(r.QueryTime[a]))
		}
		for _, a := range Approaches[1:] {
			fmt.Fprintf(w, " %s", secs(r.QueryTime[a]+r.GetDataTime[a]))
		}
		fmt.Fprintln(w)
	}
}

// Fig4 runs and prints the experiment.
func Fig4(w io.Writer, c Config) error {
	rows, err := Fig4Run(c)
	if err != nil {
		return err
	}
	Fig4Print(w, rows)
	return nil
}
