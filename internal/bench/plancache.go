package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/plan"
	"pdcquery/internal/workload"
)

// PlanCacheRow is one round of the prepared-plan cache experiment: the
// text corpus answered once, with the fleet's cumulative plan-cache
// counters after the round.
type PlanCacheRow struct {
	// Round is the repetition index (0 = cold cache).
	Round int `json:"round"`
	// Queries is the corpus size.
	Queries int `json:"queries"`
	// NHits sums the hits across the corpus (identical every round).
	NHits uint64 `json:"hits"`
	// TimeNs is the summed modeled elapsed time of the round.
	TimeNs int64 `json:"modeled_ns"`
	// CacheHits/CacheMisses are the fleet's cumulative plan-cache
	// counters after the round.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Speedup is relative to the cold round.
	Speedup float64 `json:"speedup"`
}

// planCacheRounds is how many times the corpus is replayed (round 0
// builds every plan; later rounds ride the LRU).
const planCacheRounds = 3

// planCacheCorpus is the text-statement corpus: every projection and a
// mix of single- and multi-object shapes, so each statement exercises
// the parser, the planner, and the cache key normalization.
var planCacheCorpus = []string{
	"select count where Energy > 2",
	"select count where Energy between 1 and 2.5",
	"select ids where Energy > 2 and x < 100",
	"select ids where Energy < 0.5 or Energy > 3",
	"select count where 2 < Energy and Energy <= 3.5",
	"select hist(x, 32) where Energy > 1.5",
}

// PlanCacheRun measures the prepared-plan cache: the same declarative
// corpus replayed over one deployment. The first round pays the full
// parse+plan cost at every server; repeats hit the LRU and pay one
// lookup. Modeled time is virtual-clock, so the rows are deterministic.
func PlanCacheRun(c Config) ([]PlanCacheRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := RegionSweep(n, 6)[0]
	model := scaledModel(n)

	d := core.NewDeployment(core.Options{
		Servers: 4, Strategy: exec.Histogram, RegionBytes: rs.Bytes,
		BuildIndex: true, Model: &model,
	})
	defer d.Close()
	cont := d.CreateContainer("plancache")
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(cont.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			return nil, err
		}
		ids[name] = o.ID
	}
	if err := d.BuildSortedReplica(ids["Energy"]); err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		return nil, err
	}

	var rows []PlanCacheRow
	for round := 0; round < planCacheRounds; round++ {
		row := PlanCacheRow{Round: round, Queries: len(planCacheCorpus)}
		var total time.Duration
		for i, text := range planCacheCorpus {
			res, err := d.Client().RunText(text, plan.ForceAuto)
			if err != nil {
				return nil, fmt.Errorf("round %d query %d: %w", round, i, err)
			}
			total += res.Info.Elapsed.Total()
			row.NHits += res.Sel.NHits
		}
		row.TimeNs = int64(total)
		for _, s := range d.Servers() {
			h, m := s.PlanCacheStats()
			row.CacheHits += h
			row.CacheMisses += m
		}
		rows = append(rows, row)
	}
	for i := range rows {
		rows[i].Speedup = float64(rows[0].TimeNs) / float64(rows[i].TimeNs)
	}
	return rows, nil
}

// PlanCachePrint renders the table.
func PlanCachePrint(w io.Writer, rows []PlanCacheRow) {
	printHeader(w, "Plan cache: declarative corpus replayed, cold vs warm")
	if len(rows) > 0 {
		fmt.Fprintf(w, "corpus: %d statements, %d total hits per round\n", rows[0].Queries, rows[0].NHits)
	}
	fmt.Fprintf(w, "%-8s %11s %9s %12s %12s\n", "round", "modeled", "speedup", "cache hits", "misses")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %s %8.3fx %12d %12d\n",
			r.Round, secs(time.Duration(r.TimeNs)), r.Speedup, r.CacheHits, r.CacheMisses)
	}
}

// PlanCacheCSV writes the rows as CSV.
func PlanCacheCSV(w io.Writer, rows []PlanCacheRow) {
	fmt.Fprintln(w, "round,queries,hits,modeled_s,speedup,cache_hits,cache_misses")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%d,%.9f,%.4f,%d,%d\n",
			r.Round, r.Queries, r.NHits, time.Duration(r.TimeNs).Seconds(), r.Speedup, r.CacheHits, r.CacheMisses)
	}
}

// PlanCacheJSON writes the rows as the BENCH_plancache.json document.
func PlanCacheJSON(w io.Writer, rows []PlanCacheRow) error {
	doc := struct {
		Figure string         `json:"figure"`
		Rows   []PlanCacheRow `json:"rows"`
	}{Figure: "plancache", Rows: rows}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
