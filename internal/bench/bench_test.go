package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testConfig is a scaled-down configuration that keeps every experiment
// path exercised (and verified against ground truth) while staying fast.
func testConfig() Config {
	return Config{
		LogN:        19,
		Servers:     4,
		Seed:        42,
		Verify:      true,
		BOSSObjects: 3000,
		FluxLen:     100,
		RegionSteps: 3,
		Fig6Servers: []int{4, 8, 16},
	}
}

func TestRegionSweep(t *testing.T) {
	sweep := RegionSweep(1<<22, 6)
	if len(sweep) != 6 {
		t.Fatalf("sweep steps = %d", len(sweep))
	}
	if sweep[0].PaperLabel != "4MB" || sweep[5].PaperLabel != "128MB" {
		t.Errorf("labels = %s..%s", sweep[0].PaperLabel, sweep[5].PaperLabel)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Bytes != 2*sweep[i-1].Bytes {
			t.Errorf("sweep not doubling: %v", sweep)
		}
	}
	// Tiny datasets clamp to the floor and merge duplicated sizes into
	// one labeled step.
	small := RegionSweep(1<<12, 6)
	if len(small) != 1 {
		t.Errorf("tiny sweep = %v, want one merged step", small)
	}
	if small[0].PaperLabel != "4-128MB" {
		t.Errorf("merged label = %q", small[0].PaperLabel)
	}
	// At 2^20 the first three steps hit the 16KB floor: 4 distinct sizes.
	if got := RegionSweep(1<<20, 0); len(got) != 4 {
		t.Errorf("default steps = %d (%v)", len(got), got)
	}
}

func TestDefaultConfigEnv(t *testing.T) {
	t.Setenv("PDCQ_LOGN", "18")
	t.Setenv("PDCQ_SERVERS", "16")
	c := DefaultConfig()
	if c.LogN != 18 || c.Servers != 16 {
		t.Errorf("env config = %+v", c)
	}
	t.Setenv("PDCQ_LOGN", "bogus")
	t.Setenv("PDCQ_SERVERS", "-2")
	c = DefaultConfig()
	if c.LogN != 20 || c.Servers != 64 {
		t.Errorf("bad env not ignored: %+v", c)
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testConfig()
	rows, err := Fig3Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)%15 != 0 || len(rows) == 0 {
		t.Fatalf("rows = %d, want a positive multiple of 15", len(rows))
	}
	for _, r := range rows {
		for _, a := range Approaches {
			if r.QueryTime[a] <= 0 {
				t.Fatalf("%s %s: no time for %s", r.Region.PaperLabel, r.Label, a)
			}
		}
		// Selectivity decreases along the window index (allowing ties at
		// the sparse tail).
		if r.QueryIdx == 0 && (r.Selectivity < 0.5 || r.Selectivity > 3) {
			t.Errorf("first window selectivity %.4f%%, paper ~1.30%%", r.Selectivity)
		}
	}
	// The paper's §VI-A claims. Cold-start times isolate the strategies'
	// storage behaviour (at paper scale the caches never hold the whole
	// dataset, so the paper's curves reflect this ordering); warm times
	// show the §VI-A caching effect for the sequential batch.
	for _, r := range rows {
		// Warm, after the first query: every optimized strategy beats the
		// amortized full scans.
		if r.QueryIdx >= 1 && r.QueryIdx <= 6 {
			if 2*r.QueryTime["PDC-H"] > r.QueryTime["PDC-F"] {
				t.Errorf("%s %s: warm PDC-H (%v) not 2x faster than PDC-F (%v)",
					r.Region.PaperLabel, r.Label, r.QueryTime["PDC-H"], r.QueryTime["PDC-F"])
			}
			if r.QueryTime["PDC-SH"] > r.QueryTime["PDC-F"] {
				t.Errorf("%s %s: warm PDC-SH (%v) slower than PDC-F (%v)",
					r.Region.PaperLabel, r.Label, r.QueryTime["PDC-SH"], r.QueryTime["PDC-F"])
			}
		}
		// PDC-F roughly 2x faster than HDF5-F (both amortized).
		if r.QueryTime["PDC-F"] > r.QueryTime["HDF5-F"] {
			t.Errorf("%s %s: PDC-F (%v) slower than HDF5-F (%v)",
				r.Region.PaperLabel, r.Label, r.QueryTime["PDC-F"], r.QueryTime["HDF5-F"])
		}
		// Cold: the paper's strategy ordering on the selective windows.
		if r.QueryIdx >= 2 && r.QueryIdx <= 8 {
			if r.ColdTime["PDC-SH"] > r.ColdTime["PDC-H"] {
				t.Errorf("%s %s: cold PDC-SH (%v) slower than PDC-H (%v)",
					r.Region.PaperLabel, r.Label, r.ColdTime["PDC-SH"], r.ColdTime["PDC-H"])
			}
			if r.ColdTime["PDC-HI"] > r.ColdTime["PDC-H"] {
				t.Errorf("%s %s: cold PDC-HI (%v) slower than PDC-H (%v)",
					r.Region.PaperLabel, r.Label, r.ColdTime["PDC-HI"], r.ColdTime["PDC-H"])
			}
			if r.ColdTime["PDC-H"] > r.ColdTime["HDF5-F"] {
				t.Errorf("%s %s: cold PDC-H (%v) slower than a full HDF5 scan (%v)",
					r.Region.PaperLabel, r.Label, r.ColdTime["PDC-H"], r.ColdTime["HDF5-F"])
			}
		}
	}
	// PDC-HI reads the index, not the data: fetching the actual values
	// afterwards costs more than for the caching strategies (paper: "the
	// total time to get query results and the data may be similar or even
	// longer").
	first := rows[0]
	if first.GetDataTime["PDC-HI"] < first.GetDataTime["PDC-H"] {
		t.Errorf("PDC-HI get-data (%v) unexpectedly faster than PDC-H (%v)",
			first.GetDataTime["PDC-HI"], first.GetDataTime["PDC-H"])
	}
	// Printing produces one table per distinct region size.
	var buf bytes.Buffer
	Fig3Print(&buf, rows)
	if got := strings.Count(buf.String(), "Fig. 3"); got != len(rows)/15 {
		t.Errorf("printed %d tables, want %d", got, len(rows)/15)
	}
	buf.Reset()
	Fig3Speedups(&buf, rows)
	if !strings.Contains(buf.String(), "speedups over HDF5-F") || !strings.Contains(buf.String(), "x") {
		t.Errorf("speedup summary missing: %q", buf.String())
	}
	buf.Reset()
	Fig3CSV(&buf, rows)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Errorf("CSV lines = %d, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "region,paper_region,query") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testConfig()
	rows, err := Fig4Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for k, r := range rows {
		for _, a := range Approaches {
			if r.QueryTime[a] <= 0 {
				t.Fatalf("query %d: no time for %s", k, a)
			}
		}
		// Every optimized approach beats the full scans.
		if r.QueryTime["PDC-H"] > r.QueryTime["PDC-F"] {
			t.Errorf("query %d: PDC-H slower than PDC-F", k)
		}
		if r.QueryTime["PDC-HI"] > r.QueryTime["HDF5-F"] {
			t.Errorf("query %d: PDC-HI slower than HDF5-F", k)
		}
	}
	// First query: highly selective on Energy. At paper scale the hits
	// spread over many sorted regions and PDC-SH wins outright; at this
	// scale all hits land in one sorted region, so one server runs the
	// whole probe phase serially (see EXPERIMENTS.md). Assert the sorted
	// path stays in the same league rather than strictly ahead.
	if rows[0].QueryTime["PDC-SH"] > 3*rows[0].QueryTime["PDC-H"] {
		t.Errorf("query 0: PDC-SH (%v) far slower than PDC-H (%v)",
			rows[0].QueryTime["PDC-SH"], rows[0].QueryTime["PDC-H"])
	}
	// Last query: x is the most selective condition, so the engine
	// evaluates x first and the sorted replica cannot help — PDC-SH falls
	// back to the histogram path and matches PDC-H (the paper's Fig. 4
	// observation for its last two queries).
	last := rows[len(rows)-1]
	ratio := float64(last.QueryTime["PDC-SH"]) / float64(last.QueryTime["PDC-H"])
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("last query: PDC-SH/PDC-H = %.2f, want ~1 (fallback)", ratio)
	}
	var buf bytes.Buffer
	Fig4Print(&buf, rows)
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Error("print missing banner")
	}
	buf.Reset()
	Fig4CSV(&buf, rows)
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != len(rows)+1 {
		t.Errorf("fig4 csv lines = %d", got)
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testConfig()
	rows, err := Fig5Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's multi-fold speedup from the metadata service: PDC
		// locates the 1000 objects instantly instead of traversing all
		// files.
		if 2*r.Time["PDC-H"] > r.Time["HDF5"] {
			t.Errorf("%s: PDC-H (%v) not clearly faster than HDF5 (%v)", r.Label, r.Time["PDC-H"], r.Time["HDF5"])
		}
		if r.Time["PDC-HI"] <= 0 {
			t.Errorf("%s: no PDC-HI time", r.Label)
		}
	}
	// Selectivity spans roughly the paper's 11%..65%.
	if rows[0].Selectivity > 25 || rows[len(rows)-1].Selectivity < 45 {
		t.Errorf("selectivity span = %.1f%%..%.1f%%, want ~11..65",
			rows[0].Selectivity, rows[len(rows)-1].Selectivity)
	}
	var buf bytes.Buffer
	Fig5Print(&buf, rows)
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("print missing banner")
	}
	buf.Reset()
	Fig5CSV(&buf, rows)
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != len(rows)+1 {
		t.Errorf("fig5 csv lines = %d", got)
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testConfig()
	rows, err := Fig6Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(c.Fig6Servers) {
		t.Fatalf("rows = %d", len(rows))
	}
	// More servers -> lower query time (the paper's scalability claim),
	// comparing the extremes. PDC-SH is exempt: the scalability query is
	// deliberately weak on the sort key so its surviving regions
	// outnumber the fleet (see EXPERIMENTS.md), which sidelines the
	// sorted replica.
	firstRow, lastRow := rows[0], rows[len(rows)-1]
	for _, a := range []string{"PDC-H", "PDC-HI"} {
		if lastRow.Time[a] >= firstRow.Time[a] {
			t.Errorf("%s: %d servers (%v) not faster than %d servers (%v)",
				a, lastRow.Servers, lastRow.Time[a], firstRow.Servers, firstRow.Time[a])
		}
	}
	if lastRow.Time["PDC-SH"] <= 0 {
		t.Error("PDC-SH missing from the scalability sweep")
	}
	// The answer is identical at every scale.
	for _, r := range rows[1:] {
		if r.NHits != rows[0].NHits {
			t.Errorf("nhits varies with server count: %d vs %d", r.NHits, rows[0].NHits)
		}
	}
	var buf bytes.Buffer
	Fig6Print(&buf, rows)
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Error("print missing banner")
	}
	buf.Reset()
	Fig6CSV(&buf, rows)
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != len(rows)+1 {
		t.Errorf("fig6 csv lines = %d", got)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testConfig()

	agg, err := AblationAggregation(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 2 {
		t.Fatalf("aggregation rows = %d", len(agg))
	}
	if agg[0].Time > agg[1].Time {
		t.Errorf("aggregated reads (%v) slower than per-request (%v)", agg[0].Time, agg[1].Time)
	}

	gh, err := AblationGlobalHistogram(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(gh) != 2 {
		t.Fatalf("global-histogram rows = %d", len(gh))
	}
	if gh[0].Time > gh[1].Time {
		t.Errorf("histogram ordering (%v) slower than minmax-only (%v)", gh[0].Time, gh[1].Time)
	}

	sorted, err := AblationSorted(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != 2 {
		t.Fatalf("sorted rows = %d", len(sorted))
	}
	if sorted[1].Time > sorted[0].Time {
		t.Errorf("PDC-SH (%v) slower than PDC-H (%v) on a selective query", sorted[1].Time, sorted[0].Time)
	}

	comp, err := AblationCompanions(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 2 {
		t.Fatalf("companion rows = %d", len(comp))
	}
	if comp[1].Time > comp[0].Time {
		t.Errorf("companions (%v) slower than sorted-only (%v)", comp[1].Time, comp[0].Time)
	}

	tier, err := AblationTiering(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tier) != 2 {
		t.Fatalf("tiering rows = %d", len(tier))
	}
	if tier[1].Time >= tier[0].Time {
		t.Errorf("burst buffer (%v) not faster than PFS (%v)", tier[1].Time, tier[0].Time)
	}

	var buf bytes.Buffer
	if err := Ablations(&buf, c); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"read-aggregation", "global-histogram", "sorted-replica", "co-sorted-companions", "tier-staging"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestSecsFormatting(t *testing.T) {
	if got := strings.TrimSpace(secs(1500 * time.Millisecond)); got != "1.500000" {
		t.Errorf("secs = %q", got)
	}
}
