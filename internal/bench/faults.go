package bench

import (
	"fmt"
	"io"
	"time"

	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/fault"
	"pdcquery/internal/object"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/workload"
)

// FaultsRow summarizes the recovery-overhead experiment: the same query
// batch against two identical deployments, one clean and one with a
// seeded schedule of connection drops that the client's redial path must
// mask. Recovery is pure wall-clock work (redial + resend are not
// modeled operations), so the modeled totals must agree exactly when
// every fault is masked — that equality is checked, not assumed — and
// the wall-time delta is the measured recovery overhead.
type FaultsRow struct {
	Queries      int     `json:"queries"`
	Masked       int     `json:"masked"`
	Typed        int     `json:"typed"`
	FaultsFired  int     `json:"faults_fired"`
	CleanModSec  float64 `json:"clean_modeled_sec"`
	FaultModSec  float64 `json:"fault_modeled_sec"`
	CleanWallSec float64 `json:"clean_wall_sec"`
	FaultWallSec float64 `json:"fault_wall_sec"`
	OverheadPct  float64 `json:"overhead_pct"`
}

// faultsRounds: the batch runs twice so region caches are warm for half
// the workload, as in the concurrency experiment.
const faultsRounds = 2

// faultsPlan schedules connection drops across the first servers'
// send and receive seams at small operation counts, so each fires early
// in the run and exercises redial on both directions.
func faultsPlan(seed uint64, servers int) fault.Plan {
	p := fault.Plan{Seed: seed}
	for s := 0; s < servers && s < 4; s++ {
		p.Schedule = append(p.Schedule,
			fault.Event{Seam: fmt.Sprintf("conn.%d.send", s), Count: uint64(3 + 2*s), Kind: fault.DropConn},
			fault.Event{Seam: fmt.Sprintf("conn.%d.recv", s), Count: uint64(8 + 3*s), Kind: fault.DropConn},
		)
	}
	return p
}

// FaultsRun executes the recovery-overhead experiment.
func FaultsRun(c Config) (*FaultsRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	regionBytes := RegionSweep(n, c.RegionSteps)[0].Bytes

	clean, err := faultsOnce(v, c, regionBytes, nil)
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}
	plan := faultsPlan(c.Seed, c.Servers)
	inj := fault.NewInjector(plan)
	faulted, err := faultsOnce(v, c, regionBytes, inj)
	if err != nil {
		return nil, fmt.Errorf("faulted run (seed %d): %w", plan.Seed, err)
	}

	row := &FaultsRow{
		Queries:      clean.queries,
		Masked:       faulted.completed,
		Typed:        faulted.typed,
		FaultsFired:  len(inj.Fired()),
		CleanModSec:  clean.modeled,
		FaultModSec:  faulted.modeled,
		CleanWallSec: clean.wall,
		FaultWallSec: faulted.wall,
	}
	if clean.wall > 0 {
		row.OverheadPct = 100 * (faulted.wall - clean.wall) / clean.wall
	}
	// With every fault masked, the faulted run answered the same queries
	// with the same modeled costs: recovery must be invisible in virtual
	// time. A typed failure removes its query's cost, so only the
	// all-masked case is comparable.
	if faulted.typed == 0 && faulted.modeled != clean.modeled {
		return nil, fmt.Errorf("recovery perturbed modeled time: clean %.9fs, faulted %.9fs (seed %d)",
			clean.modeled, faulted.modeled, plan.Seed)
	}
	return row, nil
}

// faultsTally is one run's outcome.
type faultsTally struct {
	queries, completed, typed int
	modeled                   float64
	wall                      float64
}

// faultsOnce runs the batch against a fresh deployment; a non-nil
// injector arms the transport seams (with redial enabled) before Start.
func faultsOnce(v *workload.VPIC, c Config, regionBytes int64, inj *fault.Injector) (*faultsTally, error) {
	model := scaledModel(v.N)
	d := core.NewDeployment(core.Options{
		Servers:     c.Servers,
		RegionBytes: regionBytes,
		BuildIndex:  true,
		Model:       &model,
		Redial:      true,
		CallTimeout: 30 * time.Second,
	})
	defer d.Close()
	cont := d.CreateContainer("vpic")
	o, err := d.ImportObject(cont.ID, object.Property{
		Name: "Energy", Type: dtype.Float32, Dims: []uint64{uint64(v.N)},
	}, dtype.Bytes(v.Vars["Energy"]))
	if err != nil {
		return nil, err
	}
	if inj != nil {
		d.SetWrapConn(func(srv int, conn transport.Conn) transport.Conn {
			return inj.WrapConn(fmt.Sprintf("conn.%d", srv), conn)
		})
	}
	if err := d.Start(); err != nil {
		return nil, err
	}

	queries := workload.SingleObjectQueries(o.ID)
	t := &faultsTally{queries: faultsRounds * len(queries)}
	start := telemetry.Wall.Now()
	for r := 0; r < faultsRounds; r++ {
		for _, q := range queries {
			res, err := d.Client().RunCount(q)
			if err != nil {
				t.typed++
				continue
			}
			t.completed++
			t.modeled += res.Info.Elapsed.Total().Seconds()
		}
	}
	t.wall = float64(telemetry.Wall.Now()-start) / 1e9
	return t, nil
}

// FaultsPrint renders the experiment.
func FaultsPrint(w io.Writer, r *FaultsRow) {
	printHeader(w, "Fault recovery overhead: seeded connection drops vs clean run")
	fmt.Fprintf(w, "%9s %8s %6s %7s %14s %14s %12s %12s %9s\n",
		"queries", "masked", "typed", "faults", "clean mod(s)", "fault mod(s)", "clean w(s)", "fault w(s)", "ovhd%")
	fmt.Fprintf(w, "%9d %8d %6d %7d %14.6f %14.6f %12.6f %12.6f %9.1f\n",
		r.Queries, r.Masked, r.Typed, r.FaultsFired,
		r.CleanModSec, r.FaultModSec, r.CleanWallSec, r.FaultWallSec, r.OverheadPct)
}
