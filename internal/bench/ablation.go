package bench

import (
	"fmt"
	"io"
	"time"

	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/simio"
	"pdcquery/internal/workload"
)

// AblationRow is one toggle comparison.
type AblationRow struct {
	Name    string
	Variant string
	Time    time.Duration
	Extra   string
}

// AblationAggregation toggles read aggregation (§III-E): the PDC-HI
// strategy reads many small bin blobs per region, so merging nearby
// requests is the difference between paying one latency per bin and one
// per region.
func AblationAggregation(c Config) ([]AblationRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := bestRegion(n)
	d, ids, err := deployVPIC(v, c.Servers, rs.Bytes, true, false)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	d.SetStrategy(exec.HistogramIndex)
	q := &query.Query{Root: query.Between(ids.Energy, 2.1, 2.4, false, false)}

	var rows []AblationRow
	for _, agg := range []bool{true, false} {
		d.Store().SetAggregate(agg)
		d.ResetCaches()
		res, err := d.Client().Run(q)
		if err != nil {
			return nil, err
		}
		variant := "aggregated"
		if !agg {
			variant = "per-request"
		}
		rows = append(rows, AblationRow{
			Name: "read-aggregation", Variant: variant,
			Time:  res.Info.Elapsed.Total(),
			Extra: fmt.Sprintf("index bins read: %d", res.Info.Stats.IndexBinsRead),
		})
	}
	d.Store().SetAggregate(true)
	return rows, nil
}

// AblationGlobalHistogram compares full global histograms against
// min/max-only region metadata (§IV): without histograms the planner
// loses selectivity-based condition ordering, so multi-object queries
// whose most selective condition is not the first object probe far more
// elements.
func AblationGlobalHistogram(c Config) ([]AblationRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := bestRegion(n)

	var rows []AblationRow
	for _, disable := range []bool{false, true} {
		d := core.NewDeployment(core.Options{
			Servers: c.Servers, RegionBytes: rs.Bytes, DisableHistograms: disable,
			Strategy: exec.Histogram,
		})
		cont := d.CreateContainer("vpic")
		ids := map[string]object.ID{}
		for _, name := range workload.VPICNames {
			o, err := d.ImportObject(cont.ID, object.Property{
				Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
			}, dtype.Bytes(v.Vars[name]))
			if err != nil {
				return nil, err
			}
			ids[name] = o.ID
		}
		if err := d.Start(); err != nil {
			return nil, err
		}
		// A query where evaluation order matters: the y window is ~1%
		// selective while Energy > 0.5 keeps ~9% of particles. With the
		// global histogram the planner evaluates y first and probes few
		// locations; without it, ID order puts Energy first and the probe
		// volume grows ~9x.
		q := &query.Query{Root: query.And(
			query.Leaf(ids["Energy"], query.OpGT, 0.5),
			query.Between(ids["y"], -3, 3, false, false))}
		res, err := d.Client().Run(q)
		if err != nil {
			d.Close()
			return nil, err
		}
		variant := "global-histogram"
		if disable {
			variant = "minmax-only"
		}
		rows = append(rows, AblationRow{
			Name: "global-histogram", Variant: variant,
			Time:  res.Info.Elapsed.Total(),
			Extra: fmt.Sprintf("probes: %d, pruned: %d", res.Info.Stats.Probes, res.Info.Stats.RegionsPruned),
		})
		d.Close()
	}
	return rows, nil
}

// AblationSorted contrasts PDC-H and PDC-SH on a highly selective
// single-object query (the regime where the paper reports >1000x over
// full scan for the sorted replica), reporting both query and get-data
// time — the latter shows the fewer-servers transfer penalty (§VI-A).
func AblationSorted(c Config) ([]AblationRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := bestRegion(n)
	d, ids, err := deployVPIC(v, c.Servers, rs.Bytes, false, true)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	q := workload.SingleObjectQueries(ids.Energy)[14] // 3.5 < E < 3.6

	var rows []AblationRow
	for _, name := range []string{"PDC-H", "PDC-SH"} {
		d.SetStrategy(pdcStrategies[name])
		d.ResetCaches()
		res, err := d.Client().Run(q)
		if err != nil {
			return nil, err
		}
		var gd time.Duration
		if res.Sel.NHits > 0 {
			_, dinfo, err := res.GetData(ids.Energy)
			if err != nil {
				return nil, err
			}
			gd = dinfo.Elapsed.Total()
		}
		rows = append(rows, AblationRow{
			Name: "sorted-replica", Variant: name,
			Time:  res.Info.Elapsed.Total(),
			Extra: fmt.Sprintf("get-data: %.4fs, regions: %d eval / %d sorted", gd.Seconds(), res.Info.Stats.RegionsEvaluated, res.Info.Stats.SortedRegions),
		})
	}
	return rows, nil
}

// AblationCompanions contrasts the plain energy-sorted replica with one
// extended by co-sorted x/y/z companions (the paper's §IX future work)
// on the most energy-selective multi-object query: companion probing
// reads contiguous co-sorted extents instead of scattered original
// regions.
func AblationCompanions(c Config) ([]AblationRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := bestRegion(n)

	var rows []AblationRow
	for _, withComp := range []bool{false, true} {
		var d *core.Deployment
		var ids vpicIDs
		var err error
		if withComp {
			d, ids, err = deployVPICCompanions(v, c.Servers, rs.Bytes)
		} else {
			d, ids, err = deployVPIC(v, c.Servers, rs.Bytes, false, true)
		}
		if err != nil {
			return nil, err
		}
		d.SetStrategy(exec.SortedHistogram)
		q := workload.MultiObjectQueries(ids.Energy, ids.X, ids.Y, ids.Z)[0]
		res, err := d.Client().Run(q)
		if err != nil {
			d.Close()
			return nil, err
		}
		var ops int64
		for _, s := range d.Servers() {
			ops += s.Account().Counter("read.ops")
		}
		variant := "sorted-only"
		if withComp {
			variant = "with-companions"
		}
		rows = append(rows, AblationRow{
			Name: "co-sorted-companions", Variant: variant,
			Time:  res.Info.Elapsed.Total(),
			Extra: fmt.Sprintf("read ops: %d, hits: %d", ops, res.Sel.NHits),
		})
		d.Close()
	}
	return rows, nil
}

// AblationTiering stages the queried object from the parallel file
// system into the burst buffer (PDC's transparent data movement, §II)
// and measures the cold-query difference.
func AblationTiering(c Config) ([]AblationRow, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	rs := bestRegion(n)
	d, ids, err := deployVPIC(v, c.Servers, rs.Bytes, false, false)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	d.SetStrategy(exec.Histogram)
	q := &query.Query{Root: query.Between(ids.Energy, 2.1, 2.4, false, false)}

	var rows []AblationRow
	for _, staged := range []bool{false, true} {
		if staged {
			if err := d.MigrateObject(ids.Energy, simio.BurstBuffer); err != nil {
				return nil, err
			}
		}
		d.ResetCaches()
		res, err := d.Client().Run(q)
		if err != nil {
			return nil, err
		}
		variant := "pfs"
		if staged {
			variant = "burst-buffer"
		}
		rows = append(rows, AblationRow{
			Name: "tier-staging", Variant: variant,
			Time:  res.Info.Elapsed.Total(),
			Extra: fmt.Sprintf("hits: %d", res.Sel.NHits),
		})
	}
	return rows, nil
}

// Ablations runs all ablation experiments and prints them.
func Ablations(w io.Writer, c Config) error {
	printHeader(w, "Ablations: design-choice toggles")
	for _, run := range []func(Config) ([]AblationRow, error){
		AblationAggregation, AblationGlobalHistogram, AblationSorted,
		AblationCompanions, AblationTiering,
	} {
		rows, err := run(c)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-20s %-18s %s   %s\n", r.Name, r.Variant, secs(r.Time), r.Extra)
		}
	}
	return nil
}
