package bench

import (
	"fmt"
	"io"
)

// CSV emitters for the remaining figures (Fig. 3 has its own in fig3.go);
// cmd/pdc-bench wires these behind its -csv flag so every series can be
// re-plotted externally.

// Fig4CSV writes the multi-object rows as CSV.
func Fig4CSV(w io.Writer, rows []Fig4Row) {
	fmt.Fprint(w, "query,selectivity_pct,nhits")
	for _, a := range Approaches {
		fmt.Fprintf(w, ",%s_s", a)
	}
	for _, a := range Approaches[1:] {
		fmt.Fprintf(w, ",%s_getdata_s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%q,%.6f,%d", r.Label, r.Selectivity, r.NHits)
		for _, a := range Approaches {
			fmt.Fprintf(w, ",%.9f", r.QueryTime[a].Seconds())
		}
		for _, a := range Approaches[1:] {
			fmt.Fprintf(w, ",%.9f", r.GetDataTime[a].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// Fig5CSV writes the BOSS rows as CSV.
func Fig5CSV(w io.Writer, rows []Fig5Row) {
	fmt.Fprint(w, "data_cond,selectivity_pct,nhits")
	for _, a := range fig5Approaches {
		fmt.Fprintf(w, ",%s_s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%q,%.4f,%d", r.Label, r.Selectivity, r.NHits)
		for _, a := range fig5Approaches {
			fmt.Fprintf(w, ",%.9f", r.Time[a].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// Fig6CSV writes the scalability rows as CSV.
func Fig6CSV(w io.Writer, rows []Fig6Row) {
	fmt.Fprint(w, "servers")
	for _, a := range fig6Approaches {
		fmt.Fprintf(w, ",%s_s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%d", r.Servers)
		for _, a := range fig6Approaches {
			fmt.Fprintf(w, ",%.9f", r.Time[a].Seconds())
		}
		fmt.Fprintln(w)
	}
}
