package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestScaleoutShape runs the scale-out figure at a reduced scale with
// brute-force verification: every row must answer the corpus exactly
// (the byte-identical check happens inside ScaleoutRun when Verify is
// set), every row must agree on the hit total, and spreading the
// dataset over more members must never slow the modeled corpus down.
func TestScaleoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep skipped in -short")
	}
	c := testConfig()
	c.LogN = 16
	rows, err := ScaleoutRun(c)
	if err != nil {
		t.Fatalf("ScaleoutRun: %v", err)
	}
	if len(rows) != len(ScaleoutMembers) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ScaleoutMembers))
	}
	for i, r := range rows {
		if r.Members != ScaleoutMembers[i] {
			t.Errorf("row %d members = %d, want %d", i, r.Members, ScaleoutMembers[i])
		}
		if r.NHits != rows[0].NHits {
			t.Errorf("members=%d hits = %d, want %d (answers must not depend on cluster size)",
				r.Members, r.NHits, rows[0].NHits)
		}
		if r.TimeNs <= 0 {
			t.Errorf("members=%d modeled time = %d, want > 0", r.Members, r.TimeNs)
		}
	}
	// The headline claim: a bigger cluster is no slower (small datasets
	// bottom out on fixed per-query costs, so allow 10% jitter per step),
	// and the largest sweep point is strictly faster than the baseline.
	for i := 1; i < len(rows); i++ {
		if rows[i].TimeNs > rows[i-1].TimeNs+rows[i-1].TimeNs/10 {
			t.Errorf("members=%d modeled %dns > members=%d %dns (scale-out regressed)",
				rows[i].Members, rows[i].TimeNs, rows[i-1].Members, rows[i-1].TimeNs)
		}
	}
	if last := rows[len(rows)-1]; last.Speedup <= 1.0 {
		t.Errorf("members=%d speedup = %.2f, want > 1", last.Members, last.Speedup)
	}

	var tbl, csv bytes.Buffer
	ScaleoutPrint(&tbl, rows)
	if !strings.Contains(tbl.String(), "members") {
		t.Errorf("print output missing header:\n%s", tbl.String())
	}
	ScaleoutCSV(&csv, rows)
	if got := strings.Count(csv.String(), "\n"); got != len(rows)+1 {
		t.Errorf("csv lines = %d, want %d", got, len(rows)+1)
	}

	var out bytes.Buffer
	if err := ScaleoutJSON(&out, rows); err != nil {
		t.Fatalf("ScaleoutJSON: %v", err)
	}
	var doc struct {
		Figure string        `json:"figure"`
		Rows   []ScaleoutRow `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH_scaleout.json does not round-trip: %v", err)
	}
	if doc.Figure != "scaleout" || len(doc.Rows) != len(rows) {
		t.Errorf("json doc = %q/%d rows, want scaleout/%d", doc.Figure, len(doc.Rows), len(rows))
	}
}
