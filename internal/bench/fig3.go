package bench

import (
	"fmt"
	"io"
	"time"

	"pdcquery/internal/baseline"
	"pdcquery/internal/exec"
	"pdcquery/internal/workload"
)

// Fig3Row is one (region size, query) cell of Fig. 3: query time and
// get-data time per approach.
type Fig3Row struct {
	Region      RegionSize
	QueryIdx    int
	Label       string
	Selectivity float64 // measured, in percent
	NHits       uint64
	// QueryTime is the paper's measurement: the 15 queries run
	// sequentially, so later ones benefit from the servers' region
	// caches (§VI-A observes exactly this effect).
	QueryTime map[string]time.Duration
	// ColdTime re-runs each query against cold caches, isolating the
	// strategies' storage behaviour from cache warm-up. At full paper
	// scale the caches never hold everything, so the paper's curves sit
	// between these two.
	ColdTime    map[string]time.Duration
	GetDataTime map[string]time.Duration
}

// Fig3Run reproduces Fig. 3 (a)–(f): 15 single-object energy queries,
// executed sequentially per approach (so later queries enjoy the region
// cache, as in the paper), across the region-size sweep.
//
// Accounting follows §VI-A: the two full-scan approaches report amortized
// time ([total read time / #queries] + scan time); the optimized
// approaches report each query's measured end-to-end time.
func Fig3Run(c Config) ([]Fig3Row, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	var rows []Fig3Row
	for _, rs := range RegionSweep(n, c.RegionSteps) {
		d, ids, err := deployVPIC(v, c.Servers, rs.Bytes, true, true)
		if err != nil {
			return nil, err
		}
		queries := workload.SingleObjectQueries(ids.Energy)
		regionRows := make([]Fig3Row, len(queries))
		for k := range queries {
			regionRows[k] = Fig3Row{
				Region: rs, QueryIdx: k, Label: workload.SingleQueryLabel(k),
				QueryTime:   make(map[string]time.Duration),
				ColdTime:    make(map[string]time.Duration),
				GetDataTime: make(map[string]time.Duration),
			}
		}

		// HDF5-F: one full read of the Energy object amortized over the
		// batch, plus each query's scan.
		hcfg := baseline.DefaultConfig(d.Store().Model(), c.Servers)
		for k, q := range queries {
			res, err := baseline.FullScan(d.Store(), d.Meta().Get, q, hcfg)
			if err != nil {
				d.Close()
				return nil, err
			}
			amort := baseline.AmortizedElapsed(res.ReadElapsed, res.ScanElapsed, len(queries))
			regionRows[k].QueryTime["HDF5-F"] = amort
			regionRows[k].ColdTime["HDF5-F"] = res.Elapsed()
			regionRows[k].NHits = res.NHits
			regionRows[k].Selectivity = 100 * float64(res.NHits) / float64(n)
		}

		// The four PDC approaches, each from a cold start.
		for _, name := range Approaches[1:] {
			strat := pdcStrategies[name]
			d.SetStrategy(strat)
			// Cold pass: every query starts with empty caches.
			for k, q := range queries {
				d.ResetCaches()
				res, err := d.Client().RunCount(q)
				if err != nil {
					d.Close()
					return nil, err
				}
				regionRows[k].ColdTime[name] = res.Info.Elapsed.Total()
			}
			// Warm pass: the paper's sequential execution.
			d.ResetCaches()
			var queryTimes []time.Duration
			for k, q := range queries {
				res, err := d.Client().Run(q)
				if err != nil {
					d.Close()
					return nil, err
				}
				if c.Verify {
					truth, err := d.GroundTruth(q)
					if err != nil {
						d.Close()
						return nil, err
					}
					if truth.NHits != res.Sel.NHits {
						d.Close()
						return nil, fmt.Errorf("fig3 %s %s: %d hits, truth %d",
							name, regionRows[k].Label, res.Sel.NHits, truth.NHits)
					}
				}
				queryTimes = append(queryTimes, res.Info.Elapsed.Total())
				if res.Sel.NHits > 0 {
					_, dinfo, err := res.GetData(ids.Energy)
					if err != nil {
						d.Close()
						return nil, err
					}
					regionRows[k].GetDataTime[name] = dinfo.Elapsed.Total()
				}
			}
			if strat == exec.FullScan {
				// Amortized accounting for the full-scan approach: the
				// initial read is shared by the whole batch.
				var total time.Duration
				for _, t := range queryTimes {
					total += t
				}
				avg := total / time.Duration(len(queryTimes))
				for k := range regionRows {
					regionRows[k].QueryTime[name] = avg
				}
			} else {
				for k := range regionRows {
					regionRows[k].QueryTime[name] = queryTimes[k]
				}
			}
		}
		d.Close()
		rows = append(rows, regionRows...)
	}
	return rows, nil
}

// Fig3Print renders the rows as one table per region size: the
// sequential (warm-cache) query times with stacked get-data, and the
// cold-start times.
func Fig3Print(w io.Writer, rows []Fig3Row) {
	var cur string
	for _, r := range rows {
		key := r.Region.PaperLabel
		if key != cur {
			cur = key
			printHeader(w, fmt.Sprintf("Fig. 3: single-object queries — region size %s (paper-equivalent %s)",
				byteLabel(r.Region.Bytes), r.Region.PaperLabel))
			fmt.Fprintf(w, "%-12s %10s %8s", "query", "sel%", "nhits")
			for _, a := range Approaches {
				fmt.Fprintf(w, " %10s", a)
			}
			for _, a := range Approaches[1:] {
				fmt.Fprintf(w, " %10s", a+"+gd")
			}
			for _, a := range Approaches {
				fmt.Fprintf(w, " %10s", "cold:"+a)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-12s %10.4f %8d", r.Label, r.Selectivity, r.NHits)
		for _, a := range Approaches {
			fmt.Fprintf(w, " %s", secs(r.QueryTime[a]))
		}
		for _, a := range Approaches[1:] {
			fmt.Fprintf(w, " %s", secs(r.QueryTime[a]+r.GetDataTime[a]))
		}
		for _, a := range Approaches {
			fmt.Fprintf(w, " %s", secs(r.ColdTime[a]))
		}
		fmt.Fprintln(w)
	}
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Fig3Speedups prints the §VI-A headline ratios derived from the rows:
// per approach, the cold-start speedup over the HDF5-F full scan at the
// highest- and lowest-selectivity windows of each region size.
func Fig3Speedups(w io.Writer, rows []Fig3Row) {
	printHeader(w, "§VI-A speedups over HDF5-F (cold start)")
	fmt.Fprintf(w, "%-10s %-12s", "region", "query")
	for _, a := range Approaches[1:] {
		fmt.Fprintf(w, " %10s", a)
	}
	fmt.Fprintln(w)
	var cur string
	var first, last *Fig3Row
	flush := func() {
		if first == nil {
			return
		}
		for _, r := range []*Fig3Row{first, last} {
			fmt.Fprintf(w, "%-10s %-12s", r.Region.PaperLabel, r.Label)
			for _, a := range Approaches[1:] {
				ratio := float64(r.ColdTime["HDF5-F"]) / float64(r.ColdTime[a])
				fmt.Fprintf(w, " %9.1fx", ratio)
			}
			fmt.Fprintln(w)
		}
	}
	for i := range rows {
		r := &rows[i]
		if r.Region.PaperLabel != cur {
			flush()
			cur = r.Region.PaperLabel
			first = r
		}
		last = r
	}
	flush()
}

// Fig3CSV writes the rows as CSV for external plotting.
func Fig3CSV(w io.Writer, rows []Fig3Row) {
	fmt.Fprint(w, "region,paper_region,query,selectivity_pct,nhits")
	for _, a := range Approaches {
		fmt.Fprintf(w, ",%s_s", a)
	}
	for _, a := range Approaches[1:] {
		fmt.Fprintf(w, ",%s_getdata_s", a)
	}
	for _, a := range Approaches {
		fmt.Fprintf(w, ",cold_%s_s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%s,%s,%.6f,%d", r.Region.Bytes, r.Region.PaperLabel, r.Label, r.Selectivity, r.NHits)
		for _, a := range Approaches {
			fmt.Fprintf(w, ",%.9f", r.QueryTime[a].Seconds())
		}
		for _, a := range Approaches[1:] {
			fmt.Fprintf(w, ",%.9f", r.GetDataTime[a].Seconds())
		}
		for _, a := range Approaches {
			fmt.Fprintf(w, ",%.9f", r.ColdTime[a].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// Fig3 runs and prints the experiment.
func Fig3(w io.Writer, c Config) error {
	rows, err := Fig3Run(c)
	if err != nil {
		return err
	}
	Fig3Print(w, rows)
	Fig3Speedups(w, rows)
	return nil
}
