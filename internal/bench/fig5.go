package bench

import (
	"fmt"
	"io"
	"time"

	"pdcquery/internal/baseline"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/vclock"
	"pdcquery/internal/workload"
)

// Fig5Row is one BOSS metadata+data query.
type Fig5Row struct {
	Label       string
	Selectivity float64 // data selectivity over the matched objects, percent
	NHits       uint64
	Time        map[string]time.Duration
}

// fig5Approaches are the series in the paper's Fig. 5.
var fig5Approaches = []string{"HDF5", "PDC-H", "PDC-HI"}

// Fig5Run reproduces Fig. 5: a metadata condition (RADEG=… AND DECDEG=…)
// fixing 1000 fiber objects, combined with a flux-range data condition of
// varying selectivity. The HDF5 baseline traverses every file; PDC
// resolves the metadata query from the tag index and evaluates data
// conditions only on the matching objects.
func Fig5Run(c Config) ([]Fig5Row, error) {
	objs := workload.GenerateBOSS(c.BOSSObjects, c.FluxLen, c.Seed)

	d := core.NewDeployment(core.Options{
		Servers:     c.Servers,
		RegionBytes: 1 << 20, // each fiber is far smaller: one region per object (§VI-C)
		BuildIndex:  true,
	})
	cont := d.CreateContainer("h5boss")
	ids := make([]object.ID, len(objs))
	for i, bo := range objs {
		o, err := d.ImportObject(cont.ID, object.Property{
			Name: bo.Name, Type: dtype.Float32, Dims: []uint64{uint64(len(bo.Flux))},
			Tags: map[string]string{"RADEG": bo.RADeg, "DECDEG": bo.DECDeg},
		}, dtype.Bytes(bo.Flux))
		if err != nil {
			return nil, err
		}
		ids[i] = o.ID
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	defer d.Close()

	// The metadata condition: the first group's sky position (1000
	// objects, as in the paper).
	tagConds := []metadata.TagCond{
		{Key: "RADEG", Value: objs[0].RADeg},
		{Key: "DECDEG", Value: objs[0].DECDeg},
	}
	files := make([]baseline.BOSSFile, len(objs))
	for i, bo := range objs {
		files[i] = baseline.BOSSFile{
			Tags: map[string]string{"RADEG": bo.RADeg, "DECDEG": bo.DECDeg},
			Flux: bo.Flux,
		}
	}
	hcfg := baseline.DefaultConfig(d.Store().Model(), c.Servers)

	serverCosts := func() []vclock.Cost {
		out := make([]vclock.Cost, len(d.Servers()))
		for i, s := range d.Servers() {
			out[i] = s.Account().Cost()
		}
		return out
	}

	var rows []Fig5Row
	for k, lo := range workload.BOSSDataBounds {
		iv := query.Interval{Lo: lo, Hi: 20, LoIncl: false, HiIncl: false}
		row := Fig5Row{Label: workload.BOSSQueryLabel(k), Time: make(map[string]time.Duration)}

		// HDF5: traverse all files.
		bres := baseline.BOSSScan(files, map[string]string{
			"RADEG": objs[0].RADeg, "DECDEG": objs[0].DECDeg,
		}, iv, hcfg)
		row.Time["HDF5"] = bres.Elapsed()
		row.NHits = bres.NHits
		matchedElems := float64(workload.BOSSGroupSize * c.FluxLen)
		row.Selectivity = 100 * float64(bres.NHits) / matchedElems

		// PDC: tag query locates the objects, then the data condition is
		// evaluated over those objects only. Servers work in parallel
		// (each object's single region is owned by one server), so the
		// parallel elapsed is the slowest server's account delta.
		for _, name := range []string{"PDC-H", "PDC-HI"} {
			d.SetStrategy(pdcStrategies[name])
			d.ResetCaches()

			matched, tagInfo, err := d.Client().QueryTag(tagConds)
			if err != nil {
				return nil, err
			}
			if len(matched) != workload.BOSSGroupSize {
				return nil, fmt.Errorf("fig5: tag query matched %d objects, want %d", len(matched), workload.BOSSGroupSize)
			}
			before := serverCosts()
			var nhits uint64
			var wire time.Duration
			for _, id := range matched {
				q := &query.Query{Root: query.Between(id, lo, 20, false, false)}
				res, err := d.Client().RunCount(q)
				if err != nil {
					return nil, err
				}
				nhits += res.Sel.NHits
				wire += res.Info.Elapsed.Part(vclock.Network) / time.Duration(len(matched))
			}
			after := serverCosts()
			var maxDelta time.Duration
			for i := range after {
				if delta := after[i].Sub(before[i]).Total(); delta > maxDelta {
					maxDelta = delta
				}
			}
			if c.Verify && nhits != bres.NHits {
				return nil, fmt.Errorf("fig5 %s %s: %d hits, baseline %d", name, row.Label, nhits, bres.NHits)
			}
			row.Time[name] = tagInfo.Elapsed.Total() + maxDelta + wire
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Print renders the table.
func Fig5Print(w io.Writer, rows []Fig5Row) {
	printHeader(w, "Fig. 5: BOSS metadata+data queries (1000 objects fixed by tags)")
	fmt.Fprintf(w, "%-14s %10s %10s", "data cond", "sel%", "nhits")
	for _, a := range fig5Approaches {
		fmt.Fprintf(w, " %10s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.2f %10d", r.Label, r.Selectivity, r.NHits)
		for _, a := range fig5Approaches {
			fmt.Fprintf(w, " %s", secs(r.Time[a]))
		}
		fmt.Fprintln(w)
	}
}

// Fig5 runs and prints the experiment.
func Fig5(w io.Writer, c Config) error {
	rows, err := Fig5Run(c)
	if err != nil {
		return err
	}
	Fig5Print(w, rows)
	return nil
}
