package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestConcurrentRun exercises the concurrency experiment end to end at a
// small scale with oracle verification on: every session's every result
// must match ground truth, and the modeled totals must agree across the
// whole worker sweep (ConcurrentRun errors internally otherwise).
func TestConcurrentRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testConfig()
	c.LogN = 17
	c.Concurrency = 3
	rows, err := ConcurrentRun(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(concurrentWorkerSweep) {
		t.Fatalf("rows = %d, want one per worker count %v", len(rows), concurrentWorkerSweep)
	}
	for _, r := range rows {
		if r.Busy != 0 {
			t.Errorf("workers=%d: %d busy rejections from sequential sessions", r.Workers, r.Busy)
		}
		if r.Completed != r.Queries {
			t.Errorf("workers=%d: completed %d of %d", r.Workers, r.Completed, r.Queries)
		}
		if r.ModeledSec != rows[0].ModeledSec {
			t.Errorf("workers=%d: modeled %.9fs, workers=%d %.9fs",
				r.Workers, r.ModeledSec, rows[0].Workers, rows[0].ModeledSec)
		}
	}
	var buf bytes.Buffer
	ConcurrentPrint(&buf, rows)
	if buf.Len() == 0 {
		t.Error("ConcurrentPrint wrote nothing")
	}
}

// BenchmarkConcurrentClients is the CI-trackable scheduler benchmark: it
// runs the concurrent-clients sweep and emits one machine-readable
// "BENCH {json}" line per (clients, workers) cell, plus q/s as the
// benchmark metric for the largest worker count.
func BenchmarkConcurrentClients(b *testing.B) {
	c := testConfig()
	c.LogN = 17
	c.Verify = false
	c.Concurrency = 4
	var last []ConcurrentRow
	for i := 0; i < b.N; i++ {
		rows, err := ConcurrentRun(c)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		j, err := json.Marshal(r)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "BENCH %s\n", j)
	}
	if len(last) > 0 {
		b.ReportMetric(last[len(last)-1].QueriesPerSec, "queries/s")
	}
}
