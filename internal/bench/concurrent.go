package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"pdcquery/internal/client"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/sched"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/workload"
)

// ConcurrentRow is one (client sessions, region workers) cell of the
// concurrency experiment: the same query batch pushed through the
// scheduler at increasing worker counts. ModeledSeconds is the
// deterministic virtual-time total (identical at every worker count —
// the scheduler's determinism contract); WallSeconds is the measured
// wall time the parallelism actually buys.
type ConcurrentRow struct {
	Clients       int     `json:"clients"`
	Workers       int     `json:"workers"`
	Queries       int     `json:"queries"`
	Completed     int     `json:"completed"`
	Busy          int     `json:"busy"`
	ModeledSec    float64 `json:"modeled_sec"`
	WallSec       float64 `json:"wall_sec"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// concurrentWorkerSweep is the worker-count axis of the experiment.
var concurrentWorkerSweep = []int{1, 2, 4, 8}

// ConcurrentRun drives c.Concurrency client sessions, each executing the
// 15-query single-object batch twice, against one deployment per worker
// count in the sweep. Results are oracle-checked when c.Verify is set;
// modeled totals must agree across worker counts or the run errors.
func ConcurrentRun(c Config) ([]ConcurrentRow, error) {
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	regionBytes := RegionSweep(n, c.RegionSteps)[0].Bytes

	var rows []ConcurrentRow
	var modeledBase float64
	for _, workers := range concurrentWorkerSweep {
		row, modeled, err := concurrentOnce(v, c, regionBytes, workers)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			modeledBase = modeled
		} else if modeled != modeledBase {
			return nil, fmt.Errorf("determinism violation: modeled total %.9fs at %d workers, %.9fs at %d",
				modeled, workers, modeledBase, rows[0].Workers)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func concurrentOnce(v *workload.VPIC, c Config, regionBytes int64, workers int) (ConcurrentRow, float64, error) {
	model := scaledModel(v.N)
	d := core.NewDeployment(core.Options{
		Servers:     c.Servers,
		RegionBytes: regionBytes,
		BuildIndex:  true,
		Model:       &model,
		Workers:     workers,
	})
	defer d.Close()
	cont := d.CreateContainer("vpic")
	o, err := d.ImportObject(cont.ID, object.Property{
		Name: "Energy", Type: dtype.Float32, Dims: []uint64{uint64(v.N)},
	}, dtype.Bytes(v.Vars["Energy"]))
	if err != nil {
		return ConcurrentRow{}, 0, err
	}
	if err := d.Start(); err != nil {
		return ConcurrentRow{}, 0, err
	}

	queries := workload.SingleObjectQueries(o.ID)
	truths := make([]uint64, len(queries))
	if c.Verify {
		for i, q := range queries {
			truth, err := d.GroundTruth(q)
			if err != nil {
				return ConcurrentRow{}, 0, err
			}
			truths[i] = truth.NHits
		}
	}

	// One session per client: the deployment's own plus extras, each on
	// its own pipe pair served by its server-side Serve loop — the same
	// wiring the deployment uses for its primary client.
	sessions := []*client.Client{d.Client()}
	var serveWG sync.WaitGroup
	var extras []*client.Client
	for len(sessions) < c.Concurrency {
		srvs := d.Servers()
		conns := make([]transport.Conn, len(srvs))
		for i, srv := range srvs {
			clientSide, serverSide := transport.Pipe()
			conns[i] = clientSide
			serveWG.Add(1)
			go func() {
				defer serveWG.Done()
				srv.Serve(serverSide)
				serverSide.Close()
			}()
		}
		cl := client.New(conns, d.Meta())
		cl.SetSleeper(telemetry.WallSleep)
		extras = append(extras, cl)
		sessions = append(sessions, cl)
	}
	defer func() {
		for _, cl := range extras {
			cl.Close()
		}
		serveWG.Wait()
	}()

	const rounds = 2
	type tally struct {
		completed, busy int
		modeled         float64
		err             error
	}
	tallies := make([]tally, len(sessions))
	start := telemetry.Wall.Now()
	var wg sync.WaitGroup
	for si, cl := range sessions {
		wg.Add(1)
		go func(si int, cl *client.Client) {
			defer wg.Done()
			t := &tallies[si]
			for r := 0; r < rounds; r++ {
				for qi, q := range queries {
					res, err := cl.RunCount(q)
					switch {
					case err == nil:
						t.completed++
						t.modeled += res.Info.Elapsed.Total().Seconds()
						if c.Verify && res.Sel.NHits != truths[qi] {
							t.err = fmt.Errorf("clients=%d workers=%d query %d: %d hits, oracle %d",
								len(sessions), workers, qi, res.Sel.NHits, truths[qi])
							return
						}
					case errors.Is(err, sched.ErrBusy):
						t.busy++
					default:
						t.err = err
						return
					}
				}
			}
		}(si, cl)
	}
	wg.Wait()
	wallSec := float64(telemetry.Wall.Now()-start) / 1e9

	row := ConcurrentRow{Clients: len(sessions), Workers: workers, WallSec: wallSec}
	var modeled float64
	for _, t := range tallies {
		if t.err != nil {
			return ConcurrentRow{}, 0, t.err
		}
		row.Completed += t.completed
		row.Busy += t.busy
		modeled += t.modeled
	}
	row.Queries = len(sessions) * rounds * len(queries)
	row.ModeledSec = modeled
	if wallSec > 0 {
		row.QueriesPerSec = float64(row.Completed) / wallSec
	}
	return row, modeled, nil
}

// ConcurrentPrint renders the sweep as a table.
func ConcurrentPrint(w io.Writer, rows []ConcurrentRow) {
	fmt.Fprintf(w, "\nConcurrent clients: wall throughput vs region workers (modeled time invariant)\n")
	fmt.Fprintf(w, "%8s %8s %9s %10s %6s %12s %12s %10s\n",
		"clients", "workers", "queries", "completed", "busy", "modeled(s)", "wall(s)", "q/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %9d %10d %6d %12.6f %12.6f %10.1f\n",
			r.Clients, r.Workers, r.Queries, r.Completed, r.Busy, r.ModeledSec, r.WallSec, r.QueriesPerSec)
	}
}
