// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) against the synthetic workloads,
// reporting modeled (virtual-time) elapsed seconds with the same series
// the paper plots, plus ablation experiments for the design choices
// DESIGN.md calls out.
//
// Figures:
//
//	Fig. 3 — single-object (Energy) queries, 15 selectivities x 5
//	         approaches x region-size sweep, query time + get-data time.
//	Fig. 4 — six multi-object (Energy,x,y,z) queries at the best region
//	         size.
//	Fig. 5 — BOSS metadata+data queries, HDF5 vs PDC-H vs PDC-HI.
//	Fig. 6 — scalability of one multi-object query, 32..512 servers.
//
// Scale note: the paper ran 125B particles / 3.3TB on Cori; the harness
// defaults to 2^LogN particles (LogN=20 ≈ 1M) and scales region sizes so
// the object:region ratio spans the same decades. Absolute numbers are
// not comparable; the series shapes are.
package bench

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/simio"
	"pdcquery/internal/workload"
)

// Config parameterizes the harness.
type Config struct {
	// LogN: the VPIC dataset holds 2^LogN particles.
	LogN int
	// Servers is the deployment size for Figs. 3–5 (the paper uses 64).
	Servers int
	// Seed makes datasets reproducible.
	Seed uint64
	// Verify cross-checks every query result against a brute-force oracle
	// (slow; used by tests).
	Verify bool
	// BOSSObjects and FluxLen size the Fig. 5 dataset.
	BOSSObjects int
	FluxLen     int
	// RegionSteps controls how many region sizes Fig. 3 sweeps (max 6,
	// matching the paper's 4MB..128MB).
	RegionSteps int
	// Concurrency is the client-session count for the concurrent-clients
	// experiment (0 means 4).
	Concurrency int
	// Fig6Servers are the server counts for the scalability figure.
	Fig6Servers []int
}

// DefaultConfig returns the default harness parameters, honouring the
// PDCQ_LOGN and PDCQ_SERVERS environment variables.
func DefaultConfig() Config {
	c := Config{
		LogN:        20,
		Servers:     64,
		Seed:        42,
		BOSSObjects: 20000,
		FluxLen:     500,
		RegionSteps: 6,
		Concurrency: 4,
		Fig6Servers: []int{32, 64, 128, 256, 512},
	}
	if s := os.Getenv("PDCQ_LOGN"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 10 && v <= 28 {
			c.LogN = v
		}
	}
	if s := os.Getenv("PDCQ_SERVERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 && v <= 1024 {
			c.Servers = v
		}
	}
	return c
}

// Approaches in plot order.
var Approaches = []string{"HDF5-F", "PDC-F", "PDC-H", "PDC-HI", "PDC-SH"}

// pdcStrategies maps approach labels to engine strategies.
var pdcStrategies = map[string]exec.Strategy{
	"PDC-F":  exec.FullScan,
	"PDC-H":  exec.Histogram,
	"PDC-HI": exec.HistogramIndex,
	"PDC-SH": exec.SortedHistogram,
}

// RegionSweep returns the Fig. 3 region sizes for a dataset of n
// particles (float32): the object:region ratio spans the same six
// doublings as the paper's 4MB..128MB on 466GB objects, scaled to the
// synthetic object size. PaperLabel gives the corresponding paper size.
type RegionSize struct {
	Bytes      int64
	PaperLabel string
}

// regionFloor keeps scaled regions large enough that the per-region
// bitmap-index directory stays a small fraction of the region, as it is
// at paper scale.
const regionFloor = 16 << 10

// RegionSweep computes the scaled sweep.
func RegionSweep(n int, steps int) []RegionSize {
	if steps <= 0 || steps > 6 {
		steps = 6
	}
	objectBytes := int64(n) * 4
	out := make([]RegionSize, 0, steps)
	for i := 0; i < steps; i++ {
		// 1024 regions down to 32 regions, like 4MB -> 128MB in the paper.
		count := int64(1024 >> i)
		rb := objectBytes / count
		floor := int64(regionFloor)
		if floor > objectBytes {
			floor = objectBytes
		}
		if rb < floor {
			rb = floor
		}
		label := fmt.Sprintf("%dMB", 4<<i)
		// Small datasets hit the floor for several steps; merge those
		// into a single swept size with a combined label.
		if len(out) > 0 && out[len(out)-1].Bytes == rb {
			base := strings.TrimSuffix(strings.Split(out[len(out)-1].PaperLabel, "-")[0], "MB")
			out[len(out)-1].PaperLabel = base + "-" + label
			continue
		}
		out = append(out, RegionSize{Bytes: rb, PaperLabel: label})
	}
	return out
}

// scaledModel derives the storage cost model for a scaled dataset: the
// paper's regime is bandwidth-bound (a 4 MB region transfers in ~2.7 ms
// against a 2 ms operation latency), so per-operation latencies shrink
// with the same factor as the region sizes, keeping the latency:transfer
// balance. Bandwidths are physical properties and stay unscaled.
func scaledModel(n int) simio.Model {
	m := simio.DefaultModel()
	factor := float64(RegionSweep(n, 6)[0].Bytes) / float64(4<<20)
	if factor > 1 {
		factor = 1
	}
	for _, tier := range []simio.Tier{simio.BurstBuffer, simio.PFS} {
		p := m.Tiers[tier]
		p.ReadLatency = time.Duration(float64(p.ReadLatency) * factor)
		p.WriteLatency = time.Duration(float64(p.WriteLatency) * factor)
		m.Tiers[tier] = p
	}
	return m
}

// bestRegion returns the sweep entry the paper found optimal (its 32 MB
// step), falling back to the last available step on merged sweeps.
func bestRegion(n int) RegionSize {
	sweep := RegionSweep(n, 6)
	idx := 3
	if idx >= len(sweep) {
		idx = len(sweep) - 1
	}
	return sweep[idx]
}

// vpicIDs holds the imported VPIC object handles.
type vpicIDs struct {
	Energy, X, Y, Z object.ID
	ByName          map[string]object.ID
}

// deployVPIC imports the dataset into a fresh deployment.
func deployVPIC(v *workload.VPIC, servers int, regionBytes int64, withIndex, withSorted bool) (*core.Deployment, vpicIDs, error) {
	model := scaledModel(v.N)
	factor := float64(RegionSweep(v.N, 6)[0].Bytes) / float64(4<<20)
	if factor > 1 {
		factor = 1
	}
	d := core.NewDeployment(core.Options{
		Servers:     servers,
		RegionBytes: regionBytes,
		BuildIndex:  withIndex,
		Model:       &model,
		WireScale:   factor,
	})
	c := d.CreateContainer("vpic")
	ids := vpicIDs{ByName: map[string]object.ID{}}
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(v.N)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			return nil, ids, err
		}
		ids.ByName[name] = o.ID
	}
	ids.Energy = ids.ByName["Energy"]
	ids.X, ids.Y, ids.Z = ids.ByName["x"], ids.ByName["y"], ids.ByName["z"]
	if withSorted {
		if err := d.BuildSortedReplica(ids.Energy); err != nil {
			return nil, ids, err
		}
	}
	if err := d.Start(); err != nil {
		return nil, ids, err
	}
	return d, ids, nil
}

// deployVPICCompanions is deployVPIC with co-sorted x/y/z companions
// added to the Energy replica before the servers start.
func deployVPICCompanions(v *workload.VPIC, servers int, regionBytes int64) (*core.Deployment, vpicIDs, error) {
	model := scaledModel(v.N)
	factor := float64(RegionSweep(v.N, 6)[0].Bytes) / float64(4<<20)
	if factor > 1 {
		factor = 1
	}
	d := core.NewDeployment(core.Options{
		Servers:     servers,
		RegionBytes: regionBytes,
		Model:       &model,
		WireScale:   factor,
	})
	c := d.CreateContainer("vpic")
	ids := vpicIDs{ByName: map[string]object.ID{}}
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(v.N)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			return nil, ids, err
		}
		ids.ByName[name] = o.ID
	}
	ids.Energy = ids.ByName["Energy"]
	ids.X, ids.Y, ids.Z = ids.ByName["x"], ids.ByName["y"], ids.ByName["z"]
	if err := d.BuildSortedReplica(ids.Energy); err != nil {
		return nil, ids, err
	}
	if err := d.AddCompanions(ids.Energy, ids.X, ids.Y, ids.Z); err != nil {
		return nil, ids, err
	}
	if err := d.Start(); err != nil {
		return nil, ids, err
	}
	return d, ids, nil
}

// secs formats a duration as seconds with microsecond resolution (the
// modeled times of the scaled experiments are far below the paper's
// hundreds of seconds; the shapes, not the magnitudes, carry over).
func secs(d time.Duration) string {
	return fmt.Sprintf("%11.6f", d.Seconds())
}

// printHeader writes a figure banner.
func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}
