package bench

import (
	"fmt"
	"io"
	"time"

	"pdcquery/internal/workload"
)

// Fig6Row is one (server count, approach) scalability measurement.
type Fig6Row struct {
	Servers     int
	Selectivity float64
	NHits       uint64
	Time        map[string]time.Duration
}

// fig6Approaches are the three optimized strategies the paper scales.
var fig6Approaches = []string{"PDC-H", "PDC-HI", "PDC-SH"}

// Fig6Run reproduces Fig. 6: one multi-object query (the paper's has
// 0.011% selectivity; we use the middle of the six-query set) evaluated
// with 32..512 PDC servers. More servers means fewer regions per server,
// so query time must fall.
func Fig6Run(c Config) ([]Fig6Row, error) {
	n := 1 << c.LogN
	v := workload.GenerateVPIC(n, c.Seed)
	// The smallest region size of the sweep gives every server work even
	// at 512 servers.
	rs := RegionSweep(n, 6)[0]

	var rows []Fig6Row
	for _, nsrv := range c.Fig6Servers {
		d, ids, err := deployVPIC(v, nsrv, rs.Bytes, true, true)
		if err != nil {
			return nil, err
		}
		q := workload.Fig6Query(ids.Energy, ids.X, ids.Y, ids.Z)
		row := Fig6Row{Servers: nsrv, Time: make(map[string]time.Duration)}
		for _, name := range fig6Approaches {
			d.SetStrategy(pdcStrategies[name])
			d.ResetCaches()
			res, err := d.Client().Run(q)
			if err != nil {
				d.Close()
				return nil, err
			}
			if c.Verify {
				truth, err := d.GroundTruth(q)
				if err != nil {
					d.Close()
					return nil, err
				}
				if truth.NHits != res.Sel.NHits {
					d.Close()
					return nil, fmt.Errorf("fig6 %s nsrv=%d: %d hits, truth %d", name, nsrv, res.Sel.NHits, truth.NHits)
				}
			}
			row.Time[name] = res.Info.Elapsed.Total()
			row.NHits = res.Sel.NHits
			row.Selectivity = 100 * float64(res.Sel.NHits) / float64(n)
		}
		d.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Print renders the table.
func Fig6Print(w io.Writer, rows []Fig6Row) {
	printHeader(w, "Fig. 6: scalability of a multi-object query")
	if len(rows) > 0 {
		fmt.Fprintf(w, "query selectivity: %.4f%% (%d hits)\n", rows[0].Selectivity, rows[0].NHits)
	}
	fmt.Fprintf(w, "%-10s", "servers")
	for _, a := range fig6Approaches {
		fmt.Fprintf(w, " %10s", a)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d", r.Servers)
		for _, a := range fig6Approaches {
			fmt.Fprintf(w, " %s", secs(r.Time[a]))
		}
		fmt.Fprintln(w)
	}
}

// Fig6 runs and prints the experiment.
func Fig6(w io.Writer, c Config) error {
	rows, err := Fig6Run(c)
	if err != nil {
		return err
	}
	Fig6Print(w, rows)
	return nil
}
