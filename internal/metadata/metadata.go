// Package metadata implements the ODMS metadata service: object and
// container registration, key-value tags with an inverted index for tag
// queries, per-object server ownership, and snapshot persistence.
//
// As in §II of the paper, metadata are managed as small in-memory objects,
// each owned by exactly one server (for consistency) and periodically
// persisted for fault tolerance. The tag query path (PDCquery_tag) is what
// lets the Fig. 5 experiment "locate the 1000 objects instantly" before
// running the data query.
package metadata

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"pdcquery/internal/object"
	"pdcquery/internal/vclock"
)

// TagCond is one metadata equality condition, e.g. RADEG=153.17.
type TagCond struct {
	Key   string
	Value string
}

// String formats the condition.
func (c TagCond) String() string { return c.Key + "=" + c.Value }

// Service is the in-memory metadata store. It is safe for concurrent use.
type Service struct {
	mu         sync.RWMutex
	containers map[object.ContainerID]*object.Container
	objects    map[object.ID]*object.Object
	byName     map[string]object.ID
	tagIdx     map[string]map[string][]object.ID
	nextCID    object.ContainerID
	nextOID    object.ID
	gen        uint64
}

// lookupCost is the modeled latency of one metadata operation (in-memory
// hash lookups on the owning server).
const lookupCost = 5 * time.Microsecond

// NewService returns an empty metadata service.
func NewService() *Service {
	return &Service{
		containers: make(map[object.ContainerID]*object.Container),
		objects:    make(map[object.ID]*object.Object),
		byName:     make(map[string]object.ID),
		tagIdx:     make(map[string]map[string][]object.ID),
		nextCID:    1,
		nextOID:    1,
	}
}

// CreateContainer registers a new container.
func (s *Service) CreateContainer(name string) *object.Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &object.Container{ID: s.nextCID, Name: name}
	s.nextCID++
	s.gen++
	s.containers[c.ID] = c
	return c
}

// Gen returns the metadata generation: a counter bumped by every
// mutation (container/object creation, tagging, restore). Prepared
// query plans are valid only for the generation they were built
// against — the plan cache compares generations to invalidate.
func (s *Service) Gen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// BumpGen marks an out-of-band metadata mutation (e.g. region metadata
// attached directly to an object by an import path) so cached plans
// built against the old shape are invalidated.
func (s *Service) BumpGen() {
	s.mu.Lock()
	s.gen++
	s.mu.Unlock()
}

// CreateObject allocates an ID and registers an object described by prop
// in the given container. Region metadata is attached later by the import
// or write path. Object names must be unique.
func (s *Service) CreateObject(cid object.ContainerID, prop object.Property) (*object.Object, error) {
	if err := prop.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.containers[cid]; !ok {
		return nil, fmt.Errorf("metadata: container %d not found", cid)
	}
	if _, dup := s.byName[prop.Name]; dup {
		return nil, fmt.Errorf("metadata: object %q already exists", prop.Name)
	}
	o := &object.Object{
		ID:        s.nextOID,
		Container: cid,
		Name:      prop.Name,
		Type:      prop.Type,
		Dims:      append([]uint64(nil), prop.Dims...),
		Tags:      make(map[string]string),
	}
	s.nextOID++
	s.gen++
	s.objects[o.ID] = o
	s.byName[o.Name] = o.ID
	for k, v := range prop.Tags {
		o.Tags[k] = v
		s.indexTagLocked(o.ID, k, v)
	}
	return o, nil
}

func (s *Service) indexTagLocked(id object.ID, k, v string) {
	vm, ok := s.tagIdx[k]
	if !ok {
		vm = make(map[string][]object.ID)
		s.tagIdx[k] = vm
	}
	vm[v] = append(vm[v], id)
}

// AddTag attaches (or replaces) a tag on an object and updates the
// inverted index.
func (s *Service) AddTag(id object.ID, key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("metadata: object %d not found", id)
	}
	if old, had := o.Tags[key]; had {
		ids := s.tagIdx[key][old]
		for i, x := range ids {
			if x == id {
				s.tagIdx[key][old] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	}
	o.Tags[key] = value
	s.indexTagLocked(id, key, value)
	s.gen++
	return nil
}

// Get returns the object with the given ID.
func (s *Service) Get(id object.ID) (*object.Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[id]
	return o, ok
}

// GetByName returns the object with the given name.
func (s *Service) GetByName(name string) (*object.Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.objects[id], true
}

// Objects returns all objects sorted by ID.
func (s *Service) Objects() []*object.Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*object.Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumObjects returns the number of registered objects.
func (s *Service) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// TagQuery returns the IDs of objects matching ALL the given tag
// conditions (the paper's metadata query, e.g. "RADEG=153.17 AND
// DECDEG=23.06"), in ascending ID order. The cost of the index lookups is
// charged to a (which may be nil).
func (s *Service) TagQuery(a *vclock.Account, conds []TagCond) []object.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if a != nil {
		a.Charge(vclock.Meta, time.Duration(len(conds)+1)*lookupCost)
		a.Count("meta.tagquery", 1)
	}
	if len(conds) == 0 {
		return nil
	}
	// Start from the smallest candidate list (cheapest intersection).
	lists := make([][]object.ID, len(conds))
	for i, c := range conds {
		lists[i] = s.tagIdx[c.Key][c.Value]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	result := make(map[object.ID]int, len(lists[0]))
	for _, id := range lists[0] {
		result[id] = 1
	}
	for _, l := range lists[1:] {
		for _, id := range l {
			if n, ok := result[id]; ok {
				result[id] = n + 1
			}
		}
	}
	out := make([]object.ID, 0, len(result))
	for id, n := range result {
		if n == len(lists) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if a != nil {
		a.Charge(vclock.Meta, time.Duration(len(out))*time.Microsecond/10)
	}
	return out
}

// OwnerOf returns the index of the server owning an object's metadata,
// for a cluster of n servers. Each metadata object has exactly one owner
// (§II); the assignment is a stable hash of the ID.
func OwnerOf(id object.ID, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// snapshot is the gob-encoded persistent form.
type snapshot struct {
	Containers []*object.Container
	Objects    []*object.Object
	NextCID    object.ContainerID
	NextOID    object.ID
}

// Snapshot serializes the full metadata state (the paper's periodic
// persistence for fault tolerance).
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.RLock()
	snap := snapshot{NextCID: s.nextCID, NextOID: s.nextOID}
	for _, c := range s.containers {
		snap.Containers = append(snap.Containers, c)
	}
	for _, o := range s.objects {
		snap.Objects = append(snap.Objects, o)
	}
	s.mu.RUnlock()
	sort.Slice(snap.Containers, func(i, j int) bool { return snap.Containers[i].ID < snap.Containers[j].ID })
	sort.Slice(snap.Objects, func(i, j int) bool { return snap.Objects[i].ID < snap.Objects[j].ID })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("metadata: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the service state with a snapshot produced by Snapshot.
func (s *Service) Restore(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("metadata: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.containers = make(map[object.ContainerID]*object.Container, len(snap.Containers))
	s.objects = make(map[object.ID]*object.Object, len(snap.Objects))
	s.byName = make(map[string]object.ID, len(snap.Objects))
	s.tagIdx = make(map[string]map[string][]object.ID)
	s.nextCID = snap.NextCID
	s.nextOID = snap.NextOID
	s.gen++
	for _, c := range snap.Containers {
		s.containers[c.ID] = c
	}
	for _, o := range snap.Objects {
		s.objects[o.ID] = o
		s.byName[o.Name] = o.ID
		for k, v := range o.Tags {
			s.indexTagLocked(o.ID, k, v)
		}
	}
	return nil
}
