package metadata

import (
	"fmt"
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/vclock"
)

func newWithContainer(t *testing.T) (*Service, *object.Container) {
	t.Helper()
	s := NewService()
	c := s.CreateContainer("vpic")
	return s, c
}

func mkObj(t *testing.T, s *Service, cid object.ContainerID, name string, tags map[string]string) *object.Object {
	t.Helper()
	o, err := s.CreateObject(cid, object.Property{
		Name: name, Type: dtype.Float32, Dims: []uint64{100}, Tags: tags,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestCreateObjectAndLookup(t *testing.T) {
	s, c := newWithContainer(t)
	o := mkObj(t, s, c.ID, "energy", nil)
	if o.ID == 0 {
		t.Error("zero object ID")
	}
	got, ok := s.Get(o.ID)
	if !ok || got.Name != "energy" {
		t.Errorf("Get = %v, %v", got, ok)
	}
	got, ok = s.GetByName("energy")
	if !ok || got.ID != o.ID {
		t.Errorf("GetByName = %v, %v", got, ok)
	}
	if _, ok := s.Get(999); ok {
		t.Error("Get(999) found something")
	}
	if _, ok := s.GetByName("nope"); ok {
		t.Error("GetByName(nope) found something")
	}
	if s.NumObjects() != 1 {
		t.Errorf("NumObjects = %d", s.NumObjects())
	}
}

func TestCreateObjectErrors(t *testing.T) {
	s, c := newWithContainer(t)
	mkObj(t, s, c.ID, "energy", nil)
	if _, err := s.CreateObject(c.ID, object.Property{Name: "energy", Type: dtype.Float32, Dims: []uint64{1}}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.CreateObject(42, object.Property{Name: "x", Type: dtype.Float32, Dims: []uint64{1}}); err == nil {
		t.Error("unknown container accepted")
	}
	if _, err := s.CreateObject(c.ID, object.Property{Name: "", Type: dtype.Float32, Dims: []uint64{1}}); err == nil {
		t.Error("invalid property accepted")
	}
}

func TestUniqueIDs(t *testing.T) {
	s, c := newWithContainer(t)
	seen := map[object.ID]bool{}
	for i := 0; i < 100; i++ {
		o := mkObj(t, s, c.ID, fmt.Sprintf("obj%d", i), nil)
		if seen[o.ID] {
			t.Fatalf("duplicate ID %d", o.ID)
		}
		seen[o.ID] = true
	}
	objs := s.Objects()
	if len(objs) != 100 {
		t.Fatalf("Objects() = %d", len(objs))
	}
	for i := 1; i < len(objs); i++ {
		if objs[i].ID <= objs[i-1].ID {
			t.Fatal("Objects() not sorted by ID")
		}
	}
}

func TestTagQuerySingleCondition(t *testing.T) {
	s, c := newWithContainer(t)
	var want []object.ID
	for i := 0; i < 30; i++ {
		tags := map[string]string{"RADEG": fmt.Sprintf("%d", i%3)}
		o := mkObj(t, s, c.ID, fmt.Sprintf("fiber%d", i), tags)
		if i%3 == 1 {
			want = append(want, o.ID)
		}
	}
	a := vclock.NewAccount()
	got := s.TagQuery(a, []TagCond{{"RADEG", "1"}})
	if len(got) != len(want) {
		t.Fatalf("TagQuery = %d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hit %d = %d, want %d", i, got[i], want[i])
		}
	}
	if a.Cost().Part(vclock.Meta) == 0 {
		t.Error("tag query charged no metadata cost")
	}
}

func TestTagQueryConjunction(t *testing.T) {
	s, c := newWithContainer(t)
	// 1000-object groups sharing RADEG/DECDEG, as in the BOSS experiment.
	var want []object.ID
	for i := 0; i < 3000; i++ {
		ra := fmt.Sprintf("%.2f", 150.0+float64(i/1000))
		dec := fmt.Sprintf("%.2f", 20.0+float64(i%3))
		o := mkObj(t, s, c.ID, fmt.Sprintf("f%d", i), map[string]string{"RADEG": ra, "DECDEG": dec})
		if ra == "151.00" && dec == "21.00" {
			want = append(want, o.ID)
		}
	}
	got := s.TagQuery(nil, []TagCond{{"RADEG", "151.00"}, {"DECDEG", "21.00"}})
	if len(got) != len(want) {
		t.Fatalf("conjunction = %d hits, want %d", len(got), len(want))
	}
	// No match at all.
	if got := s.TagQuery(nil, []TagCond{{"RADEG", "151.00"}, {"DECDEG", "99"}}); len(got) != 0 {
		t.Errorf("impossible conjunction returned %d hits", len(got))
	}
	// Unknown key.
	if got := s.TagQuery(nil, []TagCond{{"NOPE", "1"}}); len(got) != 0 {
		t.Errorf("unknown key returned %d hits", len(got))
	}
	// Empty condition list.
	if got := s.TagQuery(nil, nil); got != nil {
		t.Errorf("empty conditions returned %v", got)
	}
}

func TestAddTagReplaces(t *testing.T) {
	s, c := newWithContainer(t)
	o := mkObj(t, s, c.ID, "obj", map[string]string{"k": "v1"})
	if got := s.TagQuery(nil, []TagCond{{"k", "v1"}}); len(got) != 1 {
		t.Fatalf("initial tag not indexed: %v", got)
	}
	if err := s.AddTag(o.ID, "k", "v2"); err != nil {
		t.Fatal(err)
	}
	if got := s.TagQuery(nil, []TagCond{{"k", "v1"}}); len(got) != 0 {
		t.Errorf("stale tag still indexed: %v", got)
	}
	if got := s.TagQuery(nil, []TagCond{{"k", "v2"}}); len(got) != 1 {
		t.Errorf("new tag not indexed: %v", got)
	}
	if err := s.AddTag(999, "k", "v"); err == nil {
		t.Error("AddTag on missing object succeeded")
	}
}

func TestOwnerOfStableAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 64, 512} {
		counts := make([]int, n)
		for id := object.ID(1); id <= 2048; id++ {
			o1 := OwnerOf(id, n)
			o2 := OwnerOf(id, n)
			if o1 != o2 {
				t.Fatalf("OwnerOf not stable for id %d", id)
			}
			if o1 < 0 || o1 >= n {
				t.Fatalf("OwnerOf(%d, %d) = %d out of range", id, n, o1)
			}
			counts[o1]++
		}
		if n == 64 {
			// Rough balance: no server owns more than 4x the mean.
			mean := 2048 / n
			for srv, got := range counts {
				if got > 4*mean {
					t.Errorf("server %d owns %d objects (mean %d)", srv, got, mean)
				}
			}
		}
	}
	if OwnerOf(5, 0) != 0 {
		t.Error("OwnerOf with 0 servers != 0")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, c := newWithContainer(t)
	for i := 0; i < 10; i++ {
		mkObj(t, s, c.ID, fmt.Sprintf("obj%d", i), map[string]string{"grp": fmt.Sprintf("%d", i%2)})
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	s2 := NewService()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.NumObjects() != 10 {
		t.Fatalf("restored objects = %d", s2.NumObjects())
	}
	if got := s2.TagQuery(nil, []TagCond{{"grp", "1"}}); len(got) != 5 {
		t.Errorf("restored tag index: %d hits, want 5", len(got))
	}
	// ID allocation continues after the snapshot point.
	o, err := s2.CreateObject(c.ID, object.Property{Name: "new", Type: dtype.Float64, Dims: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, exists := s.Get(o.ID); exists {
		t.Errorf("restored service reused a live ID %d", o.ID)
	}
	if err := s2.Restore([]byte("garbage")); err == nil {
		t.Error("Restore(garbage) succeeded")
	}
}
