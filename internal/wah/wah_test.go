package wah

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// naive is a plain boolean-slice reference implementation.
type naive []bool

func (n naive) indices() []uint64 {
	var out []uint64
	for i, v := range n {
		if v {
			out = append(out, uint64(i))
		}
	}
	return out
}

func randNaive(rng *rand.Rand, n int, density float64) naive {
	out := make(naive, n)
	for i := range out {
		out[i] = rng.Float64() < density
	}
	return out
}

func fromNaive(n naive) *Bitmap {
	var bd Builder
	for _, v := range n {
		bd.AppendBit(v)
	}
	return bd.Build()
}

func TestEmptyAndFull(t *testing.T) {
	e := Empty(100)
	if e.NumBits() != 100 || e.Cardinality() != 0 {
		t.Errorf("Empty: bits=%d card=%d", e.NumBits(), e.Cardinality())
	}
	f := Full(100)
	if f.NumBits() != 100 || f.Cardinality() != 100 {
		t.Errorf("Full: bits=%d card=%d", f.NumBits(), f.Cardinality())
	}
	// A 100-bit full bitmap compresses to ~2 words (fill + tail literal).
	if f.SizeBytes() > 12 {
		t.Errorf("Full(100) size = %d bytes, want <= 12", f.SizeBytes())
	}
	z := Empty(0)
	if z.NumBits() != 0 || z.Cardinality() != 0 {
		t.Errorf("Empty(0): %d bits %d card", z.NumBits(), z.Cardinality())
	}
}

func TestFromIndicesRoundTrip(t *testing.T) {
	idx := []uint64{0, 5, 30, 31, 32, 62, 63, 99}
	b := FromIndices(idx, 100)
	if got := b.ToIndices(); !reflect.DeepEqual(got, idx) {
		t.Errorf("round trip = %v, want %v", got, idx)
	}
	if b.Cardinality() != uint64(len(idx)) {
		t.Errorf("cardinality = %d, want %d", b.Cardinality(), len(idx))
	}
	for _, i := range idx {
		if !b.Test(i) {
			t.Errorf("Test(%d) = false", i)
		}
	}
	if b.Test(1) || b.Test(98) || b.Test(1000) {
		t.Error("Test reports unset bits as set")
	}
}

func TestFromIndicesPanics(t *testing.T) {
	for name, idx := range map[string][]uint64{
		"unsorted":     {5, 3},
		"duplicate":    {5, 5},
		"out of range": {100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			FromIndices(idx, 100)
		}()
	}
}

func TestLongRunsCompress(t *testing.T) {
	// One set bit in a million: should compress to a handful of words.
	b := FromIndices([]uint64{500000}, 1000000)
	if b.SizeBytes() > 64 {
		t.Errorf("sparse bitmap size = %d bytes", b.SizeBytes())
	}
	if b.Cardinality() != 1 || !b.Test(500000) {
		t.Error("sparse bitmap content wrong")
	}
}

func TestAppendRunMixed(t *testing.T) {
	var bd Builder
	bd.AppendRun(false, 10)
	bd.AppendRun(true, 50)
	bd.AppendBit(false)
	bd.AppendRun(true, 3)
	b := bd.Build()
	if b.NumBits() != 64 {
		t.Fatalf("bits = %d, want 64", b.NumBits())
	}
	want := uint64(53)
	if b.Cardinality() != want {
		t.Errorf("cardinality = %d, want %d", b.Cardinality(), want)
	}
	for i := uint64(0); i < 64; i++ {
		wantBit := (i >= 10 && i < 60) || i >= 61
		if b.Test(i) != wantBit {
			t.Errorf("bit %d = %v, want %v", i, b.Test(i), wantBit)
		}
	}
}

func TestBooleanOpsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 31, 32, 62, 100, 1000} {
		for _, density := range []float64{0, 0.01, 0.5, 0.99, 1} {
			na := randNaive(rng, n, density)
			nb := randNaive(rng, n, 1-density)
			a, b := fromNaive(na), fromNaive(nb)

			check := func(name string, got *Bitmap, op func(x, y bool) bool) {
				t.Helper()
				if got.NumBits() != uint64(n) {
					t.Fatalf("%s n=%d: bits = %d", name, n, got.NumBits())
				}
				for i := 0; i < n; i++ {
					want := op(na[i], nb[i])
					if got.Test(uint64(i)) != want {
						t.Fatalf("%s n=%d density=%v bit %d = %v, want %v",
							name, n, density, i, got.Test(uint64(i)), want)
					}
				}
			}
			check("and", And(a, b), func(x, y bool) bool { return x && y })
			check("or", Or(a, b), func(x, y bool) bool { return x || y })
			check("xor", Xor(a, b), func(x, y bool) bool { return x != y })
			check("andnot", AndNot(a, b), func(x, y bool) bool { return x && !y })
			check("not", Not(a), func(x, _ bool) bool { return !x })
		}
	}
}

func TestOpsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched lengths did not panic")
		}
	}()
	And(Empty(10), Empty(11))
}

func TestOrAll(t *testing.T) {
	if OrAll(nil) != nil {
		t.Error("OrAll(nil) != nil")
	}
	a := FromIndices([]uint64{1}, 10)
	b := FromIndices([]uint64{5}, 10)
	c := FromIndices([]uint64{9}, 10)
	u := OrAll([]*Bitmap{a, b, c})
	if got := u.ToIndices(); !reflect.DeepEqual(got, []uint64{1, 5, 9}) {
		t.Errorf("OrAll = %v", got)
	}
	single := OrAll([]*Bitmap{a})
	if single.Cardinality() != 1 || !single.Test(1) {
		t.Error("OrAll single wrong")
	}
}

func TestForEachOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := randNaive(rng, 500, 0.3)
	b := fromNaive(n)
	var got []uint64
	b.ForEach(func(i uint64) { got = append(got, i) })
	want := n.indices()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach = %v, want %v", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 100, 4096} {
		nv := randNaive(rng, n, 0.2)
		b := fromNaive(nv)
		enc := b.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumBits() != b.NumBits() || got.Cardinality() != b.Cardinality() {
			t.Fatalf("n=%d: decode mismatch", n)
		}
		if !reflect.DeepEqual(got.ToIndices(), b.ToIndices()) {
			t.Fatalf("n=%d: decoded indices differ", n)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	b := Full(100).Encode()
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("Decode(truncated) succeeded")
	}
}

func TestVeryLongFill(t *testing.T) {
	// Exceed one fill word's capacity (2^30-1 groups * 31 bits); use runs
	// long enough to need merging logic but stay fast.
	var bd Builder
	const n = 10 * 1000 * 1000
	bd.AppendRun(true, n)
	bd.AppendRun(false, n)
	b := bd.Build()
	if b.Cardinality() != n {
		t.Errorf("cardinality = %d, want %d", b.Cardinality(), uint64(n))
	}
	if b.SizeBytes() > 32 {
		t.Errorf("two-run bitmap size = %d bytes", b.SizeBytes())
	}
	if !b.Test(n-1) || b.Test(n) {
		t.Error("fill boundary bits wrong")
	}
}

func TestPropertyOrCardinalityBounds(t *testing.T) {
	f := func(seedsA, seedsB []uint16) bool {
		const n = 2000
		ia := uniqueSorted(seedsA, n)
		ib := uniqueSorted(seedsB, n)
		a := FromIndices(ia, n)
		b := FromIndices(ib, n)
		or := Or(a, b)
		and := And(a, b)
		// |A∪B| + |A∩B| = |A| + |B|
		return or.Cardinality()+and.Cardinality() == a.Cardinality()+b.Cardinality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	f := func(seedsA, seedsB []uint16) bool {
		const n = 1500
		a := FromIndices(uniqueSorted(seedsA, n), n)
		b := FromIndices(uniqueSorted(seedsB, n), n)
		// NOT(A OR B) == NOT A AND NOT B
		lhs := Not(Or(a, b))
		rhs := And(Not(a), Not(b))
		return reflect.DeepEqual(lhs.ToIndices(), rhs.ToIndices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// uniqueSorted maps arbitrary fuzz input to strictly increasing indices
// below n.
func uniqueSorted(seeds []uint16, n uint64) []uint64 {
	seen := make(map[uint64]bool)
	for _, s := range seeds {
		seen[uint64(s)%n] = true
	}
	out := make([]uint64, 0, len(seen))
	for i := uint64(0); i < n; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}
