package wah_test

import (
	"fmt"

	"pdcquery/internal/wah"
)

// Example shows the compression behaviour WAH is chosen for: long runs
// (clustered scientific data) collapse into fill words.
func Example() {
	var b wah.Builder
	b.AppendRun(false, 1_000_000) // a million zeros...
	b.AppendRun(true, 1000)       // ...then a burst of matches
	b.AppendRun(false, 1_000_000)
	bm := b.Build()
	fmt.Printf("bits: %d, set: %d, compressed size: %d bytes\n",
		bm.NumBits(), bm.Cardinality(), bm.SizeBytes())

	// Boolean algebra stays in compressed form.
	other := wah.FromIndices([]uint64{999_999, 1_000_000}, bm.NumBits())
	and := wah.And(bm, other)
	fmt.Printf("intersection: %v\n", and.ToIndices())
	// Output:
	// bits: 2001000, set: 1000, compressed size: 20 bytes
	// intersection: [1000000]
}
