package wah

import (
	"math/rand"
	"testing"
)

func benchBitmap(n int, density float64, seed int64) *Bitmap {
	rng := rand.New(rand.NewSource(seed))
	var idx []uint64
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			idx = append(idx, uint64(i))
		}
	}
	return FromIndices(idx, uint64(n))
}

func BenchmarkFromIndicesSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var idx []uint64
	for i := 0; i < 1<<20; i++ {
		if rng.Float64() < 0.001 {
			idx = append(idx, uint64(i))
		}
	}
	b.SetBytes(1 << 17) // bitmap bits in bytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromIndices(idx, 1<<20)
	}
}

func BenchmarkAnd(b *testing.B) {
	x := benchBitmap(1<<20, 0.01, 3)
	y := benchBitmap(1<<20, 0.01, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(x, y)
	}
}

func BenchmarkOrClustered(b *testing.B) {
	var bd1, bd2 Builder
	bd1.AppendRun(false, 1<<19)
	bd1.AppendRun(true, 1<<10)
	bd1.AppendRun(false, (1<<20)-(1<<19)-(1<<10))
	bd2.AppendRun(true, 1<<10)
	bd2.AppendRun(false, (1<<20)-(1<<10))
	x, y := bd1.Build(), bd2.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Or(x, y)
	}
}

func BenchmarkCardinality(b *testing.B) {
	x := benchBitmap(1<<20, 0.05, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Cardinality()
	}
}
