package wah

import (
	"testing"
)

// allocTestOperands builds two bitmaps with a mix of fills and literals
// so the Into paths exercise every appendGroup/appendFill branch.
func allocTestOperands() (a, b *Bitmap) {
	const nbits = 1 << 14
	a = FromIndices([]uint64{1, 5, 100, 101, 3000, 3001, 9000}, nbits)
	b = FromIndices([]uint64{5, 99, 100, 2999, 3001, 9000, 16383}, nbits)
	return a, b
}

// TestIntoVariantsMatch pins AndInto/OrInto against And/Or, including
// repeated reuse of the same destination (stale contents must not leak).
func TestIntoVariantsMatch(t *testing.T) {
	a, b := allocTestOperands()
	wantAnd := And(a, b).ToIndices()
	wantOr := Or(a, b).ToIndices()
	var dst *Bitmap
	for i := 0; i < 3; i++ {
		dst = AndInto(dst, a, b)
		if got := dst.ToIndices(); !equalU64(got, wantAnd) {
			t.Fatalf("AndInto round %d = %v, want %v", i, got, wantAnd)
		}
	}
	dst = nil
	for i := 0; i < 3; i++ {
		dst = OrInto(dst, a, b)
		if got := dst.ToIndices(); !equalU64(got, wantOr) {
			t.Fatalf("OrInto round %d = %v, want %v", i, got, wantOr)
		}
	}
	// Passing an operand as dst must still be correct (it falls back to a
	// fresh result instead of clobbering its own input).
	res := AndInto(a, a, b)
	if res == a {
		t.Fatal("AndInto reused an operand as its destination")
	}
	if got := res.ToIndices(); !equalU64(got, wantAnd) {
		t.Fatalf("AndInto(a, a, b) = %v, want %v", got, wantAnd)
	}
}

// TestAndOrIntoZeroAlloc pins the hot-loop contract: once the
// destination bitmap has warmed to the result size, group iteration
// plus combine performs zero heap allocations per operation.
func TestAndOrIntoZeroAlloc(t *testing.T) {
	a, b := allocTestOperands()
	dst := AndInto(nil, a, b)
	if n := testing.AllocsPerRun(200, func() { dst = AndInto(dst, a, b) }); n != 0 {
		t.Errorf("AndInto with warm dst allocated %.1f/op, want 0", n)
	}
	dst = OrInto(nil, a, b)
	if n := testing.AllocsPerRun(200, func() { dst = OrInto(dst, a, b) }); n != 0 {
		t.Errorf("OrInto with warm dst allocated %.1f/op, want 0", n)
	}
}

// TestToIndicesIntoZeroAlloc pins set-bit materialization: with a warm
// index buffer the WAH walk is allocation-free.
func TestToIndicesIntoZeroAlloc(t *testing.T) {
	a, b := allocTestOperands()
	u := Or(a, b)
	buf := u.ToIndicesInto(nil)
	if !equalU64(buf, u.ToIndices()) {
		t.Fatalf("ToIndicesInto = %v, want %v", buf, u.ToIndices())
	}
	if n := testing.AllocsPerRun(200, func() { buf = u.ToIndicesInto(buf) }); n != 0 {
		t.Errorf("ToIndicesInto with warm buffer allocated %.1f/op, want 0", n)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
