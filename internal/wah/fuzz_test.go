package wah

import (
	"bytes"
	"testing"
)

// FuzzWAHRoundTrip drives the builder with an arbitrary bit pattern plus
// an arbitrary run, then checks that Encode/Decode is lossless and that
// the compressed form agrees with a bitmap rebuilt from the extracted
// indices. The raw input is also fed straight to Decode to exercise the
// malformed-buffer paths.
func FuzzWAHRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0xff, 0x00, 0xaa}, uint64(3))
	f.Add([]byte{0x01}, uint64(1<<20))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint64(31))
	f.Fuzz(func(t *testing.T, raw []byte, run uint64) {
		var bd Builder
		for _, b := range raw {
			for j := 0; j < 8; j++ {
				bd.AppendBit(b&(1<<j) != 0)
			}
		}
		bd.AppendRun(run%2 == 0, run%(1<<16))
		bm := bd.Build()

		enc := bm.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode()) failed: %v", err)
		}
		if got.NumBits() != bm.NumBits() {
			t.Fatalf("nbits %d != %d after round trip", got.NumBits(), bm.NumBits())
		}
		if got.Cardinality() != bm.Cardinality() {
			t.Fatalf("cardinality %d != %d after round trip", got.Cardinality(), bm.Cardinality())
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatal("re-encoding is not stable")
		}

		idx := bm.ToIndices()
		if uint64(len(idx)) != bm.Cardinality() {
			t.Fatalf("ToIndices returned %d indices, cardinality %d", len(idx), bm.Cardinality())
		}
		rebuilt := FromIndices(idx, bm.NumBits())
		if rebuilt.Cardinality() != bm.Cardinality() {
			t.Fatalf("FromIndices(ToIndices()) cardinality %d != %d", rebuilt.Cardinality(), bm.Cardinality())
		}

		// Arbitrary bytes must never crash the decoder; on success the
		// result must re-encode to the same bytes.
		if alt, err := Decode(raw); err == nil {
			if !bytes.Equal(alt.Encode(), raw) {
				t.Fatal("accepted buffer does not re-encode identically")
			}
		}
	})
}
