// Package wah implements 32-bit Word-Aligned Hybrid (WAH) compressed
// bitmaps, the compression used by FastBit and by the paper's bitmap index
// (§III-D4).
//
// A WAH bitmap is a sequence of 32-bit words. A word with its most
// significant bit clear is a literal holding the next 31 bits of the
// bitmap. A word with its MSB set is a fill: bit 30 is the fill value and
// the low 30 bits count how many 31-bit groups the fill spans. Long runs
// of identical bits — the common case for bin bitmaps over clustered
// scientific data — compress to a single word.
package wah

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const (
	groupBits  = 31
	fillFlag   = uint32(1) << 31
	fillValue  = uint32(1) << 30
	maxFillLen = fillValue - 1 // max groups representable by one fill word
	literalAll = uint32(1)<<groupBits - 1
)

// Bitmap is an immutable WAH-compressed bitmap. Build one with a Builder
// or FromIndices. The zero value is an empty bitmap.
type Bitmap struct {
	words []uint32
	nbits uint64
}

// NumBits returns the logical length of the bitmap in bits.
func (b *Bitmap) NumBits() uint64 { return b.nbits }

// SizeBytes returns the compressed size in bytes.
func (b *Bitmap) SizeBytes() int { return 4 * len(b.words) }

// Cardinality returns the number of set bits.
func (b *Bitmap) Cardinality() uint64 {
	var n uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			if w&fillValue != 0 {
				n += uint64(w&maxFillLen) * groupBits
			}
		} else {
			n += uint64(bits.OnesCount32(w))
		}
	}
	// Tail bits beyond nbits are kept zero by the builder, so no
	// correction is needed.
	return n
}

// ForEach calls fn with the index of every set bit in increasing order.
func (b *Bitmap) ForEach(fn func(idx uint64)) {
	var pos uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			span := uint64(w&maxFillLen) * groupBits
			if w&fillValue != 0 {
				end := pos + span
				if end > b.nbits {
					end = b.nbits
				}
				for i := pos; i < end; i++ {
					fn(i)
				}
			}
			pos += span
		} else {
			for g := w; g != 0; {
				t := bits.TrailingZeros32(g)
				idx := pos + uint64(t)
				if idx < b.nbits {
					fn(idx)
				}
				g &^= 1 << t
			}
			pos += groupBits
		}
	}
}

// ToIndices returns the sorted indices of all set bits.
func (b *Bitmap) ToIndices() []uint64 {
	return b.ToIndicesInto(nil)
}

// ToIndicesInto appends the sorted indices of all set bits to dst[:0]
// and returns it, growing dst only when its capacity is short — the
// reusable-buffer variant the per-region hot loop uses to stay
// allocation-free once warm. The loop is ForEach unrolled: a closure
// over an append target would itself allocate.
func (b *Bitmap) ToIndicesInto(dst []uint64) []uint64 {
	card := b.Cardinality()
	if uint64(cap(dst)) < card {
		dst = make([]uint64, 0, card)
	}
	out := dst[:0]
	var pos uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			span := uint64(w&maxFillLen) * groupBits
			if w&fillValue != 0 {
				end := pos + span
				if end > b.nbits {
					end = b.nbits
				}
				for i := pos; i < end; i++ {
					out = append(out, i)
				}
			}
			pos += span
		} else {
			for g := w; g != 0; {
				t := bits.TrailingZeros32(g)
				idx := pos + uint64(t)
				if idx < b.nbits {
					out = append(out, idx)
				}
				g &^= 1 << t
			}
			pos += groupBits
		}
	}
	return out
}

// Builder assembles a WAH bitmap by appending bits or runs in order.
// The zero value is ready to use.
type Builder struct {
	words []uint32
	cur   uint32 // partial literal group being filled
	curN  uint8  // bits in cur
	nbits uint64
}

// appendGroup appends one full 31-bit group, compressing runs.
func (bd *Builder) appendGroup(g uint32) {
	switch g {
	case 0:
		bd.appendFill(false, 1)
	case literalAll:
		bd.appendFill(true, 1)
	default:
		bd.words = append(bd.words, g)
	}
}

// appendFill appends n groups of the given fill value, merging with a
// trailing fill word of the same value.
func (bd *Builder) appendFill(v bool, n uint64) {
	for n > 0 {
		if last := len(bd.words) - 1; last >= 0 {
			w := bd.words[last]
			if w&fillFlag != 0 && ((w&fillValue != 0) == v) {
				room := uint64(maxFillLen - w&maxFillLen)
				take := n
				if take > room {
					take = room
				}
				if take > 0 {
					bd.words[last] = w + uint32(take)
					n -= take
					continue
				}
			}
		}
		take := n
		if take > uint64(maxFillLen) {
			take = uint64(maxFillLen)
		}
		w := fillFlag | uint32(take)
		if v {
			w |= fillValue
		}
		bd.words = append(bd.words, w)
		n -= take
	}
}

// AppendBit appends a single bit.
func (bd *Builder) AppendBit(v bool) {
	if v {
		bd.cur |= 1 << bd.curN
	}
	bd.curN++
	bd.nbits++
	if bd.curN == groupBits {
		bd.appendGroup(bd.cur)
		bd.cur, bd.curN = 0, 0
	}
}

// AppendRun appends n copies of bit v.
func (bd *Builder) AppendRun(v bool, n uint64) {
	// Fill the partial group first.
	for n > 0 && bd.curN != 0 {
		bd.AppendBit(v)
		n--
	}
	if groups := n / groupBits; groups > 0 {
		bd.appendFill(v, groups)
		bd.nbits += groups * groupBits
		n -= groups * groupBits
	}
	for ; n > 0; n-- {
		bd.AppendBit(v)
	}
}

// Build finalizes and returns the bitmap. The builder is reset.
func (bd *Builder) Build() *Bitmap {
	if bd.curN > 0 {
		// Pad the tail group with zeros; nbits records the logical length.
		bd.appendGroup(bd.cur)
	}
	bm := &Bitmap{words: bd.words, nbits: bd.nbits}
	*bd = Builder{}
	return bm
}

// FromIndices builds a bitmap of nbits bits with the given sorted set-bit
// indices. It panics if indices are unsorted, duplicated, or out of range.
func FromIndices(indices []uint64, nbits uint64) *Bitmap {
	var bd Builder
	var pos uint64
	for _, i := range indices {
		if i < pos {
			panic(fmt.Sprintf("wah: indices not strictly increasing at %d", i))
		}
		if i >= nbits {
			panic(fmt.Sprintf("wah: index %d out of range %d", i, nbits))
		}
		bd.AppendRun(false, i-pos)
		bd.AppendBit(true)
		pos = i + 1
	}
	bd.AppendRun(false, nbits-pos)
	return bd.Build()
}

// Empty returns an all-zero bitmap of nbits bits.
func Empty(nbits uint64) *Bitmap { return FromIndices(nil, nbits) }

// Full returns an all-one bitmap of nbits bits.
func Full(nbits uint64) *Bitmap {
	var bd Builder
	bd.AppendRun(true, nbits)
	return bd.Build()
}

// groupIter iterates a bitmap group by group, exposing fills without
// materializing them.
type groupIter struct {
	words []uint32
	wi    int
	// remaining groups in the current fill (0 when on a literal)
	fillLeft uint32
	fillVal  bool
}

func (it *groupIter) done() bool { return it.wi >= len(it.words) && it.fillLeft == 0 }

// peek returns the current state: if onFill, the fill value and the number
// of remaining groups in it; otherwise the literal group payload.
func (it *groupIter) peek() (onFill bool, val bool, groups uint32, lit uint32) {
	if it.fillLeft > 0 {
		return true, it.fillVal, it.fillLeft, 0
	}
	w := it.words[it.wi]
	if w&fillFlag != 0 {
		it.fillVal = w&fillValue != 0
		it.fillLeft = w & maxFillLen
		it.wi++
		return true, it.fillVal, it.fillLeft, 0
	}
	return false, false, 1, w
}

// advance consumes n groups (n must not exceed the current run for fills;
// for literals n must be 1).
func (it *groupIter) advance(n uint32) {
	if it.fillLeft > 0 {
		it.fillLeft -= n
		return
	}
	it.wi++
}

// binary2Into combines two bitmaps group-wise with the given 32-bit
// operation, writing the result into dst when dst can be reused. Both
// bitmaps must have the same logical length.
//
// dst may be nil (a fresh bitmap is allocated, pre-sized to the worst
// case so the builder never regrows). A non-nil dst must not share
// storage with a or b; its words capacity is recycled, which makes
// repeated combines allocation-free once the buffer is warm. Callers
// that fold a chain of bitmaps ping-pong two accumulators:
//
//	acc, scratch = wah.AndInto(scratch, acc, bm), acc
func binary2Into(dst, a, b *Bitmap, op func(x, y uint32) uint32) *Bitmap {
	if a.nbits != b.nbits {
		panic(fmt.Sprintf("wah: length mismatch %d vs %d", a.nbits, b.nbits))
	}
	ia := groupIter{words: a.words}
	ib := groupIter{words: b.words}
	var bd Builder
	if dst != nil && dst != a && dst != b {
		bd.words = dst.words[:0]
	} else {
		// Worst case: no run in either operand survives the op, so the
		// output holds at most one word per input word.
		bd.words = make([]uint32, 0, len(a.words)+len(b.words))
	}
	for !ia.done() && !ib.done() {
		fa, va, ga, la := ia.peek()
		fb, vb, gb, lb := ib.peek()
		if fa && fb {
			n := ga
			if gb < n {
				n = gb
			}
			var x, y uint32
			if va {
				x = literalAll
			}
			if vb {
				y = literalAll
			}
			bd.appendFill2(op(x, y), uint64(n))
			ia.advance(n)
			ib.advance(n)
			continue
		}
		// Materialize exactly one group from each side.
		x := la
		if fa {
			if va {
				x = literalAll
			} else {
				x = 0
			}
		}
		y := lb
		if fb {
			if vb {
				y = literalAll
			} else {
				y = 0
			}
		}
		bd.appendGroup(op(x, y) & literalAll)
		ia.advance(1)
		ib.advance(1)
	}
	// The loop emits whole groups only, so there is no partial group to
	// pad; take the builder's words directly instead of Build (which
	// would allocate a fresh Bitmap even when dst is reusable).
	if dst == nil || dst == a || dst == b {
		dst = &Bitmap{}
	}
	dst.words, dst.nbits = bd.words, a.nbits
	return dst
}

// appendFill2 appends n groups whose 31-bit payload is g (either all zeros
// or all ones after an op on fills).
func (bd *Builder) appendFill2(g uint32, n uint64) {
	g &= literalAll
	switch g {
	case 0:
		bd.appendFill(false, n)
	case literalAll:
		bd.appendFill(true, n)
	default:
		for i := uint64(0); i < n; i++ {
			bd.words = append(bd.words, g)
		}
	}
	bd.nbits += n * groupBits
}

func opAnd(x, y uint32) uint32    { return x & y }
func opOr(x, y uint32) uint32     { return x | y }
func opAndNot(x, y uint32) uint32 { return x &^ y }
func opXor(x, y uint32) uint32    { return x ^ y }

// And returns the bitwise AND of two equal-length bitmaps.
func And(a, b *Bitmap) *Bitmap { return binary2Into(nil, a, b, opAnd) }

// AndInto returns a AND b, reusing dst's storage when it has capacity.
// dst may be nil and must not share storage with a or b.
func AndInto(dst, a, b *Bitmap) *Bitmap { return binary2Into(dst, a, b, opAnd) }

// Or returns the bitwise OR of two equal-length bitmaps.
func Or(a, b *Bitmap) *Bitmap { return binary2Into(nil, a, b, opOr) }

// OrInto returns a OR b, reusing dst's storage when it has capacity.
// dst may be nil and must not share storage with a or b.
func OrInto(dst, a, b *Bitmap) *Bitmap { return binary2Into(dst, a, b, opOr) }

// AndNot returns a AND NOT b.
func AndNot(a, b *Bitmap) *Bitmap { return binary2Into(nil, a, b, opAndNot) }

// Xor returns the bitwise XOR of two equal-length bitmaps.
func Xor(a, b *Bitmap) *Bitmap { return binary2Into(nil, a, b, opXor) }

// Not returns the complement of b (within its logical length).
func Not(b *Bitmap) *Bitmap {
	f := Full(b.nbits)
	return AndNot(f, b)
}

// OrAll returns the union of the given bitmaps (nil for an empty list).
// It folds with two ping-ponged accumulators, so the whole union costs
// two bitmap allocations regardless of list length.
func OrAll(bms []*Bitmap) *Bitmap {
	if len(bms) == 0 {
		return nil
	}
	if len(bms) == 1 {
		return bms[0]
	}
	acc := Or(bms[0], bms[1])
	scratch := &Bitmap{}
	for _, b := range bms[2:] {
		acc, scratch = OrInto(scratch, acc, b), acc
	}
	return acc
}

// Test reports whether bit i is set. It is O(words) and intended for
// tests and spot checks, not bulk scans.
func (b *Bitmap) Test(i uint64) bool {
	if i >= b.nbits {
		return false
	}
	var pos uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			span := uint64(w&maxFillLen) * groupBits
			if i < pos+span {
				return w&fillValue != 0
			}
			pos += span
		} else {
			if i < pos+groupBits {
				return w&(1<<(i-pos)) != 0
			}
			pos += groupBits
		}
	}
	return false
}

// Encode serializes the bitmap.
func (b *Bitmap) Encode() []byte {
	out := make([]byte, 12+4*len(b.words))
	binary.LittleEndian.PutUint64(out[0:8], b.nbits)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(b.words)))
	for i, w := range b.words {
		binary.LittleEndian.PutUint32(out[12+4*i:], w)
	}
	return out
}

// Decode deserializes a bitmap produced by Encode.
func Decode(data []byte) (*Bitmap, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("wah: encoded buffer too short")
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if len(data) != 12+4*n {
		return nil, fmt.Errorf("wah: encoded length %d does not match %d words", len(data), n)
	}
	b := &Bitmap{
		nbits: binary.LittleEndian.Uint64(data[0:8]),
		words: make([]uint32, n),
	}
	for i := 0; i < n; i++ {
		b.words[i] = binary.LittleEndian.Uint32(data[12+4*i:])
	}
	return b, nil
}
