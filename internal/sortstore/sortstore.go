// Package sortstore implements data reorganization with sorting
// (§III-D3): a sorted replica of an object, ordered by its own values,
// kept alongside the original data.
//
// Range queries on the sort key then touch only the few consecutive
// sorted regions whose value range overlaps the query — the matching data
// is contiguous, which is why the paper's PDC-SH strategy wins on
// single-object and energy-selective queries. Each sorted region stores
// the sorted values plus the permutation back to original row-major
// linear indices, so selections still report original array coordinates.
//
// The replica costs a full extra copy of the data (plus the permutation),
// the trade-off the paper calls out; PDC exposes it as a user hint.
package sortstore

import (
	"fmt"
	"math"
	"slices"
	"time"

	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/simio"
	"pdcquery/internal/vclock"
)

// RegionInfo is the metadata of one sorted region: a consecutive value
// range of the globally sorted key.
type RegionInfo struct {
	Index int
	Count uint64
	// Min and Max are the first and last key value in the region
	// (inclusive); regions are globally ordered so Min[i] >= Max[i-1].
	Min, Max float64
}

// Replica is the metadata of an object's sorted replica. The sorted
// values live under object.SortedValKey and the permutation (original
// row-major linear indices) under object.SortedPermKey; permutation
// entries are 4 bytes for objects below 2^32 elements, 8 bytes beyond.
type Replica struct {
	// Key is the object the replica sorts (and is sorted by).
	Key object.ID
	// Type is the element type of the values.
	Type dtype.Type
	// N is the total element count.
	N uint64
	// Wide marks 8-byte permutation entries (N >= 2^32).
	Wide bool
	// Regions describe the sorted partitioning in ascending value order.
	Regions []RegionInfo
	// Companions lists objects with co-sorted copies (see AddCompanions).
	Companions []Companion
}

// PermWidth returns the byte width of one permutation entry.
func (r *Replica) PermWidth() int64 {
	if r.Wide {
		return 8
	}
	return 4
}

// PermAt decodes the i-th permutation entry from raw permutation bytes.
func (r *Replica) PermAt(b []byte, i int) uint64 {
	if r.Wide {
		return dtype.View[uint64](b)[i]
	}
	return uint64(dtype.View[uint32](b)[i])
}

// Companion records a co-sorted copy of another object: its values
// rearranged into the sort key's order, so that probing it for matches
// found in the sorted key is one contiguous read instead of scattered
// region accesses. This implements the reorganization for multi-variable
// query conditions that the paper names as future work (§IX).
type Companion struct {
	// Obj is the companion object.
	Obj object.ID
	// Type is its element type.
	Type dtype.Type
}

// CompanionValKey returns the storage key for the co-sorted values of
// companion obj in sorted region i of the replica keyed by key.
func CompanionValKey(key, obj object.ID, i int) string {
	return fmt.Sprintf("obj/%d/c%d/v%d", key, obj, i)
}

// HasCompanion reports whether the replica stores a co-sorted copy of
// obj.
func (r *Replica) HasCompanion(obj object.ID) bool {
	for _, c := range r.Companions {
		if c.Obj == obj {
			return true
		}
	}
	return false
}

// AddCompanions builds co-sorted copies of the given objects: for each
// sorted region, the companion's values at the region's original
// coordinates, in sorted order. The companion objects must have the same
// element space as the key object. Costs (reads of the companions'
// regions, writes of the co-sorted extents) are charged to a.
func (r *Replica) AddCompanions(st *simio.Store, a *vclock.Account, lookup func(object.ID) (*object.Object, bool), objs []object.ID, tier simio.Tier) error {
	for _, id := range objs {
		o, ok := lookup(id)
		if !ok {
			return fmt.Errorf("sortstore: companion object %d not found", id)
		}
		if o.NumElems() != r.N {
			return fmt.Errorf("sortstore: companion %d has %d elements, key has %d", id, o.NumElems(), r.N)
		}
		if r.HasCompanion(id) {
			continue
		}
		// Load the companion's full data once (region by region).
		full := make([]byte, 0, o.ByteSize())
		for _, rm := range o.Regions {
			raw, err := st.ReadAll(a, rm.ExtentKey)
			if err != nil {
				return fmt.Errorf("sortstore: companion %d region %d: %w", id, rm.Index, err)
			}
			full = append(full, raw...)
		}
		es := o.Type.Size()
		for _, ri := range r.Regions {
			perm, err := st.ReadAll(a, object.SortedPermKey(r.Key, ri.Index))
			if err != nil {
				return err
			}
			out := make([]byte, int(ri.Count)*es)
			for i := 0; i < int(ri.Count); i++ {
				orig := int(r.PermAt(perm, i))
				copy(out[i*es:(i+1)*es], full[orig*es:(orig+1)*es])
			}
			st.WriteOwned(a, CompanionValKey(r.Key, id, ri.Index), tier, out)
		}
		r.Companions = append(r.Companions, Companion{Obj: id, Type: o.Type})
	}
	return nil
}

// sortCompute models the CPU cost of comparison sorting n elements.
const sortCostPerElemLog = 4 * time.Nanosecond

// Build reads the object's data from the store, sorts (value, original
// index) pairs ascending (ties broken by original index for determinism),
// partitions the result into sorted regions of at most regionElems
// elements, and writes value and permutation extents to the given tier.
// The read, sort, and write costs are charged to a — this is the paper's
// offline reorganization cost.
func Build(st *simio.Store, a *vclock.Account, o *object.Object, regionElems uint64, tier simio.Tier) (*Replica, error) {
	if regionElems == 0 {
		return nil, fmt.Errorf("sortstore: zero region size")
	}
	n := o.NumElems()
	type pair struct {
		v float64
		i uint64
	}
	pairs := make([]pair, 0, n)
	for ri := range o.Regions {
		rm := &o.Regions[ri]
		data, err := st.ReadAll(a, rm.ExtentKey)
		if err != nil {
			return nil, fmt.Errorf("sortstore: read region %d: %w", ri, err)
		}
		base := o.LinearStart(ri)
		cnt := o.Type.Count(len(data))
		for i := 0; i < cnt; i++ {
			pairs = append(pairs, pair{v: dtype.At(o.Type, data, i), i: base + uint64(i)})
		}
	}
	if uint64(len(pairs)) != n {
		return nil, fmt.Errorf("sortstore: read %d elements, object has %d", len(pairs), n)
	}
	slices.SortFunc(pairs, func(x, y pair) int {
		switch {
		case x.v < y.v || (x.v == y.v && x.i < y.i):
			return -1
		case x.v == y.v && x.i == y.i:
			return 0
		default:
			return 1
		}
	})
	if a != nil && n > 1 {
		a.Charge(vclock.Compute, time.Duration(float64(n)*math.Log2(float64(n)))*sortCostPerElemLog/1)
		a.Count("sort.elems", int64(n))
	}

	rep := &Replica{Key: o.ID, Type: o.Type, N: n, Wide: n > math.MaxUint32}
	elemSize := o.Type.Size()
	for off, idx := uint64(0), 0; off < n; off, idx = off+regionElems, idx+1 {
		end := off + regionElems
		if end > n {
			end = n
		}
		cnt := end - off
		vals := make([]byte, cnt*uint64(elemSize))
		perm := make([]byte, cnt*uint64(rep.PermWidth()))
		for i := uint64(0); i < cnt; i++ {
			dtype.Put(o.Type, vals, int(i), pairs[off+i].v)
			if rep.Wide {
				dtype.View[uint64](perm)[i] = pairs[off+i].i
			} else {
				dtype.View[uint32](perm)[i] = uint32(pairs[off+i].i)
			}
		}
		st.WriteOwned(a, object.SortedValKey(o.ID, idx), tier, vals)
		st.WriteOwned(a, object.SortedPermKey(o.ID, idx), tier, perm)
		rep.Regions = append(rep.Regions, RegionInfo{
			Index: idx,
			Count: cnt,
			Min:   pairs[off].v,
			Max:   pairs[end-1].v,
		})
	}
	return rep, nil
}

// CheckInvariants verifies global ordering across the sorted regions.
func (r *Replica) CheckInvariants() error {
	var total uint64
	for i, ri := range r.Regions {
		if ri.Index != i {
			return fmt.Errorf("sortstore: region %d has index %d", i, ri.Index)
		}
		if ri.Count == 0 {
			return fmt.Errorf("sortstore: empty region %d", i)
		}
		if ri.Min > ri.Max {
			return fmt.Errorf("sortstore: region %d min %v > max %v", i, ri.Min, ri.Max)
		}
		if i > 0 && ri.Min < r.Regions[i-1].Max {
			return fmt.Errorf("sortstore: region %d min %v < previous max %v", i, ri.Min, r.Regions[i-1].Max)
		}
		total += ri.Count
	}
	if total != r.N {
		return fmt.Errorf("sortstore: regions hold %d of %d elements", total, r.N)
	}
	return nil
}

// RegionsOverlapping returns the indices of sorted regions whose value
// range can contain elements of the interval. Because regions are
// globally ordered, the result is a consecutive run found by binary
// search — the heart of the sorted strategy's efficiency.
func (r *Replica) RegionsOverlapping(iv query.Interval) []int {
	if iv.Empty() || len(r.Regions) == 0 {
		return nil
	}
	// First region whose Max can reach the interval's low bound, then the
	// first region entirely above the high bound. Open-coded binary
	// searches: a sort.Search closure would capture r and iv and allocate
	// on every sorted-path evaluation.
	first := searchRegions(r.Regions, true, iv.Lo, iv.LoIncl)
	last := searchRegions(r.Regions, false, iv.Hi, !iv.HiIncl)
	if first >= last {
		return nil
	}
	out := make([]int, 0, last-first)
	for i := first; i < last; i++ {
		out = append(out, i)
	}
	return out
}

// EvaluateRegion scans one sorted region's raw value bytes for the
// interval and returns the half-open local range [lo, hi) of matching
// sorted positions. Because the values are ascending the scan is two
// binary searches.
func (r *Replica) EvaluateRegion(vals []byte, iv query.Interval) (lo, hi int) {
	n := r.Type.Count(len(vals))
	lo = searchVals(r.Type, vals, n, iv.Lo, iv.LoIncl)
	hi = searchVals(r.Type, vals, n, iv.Hi, !iv.HiIncl)
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// searchVals returns the first position in the ascending values whose
// value v satisfies v > bound || (orEqual && v == bound); n if none do.
// Open-coded sort.Search: this sits on the PDC-SH per-region hot path,
// where a capturing closure would allocate per call.
func searchVals(t dtype.Type, vals []byte, n int, bound float64, orEqual bool) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v := dtype.At(t, vals, mid)
		if v > bound || (orEqual && v == bound) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchRegions returns the first region index whose bound (Max when
// useMax, else Min) satisfies m > bound || (orEqual && m == bound);
// len(regions) if none does.
func searchRegions(regions []RegionInfo, useMax bool, bound float64, orEqual bool) int {
	lo, hi := 0, len(regions)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := regions[mid].Min
		if useMax {
			m = regions[mid].Max
		}
		if m > bound || (orEqual && m == bound) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
