package sortstore

import (
	"math"
	"math/rand"
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/simio"
	"pdcquery/internal/vclock"
)

// makeObject stores vals as a 1-D float32 object with the given region
// size (in elements) and returns its metadata.
func makeObject(t *testing.T, st *simio.Store, vals []float32, regionElems uint64) *object.Object {
	t.Helper()
	o := &object.Object{ID: 1, Name: "energy", Type: dtype.Float32, Dims: []uint64{uint64(len(vals))}}
	for i, r := range region.Split1D(uint64(len(vals)), regionElems) {
		lo := r.Offset[0]
		hi := lo + r.Count[0]
		key := object.ExtentKey(o.ID, i)
		st.Write(nil, key, simio.PFS, dtype.Bytes(vals[lo:hi]))
		o.Regions = append(o.Regions, object.RegionMeta{Index: i, Region: r, ExtentKey: key, Tier: simio.PFS})
	}
	if err := o.CheckRegionCover(); err != nil {
		t.Fatal(err)
	}
	return o
}

func randVals(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * 2)
	}
	return out
}

func buildReplica(t *testing.T, vals []float32, objRegion, sortRegion uint64) (*simio.Store, *object.Object, *Replica, *vclock.Account) {
	t.Helper()
	st := simio.New(simio.DefaultModel())
	o := makeObject(t, st, vals, objRegion)
	a := vclock.NewAccount()
	rep, err := Build(st, a, o, sortRegion, simio.PFS)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return st, o, rep, a
}

func TestBuildSortsGlobally(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := randVals(rng, 10000)
	st, o, rep, a := buildReplica(t, vals, 1024, 2000)

	if rep.N != 10000 || rep.Key != o.ID {
		t.Fatalf("replica N=%d key=%d", rep.N, rep.Key)
	}
	if len(rep.Regions) != 5 {
		t.Fatalf("sorted regions = %d, want 5", len(rep.Regions))
	}
	// Walk all sorted regions: values ascending globally, permutation maps
	// back to the original values.
	prev := math.Inf(-1)
	seen := make(map[uint64]bool)
	for _, ri := range rep.Regions {
		vbytes, err := st.ReadAll(nil, object.SortedValKey(o.ID, ri.Index))
		if err != nil {
			t.Fatal(err)
		}
		pbytes, err := st.ReadAll(nil, object.SortedPermKey(o.ID, ri.Index))
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(pbytes)) != ri.Count*uint64(rep.PermWidth()) {
			t.Fatalf("region %d perm bytes %d != count %d x width %d", ri.Index, len(pbytes), ri.Count, rep.PermWidth())
		}
		for i := uint64(0); i < ri.Count; i++ {
			v := dtype.At(rep.Type, vbytes, int(i))
			if v < prev {
				t.Fatalf("region %d: value %v < previous %v", ri.Index, v, prev)
			}
			prev = v
			orig := rep.PermAt(pbytes, int(i))
			if seen[orig] {
				t.Fatalf("duplicate original index %d", orig)
			}
			seen[orig] = true
			if float64(vals[orig]) != v {
				t.Fatalf("perm mismatch: sorted %v != original %v", v, vals[orig])
			}
		}
	}
	if len(seen) != len(vals) {
		t.Fatalf("permutation covers %d of %d", len(seen), len(vals))
	}
	if a.Cost().Total() == 0 {
		t.Error("build charged no cost")
	}
	if a.Counter("sort.elems") != 10000 {
		t.Errorf("sort.elems = %d", a.Counter("sort.elems"))
	}
}

func TestBuildErrors(t *testing.T) {
	st := simio.New(simio.DefaultModel())
	o := makeObject(t, st, []float32{1, 2, 3}, 2)
	if _, err := Build(st, nil, o, 0, simio.PFS); err == nil {
		t.Error("zero region size accepted")
	}
	// Missing extent.
	st.Delete(object.ExtentKey(o.ID, 0))
	if _, err := Build(st, nil, o, 2, simio.PFS); err == nil {
		t.Error("missing extent accepted")
	}
}

func TestRegionsOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := randVals(rng, 5000)
	_, _, rep, _ := buildReplica(t, vals, 1000, 500)

	full := query.Full()
	if got := rep.RegionsOverlapping(full); len(got) != len(rep.Regions) {
		t.Errorf("full interval overlaps %d of %d regions", len(got), len(rep.Regions))
	}
	// A narrow interval touches a consecutive small run of regions.
	iv := query.FromLeaf(query.OpGT, 1.0).Intersect(query.FromLeaf(query.OpLT, 1.1))
	got := rep.RegionsOverlapping(iv)
	if len(got) == 0 {
		t.Fatal("narrow interval overlaps nothing")
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("overlap run not consecutive: %v", got)
		}
	}
	if len(got) > 2 {
		t.Errorf("narrow interval overlaps %d regions, want <= 2", len(got))
	}
	// Interval beyond the data.
	iv = query.FromLeaf(query.OpGT, 1e9)
	if got := rep.RegionsOverlapping(iv); len(got) != 0 {
		t.Errorf("out-of-range interval overlaps %v", got)
	}
	// Empty interval.
	if got := rep.RegionsOverlapping(query.Interval{Lo: 5, Hi: 1}); got != nil {
		t.Errorf("empty interval overlaps %v", got)
	}
}

func TestEvaluateRegionMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randVals(rng, 4000)
	st, o, rep, _ := buildReplica(t, vals, 1000, 1000)

	for _, q := range []struct{ lo, hi float64 }{
		{0.5, 1.5}, {-10, 10}, {-0.001, 0.001}, {3, 4}, {-4, -3},
	} {
		iv := query.Interval{Lo: q.lo, Hi: q.hi, LoIncl: false, HiIncl: false}
		var got []uint64
		for _, ri := range rep.RegionsOverlapping(iv) {
			vbytes, _ := st.ReadAll(nil, object.SortedValKey(o.ID, ri))
			pbytes, _ := st.ReadAll(nil, object.SortedPermKey(o.ID, ri))
			lo, hi := rep.EvaluateRegion(vbytes, iv)
			for i := lo; i < hi; i++ {
				got = append(got, rep.PermAt(pbytes, i))
			}
		}
		want := 0
		for _, v := range vals {
			if iv.Contains(float64(v)) {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("query (%v,%v): %d hits, want %d", q.lo, q.hi, len(got), want)
		}
		for _, orig := range got {
			if !iv.Contains(float64(vals[orig])) {
				t.Errorf("hit %d value %v outside (%v,%v)", orig, vals[orig], q.lo, q.hi)
			}
		}
	}
}

func TestSelectiveQueryTouchesFewRegions(t *testing.T) {
	// The PDC-SH payoff: a highly selective query touches O(1) sorted
	// regions instead of all of them.
	rng := rand.New(rand.NewSource(4))
	vals := randVals(rng, 100000)
	_, _, rep, _ := buildReplica(t, vals, 10000, 5000)
	if len(rep.Regions) != 20 {
		t.Fatalf("regions = %d", len(rep.Regions))
	}
	// Top ~0.1% of a normal distribution.
	iv := query.FromLeaf(query.OpGT, 6.0)
	got := rep.RegionsOverlapping(iv)
	if len(got) > 1 {
		t.Errorf("0.1%% query touches %d of 20 regions", len(got))
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randVals(rng, 1000)
	_, _, rep, _ := buildReplica(t, vals, 500, 250)

	bad := *rep
	bad.Regions = append([]RegionInfo(nil), rep.Regions...)
	bad.Regions[1].Min = bad.Regions[0].Max - 1
	if err := bad.CheckInvariants(); err == nil {
		t.Error("overlap corruption accepted")
	}
	bad = *rep
	bad.N++
	if err := bad.CheckInvariants(); err == nil {
		t.Error("count corruption accepted")
	}
}

func TestDuplicateValues(t *testing.T) {
	vals := make([]float32, 100)
	for i := range vals {
		vals[i] = float32(i % 5)
	}
	st, o, rep, _ := buildReplica(t, vals, 50, 30)
	iv := query.Interval{Lo: 2, Hi: 2, LoIncl: true, HiIncl: true}
	var hits int
	for _, ri := range rep.RegionsOverlapping(iv) {
		vbytes, _ := st.ReadAll(nil, object.SortedValKey(o.ID, ri))
		lo, hi := rep.EvaluateRegion(vbytes, iv)
		hits += hi - lo
	}
	if hits != 20 {
		t.Errorf("equality on duplicates: %d hits, want 20", hits)
	}
}

func TestAddCompanions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	key := randVals(rng, 3000)
	comp := randVals(rng, 3000)
	st := simio.New(simio.DefaultModel())
	keyObj := makeObject(t, st, key, 500)
	compObj := &object.Object{ID: 2, Name: "x", Type: dtype.Float32, Dims: []uint64{3000}}
	for i, r := range region.Split1D(3000, 500) {
		k := object.ExtentKey(compObj.ID, i)
		st.Write(nil, k, simio.PFS, dtype.Bytes(comp[r.Offset[0]:r.Offset[0]+r.Count[0]]))
		compObj.Regions = append(compObj.Regions, object.RegionMeta{Index: i, Region: r, ExtentKey: k})
	}
	lookup := func(id object.ID) (*object.Object, bool) {
		switch id {
		case 1:
			return keyObj, true
		case 2:
			return compObj, true
		}
		return nil, false
	}
	rep, err := Build(st, nil, keyObj, 750, simio.PFS)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.AddCompanions(st, nil, lookup, []object.ID{2}, simio.PFS); err != nil {
		t.Fatal(err)
	}
	if !rep.HasCompanion(2) || rep.HasCompanion(3) {
		t.Error("companion registry wrong")
	}
	// Idempotent.
	if err := rep.AddCompanions(st, nil, lookup, []object.ID{2}, simio.PFS); err != nil {
		t.Fatal(err)
	}
	if len(rep.Companions) != 1 {
		t.Errorf("duplicate companion registered: %v", rep.Companions)
	}
	// The co-sorted values line up with the permutation.
	for _, ri := range rep.Regions {
		co, err := st.ReadAll(nil, CompanionValKey(1, 2, ri.Index))
		if err != nil {
			t.Fatal(err)
		}
		perm, err := st.ReadAll(nil, object.SortedPermKey(1, ri.Index))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < int(ri.Count); i++ {
			orig := rep.PermAt(perm, i)
			if got := dtype.View[float32](co)[i]; got != comp[orig] {
				t.Fatalf("region %d pos %d: co-sorted %v, want %v", ri.Index, i, got, comp[orig])
			}
		}
	}
	// Errors.
	if err := rep.AddCompanions(st, nil, lookup, []object.ID{99}, simio.PFS); err == nil {
		t.Error("unknown companion accepted")
	}
	short := &object.Object{ID: 3, Name: "s", Type: dtype.Float32, Dims: []uint64{10}}
	lookup2 := func(id object.ID) (*object.Object, bool) {
		if id == 3 {
			return short, true
		}
		return lookup(id)
	}
	if err := rep.AddCompanions(st, nil, lookup2, []object.ID{3}, simio.PFS); err == nil {
		t.Error("size-mismatched companion accepted")
	}
}
