package query

import (
	"testing"

	"pdcquery/internal/object"
	"pdcquery/internal/region"
)

// FuzzDecode hardens the wire decoder against corrupt broadcasts: it must
// return an error or a tree that re-encodes and decodes stably — never
// panic.
func FuzzDecode(f *testing.F) {
	seeds := []*Query{
		{Root: Leaf(1, OpGT, 2.0)},
		{Root: Between(7, 2.1, 2.2, false, false)},
		{Root: Or(And(Leaf(1, OpGE, -5), Leaf(2, OpLE, 5)), Leaf(3, OpEQ, 0))},
	}
	withRegion := &Query{Root: Leaf(4, OpLT, 9)}
	withRegion.SetRegion(region.New([]uint64{3, 4}, []uint64{5, 6}))
	seeds = append(seeds, withRegion)
	for _, q := range seeds {
		f.Add(q.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 255})
	f.Add([]byte{1, 1, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded query must round-trip exactly.
		enc := q.Encode()
		q2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q.Root.String() != q2.Root.String() {
			t.Fatalf("round trip drifted: %q vs %q", q.Root.String(), q2.Root.String())
		}
		// Normalization must not panic on any decodable tree.
		_, _ = Normalize(q.Root)
	})
}

// FuzzParse hardens the textual parser.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"Energy > 2.0",
		"Energy > 2.0 and 100 < x and x < 200",
		"(a > 1 or b < 2) and c = 3",
		"((((", "1 2 3", "and and", "x >", ">", "",
	} {
		f.Add(s)
	}
	resolve := func(name string) (object.ID, bool) {
		switch name {
		case "Energy", "x", "a", "b", "c":
			return object.ID(len(name)), true
		}
		return 0, false
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := Parse(s, resolve)
		if err != nil {
			return
		}
		if n == nil {
			t.Fatal("nil tree without error")
		}
		_ = n.String()
	})
}
