package query

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pdcquery/internal/dtype"
	"pdcquery/internal/object"
	"pdcquery/internal/region"
)

func TestLeafAndCombinators(t *testing.T) {
	l := Leaf(1, OpGT, 2.0)
	if l.Kind != KindLeaf || l.Obj != 1 || l.Op != OpGT || l.Value != 2.0 {
		t.Errorf("Leaf = %+v", l)
	}
	a := And(l, Leaf(2, OpLT, 5))
	if a.Kind != KindAnd {
		t.Errorf("And kind = %v", a.Kind)
	}
	o := Or(a, Leaf(3, OpEQ, 1))
	if o.Kind != KindOr {
		t.Errorf("Or kind = %v", o.Kind)
	}
	// nil handling
	if And(nil, l) != l || And(l, nil) != l {
		t.Error("And with nil side")
	}
	if Or(nil, l) != l || Or(l, nil) != l {
		t.Error("Or with nil side")
	}
}

func TestObjects(t *testing.T) {
	n := Or(And(Leaf(3, OpGT, 0), Leaf(1, OpLT, 1)), Leaf(2, OpEQ, 5))
	got := n.Objects()
	want := []object.ID{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("Objects = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Objects[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	n := And(Leaf(1, OpGT, 2), Leaf(1, OpLT, 3))
	s := n.String()
	if !strings.Contains(s, "obj1 > 2") || !strings.Contains(s, "AND") {
		t.Errorf("String = %q", s)
	}
	if (*Node)(nil).String() != "<nil>" {
		t.Error("nil String")
	}
}

func TestIntervalFromLeaf(t *testing.T) {
	cases := []struct {
		op       Op
		v        float64
		in, out  float64
		boundary float64
		bIn      bool
	}{
		{OpGT, 2, 3, 1, 2, false},
		{OpGE, 2, 3, 1, 2, true},
		{OpLT, 2, 1, 3, 2, false},
		{OpLE, 2, 1, 3, 2, true},
		{OpEQ, 2, 2, 3, 2, true},
	}
	for _, c := range cases {
		iv := FromLeaf(c.op, c.v)
		if !iv.Contains(c.in) {
			t.Errorf("%v %g: Contains(%g) = false", c.op, c.v, c.in)
		}
		if c.op != OpEQ && !iv.Contains(c.in) {
			t.Errorf("%v: inside value rejected", c.op)
		}
		if iv.Contains(c.out) {
			t.Errorf("%v %g: Contains(%g) = true", c.op, c.v, c.out)
		}
		if iv.Contains(c.boundary) != c.bIn {
			t.Errorf("%v %g: boundary Contains(%g) = %v, want %v", c.op, c.v, c.boundary, !c.bIn, c.bIn)
		}
	}
}

func TestIntervalIntersectAndEmpty(t *testing.T) {
	a := FromLeaf(OpGT, 2) // (2, inf]
	b := FromLeaf(OpLT, 5) // [-inf, 5)
	x := a.Intersect(b)
	if x.Empty() || !x.Contains(3) || x.Contains(2) || x.Contains(5) {
		t.Errorf("intersection = %v", x)
	}
	// Disjoint.
	y := FromLeaf(OpGT, 5).Intersect(FromLeaf(OpLT, 2))
	if !y.Empty() {
		t.Errorf("disjoint intersection not empty: %v", y)
	}
	// Touching with mixed inclusivity.
	z := FromLeaf(OpGE, 5).Intersect(FromLeaf(OpLT, 5))
	if !z.Empty() {
		t.Errorf("half-open touching not empty: %v", z)
	}
	w := FromLeaf(OpGE, 5).Intersect(FromLeaf(OpLE, 5))
	if w.Empty() || !w.Contains(5) {
		t.Errorf("point interval wrong: %v", w)
	}
	if !Full().Contains(1e300) || !Full().Contains(-1e300) {
		t.Error("Full interval misses values")
	}
	if Full().Contains(math.NaN()) {
		t.Error("interval contains NaN")
	}
}

func TestIntervalStricterBoundWins(t *testing.T) {
	// Same boundary, different inclusivity: exclusive is stricter.
	a := FromLeaf(OpGE, 2)
	b := FromLeaf(OpGT, 2)
	x := a.Intersect(b)
	if x.Contains(2) {
		t.Error("intersection kept the inclusive bound")
	}
	x = b.Intersect(a)
	if x.Contains(2) {
		t.Error("intersection order-dependent")
	}
}

func TestNormalizeSimpleRange(t *testing.T) {
	// 2.1 < E < 2.2 on one object -> one conjunct with a merged interval.
	n := Between(1, 2.1, 2.2, false, false)
	cs, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	iv := cs[0][1]
	if !iv.Contains(2.15) || iv.Contains(2.1) || iv.Contains(2.2) || iv.Contains(2.3) {
		t.Errorf("interval = %v", iv)
	}
}

func TestNormalizeMultiObjectAnd(t *testing.T) {
	// Energy > 2.0 AND 100 < x < 200 AND -90 < y < 0
	n := And(Leaf(1, OpGT, 2.0), And(Between(2, 100, 200, false, false), Between(3, -90, 0, false, false)))
	cs, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || len(cs[0]) != 3 {
		t.Fatalf("conjuncts = %v", cs)
	}
	if !cs[0][1].Contains(5) || cs[0][1].Contains(1.5) {
		t.Error("energy interval wrong")
	}
	if !cs[0][2].Contains(150) || cs[0][2].Contains(250) {
		t.Error("x interval wrong")
	}
}

func TestNormalizeOrProducesTerms(t *testing.T) {
	n := Or(Leaf(1, OpGT, 5), Leaf(2, OpLT, 0))
	cs, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
}

func TestNormalizeDistributesAndOverOr(t *testing.T) {
	// (a OR b) AND c -> (a AND c) OR (b AND c)
	n := And(Or(Leaf(1, OpGT, 5), Leaf(2, OpLT, 0)), Leaf(3, OpEQ, 7))
	cs, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	for _, c := range cs {
		if _, ok := c[3]; !ok {
			t.Error("distributed term missing obj3 condition")
		}
	}
}

func TestNormalizeDropsContradictions(t *testing.T) {
	// E > 5 AND E < 2 is unsatisfiable.
	n := And(Leaf(1, OpGT, 5), Leaf(1, OpLT, 2))
	cs, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Errorf("contradictory query produced %d conjuncts", len(cs))
	}
}

func TestNormalizeExplosionGuard(t *testing.T) {
	// Build AND of many ORs to exceed MaxConjuncts: 2^8 = 256 > 128.
	var n *Node
	for i := 0; i < 8; i++ {
		or := Or(Leaf(object.ID(i*2+1), OpGT, 0), Leaf(object.ID(i*2+2), OpLT, 0))
		n = And(n, or)
	}
	if _, err := Normalize(n); err == nil {
		t.Error("DNF explosion not caught")
	}
	if _, err := Normalize(nil); err == nil {
		t.Error("Normalize(nil) succeeded")
	}
}

func TestConjunctHelpers(t *testing.T) {
	c := Conjunct{3: Full(), 1: Full(), 2: FromLeaf(OpGT, 5).Intersect(FromLeaf(OpLT, 2))}
	ids := c.ObjectsSorted()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("ObjectsSorted = %v", ids)
	}
	if !c.Empty() {
		t.Error("conjunct with empty interval not Empty")
	}
	if (Conjunct{1: Full()}).Empty() {
		t.Error("satisfiable conjunct Empty")
	}
}

func lookupFor(objs ...*object.Object) func(object.ID) (*object.Object, bool) {
	m := map[object.ID]*object.Object{}
	for _, o := range objs {
		m[o.ID] = o
	}
	return func(id object.ID) (*object.Object, bool) {
		o, ok := m[id]
		return o, ok
	}
}

func TestValidate(t *testing.T) {
	a := &object.Object{ID: 1, Name: "a", Type: dtype.Float32, Dims: []uint64{100}}
	b := &object.Object{ID: 2, Name: "b", Type: dtype.Float32, Dims: []uint64{100}}
	c := &object.Object{ID: 3, Name: "c", Type: dtype.Float32, Dims: []uint64{50}}
	look := lookupFor(a, b, c)

	q := &Query{Root: And(Leaf(1, OpGT, 0), Leaf(2, OpLT, 1))}
	if err := q.Validate(look); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	// Mismatched dims.
	q = &Query{Root: And(Leaf(1, OpGT, 0), Leaf(3, OpLT, 1))}
	if err := q.Validate(look); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Unknown object.
	q = &Query{Root: Leaf(99, OpGT, 0)}
	if err := q.Validate(look); err == nil {
		t.Error("unknown object accepted")
	}
	// Empty tree.
	if err := (&Query{}).Validate(look); err == nil {
		t.Error("empty query accepted")
	}
	// Constraint inside bounds.
	q = &Query{Root: Leaf(1, OpGT, 0)}
	q.SetRegion(region.New([]uint64{10}, []uint64{20}))
	if err := q.Validate(look); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	// Constraint outside bounds.
	q.SetRegion(region.New([]uint64{90}, []uint64{20}))
	if err := q.Validate(look); err == nil {
		t.Error("out-of-bounds constraint accepted")
	}
	// Invalid operator (e.g. from a corrupted wire message).
	q = &Query{Root: Leaf(1, Op(99), 0)}
	if err := q.Validate(look); err == nil {
		t.Error("invalid operator accepted")
	}
}

func TestFromLeafInvalidOpIsEmpty(t *testing.T) {
	iv := FromLeaf(Op(99), 0)
	if iv.Contains(0) || iv.Contains(99) {
		t.Errorf("invalid-op interval matches values: %+v", iv)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	trees := []*Node{
		Leaf(7, OpEQ, 3.25),
		Between(1, 2.1, 2.2, false, false),
		Or(And(Leaf(1, OpGT, 2), Between(2, 100, 200, true, false)), Leaf(3, OpLE, -7.5)),
	}
	for _, tree := range trees {
		for _, withRegion := range []bool{false, true} {
			q := &Query{Root: tree}
			if withRegion {
				q.SetRegion(region.New([]uint64{5, 0}, []uint64{10, 3}))
			}
			enc := q.Encode()
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("decode %q: %v", tree, err)
			}
			if got.Root.String() != tree.String() {
				t.Errorf("round trip: %q != %q", got.Root.String(), tree.String())
			}
			if withRegion {
				if got.Constraint == nil || !got.Constraint.Equal(*q.Constraint) {
					t.Errorf("constraint round trip: %v", got.Constraint)
				}
			} else if got.Constraint != nil {
				t.Error("phantom constraint after decode")
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{99, 0}); err == nil {
		t.Error("bad version accepted")
	}
	q := &Query{Root: Leaf(1, OpGT, 0)}
	enc := q.Encode()
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated leaf accepted")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Corrupt the op byte to an invalid value.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-9] = 42
	if _, err := Decode(bad); err == nil {
		t.Error("bad op accepted")
	}
}

func TestPropertyNormalizeMatchesTreeSemantics(t *testing.T) {
	// For a random 2-object tree and random values, DNF evaluation must
	// equal direct tree evaluation.
	var eval func(n *Node, vals map[object.ID]float64) bool
	eval = func(n *Node, vals map[object.ID]float64) bool {
		switch n.Kind {
		case KindLeaf:
			return FromLeaf(n.Op, n.Value).Contains(vals[n.Obj])
		case KindAnd:
			return eval(n.Left, vals) && eval(n.Right, vals)
		case KindOr:
			return eval(n.Left, vals) || eval(n.Right, vals)
		}
		return false
	}
	f := func(ops [5]uint8, cuts [5]int8, v1, v2 int8) bool {
		mk := func(i int, obj object.ID) *Node {
			return Leaf(obj, Op(ops[i]%5), float64(cuts[i]%10))
		}
		tree := Or(And(mk(0, 1), mk(1, 2)), And(mk(2, 1), Or(mk(3, 2), mk(4, 1))))
		cs, err := Normalize(tree)
		if err != nil {
			return false
		}
		vals := map[object.ID]float64{1: float64(v1 % 12), 2: float64(v2 % 12)}
		want := eval(tree, vals)
		got := false
		for _, c := range cs {
			all := true
			for id, iv := range c {
				if !iv.Contains(vals[id]) {
					all = false
					break
				}
			}
			if all {
				got = true
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
