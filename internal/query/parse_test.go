package query

import (
	"strings"
	"testing"

	"pdcquery/internal/object"
)

var testNames = map[string]object.ID{"Energy": 1, "x": 2, "y": 3, "z": 4}

func resolveTest(name string) (object.ID, bool) {
	id, ok := testNames[name]
	return id, ok
}

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := Parse(s, resolveTest)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return n
}

func TestParseSimple(t *testing.T) {
	n := mustParse(t, "Energy > 2.0")
	if n.Kind != KindLeaf || n.Obj != 1 || n.Op != OpGT || n.Value != 2.0 {
		t.Errorf("parsed %+v", n)
	}
}

func TestParseAllOperators(t *testing.T) {
	for s, op := range map[string]Op{
		"Energy > 1": OpGT, "Energy >= 1": OpGE,
		"Energy < 1": OpLT, "Energy <= 1": OpLE,
		"Energy = 1": OpEQ, "Energy == 1": OpEQ,
	} {
		if n := mustParse(t, s); n.Op != op {
			t.Errorf("%q parsed op %v, want %v", s, n.Op, op)
		}
	}
}

func TestParseAndOrPrecedence(t *testing.T) {
	// AND binds tighter than OR.
	n := mustParse(t, "Energy > 5 or x > 100 and y < 0")
	if n.Kind != KindOr {
		t.Fatalf("root = %v, want OR", n.Kind)
	}
	if n.Right.Kind != KindAnd {
		t.Errorf("right = %v, want AND", n.Right.Kind)
	}
}

func TestParseParens(t *testing.T) {
	n := mustParse(t, "(Energy > 5 or x > 100) and y < 0")
	if n.Kind != KindAnd || n.Left.Kind != KindOr {
		t.Errorf("parenthesized parse wrong: %s", n)
	}
}

func TestParseReversedComparison(t *testing.T) {
	// The paper writes "2.1 < Energy < 2.2"-style bounds; each half can be
	// given in either direction.
	n := mustParse(t, "2.1 < Energy and Energy < 2.2")
	cs, err := Normalize(n)
	if err != nil || len(cs) != 1 {
		t.Fatal(err)
	}
	iv := cs[0][1]
	if iv.Lo != 2.1 || iv.Hi != 2.2 || iv.LoIncl || iv.HiIncl {
		t.Errorf("interval = %v", iv)
	}
	n = mustParse(t, "100 >= x")
	if n.Obj != 2 || n.Op != OpLE || n.Value != 100 {
		t.Errorf("flipped parse = %+v", n)
	}
}

func TestParsePaperQuery(t *testing.T) {
	n := mustParse(t, "Energy > 2.0 and 100 < x and x < 200 and -90 < y and y < 0 and 0 < z and z < 66")
	ids := n.Objects()
	if len(ids) != 4 {
		t.Fatalf("objects = %v", ids)
	}
	cs, err := Normalize(n)
	if err != nil || len(cs) != 1 {
		t.Fatal(err)
	}
	if !cs[0][3].Contains(-45) || cs[0][3].Contains(10) {
		t.Errorf("y interval = %v", cs[0][3])
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	n := mustParse(t, "y > -90.5")
	if n.Value != -90.5 {
		t.Errorf("value = %v", n.Value)
	}
}

func TestParseCaseInsensitiveConnectives(t *testing.T) {
	n := mustParse(t, "Energy > 1 AND x < 2 OR y = 3")
	if n.Kind != KindOr || n.Left.Kind != KindAnd {
		t.Errorf("case-insensitive parse wrong: %s", n)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"Energy >",
		"Energy ! 2",
		"nosuch > 2",
		"2 > nosuch",
		"Energy > 2 and",
		"(Energy > 2",
		"Energy > 2 extra",
		"Energy > x",
		"Energy > 2 2",
	}
	for _, s := range cases {
		if _, err := Parse(s, resolveTest); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	n := mustParse(t, "(Energy > 2 and x < 100) or z = 5")
	s := n.String()
	for _, want := range []string{"obj1 > 2", "obj2 < 100", "obj4 == 5", "AND", "OR"} {
		if !strings.Contains(s, want) {
			t.Errorf("round trip string %q missing %q", s, want)
		}
	}
}

func TestParseChainedComparison(t *testing.T) {
	// The paper's range notation desugars to an AND of two leaves.
	n := mustParse(t, "2.1 < Energy < 2.2")
	cs, err := Normalize(n)
	if err != nil || len(cs) != 1 {
		t.Fatal(err)
	}
	iv := cs[0][1]
	if iv.Lo != 2.1 || iv.Hi != 2.2 || iv.LoIncl || iv.HiIncl {
		t.Errorf("chained interval = %v", iv)
	}
	// Inclusive bounds chain too.
	n = mustParse(t, "100 <= x <= 200")
	cs, _ = Normalize(n)
	iv = cs[0][2]
	if !iv.Contains(100) || !iv.Contains(200) || iv.Contains(201) {
		t.Errorf("inclusive chain = %v", iv)
	}
	// Chains compose with connectives.
	n = mustParse(t, "2.1 < Energy < 2.2 and -90 < y and y < 0")
	if got := len(n.Objects()); got != 2 {
		t.Errorf("objects = %d", got)
	}
	// A number in the middle is rejected.
	if _, err := Parse("2.1 < 5 < 2.2", resolveTest); err == nil {
		t.Error("numeric middle accepted")
	}
	// Truncated chain is rejected.
	if _, err := Parse("2.1 < Energy <", resolveTest); err == nil {
		t.Error("truncated chain accepted")
	}
}
