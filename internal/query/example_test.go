package query_test

import (
	"fmt"

	"pdcquery/internal/object"
	"pdcquery/internal/query"
)

// Example parses the paper's own query notation and shows the DNF the
// evaluator plans against.
func Example() {
	names := map[string]object.ID{"Energy": 1, "x": 2}
	root, err := query.Parse("2.1 < Energy < 2.2 and 100 < x < 200", func(s string) (object.ID, bool) {
		id, ok := names[s]
		return id, ok
	})
	if err != nil {
		panic(err)
	}
	conjuncts, _ := query.Normalize(root)
	for _, c := range conjuncts {
		for _, id := range c.ObjectsSorted() {
			fmt.Printf("obj%d in %s\n", id, c[id])
		}
	}
	// Output:
	// obj1 in (2.1, 2.2)
	// obj2 in (100, 200)
}
