// Package query defines the PDC-Query condition model: the tree that
// PDCquery_create / PDCquery_and / PDCquery_or build (§III-A), its wire
// serialization (the client "serializes the query conditions and
// broadcasts them to all available servers", §III-C), and the
// normalization the evaluator plans against.
//
// A leaf is a one-sided comparison on a single object (>, >=, <, <=, =);
// AND/OR nodes chain an unlimited number of conditions. For evaluation the
// tree is normalized to disjunctive normal form, where each conjunct
// collapses the conditions on one object into a single value interval —
// the form the paper's selectivity-ordered AND evaluation operates on.
package query

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"pdcquery/internal/object"
	"pdcquery/internal/region"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators supported by PDCquery_create.
const (
	OpGT Op = iota // >
	OpGE           // >=
	OpLT           // <
	OpLE           // <=
	OpEQ           // ==
)

// String returns the operator symbol.
func (op Op) String() string {
	switch op {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "=="
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Valid reports whether op is one of the defined comparison operators.
func (op Op) Valid() bool { return op <= OpEQ }

// Kind discriminates tree nodes.
type Kind uint8

// Node kinds.
const (
	KindLeaf Kind = iota
	KindAnd
	KindOr
)

// Node is one node of a query condition tree.
type Node struct {
	Kind  Kind
	Obj   object.ID // leaf only
	Op    Op        // leaf only
	Value float64   // leaf only
	Left  *Node     // and/or only
	Right *Node     // and/or only
}

// Leaf builds a single-condition node (PDCquery_create).
func Leaf(obj object.ID, op Op, value float64) *Node {
	return &Node{Kind: KindLeaf, Obj: obj, Op: op, Value: value}
}

// And combines two conditions (PDCquery_and). A nil side yields the other.
func And(l, r *Node) *Node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return &Node{Kind: KindAnd, Left: l, Right: r}
}

// Or combines two conditions (PDCquery_or). A nil side yields the other.
func Or(l, r *Node) *Node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return &Node{Kind: KindOr, Left: l, Right: r}
}

// Between builds lo < obj < hi (the common range query), with inclusivity
// controlled by the flags.
func Between(obj object.ID, lo, hi float64, loIncl, hiIncl bool) *Node {
	loOp, hiOp := OpGT, OpLT
	if loIncl {
		loOp = OpGE
	}
	if hiIncl {
		hiOp = OpLE
	}
	return And(Leaf(obj, loOp, lo), Leaf(obj, hiOp, hi))
}

// String renders the tree.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	switch n.Kind {
	case KindLeaf:
		return fmt.Sprintf("obj%d %s %g", n.Obj, n.Op, n.Value)
	case KindAnd:
		return "(" + n.Left.String() + " AND " + n.Right.String() + ")"
	case KindOr:
		return "(" + n.Left.String() + " OR " + n.Right.String() + ")"
	}
	return "<bad>"
}

// Objects returns the distinct object IDs referenced by the tree, sorted.
// The walk is a named helper and the sort monomorphic — this runs per
// request on the server's dispatch path, where recursive closures and
// sort.Slice boxing would allocate.
func (n *Node) Objects() []object.ID {
	set := map[object.ID]bool{}
	collectObjects(n, set)
	out := make([]object.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

func collectObjects(x *Node, set map[object.ID]bool) {
	if x == nil {
		return
	}
	if x.Kind == KindLeaf {
		set[x.Obj] = true
		return
	}
	collectObjects(x.Left, set)
	collectObjects(x.Right, set)
}

// Query is a full query: a condition tree plus an optional spatial region
// constraint (PDCquery_set_region). The constraint may be arbitrary and
// need not match any internal region partition.
type Query struct {
	Root       *Node
	Constraint *region.Region
}

// SetRegion attaches a spatial constraint.
func (q *Query) SetRegion(r region.Region) { q.Constraint = &r }

// Validate checks the query against the metadata: every referenced object
// must exist, and multi-object queries require identical dimensions
// (§III-A). The constraint, when set, must match the objects' rank and
// lie within their bounds.
func (q *Query) Validate(lookup func(object.ID) (*object.Object, bool)) error {
	if q.Root == nil {
		return fmt.Errorf("query: empty condition tree")
	}
	ids := q.Root.Objects()
	if len(ids) == 0 {
		return fmt.Errorf("query: no objects referenced")
	}
	var badOp error
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil || badOp != nil {
			return
		}
		if n.Kind == KindLeaf {
			if !n.Op.Valid() {
				badOp = fmt.Errorf("query: bad op %d on object %d", n.Op, n.Obj)
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(q.Root)
	if badOp != nil {
		return badOp
	}
	var dims []uint64
	for _, id := range ids {
		o, ok := lookup(id)
		if !ok {
			return fmt.Errorf("query: object %d not found", id)
		}
		if dims == nil {
			dims = o.Dims
			continue
		}
		if len(dims) != len(o.Dims) {
			return fmt.Errorf("query: objects have different ranks")
		}
		for d := range dims {
			if dims[d] != o.Dims[d] {
				return fmt.Errorf("query: objects have different dimensions")
			}
		}
	}
	if q.Constraint != nil {
		if err := q.Constraint.Validate(); err != nil {
			return fmt.Errorf("query: constraint: %w", err)
		}
		if !region.Cover(dims).Contains(*q.Constraint) {
			return fmt.Errorf("query: constraint %v outside object bounds %v", q.Constraint, dims)
		}
	}
	return nil
}

// Interval is a value range with per-bound inclusivity. The zero value is
// empty; use Full() for the unconstrained interval.
type Interval struct {
	Lo, Hi         float64
	LoIncl, HiIncl bool
}

// Full returns the interval matching every value.
func Full() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoIncl: true, HiIncl: true}
}

// FromLeaf converts a leaf comparison into an interval. FromLeaf is
// total: an invalid op yields the empty interval (matching nothing).
// Invalid ops never reach evaluation from the wire — Decode and
// Query.Validate reject them with an error first — so the empty
// interval is only defense-in-depth for direct programmatic misuse.
func FromLeaf(op Op, v float64) Interval {
	switch op {
	case OpGT:
		return Interval{Lo: v, Hi: math.Inf(1), LoIncl: false, HiIncl: true}
	case OpGE:
		return Interval{Lo: v, Hi: math.Inf(1), LoIncl: true, HiIncl: true}
	case OpLT:
		return Interval{Lo: math.Inf(-1), Hi: v, LoIncl: true, HiIncl: false}
	case OpLE:
		return Interval{Lo: math.Inf(-1), Hi: v, LoIncl: true, HiIncl: true}
	case OpEQ:
		return Interval{Lo: v, Hi: v, LoIncl: true, HiIncl: true}
	}
	return Interval{Lo: 1, Hi: -1} // empty: Lo > Hi
}

// Empty reports whether no value can satisfy the interval.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && !(iv.LoIncl && iv.HiIncl) {
		return true
	}
	return false
}

// Contains reports whether v satisfies the interval.
func (iv Interval) Contains(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	okLo := v > iv.Lo || (iv.LoIncl && v == iv.Lo)
	okHi := v < iv.Hi || (iv.HiIncl && v == iv.Hi)
	return okLo && okHi
}

// Intersect returns the conjunction of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	out := iv
	if o.Lo > out.Lo || (o.Lo == out.Lo && !o.LoIncl) {
		out.Lo, out.LoIncl = o.Lo, o.LoIncl
	}
	if o.Hi < out.Hi || (o.Hi == out.Hi && !o.HiIncl) {
		out.Hi, out.HiIncl = o.Hi, o.HiIncl
	}
	return out
}

// String formats the interval in math notation.
func (iv Interval) String() string {
	l, r := "(", ")"
	if iv.LoIncl {
		l = "["
	}
	if iv.HiIncl {
		r = "]"
	}
	return fmt.Sprintf("%s%g, %g%s", l, iv.Lo, iv.Hi, r)
}

// Conjunct maps each referenced object to the interval its values must
// lie in; it represents one AND-term of the DNF.
type Conjunct map[object.ID]Interval

// Empty reports whether any object's interval is unsatisfiable.
func (c Conjunct) Empty() bool {
	for _, iv := range c {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// ObjectsSorted returns the conjunct's object IDs in ascending order.
func (c Conjunct) ObjectsSorted() []object.ID {
	out := make([]object.ID, 0, len(c))
	for id := range c {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// MaxConjuncts bounds DNF expansion; queries built from the paper's API
// patterns stay far below it.
const MaxConjuncts = 128

// Normalize converts a condition tree to disjunctive normal form, merging
// per-object conditions within each conjunct into a single interval.
// Unsatisfiable conjuncts are dropped; the result may therefore be empty,
// meaning the query matches nothing.
func Normalize(n *Node) ([]Conjunct, error) {
	if n == nil {
		return nil, fmt.Errorf("query: nil tree")
	}
	terms, err := dnf(n)
	if err != nil {
		return nil, err
	}
	out := terms[:0]
	for _, c := range terms {
		if !c.Empty() {
			out = append(out, c)
		}
	}
	return out, nil
}

func dnf(n *Node) ([]Conjunct, error) {
	if n == nil {
		return nil, fmt.Errorf("query: nil node in tree")
	}
	switch n.Kind {
	case KindLeaf:
		return []Conjunct{{n.Obj: FromLeaf(n.Op, n.Value)}}, nil
	case KindOr:
		l, err := dnf(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := dnf(n.Right)
		if err != nil {
			return nil, err
		}
		if len(l)+len(r) > MaxConjuncts {
			return nil, fmt.Errorf("query: DNF exceeds %d conjuncts", MaxConjuncts)
		}
		return append(l, r...), nil
	case KindAnd:
		l, err := dnf(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := dnf(n.Right)
		if err != nil {
			return nil, err
		}
		if len(l)*len(r) > MaxConjuncts {
			return nil, fmt.Errorf("query: DNF exceeds %d conjuncts", MaxConjuncts)
		}
		out := make([]Conjunct, 0, len(l)*len(r))
		for _, cl := range l {
			for _, cr := range r {
				m := make(Conjunct, len(cl)+len(cr))
				for id, iv := range cl {
					m[id] = iv
				}
				for id, iv := range cr {
					if have, ok := m[id]; ok {
						m[id] = have.Intersect(iv)
					} else {
						m[id] = iv
					}
				}
				out = append(out, m)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("query: bad node kind %d", n.Kind)
}

// --- wire format -----------------------------------------------------------

const wireVersion = 1

// Encode serializes the query for broadcast to servers.
func (q *Query) Encode() []byte {
	var buf []byte
	buf = append(buf, wireVersion)
	if q.Constraint != nil {
		buf = append(buf, 1, byte(q.Constraint.Rank()))
		for d := 0; d < q.Constraint.Rank(); d++ {
			buf = binary.LittleEndian.AppendUint64(buf, q.Constraint.Offset[d])
			buf = binary.LittleEndian.AppendUint64(buf, q.Constraint.Count[d])
		}
	} else {
		buf = append(buf, 0)
	}
	return encodeNode(buf, q.Root)
}

func encodeNode(buf []byte, n *Node) []byte {
	if n == nil {
		return append(buf, 255)
	}
	buf = append(buf, byte(n.Kind))
	if n.Kind == KindLeaf {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.Obj))
		buf = append(buf, byte(n.Op))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.Value))
		return buf
	}
	buf = encodeNode(buf, n.Left)
	return encodeNode(buf, n.Right)
}

// Decode deserializes a query produced by Encode.
func Decode(b []byte) (*Query, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("query: encoded buffer too short")
	}
	if b[0] != wireVersion {
		return nil, fmt.Errorf("query: unsupported wire version %d", b[0])
	}
	q := &Query{}
	pos := 1
	if b[pos] == 1 {
		pos++
		if pos >= len(b) {
			return nil, fmt.Errorf("query: truncated constraint")
		}
		rank := int(b[pos])
		pos++
		if len(b) < pos+16*rank {
			return nil, fmt.Errorf("query: truncated constraint dims")
		}
		r := region.Region{Offset: make([]uint64, rank), Count: make([]uint64, rank)}
		for d := 0; d < rank; d++ {
			r.Offset[d] = binary.LittleEndian.Uint64(b[pos:])
			r.Count[d] = binary.LittleEndian.Uint64(b[pos+8:])
			pos += 16
		}
		q.Constraint = &r
	} else {
		pos++
	}
	root, rest, err := decodeNode(b[pos:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("query: %d trailing bytes", len(rest))
	}
	if root == nil {
		return nil, fmt.Errorf("query: empty condition tree")
	}
	q.Root = root
	return q, nil
}

func decodeNode(b []byte) (*Node, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("query: truncated node")
	}
	k := b[0]
	b = b[1:]
	if k == 255 {
		return nil, b, nil
	}
	switch Kind(k) {
	case KindLeaf:
		if len(b) < 17 {
			return nil, nil, fmt.Errorf("query: truncated leaf")
		}
		n := &Node{
			Kind:  KindLeaf,
			Obj:   object.ID(binary.LittleEndian.Uint64(b)),
			Op:    Op(b[8]),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(b[9:])),
		}
		if n.Op > OpEQ {
			return nil, nil, fmt.Errorf("query: bad op %d", n.Op)
		}
		return n, b[17:], nil
	case KindAnd, KindOr:
		l, rest, err := decodeNode(b)
		if err != nil {
			return nil, nil, err
		}
		r, rest, err := decodeNode(rest)
		if err != nil {
			return nil, nil, err
		}
		if l == nil || r == nil {
			return nil, nil, fmt.Errorf("query: %v node with missing child", Kind(k))
		}
		return &Node{Kind: Kind(k), Left: l, Right: r}, rest, nil
	}
	return nil, nil, fmt.Errorf("query: bad node kind %d", k)
}
