package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"pdcquery/internal/object"
)

// Parse builds a condition tree from a textual query such as
//
//	Energy > 2.0 and x > 100 and x < 200
//	(Energy > 3.0 or Energy < 0.1) and y >= -90
//
// Object names are resolved through the supplied lookup. Operators are
// >, >=, <, <=, = (or ==); AND/OR are case-insensitive; parentheses
// group.
func Parse(s string, resolve func(name string) (object.ID, bool)) (*Node, error) {
	p := &parser{resolve: resolve}
	p.tokens = tokenize(s)
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.tokens) {
		return nil, fmt.Errorf("query: unexpected %q", p.tokens[p.pos])
	}
	return n, nil
}

type parser struct {
	tokens  []string
	pos     int
	resolve func(string) (object.ID, bool)
}

func tokenize(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')':
			out = append(out, string(c))
			i++
		case c == '>' || c == '<' || c == '=':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			out = append(out, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) &&
				!strings.ContainsRune("()><=", rune(s[j])) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		}
	}
	return out
}

func (p *parser) peek() string {
	if p.pos < len(p.tokens) {
		return p.tokens[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (*Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (*Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *parser) parseFactor() (*Node, error) {
	if p.peek() == "(" {
		p.next()
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("query: missing closing parenthesis")
		}
		return n, nil
	}
	return p.parseComparison()
}

// parseComparison accepts "name op value", "value op name", and chained
// range comparisons in the paper's notation: "2.1 < Energy < 2.2"
// desugars to (Energy > 2.1) AND (Energy < 2.2).
func (p *parser) parseComparison() (*Node, error) {
	lhs := p.next()
	if lhs == "" {
		return nil, fmt.Errorf("query: expected a condition")
	}
	opTok := p.next()
	op, err := parseOp(opTok)
	if err != nil {
		return nil, err
	}
	rhs := p.next()
	if rhs == "" {
		return nil, fmt.Errorf("query: missing right-hand side after %q %q", lhs, opTok)
	}
	first, err := p.buildLeaf(lhs, op, rhs)
	if err != nil {
		return nil, err
	}
	// Chained comparison: the middle operand must be the object name.
	if _, chainErr := parseOp(p.peek()); chainErr == nil {
		if _, isNum := parseNumber(rhs); isNum {
			return nil, fmt.Errorf("query: chained comparison needs an object in the middle, got %q", rhs)
		}
		op2, _ := parseOp(p.next())
		bound := p.next()
		if bound == "" {
			return nil, fmt.Errorf("query: missing bound after chained %q", rhs)
		}
		second, err := p.buildLeaf(rhs, op2, bound)
		if err != nil {
			return nil, err
		}
		return And(first, second), nil
	}
	return first, nil
}

// buildLeaf interprets one comparison with the object on either side.
func (p *parser) buildLeaf(lhs string, op Op, rhs string) (*Node, error) {
	if v, ok := parseNumber(rhs); ok {
		id, found := p.resolve(lhs)
		if !found {
			return nil, fmt.Errorf("query: unknown object %q", lhs)
		}
		return Leaf(id, op, v), nil
	}
	// value op name: flip the comparison around.
	v, ok := parseNumber(lhs)
	if !ok {
		return nil, fmt.Errorf("query: %q is neither a number nor preceded by one", rhs)
	}
	id, found := p.resolve(rhs)
	if !found {
		return nil, fmt.Errorf("query: unknown object %q", rhs)
	}
	return Leaf(id, flipOp(op), v), nil
}

func parseNumber(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

func parseOp(s string) (Op, error) {
	switch s {
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case "=", "==":
		return OpEQ, nil
	}
	return 0, fmt.Errorf("query: bad operator %q", s)
}

// flipOp mirrors an operator across its operands: 2.1 < E means E > 2.1.
func flipOp(op Op) Op {
	switch op {
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	}
	return op
}
