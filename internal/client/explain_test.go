package client_test

import (
	"strings"
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/workload"

	"pdcquery/internal/core"
)

func vpicClient(t *testing.T, n int) (*core.Deployment, map[string]object.ID) {
	t.Helper()
	d := core.NewDeployment(core.Options{Servers: 4, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	c := d.CreateContainer("vpic")
	v := workload.GenerateVPIC(n, 42)
	ids := map[string]object.ID{}
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = o.ID
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, ids
}

func TestExplainOrdersBySelectivity(t *testing.T) {
	d, ids := vpicClient(t, 20000)
	// The last multi-object query: x is the most selective condition.
	q := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])[5]
	plan, err := d.Client().Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Conjuncts) != 1 || len(plan.Conjuncts[0]) != 4 {
		t.Fatalf("plan shape = %v", plan)
	}
	first := plan.Conjuncts[0][0]
	if first.Name != "x" {
		t.Errorf("first condition = %s, want x (most selective)", first.Name)
	}
	// Selectivities are ordered ascending.
	for i := 1; i < 4; i++ {
		if plan.Conjuncts[0][i].SelUpper < plan.Conjuncts[0][i-1].SelUpper {
			t.Errorf("plan not ordered at %d", i)
		}
	}
	// The estimate brackets the real count.
	res, err := d.Client().RunCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits < plan.EstLower || res.Sel.NHits > plan.EstUpper {
		t.Errorf("truth %d outside plan estimate [%d, %d]", res.Sel.NHits, plan.EstLower, plan.EstUpper)
	}
	// Rendering mentions every object and the estimate.
	s := plan.String()
	for _, want := range []string{"Energy", "x", "y", "z", "estimated hits"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestExplainOr(t *testing.T) {
	d, ids := vpicClient(t, 10000)
	q := &query.Query{Root: query.Or(
		query.Between(ids["Energy"], 2.1, 2.2, false, false),
		query.Leaf(ids["x"], query.OpLT, 10))}
	plan, err := d.Client().Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Conjuncts) != 2 {
		t.Fatalf("or plan terms = %d", len(plan.Conjuncts))
	}
	if !strings.Contains(plan.String(), "OR") {
		t.Error("plan string missing OR separator")
	}
	if _, err := d.Client().Explain(&query.Query{Root: query.Leaf(999, query.OpGT, 0)}); err == nil {
		t.Error("explain of unknown object succeeded")
	}
}
