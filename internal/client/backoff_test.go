// White-box regression tests for the busy-retry backoff: the exponent
// clamp at high attempt counts, and the interaction between busy retries
// and a server that shut down or crashed mid-cycle.
package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/metadata"
	"pdcquery/internal/server"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/vclock"
)

// countingSleeper records every backoff sleep without waiting.
type countingSleeper struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (s *countingSleeper) Sleep(d time.Duration) {
	s.mu.Lock()
	s.sleeps = append(s.sleeps, d)
	s.mu.Unlock()
}

func (s *countingSleeper) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sleeps)
}

func newBackoffClient(t *testing.T) (*Client, transport.Conn) {
	t.Helper()
	clientSide, serverSide := transport.Pipe()
	c := New([]transport.Conn{clientSide}, nil)
	t.Cleanup(func() { c.Close() })
	return c, serverSide
}

func busyReply(retryAfterNs uint64) reply {
	br := &server.BusyResponse{RetryAfterNs: retryAfterNs, Queued: 1}
	return reply{srv: 0, msg: transport.Message{Type: server.MsgBusy, Payload: br.Encode()}}
}

// TestBusyBackoffClampHighAttempts pins the shift-overflow fix: before
// the exponent clamp, attempt counts past ~40 shifted busyBaseWait to
// zero or negative (50µs << 63 == 0), so a large retry budget turned the
// capped backoff into a hot loop of zero-length sleeps. Every attempt
// must wait in (0, busyMaxWait], and attempts past the ramp must wait
// exactly busyMaxWait.
func TestBusyBackoffClampHighAttempts(t *testing.T) {
	c, _ := newBackoffClient(t)
	c.SetBusyRetries(1000)
	for _, n := range []int{1, 2, 8, 39, 40, 62, 63, 64, 65, 100, 999} {
		attempts := []int{n - 1} // busyBackoff increments to n
		wait, err := c.busyBackoff(busyReply(0), attempts, 1000)
		if err != nil {
			t.Fatalf("attempt %d: unexpected error %v", n, err)
		}
		if wait <= 0 {
			t.Fatalf("attempt %d: wait %v, want positive (shift overflow)", n, wait)
		}
		if wait > busyMaxWait {
			t.Fatalf("attempt %d: wait %v exceeds cap %v", n, wait, busyMaxWait)
		}
		// The ramp reaches the cap at busyBaseWait<<8 > busyMaxWait.
		if n >= 9 && wait != busyMaxWait {
			t.Fatalf("attempt %d: wait %v, want cap %v", n, wait, busyMaxWait)
		}
	}
	// The ramp itself must still be exponential below the cap.
	for n := 1; n <= 7; n++ {
		attempts := []int{n - 1}
		wait, err := c.busyBackoff(busyReply(0), attempts, 1000)
		if err != nil {
			t.Fatalf("attempt %d: %v", n, err)
		}
		if want := busyBaseWait << uint(n-1); wait != want {
			t.Fatalf("attempt %d: wait %v, want %v", n, wait, want)
		}
	}
}

// TestBusyBackoffBudgetExhausted: exceeding the configured budget still
// fails with sched.ErrBusy, including budgets far past the old overflow
// boundary.
func TestBusyBackoffBudgetExhausted(t *testing.T) {
	c, _ := newBackoffClient(t)
	attempts := []int{100}
	if _, err := c.busyBackoff(busyReply(0), attempts, 100); err == nil {
		t.Fatal("want ErrBusy past the budget, got nil")
	}
}

// TestBusyRetryDeadServerTerminal pins the busy-retry vs. crash/shutdown
// interaction: a server that pushes back with MsgBusy and then goes away
// entirely (connection closed, e.g. crash or post-Shutdown teardown)
// must fail the call with a typed terminal connection error after at
// most one more backoff — not sleep through the remaining retry budget
// or hang waiting for a reply that cannot come.
func TestBusyRetryDeadServerTerminal(t *testing.T) {
	c, serverSide := newBackoffClient(t)
	sleeper := &countingSleeper{}
	c.SetSleeper(sleeper)
	c.SetBusyRetries(64) // large budget the buggy path would burn through

	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := serverSide.Recv()
		if err != nil {
			return
		}
		br := &server.BusyResponse{RetryAfterNs: 1000, Queued: 9}
		serverSide.Send(transport.Message{Type: server.MsgBusy, ReqID: m.ReqID, Payload: br.Encode()})
		serverSide.Close() // the server is gone; no further replies
	}()

	_, _, _, err := c.broadcastCtx(context.Background(), server.MsgTagQuery, func(int) []byte { return nil })
	<-done
	if !errors.Is(err, ErrServerDown) {
		t.Fatalf("want ErrServerDown, got %v", err)
	}
	var sde *ServerDownError
	if !errors.As(err, &sde) || sde.Srv != 0 {
		t.Fatalf("want ServerDownError for server 0, got %v", err)
	}
	if n := sleeper.count(); n > 1 {
		t.Fatalf("client slept %d times against a dead server, want <= 1", n)
	}
}

// TestBusyRetryShutdownServerImmediate runs the same interaction against
// a real server with a Frozen clock: the client's first request gets
// queued behind Shutdown, so the reply is a terminal "shutting down"
// error, never a busy-retry cycle.
func TestBusyRetryShutdownServerImmediate(t *testing.T) {
	meta := metadata.NewService()
	srv := server.New(server.Config{ID: 0, N: 1, Meta: meta, Clock: telemetry.Frozen(42)})
	clientSide, serverSide := transport.Pipe()
	go func() {
		srv.Serve(serverSide)
		serverSide.Close()
	}()
	c := New([]transport.Conn{clientSide}, meta)
	defer c.Close()
	sleeper := &countingSleeper{}
	c.SetSleeper(sleeper)

	srv.Shutdown()
	_, _, err := c.QueryTag(nil)
	if err == nil {
		t.Fatal("want terminal error from a shut-down server, got nil")
	}
	if n := sleeper.count(); n != 0 {
		t.Fatalf("client slept %d times against a shut-down server, want 0", n)
	}
}

// TestCallTimeoutWedgedServer: a server that accepts the request and
// never answers (socket open, process wedged) must not hang the client
// forever — SetCallTimeout bounds the call with a typed ErrTimeout.
func TestCallTimeoutWedgedServer(t *testing.T) {
	c, serverSide := newBackoffClient(t)
	defer serverSide.Close()
	c.SetCallTimeout(30 * time.Millisecond)

	_, _, _, err := c.broadcastCtx(context.Background(), server.MsgTagQuery, func(int) []byte { return nil })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
}

// TestRedialMasksDroppedConn: with a redial function installed, a
// connection dropped before a call is transparently re-established and
// the call succeeds — the fault is masked, not surfaced.
func TestRedialMasksDroppedConn(t *testing.T) {
	clientSide, serverSide := transport.Pipe()
	// A trivial tag-query responder we can re-spawn per connection.
	serve := func(conn transport.Conn) {
		for {
			m, err := conn.Recv()
			if err != nil || m.Type == server.MsgShutdown {
				return
			}
			conn.Send(transport.Message{Type: server.MsgTagResult, ReqID: m.ReqID, Payload: server.EncodeTagResult(vclock.Cost{}, nil)})
		}
	}
	go serve(serverSide)
	c := New([]transport.Conn{clientSide}, nil)
	defer c.Close()
	c.SetRedial(func(srv int) (transport.Conn, error) {
		cs, ss := transport.Pipe()
		go serve(ss)
		return cs, nil
	})

	if _, _, err := c.QueryTag(nil); err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	serverSide.Close() // drop the connection out from under the client
	if _, _, err := c.QueryTag(nil); err != nil {
		t.Fatalf("query after drop with redial installed: %v", err)
	}
}

// TestDroppedConnNoRedialTyped: the same drop without a redial function
// is a deterministic typed error, not a hang.
func TestDroppedConnNoRedialTyped(t *testing.T) {
	c, serverSide := newBackoffClient(t)
	serverSide.Close()
	_, _, err := c.QueryTag(nil)
	if !errors.Is(err, ErrServerDown) {
		t.Fatalf("want ErrServerDown, got %v", err)
	}
}
