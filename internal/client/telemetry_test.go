// Tests for the client-side observability surfaces: traced runs, fleet
// stats aggregation, and the EXPLAIN ANALYZE renderer.
package client_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pdcquery/internal/client"
	"pdcquery/internal/query"
	"pdcquery/internal/telemetry"
)

// analyzedActual sums a condition's observed in/out counts across all
// server traces (mirroring the renderer's aggregation).
func analyzedActual(t *testing.T, a *client.Analyzed, ci int, cond client.PlanCondition) (in, out int64) {
	t.Helper()
	name := fmt.Sprintf("conjunct.%d", ci)
	inKey := fmt.Sprintf("cond.%d.in", cond.Obj)
	outKey := fmt.Sprintf("cond.%d.out", cond.Obj)
	for _, tr := range a.Res.Traces {
		if tr == nil {
			continue
		}
		tr.Walk(func(s *telemetry.Span) {
			if s.Kind != telemetry.SpanConjunct || s.Name != name {
				return
			}
			if v, ok := s.Int(inKey); ok {
				in += v
			}
			if v, ok := s.Int(outKey); ok {
				out += v
			}
		})
	}
	return in, out
}

func TestRunTraced(t *testing.T) {
	d, oid := deploy(t, 10000, 4)
	q := &query.Query{Root: query.Between(oid, 10, 20, false, false)}
	res, err := d.Client().RunTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Error("no trace ID assigned")
	}
	if len(res.Traces) != 4 {
		t.Fatalf("traces = %d, want one per server", len(res.Traces))
	}
	// Every server returned a span tree whose root cost is its share of
	// the parallel phase; the max equals the aggregated ServerMax.
	var max int64
	for i, tr := range res.Traces {
		if tr == nil {
			t.Fatalf("server %d returned no trace", i)
		}
		if tr.Trace != res.TraceID {
			t.Errorf("server %d trace ID = %d, want %d", i, tr.Trace, res.TraceID)
		}
		if c := tr.Cost.Total().Nanoseconds(); c > max {
			max = c
		}
	}
	if max != res.Info.ServerMax.Total().Nanoseconds() {
		t.Errorf("max root span cost %d != ServerMax %d", max, res.Info.ServerMax.Total().Nanoseconds())
	}
	// Per-server span hit counts sum to the merged result.
	var hits int64
	for _, tr := range res.Traces {
		if h, ok := tr.Int("hits"); ok {
			hits += h
		}
	}
	if uint64(hits) != res.Sel.NHits {
		t.Errorf("span hits = %d, merged = %d", hits, res.Sel.NHits)
	}
	// The assembled client root adopts every server tree.
	root := res.Trace()
	if root == nil || len(root.Children) != 4 {
		t.Fatalf("client root = %+v", root)
	}
	if root.Cost != res.Info.Elapsed {
		t.Errorf("client root cost %v != elapsed %v", root.Cost, res.Info.Elapsed)
	}
	// Untraced runs carry no trace.
	plain, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Traces != nil || plain.Trace() != nil {
		t.Error("untraced run carries a trace")
	}
}

func TestRunTracedDeterministic(t *testing.T) {
	// Two identical deployments produce byte-identical traces for the
	// same (first) query.
	run := func() []byte {
		d, oid := deploy(t, 5000, 2)
		q := &query.Query{Root: query.Leaf(oid, query.OpGT, 50)}
		res, err := d.Client().RunTraced(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace().Encode(false)
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Error("client trace not deterministic across identical runs")
	}
}

func TestServerStats(t *testing.T) {
	d, oid := deploy(t, 10000, 4)
	const queries = 3
	for i := 0; i < queries; i++ {
		q := &query.Query{Root: query.Leaf(oid, query.OpGT, float64(10*i))}
		if _, err := d.Client().Run(q); err != nil {
			t.Fatal(err)
		}
	}
	perServer, merged, err := d.Client().ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(perServer) != 4 {
		t.Fatalf("perServer = %d", len(perServer))
	}
	// Each server saw each broadcast query; the merged view counts all of
	// them, and its cost distribution is the exact merge of the
	// per-server distributions.
	var sum int64
	for i, reg := range perServer {
		c := reg.Counter("query.count")
		if c != queries {
			t.Errorf("server %d query.count = %d, want %d", i, c, queries)
		}
		sum += c
	}
	if got := merged.Counter("query.count"); got != sum {
		t.Errorf("merged query.count = %d, want %d", got, sum)
	}
	d1 := merged.Dist("query.cost_ns")
	if d1 == nil || d1.Count() != uint64(sum) {
		t.Fatalf("merged cost distribution = %+v", d1)
	}
	want := telemetry.NewDistribution()
	for _, reg := range perServer {
		if pd := reg.Dist("query.cost_ns"); pd != nil {
			want.Merge(pd)
		}
	}
	if d1.Sum != want.Sum || d1.Count() != want.Count() {
		t.Errorf("merged distribution != manual merge: %+v vs %+v", d1, want)
	}
}

func TestExplainAnalyze(t *testing.T) {
	d, ids := vpicClient(t, 20000)
	q := &query.Query{Root: query.And(
		query.Leaf(ids["Energy"], query.OpGT, 2.0),
		query.Leaf(ids["x"], query.OpLT, 100),
	)}
	a, err := d.Client().ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan == nil || a.Res == nil || a.Res.Traces == nil {
		t.Fatal("analyze missing plan or traced result")
	}
	s := a.String()
	for _, want := range []string{"est ", "actual", "estimated hits", "actual hits", "cost:"} {
		if !strings.Contains(s, want) {
			t.Errorf("analyze output missing %q:\n%s", want, s)
		}
	}
	// The first (most selective) condition was evaluated against real
	// elements: its actual in-count is positive and its out-count equals
	// the per-condition survivors, which cannot exceed in.
	first := a.Plan.Conjuncts[0][0]
	in, out := analyzedActual(t, a, 0, first)
	if in <= 0 || out < 0 || out > in {
		t.Errorf("first condition actuals: in=%d out=%d", in, out)
	}
	// Actual hits within the estimated bracket.
	if a.Res.Info.NHits < a.Plan.EstLower || a.Res.Info.NHits > a.Plan.EstUpper {
		t.Errorf("actual %d outside estimate [%d, %d]", a.Res.Info.NHits, a.Plan.EstLower, a.Plan.EstUpper)
	}
}

// TestServerEvents: the client can pull every server's flight-recorder
// ring over MsgEvents; each rank shows the queries it served, stamped
// with its own rank, and no wall-clock reading crosses the wire.
func TestServerEvents(t *testing.T) {
	d, oid := deploy(t, 10000, 2)
	const queries = 2
	for i := 0; i < queries; i++ {
		q := &query.Query{Root: query.Leaf(oid, query.OpGT, float64(10 * i))}
		if _, err := d.Client().Run(q); err != nil {
			t.Fatal(err)
		}
	}
	events, totals, err := d.Client().ServerEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || len(totals) != 2 {
		t.Fatalf("got %d event sets, %d totals, want 2", len(events), len(totals))
	}
	for srv := range events {
		if totals[srv] == 0 || len(events[srv]) == 0 {
			t.Fatalf("server %d ring is empty", srv)
		}
		var done int
		for i, e := range events[srv] {
			if e.WallNanos != 0 {
				t.Errorf("server %d event %d: wall clock %d on the wire", srv, i, e.WallNanos)
			}
			if e.Srv != int32(srv) {
				t.Errorf("server %d event %d: stamped srv=%d", srv, i, e.Srv)
			}
			if e.Kind == telemetry.EvQueryDone {
				done++
			}
		}
		if done != queries {
			t.Errorf("server %d recorded %d query-done events, want %d", srv, done, queries)
		}
	}
}
