// White-box tests for the client-side flight-recorder wiring: busy
// pushback and redial recovery must leave breadcrumbs in an installed
// recorder, and an uninstalled recorder must stay a no-op.
package client

import (
	"errors"
	"testing"

	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

// TestBusyBackoffRecordsEvent: every busy pushback records EvBusy with
// the server rank, attempt number, and the chosen backoff wait.
func TestBusyBackoffRecordsEvent(t *testing.T) {
	c, _ := newBackoffClient(t)
	rec := telemetry.NewRecorder(16, nil)
	c.SetRecorder(rec)
	attempts := []int{0}
	wait, err := c.busyBackoff(busyReply(0), attempts, 5)
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Snapshot()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != telemetry.EvBusy {
		t.Fatalf("kind = %s, want busy", e.Kind)
	}
	if e.Srv != 0 || e.A != 1 || e.B != int64(wait) {
		t.Errorf("event = srv=%d a=%d b=%d, want srv=0 a=1 b=%d", e.Srv, e.A, e.B, wait)
	}
	// A second attempt bumps the attempt number.
	if _, err := c.busyBackoff(busyReply(0), attempts, 5); err != nil {
		t.Fatal(err)
	}
	events = rec.Snapshot()
	if len(events) != 2 || events[1].A != 2 {
		t.Fatalf("second busy event = %+v", events)
	}
}

// TestEnsureConnRecordsRedial: a successful reconnection records
// EvRedial for the recovered rank; a failed one records nothing.
func TestEnsureConnRecordsRedial(t *testing.T) {
	c, _ := newBackoffClient(t)
	rec := telemetry.NewRecorder(16, nil)
	c.SetRecorder(rec)

	// Mark the connection dead with no redial installed: typed failure,
	// no event.
	c.mu.Lock()
	c.downErr[0] = errors.New("connection lost")
	c.mu.Unlock()
	if err := c.ensureConn(0); err == nil {
		t.Fatal("ensureConn succeeded without a redial function")
	}
	if got := len(rec.Snapshot()); got != 0 {
		t.Fatalf("failed recovery recorded %d events", got)
	}

	// Install a redial seam and recover: exactly one EvRedial.
	c.SetRedial(func(srv int) (transport.Conn, error) {
		local, _ := transport.Pipe()
		return local, nil
	})
	if err := c.ensureConn(0); err != nil {
		t.Fatal(err)
	}
	events := rec.Snapshot()
	if len(events) != 1 || events[0].Kind != telemetry.EvRedial || events[0].Srv != 0 {
		t.Fatalf("events after recovery = %+v, want one redial for srv 0", events)
	}

	// Healthy connection: ensureConn is a no-op and records nothing new.
	if err := c.ensureConn(0); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Snapshot()); got != 1 {
		t.Fatalf("no-op recovery recorded extra events (%d total)", got)
	}
}

// TestRecorderUninstalledIsNoop: the recovery paths must tolerate a nil
// recorder (the default) — Record is nil-safe by contract.
func TestRecorderUninstalledIsNoop(t *testing.T) {
	c, _ := newBackoffClient(t)
	if _, err := c.busyBackoff(busyReply(0), []int{0}, 5); err != nil {
		t.Fatal(err)
	}
	c.SetRedial(func(srv int) (transport.Conn, error) {
		local, _ := transport.Pipe()
		return local, nil
	})
	c.mu.Lock()
	c.downErr[0] = errors.New("connection lost")
	c.mu.Unlock()
	if err := c.ensureConn(0); err != nil {
		t.Fatal(err)
	}
}
