// Text-query client API: parse the declarative statement locally,
// broadcast the canonical text to every server (each plans it against
// the same replicated metadata, so every server derives the identical
// plan), and merge the partial results — selections for ids, counts for
// count, mergeable histograms for hist. EXPLAIN renders the client-side
// plan without executing; EXPLAIN ANALYZE executes with tracing and
// pairs estimated rows with the observed per-condition actuals.
package client

import (
	"context"
	"fmt"
	"time"

	"pdcquery/internal/histogram"
	"pdcquery/internal/object"
	"pdcquery/internal/plan"
	"pdcquery/internal/qlang"
	"pdcquery/internal/selection"
	"pdcquery/internal/server"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/vclock"
)

// TextResult is the outcome of one text query.
type TextResult struct {
	// Statement is the parsed form; Text its canonical rendering (what
	// was sent to the servers, explain prefix stripped).
	Statement *qlang.Query
	Text      string
	// Sel is the merged selection (count-only unless the projection was
	// ids). Nil for plain EXPLAIN, which does not execute.
	Sel *selection.Selection
	// Hist is the merged value histogram of a hist projection.
	Hist *histogram.Histogram
	// Plan is the client-derived plan (identical to each server's: both
	// are pure functions of the replicated metadata and the text).
	Plan *plan.Plan
	// Explain is the rendered EXPLAIN / EXPLAIN ANALYZE text; empty for
	// plain statements.
	Explain string
	// Info models the call's execution profile (zero for plain EXPLAIN).
	Info Info
	// Traces holds each server's span tree when the statement was
	// EXPLAIN ANALYZE.
	Traces []*telemetry.Span
}

// RunText parses and executes a declarative query statement. force pins
// the planner's strategy choice (plan.ForceAuto lets cost decide).
func (c *Client) RunText(text string, force plan.Force) (*TextResult, error) {
	return c.RunTextContext(context.Background(), text, force)
}

// RunTextContext is RunText with cancellation.
func (c *Client) RunTextContext(ctx context.Context, text string, force plan.Force) (*TextResult, error) {
	parsed, err := qlang.Parse(text)
	if err != nil {
		return nil, err
	}
	if c.meta == nil {
		return nil, fmt.Errorf("client: no metadata; call SyncMeta first")
	}
	low, err := parsed.Lower(func(name string) (object.ID, bool) {
		o, ok := c.meta.GetByName(name)
		if !ok {
			return 0, false
		}
		return o.ID, true
	})
	if err != nil {
		return nil, err
	}
	res := &TextResult{Statement: parsed, Text: parsed.CacheKey()}
	res.Plan, err = plan.Build(c.meta, low.Query, force)
	if err != nil {
		return nil, err
	}
	if parsed.Explain && !parsed.Analyze {
		// Plain EXPLAIN: metadata only, no execution.
		res.Explain = res.Plan.Format(res.Text)
		return res, nil
	}

	var flags byte
	if low.Projection.Kind == qlang.ProjIDs {
		flags |= server.FlagWantSelection
	}
	if parsed.Analyze {
		flags |= server.FlagWantTrace
	}
	c.mu.Lock()
	useEpoch, epoch := c.useEpoch, c.epoch
	c.mu.Unlock()
	if useEpoch {
		flags |= server.FlagEpoch
	}
	payload := server.EncodeTextQuery(flags, epoch, byte(force), res.Text)
	_, msgs, busyWait, err := c.broadcastCtx(ctx, server.MsgTextQuery, func(int) []byte { return payload })
	if err != nil {
		return nil, err
	}
	res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Network, c.wire(len(payload))+busyWait))
	if parsed.Analyze {
		res.Traces = make([]*telemetry.Span, len(msgs))
	}

	var parts []*selection.Selection
	var hists []*histogram.Histogram
	var respBytes int
	for i, m := range msgs {
		tr, err := server.DecodeTextResult(m.Payload)
		if err != nil {
			return nil, err
		}
		res.Info.ServerMax = res.Info.ServerMax.Max(tr.Base.Cost)
		res.Info.Stats.Add(tr.Base.Stats)
		respBytes += len(m.Payload)
		parts = append(parts, tr.Base.Sel)
		if tr.Hist != nil {
			hists = append(hists, tr.Hist)
		}
		if res.Traces != nil {
			res.Traces[i] = tr.Base.Trace
		}
	}
	res.Sel = selection.MergeAll(parts)
	res.Info.NHits = res.Sel.NHits
	if low.Projection.Kind == qlang.ProjHist {
		res.Hist = histogram.MergeAll(hists)
	}
	res.Info.Elapsed = res.Info.Elapsed.Add(res.Info.ServerMax)
	if c.sharedBW > 0 && res.Info.Stats.StorageBytes > 0 {
		floor := time.Duration(float64(res.Info.Stats.StorageBytes) / c.sharedBW * 1e9)
		if extra := floor - res.Info.ServerMax.Total(); extra > 0 {
			res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Storage, extra))
		}
	}
	res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Network, c.wire(respBytes)))
	res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Compute, time.Duration(res.Sel.NHits)*mergeCostPerHit))

	if parsed.Explain {
		res.Explain = res.Plan.FormatAnalyze(res.Text, traceActuals(res.Traces))
	}
	return res, nil
}

// traceActuals builds the EXPLAIN ANALYZE actuals lookup from the
// servers' span trees: for conjunct ci and condition object id, the
// summed in/out element counts across all servers.
func traceActuals(traces []*telemetry.Span) plan.Actuals {
	return func(ci int, id object.ID) (in, out int64, ok bool) {
		name := fmt.Sprintf("conjunct.%d", ci)
		inKey := fmt.Sprintf("cond.%d.in", id)
		outKey := fmt.Sprintf("cond.%d.out", id)
		for _, t := range traces {
			if t == nil {
				continue
			}
			t.Walk(func(s *telemetry.Span) {
				if s.Kind != telemetry.SpanConjunct || s.Name != name {
					return
				}
				if v, found := s.Int(inKey); found {
					in += v
					ok = true
				}
				if v, found := s.Int(outKey); found {
					out += v
					ok = true
				}
			})
		}
		return in, out, ok
	}
}
