// Package client is the PDC client library: the application-facing side
// of the Fig. 1 API. It serializes query conditions, broadcasts them to
// every server, and aggregates partial results in a background goroutine
// per connection — the paper's asynchronous client/server communication
// (§III-C).
//
// Virtual-time accounting composes the end-to-end elapsed model the
// experiments report: broadcast wire cost, the slowest server's
// evaluation cost (servers run in parallel), the serialized response
// transfers into the client, and the client-side merge.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"pdcquery/internal/exec"
	"pdcquery/internal/histogram"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/sched"
	"pdcquery/internal/selection"
	"pdcquery/internal/server"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/vclock"
)

// Info reports the modeled execution profile of one client call.
type Info struct {
	// Elapsed is the modeled end-to-end time of the call.
	Elapsed vclock.Cost
	// ServerMax is the slowest server's evaluation cost (the parallel
	// phase of Elapsed).
	ServerMax vclock.Cost
	// Stats aggregates evaluation counters over all servers.
	Stats exec.Stats
	// NHits is the total number of matching elements.
	NHits uint64
}

// mergeCostPerHit models the client-side aggregation of results.
const mergeCostPerHit = 2 * time.Nanosecond

// Busy-retry policy: when a server's admission control rejects a request
// (MsgBusy), the client backs off and resends the same request ID to
// that server only — capped exponential backoff, never below the
// server's own retry-after hint. Waits are modeled in virtual time (they
// add to Info.Elapsed); real sleeping is opt-in via SetSleeper.
const (
	busyMaxRetries = 8
	busyBaseWait   = 50 * time.Microsecond
	busyMaxWait    = 10 * time.Millisecond
	// busyMaxShift bounds the backoff exponent: busyBaseWait<<8 already
	// exceeds busyMaxWait, and shifting a Duration by ~40+ would wrap
	// negative (and by 64+ is undefined), so larger retry budgets must
	// clamp the exponent before shifting, not after.
	busyMaxShift = 16
	// maxRedials caps reconnection attempts per server within one call:
	// a connection that dies repeatedly during a single request is
	// surfaced as ServerDownError rather than retried forever.
	maxRedials = 2
)

// Client talks to an N-server PDC deployment.
type Client struct {
	conns []transport.Conn
	meta  *metadata.Service
	// sharedBW models the aggregate backend bandwidth (bytes/s) of the
	// shared file system: when a query's fleet-wide storage traffic
	// exceeds what the slowest server alone accounts for, the backend is
	// the bottleneck. Zero disables the floor.
	sharedBW float64
	// wireLatency and wireBW parameterize the modeled interconnect
	// (zero values fall back to the transport defaults).
	wireLatency time.Duration
	wireBW      float64

	// sleeper paces busy-retry backoff in real time. The default NoSleep
	// returns immediately (the wait still counts in virtual time), so
	// tests and the simulation never block; daemons may install
	// telemetry.WallSleep.
	sleeper telemetry.Sleeper

	// rec, when set, records client-side recovery events (EvRedial,
	// EvBusy) into a flight recorder. Install before issuing calls
	// (SetRecorder); nil is fine — Record is nil-safe.
	rec *telemetry.Recorder

	// closeCtx ends at Close and unblocks every in-flight broadcast and
	// async query, so background aggregators cannot outlive the client.
	closeCtx    context.Context
	closeCancel context.CancelFunc

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]chan reply
	// downErr[i] records why server i's connection died (nil = healthy).
	// Cleared by a successful redial.
	downErr []error
	// redial, when set, re-establishes the connection to one server after
	// its reader died (SetRedial). Without it a lost connection is
	// terminal for every call that needs that server. redialMu serializes
	// recovery so concurrent calls share one reconnection attempt — it is
	// held across the blocking dial, so it cannot be mu itself.
	redial   func(srv int) (transport.Conn, error)
	redialMu sync.Mutex
	// callTimeout bounds each broadcast in wall-clock time (0 = none).
	// It is the client's defense against a server that is reachable but
	// silent: the call fails with ErrTimeout instead of hanging.
	callTimeout time.Duration
	// busyRetries is the per-server MsgBusy retry budget (default
	// busyMaxRetries; SetBusyRetries overrides).
	busyRetries int
	// epoch, when useEpoch is set, stamps every query request with the
	// placement epoch (cluster mode): servers reject mismatches so a
	// query never spans two placements.
	epoch    uint64
	useEpoch bool
	// router, when set, overrides the static region→server mapping for
	// get-data requests (cluster mode routes each region to its
	// placement primary instead of region mod N).
	router func(o *object.Object, region int) int
	budget      time.Duration // virtual-time deadline stamped on requests; 0 = none
	wg          sync.WaitGroup
	closed      bool
}

type reply struct {
	srv int
	msg transport.Message
	// down marks a connection-lost notification rather than a server
	// reply: the reader for srv died and pending calls must recover
	// (redial + resend) or fail with a typed error.
	down bool
}

// New connects a client to the given server connections. meta may be nil
// for remote deployments; call SyncMeta to fetch a snapshot.
func New(conns []transport.Conn, meta *metadata.Service) *Client {
	c := &Client{
		conns:       conns,
		meta:        meta,
		sleeper:     telemetry.NoSleep,
		busyRetries: busyMaxRetries,
		nextReq:     1,
		pending:     make(map[uint64]chan reply),
		downErr:     make([]error, len(conns)),
	}
	c.closeCtx, c.closeCancel = context.WithCancel(context.Background())
	// The background aggregator threads (§III-C): one reader per server
	// connection routing responses to the issuing call.
	for i, conn := range conns {
		c.wg.Add(1)
		go c.reader(i, conn)
	}
	return c
}

func (c *Client) reader(srv int, conn transport.Conn) {
	defer c.wg.Done()
	for {
		m, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			if c.conns[srv] != conn {
				// A redial already replaced this connection; this reader is
				// stale and its death is old news.
				c.mu.Unlock()
				return
			}
			if c.closed {
				// Record the closure so callers racing with Close get a
				// real error instead of a nil error with no replies.
				c.downErr[srv] = ErrClosed
			} else {
				c.downErr[srv] = fmt.Errorf("client: server %d connection: %w", srv, err)
			}
			for _, ch := range c.pending {
				select {
				case ch <- reply{srv: srv, down: true}:
				default:
				}
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[m.ReqID]
		stale := c.conns[srv] != conn
		c.mu.Unlock()
		if stale {
			// Drop replies raced in on a superseded connection: the call
			// has already resent the request on the replacement.
			return
		}
		if ch != nil {
			ch <- reply{srv: srv, msg: m}
		}
	}
}

// SetSharedBW installs the shared storage backend bandwidth used for the
// saturation floor (deployments pass their cost model's PFS SharedBW).
func (c *Client) SetSharedBW(bw float64) { c.sharedBW = bw }

// SetWireModel overrides the modeled interconnect parameters (scaled
// deployments shrink the wire latency together with storage latencies).
func (c *Client) SetWireModel(latency time.Duration, bw float64) {
	c.wireLatency, c.wireBW = latency, bw
}

// SetSleeper installs the real-time pacing used between busy retries.
// The default never sleeps (waits are modeled in virtual time only);
// daemons talking to remote servers may install telemetry.WallSleep.
func (c *Client) SetSleeper(s telemetry.Sleeper) { c.sleeper = s }

// SetRecorder installs a flight recorder for client-side recovery
// events: every successful redial records EvRedial and every busy
// pushback records EvBusy. Install before issuing calls.
func (c *Client) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

// SetRedial installs a reconnection function: when server srv's
// connection dies mid-call, the client asks redial for a replacement,
// resends the in-flight request, and the fault is masked. Without it a
// dead connection terminates affected calls with ServerDownError.
// Install before issuing calls; deployments wire this to re-dial (or
// re-pipe) the same server rank.
func (c *Client) SetRedial(redial func(srv int) (transport.Conn, error)) {
	c.mu.Lock()
	c.redial = redial
	c.mu.Unlock()
}

// SetCallTimeout bounds every subsequent broadcast in wall-clock time:
// a call that outlives d fails with an error matching ErrTimeout (and
// context.DeadlineExceeded). Zero disables the bound. This is the
// client's guarantee that a dead-but-undetected server cannot hang a
// query forever.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.callTimeout = d
	c.mu.Unlock()
}

// SetEpoch stamps every subsequent query request with a placement epoch
// (cluster mode). Servers compare it against their installed view and
// answer an epoch mismatch error when a rebalance moved placement under
// the client — the cluster session refreshes its view and retries.
func (c *Client) SetEpoch(epoch uint64) {
	c.mu.Lock()
	c.epoch = epoch
	c.useEpoch = true
	c.mu.Unlock()
}

// SetRouter overrides the static region→server mapping used to group
// get-data coordinates (cluster mode: each region is asked from its
// placement primary). The function maps (object, region index) to a
// connection rank.
func (c *Client) SetRouter(router func(o *object.Object, region int) int) {
	c.mu.Lock()
	c.router = router
	c.mu.Unlock()
}

// SetBusyRetries overrides the per-server MsgBusy retry budget (n <= 0
// restores the default). Large budgets are safe: the backoff exponent is
// clamped, so waits cap at busyMaxWait instead of wrapping to zero.
func (c *Client) SetBusyRetries(n int) {
	c.mu.Lock()
	if n <= 0 {
		n = busyMaxRetries
	}
	c.busyRetries = n
	c.mu.Unlock()
}

// ensureConn re-establishes server srv's connection if it is down,
// serializing concurrent recovery attempts: the first caller redials,
// the rest find the connection healthy and return immediately. Terminal
// outcomes are typed — ErrClosed when the client is closing, otherwise
// ServerDownError wrapping the cause.
func (c *Client) ensureConn(srv int) error {
	c.redialMu.Lock()
	defer c.redialMu.Unlock()
	c.mu.Lock()
	down := c.downErr[srv]
	closed := c.closed
	redial := c.redial
	old := c.conns[srv]
	c.mu.Unlock()
	if closed || errors.Is(down, ErrClosed) {
		return ErrClosed
	}
	if down == nil {
		return nil
	}
	if redial == nil {
		return &ServerDownError{Srv: srv, Cause: down}
	}
	nc, err := redial(srv)
	if err != nil {
		return &ServerDownError{Srv: srv, Cause: err}
	}
	// Unblock the stale reader (it sees conns[srv] != its conn and exits
	// silently) and swap in the replacement before its reader starts.
	// The old conn is already dead; its close error carries no news.
	_ = old.Close()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		// The replacement never carried traffic; ErrClosed is the error
		// the caller needs.
		_ = nc.Close()
		return ErrClosed
	}
	c.conns[srv] = nc
	c.downErr[srv] = nil
	c.wg.Add(1)
	c.mu.Unlock()
	go c.reader(srv, nc)
	c.rec.Record(telemetry.EvRedial, 0, int32(srv), 0, 0, 0)
	return nil
}

// SetQueryBudget sets the virtual-time deadline stamped on every
// subsequent request (zero clears it). Servers abort evaluation once a
// request's accounted virtual cost exceeds its budget and reply with an
// error frame — the client-visible end of the scheduler's end-to-end
// cancellation path.
func (c *Client) SetQueryBudget(d time.Duration) {
	c.mu.Lock()
	c.budget = d
	c.mu.Unlock()
}

// wire returns the modeled cost of moving n payload bytes.
func (c *Client) wire(n int) time.Duration {
	lat, bw := c.wireLatency, c.wireBW
	if lat == 0 {
		lat = transport.DefaultLatency
	}
	if bw == 0 {
		bw = transport.DefaultBW
	}
	return transport.WireCostWith(lat, bw, n)
}

// NumServers returns the deployment size.
func (c *Client) NumServers() int { return len(c.conns) }

// Meta returns the client's metadata view.
func (c *Client) Meta() *metadata.Service { return c.meta }

// Close sends shutdown to every server and closes the connections.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	// Snapshot under the lock: redial swaps slice elements in place.
	conns := append([]transport.Conn(nil), c.conns...)
	c.mu.Unlock()
	c.closeCancel()
	var errs []error
	for _, conn := range conns {
		// Shutdown is best-effort — a downed server cannot hear it —
		// but a failed close means leaked resources and must surface.
		_ = conn.Send(transport.Message{Type: server.MsgShutdown})
		if err := conn.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	c.wg.Wait()
	return errors.Join(errs...)
}

// broadcast sends one message to every server (payload may differ per
// server via perServer) and collects all replies, indexed by server.
// The returned duration is the modeled busy-retry wait (zero unless a
// server's admission control pushed back).
func (c *Client) broadcast(t byte, perServer func(i int) []byte) (uint64, []transport.Message, time.Duration, error) {
	return c.broadcastCtx(context.Background(), t, perServer)
}

// broadcastCtx is broadcast with cancellation: if ctx ends first, the
// call returns ctx's error and late replies are dropped. Busy replies
// are retried with capped exponential backoff against the rejecting
// server only; the accumulated backoff is returned so callers can fold
// it into the modeled elapsed time.
func (c *Client) broadcastCtx(ctx context.Context, t byte, perServer func(i int) []byte) (uint64, []transport.Message, time.Duration, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, 0, ErrClosed
	}
	deadline := uint64(c.budget)
	maxRetries := c.busyRetries
	timeout := c.callTimeout
	req := c.nextReq
	c.nextReq++
	// A server can answer the same request several times (busy, busy,
	// result), and every dead reader posts one down notification per
	// pending call; size the buffer for the worst case so the reader
	// never blocks on a call that already gave up.
	ch := make(chan reply, len(c.conns)*(maxRetries+4+maxRedials))
	c.pending[req] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	send := func(i int) error {
		c.mu.Lock()
		conn := c.conns[i]
		c.mu.Unlock()
		// The request ID doubles as the telemetry trace ID: it is unique per
		// client call and deterministic across runs.
		return conn.Send(transport.Message{Type: t, ReqID: req, Trace: req, Deadline: deadline, Payload: perServer(i)})
	}
	// sendRecover sends to server i, recovering once through the redial
	// seam when the connection is already known dead (a previous call hit
	// the fault) or dies at send time. Failure is a typed terminal error.
	sendRecover := func(i int) error {
		c.mu.Lock()
		down := c.downErr[i]
		c.mu.Unlock()
		if down == nil {
			err := send(i)
			if err == nil {
				return nil
			}
			c.mu.Lock()
			if c.downErr[i] == nil {
				c.downErr[i] = fmt.Errorf("client: server %d send: %w", i, err)
			}
			c.mu.Unlock()
		}
		if err := c.ensureConn(i); err != nil {
			return err
		}
		if err := send(i); err != nil {
			return &ServerDownError{Srv: i, Cause: err}
		}
		return nil
	}
	for i := range c.conns {
		if err := sendRecover(i); err != nil {
			return 0, nil, 0, err
		}
	}
	out := make([]transport.Message, len(c.conns))
	got := make([]bool, len(c.conns))
	attempts := make([]int, len(c.conns))
	redials := make([]int, len(c.conns))
	var busyWait time.Duration
	for n := 0; n < len(c.conns); {
		var r reply
		select {
		case r = <-ch:
		case <-ctx.Done():
			err := ctx.Err()
			if errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("%w after %v: %w", ErrTimeout, timeout, err)
			}
			return 0, nil, busyWait, err
		case <-c.closeCtx.Done():
			return 0, nil, busyWait, ErrClosed
		}
		if r.down {
			if got[r.srv] {
				// That server already answered; its connection dying
				// afterwards is the next call's problem.
				continue
			}
			if redials[r.srv] >= maxRedials {
				c.mu.Lock()
				cause := c.downErr[r.srv]
				c.mu.Unlock()
				if errors.Is(cause, ErrClosed) {
					return 0, nil, busyWait, ErrClosed
				}
				if cause == nil {
					cause = errors.New("connection lost repeatedly")
				}
				return 0, nil, busyWait, &ServerDownError{Srv: r.srv, Cause: cause}
			}
			redials[r.srv]++
			// Recover and resend: the in-flight request (and any reply it
			// produced) died with the connection.
			if err := sendRecover(r.srv); err != nil {
				return 0, nil, busyWait, err
			}
			continue
		}
		if r.msg.Type == server.MsgBusy {
			wait, err := c.busyBackoff(r, attempts, maxRetries)
			if err != nil {
				return 0, nil, busyWait, err
			}
			busyWait += wait
			if err := sendRecover(r.srv); err != nil {
				return 0, nil, busyWait, err
			}
			continue
		}
		if r.msg.Type == server.MsgError {
			return 0, nil, busyWait, fmt.Errorf("client: server %d: %s", r.srv, r.msg.Payload)
		}
		if got[r.srv] {
			// Duplicate answer (a resend raced with the original reply);
			// keep the first.
			continue
		}
		out[r.srv] = r.msg
		got[r.srv] = true
		n++
	}
	return req, out, busyWait, nil
}

// busyBackoff handles one MsgBusy reply: it bumps the per-server attempt
// count, sleeps (via the Sleeper seam) for the backoff interval, and
// returns the modeled wait. Exhausting the retry budget yields an error
// wrapping sched.ErrBusy. A server that goes away mid-backoff interrupts
// the cycle immediately with a typed terminal error — the client must
// not sleep through the remaining budget against a dead peer.
func (c *Client) busyBackoff(r reply, attempts []int, maxRetries int) (time.Duration, error) {
	br, derr := server.DecodeBusyResponse(r.msg.Payload)
	if derr != nil {
		return 0, fmt.Errorf("client: server %d: %w", r.srv, derr)
	}
	attempts[r.srv]++
	if attempts[r.srv] > maxRetries {
		return 0, fmt.Errorf("client: server %d (%d queued): %w after %d attempts",
			r.srv, br.Queued, sched.ErrBusy, attempts[r.srv]-1)
	}
	// Clamp the exponent BEFORE shifting: busyBaseWait << (attempts-1)
	// with a large retry budget wraps to zero/negative (50µs << 63 == 0),
	// which the busyMaxWait cap applied after the shift cannot repair —
	// the capped backoff degenerated into a hot loop of zero-length
	// sleeps. Past busyMaxShift the wait is busyMaxWait by construction.
	wait := busyMaxWait
	if shift := uint(attempts[r.srv] - 1); shift < busyMaxShift {
		if w := busyBaseWait << shift; w < busyMaxWait {
			wait = w
		}
	}
	if hint := time.Duration(br.RetryAfterNs); hint > wait {
		wait = hint
	}
	if wait > busyMaxWait {
		wait = busyMaxWait
	}
	c.rec.Record(telemetry.EvBusy, 0, int32(r.srv), 0, int64(attempts[r.srv]), int64(wait))
	if err := c.busyInterrupt(r.srv); err != nil {
		return 0, err
	}
	c.sleeper.Sleep(wait)
	if err := c.busyInterrupt(r.srv); err != nil {
		return 0, err
	}
	return wait, nil
}

// busyInterrupt reports the typed terminal condition that should preempt
// a busy-retry backoff: the client closed, or the rejecting server's
// connection died with no redial installed. Checked on both sides of the
// backoff sleep so a server that Shutdown()s or crashes between busy
// replies fails the call immediately instead of burning the retry
// budget. With a redial function the connection is recoverable, so the
// retry proceeds (sendRecover masks the fault).
func (c *Client) busyInterrupt(srv int) error {
	select {
	case <-c.closeCtx.Done():
		return ErrClosed
	default:
	}
	c.mu.Lock()
	down := c.downErr[srv]
	redial := c.redial
	c.mu.Unlock()
	if down == nil {
		return nil
	}
	if errors.Is(down, ErrClosed) {
		return ErrClosed
	}
	if redial == nil {
		return &ServerDownError{Srv: srv, Cause: down}
	}
	return nil
}

// QueryResult is a completed query: the merged selection plus what is
// needed to retrieve the matching data.
type QueryResult struct {
	Sel  *selection.Selection
	Info Info
	// TraceID identifies the query's trace (the request ID); zero unless
	// the query ran via RunTraced.
	TraceID telemetry.TraceID
	// Traces holds each server's span tree, indexed by server rank; nil
	// unless the query ran via RunTraced.
	Traces []*telemetry.Span

	client *Client
	reqID  uint64
	obj    []object.ID // objects referenced by the query
}

// Trace assembles the per-server span trees under a single client-side
// root whose cost is the modeled end-to-end elapsed time (servers run in
// parallel, so the root cost is not the sum of its children). Returns
// nil when the query was not traced.
func (r *QueryResult) Trace() *telemetry.Span {
	if r.Traces == nil {
		return nil
	}
	root := telemetry.NewSpan(telemetry.SpanQuery, "client")
	root.Trace = r.TraceID
	root.Cost = r.Info.Elapsed
	root.SetInt("hits", int64(r.Info.NHits))
	root.SetInt("servers", int64(len(r.Traces)))
	for _, t := range r.Traces {
		if t != nil {
			root.Adopt(t)
		}
	}
	return root
}

// Run executes the query, returning the merged selection
// (PDCquery_get_selection semantics: hit count plus locations).
func (c *Client) Run(q *query.Query) (*QueryResult, error) {
	return c.run(context.Background(), q, server.FlagWantSelection)
}

// RunContext is Run with cancellation: if ctx ends before every server
// has answered, the call returns ctx's error (servers finish their
// evaluation; the late responses are discarded).
func (c *Client) RunContext(ctx context.Context, q *query.Query) (*QueryResult, error) {
	return c.run(ctx, q, server.FlagWantSelection)
}

// RunCount executes the query for the hit count only
// (PDCquery_get_nhits): servers do full evaluation but transfer no
// locations.
func (c *Client) RunCount(q *query.Query) (*QueryResult, error) {
	return c.run(context.Background(), q, 0)
}

// RunCountContext is RunCount with cancellation.
func (c *Client) RunCountContext(ctx context.Context, q *query.Query) (*QueryResult, error) {
	return c.run(ctx, q, 0)
}

// RunTraced is Run with per-query tracing: every server records a span
// tree of its evaluation (conjuncts, regions, per-region decisions) and
// returns it with the response. The result's Traces/Trace expose them.
func (c *Client) RunTraced(q *query.Query) (*QueryResult, error) {
	return c.run(context.Background(), q, server.FlagWantSelection|server.FlagWantTrace)
}

// RunTracedContext is RunTraced with cancellation.
func (c *Client) RunTracedContext(ctx context.Context, q *query.Query) (*QueryResult, error) {
	return c.run(ctx, q, server.FlagWantSelection|server.FlagWantTrace)
}

func (c *Client) run(ctx context.Context, q *query.Query, flags byte) (*QueryResult, error) {
	if c.meta != nil {
		if err := q.Validate(c.meta.Get); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	useEpoch, epoch := c.useEpoch, c.epoch
	c.mu.Unlock()
	var payload []byte
	if useEpoch {
		payload = server.EncodeQueryRequestEpoch(flags, epoch, q.Encode())
	} else {
		payload = server.EncodeQueryRequest(flags, q.Encode())
	}
	reqID, msgs, busyWait, err := c.broadcastCtx(ctx, server.MsgQuery, func(int) []byte { return payload })
	if err != nil {
		return nil, err
	}
	res := &QueryResult{client: c, reqID: reqID, obj: q.Root.Objects()}
	if flags&server.FlagWantTrace != 0 {
		res.TraceID = telemetry.TraceID(reqID)
		res.Traces = make([]*telemetry.Span, len(msgs))
	}
	// Broadcast cost: the request goes out to all servers concurrently.
	// Admission-control backoff (if any) delays the whole call.
	res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Network, c.wire(len(payload))+busyWait))

	var parts []*selection.Selection
	var respBytes int
	for i, m := range msgs {
		qr, err := server.DecodeQueryResponse(m.Payload)
		if err != nil {
			return nil, err
		}
		res.Info.ServerMax = res.Info.ServerMax.Max(qr.Cost)
		res.Info.Stats.Add(qr.Stats)
		respBytes += len(m.Payload)
		parts = append(parts, qr.Sel)
		if res.Traces != nil {
			res.Traces[i] = qr.Trace
		}
	}
	// Responses arrive concurrently: one wire latency, serialized bytes.
	respWire := c.wire(respBytes)
	res.Sel = selection.MergeAll(parts)
	res.Info.NHits = res.Sel.NHits
	// Servers evaluate in parallel; responses serialize into the client.
	// The parallel phase cannot beat the shared backend: if the fleet
	// moved more storage bytes than the slowest server's own time covers
	// at the aggregate bandwidth, the backend saturation is the floor.
	res.Info.Elapsed = res.Info.Elapsed.Add(res.Info.ServerMax)
	if c.sharedBW > 0 && res.Info.Stats.StorageBytes > 0 {
		floor := time.Duration(float64(res.Info.Stats.StorageBytes) / c.sharedBW * 1e9)
		if extra := floor - res.Info.ServerMax.Total(); extra > 0 {
			res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Storage, extra))
		}
	}
	res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Network, respWire))
	res.Info.Elapsed = res.Info.Elapsed.Add(vclock.CostOf(vclock.Compute, time.Duration(res.Sel.NHits)*mergeCostPerHit))
	return res, nil
}

// Future is an in-flight asynchronous query (§III-C: "a client can
// either block and wait for the query result or continue to other tasks
// while the servers are processing"). Wait blocks until completion;
// Done is closed when the result is ready.
type Future struct {
	done chan struct{}
	res  *QueryResult
	err  error
}

// Done is closed once the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the query completes and returns its result.
func (f *Future) Wait() (*QueryResult, error) {
	<-f.done
	return f.res, f.err
}

// RunAsync starts the query and returns immediately; the broadcast and
// aggregation happen in the background (the paper's non-blocking client
// mode). The background goroutine is owned by the client: Close unblocks
// and reaps it even if the Future is abandoned, so async queries cannot
// leak.
func (c *Client) RunAsync(q *query.Query) *Future {
	return c.RunAsyncContext(context.Background(), q)
}

// RunAsyncContext is RunAsync with cancellation: if ctx ends before the
// servers answer, the Future completes with ctx's error.
func (c *Client) RunAsyncContext(ctx context.Context, q *query.Query) *Future {
	f := &Future{done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		f.err = ErrClosed
		close(f.done)
		return f
	}
	// Registering on the client's WaitGroup under the same lock that
	// Close takes before waiting makes Close reap this goroutine.
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		defer close(f.done)
		f.res, f.err = c.run(ctx, q, server.FlagWantSelection)
	}()
	return f
}

// GetData retrieves the matching elements' values of obj into a buffer in
// selection order (PDCquery_get_data). The returned Info models the
// retrieval cost.
func (r *QueryResult) GetData(obj object.ID) ([]byte, *Info, error) {
	req := (&server.DataRequest{Obj: obj, QueryReq: r.reqID}).Encode()
	_, msgs, busyWait, err := r.client.broadcast(server.MsgGetData, func(int) []byte { return req })
	if err != nil {
		return nil, nil, err
	}
	info := &Info{NHits: r.Sel.NHits}
	info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Network, r.client.wire(len(req))+busyWait))

	o, elemSize, err := r.client.objectInfo(obj)
	if err != nil {
		return nil, nil, err
	}
	_ = o
	type part struct {
		coords []uint64
		data   []byte
		pos    int
	}
	parts := make([]part, 0, len(msgs))
	var total int
	var respBytes int
	for _, m := range msgs {
		dr, err := server.DecodeDataResponse(m.Payload)
		if err != nil {
			return nil, nil, err
		}
		info.ServerMax = info.ServerMax.Max(dr.Cost)
		respBytes += len(m.Payload)
		if len(dr.Data) != len(dr.Coords)*elemSize {
			return nil, nil, fmt.Errorf("client: server returned %d bytes for %d coords", len(dr.Data), len(dr.Coords))
		}
		parts = append(parts, part{coords: dr.Coords, data: dr.Data})
		total += len(dr.Coords)
	}
	if uint64(total) != r.Sel.NHits {
		return nil, nil, fmt.Errorf("client: servers returned %d values for %d hits", total, r.Sel.NHits)
	}
	// K-way merge the per-server partials into global coordinate order.
	out := make([]byte, total*elemSize)
	for i := 0; i < total; i++ {
		best := -1
		for p := range parts {
			if parts[p].pos >= len(parts[p].coords) {
				continue
			}
			if best < 0 || parts[p].coords[parts[p].pos] < parts[best].coords[parts[best].pos] {
				best = p
			}
		}
		pp := &parts[best]
		copy(out[i*elemSize:], pp.data[pp.pos*elemSize:(pp.pos+1)*elemSize])
		pp.pos++
	}
	info.Elapsed = info.Elapsed.Add(info.ServerMax)
	info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Network, r.client.wire(respBytes)))
	info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Compute, time.Duration(total)*mergeCostPerHit))
	return out, info, nil
}

// GetDataBatch streams the matching values of obj in batches of at most
// batchSize hits (PDCquery_get_data_batch), for results too large to hold
// in memory at once. fn receives each batch's selection and values.
func (r *QueryResult) GetDataBatch(obj object.ID, batchSize uint64, fn func(batch *selection.Selection, data []byte) error) (*Info, error) {
	if r.Sel.CountOnly {
		return nil, fmt.Errorf("client: GetDataBatch needs a selection; use Run, not RunCount")
	}
	_, elemSize, err := r.client.objectInfo(obj)
	if err != nil {
		return nil, err
	}
	o, _ := r.client.meta.Get(obj)
	info := &Info{NHits: r.Sel.NHits}
	n := r.client.NumServers()
	batches, err := r.Sel.Batches(batchSize)
	if err != nil {
		return nil, err
	}
	for _, batch := range batches {
		// Group the batch coords by owning server (region r -> server
		// r mod N, the same mapping the servers derive).
		groups := make([][]uint64, n)
		for _, coord := range batch.Coords {
			region := o.RegionOfLinear(coord)
			srv := region % n
			if r.client.router != nil {
				srv = r.client.router(o, region)
			}
			groups[srv] = append(groups[srv], coord)
		}
		_, msgs, busyWait, err := r.client.broadcast(server.MsgGetData, func(i int) []byte {
			return (&server.DataRequest{Obj: obj, Coords: groups[i]}).Encode()
		})
		if err != nil {
			return nil, err
		}
		info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Network, busyWait))
		buf := make([]byte, len(batch.Coords)*elemSize)
		var respBytes int
		for _, m := range msgs {
			dr, err := server.DecodeDataResponse(m.Payload)
			if err != nil {
				return nil, err
			}
			info.ServerMax = info.ServerMax.Max(dr.Cost)
			respBytes += len(m.Payload)
			// Place each returned value at its coord's position in the
			// batch (coords within a batch are sorted and unique).
			for i, coord := range dr.Coords {
				pos := searchU64(batch.Coords, coord)
				copy(buf[pos*elemSize:], dr.Data[i*elemSize:(i+1)*elemSize])
			}
		}
		info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Network, r.client.wire(respBytes)))
		if err := fn(batch, buf); err != nil {
			return info, err
		}
	}
	info.Elapsed = info.Elapsed.Add(info.ServerMax)
	return info, nil
}

func searchU64(s []uint64, v uint64) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (c *Client) objectInfo(id object.ID) (*object.Object, int, error) {
	if c.meta == nil {
		return nil, 0, fmt.Errorf("client: no metadata; call SyncMeta first")
	}
	o, ok := c.meta.Get(id)
	if !ok {
		return nil, 0, fmt.Errorf("client: object %d not found", id)
	}
	return o, o.Type.Size(), nil
}

// GetHistogram fetches an object's global histogram
// (PDCquery_get_histogram): the PDC system builds it automatically at
// import, so this is a metadata-only call.
func (c *Client) GetHistogram(obj object.ID) (*histogram.Histogram, *Info, error) {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(obj))
	// The histogram lives on the owning server; ask just that one.
	owner := metadata.OwnerOf(obj, len(c.conns))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClosed
	}
	deadline := uint64(c.budget)
	maxRetries := c.busyRetries
	req := c.nextReq
	c.nextReq++
	ch := make(chan reply, maxRetries+4+maxRedials)
	c.pending[req] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
	}()
	send := func() error {
		c.mu.Lock()
		conn := c.conns[owner]
		down := c.downErr[owner]
		c.mu.Unlock()
		if down != nil {
			if err := c.ensureConn(owner); err != nil {
				return err
			}
			c.mu.Lock()
			conn = c.conns[owner]
			c.mu.Unlock()
		}
		return conn.Send(transport.Message{Type: server.MsgHistogram, ReqID: req, Deadline: deadline, Payload: payload[:]})
	}
	if err := send(); err != nil {
		return nil, nil, err
	}
	attempts := make([]int, len(c.conns))
	redials := 0
	var busyWait time.Duration
	var r reply
	for {
		select {
		case r = <-ch:
		case <-c.closeCtx.Done():
			return nil, nil, ErrClosed
		}
		if r.down {
			if r.srv != owner {
				continue
			}
			if redials >= maxRedials {
				c.mu.Lock()
				cause := c.downErr[owner]
				c.mu.Unlock()
				if errors.Is(cause, ErrClosed) {
					return nil, nil, ErrClosed
				}
				if cause == nil {
					cause = errors.New("connection lost repeatedly")
				}
				return nil, nil, &ServerDownError{Srv: owner, Cause: cause}
			}
			redials++
			if err := send(); err != nil {
				return nil, nil, err
			}
			continue
		}
		if r.msg.Type != server.MsgBusy {
			break
		}
		wait, err := c.busyBackoff(r, attempts, maxRetries)
		if err != nil {
			return nil, nil, err
		}
		busyWait += wait
		if err := send(); err != nil {
			return nil, nil, err
		}
	}
	if r.msg.Type == server.MsgError {
		return nil, nil, fmt.Errorf("client: %s", r.msg.Payload)
	}
	h, err := server.DecodeHistResult(r.msg.Payload)
	if err != nil {
		return nil, nil, err
	}
	info := &Info{}
	info.Elapsed = vclock.CostOf(vclock.Network, 2*c.wire(len(r.msg.Payload))+busyWait)
	return h, info, nil
}

// QueryTag runs a metadata query (PDCquery_tag): every server reports the
// matching objects it owns; the client unions the shards.
func (c *Client) QueryTag(conds []metadata.TagCond) ([]object.ID, *Info, error) {
	payload := server.EncodeTagQuery(conds)
	_, msgs, busyWait, err := c.broadcast(server.MsgTagQuery, func(int) []byte { return payload })
	if err != nil {
		return nil, nil, err
	}
	info := &Info{}
	info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Network, c.wire(len(payload))+busyWait))
	var all []object.ID
	var respBytes int
	for _, m := range msgs {
		cost, ids, err := server.DecodeTagResult(m.Payload)
		if err != nil {
			return nil, nil, err
		}
		info.ServerMax = info.ServerMax.Max(cost)
		respBytes += len(m.Payload)
		all = append(all, ids...)
	}
	respWire := c.wire(respBytes)
	// Shards are disjoint; sort for a deterministic result.
	slices.Sort(all)
	info.NHits = uint64(len(all))
	info.Elapsed = info.Elapsed.Add(info.ServerMax)
	info.Elapsed = info.Elapsed.Add(vclock.CostOf(vclock.Network, respWire))
	return all, info, nil
}

// EstimateNHits bounds the number of hits of a query using only the
// global histograms (§III-D2's selectivity estimation, exposed to
// applications): no server evaluation, no storage access. The true count
// always lies in [lower, upper]. Region constraints and OR terms are
// handled conservatively (per-term sums for the upper bound, zero lower
// bound for multi-term or multi-object queries, since histograms carry no
// joint distribution).
func (c *Client) EstimateNHits(q *query.Query) (lower, upper uint64, err error) {
	if c.meta == nil {
		return 0, 0, fmt.Errorf("client: no metadata; call SyncMeta first")
	}
	if err := q.Validate(c.meta.Get); err != nil {
		return 0, 0, err
	}
	conjuncts, err := query.Normalize(q.Root)
	if err != nil {
		return 0, 0, err
	}
	for _, conj := range conjuncts {
		// Upper bound of an AND term: the smallest per-condition upper
		// bound. Lower bound: only usable for a single-condition term
		// (no joint information otherwise).
		termUpper := uint64(math.MaxUint64)
		termLower := uint64(0)
		single := len(conj) == 1
		for id, iv := range conj {
			o, _ := c.meta.Get(id)
			if o.Global == nil {
				return 0, 0, fmt.Errorf("client: object %d has no global histogram", id)
			}
			l, u := o.Global.Estimate(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
			if u < termUpper {
				termUpper = u
			}
			if single {
				termLower = l
			}
		}
		upper += termUpper
		if len(conjuncts) == 1 {
			lower = termLower
		}
	}
	// The union of conjuncts cannot exceed the object size.
	ids := q.Root.Objects()
	if o, ok := c.meta.Get(ids[0]); ok {
		if n := o.NumElems(); upper > n {
			upper = n
		}
	}
	// A spatial constraint can only shrink the true count, and histograms
	// carry no spatial information: the lower bound degrades to zero.
	if q.Constraint != nil {
		lower = 0
	}
	return lower, upper, nil
}

// ServerStats fetches every server's telemetry registry. It returns the
// per-server registries (indexed by rank) plus a cluster-wide view that
// merges them all — an exact merge, since cost distributions are
// mergeable histograms.
func (c *Client) ServerStats() (perServer []*telemetry.Registry, merged *telemetry.Registry, err error) {
	_, msgs, _, err := c.broadcast(server.MsgStats, func(int) []byte { return nil })
	if err != nil {
		return nil, nil, err
	}
	perServer = make([]*telemetry.Registry, len(msgs))
	merged = telemetry.NewRegistry()
	for i, m := range msgs {
		sr, err := server.DecodeStatsResponse(m.Payload)
		if err != nil {
			return nil, nil, err
		}
		perServer[i] = sr.Reg
		merged.Merge(sr.Reg)
	}
	return perServer, merged, nil
}

// ServerEvents fetches every server's flight-recorder ring. It returns
// the per-server event snapshots (oldest first, indexed by rank) and
// each server's lifetime count of recorded events (which exceeds the
// snapshot length once the ring has wrapped).
func (c *Client) ServerEvents() (events [][]telemetry.Event, totals []uint64, err error) {
	_, msgs, _, err := c.broadcast(server.MsgEvents, func(int) []byte { return nil })
	if err != nil {
		return nil, nil, err
	}
	events = make([][]telemetry.Event, len(msgs))
	totals = make([]uint64, len(msgs))
	for i, m := range msgs {
		evs, total, err := telemetry.DecodeEvents(m.Payload)
		if err != nil {
			return nil, nil, err
		}
		events[i] = evs
		totals[i] = total
	}
	return events, totals, nil
}

// SyncMeta fetches a metadata snapshot from server 0 and installs it as
// the client's metadata view (for TCP deployments where the client does
// not share memory with the servers).
func (c *Client) SyncMeta() error {
	_, msgs, _, err := c.broadcast(server.MsgMetaSnapshot, func(int) []byte { return nil })
	if err != nil {
		return err
	}
	svc := metadata.NewService()
	if err := svc.Restore(msgs[0].Payload); err != nil {
		return err
	}
	c.meta = svc
	return nil
}
