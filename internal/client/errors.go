package client

import (
	"errors"
	"fmt"
)

// Typed terminal errors. A query against a failed deployment must end in
// one of these deterministically — never a hang, a silently dropped
// reply, or a corrupt selection. Callers branch with errors.Is.
var (
	// ErrClosed reports a call that raced with or followed Close.
	ErrClosed = errors.New("client: closed")
	// ErrServerDown matches any ServerDownError: a server connection was
	// lost and could not be (or was not allowed to be) re-established.
	ErrServerDown = errors.New("client: server down")
	// ErrTimeout matches a call that exceeded the per-call wall timeout
	// installed with SetCallTimeout. It wraps context.DeadlineExceeded.
	ErrTimeout = errors.New("client: call timed out")
)

// ServerDownError is the terminal error for a lost server connection:
// the reader for that server died (connection dropped, torn frame, peer
// crash) and either no redial function is installed or redialing failed.
// It matches ErrServerDown via errors.Is and unwraps to the underlying
// transport error.
type ServerDownError struct {
	// Srv is the rank of the unreachable server.
	Srv int
	// Cause is the transport-level error that took the connection down.
	Cause error
}

func (e *ServerDownError) Error() string {
	return fmt.Sprintf("client: server %d down: %v", e.Srv, e.Cause)
}

// Is matches ErrServerDown so callers need not know the concrete type.
func (e *ServerDownError) Is(target error) bool { return target == ErrServerDown }

// Unwrap exposes the transport-level cause.
func (e *ServerDownError) Unwrap() error { return e.Cause }
