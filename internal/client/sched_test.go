// Tests for the client side of the scheduler contract: busy-retry with
// backoff, deadline stamping, and async-query lifetime (no goroutine
// leaks past Close).
package client_test

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/query"
	"pdcquery/internal/sched"
	"pdcquery/internal/server"
	"pdcquery/internal/transport"
	"pdcquery/internal/vclock"
)

// busyServer services one pipe endpoint: it answers each request with
// busyCount MsgBusy pushbacks before the real (empty) tag result, and
// records every frame it saw.
type busyServer struct {
	conn      transport.Conn
	busyCount int

	mu   sync.Mutex
	seen []transport.Message
}

func (s *busyServer) run() {
	sent := make(map[uint64]int)
	for {
		m, err := s.conn.Recv()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.seen = append(s.seen, m)
		s.mu.Unlock()
		if m.Type == server.MsgShutdown {
			return
		}
		if sent[m.ReqID] < s.busyCount {
			sent[m.ReqID]++
			busy := &server.BusyResponse{RetryAfterNs: 12345, Queued: 2}
			s.conn.Send(transport.Message{Type: server.MsgBusy, ReqID: m.ReqID, Payload: busy.Encode()})
			continue
		}
		s.conn.Send(transport.Message{
			Type: server.MsgTagResult, ReqID: m.ReqID,
			Payload: server.EncodeTagResult(vclock.Cost{}, nil),
		})
	}
}

func (s *busyServer) frames() []transport.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]transport.Message(nil), s.seen...)
}

func startBusyServer(t *testing.T, busyCount int) (*client.Client, *busyServer) {
	t.Helper()
	clientSide, serverSide := transport.Pipe()
	bs := &busyServer{conn: serverSide, busyCount: busyCount}
	go bs.run()
	cl := client.New([]transport.Conn{clientSide}, nil)
	t.Cleanup(func() { cl.Close() })
	return cl, bs
}

// TestBusyRetrySucceeds: two pushbacks then an answer — the call must
// succeed transparently, resend the same request ID, stamp the query
// budget into the frame deadline, and fold the backoff into Elapsed.
func TestBusyRetrySucceeds(t *testing.T) {
	cl, bs := startBusyServer(t, 2)
	cl.SetQueryBudget(7 * time.Millisecond)
	_, info, err := cl.QueryTag(nil)
	if err != nil {
		t.Fatalf("QueryTag through busy pushback: %v", err)
	}
	frames := bs.frames()
	if len(frames) != 3 {
		t.Fatalf("server saw %d frames, want 3 (initial + 2 retries)", len(frames))
	}
	for i, m := range frames {
		if m.ReqID != frames[0].ReqID {
			t.Errorf("frame %d resent with request ID %d, want %d", i, m.ReqID, frames[0].ReqID)
		}
		if m.Deadline != uint64(7*time.Millisecond) {
			t.Errorf("frame %d deadline = %d, want the 7ms query budget", i, m.Deadline)
		}
	}
	// Two backoff rounds at 50µs and 100µs (both above the server's
	// 12.3µs hint) must appear in the modeled elapsed time.
	if got := info.Elapsed.Part(vclock.Network); got < 150*time.Microsecond {
		t.Errorf("modeled network time %v does not include the 150µs backoff", got)
	}
}

// TestBusyRetryExhaustion: a server that never admits must surface a
// typed sched.ErrBusy once the retry budget runs out.
func TestBusyRetryExhaustion(t *testing.T) {
	cl, bs := startBusyServer(t, 1<<30)
	_, _, err := cl.QueryTag(nil)
	if !errors.Is(err, sched.ErrBusy) {
		t.Fatalf("exhausted retries: err = %v, want sched.ErrBusy", err)
	}
	if n := len(bs.frames()); n < 3 {
		t.Errorf("server saw only %d frames before the client gave up", n)
	}
}

// TestQueryBudgetEndToEnd: a tiny virtual-time budget must be enforced
// server-side (the token aborts evaluation) and propagate back as an
// error naming the deadline; clearing the budget restores service.
func TestQueryBudgetEndToEnd(t *testing.T) {
	d, oid := deploy(t, 20000, 2)
	cl := d.Client()
	// OR query: two conjuncts, so the absorbed cost of the first trips
	// the budget check before the second starts.
	q := &query.Query{Root: query.Or(
		query.Between(oid, 10, 20, false, false),
		query.Between(oid, 30, 40, false, false),
	)}
	cl.SetQueryBudget(1 * time.Nanosecond)
	if _, err := cl.Run(q); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("1ns budget: err = %v, want virtual-deadline error", err)
	}
	cl.SetQueryBudget(0)
	res, err := cl.Run(q)
	if err != nil {
		t.Fatalf("after clearing budget: %v", err)
	}
	truth, err := d.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits != truth.NHits {
		t.Errorf("hits after budget cleared = %d, want %d", res.Sel.NHits, truth.NHits)
	}
}

// TestRunAsyncReapedOnClose: async queries against servers that never
// answer must not outlive the client — Close unblocks them, their
// futures complete with an error, and the goroutine count returns to
// its baseline (the regression test for the aggregator leak).
func TestRunAsyncReapedOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	clientSide, serverSide := transport.Pipe()
	_ = serverSide // nobody serves this end: requests would hang forever
	cl := client.New([]transport.Conn{clientSide}, nil)
	q := &query.Query{Root: query.Leaf(1, query.OpGT, 0)}
	futures := make([]*client.Future, 8)
	for i := range futures {
		futures[i] = cl.RunAsync(q)
	}
	cl.Close()
	for i, f := range futures {
		if _, err := f.Wait(); err == nil {
			t.Errorf("future %d completed without error after Close", i)
		}
	}
	// Starting after Close fails fast instead of spawning anything.
	if _, err := cl.RunAsync(q).Wait(); err == nil {
		t.Error("RunAsync after Close returned a nil error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("%d goroutines alive after Close, want <= %d: async aggregators leaked", g, base)
	}
}

// TestClosedClientReturnsError: calls racing with or following Close
// must fail with a real error, never a nil error with no data.
func TestClosedClientReturnsError(t *testing.T) {
	clientSide, serverSide := transport.Pipe()
	_ = serverSide
	cl := client.New([]transport.Conn{clientSide}, nil)
	cl.Close()
	q := &query.Query{Root: query.Leaf(1, query.OpGT, 0)}
	if res, err := cl.Run(q); err == nil {
		t.Fatalf("Run on closed client: res=%v with nil error", res)
	}
	if _, _, err := cl.QueryTag(nil); err == nil {
		t.Fatal("QueryTag on closed client returned nil error")
	}
	if _, _, err := cl.GetHistogram(1); err == nil {
		t.Fatal("GetHistogram on closed client returned nil error")
	}
}
