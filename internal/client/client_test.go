// Tests for the client library against a real in-process deployment (the
// heavier end-to-end paths live in internal/core's tests).
package client_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/selection"
	"pdcquery/internal/transport"
)

func deploy(t *testing.T, n int, servers int) (*core.Deployment, object.ID) {
	t.Helper()
	d := core.NewDeployment(core.Options{Servers: servers, RegionBytes: 4 << 10, Strategy: exec.Histogram})
	c := d.CreateContainer("c")
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i%1000) / 10
	}
	o, err := d.ImportObject(c.ID, object.Property{Name: "v", Type: dtype.Float32, Dims: []uint64{uint64(n)}}, dtype.Bytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, o.ID
}

func TestConcurrentQueries(t *testing.T) {
	// The background aggregator must route interleaved responses to the
	// right callers.
	d, oid := deploy(t, 10000, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := float64(g * 10)
			q := &query.Query{Root: query.Between(oid, lo, lo+5, false, false)}
			res, err := d.Client().Run(q)
			if err != nil {
				errs <- err
				return
			}
			truth, err := d.GroundTruth(q)
			if err != nil {
				errs <- err
				return
			}
			if res.Sel.NHits != truth.NHits {
				errs <- errMismatch(res.Sel.NHits, truth.NHits)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatch struct{ got, want uint64 }

func errMismatch(got, want uint64) error { return mismatch{got, want} }
func (m mismatch) Error() string         { return "hit count mismatch" }

func TestServerErrorPropagates(t *testing.T) {
	d, _ := deploy(t, 1000, 2)
	// Corrupt the store so evaluation fails server-side.
	d.Store().Delete(object.ExtentKey(1, 0))
	q := &query.Query{Root: query.Leaf(1, query.OpGT, -1)}
	if _, err := d.Client().Run(q); err == nil {
		t.Error("server-side failure not propagated")
	}
}

func TestNumServersAndMeta(t *testing.T) {
	d, oid := deploy(t, 1000, 3)
	if d.Client().NumServers() != 3 {
		t.Errorf("NumServers = %d", d.Client().NumServers())
	}
	if d.Client().Meta() == nil {
		t.Error("no metadata view")
	}
	if _, ok := d.Client().Meta().Get(oid); !ok {
		t.Error("object missing from client metadata")
	}
}

func TestQueriesAfterClose(t *testing.T) {
	d := core.NewDeployment(core.Options{Servers: 2})
	c := d.CreateContainer("c")
	vals := make([]float32, 100)
	o, err := d.ImportObject(c.ID, object.Property{Name: "v", Type: dtype.Float32, Dims: []uint64{100}}, dtype.Bytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	cli := d.Client()
	d.Close()
	q := &query.Query{Root: query.Leaf(o.ID, query.OpGT, 0)}
	if _, err := cli.Run(q); err == nil {
		t.Error("query after Close succeeded")
	}
}

func TestInfoBreakdown(t *testing.T) {
	d, oid := deploy(t, 20000, 4)
	q := &query.Query{Root: query.Between(oid, 10, 20, false, false)}
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Info
	if info.Elapsed.Total() < info.ServerMax.Total() {
		t.Errorf("elapsed %v below server max %v", info.Elapsed.Total(), info.ServerMax.Total())
	}
	if info.NHits != res.Sel.NHits {
		t.Errorf("info hits %d != selection %d", info.NHits, res.Sel.NHits)
	}
	if info.Stats.RegionsEvaluated+info.Stats.RegionsPruned == 0 {
		t.Error("no region stats aggregated")
	}
}

func TestRunAsync(t *testing.T) {
	d, oid := deploy(t, 20000, 4)
	// Launch several queries without blocking, then collect.
	futures := make([]*client.Future, 5)
	for i := range futures {
		lo := float64(i * 10)
		q := &query.Query{Root: query.Between(oid, lo, lo+20, false, false)}
		futures[i] = d.Client().RunAsync(q)
	}
	for i, f := range futures {
		select {
		case <-f.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("future %d did not complete", i)
		}
		res, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		lo := float64(i * 10)
		q := &query.Query{Root: query.Between(oid, lo, lo+20, false, false)}
		truth, err := d.GroundTruth(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sel.NHits != truth.NHits {
			t.Errorf("future %d: %d hits, want %d", i, res.Sel.NHits, truth.NHits)
		}
	}
	// Wait is idempotent.
	if res, err := futures[0].Wait(); err != nil || res == nil {
		t.Error("second Wait failed")
	}
}

func TestClientFullAPISurface(t *testing.T) {
	// Exercise the remaining client calls against one deployment: data
	// retrieval, batching, histogram fetch, tag query, metadata sync,
	// and the estimate API.
	d := core.NewDeployment(core.Options{Servers: 4, RegionBytes: 4 << 10})
	c := d.CreateContainer("c")
	vals := make([]float32, 20000)
	for i := range vals {
		vals[i] = float32(i%500) / 5
	}
	o, err := d.ImportObject(c.ID, object.Property{
		Name: "v", Type: dtype.Float32, Dims: []uint64{20000},
		Tags: map[string]string{"kind": "test"},
	}, dtype.Bytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli := d.Client()

	q := &query.Query{Root: query.Between(o.ID, 50, 60, false, false)}
	res, err := cli.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits == 0 {
		t.Fatal("no hits")
	}
	// GetData from the stash.
	data, info, err := res.GetData(o.ID)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(data)) != res.Sel.NHits*4 || info.Elapsed.Total() <= 0 {
		t.Errorf("GetData: %d bytes, %v", len(data), info.Elapsed.Total())
	}
	// Batched retrieval reassembles identically.
	var rebuilt []byte
	_, err = res.GetDataBatch(o.ID, 128, func(_ *selection.Selection, b []byte) error {
		rebuilt = append(rebuilt, b...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Error("batched data differs from bulk data")
	}
	// Histogram.
	h, _, err := cli.GetHistogram(o.ID)
	if err != nil || h == nil || h.Total != 20000 {
		t.Errorf("GetHistogram = %v, %v", h, err)
	}
	// Tag query.
	ids, _, err := cli.QueryTag([]metadata.TagCond{{Key: "kind", Value: "test"}})
	if err != nil || len(ids) != 1 || ids[0] != o.ID {
		t.Errorf("QueryTag = %v, %v", ids, err)
	}
	// Estimate + Explain.
	lo, hi, err := cli.EstimateNHits(q)
	if err != nil || res.Sel.NHits < lo || res.Sel.NHits > hi {
		t.Errorf("EstimateNHits = [%d, %d], truth %d, %v", lo, hi, res.Sel.NHits, err)
	}
	if _, err := cli.Explain(q); err != nil {
		t.Errorf("Explain: %v", err)
	}
	// SyncMeta replaces the view with a server snapshot.
	if err := cli.SyncMeta(); err != nil {
		t.Fatal(err)
	}
	if cli.Meta().NumObjects() != 1 {
		t.Errorf("synced objects = %d", cli.Meta().NumObjects())
	}
}

func TestRunContext(t *testing.T) {
	d, oid := deploy(t, 20000, 4)
	q := &query.Query{Root: query.Between(oid, 10, 20, false, false)}
	// Normal completion under a live context.
	res, err := d.Client().RunContext(context.Background(), q)
	if err != nil || res.Sel.NHits == 0 {
		t.Fatalf("RunContext = %v, %v", res, err)
	}
	// A pre-cancelled context fails fast.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Client().RunCountContext(ctx, q); err == nil {
		t.Error("cancelled context accepted")
	}
	// The client remains usable after a cancelled call.
	res2, err := d.Client().Run(q)
	if err != nil || res2.Sel.NHits != res.Sel.NHits {
		t.Errorf("client broken after cancellation: %v, %v", res2, err)
	}
}

// failCloseConn is a transport.Conn whose Close always fails; Recv
// blocks until the conn is closed, like a quiet server.
type failCloseConn struct {
	closed chan struct{}
	once   sync.Once
	err    error
}

func (c *failCloseConn) Send(transport.Message) error { return nil }

func (c *failCloseConn) Recv() (transport.Message, error) {
	<-c.closed
	return transport.Message{}, errors.New("conn closed")
}

func (c *failCloseConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.err
}

// TestClosePropagatesConnCloseErrors pins the errflow fix: Close used
// to drop every per-connection Send and Close error and return nil
// unconditionally; a failed close must now surface to the caller.
func TestClosePropagatesConnCloseErrors(t *testing.T) {
	sentinel := errors.New("close failed: fd leaked")
	conns := []transport.Conn{
		&failCloseConn{closed: make(chan struct{})},
		&failCloseConn{closed: make(chan struct{}), err: sentinel},
	}
	cli := client.New(conns, metadata.NewService())
	err := cli.Close()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Close() = %v, want the connection's close error", err)
	}
}
