package client

import (
	"fmt"
	"sort"
	"strings"

	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/telemetry"
)

// PlanCondition is one condition of a query plan, annotated with the
// selectivity bounds the planner derived from the global histogram.
type PlanCondition struct {
	Obj      object.ID
	Name     string
	Interval query.Interval
	// SelLower and SelUpper bound the condition's selectivity (fraction
	// of elements matching), from the global histogram.
	SelLower, SelUpper float64
}

// Plan describes how the servers will evaluate a query: the DNF terms
// and, within each term, the conditions in evaluation order (ascending
// estimated selectivity — §III-D2). It is computed entirely from
// metadata; no server round trip or storage access happens.
type Plan struct {
	// Conjuncts holds each OR term's conditions in evaluation order.
	Conjuncts [][]PlanCondition
	// EstLower and EstUpper bound the total hit count (see EstimateNHits).
	EstLower, EstUpper uint64
}

// String renders the plan in a compact EXPLAIN-style form.
func (p *Plan) String() string {
	var b strings.Builder
	for i, term := range p.Conjuncts {
		if i > 0 {
			b.WriteString("OR\n")
		}
		for j, cond := range term {
			fmt.Fprintf(&b, "  %d. %s in %s  (selectivity %.4f%%..%.4f%%)\n",
				j+1, cond.Name, cond.Interval, 100*cond.SelLower, 100*cond.SelUpper)
		}
	}
	fmt.Fprintf(&b, "estimated hits: %d..%d\n", p.EstLower, p.EstUpper)
	return b.String()
}

// Explain returns the evaluation plan for a query, mirroring the
// selectivity-ordered execution the servers perform. The paper's future
// work asks for relational-style query optimization insight on object
// data; this exposes the existing planner's decisions to applications.
func (c *Client) Explain(q *query.Query) (*Plan, error) {
	if c.meta == nil {
		return nil, fmt.Errorf("client: no metadata; call SyncMeta first")
	}
	if err := q.Validate(c.meta.Get); err != nil {
		return nil, err
	}
	conjuncts, err := query.Normalize(q.Root)
	if err != nil {
		return nil, err
	}
	plan := &Plan{}
	for _, conj := range conjuncts {
		var term []PlanCondition
		for _, id := range conj.ObjectsSorted() {
			iv := conj[id]
			o, _ := c.meta.Get(id)
			pc := PlanCondition{Obj: id, Name: o.Name, Interval: iv, SelUpper: 1}
			if o.Global != nil {
				pc.SelLower, pc.SelUpper = o.Global.SelectivityBounds(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
			}
			term = append(term, pc)
		}
		// The engine's order: ascending upper-bound selectivity, stable
		// on object ID.
		sort.SliceStable(term, func(i, j int) bool { return term[i].SelUpper < term[j].SelUpper })
		plan.Conjuncts = append(plan.Conjuncts, term)
	}
	plan.EstLower, plan.EstUpper, err = c.EstimateNHits(q)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// Analyzed couples a query plan with the trace of an actual traced run:
// the planner's estimated selectivities next to what the servers really
// observed (EXPLAIN ANALYZE semantics).
type Analyzed struct {
	Plan *Plan
	Res  *QueryResult
}

// ExplainAnalyze computes the plan, then executes the query with tracing
// and pairs the two: estimates from metadata, actuals from the servers'
// span trees.
func (c *Client) ExplainAnalyze(q *query.Query) (*Analyzed, error) {
	plan, err := c.Explain(q)
	if err != nil {
		return nil, err
	}
	res, err := c.RunTraced(q)
	if err != nil {
		return nil, err
	}
	return &Analyzed{Plan: plan, Res: res}, nil
}

// actual sums a condition's observed in/out element counts over every
// server's span for conjunct term index ci. Conjunct indices are stable
// across servers: they come from the same query.Normalize order.
func (a *Analyzed) actual(ci int, id object.ID) (in, out int64) {
	name := fmt.Sprintf("conjunct.%d", ci)
	inKey := fmt.Sprintf("cond.%d.in", id)
	outKey := fmt.Sprintf("cond.%d.out", id)
	for _, t := range a.Res.Traces {
		if t == nil {
			continue
		}
		t.Walk(func(s *telemetry.Span) {
			if s.Kind != telemetry.SpanConjunct || s.Name != name {
				return
			}
			if v, ok := s.Int(inKey); ok {
				in += v
			}
			if v, ok := s.Int(outKey); ok {
				out += v
			}
		})
	}
	return in, out
}

// String renders the analyzed plan: per condition the estimated
// selectivity bounds next to the actual (elements out / elements in, as
// observed across all servers), then estimated vs actual hit counts and
// the modeled cost breakdown.
func (a *Analyzed) String() string {
	var b strings.Builder
	for i, term := range a.Plan.Conjuncts {
		if i > 0 {
			b.WriteString("OR\n")
		}
		for j, cond := range term {
			fmt.Fprintf(&b, "  %d. %s in %s  (est %.4f%%..%.4f%%",
				j+1, cond.Name, cond.Interval, 100*cond.SelLower, 100*cond.SelUpper)
			if in, out := a.actual(i, cond.Obj); in > 0 {
				fmt.Fprintf(&b, "; actual %.4f%% — %d of %d", 100*float64(out)/float64(in), out, in)
			} else {
				b.WriteString("; actual: not evaluated")
			}
			b.WriteString(")\n")
		}
	}
	fmt.Fprintf(&b, "estimated hits: %d..%d  actual hits: %d\n",
		a.Plan.EstLower, a.Plan.EstUpper, a.Res.Info.NHits)
	fmt.Fprintf(&b, "cost: %v (server max %v)\n", a.Res.Info.Elapsed.Total(), a.Res.Info.ServerMax.Total())
	return b.String()
}
