package plan

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	a, b, d := &Plan{}, &Plan{}, &Plan{}
	c.Put("a", 1, 1, a)
	c.Put("b", 1, 1, b)
	if got, ok := c.Get("a", 1, 1); !ok || got != a {
		t.Fatal("a missing")
	}
	// "b" is now LRU; inserting "d" evicts it.
	c.Put("d", 1, 1, d)
	if _, ok := c.Get("b", 1, 1); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.Get("d", 1, 1); !ok || got != d {
		t.Error("d missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheEpochAndGenInvalidate(t *testing.T) {
	c := NewCache(4)
	p := &Plan{}
	c.Put("k", 3, 7, p)
	if _, ok := c.Get("k", 4, 7); ok {
		t.Error("epoch change must miss")
	}
	// The stale entry was evicted by the mismatched Get.
	if c.Len() != 0 {
		t.Errorf("stale entry retained, Len = %d", c.Len())
	}
	c.Put("k", 3, 7, p)
	if _, ok := c.Get("k", 3, 8); ok {
		t.Error("generation change must miss")
	}
	c.Put("k", 3, 8, p)
	if _, ok := c.Get("k", 3, 8); !ok {
		t.Error("fresh entry must hit")
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1, 1, &Plan{})
	c.Get("a", 1, 1)
	c.Get("a", 1, 1)
	c.Get("nope", 1, 1)
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", hits, misses)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(1)
	p1, p2 := &Plan{}, &Plan{}
	c.Put("k", 1, 1, p1)
	c.Put("k", 2, 2, p2)
	if got, ok := c.Get("k", 2, 2); !ok || got != p2 {
		t.Error("update in place failed")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestParseForceRoundTrip(t *testing.T) {
	for _, f := range []Force{ForceAuto, ForceScan, ForceBitmap, ForceSorted} {
		got, err := ParseForce(f.String())
		if err != nil || got != f {
			t.Errorf("ParseForce(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseForce("turbo"); err == nil {
		t.Error("unknown forcing must error")
	}
	if f, err := ParseForce(""); err != nil || f != ForceAuto {
		t.Errorf("empty forcing = %v, %v", f, err)
	}
}
