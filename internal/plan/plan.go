// Package plan is the cost-based query planner: from a metadata
// snapshot (global + per-region histograms, min-max extrema, bitmap
// index and sorted-replica availability) and a normalized query it
// produces an exec.QueryPlan — per-conjunct condition order and
// per-region scan-vs-bitmap-probe choices, plus whether the sorted
// replica beats both — by modeling the engine's own vclock compute
// charges. The planner is a pure function of (metadata snapshot,
// query, forcing): no clocks, no randomness, no map-order dependence,
// so client and server derive the identical plan from replicated
// metadata and worker-count determinism is untouched.
package plan

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
)

// Force pins the planner's strategy choice, for corpus tests and the
// CLI's strategy override.
type Force int

// Forcings. ForceAuto lets the cost model decide.
const (
	ForceAuto Force = iota
	// ForceScan resolves every region by scan+probe.
	ForceScan
	// ForceBitmap resolves every region by bitmap-probe (regions
	// without an index degrade to scan semantics in the engine).
	ForceBitmap
	// ForceSorted uses the sorted replica for every conjunct whose
	// first-ordered condition has one.
	ForceSorted
)

// String names the forcing.
func (f Force) String() string {
	switch f {
	case ForceScan:
		return "scan"
	case ForceBitmap:
		return "bitmap"
	case ForceSorted:
		return "sorted"
	}
	return "auto"
}

// ParseForce reads a forcing name.
func ParseForce(s string) (Force, error) {
	switch s {
	case "", "auto":
		return ForceAuto, nil
	case "scan":
		return ForceScan, nil
	case "bitmap", "probe", "index":
		return ForceBitmap, nil
	case "sorted":
		return ForceSorted, nil
	}
	return 0, fmt.Errorf("plan: unknown forcing %q", s)
}

// Source is the metadata the planner reads (metadata.Service satisfies
// it).
type Source interface {
	Get(id object.ID) (*object.Object, bool)
}

// CondPlan is one planned condition of a conjunct, in evaluation
// order.
type CondPlan struct {
	Obj      object.ID
	Name     string
	Interval query.Interval
	// SelLower/SelUpper are the selectivity fraction bounds from the
	// global histogram (0..1); EstLower/EstUpper the corresponding row
	// estimates.
	SelLower, SelUpper float64
	EstLower, EstUpper uint64
}

// ConjunctPlan is the plan for one AND-term: the ordered conditions,
// the chosen access paths, and the modeled cost.
type ConjunctPlan struct {
	Conds []CondPlan
	// Sorted is true when the sorted-replica path was chosen for
	// Conds[0].
	Sorted bool
	// ScanRegions/ProbeRegions/PrunedRegions count the per-region
	// choices over the first condition's regions.
	ScanRegions   int
	ProbeRegions  int
	PrunedRegions int
	// CostNs is the modeled compute cost of this conjunct.
	CostNs float64
	// Exec is the engine-facing form.
	Exec exec.ConjunctPlan
}

// Plan is the planner's output for one query.
type Plan struct {
	Conjuncts []ConjunctPlan
	// CostNs is the total modeled compute cost.
	CostNs float64
	// Force records the forcing the plan was built under.
	Force Force
	// Exec is the engine-facing form the server installs on its
	// request engine.
	Exec exec.QueryPlan
}

// Modeled per-operation costs beyond the engine's per-element rates:
// reading one bitmap-index bin and one binary-search step of the
// sorted path. Like the engine's constants these are fractions of a
// nanosecond per unit at full node parallelism.
const (
	indexBinNs   = 40.0
	sortedStepNs = 60.0
)

// Build plans q against the metadata snapshot. The result depends only
// on (snapshot contents, query, force).
func Build(src Source, q *query.Query, force Force) (*Plan, error) {
	conjuncts, err := query.Normalize(q.Root)
	if err != nil {
		return nil, err
	}
	p := &Plan{Force: force}
	for _, c := range conjuncts {
		cp, err := buildConjunct(src, c, force)
		if err != nil {
			return nil, err
		}
		p.Conjuncts = append(p.Conjuncts, cp)
		p.CostNs += cp.CostNs
		p.Exec.Conjuncts = append(p.Exec.Conjuncts, cp.Exec)
	}
	return p, nil
}

// buildConjunct orders one conjunct's conditions by ascending
// selectivity upper bound (stable on object ID, mirroring the
// engine's fallback order) and chooses access paths by modeled cost.
func buildConjunct(src Source, c query.Conjunct, force Force) (ConjunctPlan, error) {
	ids := c.ObjectsSorted()
	conds := make([]CondPlan, 0, len(ids))
	for _, id := range ids {
		o, ok := src.Get(id)
		if !ok {
			return ConjunctPlan{}, fmt.Errorf("plan: object %d not found", id)
		}
		iv := c[id]
		cp := CondPlan{Obj: id, Name: o.Name, Interval: iv, SelLower: 0, SelUpper: 1}
		n := o.NumElems()
		cp.EstLower, cp.EstUpper = 0, n
		if o.Global != nil {
			cp.SelLower, cp.SelUpper = o.Global.SelectivityBounds(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
			lo, hi := o.Global.Estimate(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
			cp.EstLower, cp.EstUpper = lo, hi
		}
		conds = append(conds, cp)
	}
	slices.SortStableFunc(conds, func(x, y CondPlan) int { return cmp.Compare(x.SelUpper, y.SelUpper) })

	out := ConjunctPlan{Conds: conds}
	out.Exec.Order = make([]object.ID, len(conds))
	for i, cp := range conds {
		out.Exec.Order[i] = cp.Obj
	}

	first, ok := src.Get(conds[0].Obj)
	if !ok {
		return ConjunctPlan{}, fmt.Errorf("plan: object %d not found", conds[0].Obj)
	}
	iv := c[first.ID]

	// Later conditions probe at the locations surviving so far; model
	// them at the first condition's upper-bound hit estimate.
	probeNs := float64(conds[0].EstUpper) * exec.ProbeNsPerElem * float64(len(conds)-1)

	// Per-region choice over the first condition's regions.
	var scanProbeNs float64
	choices := make(map[int]exec.RegionChoice, len(first.Regions))
	for r := range first.Regions {
		rm := &first.Regions[r]
		if regionPrunable(rm, iv) {
			out.PrunedRegions++
			continue
		}
		elems := first.RegionElems(r)
		upper := uint64(elems)
		if rm.Hist != nil {
			_, upper = rm.Hist.Estimate(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
			if upper > elems {
				upper = elems
			}
		}
		scanNs := float64(elems) * exec.ScanNsPerElem
		probeRegionNs := math.Inf(1)
		if rm.IndexKey != "" && rm.IndexBins > 0 {
			// The index path reads the touched bins and candidate-checks
			// the boundary bins' worth of hits.
			bins := 1 + float64(rm.IndexBins)*frac(upper, elems)
			probeRegionNs = bins*indexBinNs + float64(upper)*exec.CandNsPerElem
		}
		choice := exec.ChoiceScan
		costNs := scanNs
		switch force {
		case ForceScan:
			// keep scan
		case ForceBitmap:
			if !math.IsInf(probeRegionNs, 1) {
				choice, costNs = exec.ChoiceProbe, probeRegionNs
			}
		default:
			if probeRegionNs < scanNs {
				choice, costNs = exec.ChoiceProbe, probeRegionNs
			}
		}
		if choice == exec.ChoiceProbe {
			out.ProbeRegions++
		} else {
			out.ScanRegions++
		}
		choices[r] = choice
		scanProbeNs += costNs
	}
	out.Exec.Regions = choices
	scanProbeNs += probeNs

	// Sorted-replica alternative: binary-search the sorted regions for
	// the interval, then probe the remaining conditions at the matching
	// locations.
	sortedNs := math.Inf(1)
	if first.SortedBy != 0 {
		n := float64(first.NumElems())
		steps := math.Log2(n + 1)
		sortedNs = steps*sortedStepNs +
			float64(conds[0].EstUpper)*exec.ProbeNsPerElem +
			probeNs
	}
	switch force {
	case ForceSorted:
		if !math.IsInf(sortedNs, 1) {
			out.Sorted = true
		}
	case ForceScan, ForceBitmap:
		// keep the forced per-region path
	default:
		if sortedNs < scanProbeNs {
			out.Sorted = true
		}
	}
	if out.Sorted {
		out.CostNs = sortedNs
	} else {
		out.CostNs = scanProbeNs
	}
	out.Exec.Sorted = out.Sorted
	return out, nil
}

// frac is a safe ratio.
func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// regionPrunable mirrors the engine's metadata-only region pruning:
// region histogram overlap when present, stored extrema otherwise.
func regionPrunable(rm *object.RegionMeta, iv query.Interval) bool {
	if rm.Hist != nil {
		return !rm.Hist.Overlaps(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
	}
	if rm.Max < iv.Lo || (rm.Max == iv.Lo && !iv.LoIncl) {
		return true
	}
	if rm.Min > iv.Hi || (rm.Min == iv.Hi && !iv.HiIncl) {
		return true
	}
	return false
}
