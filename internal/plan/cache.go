package plan

import (
	"container/list"
	"sync"
)

// Cache is the prepared-plan LRU: canonical query text → built plan,
// valid only for the (epoch, metadata generation) pair it was built
// against. A hit under a different epoch or generation is treated as a
// miss and evicted — rebalances and metadata mutations invalidate
// without any explicit flush.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	byKey map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key   string
	epoch uint64
	gen   uint64
	plan  *Plan
}

// NewCache returns an LRU holding up to capacity plans (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached plan for key if it was built at exactly this
// epoch and metadata generation.
func (c *Cache) Get(key string, epoch, gen uint64) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch || ent.gen != gen {
		// Stale: the world changed under the plan.
		c.ll.Remove(el)
		delete(c.byKey, key)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.plan, true
}

// Put stores a plan built at (epoch, gen), evicting the least recently
// used entry when full.
func (c *Cache) Put(key string, epoch, gen uint64, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch, ent.gen, ent.plan = epoch, gen, p
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, gen: gen, plan: p})
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
