package plan

import (
	"fmt"
	"strings"

	"pdcquery/internal/object"
)

// Actuals supplies the executed row counts for EXPLAIN ANALYZE: for
// conjunct ci and condition object id, the elements that entered and
// survived the condition (ok=false when the trace has no data, e.g.
// the condition was short-circuited away).
type Actuals func(ci int, id object.ID) (in, out int64, ok bool)

// Format renders the plan as the EXPLAIN text: per conjunct, the
// chosen access path and the ordered conditions with their estimated
// selectivity bounds.
func (p *Plan) Format(text string) string {
	return p.format(text, nil)
}

// FormatAnalyze renders EXPLAIN ANALYZE: Format plus the actual
// in/out rows per condition, so estimation drift is read directly as
// "est 10..40 / actual 37".
func (p *Plan) FormatAnalyze(text string, actual Actuals) string {
	if actual == nil {
		actual = func(int, object.ID) (int64, int64, bool) { return 0, 0, false }
	}
	return p.format(text, actual)
}

func (p *Plan) format(text string, actual Actuals) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", text)
	fmt.Fprintf(&b, "force: %s   modeled cost: %.0f ns\n", p.Force, p.CostNs)
	for ci, cj := range p.Conjuncts {
		access := "scan+probe"
		if cj.Sorted {
			access = "sorted-replica"
		}
		fmt.Fprintf(&b, "conjunct %d: %s (regions: %d scan, %d probe, %d pruned; cost %.0f ns)\n",
			ci, access, cj.ScanRegions, cj.ProbeRegions, cj.PrunedRegions, cj.CostNs)
		for i, cp := range cj.Conds {
			role := "probe"
			if i == 0 {
				role = "drive"
			}
			fmt.Fprintf(&b, "  %s %s %s  est rows %d..%d (sel %.4f..%.4f)",
				role, cp.Name, cp.Interval, cp.EstLower, cp.EstUpper, cp.SelLower, cp.SelUpper)
			if actual != nil {
				if in, out, ok := actual(ci, cp.Obj); ok {
					fmt.Fprintf(&b, "  actual in %d out %d", in, out)
				} else {
					b.WriteString("  actual -")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
