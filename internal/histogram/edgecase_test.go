package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// The tests in this file pin the boundary behavior of Quantile and
// Estimate/SelectivityBounds that the cost-based planner depends on.
// Each named regression fails on the pre-fix code (infinities clamped
// into grid bins, NaN quantile arithmetic, q=0/q=1 interpolation).

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
}

func TestQuantileBoundaryQ(t *testing.T) {
	h := Build([]float64{3.25, 7.5, 12.125, 99.5}, 8)
	// q<=0 must return the exact Min and q>=1 the exact Max — not a
	// bin-interpolated value.
	if got := h.Quantile(0); got != 3.25 {
		t.Errorf("Quantile(0) = %v, want exact Min 3.25", got)
	}
	if got := h.Quantile(-0.5); got != 3.25 {
		t.Errorf("Quantile(-0.5) = %v, want exact Min 3.25", got)
	}
	if got := h.Quantile(1); got != 99.5 {
		t.Errorf("Quantile(1) = %v, want exact Max 99.5", got)
	}
	if got := h.Quantile(2); got != 99.5 {
		t.Errorf("Quantile(2) = %v, want exact Max 99.5", got)
	}
}

func TestQuantileNaNQ(t *testing.T) {
	h := Build([]float64{1, 2, 3}, 4)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := Build([]float64{42.5}, 4)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		lo, hi := h.BinRange(0)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v outside the only bin [%v,%v]", q, got, lo, hi)
		}
	}
	if h.Quantile(0) != 42.5 || h.Quantile(1) != 42.5 {
		t.Errorf("single-value Quantile(0)/Quantile(1) = %v/%v, want 42.5",
			h.Quantile(0), h.Quantile(1))
	}
}

// Regression: with Min = -Inf the pre-fix interpolation computed
// -Inf + frac*(hi - -Inf) = NaN for interior quantiles. Interior
// quantiles over the finite mass must stay finite; only ranks that
// fall inside the -Inf mass may return -Inf.
func TestQuantileNegInfDataNotNaN(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.Inf(-1))
	for i := 1; i <= 9; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); !math.IsInf(got, -1) {
		t.Errorf("Quantile(0) = %v, want -Inf (the exact Min)", got)
	}
	// Rank 1 of 10 is the -Inf observation.
	if got := h.Quantile(0.05); !math.IsInf(got, -1) {
		t.Errorf("Quantile(0.05) = %v, want -Inf (rank inside the -Inf mass)", got)
	}
	for _, q := range []float64{0.3, 0.5, 0.9} {
		got := h.Quantile(q)
		if math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = NaN with -Inf in the data (pre-fix bug)", q)
		}
		if math.IsInf(got, 0) {
			t.Errorf("Quantile(%v) = %v, want a finite interior value", q, got)
		}
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) = %v, want exact Max 9", got)
	}
}

func TestQuantilePosInfData(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 9; i++ {
		h.Observe(float64(i))
	}
	h.Observe(math.Inf(1))
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("Quantile(1) = %v, want +Inf (the exact Max)", got)
	}
	if got := h.Quantile(0.5); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("Quantile(0.5) = %v, want a finite interior value", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want exact Min 1", got)
	}
}

// Regression: pre-fix, an observed +Inf was clamped into the then-last
// grid bin. When later observations grew the grid, the clamped count
// was stranded in an interior bin, so Estimate's upper bound for a
// range covering +Inf undercounted the truth — an inverted bound that
// silently reorders planner conjuncts.
func TestEstimateStrandedInfinityUpperBound(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(float64(i % 4))
	}
	h.Observe(math.Inf(1))
	for i := 4; i <= 20; i++ {
		h.Observe(float64(i))
	}
	// Truth for [18, +Inf]: values 18, 19, 20 and the +Inf = 4.
	lower, upper := h.Estimate(18, math.Inf(1), true, true)
	if upper < 4 {
		t.Fatalf("Estimate(18, +Inf) upper = %d, below truth 4 (stranded +Inf, pre-fix bug)", upper)
	}
	if lower > 4 {
		t.Errorf("Estimate(18, +Inf) lower = %d, above truth 4", lower)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// Regression: pre-fix, a +Inf clamped into (what later becomes) an
// interior bin was counted by Estimate's lower bound for a finite
// range that fully covers the bin — lower > truth, the inverted bound
// from the issue.
func TestEstimateHiddenInfinityLowerBound(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)
	h.Observe(2)
	h.Observe(math.Inf(1))
	h.Observe(50)
	// Truth for [0, 10]: values 1 and 2 only.
	lower, upper := h.Estimate(0, 10, true, true)
	if lower > 2 {
		t.Fatalf("Estimate(0, 10) lower = %d, above truth 2 (+Inf counted in a covered bin, pre-fix bug)", lower)
	}
	if upper < 2 {
		t.Errorf("Estimate(0, 10) upper = %d, below truth 2", upper)
	}
}

// Point queries at infinity: [+Inf, +Inf] closed must bracket the
// number of observed +Inf values exactly; open endpoints match nothing.
func TestEstimateInfinityPointQueries(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.Inf(-1))
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(1))
	h.Observe(5)

	lower, upper := h.Estimate(math.Inf(1), math.Inf(1), true, true)
	if lower != 2 || upper != 2 {
		t.Errorf("Estimate(+Inf, +Inf, closed) = [%d,%d], want [2,2]", lower, upper)
	}
	lower, upper = h.Estimate(math.Inf(-1), math.Inf(-1), true, true)
	if lower != 1 || upper != 1 {
		t.Errorf("Estimate(-Inf, -Inf, closed) = [%d,%d], want [1,1]", lower, upper)
	}
	lower, upper = h.Estimate(math.Inf(1), math.Inf(1), false, false)
	if lower != 0 || upper != 0 {
		t.Errorf("Estimate(+Inf, +Inf, open) = [%d,%d], want [0,0]", lower, upper)
	}
	// [-Inf, +Inf] closed covers everything.
	lower, upper = h.Estimate(math.Inf(-1), math.Inf(1), true, true)
	if lower != 4 || upper != 4 {
		t.Errorf("Estimate(-Inf, +Inf, closed) = [%d,%d], want [4,4]", lower, upper)
	}
	// [-Inf, +Inf) excludes only the +Inf observations.
	lower, upper = h.Estimate(math.Inf(-1), math.Inf(1), true, false)
	if lower > 2 || upper < 2 {
		t.Errorf("Estimate(-Inf, +Inf, half-open) = [%d,%d], must bracket 2", lower, upper)
	}
}

// Degenerate Lo==Hi point queries on finite data: closed must bracket
// the exact multiplicity, open must report zero.
func TestEstimateFinitePointQueries(t *testing.T) {
	vals := []float64{1, 2, 2, 3, 3, 3, 8.5}
	h := Build(vals, 8)
	for _, v := range []float64{1, 2, 3, 8.5, 4.75, -1} {
		truth := trueCount(vals, v, v, true, true)
		lower, upper := h.Estimate(v, v, true, true)
		if lower > truth || upper < truth {
			t.Errorf("point [%v,%v] closed: bounds [%d,%d] do not bracket truth %d", v, v, lower, upper, truth)
		}
		lower, upper = h.Estimate(v, v, false, false)
		if lower != 0 || upper != 0 {
			t.Errorf("point (%v,%v) open: bounds [%d,%d], want [0,0]", v, v, lower, upper)
		}
		lower, upper = h.Estimate(v, v, true, false)
		if lower != 0 || upper != 0 {
			t.Errorf("point [%v,%v) half-open: bounds [%d,%d], want [0,0]", v, v, lower, upper)
		}
	}
}

// Differential check against brute-force counts on seeded spectra:
// for every interval (endpoints drawn from exact data values, bin
// edges, and ±Inf; all four open/closed combinations; Lo==Hi points)
// the bounds must bracket the true count and SelectivityBounds must
// bracket the true fraction. Spectra include uniform, integer-heavy
// (mass exactly on bin edges), log-skewed, and ±Inf-sprinkled data,
// built both via Build and via a grid-growing Observe stream.
func TestEstimateBruteForceSeededSpectra(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	spectra := func(mode, n int) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			switch mode {
			case 0: // uniform floats
				vals[i] = rng.Float64()*200 - 100
			case 1: // small integers: mass lands exactly on bin edges
				vals[i] = float64(rng.Intn(32))
			case 2: // log-skewed (the Yıldız et al. failure shape)
				vals[i] = math.Exp(rng.Float64()*12 - 4)
			case 3: // tiny magnitudes around zero
				vals[i] = (rng.Float64() - 0.5) / 512
			default: // integers with sprinkled infinities
				switch rng.Intn(10) {
				case 0:
					vals[i] = math.Inf(1)
				case 1:
					vals[i] = math.Inf(-1)
				default:
					vals[i] = float64(rng.Intn(64))
				}
			}
		}
		return vals
	}
	for trial := 0; trial < 400; trial++ {
		mode := trial % 5
		n := 16 + rng.Intn(200)
		vals := spectra(mode, n)
		var h *Histogram
		if trial%2 == 0 {
			h = Build(vals, 16)
		} else {
			h = &Histogram{}
			for _, v := range vals {
				h.Observe(v)
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("trial %d mode %d: invariants: %v", trial, mode, err)
		}
		// Candidate endpoints: exact values, bin edges, ±Inf.
		var pts []float64
		for i := 0; i < 6; i++ {
			pts = append(pts, vals[rng.Intn(n)])
		}
		if h.NumBins() > 0 {
			for i := 0; i < 4; i++ {
				bl, bh := h.BinRange(rng.Intn(h.NumBins()))
				pts = append(pts, bl, bh)
			}
		}
		pts = append(pts, math.Inf(-1), math.Inf(1))
		for q := 0; q < 30; q++ {
			lo := pts[rng.Intn(len(pts))]
			hi := pts[rng.Intn(len(pts))]
			if hi < lo {
				lo, hi = hi, lo
			}
			if q%5 == 0 {
				hi = lo // degenerate point query
			}
			loIncl := rng.Intn(2) == 0
			hiIncl := rng.Intn(2) == 0
			truth := trueCount(vals, lo, hi, loIncl, hiIncl)
			lower, upper := h.Estimate(lo, hi, loIncl, hiIncl)
			if lower > truth || upper < truth {
				t.Fatalf("trial %d mode %d: Estimate(%v,%v,%v,%v) = [%d,%d] does not bracket truth %d",
					trial, mode, lo, hi, loIncl, hiIncl, lower, upper, truth)
			}
			fl, fh := h.SelectivityBounds(lo, hi, loIncl, hiIncl)
			frac := float64(truth) / float64(h.Total)
			const eps = 1e-12
			if fl > frac+eps || fh < frac-eps {
				t.Fatalf("trial %d mode %d: SelectivityBounds(%v,%v,%v,%v) = [%v,%v] does not bracket %v",
					trial, mode, lo, hi, loIncl, hiIncl, fl, fh, frac)
			}
		}
	}
}

// Quantiles must land within the bin (to grid resolution) of the true
// order statistic on seeded spectra, and never return NaN for finite
// data.
func TestQuantileBruteForceSeededSpectra(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for trial := 0; trial < 100; trial++ {
		n := 8 + rng.Intn(300)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 50
		}
		h := Build(vals, 16)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			if math.IsNaN(got) {
				t.Fatalf("trial %d: Quantile(%v) = NaN on finite data", trial, q)
			}
			if got < h.Min || got > h.Max {
				t.Fatalf("trial %d: Quantile(%v) = %v outside [Min=%v, Max=%v]",
					trial, q, got, h.Min, h.Max)
			}
		}
	}
}

// Merging must carry the off-grid infinity counters so merged
// estimates stay sound.
func TestMergeCarriesInfinityCounters(t *testing.T) {
	a := &Histogram{}
	a.Observe(1)
	a.Observe(math.Inf(1))
	b := &Histogram{}
	b.Observe(math.Inf(-1))
	b.Observe(2)
	b.Observe(math.Inf(1))
	a.Merge(b)
	if a.PosInf != 2 || a.NegInf != 1 {
		t.Fatalf("merged counters PosInf=%d NegInf=%d, want 2/1", a.PosInf, a.NegInf)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("invariants after merge: %v", err)
	}
	lower, upper := a.Estimate(math.Inf(-1), math.Inf(1), true, true)
	if lower != 5 || upper != 5 {
		t.Errorf("merged Estimate(-Inf,+Inf) = [%d,%d], want [5,5]", lower, upper)
	}
}

// Encode/Decode must round-trip the infinity counters.
func TestEncodeDecodeInfinityCounters(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.Inf(-1))
	h.Observe(3)
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(1))
	b := h.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NegInf != 1 || got.PosInf != 2 || got.Total != 4 {
		t.Fatalf("round-trip NegInf=%d PosInf=%d Total=%d, want 1/2/4", got.NegInf, got.PosInf, got.Total)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("decoded invariants: %v", err)
	}
}
