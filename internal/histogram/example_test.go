package histogram_test

import (
	"fmt"

	"pdcquery/internal/histogram"
)

// Example demonstrates Algorithm 1's key property: region histograms
// built independently — even over very different value ranges — merge
// exactly into a global histogram because every bin width is a power of
// two aligned to the same grid.
func Example() {
	regionA := make([]float64, 0, 1000)
	regionB := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		regionA = append(regionA, float64(i)/100)   // 0.00 .. 9.99
		regionB = append(regionB, 50+float64(i)/10) // 50.0 .. 149.9
	}
	ha := histogram.Build(regionA, 64)
	hb := histogram.Build(regionB, 64)
	fmt.Printf("region A: width %v\n", ha.Width)
	fmt.Printf("region B: width %v\n", hb.Width)

	global := histogram.MergeAll([]*histogram.Histogram{ha, hb})
	fmt.Printf("global:   width %v, %d elements\n", global.Width, global.Total)

	// Selectivity estimation: the true count always lies in the bounds.
	lo, hi := global.Estimate(5, 60, false, false)
	fmt.Printf("estimate for (5, 60): between %d and %d (truth 599)\n", lo, hi)
	// Output:
	// region A: width 0.125
	// region B: width 1
	// global:   width 1, 2000 elements
	// estimate for (5, 60): between 500 and 600 (truth 599)
}
