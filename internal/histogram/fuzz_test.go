package histogram

import (
	"encoding/binary"
	"math"
	"testing"
)

// valuesFrom reinterprets the fuzz bytes as float64 values, 8 bytes per
// value. NaNs and infinities pass through deliberately: Build must skip
// NaNs and clamp ±Inf without crashing.
func valuesFrom(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for len(b) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b)))
		b = b[8:]
	}
	return out
}

// FuzzHistogramMerge builds two histograms from arbitrary values and
// merges them, checking that the mergeability invariants (power-of-two
// width, grid-aligned start, counts summing to Total) survive and that
// no elements are lost. The merged encoding must also round-trip.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{}, []byte{}, 8)
	seed := make([]byte, 0, 64)
	for _, v := range []float64{1, 2, 3, 1000, -5, 0.25, 1e10, math.NaN()} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, seed[:32], 64)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, nbin int) {
		ha := Build(valuesFrom(rawA), nbin%512)
		hb := Build(valuesFrom(rawB), (nbin/2)%512)
		if err := ha.CheckInvariants(); err != nil {
			t.Fatalf("histogram A: %v", err)
		}
		if err := hb.CheckInvariants(); err != nil {
			t.Fatalf("histogram B: %v", err)
		}
		wantTotal := ha.Total + hb.Total
		ha.Merge(hb)
		if err := ha.CheckInvariants(); err != nil {
			t.Fatalf("merged: %v", err)
		}
		if ha.Total != wantTotal {
			t.Fatalf("merge lost elements: total %d, want %d", ha.Total, wantTotal)
		}
		got, err := Decode(ha.Encode())
		if err != nil {
			t.Fatalf("Decode(Encode()) of merged histogram: %v", err)
		}
		if got.Total != ha.Total || got.NumBins() != ha.NumBins() {
			t.Fatal("merged histogram does not round-trip")
		}
	})
}
