package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdcquery/internal/dtype"
)

// trueCount is the brute-force ground truth for range predicates.
func trueCount(values []float64, lo, hi float64, loIncl, hiIncl bool) uint64 {
	var n uint64
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		okLo := v > lo || (loIncl && v == lo)
		okHi := v < hi || (hiIncl && v == hi)
		if okLo && okHi {
			n++
		}
	}
	return n
}

func randValues(rng *rand.Rand, n int, scale, offset float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*scale + offset
	}
	return out
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 100, 5000} {
		for _, scale := range []float64{0.001, 1, 77.7, 1e6} {
			vals := randValues(rng, n, scale, -scale/3)
			h := Build(vals, 64)
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("n=%d scale=%v: %v", n, scale, err)
			}
			if h.Total != uint64(n) {
				t.Fatalf("n=%d: total = %d", n, h.Total)
			}
		}
	}
}

func TestBuildAtLeastRequestedResolution(t *testing.T) {
	// The paper's Algorithm 1 rounds the width DOWN to a power of two, so
	// the actual number of bins is at least the requested lower bound
	// (N'bin >= Nbin) for well-spread data.
	rng := rand.New(rand.NewSource(2))
	vals := randValues(rng, 10000, 100, 0)
	h := Build(vals, 50)
	if h.NumBins() < 50 {
		t.Errorf("bins = %d, want >= 50", h.NumBins())
	}
}

func TestBuildEmptyAndNaN(t *testing.T) {
	h := Build(nil, 64)
	if h.Total != 0 {
		t.Errorf("empty total = %d", h.Total)
	}
	if h.Overlaps(0, 1, true, true) {
		t.Error("empty histogram overlaps")
	}
	l, u := h.Estimate(0, 1, true, true)
	if l != 0 || u != 0 {
		t.Errorf("empty estimate = (%d, %d)", l, u)
	}

	h = Build([]float64{math.NaN(), 1, math.NaN(), 2}, 8)
	if h.Total != 2 {
		t.Errorf("NaN-skipping total = %d, want 2", h.Total)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBuildInfinities(t *testing.T) {
	// ±Inf values must be clamped into the edge bins, not crash the
	// grid-growing int conversion, and must widen the exact Min/Max so
	// region elimination never prunes a region that holds them.
	h := Build([]float64{math.Inf(-1), 1, 2, 3, math.Inf(1)}, 64)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Total != 5 {
		t.Errorf("total = %d, want 5", h.Total)
	}
	if !math.IsInf(h.Min, -1) || !math.IsInf(h.Max, 1) {
		t.Errorf("min/max = %v/%v, want -Inf/+Inf", h.Min, h.Max)
	}
	if !h.Overlaps(1e300, math.Inf(1), true, true) {
		t.Error("region with +Inf values eliminated for a huge-value query")
	}

	// All-infinite input: no finite grid, but the values still count.
	h = Build([]float64{math.Inf(1), math.Inf(1)}, 8)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Total != 2 {
		t.Errorf("all-Inf total = %d, want 2", h.Total)
	}
	if h.Overlaps(5, 10, true, true) {
		t.Error("finite-range query overlaps an all-+Inf region")
	}
	if !h.Overlaps(5, math.Inf(1), true, true) {
		t.Error("unbounded query misses an all-+Inf region")
	}
}

func TestMergeFarApartHistograms(t *testing.T) {
	// Regression: two narrow histograms at distant values used to make
	// Merge allocate span/width bins (hundreds of GB for two elements).
	a := Build([]float64{1.5e-76}, 64)
	b := Build([]float64{6.9e10}, 64)
	a.Merge(b)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Total != 2 {
		t.Errorf("total = %d, want 2", a.Total)
	}
	if a.NumBins() > maxMergeBins {
		t.Errorf("merged grid has %d bins, cap %d", a.NumBins(), maxMergeBins)
	}
}

func TestBuildConstantData(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 42.5
	}
	h := Build(vals, 64)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Min != 42.5 || h.Max != 42.5 {
		t.Errorf("min/max = %v/%v", h.Min, h.Max)
	}
	l, u := h.Estimate(42, 43, true, true)
	if u != 1000 {
		t.Errorf("upper = %d, want 1000", u)
	}
	if l > 1000 {
		t.Errorf("lower = %d", l)
	}
	l, _ = h.Estimate(100, 200, true, true)
	if l != 0 {
		t.Errorf("out-of-range lower = %d", l)
	}
}

func TestEstimateBoundsBracketTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randValues(rng, 20000, 10, -5)
	h := Build(vals, 64)
	queries := []struct{ lo, hi float64 }{
		{-10, 10}, {-1, 1}, {0, 0.001}, {4.9, 5.1}, {-5, -4.99}, {2, 2},
	}
	for _, q := range queries {
		for _, loIncl := range []bool{true, false} {
			for _, hiIncl := range []bool{true, false} {
				want := trueCount(vals, q.lo, q.hi, loIncl, hiIncl)
				l, u := h.Estimate(q.lo, q.hi, loIncl, hiIncl)
				if l > want || u < want {
					t.Errorf("query [%v,%v] incl(%v,%v): bounds (%d,%d) do not bracket truth %d",
						q.lo, q.hi, loIncl, hiIncl, l, u, want)
				}
			}
		}
	}
}

func TestOverlapsUsesExactMinMax(t *testing.T) {
	h := Build([]float64{1, 2, 3}, 8)
	if h.Overlaps(3.5, 4, true, true) {
		t.Error("overlap beyond max")
	}
	if h.Overlaps(-1, 0.5, true, true) {
		t.Error("overlap below min")
	}
	if !h.Overlaps(3, 10, true, true) {
		t.Error("inclusive boundary at max should overlap")
	}
	if h.Overlaps(3, 10, false, true) {
		t.Error("exclusive boundary at max should not overlap")
	}
	if !h.Overlaps(-10, 1, true, true) {
		t.Error("inclusive boundary at min should overlap")
	}
	if h.Overlaps(-10, 1, true, false) {
		t.Error("exclusive boundary at min should not overlap")
	}
}

func TestMergePreservesTotalAndMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Build(randValues(rng, 5000, 3, 0), 64)
	b := Build(randValues(rng, 3000, 800, -400), 64) // very different spread
	c := Build(randValues(rng, 100, 0.01, 7), 64)    // very narrow

	g := MergeAll([]*Histogram{a, b, c})
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Total != 8100 {
		t.Errorf("merged total = %d, want 8100", g.Total)
	}
	wantMin := math.Min(a.Min, math.Min(b.Min, c.Min))
	wantMax := math.Max(a.Max, math.Max(b.Max, c.Max))
	if g.Min != wantMin || g.Max != wantMax {
		t.Errorf("merged min/max = %v/%v, want %v/%v", g.Min, g.Max, wantMin, wantMax)
	}
}

func TestMergedEstimateBracketsTruth(t *testing.T) {
	// The central property from §IV: region histograms with different
	// widths merge into a global histogram whose estimates still bracket
	// the union's true counts.
	rng := rand.New(rand.NewSource(5))
	var all []float64
	var hs []*Histogram
	for r := 0; r < 10; r++ {
		// Each region has its own scale/offset, forcing different widths.
		scale := math.Exp2(float64(rng.Intn(12) - 4))
		vals := randValues(rng, 1000+rng.Intn(2000), scale, rng.Float64()*50-25)
		all = append(all, vals...)
		hs = append(hs, Build(vals, 50))
	}
	g := MergeAll(hs)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		lo := rng.Float64()*60 - 30
		hi := lo + rng.Float64()*20
		want := trueCount(all, lo, hi, true, false)
		l, u := g.Estimate(lo, hi, true, false)
		if l > want || u < want {
			t.Fatalf("query [%v,%v): bounds (%d,%d) do not bracket truth %d", lo, hi, l, u, want)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	a := Build([]float64{1, 2, 3}, 8)
	e := Build(nil, 8)
	a.Merge(e)
	if a.Total != 3 {
		t.Errorf("merge with empty changed total: %d", a.Total)
	}
	e2 := Build(nil, 8)
	e2.Merge(a)
	if e2.Total != 3 || e2.Min != 1 || e2.Max != 3 {
		t.Errorf("empty.Merge(a) = total %d min %v max %v", e2.Total, e2.Min, e2.Max)
	}
	// Merging into the empty must not alias a's counts.
	e2.Counts[0] += 100
	var sum uint64
	for _, c := range a.Counts {
		sum += c
	}
	if sum != 3 {
		t.Error("empty.Merge aliased source counts")
	}
}

func TestMergeCommutativeInDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Build(randValues(rng, 1000, 5, 0), 32)
	b := Build(randValues(rng, 1000, 50, -20), 32)
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if ab.Total != ba.Total || ab.Min != ba.Min || ab.Max != ba.Max {
		t.Errorf("merge not symmetric: %v vs %v", ab, ba)
	}
	if ab.Width != ba.Width {
		t.Errorf("merge widths differ: %v vs %v", ab.Width, ba.Width)
	}
}

func TestSelectivityBounds(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i) // 0..999 uniform
	}
	h := Build(vals, 64)
	lo, hi := h.SelectivityBounds(0, 99, true, true) // true 10%
	if lo > 0.1 || hi < 0.1 {
		t.Errorf("selectivity bounds (%v, %v) do not bracket 0.10", lo, hi)
	}
	if hi > 0.2 {
		t.Errorf("upper selectivity %v too loose", hi)
	}
	lo, hi = (&Histogram{}).SelectivityBounds(0, 1, true, true)
	if lo != 0 || hi != 0 {
		t.Errorf("empty selectivity = (%v, %v)", lo, hi)
	}
}

func TestBuildBytes(t *testing.T) {
	vals := []float32{1, 2, 3, 4, 5}
	h := BuildBytes(dtype.Float32, dtype.Bytes(vals), 8)
	if h.Total != 5 || h.Min != 1 || h.Max != 5 {
		t.Errorf("BuildBytes: total=%d min=%v max=%v", h.Total, h.Min, h.Max)
	}
	ints := []int32{-3, 7, 7, 9}
	h = BuildBytes(dtype.Int32, dtype.Bytes(ints), 8)
	if h.Total != 4 || h.Min != -3 || h.Max != 9 {
		t.Errorf("BuildBytes int32: total=%d min=%v max=%v", h.Total, h.Min, h.Max)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := Build(randValues(rng, 3000, 42, -13), 64)
	b := h.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != h.Width || got.Start != h.Start || got.Min != h.Min ||
		got.Max != h.Max || got.Total != h.Total || len(got.Counts) != len(h.Counts) {
		t.Fatalf("decode mismatch: %+v vs %+v", got, h)
	}
	for i := range h.Counts {
		if got.Counts[i] != h.Counts[i] {
			t.Fatalf("count %d mismatch", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode(make([]byte, 48)); err == nil {
		t.Error("Decode(zero magic) succeeded")
	}
	h := Build([]float64{1, 2}, 4)
	b := h.Encode()
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("Decode(truncated) succeeded")
	}
}

func TestPowFloor(t *testing.T) {
	cases := map[float64]float64{
		1: 1, 1.5: 1, 2: 2, 3.99: 2, 4: 4,
		0.3: 0.25, 0.5: 0.5, 0.7: 0.5, 100: 64,
	}
	for in, want := range cases {
		if got := powFloor(in); got != want {
			t.Errorf("powFloor(%v) = %v, want %v", in, got, want)
		}
	}
	if got := powFloor(0); got != 1 {
		t.Errorf("powFloor(0) = %v, want 1", got)
	}
	if got := powFloor(-5); got != 1 {
		t.Errorf("powFloor(-5) = %v, want 1", got)
	}
	if got := powFloor(math.Inf(1)); got != 1 {
		t.Errorf("powFloor(+Inf) = %v, want 1", got)
	}
}

func TestPropertyBuildBracketsEverywhere(t *testing.T) {
	f := func(seed int64, loF, widthF float64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randValues(rng, 500, 20, -10)
		h := Build(vals, 32)
		if h.CheckInvariants() != nil {
			return false
		}
		lo := math.Mod(math.Abs(loF), 25) - 12
		hi := lo + math.Mod(math.Abs(widthF), 10)
		want := trueCount(vals, lo, hi, true, true)
		l, u := h.Estimate(lo, hi, true, true)
		return l <= want && want <= u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeTotal(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := Build(randValues(ra, 200, math.Exp2(float64(ra.Intn(10)-5)), 0), 16)
		b := Build(randValues(rb, 300, math.Exp2(float64(rb.Intn(10)-5)), 5), 16)
		m := a.Clone()
		m.Merge(b)
		return m.Total == a.Total+b.Total && m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOutlierExtensionKeepsBracketingAfterMerge(t *testing.T) {
	// Heavy-tailed data defeats sampled min/max: unsampled outliers land
	// beyond the initial grid. The grid must extend (not clamp) so that
	// merged (global) histograms still bracket exact counts — the failure
	// mode that motivated deviating from Algorithm 1's edge adjustment.
	rng := rand.New(rand.NewSource(99))
	var all []float64
	var hs []*Histogram
	for r := 0; r < 8; r++ {
		vals := make([]float64, 3000)
		for i := range vals {
			vals[i] = rng.ExpFloat64() * 1.5 // tail far beyond any 10% sample
		}
		all = append(all, vals...)
		h := Build(vals, 50)
		if err := h.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Every bin's nominal range must actually contain its values:
		// totals of Estimate over the exact data bracket per region too.
		hs = append(hs, h)
	}
	g := MergeAll(hs)
	for _, q := range []struct{ lo, hi float64 }{
		{8, 9}, {10, 100}, {0.0, 0.1}, {5.5, 5.6}, {12, 13},
	} {
		want := trueCount(all, q.lo, q.hi, false, false)
		l, u := g.Estimate(q.lo, q.hi, false, false)
		if l > want || u < want {
			t.Errorf("merged tail query (%v,%v): bounds (%d,%d) do not bracket truth %d",
				q.lo, q.hi, l, u, want)
		}
	}
}

func TestExtremeOutlierClampFallback(t *testing.T) {
	// A value absurdly far from the grid must not OOM the histogram: the
	// grid coarsens (singleton merge, bounded by maxMergeBins) instead
	// of extending bin by bin. Clamping it into the edge bin — the old
	// behavior — stranded the outlier in an interior bin as soon as the
	// grid grew past it, breaking both Estimate bounds.
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i % 10)
	}
	vals[137] = 1e12 // not seen by the stride-10 sample (137 % 10 != 0)
	h := Build(vals, 16)
	if h.NumBins() > maxMergeBins {
		t.Fatalf("extreme outlier grew the grid to %d bins", h.NumBins())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Max != 1e12 {
		t.Errorf("max = %v", h.Max)
	}
	// The bounds must still cover the outlier...
	_, u := h.Estimate(1e11, 1e13, false, false)
	if u < 1 {
		t.Errorf("outlier invisible to the upper bound: %d", u)
	}
	// ...and must not smuggle it below the range it actually lies in:
	// the old clamp counted it as a fully-covered element of the dense
	// low bins, inflating the lower bound past the truth.
	l, _ := h.Estimate(0, 10, true, true)
	if l > 200 {
		t.Errorf("lower bound %d exceeds the %d elements in [0,10]", l, 200)
	}
}
