package histogram

import (
	"math/rand"
	"testing"
)

func benchValues(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 2
	}
	return vals
}

func BenchmarkBuild(b *testing.B) {
	vals := benchValues(1 << 20)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(vals, 64)
	}
}

func BenchmarkMerge(b *testing.B) {
	var hs []*Histogram
	for r := 0; r < 64; r++ {
		hs = append(hs, Build(benchValues(1<<14), 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeAll(hs)
	}
}

func BenchmarkEstimate(b *testing.B) {
	h := Build(benchValues(1<<20), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Estimate(2.1, 2.2, false, false)
	}
}
