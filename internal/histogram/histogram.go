// Package histogram implements the paper's mergeable region histograms and
// the global histogram built from them (Algorithm 1 and §IV).
//
// The key idea: pre-determining shared bin boundaries for all regions would
// require a global scan, so instead every region histogram independently
// picks a bin width that is a power of two (..., 0.25, 0.5, 1, 2, ...) and
// aligns its bin boundaries to multiples of that width. Any two such
// histograms have divisible widths and aligned boundaries, so they can be
// merged exactly — bin counts re-aggregate into the coarser grid without
// splitting — producing a "global" histogram for the whole object.
//
// The histogram serves the two purposes in §III-D2: region elimination
// (via exact min/max kept per histogram) and selectivity estimation (lower
// bound = fully covered bins, upper bound = plus partially covered bins).
package histogram

import (
	"encoding/binary"
	"fmt"
	"math"

	"pdcquery/internal/dtype"
)

// DefaultBins is the default lower bound on the number of bins; the paper
// uses 50 to 100 bins per region depending on region size.
const DefaultBins = 64

// Histogram is a fixed-width binned histogram whose bin width is an exact
// power of two and whose bin boundaries are integer multiples of the bin
// width. Bin i covers [Start + i*Width, Start + (i+1)*Width); values that
// fall outside (possible because min/max are estimated from a sample)
// extend the grid by whole aligned bins, and the exact Min/Max are
// tracked separately. (Algorithm 1 lines 12–17 instead widen the edge
// boundaries; see add for why extension is used here.)
type Histogram struct {
	// Width is the bin width, 2^k for some integer k.
	Width float64
	// Start is the lower boundary of bin 0, an integer multiple of Width.
	Start float64
	// Counts holds the per-bin element counts.
	Counts []uint64
	// Min and Max are the exact observed data minimum and maximum.
	Min, Max float64
	// Total is the number of counted (non-NaN) elements, including the
	// infinite ones below.
	Total uint64
	// NegInf and PosInf count observed -Inf/+Inf values. Infinities
	// cannot live on a finite bin grid: clamping them into an edge bin
	// (the old behavior) strands them in an interior bin once the grid
	// grows, silently breaking both Estimate bounds. They are counted
	// here instead and folded back in by Estimate and Quantile.
	NegInf, PosInf uint64
}

// powFloor rounds w down to the nearest power of two (2^k, k may be
// negative). It returns 1 for non-positive or non-finite inputs.
func powFloor(w float64) float64 {
	if !(w > 0) || math.IsInf(w, 1) {
		return 1
	}
	return math.Exp2(math.Floor(math.Log2(w)))
}

// sampleMinMax estimates min and max from a deterministic ~10% sample
// (every 10th element), the reproducible stand-in for the paper's random
// 10% sample. Small inputs are scanned fully. NaNs and infinities are
// skipped: the bin grid must be built from finite values (±Inf data is
// clamped into the edge bins by add).
func sampleMinMax(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	stride := 10
	if len(values) < 100 {
		stride = 1
	}
	for i := 0; i < len(values); i += stride {
		v := values[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Build constructs a mergeable histogram over values with at least nbin
// bins (Algorithm 1). The actual bin count may differ because the width is
// rounded down to a power of two and the boundaries are grid-aligned; the
// paper accepts this since selectivity estimation does not require an
// exact bin count. NaN values are ignored. Build returns an empty (zero
// Total) histogram for empty input.
func Build(values []float64, nbin int) *Histogram {
	if nbin <= 0 {
		nbin = DefaultBins
	}
	lo, hi := sampleMinMax(values)
	if math.IsInf(lo, 1) {
		// No finite values in the sample. Any non-NaN values (±Inf) are
		// still binned below on a trivial one-bin grid so Total and the
		// exact Min/Max reflect them and region elimination stays sound.
		lo, hi = 0, 0
	}
	w := powFloor((hi - lo) / float64(nbin))
	start := math.Floor(lo/w) * w
	n := int(math.Ceil((hi-start)/w)) + 1
	if n < 1 {
		n = 1
	}
	h := &Histogram{
		Width:  w,
		Start:  start,
		Counts: make([]uint64, n),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		h.add(v)
	}
	return h
}

// BuildBytes builds a histogram directly over a raw region buffer of the
// given element type.
func BuildBytes(t dtype.Type, data []byte, nbin int) *Histogram {
	n := t.Count(len(data))
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = dtype.At(t, data, i)
	}
	return Build(values, nbin)
}

// maxGrow bounds grid extension for extreme outliers; beyond it a value
// is merged in as a singleton histogram, which coarsens the bin width
// until the grid spans the outlier (the same path Observe uses). Values
// are never clamped into a bin that does not cover them: a clamped
// count turns into a wrong Estimate bound as soon as the grid grows
// past it.
const maxGrow = 1 << 16

// maxMergeBins bounds the merged grid size. Two histograms whose data
// lies far apart (narrow local ranges at distant values) would otherwise
// need span/width bins — easily gigabytes for a few elements. Merge
// doubles the bin width until the span fits, trading resolution for a
// bounded footprint while keeping the power-of-two/aligned invariants.
const maxMergeBins = 1 << 16

// add places v on the histogram grid. Values outside the sampled range
// extend the grid by whole bins — Algorithm 1 instead adjusts the edge
// boundary (lines 12–17), but extension keeps every bin's nominal range
// truthful so that merged histograms still bracket exact counts; the
// grid stays power-of-two aligned either way. Values too far away to
// extend toward coarsen the grid via a singleton merge; infinities are
// counted off-grid (NegInf/PosInf). Either way no bin ever holds a
// value outside its nominal range.
func (h *Histogram) add(v float64) {
	if math.IsInf(v, 0) {
		if v < 0 {
			h.NegInf++
		} else {
			h.PosInf++
		}
		h.Total++
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
		return
	}
	// Compute the bin index in float space: converting a value further
	// than maxInt bins from the grid straight to int overflows the
	// conversion (the result is platform-specific, e.g. minInt), which
	// used to turn the grow amount negative and panic in make.
	fj := math.Floor((v - h.Start) / h.Width)
	if fj < 0 {
		grow := -fj
		if grow > maxGrow {
			h.Merge(Build([]float64{v}, 1))
			return
		}
		g := int(grow)
		h.Counts = append(make([]uint64, g, g+len(h.Counts)), h.Counts...)
		h.Start -= float64(g) * h.Width
		fj = 0
	}
	if fj >= float64(len(h.Counts)) {
		grow := fj - float64(len(h.Counts)) + 1
		if grow > maxGrow {
			h.Merge(Build([]float64{v}, 1))
			return
		}
		h.Counts = append(h.Counts, make([]uint64, int(grow))...)
		if fj >= float64(len(h.Counts)) {
			fj = float64(len(h.Counts) - 1)
		}
	}
	h.Counts[int(fj)]++
	h.Total++
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Observe adds one value incrementally, for histograms that accumulate a
// stream (telemetry distributions) rather than binning a known buffer.
// The first observation seeds a singleton grid via Build; later values
// near the grid reuse add's aligned extension, and values too far away
// for extension merge in as a singleton histogram, which coarsens the
// width instead of clamping — keeping stream histograms exact and
// mergeable no matter how wide the value range grows. NaNs are ignored,
// matching Build; infinities go to the off-grid NegInf/PosInf counts.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if h.Total == 0 {
		*h = *Build([]float64{v}, 1)
		return
	}
	h.add(v)
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.Counts) }

// BinRange returns the [lo, hi) boundary of bin i, widened at the edges
// to the exact observed finite Min/Max should those lie outside the
// grid. Infinite extrema never widen a bin: infinities are counted
// off-grid (NegInf/PosInf), and letting a ±Inf boundary into Quantile's
// interpolation used to produce NaN (-Inf + q·(+Inf) has no value).
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	lo = h.Start + float64(i)*h.Width
	hi = lo + h.Width
	if i == 0 && h.Min < lo && !math.IsInf(h.Min, -1) {
		lo = h.Min
	}
	if i == len(h.Counts)-1 && h.Max >= hi && !math.IsInf(h.Max, 1) {
		hi = math.Nextafter(h.Max, math.Inf(1))
	}
	return lo, hi
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values:
// it walks the cumulative bin counts to the bin containing the rank and
// interpolates linearly inside it, clamping to the exact observed
// [Min, Max]. q=0 reports the exact Min and q=1 the exact Max (either
// may be ±Inf when the data held infinities); a NaN q propagates as
// NaN; an empty or nil histogram reports 0 for any q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Total)
	// The off-grid -Inf observations occupy the lowest ranks; +Inf ones
	// are the h.Max fallthrough past the last bin.
	if rank <= float64(h.NegInf) {
		return math.Inf(-1)
	}
	cum := float64(h.NegInf)
	for i, c := range h.Counts {
		next := cum + float64(c)
		if c > 0 && next >= rank {
			lo, hi := h.BinRange(i)
			v := lo + (rank-cum)/float64(c)*(hi-lo)
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum = next
	}
	return h.Max
}

// Merge merges o into h in place. Both histograms must come from Build (or
// Merge), so their widths are powers of two and boundaries grid-aligned;
// Merge re-bins the finer histogram into the coarser grid, growing the
// grid to cover both. Merging an empty histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Total == 0 {
		return
	}
	if h.Total == 0 {
		*h = *o.Clone()
		return
	}
	w := h.Width
	if o.Width > w {
		w = o.Width
	}
	// New grid start: the smaller start, aligned down to the coarse grid.
	start := h.Start
	if o.Start < start {
		start = o.Start
	}
	start = math.Floor(start/w) * w
	endH := h.Start + float64(len(h.Counts))*h.Width
	endO := o.Start + float64(len(o.Counts))*o.Width
	end := endH
	if endO > end {
		end = endO
	}
	// Size the merged grid in float space (the span/width ratio can
	// exceed maxInt), coarsening the width until it fits maxMergeBins.
	fn := math.Ceil((end - start) / w)
	for fn > maxMergeBins {
		w *= 2
		start = math.Floor(start/w) * w
		fn = math.Ceil((end - start) / w)
	}
	n := int(fn)
	if n < 1 {
		n = 1
	}
	counts := make([]uint64, n)
	rebin := func(src *Histogram) {
		for i, c := range src.Counts {
			if c == 0 {
				continue
			}
			// Use the bin's lower boundary: because src boundaries are
			// multiples of src.Width and w is a multiple of src.Width with
			// aligned start, the whole source bin lands in one dest bin.
			lo := src.Start + float64(i)*src.Width
			j := int(math.Floor((lo - start) / w))
			if j < 0 {
				j = 0
			}
			if j >= n {
				j = n - 1
			}
			counts[j] += c
		}
	}
	rebin(h)
	rebin(o)
	h.Width = w
	h.Start = start
	h.Counts = counts
	h.Total += o.Total
	h.NegInf += o.NegInf
	h.PosInf += o.PosInf
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// MergeAll merges a set of histograms into a fresh global histogram.
func MergeAll(hs []*Histogram) *Histogram {
	g := &Histogram{Width: 1, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, h := range hs {
		g.Merge(h)
	}
	return g
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Counts = make([]uint64, len(h.Counts))
	copy(c.Counts, h.Counts)
	return &c
}

// Overlaps reports whether any data could satisfy lo <= v <= hi (bounds
// are treated inclusively when loIncl/hiIncl), using the exact min/max.
// This is the paper's region-elimination test.
func (h *Histogram) Overlaps(lo, hi float64, loIncl, hiIncl bool) bool {
	if h.Total == 0 {
		return false
	}
	if hi < h.Min || (hi == h.Min && !hiIncl) {
		return false
	}
	if lo > h.Max || (lo == h.Max && !loIncl) {
		return false
	}
	return true
}

// Estimate returns lower and upper bounds on the number of elements v with
// lo (<|<=) v (<|<=) hi: bins entirely inside the query range count toward
// both bounds; bins partially overlapping count toward the upper bound
// only (§III-D2). Off-grid infinities contribute exactly: ±Inf matches a
// predicate only at a closed infinite endpoint, so their counts go to
// both bounds when matched and to neither otherwise.
func (h *Histogram) Estimate(lo, hi float64, loIncl, hiIncl bool) (lower, upper uint64) {
	if !h.Overlaps(lo, hi, loIncl, hiIncl) {
		return 0, 0
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bLo, bHi := h.BinRange(i) // bin values lie in [bLo, bHi)
		// Skip bins with no possible overlap.
		if bHi <= lo || bLo > hi || (bLo == hi && !hiIncl) {
			continue
		}
		// A bin counts toward the lower bound only if every value it
		// could hold satisfies the predicate.
		fullyLo := bLo > lo || (bLo == lo && loIncl)
		fullyHi := bHi <= hi // values are strictly below bHi
		if fullyLo && fullyHi {
			lower += c
		}
		upper += c
	}
	// v = -Inf satisfies lo ≤ v only as lo = -Inf with a closed endpoint,
	// and satisfies v ≤ hi for any hi above it (or hi = -Inf closed);
	// mirrored for +Inf. Both conditions are decidable from the interval
	// alone, so the infinite counts tighten both bounds, not just upper.
	if h.NegInf > 0 && math.IsInf(lo, -1) && loIncl && (hi > lo || hiIncl) {
		lower += h.NegInf
		upper += h.NegInf
	}
	if h.PosInf > 0 && math.IsInf(hi, 1) && hiIncl && (lo < hi || loIncl) {
		lower += h.PosInf
		upper += h.PosInf
	}
	return lower, upper
}

// SelectivityBounds returns the estimated selectivity range as fractions
// of the total element count.
func (h *Histogram) SelectivityBounds(lo, hi float64, loIncl, hiIncl bool) (low, high float64) {
	if h.Total == 0 {
		return 0, 0
	}
	l, u := h.Estimate(lo, hi, loIncl, hiIncl)
	return float64(l) / float64(h.Total), float64(u) / float64(h.Total)
}

// alignedTo reports whether a is an integer multiple of w (within one ulp
// of slack), used by invariant checks and tests.
func alignedTo(a, w float64) bool {
	q := a / w
	return q == math.Trunc(q)
}

// CheckInvariants verifies the mergeability invariants: power-of-two
// width and grid-aligned start. It returns nil for an empty histogram.
func (h *Histogram) CheckInvariants() error {
	if h.Total == 0 {
		return nil
	}
	if exp := math.Log2(h.Width); exp != math.Trunc(exp) {
		return fmt.Errorf("histogram: width %v is not a power of two", h.Width)
	}
	if !alignedTo(h.Start, h.Width) {
		return fmt.Errorf("histogram: start %v not aligned to width %v", h.Start, h.Width)
	}
	sum := h.NegInf + h.PosInf
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		return fmt.Errorf("histogram: counts sum %d (incl %d -Inf, %d +Inf) != total %d",
			sum, h.NegInf, h.PosInf, h.Total)
	}
	if h.Min > h.Max {
		return fmt.Errorf("histogram: min %v > max %v with total %d", h.Min, h.Max, h.Total)
	}
	return nil
}

const encMagic = uint32(0x50444348) // "PDCH"

// Encode serializes the histogram for metadata persistence and transport.
func (h *Histogram) Encode() []byte {
	buf := make([]byte, 0, 64+8*len(h.Counts))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(encMagic)
	put32(uint32(len(h.Counts)))
	putF(h.Width)
	putF(h.Start)
	putF(h.Min)
	putF(h.Max)
	put64(h.Total)
	put64(h.NegInf)
	put64(h.PosInf)
	for _, c := range h.Counts {
		put64(c)
	}
	return buf
}

// Decode deserializes a histogram produced by Encode.
func Decode(b []byte) (*Histogram, error) {
	if len(b) < 64 {
		return nil, fmt.Errorf("histogram: encoded buffer too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != encMagic {
		return nil, fmt.Errorf("histogram: bad magic")
	}
	n := int(binary.LittleEndian.Uint32(b[4:8]))
	if len(b) != 64+8*n {
		return nil, fmt.Errorf("histogram: encoded length %d does not match %d bins", len(b), n)
	}
	h := &Histogram{
		Width:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
		Start:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
		Min:    math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
		Max:    math.Float64frombits(binary.LittleEndian.Uint64(b[32:40])),
		Total:  binary.LittleEndian.Uint64(b[40:48]),
		NegInf: binary.LittleEndian.Uint64(b[48:56]),
		PosInf: binary.LittleEndian.Uint64(b[56:64]),
		Counts: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		h.Counts[i] = binary.LittleEndian.Uint64(b[64+8*i : 72+8*i])
	}
	return h, nil
}
