package fault

import (
	"flag"
	"testing"
)

// clusterSeeds is the cluster soak width: `make chaos` runs it with
// -cluster-seeds 32. The default keeps `go test ./...` reasonable
// while still exercising kill, join, and drain episodes.
var clusterSeeds = flag.Int("cluster-seeds", 6, "number of seeded membership-fault schedules TestClusterChaos runs")

// TestClusterChaos is the membership soak: for each seed, boot a local
// cluster, import the oracle dataset, and interleave the corpus with
// member kills (some mid-query), joins, and drains. Zero wrong answers:
// every query is byte-identical to the oracle or a typed error, and the
// settled cluster must hold all replicas and answer the corpus clean.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos skipped in -short")
	}
	opts := DefaultClusterChaosOptions()
	for seed := uint64(1); seed <= uint64(*clusterSeeds); seed++ {
		res, err := RunClusterChaos(seed, opts)
		if err != nil {
			t.Fatalf("seed %d: %v (replay: RunClusterChaos(%d, ...))", seed, err, seed)
		}
		if res.Masked+res.Typed != opts.Queries {
			t.Fatalf("seed %d: %d masked + %d typed != %d queries", seed, res.Masked, res.Typed, opts.Queries)
		}
		t.Logf("seed %d: %d masked, %d typed; %d kills, %d joins, %d drains",
			seed, res.Masked, res.Typed, res.Kills, res.Joins, res.Drains)
	}
}
