package fault

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pdcquery/internal/cluster"
	"pdcquery/internal/telemetry"
)

// Cluster chaos: the zero-wrong-answers invariant under membership
// faults. A seeded schedule interleaves the query corpus with member
// kills (no goodbye, some fired mid-query from a racing goroutine),
// joins (live rebalance with extent transfer), and drains (graceful
// departure). Every query must return the oracle's selection
// byte-identically or fail with a recognized typed error; after the
// schedule settles, a full verification pass insists the cluster holds
// every replica its placement assigns and answers the whole corpus
// with zero errors.

// ClusterChaosOptions sizes the cluster and workload a seed runs
// against.
type ClusterChaosOptions struct {
	// Members is the initial cluster size (default 3).
	Members int
	// R is the replication factor (default 2).
	R int
	// Particles is the VPIC dataset size (default 6000).
	Particles int
	// Queries is the number of queries issued during the fault phase
	// (default 12; the workload cycles through the single-object set).
	Queries int
}

// DefaultClusterChaosOptions returns the standard configuration.
func DefaultClusterChaosOptions() ClusterChaosOptions {
	return ClusterChaosOptions{Members: 3, R: 2, Particles: 6000, Queries: 12}
}

// ClusterChaosResult summarizes one seed's run.
type ClusterChaosResult struct {
	// Masked counts queries answered byte-identically to the oracle.
	Masked int
	// Typed counts queries that failed with a recognized typed error.
	Typed int
	// Kills, Joins, Drains count the membership faults that fired.
	Kills, Joins, Drains int
	// Errors holds the typed errors, in query order (nil for successes).
	Errors []error
}

// clusterTypedError extends the chaos vocabulary with the cluster
// layer's own typed failures: epoch mismatches from rebalances racing
// queries, catalog rejections, and the session's exhausted-retries
// wrapper.
func clusterTypedError(err error) bool {
	if typedError(err) {
		return true
	}
	msg := err.Error()
	for _, pat := range []string{
		"cluster:",        // session/member typed errors (incl. giving up)
		"catalog:",        // catalog error replies
		"epoch mismatch",  // placement moved under the call
		"not serving at",  // member ahead of or behind the stamped epoch
		"no serving members",
	} {
		if strings.Contains(msg, pat) {
			return true
		}
	}
	return false
}

// clusterAction is one slot of the seeded membership-fault schedule.
type clusterAction int

const (
	actNone clusterAction = iota
	actKill               // crash a member concurrently with the query
	actJoin               // add a member (rebalance + extent transfer)
	actDrain              // gracefully retire a member
	numClusterActions
)

// RunClusterChaos executes one seed: boot a local cluster, import the
// oracle deployment, run the corpus with membership faults interleaved,
// then settle and verify. The returned error is non-nil only on an
// invariant violation (wrong answer, unrecognized error, lost extents,
// failed settle) or a harness failure.
func RunClusterChaos(seed uint64, opts ClusterChaosOptions) (*ClusterChaosResult, error) {
	if opts.Members <= 0 {
		opts.Members = 3
	}
	if opts.R <= 0 {
		opts.R = 2
	}
	if opts.Particles <= 0 {
		opts.Particles = 6000
	}
	if opts.Queries <= 0 {
		opts.Queries = 12
	}
	// The oracle: a plain in-proc deployment holding the same dataset.
	// Ground truth is computed on clean reads before the cluster exists.
	d, queries, truths, err := chaosDeployment(ChaosOptions{
		Servers: 2, Particles: opts.Particles, Queries: opts.Queries,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster chaos seed %d: setup: %w", seed, err)
	}
	defer d.Close()

	l, err := cluster.StartLocal(cluster.LocalOptions{Members: opts.Members, R: opts.R, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("cluster chaos seed %d: start: %w", seed, err)
	}
	defer l.Close()
	// A patient session: kills commit a new view in member/catalog
	// goroutines, so retries pace on wall time instead of spinning
	// through their attempt budget before failover lands.
	s, err := cluster.DialSession(cluster.SessionOptions{
		Net:         l.Net(),
		CatalogAddr: l.CatalogAddr(),
		MaxAttempts: 40,
		RetryWait:   2 * time.Millisecond,
		Sleeper:     telemetry.WallSleep,
		Clock:       telemetry.Wall,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster chaos seed %d: session: %w", seed, err)
	}
	defer s.Close()
	if err := s.Import(d); err != nil {
		return nil, fmt.Errorf("cluster chaos seed %d: import: %w", seed, err)
	}

	rng := rand.New(rand.NewSource(int64(seed)))
	res := &ClusterChaosResult{Errors: make([]error, len(queries))}
	alive := opts.Members
	const maxMembers = 6
	for i, q := range queries {
		// Roll a membership fault for this slot. Kills and drains keep at
		// least two members so a settled cluster (R=2, transfers complete
		// before each commit) never loses the last copy of an extent.
		killed := make(chan struct{})
		fired := actNone
		switch act := clusterAction(rng.Intn(int(numClusterActions))); {
		case act == actKill && alive > 2:
			ids := l.MemberIDs()
			victim := ids[rng.Intn(len(ids))]
			fired = actKill
			res.Kills++
			alive--
			// Mid-query: the crash races the broadcast below.
			go func() {
				_ = l.Crash(victim)
				close(killed)
			}()
		case act == actJoin && alive < maxMembers:
			if _, err := l.AddMember(); err != nil {
				return nil, fmt.Errorf("cluster chaos seed %d: join: %w", seed, err)
			}
			fired = actJoin
			res.Joins++
			alive++
		case act == actDrain && alive > 2:
			ids := l.MemberIDs()
			victim := ids[rng.Intn(len(ids))]
			if err := l.Drain(victim, 10*time.Second); err != nil {
				return nil, fmt.Errorf("cluster chaos seed %d: drain member %d: %w", seed, victim, err)
			}
			fired = actDrain
			res.Drains++
			alive--
		}

		out, err := s.Run(q)
		if err != nil {
			if !clusterTypedError(err) {
				return nil, fmt.Errorf("cluster chaos seed %d: query %d: unrecognized error (invariant: typed or masked): %w", seed, i, err)
			}
			res.Typed++
			res.Errors[i] = err
		} else {
			if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
				return nil, fmt.Errorf("cluster chaos seed %d: query %d: WRONG ANSWER: %d hits, oracle %d", seed, i, out.Sel.NHits, truths[i].NHits)
			}
			res.Masked++
		}

		// Let the fault settle before the next slot: the schedule is then
		// a sequence of single-failure episodes, which is what the R=2
		// no-data-loss argument needs.
		if fired == actKill {
			<-killed
		}
		if fired != actNone {
			if err := l.WaitMembers(alive, 10*time.Second); err != nil {
				return nil, fmt.Errorf("cluster chaos seed %d: settle after query %d: %w", seed, i, err)
			}
		}
	}

	// Settled verification: every member holds every extent placement
	// assigns it, and the whole corpus answers clean — no typed errors
	// allowed once the membership stops churning.
	s.Invalidate()
	if err := s.Verify(d); err != nil {
		return nil, fmt.Errorf("cluster chaos seed %d: settled verify: %w", seed, err)
	}
	for i, q := range queries {
		out, err := s.Run(q)
		if err != nil {
			return nil, fmt.Errorf("cluster chaos seed %d: settled query %d: %w", seed, i, err)
		}
		if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
			return nil, fmt.Errorf("cluster chaos seed %d: settled query %d: WRONG ANSWER", seed, i)
		}
	}
	return res, nil
}
