// The chaos seed corpus: every bug class this PR's harness exposed (or
// guards) is pinned here as an explicit, replayable fault plan. Unlike
// the randomized soak, these plans state their faults directly, so a
// regression names the scenario, not just a seed.
package fault

import (
	"errors"
	"testing"
	"time"

	"pdcquery/internal/client"
)

// runCorpusPlan runs one pinned plan with the standard options.
func runCorpusPlan(t *testing.T, plan Plan, opts ChaosOptions) *ChaosResult {
	t.Helper()
	res, err := RunChaos(plan, opts)
	if err != nil {
		t.Fatalf("plan seed %d: %v", plan.Seed, err)
	}
	return res
}

// TestCorpusCorruptRequest: a garbled (still delimited) query frame must
// be rejected fail-soft by the server — typed error reply, session
// survives, and every other query still returns the oracle answer.
func TestCorpusCorruptRequest(t *testing.T) {
	opts := DefaultChaosOptions()
	plan := Plan{Seed: 1001, Schedule: []Event{
		{Seam: "conn.0.send", Count: 2, Kind: CorruptRequest},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Typed != 1 {
		t.Fatalf("want exactly 1 typed error, got %d (masked %d)", res.Typed, res.Masked)
	}
	if len(res.Fired) != 1 {
		t.Fatalf("want 1 fired fault, got %d", len(res.Fired))
	}
}

// TestCorpusCorruptReply: a truncated reply payload must fail decoding
// at the client as a typed error, never decode into a wrong selection.
func TestCorpusCorruptReply(t *testing.T) {
	opts := DefaultChaosOptions()
	plan := Plan{Seed: 1002, Schedule: []Event{
		{Seam: "conn.1.recv", Count: 3, Kind: CorruptReply},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Typed != 1 {
		t.Fatalf("want exactly 1 typed error, got %d (masked %d)", res.Typed, res.Masked)
	}
}

// TestCorpusDropConnMasked: with the redial path on, a dropped
// connection is recovered transparently — the request is resent on a
// fresh session and every query returns the oracle answer.
func TestCorpusDropConnMasked(t *testing.T) {
	opts := DefaultChaosOptions()
	plan := Plan{Seed: 1003, Schedule: []Event{
		{Seam: "conn.0.send", Count: 2, Kind: DropConn},
		{Seam: "conn.1.recv", Count: 5, Kind: DropConn},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Masked != opts.Queries {
		t.Fatalf("want all %d queries masked by redial, got %d masked / %d typed (errors: %v)",
			opts.Queries, res.Masked, res.Typed, res.Errors)
	}
	if len(res.Fired) != 2 {
		t.Fatalf("want both drops fired, got %d", len(res.Fired))
	}
}

// TestCorpusDropConnNoRedialTyped: the same drop without redial is a
// deterministic typed terminal error (ErrServerDown), not a hang.
func TestCorpusDropConnNoRedialTyped(t *testing.T) {
	opts := DefaultChaosOptions()
	opts.Redial = false
	plan := Plan{Seed: 1004, Schedule: []Event{
		{Seam: "conn.0.send", Count: 2, Kind: DropConn},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Typed < 1 {
		t.Fatalf("want at least 1 typed error, got %d", res.Typed)
	}
	found := false
	for _, err := range res.Errors {
		if err != nil && errors.Is(err, client.ErrServerDown) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want an ErrServerDown in %v", res.Errors)
	}
}

// TestCorpusStorageErr: an injected storage read error must surface as
// a typed server error reply for the query that hit it.
func TestCorpusStorageErr(t *testing.T) {
	opts := DefaultChaosOptions()
	plan := Plan{Seed: 1005, Schedule: []Event{
		{Seam: "store", Count: 1, Kind: StorageErr},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Typed != 1 {
		t.Fatalf("want exactly 1 typed error, got %d (masked %d)", res.Typed, res.Masked)
	}
}

// TestCorpusSlowReadDeadline: a tier slowdown past the query budget
// must blow the virtual deadline deterministically — the delayed reply
// becomes a typed deadline error, not a wrong or late answer.
func TestCorpusSlowReadDeadline(t *testing.T) {
	opts := DefaultChaosOptions()
	opts.Budget = 50 * time.Millisecond
	plan := Plan{Seed: 1006, Schedule: []Event{
		{Seam: "store", Count: 1, Kind: SlowRead, Arg: uint64(time.Hour)},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Typed != 1 {
		t.Fatalf("want exactly 1 typed deadline error, got %d (masked %d, errors %v)", res.Typed, res.Masked, res.Errors)
	}
}

// TestCorpusMultiFault: several faults across seams in one plan — the
// split may vary by plan but the invariant may not.
func TestCorpusMultiFault(t *testing.T) {
	opts := DefaultChaosOptions()
	plan := Plan{Seed: 1007, Schedule: []Event{
		{Seam: "conn.0.send", Count: 3, Kind: CorruptRequest},
		{Seam: "conn.1.send", Count: 5, Kind: DropConn},
		{Seam: "store", Count: 2, Kind: StorageErr},
	}}
	res := runCorpusPlan(t, plan, opts)
	if res.Masked+res.Typed != opts.Queries {
		t.Fatalf("outcome split %d+%d != %d", res.Masked, res.Typed, opts.Queries)
	}
}
