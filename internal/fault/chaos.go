package fault

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/core"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/sched"
	"pdcquery/internal/selection"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/workload"
)

// The chaos harness: run a seeded fault plan against a small deployment
// and enforce the zero-wrong-answers invariant — every query either
// returns exactly the brute-force oracle's selection (the fault was
// masked by recovery, or missed the query) or fails with a recognized,
// typed error. A selection that differs from the oracle is a wrong
// answer and fails the run, naming the seed for replay.

// ChaosOptions sizes the deployment and workload a plan runs against.
type ChaosOptions struct {
	// Servers is the deployment size (default 2).
	Servers int
	// Particles is the VPIC dataset size (default 6000).
	Particles int
	// Queries is the number of queries issued (default 8; the workload
	// cycles through the single-object query set).
	Queries int
	// Budget is the virtual-time deadline stamped on every query
	// (default 250ms): injected tier slowdowns blow it deterministically.
	Budget time.Duration
	// Redial enables the client's reconnection path (default true via
	// DefaultChaosOptions; without it every DropConn is terminal for the
	// query that hits it — still typed, never wrong).
	Redial bool
}

// DefaultChaosOptions returns the standard chaos configuration.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{Servers: 2, Particles: 6000, Queries: 8, Budget: 250 * time.Millisecond, Redial: true}
}

// ChaosResult summarizes one plan's run.
type ChaosResult struct {
	// Masked counts queries that returned the exact oracle selection.
	Masked int
	// Typed counts queries that failed with a recognized typed error.
	Typed int
	// Fired is the fault schedule that actually triggered.
	Fired []Event
	// Errors holds the typed errors, in query order (nil for successes).
	Errors []error
}

// typedError reports whether err belongs to the recognized terminal
// vocabulary: injected faults surfacing directly, client-level typed
// errors, scheduler verdicts, server error replies, and protocol decode
// failures from structurally damaged frames.
func typedError(err error) bool {
	if err == nil {
		return false
	}
	for _, target := range []error{
		ErrInjected,
		client.ErrServerDown, client.ErrTimeout, client.ErrClosed,
		sched.ErrBusy, sched.ErrDeadline, sched.ErrCanceled,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	msg := err.Error()
	for _, pat := range []string{
		"client: server ", // a server error reply (MsgError) — the fail-soft
		//                    path for garbled requests, injected storage
		//                    errors, deadline aborts, and shutdown races
		"fault: injected", // injected error surfacing directly
		"deadline",        // virtual-deadline abort
		"protocol:",       // decode failure of a corrupted reply frame
		"selection:",      // decode failure inside a corrupted selection
		"transport:",      // torn/corrupt frame surfaced by the transport
		"shutting down",   // request raced a server shutdown
		"connection",      // terminal connection error
		"unexpected EOF",  // truncated payload section
		"EOF",             // connection closed mid-conversation
	} {
		if strings.Contains(msg, pat) {
			return true
		}
	}
	return false
}

// chaosDeployment builds, imports, and oracles a small VPIC deployment.
// It returns the deployment (not yet started), the query workload, and
// the per-query oracle selections (computed before any fault seam is
// armed, on uncharged reads).
func chaosDeployment(opts ChaosOptions) (*core.Deployment, []*query.Query, []*selection.Selection, error) {
	d := core.NewDeployment(core.Options{
		Servers:  opts.Servers,
		Strategy: exec.Histogram,
		// Small regions so queries touch several extents per server.
		RegionBytes: 8 << 10,
		Redial:      opts.Redial,
		CallTimeout: 10 * time.Second,
	})
	c := d.CreateContainer("chaos")
	v := workload.GenerateVPIC(opts.Particles, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(opts.Particles)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			return nil, nil, nil, err
		}
		ids[name] = o.ID
	}
	base := workload.SingleObjectQueries(ids["Energy"])
	queries := make([]*query.Query, opts.Queries)
	for i := range queries {
		queries[i] = base[i%len(base)]
	}
	truths := make([]*selection.Selection, len(queries))
	for i, q := range queries {
		truth, err := d.GroundTruth(q)
		if err != nil {
			return nil, nil, nil, err
		}
		truths[i] = truth
	}
	return d, queries, truths, nil
}

// RunChaos executes plan against a fresh deployment and enforces the
// invariant. The returned error is non-nil only on an invariant
// violation (wrong answer, unrecognized error, or a hang would have
// tripped the call timeout) or a harness failure; injected faults that
// surface as typed errors are part of the expected outcome and land in
// ChaosResult.Typed.
func RunChaos(plan Plan, opts ChaosOptions) (*ChaosResult, error) {
	if opts.Servers <= 0 {
		opts.Servers = 2
	}
	if opts.Particles <= 0 {
		opts.Particles = 6000
	}
	if opts.Queries <= 0 {
		opts.Queries = 8
	}
	if opts.Budget <= 0 {
		opts.Budget = 250 * time.Millisecond
	}
	inj := NewInjector(plan)
	reg := telemetry.NewRegistry()
	inj.SetRegistry(reg)
	// The injector gets its own flight recorder so the completeness gate
	// below can audit it: nothing else records here, so the ring holds
	// exactly the EvFault sequence. Capacity is sized from the plan — a
	// scheduled event fires at most once, so len(Schedule) plus headroom
	// can never wrap, no matter how large the plan (a wrapped ring would
	// drop history and fail the audit spuriously).
	rec := telemetry.NewRecorder(2*len(plan.Schedule)+64, nil)
	inj.SetRecorder(rec)

	d, queries, truths, err := chaosDeployment(opts)
	if err != nil {
		return nil, fmt.Errorf("chaos seed %d: setup: %w", plan.Seed, err)
	}
	defer d.Close()
	// Arm the seams only after the oracle pass: ground truth must come
	// from clean reads, and oracle traffic must not advance seam ops.
	d.SetWrapConn(func(srv int, c transport.Conn) transport.Conn {
		return inj.WrapConn(fmt.Sprintf("conn.%d", srv), c)
	})
	d.Store().SetAccessHook(inj.StoreHook("store"))
	if err := d.Start(); err != nil {
		return nil, fmt.Errorf("chaos seed %d: start: %w", plan.Seed, err)
	}
	d.Client().SetQueryBudget(opts.Budget)

	res := &ChaosResult{Errors: make([]error, len(queries))}
	for i, q := range queries {
		out, err := d.Client().Run(q)
		if err != nil {
			if !typedError(err) {
				return nil, fmt.Errorf("chaos seed %d: query %d: unrecognized error (invariant: typed or masked): %w", plan.Seed, i, err)
			}
			res.Typed++
			res.Errors[i] = err
			continue
		}
		if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
			return nil, fmt.Errorf("chaos seed %d: query %d: WRONG ANSWER: %d hits, oracle %d", plan.Seed, i, out.Sel.NHits, truths[i].NHits)
		}
		res.Masked++
	}
	res.Fired = inj.Fired()
	// Observability-completeness gate: the flight recorder is itself
	// oracle-verified. Every fault the injector fired must appear in the
	// ring as an EvFault event, in firing order, carrying the same kind,
	// seam target, and operation count — a recorder that drops or garbles
	// fault events fails the chaos run even when every answer was right.
	if err := auditFaultEvents(res.Fired, rec); err != nil {
		return nil, fmt.Errorf("chaos seed %d: %w", plan.Seed, err)
	}
	return res, nil
}

// auditFaultEvents checks the flight-recorder ring against the
// injector's fired list (the completeness half of the chaos invariant).
func auditFaultEvents(fired []Event, rec *telemetry.Recorder) error {
	events, total := rec.SnapshotTotal()
	if total > uint64(len(events)) {
		// The ring wrapped: history was overwritten, so a count mismatch
		// below would be a sizing bug in the harness, not a recorder that
		// dropped events. Name the real problem.
		return fmt.Errorf("audit ring wrapped: %d events recorded into a %d-slot ring; size the recorder from the plan", total, rec.Cap())
	}
	var evs []telemetry.Event
	for _, e := range events {
		if e.Kind == telemetry.EvFault {
			evs = append(evs, e)
		}
	}
	if len(evs) != len(fired) {
		return fmt.Errorf("observability gap: %d faults fired but %d flight-recorder events", len(fired), len(evs))
	}
	for i, f := range fired {
		e := evs[i]
		srv, dir := seamTarget(f.Seam)
		if e.Code != uint8(f.Kind) || e.Srv != srv || e.B != dir || e.A != int64(f.Count) {
			return fmt.Errorf("observability mismatch at fault %d: fired %s at %s op %d, recorded code=%d srv=%d dir=%d op=%d",
				i, f.Kind, f.Seam, f.Count, e.Code, e.Srv, e.B, e.A)
		}
	}
	return nil
}

// RunCrashRecovery exercises the persistence half of the fault story:
// a deployment serves a prefix of the workload, checkpoints (metadata +
// replicas + every extent, core.SaveCheckpoint), then "crashes". A
// second deployment restores from the checkpoint alone and must serve
// the full workload with byte-identical selections. seed only labels
// errors (the scenario itself is fully deterministic).
func RunCrashRecovery(seed uint64, opts ChaosOptions) error {
	if opts.Servers <= 0 {
		opts.Servers = 2
	}
	if opts.Particles <= 0 {
		opts.Particles = 6000
	}
	if opts.Queries <= 0 {
		opts.Queries = 8
	}
	d, queries, _, err := chaosDeployment(opts)
	if err != nil {
		return fmt.Errorf("crash seed %d: setup: %w", seed, err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		return fmt.Errorf("crash seed %d: start: %w", seed, err)
	}
	baseline := make([][]byte, len(queries))
	for i, q := range queries {
		out, err := d.Client().Run(q)
		if err != nil {
			return fmt.Errorf("crash seed %d: baseline query %d: %w", seed, i, err)
		}
		baseline[i] = out.Sel.Encode()
	}
	// Checkpoint mid-service (after the first half of the workload ran:
	// caches are warm, stashes populated — none of which may leak into
	// the checkpoint, which holds only the persistent state).
	var ckpt bytes.Buffer
	if err := d.SaveCheckpoint(&ckpt); err != nil {
		return fmt.Errorf("crash seed %d: checkpoint: %w", seed, err)
	}
	// Crash: the first deployment is gone. Recover a fresh one from the
	// checkpoint bytes alone and re-serve everything.
	d2, err := core.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), core.Options{
		Servers: opts.Servers, Strategy: exec.Histogram,
	})
	if err != nil {
		return fmt.Errorf("crash seed %d: restore: %w", seed, err)
	}
	defer d2.Close()
	if err := d2.Start(); err != nil {
		return fmt.Errorf("crash seed %d: restart: %w", seed, err)
	}
	for i, q := range queries {
		out, err := d2.Client().Run(q)
		if err != nil {
			return fmt.Errorf("crash seed %d: recovered query %d: %w", seed, i, err)
		}
		if !bytes.Equal(out.Sel.Encode(), baseline[i]) {
			return fmt.Errorf("crash seed %d: query %d: selection diverged after checkpoint recovery", seed, i)
		}
	}
	return nil
}
