package fault

import (
	"flag"
	"testing"
	"time"
)

// chaosSeeds is the soak width: `make chaos` runs the suite with
// -chaos-seeds 64 (or more). The default keeps `go test ./...` fast
// while still exercising every fault kind.
var chaosSeeds = flag.Int("chaos-seeds", 8, "number of seeded fault schedules TestChaosSoak runs")

// TestChaosSoak is the randomized soak: for each seed, derive a fault
// plan, run it against a fresh deployment, and enforce zero wrong
// answers — every injected fault is masked by recovery or surfaces as a
// typed error. A failure names the seed; pin it in corpus_test.go.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	opts := DefaultChaosOptions()
	for seed := uint64(1); seed <= uint64(*chaosSeeds); seed++ {
		plan := RandomPlan(seed, PlanConfig{Servers: opts.Servers, Events: 5, MaxOp: 12})
		res, err := RunChaos(plan, opts)
		if err != nil {
			t.Fatalf("seed %d: %v (replay: RandomPlan(%d, ...))", seed, err, seed)
		}
		if res.Masked+res.Typed != opts.Queries {
			t.Fatalf("seed %d: %d masked + %d typed != %d queries", seed, res.Masked, res.Typed, opts.Queries)
		}
		t.Logf("seed %d: %d masked, %d typed, %d faults fired", seed, res.Masked, res.Typed, len(res.Fired))
	}
}

// TestChaosCrashRecovery runs the checkpoint/restore half of the soak:
// a deployment serves, checkpoints, "crashes", and a restore from the
// checkpoint bytes must re-serve byte-identical selections.
func TestChaosCrashRecovery(t *testing.T) {
	if err := RunCrashRecovery(1, DefaultChaosOptions()); err != nil {
		t.Fatal(err)
	}
}

// TestChaosReplayDeterminism: the same plan fires the same faults and
// produces the same outcome split — the property that makes a failing
// seed a usable replay.
func TestChaosReplayDeterminism(t *testing.T) {
	opts := DefaultChaosOptions()
	opts.Queries = 6
	plan := RandomPlan(7, PlanConfig{Servers: opts.Servers, Events: 3})
	a, err := RunChaos(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Masked != b.Masked || a.Typed != b.Typed {
		t.Fatalf("replay diverged: %d/%d vs %d/%d", a.Masked, a.Typed, b.Masked, b.Typed)
	}
	if len(a.Fired) != len(b.Fired) {
		t.Fatalf("replay fired %d faults, then %d", len(a.Fired), len(b.Fired))
	}
}

// TestRandomPlanDeterministic: same seed, same plan — byte for byte.
func TestRandomPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{Servers: 4, Events: 5, SlowNs: uint64(time.Second)}
	a := RandomPlan(99, cfg)
	b := RandomPlan(99, cfg)
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatal("schedule lengths differ")
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Schedule[i], b.Schedule[i])
		}
	}
}
