// Package fault is a seeded, deterministic fault-injection subsystem for
// the PDC deployment's two I/O seams: the client↔server transport
// (drop a connection, corrupt a delimited frame, tear a frame mid-write)
// and the simio storage substrate (read errors, tier slowdowns that blow
// virtual-time deadlines).
//
// Faults are driven by a Plan — a seed plus an explicit schedule of
// events, each pinned to the Nth operation at a named seam — so any
// failing run replays byte-for-byte: the same plan against the same
// workload injects the same faults at the same points. RandomPlan
// derives a schedule deterministically from a seed; pinned plans from
// failing seeds live in corpus_test.go as replayable regressions.
//
// The invariant the chaos harness enforces on top: an injected fault is
// either masked by recovery (redial + resend, checkpoint restart) or
// surfaces as a typed error — never a wrong answer.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdcquery/internal/simio"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
)

// ErrInjected marks every error originating from the injector, so tests
// and the chaos harness can distinguish injected failures from organic
// bugs with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// DropConn closes the connection at the scheduled operation: a send
	// fails or a pending receive unblocks with an error, modeling a
	// server crash or network partition. Recovery is the client's redial
	// path; without it the call fails with a typed terminal error.
	DropConn Kind = iota
	// CorruptRequest garbles the payload of a client→server frame. The
	// frame stays delimited (the stream keeps its sync), so the server's
	// fail-soft decode path answers with an error frame: the query fails
	// typed, the session survives.
	CorruptRequest
	// CorruptReply truncates the payload of a server→client frame. The
	// client's decoder rejects it and the call errors. (The corruption
	// model is structural damage, not silent bit rot: the frame format
	// carries no checksum, so an undetectable flip is out of scope.)
	CorruptReply
	// StorageErr fails the scheduled storage read with ErrInjected: the
	// server's evaluation errors and the client receives a typed error
	// reply.
	StorageErr
	// SlowRead charges Arg extra nanoseconds of virtual storage time on
	// the scheduled read — a tier slowdown. Queries carrying a virtual
	// deadline blow it deterministically and fail with the scheduler's
	// deadline error; undeadlined queries just get slower.
	SlowRead
	numKinds
)

// String names the kind for telemetry counters and logs.
func (k Kind) String() string {
	switch k {
	case DropConn:
		return "dropconn"
	case CorruptRequest:
		return "corrupt-request"
	case CorruptReply:
		return "corrupt-reply"
	case StorageErr:
		return "storage-err"
	case SlowRead:
		return "slow-read"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event schedules one fault: Kind fires on the Count-th operation
// (1-based) at seam Seam. Seams are named by the wrapping call sites:
// WrapConn(seam) counts sends at seam+".send" and receives at
// seam+".recv"; StoreHook(seam) counts storage reads at seam.
type Event struct {
	Seam  string
	Count uint64
	Kind  Kind
	// Arg is kind-specific: for SlowRead, the injected delay in
	// nanoseconds. Unused otherwise.
	Arg uint64
}

// Plan is a reproducible fault schedule. Seed identifies the plan (and,
// for RandomPlan, fully determines the schedule); Schedule is explicit
// so pinned regressions can state their faults directly.
type Plan struct {
	Seed     uint64
	Schedule []Event
}

// Injector applies a Plan: it counts operations per seam and fires the
// scheduled events. Safe for concurrent use; operation counting within
// one seam is strictly ordered, so a seam driven by a single goroutine
// (a connection direction, a serial evaluation) replays exactly.
type Injector struct {
	mu    sync.Mutex
	plan  Plan
	ops   map[string]uint64
	fired []Event
	reg   *telemetry.Registry
	rec   *telemetry.Recorder
}

// NewInjector returns an injector for plan with no faults fired yet.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, ops: make(map[string]uint64)}
}

// SetRegistry installs a telemetry registry; every fired fault bumps
// "fault.injected" and "fault.injected.<kind>".
func (in *Injector) SetRegistry(reg *telemetry.Registry) {
	in.mu.Lock()
	in.reg = reg
	in.mu.Unlock()
}

// SetRecorder installs a flight recorder; every fired fault records an
// EvFault event (Code=kind, Srv=server rank or -1 for the storage seam,
// A=operation count at the seam, B=seam direction). The chaos harness's
// observability-completeness gate audits these events against Fired().
func (in *Injector) SetRecorder(rec *telemetry.Recorder) {
	in.mu.Lock()
	in.rec = rec
	in.mu.Unlock()
}

// seamTarget decomposes a seam name into the recorder's (Srv, direction)
// pair: "conn.<rank>.send"/".recv" map to the rank and transport
// direction, anything else is the shared storage seam.
func seamTarget(seam string) (srv int32, dir int64) {
	if rest, ok := strings.CutPrefix(seam, "conn."); ok {
		if num, ok := strings.CutSuffix(rest, ".send"); ok {
			if v, err := strconv.Atoi(num); err == nil {
				return int32(v), telemetry.SeamSend
			}
		}
		if num, ok := strings.CutSuffix(rest, ".recv"); ok {
			if v, err := strconv.Atoi(num); err == nil {
				return int32(v), telemetry.SeamRecv
			}
		}
	}
	return -1, telemetry.SeamStore
}

// Plan returns the injector's plan (for error messages naming the seed).
func (in *Injector) Plan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plan
}

// Fired returns the events that have fired so far, in firing order.
func (in *Injector) Fired() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.fired...)
}

// step advances seam's operation counter and returns the events
// scheduled for this operation (usually none).
func (in *Injector) step(seam string) []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops[seam]++
	n := in.ops[seam]
	var hits []Event
	for _, ev := range in.plan.Schedule {
		if ev.Seam == seam && ev.Count == n {
			hits = append(hits, ev)
			in.fired = append(in.fired, ev)
			if in.reg != nil {
				in.reg.Add("fault.injected", 1)
				in.reg.Add("fault.injected."+ev.Kind.String(), 1)
			}
			srv, dir := seamTarget(ev.Seam)
			in.rec.Record(telemetry.EvFault, uint8(ev.Kind), srv, 0, int64(n), dir)
		}
	}
	return hits
}

// injectedErr builds the typed error for a fired event.
func injectedErr(ev Event) error {
	return fmt.Errorf("%w: %s at %s op %d", ErrInjected, ev.Kind, ev.Seam, ev.Count)
}

// --- transport seam ---------------------------------------------------------

// faultConn wraps a client-side transport connection: Send carries
// client→server frames (seam+".send"), Recv server→client frames
// (seam+".recv").
type faultConn struct {
	inner transport.Conn
	inj   *Injector
	seam  string
}

// WrapConn wraps a connection with the injector under the given seam
// name (deployments use "conn.<rank>"). The wrapper is transparent until
// a scheduled event fires.
func (in *Injector) WrapConn(seam string, c transport.Conn) transport.Conn {
	return &faultConn{inner: c, inj: in, seam: seam}
}

func (c *faultConn) Send(m transport.Message) error {
	for _, ev := range c.inj.step(c.seam + ".send") {
		switch ev.Kind {
		case DropConn:
			// Close the underlying connection so the peer and the reader
			// observe the loss too — a drop must never strand a blocked
			// receive. The injected error is the one callers must see.
			_ = c.inner.Close()
			return injectedErr(ev)
		case CorruptRequest:
			p := make([]byte, len(m.Payload))
			for i, b := range m.Payload {
				p[i] = b ^ 0xA5
			}
			m.Payload = p
		}
	}
	return c.inner.Send(m)
}

func (c *faultConn) Recv() (transport.Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return m, err
	}
	for _, ev := range c.inj.step(c.seam + ".recv") {
		switch ev.Kind {
		case DropConn:
			_ = c.inner.Close()
			return transport.Message{}, injectedErr(ev)
		case CorruptReply:
			m.Payload = m.Payload[:len(m.Payload)/2]
		}
	}
	return m, nil
}

func (c *faultConn) Close() error { return c.inner.Close() }

// --- storage seam -----------------------------------------------------------

// StoreHook returns a simio.AccessHook that injects StorageErr and
// SlowRead events scheduled at seam (deployments use "store", shared by
// all servers over the common substrate: reads are counted in arrival
// order, which is deterministic for serial evaluation).
func (in *Injector) StoreHook(seam string) simio.AccessHook {
	return func(op, key string, tier simio.Tier, bytes int64) (time.Duration, error) {
		var extra time.Duration
		for _, ev := range in.step(seam) {
			switch ev.Kind {
			case SlowRead:
				extra += time.Duration(ev.Arg)
			case StorageErr:
				return extra, injectedErr(ev)
			}
		}
		return extra, nil
	}
}

// --- plan generation --------------------------------------------------------

// PlanConfig bounds RandomPlan's schedule generation.
type PlanConfig struct {
	// Servers is the deployment size (seams conn.0 … conn.N-1).
	Servers int
	// Events is the number of faults to schedule (default 3).
	Events int
	// MaxOp bounds the operation index events attach to (default 24).
	MaxOp uint64
	// SlowNs is the SlowRead delay in nanoseconds (default 1s: far past
	// any query budget the harness sets).
	SlowNs uint64
	// StoreSeam names the storage seam (default "store").
	StoreSeam string
}

// RandomPlan derives a fault schedule deterministically from seed: the
// same seed and config always produce the same plan. Kinds, seams, and
// operation indexes are drawn from a seeded PRNG.
func RandomPlan(seed uint64, cfg PlanConfig) Plan {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Events <= 0 {
		cfg.Events = 3
	}
	if cfg.MaxOp == 0 {
		cfg.MaxOp = 24
	}
	if cfg.SlowNs == 0 {
		cfg.SlowNs = uint64(time.Second)
	}
	if cfg.StoreSeam == "" {
		cfg.StoreSeam = "store"
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	p := Plan{Seed: seed}
	for i := 0; i < cfg.Events; i++ {
		kind := Kind(rng.Intn(int(numKinds)))
		ev := Event{Kind: kind, Count: 1 + uint64(rng.Int63n(int64(cfg.MaxOp)))}
		srv := rng.Intn(cfg.Servers)
		switch kind {
		case DropConn:
			dir := ".send"
			if rng.Intn(2) == 1 {
				dir = ".recv"
			}
			ev.Seam = fmt.Sprintf("conn.%d%s", srv, dir)
		case CorruptRequest:
			ev.Seam = fmt.Sprintf("conn.%d.send", srv)
		case CorruptReply:
			ev.Seam = fmt.Sprintf("conn.%d.recv", srv)
		case StorageErr:
			ev.Seam = cfg.StoreSeam
		case SlowRead:
			ev.Seam = cfg.StoreSeam
			ev.Arg = cfg.SlowNs
		}
		p.Schedule = append(p.Schedule, ev)
	}
	return p
}
