package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/vclock"
)

func TestPoolMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 200
		counts := make([]int, n)
		err := p.Map(nil, n, func(i int) error {
			counts[i]++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: Map: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestPoolNilAndSmallAreSerial(t *testing.T) {
	if p := NewPool(1); p != nil {
		t.Fatalf("NewPool(1) = %v, want nil (serial marker)", p)
	}
	if p := NewPool(0); p != nil {
		t.Fatalf("NewPool(0) = %v, want nil", p)
	}
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	// Serial execution preserves index order.
	var order []int
	if err := p.Map(nil, 5, func(i int) error { order = append(order, i); return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Map order = %v", order)
		}
	}
}

func TestPoolMapErrorIsLowestIndex(t *testing.T) {
	p := NewPool(8)
	wantErr := errors.New("boom-3")
	err := p.Map(nil, 64, func(i int) error {
		if i == 3 || i == 40 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("Map error = %v, want %v (lowest index)", err, wantErr)
	}
}

func TestPoolMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := NewToken(ctx, nil, 0)
	p := NewPool(2)
	var mu sync.Mutex
	ran := 0
	err := p.Map(tok, 1000, func(i int) error {
		mu.Lock()
		ran++
		if ran == 10 {
			cancel()
		}
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Map after cancel: err = %v, want ErrCanceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1000 {
		t.Fatalf("cancellation did not stop the fan-out: %d tasks ran", ran)
	}
}

func TestTokenVirtualDeadline(t *testing.T) {
	acct := vclock.NewAccount()
	tok := NewToken(nil, acct, 100*time.Nanosecond)
	if err := tok.Err(); err != nil {
		t.Fatalf("fresh token: %v", err)
	}
	acct.Charge(vclock.Compute, 101*time.Nanosecond)
	if err := tok.Err(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("over budget: err = %v, want ErrDeadline", err)
	}
	var nilTok *Token
	if err := nilTok.Err(); err != nil {
		t.Fatalf("nil token must never cancel: %v", err)
	}
	if nilTok.Context() == nil {
		t.Fatal("nil token Context() must not be nil")
	}
}

func TestFairQueueAdmissionControl(t *testing.T) {
	q := NewFairQueue[int](2, 1)
	// Push reports the backlog from inside its critical section: the
	// post-push length on success, the full depth on rejection.
	if n, err := q.Push(7, 1, 10); err != nil || n != 1 {
		t.Fatalf("first push: n=%d err=%v, want 1, nil", n, err)
	}
	if n, err := q.Push(7, 1, 11); err != nil || n != 2 {
		t.Fatalf("second push: n=%d err=%v, want 2, nil", n, err)
	}
	if n, err := q.Push(7, 1, 12); !errors.Is(err, ErrBusy) || n != 2 {
		t.Fatalf("third push: n=%d err=%v, want 2, ErrBusy", n, err)
	}
	// A different session still gets in.
	if n, err := q.Push(8, 1, 20); err != nil || n != 1 {
		t.Fatalf("other session rejected: n=%d err=%v", n, err)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := q.SessionLen(7); got != 2 {
		t.Fatalf("SessionLen(7) = %d, want 2", got)
	}
}

func TestFairQueueInterleavesSessions(t *testing.T) {
	q := NewFairQueue[string](16, 1)
	// Session 1 floods first; session 2 arrives after.
	for i := 0; i < 4; i++ {
		if _, err := q.Push(1, 1, fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := q.Push(2, 1, fmt.Sprintf("b%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 8; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, v)
	}
	// DRR with unit costs alternates sessions instead of draining the
	// flooder first, and preserves FIFO order within each session.
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DRR order = %v, want %v", got, want)
		}
	}
}

func TestFairQueueDeficitWeighting(t *testing.T) {
	q := NewFairQueue[string](16, 2)
	// Session 1's requests cost 4 units each; session 2's cost 1. With a
	// quantum of 2, session 2 gets ~4 requests served per expensive one.
	for i := 0; i < 2; i++ {
		if _, err := q.Push(1, 4, fmt.Sprintf("big%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := q.Push(2, 1, fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, v)
	}
	// The first big item needs two visits (deficit 2, then 4) before it
	// is served; cheap requests flow meanwhile.
	bigFirst := -1
	for i, v := range got {
		if v == "big0" {
			bigFirst = i
			break
		}
	}
	if bigFirst < 2 {
		t.Fatalf("expensive item served at position %d (%v); DRR should interleave cheap items first", bigFirst, got)
	}
	// Everything is served eventually — no starvation either way.
	if len(got) != 10 {
		t.Fatalf("served %d items, want 10", len(got))
	}
}

func TestFairQueueDropAndClose(t *testing.T) {
	q := NewFairQueue[int](8, 1)
	for i := 0; i < 3; i++ {
		if _, err := q.Push(1, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Push(2, 1, 99); err != nil {
		t.Fatal(err)
	}
	dropped := q.Drop(1)
	if len(dropped) != 3 {
		t.Fatalf("Drop(1) = %v, want 3 items", dropped)
	}
	if got := q.Len(); got != 1 {
		t.Fatalf("Len after drop = %d, want 1", got)
	}
	v, ok := q.Pop()
	if !ok || v != 99 {
		t.Fatalf("Pop = %d,%v, want 99,true", v, ok)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := q.Pop(); ok {
			t.Error("Pop on closed empty queue returned ok")
		}
	}()
	q.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked Pop")
	}
	if _, err := q.Push(1, 1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after close: err = %v, want ErrClosed", err)
	}
}

func TestFairQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewFairQueue[int](64, 1)
	const sessions, perSession = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				for {
					if _, err := q.Push(uint64(s), 1, s*perSession+i); err == nil {
						break
					} else if errors.Is(err, ErrClosed) {
						return
					}
					// Busy: yield and retry.
					time.Sleep(time.Microsecond)
				}
			}
		}(s)
	}
	got := make(chan int, sessions*perSession)
	var cg sync.WaitGroup
	for w := 0; w < 4; w++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				got <- v
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	close(got)
	seen := make(map[int]bool)
	for v := range got {
		if seen[v] {
			t.Fatalf("item %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != sessions*perSession {
		t.Fatalf("delivered %d items, want %d", len(seen), sessions*perSession)
	}
}
