package sched

import "sync"

// fqSession is one session's slice of the fair queue: a FIFO backlog
// plus its deficit counter. Sessions exist only while they have queued
// items (an emptied session's deficit resets, per classic DRR).
type fqSession[T any] struct {
	key   uint64
	items []T
	costs []int64
	// deficit is the session's accumulated service allowance; charged
	// marks that the current visit already received its quantum.
	deficit int64
	charged bool
}

// FairQueue is a deficit-round-robin fair queue with per-session
// admission control. Producers Push under a session key; consumers Pop.
// Each session's backlog is bounded by depth — Push returns ErrBusy
// instead of growing it, which is the backpressure signal the server
// converts into a MsgBusy reply. Service order interleaves sessions by
// DRR: every ring visit grants the session `quantum` cost units, and a
// session is served while its deficit covers the head item's cost, so
// a session of expensive requests cannot starve one of cheap requests.
type FairQueue[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	depth int
	// quantum is the per-visit service allowance in the same units as
	// Push costs (1 and 1 gives plain round robin over requests).
	quantum  int64
	sessions map[uint64]*fqSession[T]
	ring     []*fqSession[T] // sessions with queued items, visit order
	cursor   int
	size     int
	hiwater  int // max total backlog ever observed (monotonic)
	closed   bool
}

// NewFairQueue builds a queue with the given per-session depth bound
// and DRR quantum (both floored at 1).
func NewFairQueue[T any](depth int, quantum int64) *FairQueue[T] {
	if depth < 1 {
		depth = 1
	}
	if quantum < 1 {
		quantum = 1
	}
	q := &FairQueue[T]{depth: depth, quantum: quantum, sessions: make(map[uint64]*fqSession[T])}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v for the session, with a relative service cost (floored
// at 1; use 1 for uniform requests). It returns ErrBusy when the
// session's backlog is at depth, and ErrClosed after Close. The returned
// length is the session's backlog observed inside the critical section —
// after the push on success, the full depth on ErrBusy — so callers can
// report admission state without a racy re-read (a dispatcher may pop
// the item the instant the lock is released).
func (q *FairQueue[T]) Push(session uint64, cost int64, v T) (int, error) {
	if cost < 1 {
		cost = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	s := q.sessions[session]
	if s == nil {
		s = &fqSession[T]{key: session}
		q.sessions[session] = s
		q.ring = append(q.ring, s)
	}
	if len(s.items) >= q.depth {
		return len(s.items), ErrBusy
	}
	s.items = append(s.items, v)
	s.costs = append(s.costs, cost)
	q.size++
	if q.size > q.hiwater {
		q.hiwater = q.size
	}
	q.cond.Signal()
	return len(s.items), nil
}

// Pop blocks until an item is available and returns the next item in
// DRR order. ok is false once the queue is closed and drained.
func (q *FairQueue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return v, false
		}
		q.cond.Wait()
	}
	for {
		s := q.ring[q.cursor]
		if !s.charged {
			s.deficit += q.quantum
			s.charged = true
		}
		if s.deficit >= s.costs[0] {
			v = s.items[0]
			s.deficit -= s.costs[0]
			s.items = s.items[1:]
			s.costs = s.costs[1:]
			q.size--
			if len(s.items) == 0 {
				q.removeLocked(s)
			}
			return v, true
		}
		// Allowance spent: the visit ends, the next session is charged.
		s.charged = false
		q.cursor = (q.cursor + 1) % len(q.ring)
	}
}

// removeLocked drops an emptied session from the ring and resets its
// DRR state (q.mu held).
func (q *FairQueue[T]) removeLocked(s *fqSession[T]) {
	delete(q.sessions, s.key)
	for i, rs := range q.ring {
		if rs == s {
			q.ring = append(q.ring[:i], q.ring[i+1:]...)
			if q.cursor > i || q.cursor >= len(q.ring) {
				q.cursor--
			}
			if q.cursor < 0 {
				q.cursor = 0
			}
			break
		}
	}
}

// Drop discards a session's queued items (its connection went away) and
// returns how many were dropped. The caller owns any per-item cleanup.
func (q *FairQueue[T]) Drop(session uint64) []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.sessions[session]
	if s == nil {
		return nil
	}
	dropped := s.items
	q.size -= len(s.items)
	s.items = nil
	s.costs = nil
	q.removeLocked(s)
	//lint:ignore aliasguard ownership transfer: s.items is nil'd above, the queue keeps no alias
	return dropped
}

// Len returns the total queued item count.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// HighWater returns the maximum total backlog the queue has ever held —
// the admission-control headroom gauge (sched.queue.hiwater).
func (q *FairQueue[T]) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hiwater
}

// SessionLen returns one session's backlog length.
func (q *FairQueue[T]) SessionLen(session uint64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if s := q.sessions[session]; s != nil {
		return len(s.items)
	}
	return 0
}

// Close wakes all blocked Pops; queued items may still be drained
// (Pop keeps returning items until empty, then reports !ok).
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
