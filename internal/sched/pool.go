package sched

import "sync"

// Pool bounds the number of evaluation tasks in flight. One Pool is
// shared by every query a server executes, so Workers caps the server's
// total region-task parallelism, not each query's: a fan-out of 200
// regions against a 4-worker pool runs 4 tasks at a time.
//
// Pool carries no per-query state; determinism is the caller's
// contract: tasks write only to their own index's slot and the caller
// merges slots in index order (see exec's region merge).
type Pool struct {
	workers int
	// sem is the global task-slot semaphore; every running task holds
	// one slot, so concurrent Maps from different queries share the
	// worker budget instead of multiplying it.
	sem chan struct{}
}

// NewPool returns a pool with the given worker count. Counts below 2
// return nil: a nil *Pool is valid everywhere and means "run serially",
// which keeps the single-worker configuration byte-identical to the
// pre-scheduler code path by construction.
func NewPool(workers int) *Pool {
	if workers < 2 {
		return nil
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the parallelism bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Map runs fn(0..n-1), each call at most once, and returns the
// lowest-index error (or the token's error when cancellation preempted
// remaining tasks). On a nil pool, a single-task fan-out, or a
// single-worker pool it runs serially in index order on the calling
// goroutine. Otherwise tasks are claimed from an ordered cursor by up
// to min(Workers, n) goroutines, each holding a global semaphore slot
// while running — but which goroutine runs which index is deliberately
// unobservable: fn must confine its effects to per-index state.
//
// Cancellation: tok.Err() is polled before each task; once it reports
// an error, no new task starts (running tasks finish — fn should poll
// the token itself at finer granularity if its tasks are long).
func (p *Pool) Map(tok *Token, n int, fn func(i int) error) error {
	if n <= 0 {
		return tok.Err()
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := tok.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return tok.Err()
	}

	errs := make([]error, n)
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tok.Err() != nil {
					return
				}
				i := claim()
				if i < 0 {
					return
				}
				p.sem <- struct{}{}
				errs[i] = fn(i)
				<-p.sem
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: the lowest-index failure wins, so
	// the reported error does not depend on goroutine interleaving.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return tok.Err()
}
