// Package sched is the concurrent query scheduler: the subsystem that
// converts the one-request-at-a-time assumption of the original server
// loop into region-parallel, multi-session execution while preserving
// the repo's determinism contract.
//
// Three pieces compose it:
//
//   - Token: an end-to-end cancellation handle carrying a Go context
//     (cancelled when the issuing session disconnects or the server
//     shuts down) and an optional virtual-time deadline — a budget in
//     virtual nanoseconds checked against a *vclock.Account, so
//     deadline enforcement is deterministic and never reads the wall
//     clock.
//   - Pool: a bounded worker pool for region-level evaluation tasks.
//     Map fans a task function out over n indices with at most
//     Workers tasks in flight across all concurrent queries; callers
//     merge per-index results in index order, so results are
//     byte-identical regardless of goroutine interleaving.
//   - FairQueue: a deficit-round-robin fair queue with per-session
//     admission control. Push rejects with ErrBusy when a session's
//     backlog is full (the server answers MsgBusy with a retry-after
//     hint instead of buffering without bound).
//
// The package deliberately has no time.Now, no rand, and no unbounded
// buffering: all waiting is channel/cond-based, all deadlines are
// virtual, and every queue is depth-bounded.
package sched

import (
	"context"
	"errors"
	"time"

	"pdcquery/internal/vclock"
)

// Sentinel errors of the scheduler.
var (
	// ErrBusy reports an admission rejection: the session's queue slice
	// is full. Clients back off and retry (MsgBusy carries the hint).
	ErrBusy = errors.New("sched: queue full")
	// ErrCanceled reports that the token's context ended (session
	// disconnect or server shutdown).
	ErrCanceled = errors.New("sched: canceled")
	// ErrDeadline reports that a request exceeded its virtual-time
	// budget (the wire-level deadline field).
	ErrDeadline = errors.New("sched: virtual deadline exceeded")
	// ErrClosed reports an operation on a closed queue.
	ErrClosed = errors.New("sched: queue closed")
)

// Token is the cancellation handle threaded from the server's session
// loop through the evaluation engine into region tasks. A nil *Token is
// valid and never cancels — untraced library callers (tests, offline
// tools) pass nil and pay nothing.
type Token struct {
	ctx    context.Context
	acct   *vclock.Account
	budget time.Duration
}

// NewToken builds a token. ctx may be nil (never context-cancelled);
// budget <= 0 disables the virtual deadline; acct is the account whose
// accumulated cost the budget is checked against (the per-request
// account, so concurrent requests cannot charge each other's budgets).
func NewToken(ctx context.Context, acct *vclock.Account, budget time.Duration) *Token {
	return &Token{ctx: ctx, acct: acct, budget: budget}
}

// Context returns the token's context (context.Background for nil
// tokens or tokens without one).
func (t *Token) Context() context.Context {
	if t == nil || t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// Err reports why the work should stop: ErrCanceled once the context
// ends, ErrDeadline once the account's virtual cost exceeds the budget,
// nil while the work may continue. Checking is cheap enough for region
// granularity (one channel poll plus one mutex-guarded read).
func (t *Token) Err() error {
	if t == nil {
		return nil
	}
	if t.ctx != nil {
		select {
		case <-t.ctx.Done():
			return ErrCanceled
		default:
		}
	}
	if t.budget > 0 && t.acct != nil && t.acct.Cost().Total() > t.budget {
		return ErrDeadline
	}
	return nil
}

// Budget returns the virtual deadline (0 when none).
func (t *Token) Budget() time.Duration {
	if t == nil {
		return 0
	}
	return t.budget
}
