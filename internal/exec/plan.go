package exec

import (
	"pdcquery/internal/object"
	"pdcquery/internal/query"
)

// Exported mirrors of the engine's compute-cost constants, so the
// cost-based planner models exactly what the engine charges.
const (
	// ScanNsPerElem is the per-element cost of a first-condition scan.
	ScanNsPerElem = scanNsPerElem
	// ProbeNsPerElem is the per-element cost of probing a later
	// condition at already-selected locations.
	ProbeNsPerElem = probeNsPerElem
	// CandNsPerElem is the per-element cost of a boundary-bin candidate
	// check on the bitmap-index path.
	CandNsPerElem = candNsPerElem
)

// RegionChoice is a planner directive for how one region resolves a
// conjunct.
type RegionChoice uint8

// Region choices. ChoiceAuto defers to the engine's strategy default.
const (
	ChoiceAuto RegionChoice = iota
	// ChoiceScan forces the scan+probe path.
	ChoiceScan
	// ChoiceProbe forces the bitmap-index path (regions without an
	// index degrade to scan semantics inside the index evaluator, so a
	// stale choice stays correct).
	ChoiceProbe
)

// ConjunctPlan fixes one conjunct's evaluation: the condition order
// and the per-region resolution choice. Both are advisory in the sense
// that a malformed plan (wrong objects, missing entries) falls back to
// the engine's own decision — the plan can change cost, never results.
type ConjunctPlan struct {
	// Order is the condition evaluation order (must cover exactly the
	// conjunct's objects to take effect).
	Order []object.ID
	// Sorted selects the sorted-replica path for Order[0] (taken only
	// when the engine actually has the replica).
	Sorted bool
	// Regions maps region index → choice; absent regions are ChoiceAuto.
	Regions map[int]RegionChoice
}

// choice returns the plan's directive for region r.
func (cp *ConjunctPlan) choice(r int) RegionChoice {
	if cp == nil || cp.Regions == nil {
		return ChoiceAuto
	}
	return cp.Regions[r]
}

// planOrder validates the plan's order against the conjunct: it must
// list exactly the conjunct's objects (each once). Returns nil when it
// does not, so the engine falls back to its own ordering.
func (cp *ConjunctPlan) planOrder(c query.Conjunct) []object.ID {
	if cp == nil || len(cp.Order) != len(c) {
		return nil
	}
	// Allocation-free duplicate check: conjuncts hold a handful of
	// conditions, so the quadratic scan beats a map on the hot path.
	for i, id := range cp.Order {
		if _, ok := c[id]; !ok {
			return nil
		}
		for j := 0; j < i; j++ {
			if cp.Order[j] == id {
				return nil
			}
		}
	}
	return cp.Order
}

// QueryPlan is a cost-based planner's output: one ConjunctPlan per
// normalized conjunct, in query.Normalize order. The engine honors it
// when set (Engine.Plan); every directive degrades safely, so results
// are byte-identical with and without a plan.
type QueryPlan struct {
	Conjuncts []ConjunctPlan
}

// conjunct returns the plan for conjunct i (nil when absent).
func (p *QueryPlan) conjunct(i int) *ConjunctPlan {
	if p == nil || i >= len(p.Conjuncts) {
		return nil
	}
	return &p.Conjuncts[i]
}
