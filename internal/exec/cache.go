package exec

import (
	"container/list"
	"sync"

	"pdcquery/internal/dtype"
)

// Cache is a byte-capacity-bounded LRU of region buffers, modeling the
// PDC server's in-memory region cache (the paper caps each server at
// 64 GB). Query evaluation populates it; get-data drains it — the reason
// PDC-H/PDC-SH return data so quickly after evaluation (§VI-A) while
// PDC-HI must go back to storage.
//
// Entries are immutable shared extents: Put takes a dtype.ROBytes view
// (usually the storage extent itself) and Get hands the same view back
// with no copy. Hits are therefore zero-alloc — the copy-on-Get that
// once guarded against caller writes is gone, replaced by the static
// contract on ROBytes (the aliasguard analyzer rejects any write
// through an immutable-typed value, repo-wide). Concurrent queries on
// the same region share one buffer safely because nobody can mutate it.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	// Lifetime operational counters (monotonic, under mu); surfaced
	// through Stats into the server registry and /metrics. The cache
	// itself never records flight-recorder events: recording happens in
	// the engine (readExtent and the merge barriers), outside c.mu, so
	// the cache mutex never nests the recorder mutex and pooled region
	// tasks cannot interleave cache events in scheduling order.
	hits      int64
	misses    int64
	evictions int64
}

// CacheStats is a point-in-time snapshot of the cache's operational
// counters plus its current occupancy.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	UsedBytes int64
	Entries   int64
}

// Stats snapshots the operational counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		UsedBytes: c.used,
		Entries:   int64(len(c.items)),
	}
}

// CacheTraffic accumulates one region task's cache operations so they
// can be recorded as aggregate flight-recorder events at the serial
// merge barrier instead of per-operation from inside concurrently
// executing tasks (which would make event order and Seq numbers depend
// on scheduling). It is a plain value embedded in the task result, so
// accumulating costs no allocation.
type CacheTraffic struct {
	Hits, Misses, Evictions         int64
	HitBytes, MissBytes, EvictBytes int64
}

type cacheEntry struct {
	key  string
	data dtype.ROBytes
}

// NewCache returns an LRU cache bounded to capacity bytes. A zero or
// negative capacity disables caching (all Puts are dropped).
func NewCache(capacity int64) *Cache {
	return &Cache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached immutable view for key, marking it most
// recently used. The view is shared — zero-copy by design — and the
// ROBytes type forbids writing through it.
func (c *Cache) Get(key string) (dtype.ROBytes, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	data := el.Value.(*cacheEntry).data
	c.hits++
	return data, true
}

// Touch marks key most recently used without returning its buffer — the
// LRU-refresh half of Get for callers that only need to know the region
// is resident (e.g. the full-scan preload, which skips re-reading cached
// regions but must keep them hot).
func (c *Cache) Touch(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.MoveToFront(el)
	return true
}

// Put inserts an immutable view, evicting least-recently-used entries as
// needed. Views larger than the whole capacity are not cached. Because
// the data is immutable, the cache can retain the caller's view and
// later hand it to any number of readers without copies. It reports the
// entries and bytes it evicted to make room, so the caller can account
// for the eviction (the engine turns it into an EvCacheEvict event).
func (c *Cache) Put(key string, data dtype.ROBytes) (evicted int64, evictedBytes int64) {
	if c == nil || c.capacity <= 0 || int64(len(data)) > c.capacity {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.used += int64(len(data)) - int64(len(el.Value.(*cacheEntry).data))
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.items[key] = el
		c.used += int64(len(data))
	}
	for c.used > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= int64(len(e.data))
		c.evictions++
		evicted++
		evictedBytes += int64(len(e.data))
	}
	return evicted, evictedBytes
}

// Contains reports whether key is cached without touching the LRU order —
// a read-only peek so instrumentation can classify an upcoming read as a
// cache hit before readRegion performs it.
func (c *Cache) Contains(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Used returns the current cached byte count.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Clear drops all entries.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}
