// Package exec is the query evaluation engine that runs inside each PDC
// server: it evaluates normalized query conditions over the server's
// assigned regions using one of the paper's four strategies (§III-D).
//
//   - FullScan (PDC-F): read every assigned region of every queried
//     object, scan the first condition, refine with probes.
//   - Histogram (PDC-H, the default): use per-region histograms/extrema to
//     prune regions and the global histogram to order conditions by
//     estimated selectivity, then scan + probe only surviving regions.
//   - HistogramIndex (PDC-HI): like PDC-H for pruning/ordering, but
//     resolve conditions from the per-region bitmap indexes, reading only
//     the index directory and the touched bins — no raw data unless a
//     boundary candidate check requires it.
//   - SortedHistogram (PDC-SH): when the most selective condition is on an
//     object with a sorted replica, binary-search the sorted regions and
//     probe the remaining conditions at the matching locations; otherwise
//     fall back to the histogram strategy (the paper's Fig. 4 behaviour
//     when the engine evaluates a non-sort-key condition first).
//
// The engine also implements the AND short-circuit ("one condition has no
// hit → stop") and evaluates OR terms independently, merging them with
// duplicate removal.
package exec

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"pdcquery/internal/bitindex"
	"pdcquery/internal/dtype"
	"pdcquery/internal/histogram"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/sched"
	"pdcquery/internal/selection"
	"pdcquery/internal/simio"
	"pdcquery/internal/sortstore"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/vclock"
	"pdcquery/internal/wah"
)

// Strategy selects the evaluation optimization, mirroring the paper's
// environment-variable switch (§III-D).
type Strategy int

// Evaluation strategies. Histogram is the zero value: "the histogram
// only approach is selected by default" (§III-D).
const (
	Histogram       Strategy = iota // PDC-H (the default)
	FullScan                        // PDC-F
	HistogramIndex                  // PDC-HI
	SortedHistogram                 // PDC-SH
)

// String returns the paper's label for the strategy.
func (s Strategy) String() string {
	switch s {
	case FullScan:
		return "PDC-F"
	case Histogram:
		return "PDC-H"
	case HistogramIndex:
		return "PDC-HI"
	case SortedHistogram:
		return "PDC-SH"
	}
	//lint:ignore hotalloc unreachable for defined strategies; debug fallback only
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy accepts both the paper labels and plain names.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "PDC-F", "fullscan", "full":
		return FullScan, nil
	case "PDC-H", "histogram", "hist":
		return Histogram, nil
	case "PDC-HI", "index", "histindex":
		return HistogramIndex, nil
	case "PDC-SH", "sorted", "sorthist":
		return SortedHistogram, nil
	}
	return 0, fmt.Errorf("exec: unknown strategy %q", s)
}

// Assignment names the regions this server evaluates: original region
// indices (shared by all same-shaped objects) and sorted-replica region
// indices for the SortedHistogram strategy.
type Assignment struct {
	Orig   []int
	Sorted []int
}

// Stats counts what the evaluation did; experiments assert on these.
type Stats struct {
	RegionsEvaluated int64 // regions actually scanned/probed/indexed
	RegionsPruned    int64 // regions eliminated by histogram/min-max
	SortedRegions    int64 // sorted-replica regions read
	ElementsScanned  int64
	Probes           int64
	IndexBinsRead    int64
	IndexBytesRead   int64
	CandChecks       int64
	// StorageBytes is the total bytes this evaluation read from storage
	// (filled in by the server from its account); the client uses the
	// fleet-wide sum to model shared-backend saturation.
	StorageBytes int64
}

// Add accumulates.
func (s *Stats) Add(o Stats) {
	s.RegionsEvaluated += o.RegionsEvaluated
	s.RegionsPruned += o.RegionsPruned
	s.SortedRegions += o.SortedRegions
	s.ElementsScanned += o.ElementsScanned
	s.Probes += o.Probes
	s.IndexBinsRead += o.IndexBinsRead
	s.IndexBytesRead += o.IndexBytesRead
	s.CandChecks += o.CandChecks
	s.StorageBytes += o.StorageBytes
}

// Result is one server's partial query result.
type Result struct {
	Sel   *selection.Selection
	Stats Stats
	// Values holds, per object, the matching elements' values encoded in
	// the object's element type, aligned with Sel.Coords. It is populated
	// only when the evaluation had the data in hand (scan/probe and sorted
	// paths) and values were requested — the caching behaviour behind the
	// paper's get-data results.
	Values map[object.ID][]byte
}

// Compute cost model (charged to the Compute category). The paper's
// application scans with all 31 remaining cores of each node, so the
// effective per-element cost is well below a nanosecond; fractional
// nanoseconds are accumulated in float and truncated once per charge.
const (
	scanNsPerElem   = 0.15
	probeNsPerElem  = 0.3
	candNsPerElem   = 0.6
	decodeCostPerKB = 300 * time.Nanosecond
)

// computeCost converts an element count at a per-element nanosecond rate
// into a duration.
func computeCost(n int64, nsPerElem float64) time.Duration {
	return time.Duration(float64(n) * nsPerElem)
}

// Engine evaluates queries over one server's assigned regions.
type Engine struct {
	Store *simio.Store
	Acct  *vclock.Account
	// Lookup resolves object metadata (distributed to the server before
	// evaluation, §III-C).
	Lookup func(object.ID) (*object.Object, bool)
	// Global returns the object's global histogram (nil when absent).
	Global func(object.ID) *histogram.Histogram
	// Replica returns the object's sorted replica metadata (nil when
	// absent).
	Replica  func(object.ID) *sortstore.Replica
	Strategy Strategy
	Cache    *Cache
	// Pool, when non-nil, fans region-level evaluation out to a bounded
	// worker pool. A nil pool runs the same task/merge code serially, so
	// results, traces, and virtual costs are byte-identical at any worker
	// count by construction.
	Pool *sched.Pool
	// Rec, when non-nil, receives flight-recorder events. The engine
	// records only at the serial barriers (prune pass, merge pass), never
	// inside pooled region tasks, so the event sequence for a fixed
	// workload is identical at any worker count.
	Rec *telemetry.Recorder
	// Phases, when non-nil, accumulates this request's per-phase latency
	// (virtual ns at the deterministic barriers, wall ns through Clock).
	Phases *telemetry.PhaseTimes
	// cacheEv, when non-nil, collects cache traffic instead of recording
	// it: region tasks point it at their task result (alongside nilling
	// Rec) and the merge barrier flushes the totals as aggregate events
	// in region order.
	cacheEv *CacheTraffic
	// Plan, when non-nil, is the cost-based planner's output for the
	// query about to run: per-conjunct condition order and per-region
	// scan-vs-probe choices, replacing the engine's fixed
	// strategy-driven decisions. Every directive degrades safely (a
	// malformed order or a probe choice on an unindexed region falls
	// back to the engine default), so a plan changes cost, never
	// results.
	Plan *QueryPlan
	// Clock supplies wall stamps for phase accounting; nil or NoClock in
	// every deterministic context.
	Clock telemetry.Clock
	// SrvID tags recorded events with this server's rank.
	SrvID int32
}

// vnow reads the engine account's accumulated virtual time — the
// deterministic timestamp base for recorded events and phase deltas.
func (e *Engine) vnow() int64 {
	if e.Acct == nil {
		return 0
	}
	return e.Acct.Cost().Total().Nanoseconds()
}

// wnow reads the wall clock through the seam (0 when no clock is
// installed, so deterministic runs record zero wall phase time).
func (e *Engine) wnow() int64 {
	if e.Clock == nil {
		return 0
	}
	return e.Clock.Now()
}

// readRegion returns a region's raw bytes as an immutable shared view,
// going through the LRU cache. Cache hits are charged at memory-tier
// cost.
func (e *Engine) readRegion(o *object.Object, r int) (dtype.ROBytes, error) {
	return e.readExtent(o.Regions[r].ExtentKey)
}

// readExtent is the cached read used for regions and sorted-replica
// extents alike. Both the cache and the store return immutable views of
// the same underlying extent, so the whole read path is zero-copy.
func (e *Engine) readExtent(key string) (dtype.ROBytes, error) {
	if e.Cache != nil {
		if data, ok := e.Cache.Get(key); ok {
			if e.Acct != nil {
				m := e.Store.Model()
				e.Acct.ChargeCost(m.ReadCost(simio.Memory, int64(len(data))))
				e.Acct.Count("cache.hits", 1)
			}
			e.noteCache(telemetry.EvCacheHit, int64(len(data)), 1)
			return data, nil
		}
		if e.Acct != nil {
			e.Acct.Count("cache.misses", 1)
		}
	}
	data, err := e.Store.ReadAll(e.Acct, key)
	if err != nil {
		return nil, err
	}
	if e.Cache != nil {
		e.noteCache(telemetry.EvCacheMiss, int64(len(data)), 1)
	}
	if n, freed := e.Cache.Put(key, data); n > 0 {
		e.noteCache(telemetry.EvCacheEvict, freed, n)
	}
	return data, nil
}

// noteCache accounts one cache operation (ops operations touching the
// given byte count). Pooled region tasks accumulate into the task's
// CacheTraffic — their Rec is nil, and the serial merge barrier flushes
// the totals in region order — while serial contexts (get-data extract,
// the full-scan preload, sorted rest-probes) record the event directly.
// Both halves are nil-safe, so an unconfigured engine records nothing.
func (e *Engine) noteCache(kind telemetry.EventKind, bytes, ops int64) {
	if e.cacheEv != nil {
		switch kind {
		case telemetry.EvCacheHit:
			e.cacheEv.Hits += ops
			e.cacheEv.HitBytes += bytes
		case telemetry.EvCacheMiss:
			e.cacheEv.Misses += ops
			e.cacheEv.MissBytes += bytes
		case telemetry.EvCacheEvict:
			e.cacheEv.Evictions += ops
			e.cacheEv.EvictBytes += bytes
		}
		return
	}
	e.Rec.Record(kind, 0, e.SrvID, e.vnow(), bytes, ops)
}

// flushCacheTraffic records one task's accumulated cache traffic as up
// to three aggregate events. Called only at the serial merge barriers,
// after the task's account is absorbed, so ordering and the vclock
// stamps are identical at any worker count.
func (e *Engine) flushCacheTraffic(t *CacheTraffic) {
	if t.Hits > 0 {
		e.Rec.Record(telemetry.EvCacheHit, 0, e.SrvID, e.vnow(), t.HitBytes, t.Hits)
	}
	if t.Misses > 0 {
		e.Rec.Record(telemetry.EvCacheMiss, 0, e.SrvID, e.vnow(), t.MissBytes, t.Misses)
	}
	if t.Evictions > 0 {
		e.Rec.Record(telemetry.EvCacheEvict, 0, e.SrvID, e.vnow(), t.EvictBytes, t.Evictions)
	}
}

// Evaluate runs the query over the assigned regions and returns the
// partial result. wantValues asks the engine to return matching values
// for the queried objects when it has them in hand.
func (e *Engine) Evaluate(q *query.Query, assign Assignment, wantValues bool) (*Result, error) {
	return e.EvaluateTraced(q, assign, wantValues, nil)
}

// spanCost captures the account cost before a traced section; done adds
// the delta to the span. Both are no-ops when the span is nil, so the
// untraced path never touches the account mutex for tracing.
func (e *Engine) spanCost(s *telemetry.Span) (before vclock.Cost, enabled bool) {
	if s == nil || e.Acct == nil {
		return vclock.Cost{}, false
	}
	return e.Acct.Cost(), true
}

func (e *Engine) spanCostDone(s *telemetry.Span, before vclock.Cost, enabled bool) {
	if enabled {
		s.AddCost(e.Acct.Cost().Sub(before))
	}
}

// condIn/condOut accumulate per-condition actual selectivity on the
// conjunct span: "cond.<object>.in" counts elements the condition was
// evaluated against, "cond.<object>.out" counts survivors. The EXPLAIN
// ANALYZE renderer divides them into an actual selectivity per condition.
func condIn(cs *telemetry.Span, id object.ID, n int64) {
	if cs != nil {
		cs.AddInt(fmt.Sprintf("cond.%d.in", id), n)
	}
}

func condOut(cs *telemetry.Span, id object.ID, n int64) {
	if cs != nil {
		cs.AddInt(fmt.Sprintf("cond.%d.out", id), n)
	}
}

// EvaluateTraced is Evaluate with per-conjunct and per-region trace spans
// recorded as children of span (which may be nil: all span operations are
// nil-safe and skipped). Each region child carries the pruning decision
// (histogram-pruned / bitmap-probed / cache-hit / full-scan / scan) and
// the virtual cost spent on that region.
func (e *Engine) EvaluateTraced(q *query.Query, assign Assignment, wantValues bool, span *telemetry.Span) (*Result, error) {
	return e.EvaluateToken(nil, q, assign, wantValues, span)
}

// EvaluateToken is EvaluateTraced with an end-to-end cancellation token:
// tok is checked between regions and before storage reads, so a session
// disconnect or a virtual-deadline overrun stops the evaluation instead
// of running it to completion. A nil token never cancels.
func (e *Engine) EvaluateToken(tok *sched.Token, q *query.Query, assign Assignment, wantValues bool, span *telemetry.Span) (*Result, error) {
	conjuncts, err := query.Normalize(q.Root)
	if err != nil {
		return nil, err
	}
	ids := q.Root.Objects()
	objs := make(map[object.ID]*object.Object, len(ids))
	var anchor *object.Object
	for _, id := range ids {
		o, ok := e.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("exec: object %d not found", id)
		}
		objs[id] = o
		if anchor == nil {
			anchor = o
		} else if len(o.Regions) != len(anchor.Regions) {
			return nil, fmt.Errorf("exec: objects %d and %d have different region decompositions", anchor.ID, o.ID)
		}
	}
	orig := append([]int(nil), assign.Orig...)
	slices.Sort(orig)
	if span != nil {
		span.SetStr("strategy", e.Strategy.String())
		span.SetInt("conjuncts", int64(len(conjuncts)))
		span.SetInt("regions.assigned", int64(len(orig)))
	}

	// Full scan pre-loads every assigned region of every queried object —
	// the paper's "load all the data of the queried object into memory".
	// PDC's read path merges these bulk sequential reads into large
	// streaming requests (SIII-E), so the preload is charged one
	// operation latency per object plus the full transfer, instead of
	// one latency per region.
	if e.Strategy == FullScan {
		ps := span.Child(telemetry.SpanPhase, "preload")
		before, costed := e.spanCost(ps)
		for _, o := range objs {
			if err := tok.Err(); err != nil {
				return nil, err
			}
			var bytes int64
			var tier simio.Tier
			loaded := false
			for _, r := range orig {
				key := o.Regions[r].ExtentKey
				if e.Cache.Touch(key) {
					continue
				}
				data, err := e.Store.ReadAll(nil, key)
				if err != nil {
					return nil, err
				}
				if n, freed := e.Cache.Put(key, data); n > 0 {
					e.noteCache(telemetry.EvCacheEvict, freed, n)
				}
				bytes += int64(len(data))
				tier = o.Regions[r].Tier
				loaded = true
			}
			if loaded && e.Acct != nil {
				m := e.Store.Model()
				e.Acct.ChargeCost(m.ReadCost(tier, bytes))
				e.Acct.Count("read.ops", 1)
				e.Acct.Count("read.bytes", bytes)
				e.Acct.Count("read.ops."+tier.String(), 1)
				e.Acct.Count("read.bytes."+tier.String(), bytes)
			}
		}
		e.spanCostDone(ps, before, costed)
	}

	res := &Result{}
	// Collect values only when the evaluation reads raw data anyway (the
	// index strategy deliberately avoids raw reads, §III-D4) and the
	// result is a single conjunct (OR merging would misalign values).
	collect := wantValues && len(conjuncts) == 1 && e.Strategy != HistogramIndex
	var parts []*selection.Selection
	for i, c := range conjuncts {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		cs := span.Child(telemetry.SpanConjunct, fmt.Sprintf("conjunct.%d", i))
		before, costed := e.spanCost(cs)
		sel, vals, err := e.evalConjunct(tok, e.Plan.conjunct(i), q, c, objs, anchor, orig, assign.Sorted, collect, &res.Stats, cs)
		if err != nil {
			return nil, err
		}
		e.spanCostDone(cs, before, costed)
		cs.SetInt("hits", int64(sel.NHits))
		parts = append(parts, sel)
		if collect {
			res.Values = vals
		}
	}
	mergeV, mergeW := e.vnow(), e.wnow()
	res.Sel = selection.MergeAll(parts)
	if res.Sel == nil {
		res.Sel = selection.New(nil, anchor.Dims)
	}
	e.Phases.Add(telemetry.PhaseMerge, e.vnow()-mergeV, e.wnow()-mergeW)
	return res, nil
}

// orderConditions returns the conjunct's objects in evaluation order:
// ascending estimated selectivity (upper bound) from the global
// histograms, falling back to object ID order (§III-D2).
func (e *Engine) orderConditions(c query.Conjunct) []object.ID {
	ids := c.ObjectsSorted()
	if e.Strategy == FullScan || e.Global == nil {
		return ids
	}
	type entry struct {
		id  object.ID
		sel float64
	}
	entries := make([]entry, 0, len(ids))
	for _, id := range ids {
		sel := 1.0
		if g := e.Global(id); g != nil {
			iv := c[id]
			_, sel = g.SelectivityBounds(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
		}
		entries = append(entries, entry{id, sel})
	}
	// SortStableFunc keeps the comparison monomorphic: no interface boxing
	// of the entry slice and no capturing closure, unlike sort.SliceStable.
	slices.SortStableFunc(entries, func(x, y entry) int { return cmp.Compare(x.sel, y.sel) })
	out := make([]object.ID, len(entries))
	for i, en := range entries {
		out[i] = en.id
	}
	return out
}

// prunable reports whether region r of object o cannot contain any value
// in iv, using the region histogram when present, else stored extrema.
func prunable(o *object.Object, r int, iv query.Interval) bool {
	rm := &o.Regions[r]
	if rm.Hist != nil {
		return !rm.Hist.Overlaps(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
	}
	if rm.Max < iv.Lo || (rm.Max == iv.Lo && !iv.LoIncl) {
		return true
	}
	if rm.Min > iv.Hi || (rm.Min == iv.Hi && !iv.HiIncl) {
		return true
	}
	return false
}

// constraintRuns returns the local element runs of region r that fall
// inside the query constraint (all of the region when unconstrained), or
// ok=false when the constraint excludes the region entirely.
func constraintRuns(o *object.Object, r int, cons *region.Region) ([]localRun, bool) {
	rr := o.Regions[r].Region
	if cons == nil {
		return []localRun{{Start: 0, Len: rr.NumElems()}}, true
	}
	sub, ok := region.Intersect(rr, *cons)
	if !ok {
		return nil, false
	}
	start := o.LinearStart(r)
	abs := region.LinearRuns(o.Dims, sub)
	runs := make([]localRun, len(abs))
	for i, a := range abs {
		runs[i] = localRun{Start: a.Start - start, Len: a.Len}
	}
	return runs, true
}

func runsElems(runs []localRun) int64 {
	var n int64
	for _, r := range runs {
		n += int64(r.Len)
	}
	return n
}

// evalConjunct evaluates one AND-term over the assigned regions. A
// non-nil ConjunctPlan overrides the strategy-driven decisions: its
// validated order replaces selectivity ordering, and its Sorted flag
// replaces the strategy check (still contingent on the replica being
// present).
func (e *Engine) evalConjunct(tok *sched.Token, cp *ConjunctPlan, q *query.Query, c query.Conjunct, objs map[object.ID]*object.Object,
	anchor *object.Object, orig []int, sorted []int, collect bool, stats *Stats,
	cs *telemetry.Span) (*selection.Selection, map[object.ID][]byte, error) {

	order := e.orderConditions(c)
	if po := cp.planOrder(c); po != nil {
		order = po
	}
	useSorted := e.Strategy == SortedHistogram
	if cp != nil {
		useSorted = cp.Sorted
	}
	if useSorted {
		if rep := e.replicaFor(order[0]); rep != nil {
			return e.evalConjunctSorted(tok, q, c, order, objs, anchor, rep, sorted, collect, stats, cs)
		}
	}
	return e.evalConjunctScanProbe(tok, cp, q, c, order, objs, anchor, orig, collect, stats, cs)
}

func (e *Engine) replicaFor(id object.ID) *sortstore.Replica {
	if e.Replica == nil {
		return nil
	}
	return e.Replica(id)
}

// regionTaskResult carries everything one region-evaluation task produced
// on its shadow engine. The merge phase folds results back in region
// order, so the query's output never depends on task interleaving.
type regionTaskResult struct {
	span    *telemetry.Span // detached region span (nil when untraced)
	condLog *telemetry.Span // private condition-selectivity log
	acct    *vclock.Account // shadow account (nil when the engine has none)
	stats   Stats
	cacheEv CacheTraffic // cache traffic, flushed at the merge barrier
	hits    []uint64
	vals    map[object.ID][]float64
}

// replayCondAttrs folds a task's private condition-selectivity log into
// the conjunct span, preserving attribute insertion order — the merge
// half of the per-task condIn/condOut recording.
func replayCondAttrs(cs, log *telemetry.Span) {
	if cs == nil || log == nil {
		return
	}
	for _, a := range log.Attrs {
		cs.AddInt(a.Key, a.Int)
	}
}

// evalConjunctScanProbe is the scan+probe path used by PDC-F, PDC-H, and
// PDC-HI (the latter replaces the scan with index lookups). It runs in
// three phases so regions can be evaluated in parallel without changing
// a single output byte:
//
//  1. a serial pruning pass in region order — histogram/min-max pruning
//     reads only metadata, and the pass records the per-region outcome so
//     the merge can rebuild the exact serial span sequence;
//  2. a fan-out of the surviving regions over the worker pool, each task
//     on a shadow engine (private account, detached spans) touching only
//     its own region's extents;
//  3. a serial merge in region order that adopts spans, replays condition
//     counters, absorbs shadow accounts, and appends hit coordinates.
func (e *Engine) evalConjunctScanProbe(tok *sched.Token, cp *ConjunctPlan, q *query.Query, c query.Conjunct, order []object.ID,
	objs map[object.ID]*object.Object, anchor *object.Object, orig []int,
	collect bool, stats *Stats, cs *telemetry.Span) (*selection.Selection, map[object.ID][]byte, error) {

	type regionEntry struct {
		r      int
		pruned *telemetry.Span // non-nil: histogram-pruned, span pre-built
		task   int             // else: index into taskRegions
	}
	var entries []regionEntry
	var taskRegions []int
	var taskRuns [][]localRun
	pruneV, pruneW := e.vnow(), e.wnow()
	for _, r := range orig {
		runs, ok := constraintRuns(anchor, r, q.Constraint)
		if !ok {
			continue // outside the spatial constraint
		}
		// Region pruning via histogram min/max (not for full scan).
		if e.Strategy != FullScan {
			pruned := false
			for id, iv := range c {
				if prunable(objs[id], r, iv) {
					var ps *telemetry.Span
					if cs != nil {
						ps = telemetry.NewSpan(telemetry.SpanRegion, fmt.Sprintf("region.%d", r))
						ps.SetStr("decision", telemetry.DecisionHistogramPruned)
						ps.SetInt("by", int64(id))
					}
					entries = append(entries, regionEntry{r: r, pruned: ps, task: -1})
					pruned = true
					break
				}
			}
			if pruned {
				stats.RegionsPruned++
				continue
			}
		}
		entries = append(entries, regionEntry{r: r, task: len(taskRegions)})
		taskRegions = append(taskRegions, r)
		taskRuns = append(taskRuns, runs)
	}
	e.Phases.Add(telemetry.PhasePrune, e.vnow()-pruneV, e.wnow()-pruneW)

	results := make([]*regionTaskResult, len(taskRegions))
	runTask := func(i int) error {
		r := taskRegions[i]
		res := &regionTaskResult{}
		te := *e
		te.Pool = nil // region tasks never fan out again
		// Tasks run concurrently: recording or phase accounting from here
		// would race and make event order depend on scheduling. Both stay
		// with the serial barriers; cache traffic accumulates in the task
		// result and is flushed there too.
		te.Rec = nil
		te.Phases = nil
		te.cacheEv = &res.cacheEv
		if e.Acct != nil {
			res.acct = vclock.NewAccount()
			te.Acct = res.acct
		}
		if cs != nil {
			res.span = telemetry.NewSpan(telemetry.SpanRegion, fmt.Sprintf("region.%d", r))
			res.condLog = telemetry.NewSpan(telemetry.SpanPhase, "cond")
		}
		rs := res.span
		res.stats.RegionsEvaluated++

		// Resolve the region per the plan's choice when one is set;
		// ChoiceAuto keeps the strategy default.
		useIndex := e.Strategy == HistogramIndex
		switch cp.choice(r) {
		case ChoiceScan:
			useIndex = false
		case ChoiceProbe:
			useIndex = true
		}

		// Classify how this region will be resolved before reading it:
		// once readRegion runs, the cache state that made it a hit is gone.
		if rs != nil {
			switch {
			case useIndex:
				rs.SetStr("decision", telemetry.DecisionBitmapProbed)
			case e.Strategy == FullScan:
				rs.SetStr("decision", telemetry.DecisionFullScan)
			case e.Cache.Contains(objs[order[0]].Regions[r].ExtentKey):
				rs.SetStr("decision", telemetry.DecisionCacheHit)
			default:
				rs.SetStr("decision", telemetry.DecisionScan)
			}
		}

		var hits []uint64
		var err error
		if useIndex {
			hits, err = te.evalRegionIndex(tok, c, order, objs, r, taskRuns[i], &res.stats, res.condLog)
		} else {
			hits, err = te.evalRegionScan(tok, c, order, objs, r, taskRuns[i], nil, &res.stats, res.condLog)
		}
		if err != nil {
			return err
		}
		if res.acct != nil {
			rs.AddCost(res.acct.Cost())
		}
		rs.SetInt("hits", int64(len(hits)))
		res.hits = hits
		if len(hits) > 0 && collect {
			res.vals = make(map[object.ID][]float64, len(order))
			if err := te.collectRegionValues(tok, order, objs, r, hits, res.vals); err != nil {
				return err
			}
		}
		results[i] = res
		return nil
	}
	execV, execW := e.vnow(), e.wnow()
	if err := e.Pool.Map(tok, len(taskRegions), runTask); err != nil {
		return nil, nil, err
	}

	var coords []uint64
	var vals map[object.ID][]float64
	if collect {
		vals = make(map[object.ID][]float64, len(order))
	}
	for _, en := range entries {
		if en.task < 0 {
			cs.Adopt(en.pruned)
			continue
		}
		res := results[en.task]
		cs.Adopt(res.span)
		replayCondAttrs(cs, res.condLog)
		if e.Acct != nil {
			e.Acct.Absorb(res.acct)
		}
		stats.Add(res.stats)
		// Recorded at the merge barrier (absorb order is region order), so
		// the sequence is deterministic at any worker count; the vclock
		// stamp is the account total after this region's absorb. Cache
		// traffic the task accumulated flushes here for the same reason.
		e.flushCacheTraffic(&res.cacheEv)
		e.Rec.Record(telemetry.EvRegionExec, 0, e.SrvID, e.vnow(), int64(en.r), int64(len(res.hits)))
		if len(res.hits) == 0 {
			continue
		}
		start := anchor.LinearStart(en.r)
		if collect {
			for _, id := range order {
				vals[id] = append(vals[id], res.vals[id]...)
			}
		}
		for _, h := range res.hits {
			coords = append(coords, start+h)
		}
	}
	e.Phases.Add(telemetry.PhaseRegionExec, e.vnow()-execV, e.wnow()-execW)
	sel := selection.New(coords, anchor.Dims)
	var out map[object.ID][]byte
	if collect {
		out = encodeValues(order, objs, vals)
	}
	return sel, out, nil
}

// evalRegionScan scans the first condition and probes the rest (§III-C:
// only already selected locations are evaluated for subsequent
// conditions).
func (e *Engine) evalRegionScan(tok *sched.Token, c query.Conjunct, order []object.ID, objs map[object.ID]*object.Object,
	r int, runs []localRun, buf []uint64, stats *Stats, cs *telemetry.Span) ([]uint64, error) {

	first := objs[order[0]]
	data, err := e.readRegion(first, r)
	if err != nil {
		return nil, err
	}
	n := runsElems(runs)
	if buf == nil {
		// Pre-size the hit buffer to the scan's worst case (every scanned
		// element matches) so the append loop in scanTyped never regrows.
		buf = make([]uint64, 0, n)
	}
	hits, err := scanRegion(first.Type, data, runs, c[order[0]], buf[:0])
	if err != nil {
		return nil, err
	}
	stats.ElementsScanned += n
	condIn(cs, order[0], n)
	condOut(cs, order[0], int64(len(hits)))
	if e.Acct != nil {
		e.Acct.Charge(vclock.Compute, computeCost(n, scanNsPerElem))
	}
	for _, id := range order[1:] {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		if len(hits) == 0 {
			return hits, nil // AND short-circuit
		}
		o := objs[id]
		data, err := e.readRegion(o, r)
		if err != nil {
			return nil, err
		}
		stats.Probes += int64(len(hits))
		condIn(cs, id, int64(len(hits)))
		if e.Acct != nil {
			e.Acct.Charge(vclock.Compute, computeCost(int64(len(hits)), probeNsPerElem))
		}
		hits, err = probeRegion(o.Type, data, hits, c[id])
		if err != nil {
			return nil, err
		}
		condOut(cs, id, int64(len(hits)))
	}
	return hits, nil
}

// evalRegionIndex resolves every condition from the per-region bitmap
// indexes, ANDing the bitmaps; conditions on regions without an index
// fall back to scan/probe semantics.
func (e *Engine) evalRegionIndex(tok *sched.Token, c query.Conjunct, order []object.ID, objs map[object.ID]*object.Object,
	r int, runs []localRun, stats *Stats, cs *telemetry.Span) ([]uint64, error) {

	// acc and scratch ping-pong through AndInto: after the first AND the
	// fold recycles the previous accumulator's storage instead of
	// allocating a bitmap per condition. Both always point at bitmaps this
	// loop owns (the first bm or an AndInto result), never a caller's.
	var acc, scratch *wah.Bitmap
	for _, id := range order {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		o := objs[id]
		iv := c[id]
		rm := &o.Regions[r]
		var bm *wah.Bitmap
		if rm.IndexKey == "" {
			// No index for this region: degrade to a scan of this
			// condition (kept correct, costed as a raw read).
			data, err := e.readRegion(o, r)
			if err != nil {
				return nil, err
			}
			all := []localRun{{Start: 0, Len: rm.Region.NumElems()}}
			idxs, err := scanRegion(o.Type, data, all, iv, nil)
			if err != nil {
				return nil, err
			}
			stats.ElementsScanned += runsElems(all)
			if e.Acct != nil {
				e.Acct.Charge(vclock.Compute, computeCost(runsElems(all), scanNsPerElem))
			}
			bm = wah.FromIndices(idxs, rm.Region.NumElems())
		} else {
			var err error
			bm, err = e.evalIndexCondition(o, r, iv, stats)
			if err != nil {
				return nil, err
			}
		}
		condIn(cs, id, int64(rm.Region.NumElems()))
		condOut(cs, id, int64(bm.Cardinality()))
		if acc == nil {
			acc = bm
		} else {
			acc, scratch = wah.AndInto(scratch, acc, bm), acc
		}
		if acc.Cardinality() == 0 {
			return nil, nil // AND short-circuit
		}
	}
	if acc == nil {
		return nil, nil
	}
	hits := acc.ToIndices()
	// Apply the spatial constraint (runs cover the whole region when
	// unconstrained, making filterRuns a no-op pass).
	hits = filterRuns(hits, runs)
	return hits, nil
}

// evalIndexCondition reads the index directory and only the touched bins,
// resolving boundary candidates against raw data when needed.
func (e *Engine) evalIndexCondition(o *object.Object, r int, iv query.Interval, stats *Stats) (*wah.Bitmap, error) {
	rm := &o.Regions[r]
	// The directory usually lives in the region metadata (cached on all
	// servers after metadata distribution); otherwise read its prefix
	// from the index extent.
	dir := rm.IndexDir
	if dir == nil {
		dirLen := bitindex.DirectorySize(rm.IndexBins)
		dirBytes, err := e.Store.Read(e.Acct, rm.IndexKey, 0, dirLen)
		if err != nil {
			return nil, err
		}
		dir, err = bitindex.DecodeDirectory(dirBytes)
		if err != nil {
			return nil, err
		}
	}
	sure, cands := dir.Select(iv.Lo, iv.Hi, iv.LoIncl, iv.HiIncl)
	nbits := rm.Region.NumElems()
	if len(sure) == 0 && len(cands) == 0 {
		return wah.Empty(nbits), nil
	}
	// Read the touched bins' blobs in one aggregated request.
	bins := make([]int, 0, len(sure)+len(cands))
	bins = append(append(bins, sure...), cands...)
	ranges := make([]simio.Range, len(bins))
	var blobBytes int64
	for i, b := range bins {
		db := dir.Bins[b]
		ranges[i] = simio.Range{Off: db.BlobOff, Len: db.BlobLen}
		blobBytes += db.BlobLen
	}
	stats.IndexBinsRead += int64(len(bins))
	stats.IndexBytesRead += blobBytes
	blobs, err := e.Store.ReadRanges(e.Acct, rm.IndexKey, ranges)
	if err != nil {
		return nil, err
	}
	if e.Acct != nil {
		e.Acct.Charge(vclock.Compute, time.Duration(blobBytes/1024+1)*decodeCostPerKB)
	}
	parts := make([]*wah.Bitmap, 0, len(sure))
	for i := range sure {
		bm, err := bitindex.DecodeBin(blobs[i])
		if err != nil {
			return nil, err
		}
		parts = append(parts, bm)
	}
	acc := wah.OrAll(parts)
	if acc == nil {
		acc = wah.Empty(nbits)
	}
	if len(cands) > 0 {
		// Candidate bins need the raw data (rare: only when a query
		// boundary value actually occurs in the data).
		data, err := e.readRegion(o, r)
		if err != nil {
			return nil, err
		}
		var extra []uint64
		for i := range cands {
			bm, err := bitindex.DecodeBin(blobs[len(sure)+i])
			if err != nil {
				return nil, err
			}
			bm.ForEach(func(idx uint64) {
				stats.CandChecks++
				if iv.Contains(dtype.At(o.Type, data, int(idx))) {
					extra = append(extra, idx)
				}
			})
		}
		if e.Acct != nil {
			e.Acct.Charge(vclock.Compute, computeCost(stats.CandChecks, candNsPerElem))
		}
		slices.Sort(extra)
		acc = wah.Or(acc, wah.FromIndices(extra, nbits))
	}
	return acc, nil
}

// shHit carries one PDC-SH match: the original coordinate plus the
// values already in hand (key first, then companions in compIDs order)
// for the stash.
type shHit struct {
	coord uint64
	vals  []float64
}

// sortedTaskResult is the PDC-SH counterpart of regionTaskResult: what
// one sorted-region task produced on its shadow engine.
type sortedTaskResult struct {
	span    *telemetry.Span
	condLog *telemetry.Span
	acct    *vclock.Account
	stats   Stats
	cacheEv CacheTraffic // cache traffic, flushed at the merge barrier
	hits    []shHit
}

// evalConjunctSorted is the PDC-SH path: resolve the most selective
// condition from the sorted replica, then probe the remaining conditions
// at the matching original locations. Sorted regions fan out over the
// worker pool with the same shadow-engine / ordered-merge discipline as
// the scan+probe path; the rest-condition probe stays serial (it walks
// the globally sorted hit list region by region).
func (e *Engine) evalConjunctSorted(tok *sched.Token, q *query.Query, c query.Conjunct, order []object.ID,
	objs map[object.ID]*object.Object, anchor *object.Object, rep *sortstore.Replica,
	sortedAssign []int, collect bool, stats *Stats, cs *telemetry.Span) (*selection.Selection, map[object.ID][]byte, error) {

	keyID := order[0]
	iv := c[keyID]
	assigned := make(map[int]bool, len(sortedAssign))
	for _, s := range sortedAssign {
		assigned[s] = true
	}
	// Conditions on objects with a co-sorted companion are resolved from
	// the companion extents (contiguous, aligned with the sorted key);
	// the rest are probed against the original regions afterwards.
	var compIDs, restIDs []object.ID
	for _, id := range order[1:] {
		if rep.HasCompanion(id) {
			compIDs = append(compIDs, id)
		} else {
			restIDs = append(restIDs, id)
		}
	}

	pruneV, pruneW := e.vnow(), e.wnow()
	var candidates []int
	for _, s := range rep.RegionsOverlapping(iv) {
		if assigned[s] {
			candidates = append(candidates, s)
		}
	}
	e.Phases.Add(telemetry.PhasePrune, e.vnow()-pruneV, e.wnow()-pruneW)

	results := make([]*sortedTaskResult, len(candidates))
	runTask := func(ti int) error {
		s := candidates[ti]
		res := &sortedTaskResult{}
		te := *e
		te.Pool = nil
		// Same discipline as the scan-path tasks: no recording or phase
		// accounting from concurrent tasks; cache traffic accumulates in
		// the result and flushes at the serial merge barrier.
		te.Rec = nil
		te.Phases = nil
		te.cacheEv = &res.cacheEv
		if e.Acct != nil {
			res.acct = vclock.NewAccount()
			te.Acct = res.acct
		}
		if cs != nil {
			res.span = telemetry.NewSpan(telemetry.SpanSortedRegion, fmt.Sprintf("sorted.%d", s))
			res.condLog = telemetry.NewSpan(telemetry.SpanPhase, "cond")
			if e.Cache.Contains(object.SortedValKey(keyID, s)) {
				res.span.SetStr("decision", telemetry.DecisionCacheHit)
			} else {
				res.span.SetStr("decision", telemetry.DecisionScan)
			}
		}
		ss := res.span
		// finish seals the task at any of its exit points: the span's
		// cost is the shadow account's whole accumulation, matching the
		// serial path's spanCost delta across the region body.
		finish := func(matched int) {
			if res.acct != nil {
				ss.AddCost(res.acct.Cost())
			}
			ss.SetInt("matched", int64(matched))
			results[ti] = res
		}
		valBytes, err := te.readExtent(object.SortedValKey(keyID, s))
		if err != nil {
			return err
		}
		lo, hi := rep.EvaluateRegion(valBytes, iv)
		condIn(res.condLog, keyID, int64(rep.Regions[s].Count))
		condOut(res.condLog, keyID, int64(hi-lo))
		res.stats.SortedRegions++
		if hi <= lo {
			finish(0)
			return nil
		}
		if te.Acct != nil {
			te.Acct.Charge(vclock.Compute, computeCost(int64(hi-lo), probeNsPerElem))
		}

		// Resolve companion conditions first: contiguous co-sorted reads,
		// no permutation needed for eliminated positions.
		positions := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			positions = append(positions, i)
		}
		var compVals [][]float64
		if collect {
			compVals = make([][]float64, len(positions))
		}
		alive := positions
		for _, id := range compIDs {
			if err := tok.Err(); err != nil {
				return err
			}
			if len(alive) == 0 {
				break
			}
			data, err := te.readExtent(sortstore.CompanionValKey(keyID, id, s))
			if err != nil {
				return err
			}
			civ := c[id]
			ct, err := companionType(rep, id)
			if err != nil {
				return err
			}
			res.stats.Probes += int64(len(alive))
			condIn(res.condLog, id, int64(len(alive)))
			if te.Acct != nil {
				te.Acct.Charge(vclock.Compute, computeCost(int64(len(alive)), probeNsPerElem))
			}
			keep := alive[:0]
			for k, pos := range alive {
				v := dtype.At(ct, data, pos)
				if civ.Contains(v) {
					if collect {
						compVals[len(keep)] = append(compVals[k], v)
					}
					keep = append(keep, pos)
				}
			}
			alive = keep
			condOut(res.condLog, id, int64(len(alive)))
			if collect {
				compVals = compVals[:len(alive)]
			}
		}
		if len(alive) == 0 {
			finish(0)
			return nil
		}

		// Fetch the surviving positions' permutation entries. When most
		// of the region survives, read (and cache) the whole extent; for
		// a narrow match, a ranged read of the needed slice is cheaper.
		pw := rep.PermWidth()
		regionElems := int(rep.Regions[s].Count)
		var permBytes []byte
		permBase := alive[0]
		if hi-lo >= regionElems/4 {
			full, err := te.readExtent(object.SortedPermKey(keyID, s))
			if err != nil {
				return err
			}
			permBytes = full
			permBase = 0
		} else {
			span := alive[len(alive)-1] - permBase + 1
			var err error
			permBytes, err = te.Store.Read(te.Acct, object.SortedPermKey(keyID, s), int64(permBase)*pw, int64(span)*pw)
			if err != nil {
				return err
			}
		}
		cbuf := make([]uint64, len(anchor.Dims))
		for k, pos := range alive {
			coord := rep.PermAt(permBytes, pos-permBase)
			if q.Constraint != nil {
				cbuf = region.LinearToCoord(anchor.Dims, coord, cbuf)
				if !q.Constraint.ContainsCoord(cbuf) {
					continue
				}
			}
			h := shHit{coord: coord}
			if collect {
				h.vals = append([]float64{dtype.At(rep.Type, valBytes, pos)}, compVals[k]...)
			}
			res.hits = append(res.hits, h)
		}
		finish(len(alive))
		return nil
	}
	execV, execW := e.vnow(), e.wnow()
	if err := e.Pool.Map(tok, len(candidates), runTask); err != nil {
		return nil, nil, err
	}

	var hits []shHit
	for ti := range candidates {
		res := results[ti]
		cs.Adopt(res.span)
		replayCondAttrs(cs, res.condLog)
		if e.Acct != nil {
			e.Acct.Absorb(res.acct)
		}
		stats.Add(res.stats)
		e.flushCacheTraffic(&res.cacheEv)
		e.Rec.Record(telemetry.EvRegionExec, 0, e.SrvID, e.vnow(), int64(candidates[ti]), int64(len(res.hits)))
		hits = append(hits, res.hits...)
	}
	slices.SortFunc(hits, func(a, b shHit) int { return cmp.Compare(a.coord, b.coord) })

	var vals map[object.ID][]float64
	if collect {
		vals = make(map[object.ID][]float64, len(order))
	}
	var coords []uint64
	// Probe the remaining conditions region by region against the
	// original (unsorted) objects. Only the already-selected locations
	// are evaluated (§III-C); when they are a small fraction of the
	// region, the probe uses aggregated ranged reads of just those
	// elements (§III-E) instead of pulling the whole region.
	for i := 0; i < len(hits); {
		if err := tok.Err(); err != nil {
			return nil, nil, err
		}
		r := anchor.RegionOfLinear(hits[i].coord)
		start := anchor.LinearStart(r)
		regionElems := anchor.Regions[r].Region.NumElems()
		end := start + regionElems
		j := i
		var local []uint64
		for j < len(hits) && hits[j].coord < end {
			local = append(local, hits[j].coord-start)
			j++
		}
		group := hits[i:j]
		surviving := local
		var rs *telemetry.Span
		if len(restIDs) > 0 {
			rs = cs.Child(telemetry.SpanRegion, fmt.Sprintf("region.%d", r))
			if rs != nil {
				if e.Cache.Contains(objs[restIDs[0]].Regions[r].ExtentKey) {
					rs.SetStr("decision", telemetry.DecisionCacheHit)
				} else {
					rs.SetStr("decision", telemetry.DecisionScan)
				}
			}
		}
		rsBefore, rsCosted := e.spanCost(rs)
		for _, id := range restIDs {
			if len(surviving) == 0 {
				break
			}
			o := objs[id]
			stats.Probes += int64(len(surviving))
			condIn(cs, id, int64(len(surviving)))
			if e.Acct != nil {
				e.Acct.Charge(vclock.Compute, computeCost(int64(len(surviving)), probeNsPerElem))
			}
			probed, err := e.probeValues(o, r, surviving, regionElems)
			if err != nil {
				return nil, nil, err
			}
			keep := surviving[:0]
			for k, lidx := range surviving {
				if c[id].Contains(probed[k]) {
					keep = append(keep, lidx)
				}
			}
			surviving = keep
			condOut(cs, id, int64(len(surviving)))
		}
		if len(surviving) > 0 {
			stats.RegionsEvaluated++
			if collect {
				// Key and companion values are already in the hits; the
				// probe objects are re-fetched for the final survivors.
				ki := 0
				for _, lidx := range surviving {
					for group[ki].coord-start != lidx {
						ki++
					}
					vals[keyID] = append(vals[keyID], group[ki].vals[0])
					for ci, id := range compIDs {
						vals[id] = append(vals[id], group[ki].vals[1+ci])
					}
				}
				for _, id := range restIDs {
					o := objs[id]
					probed, err := e.probeValues(o, r, surviving, regionElems)
					if err != nil {
						return nil, nil, err
					}
					vals[id] = append(vals[id], probed...)
				}
			}
			for _, lidx := range surviving {
				coords = append(coords, start+lidx)
			}
		}
		e.spanCostDone(rs, rsBefore, rsCosted)
		rs.SetInt("hits", int64(len(surviving)))
		i = j
	}
	e.Phases.Add(telemetry.PhaseRegionExec, e.vnow()-execV, e.wnow()-execW)
	sel := selection.New(coords, anchor.Dims)
	var out map[object.ID][]byte
	if collect {
		out = encodeValues(order, objs, vals)
	}
	return sel, out, nil
}

// companionType returns the element type of a companion copy. A missing
// companion means the replica metadata and the query disagree (corrupt
// or stale metadata): reported as an error so the request fails cleanly.
func companionType(rep *sortstore.Replica, id object.ID) (dtype.Type, error) {
	for _, comp := range rep.Companions {
		if comp.Obj == id {
			return comp.Type, nil
		}
	}
	return 0, fmt.Errorf("exec: replica %d has no companion copy of object %d", rep.Key, id)
}

// probeValues returns the values of object o's region r at the given
// sorted local element indices. Sparse probes use aggregated ranged
// reads; dense probes (or a cache hit) use the whole region buffer.
func (e *Engine) probeValues(o *object.Object, r int, local []uint64, regionElems uint64) ([]float64, error) {
	es := int64(o.Type.Size())
	key := o.Regions[r].ExtentKey
	out := make([]float64, len(local))
	// Prefer the cached region when available; otherwise only pull the
	// region when the probe is dense.
	if data, ok := e.Cache.Get(key); ok {
		if e.Acct != nil {
			m := e.Store.Model()
			e.Acct.ChargeCost(m.ReadCost(simio.Memory, int64(len(local))*es))
		}
		e.noteCache(telemetry.EvCacheHit, int64(len(data)), 1)
		for k, lidx := range local {
			out[k] = dtype.At(o.Type, data, int(lidx))
		}
		return out, nil
	}
	if uint64(len(local))*4 >= regionElems {
		data, err := e.readRegion(o, r)
		if err != nil {
			return nil, err
		}
		for k, lidx := range local {
			out[k] = dtype.At(o.Type, data, int(lidx))
		}
		return out, nil
	}
	ranges := make([]simio.Range, len(local))
	for k, lidx := range local {
		ranges[k] = simio.Range{Off: int64(lidx) * es, Len: es}
	}
	blobs, err := e.Store.ReadRanges(e.Acct, key, ranges)
	if err != nil {
		return nil, err
	}
	for k := range blobs {
		out[k] = dtype.At(o.Type, blobs[k], 0)
	}
	return out, nil
}

// collectRegionValues appends the hit values for every queried object of
// one region (scan/probe path — the buffers are warm in cache).
func (e *Engine) collectRegionValues(tok *sched.Token, order []object.ID, objs map[object.ID]*object.Object,
	r int, hits []uint64, vals map[object.ID][]float64) error {
	for _, id := range order {
		if err := tok.Err(); err != nil {
			return err
		}
		o := objs[id]
		data, err := e.readRegion(o, r)
		if err != nil {
			return err
		}
		for _, h := range hits {
			vals[id] = append(vals[id], dtype.At(o.Type, data, int(h)))
		}
	}
	return nil
}

// encodeValues converts collected float64 values back to each object's
// element type.
func encodeValues(order []object.ID, objs map[object.ID]*object.Object, vals map[object.ID][]float64) map[object.ID][]byte {
	out := make(map[object.ID][]byte, len(vals))
	for id, vs := range vals {
		o := objs[id]
		buf := make([]byte, len(vs)*o.Type.Size())
		for i, v := range vs {
			dtype.Put(o.Type, buf, i, v)
		}
		out[id] = buf
	}
	return out
}

// ExtractValues reads the values of an object at the given sorted
// absolute coordinates, returning them concatenated in coordinate order.
// Regions already warm in the cache are served from memory — this is the
// get-data path (§III-E, §VI-A). tok cancels between regions; nil never
// cancels.
func (e *Engine) ExtractValues(tok *sched.Token, id object.ID, coords []uint64) ([]byte, error) {
	o, ok := e.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("exec: object %d not found", id)
	}
	elemSize := o.Type.Size()
	out := make([]byte, len(coords)*elemSize)
	for i := 0; i < len(coords); {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		r := o.RegionOfLinear(coords[i])
		start := o.LinearStart(r)
		end := start + o.Regions[r].Region.NumElems()
		data, err := e.readRegion(o, r)
		if err != nil {
			return nil, err
		}
		for i < len(coords) && coords[i] < end {
			local := int(coords[i] - start)
			copy(out[i*elemSize:], data[local*elemSize:(local+1)*elemSize])
			i++
		}
	}
	return out, nil
}
