package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
)

// randTree builds a random query tree over the given objects: depth-
// bounded AND/OR combinations of range leaves with boundaries drawn
// around the data's value range.
func randTree(rng *rand.Rand, ids []object.ID, depth int) *query.Node {
	if depth == 0 || rng.Float64() < 0.4 {
		id := ids[rng.Intn(len(ids))]
		op := query.Op(rng.Intn(5))
		v := rng.Float64()*24 - 12
		// Occasionally use a value that exists in the data exactly
		// (integers do), exercising boundary-equality paths.
		if rng.Float64() < 0.3 {
			v = float64(rng.Intn(20) - 10)
		}
		return query.Leaf(id, op, v)
	}
	l := randTree(rng, ids, depth-1)
	r := randTree(rng, ids, depth-1)
	if rng.Float64() < 0.5 {
		return query.And(l, r)
	}
	return query.Or(l, r)
}

// TestPropertyStrategiesAgree is the randomized equivalence net: random
// datasets, random region sizes, random query trees (with and without
// spatial constraints) — every strategy must produce exactly the
// brute-force answer.
func TestPropertyStrategiesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		n := 500 + rng.Intn(4000)
		regionElems := uint64(64 + rng.Intn(900))
		names := []string{"a", "b", "c"}[:1+rng.Intn(3)]
		// Mix of distributions: clustered, uniform, discrete.
		gen := func(name string, i int) float32 {
			r2 := rand.New(rand.NewSource(int64(i)*31 + int64(len(name))*17))
			switch name {
			case "a":
				return float32(i)/float32(n)*20 - 10 // ordered
			case "b":
				return float32(r2.Float64()*24 - 12) // uniform
			default:
				return float32(r2.Intn(20) - 10) // discrete with exact hits
			}
		}
		f := buildFixture(t, names, gen, n, regionElems, true, true)
		ids := make([]object.ID, len(names))
		for i := range names {
			ids[i] = object.ID(i + 1)
		}
		for qi := 0; qi < 8; qi++ {
			q := &query.Query{Root: randTree(rng, ids, 2)}
			if rng.Float64() < 0.3 {
				off := uint64(rng.Intn(n / 2))
				cnt := uint64(1 + rng.Intn(n-int(off)))
				q.SetRegion(region.New([]uint64{off}, []uint64{cnt}))
			}
			label := fmt.Sprintf("trial%d/q%d(%s)", trial, qi, q.Root)
			checkQuery(t, f, q, label)
			if t.Failed() {
				t.Fatalf("stopping at first failing query: %s", label)
			}
		}
	}
}
