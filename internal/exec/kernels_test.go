package exec

import (
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/query"
)

// Corrupt metadata can carry an element type the kernels do not know;
// the dispatchers must report it as an error rather than panicking in
// the middle of a request.
func TestScanRegionInvalidType(t *testing.T) {
	iv := query.Interval{Lo: 0, Hi: 1}
	if _, err := scanRegion(dtype.Type(200), []byte{1, 2, 3, 4}, []localRun{{Start: 0, Len: 1}}, iv, nil); err == nil {
		t.Error("scanRegion accepted an invalid element type")
	}
}

func TestProbeRegionInvalidType(t *testing.T) {
	iv := query.Interval{Lo: 0, Hi: 1}
	if _, err := probeRegion(dtype.Type(200), []byte{1, 2, 3, 4}, []uint64{0}, iv); err == nil {
		t.Error("probeRegion accepted an invalid element type")
	}
}
