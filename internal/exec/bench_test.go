package exec

import (
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/query"
)

func BenchmarkScanKernelFloat32(b *testing.B) {
	const n = 1 << 20
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i%1000) / 10
	}
	data := dtype.Bytes(vals)
	runs := []localRun{{Start: 0, Len: n}}
	iv := query.Interval{Lo: 42, Hi: 43, LoIncl: false, HiIncl: false}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var out []uint64
	for i := 0; i < b.N; i++ {
		out, _ = scanRegion(dtype.Float32, data, runs, iv, out[:0])
	}
	_ = out
}

func BenchmarkProbeKernel(b *testing.B) {
	const n = 1 << 20
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i % 100)
	}
	data := dtype.Bytes(vals)
	base := make([]uint64, 0, n/100)
	for i := uint64(0); i < n; i += 100 {
		base = append(base, i)
	}
	iv := query.Interval{Lo: -1, Hi: 50, LoIncl: false, HiIncl: false}
	hits := make([]uint64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(hits, base)
		hits, _ = probeRegion(dtype.Float32, data, hits, iv)
		hits = hits[:cap(hits)]
	}
}
