package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"pdcquery/internal/bitindex"
	"pdcquery/internal/dtype"
	"pdcquery/internal/histogram"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/selection"
	"pdcquery/internal/simio"
	"pdcquery/internal/sortstore"
	"pdcquery/internal/vclock"
)

// fixture is a miniature single-node deployment: objects imported into a
// store with per-region histograms, bitmap indexes, and a sorted replica
// of the first object.
type fixture struct {
	st      *simio.Store
	objs    map[object.ID]*object.Object
	globals map[object.ID]*histogram.Histogram
	reps    map[object.ID]*sortstore.Replica
	data    map[object.ID][]float32
	dims    []uint64
	nreg    int
}

func buildFixture(t *testing.T, names []string, gen func(name string, i int) float32,
	n int, regionElems uint64, withIndex, withSorted bool) *fixture {
	t.Helper()
	f := &fixture{
		st:      simio.New(simio.DefaultModel()),
		objs:    map[object.ID]*object.Object{},
		globals: map[object.ID]*histogram.Histogram{},
		reps:    map[object.ID]*sortstore.Replica{},
		data:    map[object.ID][]float32{},
		dims:    []uint64{uint64(n)},
	}
	for oi, name := range names {
		id := object.ID(oi + 1)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = gen(name, i)
		}
		o := &object.Object{ID: id, Name: name, Type: dtype.Float32, Dims: f.dims}
		var hists []*histogram.Histogram
		for ri, r := range region.Split1D(uint64(n), regionElems) {
			lo, hi := r.Offset[0], r.Offset[0]+r.Count[0]
			raw := dtype.Bytes(vals[lo:hi])
			key := object.ExtentKey(id, ri)
			f.st.Write(nil, key, simio.PFS, raw)
			h := histogram.BuildBytes(o.Type, raw, 64)
			mn, mx := dtype.MinMax(o.Type, raw)
			rm := object.RegionMeta{
				Index: ri, Region: r, ExtentKey: key, Tier: simio.PFS,
				Min: mn, Max: mx, Hist: h,
			}
			if withIndex {
				x := bitindex.Build(o.Type, raw, 2)
				xkey := object.IndexExtentKey(id, ri)
				f.st.Write(nil, xkey, simio.PFS, x.Encode())
				rm.IndexKey = xkey
				rm.IndexBins = len(x.Bins)
			}
			o.Regions = append(o.Regions, rm)
			hists = append(hists, h)
		}
		o.Global = histogram.MergeAll(hists)
		f.objs[id] = o
		f.globals[id] = o.Global
		f.data[id] = vals
		f.nreg = len(o.Regions)
	}
	if withSorted {
		o := f.objs[1]
		rep, err := sortstore.Build(f.st, nil, o, regionElems, simio.PFS)
		if err != nil {
			t.Fatal(err)
		}
		f.reps[1] = rep
	}
	return f
}

func (f *fixture) engine(s Strategy) (*Engine, *vclock.Account) {
	a := vclock.NewAccount()
	return &Engine{
		Store: f.st,
		Acct:  a,
		Lookup: func(id object.ID) (*object.Object, bool) {
			o, ok := f.objs[id]
			return o, ok
		},
		Global:   func(id object.ID) *histogram.Histogram { return f.globals[id] },
		Replica:  func(id object.ID) *sortstore.Replica { return f.reps[id] },
		Strategy: s,
		Cache:    NewCache(1 << 30),
	}, a
}

func (f *fixture) fullAssign() Assignment {
	a := Assignment{}
	for i := 0; i < f.nreg; i++ {
		a.Orig = append(a.Orig, i)
	}
	if rep := f.reps[1]; rep != nil {
		for i := range rep.Regions {
			a.Sorted = append(a.Sorted, i)
		}
	}
	return a
}

// truth evaluates the query tree by brute force.
func (f *fixture) truth(q *query.Query) []uint64 {
	var eval func(n *query.Node, i int) bool
	eval = func(n *query.Node, i int) bool {
		switch n.Kind {
		case query.KindLeaf:
			return query.FromLeaf(n.Op, n.Value).Contains(float64(f.data[n.Obj][i]))
		case query.KindAnd:
			return eval(n.Left, i) && eval(n.Right, i)
		case query.KindOr:
			return eval(n.Left, i) || eval(n.Right, i)
		}
		return false
	}
	var out []uint64
	for i := range f.data[1] {
		if q.Constraint != nil && !q.Constraint.ContainsCoord([]uint64{uint64(i)}) {
			continue
		}
		if eval(q.Root, i) {
			out = append(out, uint64(i))
		}
	}
	return out
}

var allStrategies = []Strategy{FullScan, Histogram, HistogramIndex, SortedHistogram}

func checkQuery(t *testing.T, f *fixture, q *query.Query, label string) {
	t.Helper()
	want := f.truth(q)
	for _, s := range allStrategies {
		e, _ := f.engine(s)
		res, err := e.Evaluate(q, f.fullAssign(), false)
		if err != nil {
			t.Fatalf("%s/%v: %v", label, s, err)
		}
		if err := res.Sel.Validate(); err != nil {
			t.Fatalf("%s/%v: invalid selection: %v", label, s, err)
		}
		if int(res.Sel.NHits) != len(want) {
			t.Errorf("%s/%v: %d hits, want %d", label, s, res.Sel.NHits, len(want))
			continue
		}
		for i, c := range res.Sel.Coords {
			if c != want[i] {
				t.Errorf("%s/%v: coord %d = %d, want %d", label, s, i, c, want[i])
				break
			}
		}
	}
}

// vpicLike generates a small multi-variable dataset with a heavy-tailed
// energy and uniform coordinates.
func vpicLike(name string, i int) float32 {
	rng := rand.New(rand.NewSource(int64(i)*7 + int64(len(name))))
	switch name {
	case "energy":
		return float32(rng.ExpFloat64() * 0.8)
	case "x":
		return float32(rng.Float64() * 330)
	case "y":
		return float32(rng.Float64()*300 - 150)
	default: // z
		return float32(rng.Float64() * 132)
	}
}

func TestSingleObjectQueriesAllStrategies(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 20000, 1500, true, true)
	for _, w := range []struct{ lo, hi float64 }{
		{2.1, 2.2}, {0.5, 0.6}, {3.5, 3.6}, {0, 10}, {-1, 0.001}, {9.5, 11},
	} {
		q := &query.Query{Root: query.Between(1, w.lo, w.hi, false, false)}
		checkQuery(t, f, q, fmt.Sprintf("energy(%g,%g)", w.lo, w.hi))
	}
}

func TestSingleSidedAndEqualityQueries(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 5000, 700, true, true)
	for _, q := range []*query.Query{
		{Root: query.Leaf(1, query.OpGT, 2.0)},
		{Root: query.Leaf(1, query.OpLE, 0.1)},
		{Root: query.Leaf(1, query.OpGE, 4.0)},
		{Root: query.Leaf(1, query.OpEQ, float64(f.data[1][42]))},
	} {
		checkQuery(t, f, q, q.Root.String())
	}
}

func TestMultiObjectQueriesAllStrategies(t *testing.T) {
	f := buildFixture(t, []string{"energy", "x", "y", "z"}, vpicLike, 12000, 1000, true, true)
	queries := []*query.Query{
		{Root: query.And(query.Leaf(1, query.OpGT, 2.0),
			query.And(query.Between(2, 100, 200, false, false),
				query.And(query.Between(3, -90, 0, false, false), query.Between(4, 0, 66, false, false))))},
		{Root: query.And(query.Leaf(1, query.OpGT, 1.3), query.Between(2, 100, 140, false, false))},
		// Most selective condition NOT on the sorted object: exercises
		// PDC-SH's fallback (the paper's Fig. 4 last-two-queries case).
		{Root: query.And(query.Leaf(1, query.OpGT, 0.1), query.Between(2, 10, 11, false, false))},
	}
	for i, q := range queries {
		checkQuery(t, f, q, fmt.Sprintf("multi%d", i))
	}
}

func TestOrQueriesAllStrategies(t *testing.T) {
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 8000, 1000, true, true)
	q := &query.Query{Root: query.Or(
		query.Leaf(1, query.OpGT, 3.0),
		query.Between(2, 5, 15, false, false))}
	checkQuery(t, f, q, "or")
	// OR with overlapping terms must dedup.
	q = &query.Query{Root: query.Or(
		query.Leaf(1, query.OpGT, 1.0),
		query.Leaf(1, query.OpGT, 2.0))}
	checkQuery(t, f, q, "or-overlap")
}

func TestRegionConstraintAllStrategies(t *testing.T) {
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 10000, 800, true, true)
	q := &query.Query{Root: query.And(query.Leaf(1, query.OpGT, 1.0), query.Between(2, 50, 250, false, false))}
	q.SetRegion(region.New([]uint64{2500}, []uint64{3000}))
	checkQuery(t, f, q, "constrained")
	// Constraint fully outside any hits.
	q2 := &query.Query{Root: query.Leaf(1, query.OpGT, 0)}
	q2.SetRegion(region.New([]uint64{0}, []uint64{1}))
	checkQuery(t, f, q2, "tiny-constraint")
}

func TestHistogramPrunesClusteredData(t *testing.T) {
	// Values increase with position, so region extrema are disjoint and a
	// narrow query must prune most regions.
	gen := func(name string, i int) float32 { return float32(i) / 100 }
	f := buildFixture(t, []string{"v"}, gen, 10000, 1000, false, false)
	q := &query.Query{Root: query.Between(1, 42.0, 43.0, false, false)}

	e, _ := f.engine(Histogram)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RegionsPruned < 8 {
		t.Errorf("pruned %d regions, want >= 8 of 10", res.Stats.RegionsPruned)
	}
	if res.Stats.RegionsEvaluated > 2 {
		t.Errorf("evaluated %d regions, want <= 2", res.Stats.RegionsEvaluated)
	}
	if int(res.Sel.NHits) != len(f.truth(q)) {
		t.Errorf("hits wrong after pruning")
	}

	// Full scan evaluates everything.
	e2, _ := f.engine(FullScan)
	res2, err := e2.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.RegionsPruned != 0 || res2.Stats.RegionsEvaluated != 10 {
		t.Errorf("full scan stats = %+v", res2.Stats)
	}
}

func TestFullScanReadsEverything(t *testing.T) {
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 10000, 1000, false, false)
	q := &query.Query{Root: query.And(query.Leaf(1, query.OpGT, 100), query.Leaf(2, query.OpGT, 1000))}
	e, a := f.engine(FullScan)
	if _, err := e.Evaluate(q, f.fullAssign(), false); err != nil {
		t.Fatal(err)
	}
	// Both objects' full data: 2 * 10000 * 4 bytes.
	if got := a.Counter("read.bytes"); got < 80000 {
		t.Errorf("full scan read %d bytes, want >= 80000", got)
	}
}

func TestIndexReadsLessThanData(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 50000, 5000, true, false)
	q := &query.Query{Root: query.Between(1, 4.0, 4.1, false, false)} // very selective
	e, a := f.engine(HistogramIndex)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexBinsRead == 0 {
		t.Error("index strategy read no bins")
	}
	dataBytes := int64(50000 * 4)
	if got := a.Counter("read.bytes"); got > dataBytes/3 {
		t.Errorf("index path read %d bytes, want << %d", got, dataBytes)
	}
	if int(res.Sel.NHits) != len(f.truth(q)) {
		t.Error("index path wrong hits")
	}
}

func TestSortedTouchesFewRegions(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 50000, 2500, false, true)
	q := &query.Query{Root: query.Leaf(1, query.OpGT, 5.0)} // far tail
	e, _ := f.engine(SortedHistogram)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SortedRegions > 2 {
		t.Errorf("sorted path read %d sorted regions, want <= 2", res.Stats.SortedRegions)
	}
	if int(res.Sel.NHits) != len(f.truth(q)) {
		t.Error("sorted path wrong hits")
	}
}

func TestValuesCollection(t *testing.T) {
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 9000, 1000, true, true)
	q := &query.Query{Root: query.And(query.Leaf(1, query.OpGT, 1.5), query.Between(2, 0, 200, false, false))}
	for _, s := range []Strategy{FullScan, Histogram, SortedHistogram} {
		e, _ := f.engine(s)
		res, err := e.Evaluate(q, f.fullAssign(), true)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Values == nil {
			t.Fatalf("%v: no values collected", s)
		}
		for _, id := range []object.ID{1, 2} {
			buf := res.Values[id]
			if len(buf) != int(res.Sel.NHits)*4 {
				t.Fatalf("%v obj%d: %d value bytes for %d hits", s, id, len(buf), res.Sel.NHits)
			}
			vals := dtype.View[float32](buf)
			for i, c := range res.Sel.Coords {
				if vals[i] != f.data[id][c] {
					t.Fatalf("%v obj%d: value[%d] = %v, want %v", s, id, i, vals[i], f.data[id][c])
				}
			}
		}
	}
}

func TestExtractValues(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 5000, 600, false, false)
	e, a := f.engine(Histogram)
	q := &query.Query{Root: query.Leaf(1, query.OpGT, 2.0)}
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := e.ExtractValues(nil, 1, res.Sel.Coords)
	if err != nil {
		t.Fatal(err)
	}
	vals := dtype.View[float32](buf)
	for i, c := range res.Sel.Coords {
		if vals[i] != f.data[1][c] {
			t.Fatalf("value[%d] = %v, want %v", i, vals[i], f.data[1][c])
		}
	}
	// The evaluation warmed the cache, so extraction must hit it.
	if a.Counter("cache.hits") == 0 {
		t.Error("ExtractValues after evaluation did not hit the cache")
	}
	if _, err := e.ExtractValues(nil, 99, nil); err == nil {
		t.Error("ExtractValues of unknown object succeeded")
	}
}

func TestPartitionedAssignmentsUnionToFullResult(t *testing.T) {
	// The parallel invariant: splitting regions across N servers and
	// merging partial selections equals the single-server result.
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 16000, 1000, true, true)
	q := &query.Query{Root: query.And(query.Leaf(1, query.OpGT, 1.0), query.Between(2, 50, 300, false, false))}
	want := f.truth(q)
	for _, s := range allStrategies {
		for _, nsrv := range []int{2, 3, 7} {
			var parts []*selection.Selection
			for srv := 0; srv < nsrv; srv++ {
				var assign Assignment
				for r := srv; r < f.nreg; r += nsrv {
					assign.Orig = append(assign.Orig, r)
				}
				if rep := f.reps[1]; rep != nil {
					for r := srv; r < len(rep.Regions); r += nsrv {
						assign.Sorted = append(assign.Sorted, r)
					}
				}
				e, _ := f.engine(s)
				res, err := e.Evaluate(q, assign, false)
				if err != nil {
					t.Fatalf("%v srv%d: %v", s, srv, err)
				}
				parts = append(parts, res.Sel)
			}
			merged := selection.MergeAll(parts)
			if int(merged.NHits) != len(want) {
				t.Errorf("%v nsrv=%d: merged %d hits, want %d", s, nsrv, merged.NHits, len(want))
				continue
			}
			for i, c := range merged.Coords {
				if c != want[i] {
					t.Errorf("%v nsrv=%d: coord mismatch at %d", s, nsrv, i)
					break
				}
			}
		}
	}
}

func TestAndShortCircuit(t *testing.T) {
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 8000, 1000, false, false)
	// First condition (after ordering) can never match: x > 1e6.
	q := &query.Query{Root: query.And(query.Leaf(2, query.OpGT, 1e6), query.Leaf(1, query.OpGT, 0))}
	e, _ := f.engine(Histogram)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits != 0 {
		t.Errorf("impossible query returned %d hits", res.Sel.NHits)
	}
	// All regions pruned by x's extrema: nothing scanned, nothing probed.
	if res.Stats.ElementsScanned != 0 || res.Stats.Probes != 0 {
		t.Errorf("short circuit stats = %+v", res.Stats)
	}
}

func TestContradictoryQueryIsFree(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 4000, 1000, false, false)
	q := &query.Query{Root: query.And(query.Leaf(1, query.OpGT, 5), query.Leaf(1, query.OpLT, 2))}
	e, a := f.engine(Histogram)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits != 0 {
		t.Errorf("contradiction returned %d hits", res.Sel.NHits)
	}
	if a.Counter("read.bytes") != 0 {
		t.Errorf("contradiction read %d bytes", a.Counter("read.bytes"))
	}
}

func TestEvaluateErrors(t *testing.T) {
	f := buildFixture(t, []string{"energy"}, vpicLike, 1000, 500, false, false)
	e, _ := f.engine(Histogram)
	// Unknown object.
	q := &query.Query{Root: query.Leaf(99, query.OpGT, 0)}
	if _, err := e.Evaluate(q, f.fullAssign(), false); err == nil {
		t.Error("unknown object accepted")
	}
	// Missing extent surfaces as an error.
	f.st.Delete(object.ExtentKey(1, 0))
	q = &query.Query{Root: query.Leaf(1, query.OpGT, -100)}
	if _, err := e.Evaluate(q, f.fullAssign(), false); err == nil {
		t.Error("missing extent not reported")
	}
}

func TestStrategyParseAndString(t *testing.T) {
	for _, s := range allStrategies {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestHistogramCostBelowFullScan(t *testing.T) {
	// The headline claim: PDC-H evaluates a selective query cheaper than
	// PDC-F in modeled time.
	gen := func(name string, i int) float32 { return float32(i) / 100 }
	f := buildFixture(t, []string{"v"}, gen, 100000, 5000, false, false)
	q := &query.Query{Root: query.Between(1, 10, 11, false, false)}

	eh, ah := f.engine(Histogram)
	if _, err := eh.Evaluate(q, f.fullAssign(), false); err != nil {
		t.Fatal(err)
	}
	ef, af := f.engine(FullScan)
	if _, err := ef.Evaluate(q, f.fullAssign(), false); err != nil {
		t.Fatal(err)
	}
	// The histogram strategy must touch a small fraction of the bytes the
	// full scan reads (elapsed ratios depend on the latency/bandwidth
	// regime, which the bench harness calibrates; here we assert the
	// underlying driver).
	hBytes, fBytes := ah.Counter("read.bytes"), af.Counter("read.bytes")
	if hBytes*5 > fBytes {
		t.Errorf("PDC-H read %d bytes, PDC-F %d; want at least 5x reduction", hBytes, fBytes)
	}
	if ah.Cost().Total() > af.Cost().Total() {
		t.Errorf("PDC-H cost %v above PDC-F %v", ah.Cost().Total(), af.Cost().Total())
	}
}

func TestIndexStrategyWithoutIndexesFallsBack(t *testing.T) {
	// PDC-HI on a deployment with no indexes must degrade to scans and
	// stay correct.
	f := buildFixture(t, []string{"energy", "x"}, vpicLike, 8000, 1000, false, false)
	q := &query.Query{Root: query.And(
		query.Between(1, 1.0, 2.0, false, false),
		query.Between(2, 50, 250, false, false))}
	want := f.truth(q)
	e, _ := f.engine(HistogramIndex)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Sel.NHits) != len(want) {
		t.Errorf("fallback hits = %d, want %d", res.Sel.NHits, len(want))
	}
	if res.Stats.IndexBinsRead != 0 {
		t.Errorf("read %d index bins without any index", res.Stats.IndexBinsRead)
	}
	if res.Stats.ElementsScanned == 0 {
		t.Error("fallback did not scan")
	}
}

func TestIndexStrategyWithPartialIndexes(t *testing.T) {
	// Some regions indexed, some not (e.g. freshly written data whose
	// index build lags): PDC-HI mixes index lookups and scans per region.
	f := buildFixture(t, []string{"energy"}, vpicLike, 12000, 1000, true, false)
	o := f.objs[1]
	for i := 0; i < len(o.Regions); i += 2 {
		o.Regions[i].IndexKey = ""
		o.Regions[i].IndexBins = 0
		o.Regions[i].IndexDir = nil
	}
	q := &query.Query{Root: query.Between(1, 0.5, 1.5, false, false)}
	want := f.truth(q)
	e, _ := f.engine(HistogramIndex)
	res, err := e.Evaluate(q, f.fullAssign(), false)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Sel.NHits) != len(want) {
		t.Errorf("partial-index hits = %d, want %d", res.Sel.NHits, len(want))
	}
	if res.Stats.IndexBinsRead == 0 || res.Stats.ElementsScanned == 0 {
		t.Errorf("expected mixed evaluation, stats = %+v", res.Stats)
	}
}
