package exec

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(100)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache returned a hit")
	}
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || string(got) != "hello" {
		t.Errorf("Get = %q, %v", got, ok)
	}
	if c.Used() != 5 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(10)
	c.Put("a", make([]byte, 4))
	c.Put("b", make([]byte, 4))
	// Touch a so b becomes LRU.
	c.Get("a")
	c.Put("c", make([]byte, 4)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("new entry missing")
	}
	if c.Used() > 10 {
		t.Errorf("over capacity: %d", c.Used())
	}
}

func TestCacheOversizedEntryDropped(t *testing.T) {
	c := NewCache(10)
	c.Put("big", make([]byte, 11))
	if _, ok := c.Get("big"); ok {
		t.Error("oversized entry cached")
	}
	if c.Used() != 0 {
		t.Errorf("used = %d", c.Used())
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c := NewCache(100)
	c.Put("k", make([]byte, 10))
	c.Put("k", make([]byte, 30))
	if c.Used() != 30 || c.Len() != 1 {
		t.Errorf("after replace: used=%d len=%d", c.Used(), c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache(100)
	c.Put("a", make([]byte, 5))
	c.Clear()
	if c.Used() != 0 || c.Len() != 0 {
		t.Error("Clear left state")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived Clear")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				c.Put(key, make([]byte, 64))
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 1<<16 {
		t.Errorf("over capacity after concurrent use: %d", c.Used())
	}
}

// TestCacheGetZeroCopy pins the immutable-extent design: Get returns
// the same shared view Put stored — no defensive copy, no allocation.
// The old copy-on-Get guarded against callers scratching in returned
// buffers; that hazard is now excluded statically (ROBytes is
// //lint:immutable and aliasguard rejects writes through it), so a hit
// must be the identical backing array.
func TestCacheGetZeroCopy(t *testing.T) {
	c := NewCache(100)
	put := []byte("pristine")
	c.Put("region", put)
	got, ok := c.Get("region")
	if !ok {
		t.Fatal("miss on just-inserted key")
	}
	if len(got) != len(put) || &got[0] != &put[0] {
		t.Fatal("Get copied the cached view; hits must be zero-copy shares of the stored extent")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get("region"); !ok {
			t.Fatal("miss")
		}
	}); allocs != 0 {
		t.Fatalf("Get allocated %.1f times per hit, want 0", allocs)
	}
}

func TestCacheTouch(t *testing.T) {
	c := NewCache(10)
	if c.Touch("a") {
		t.Error("Touch on empty cache reported a hit")
	}
	c.Put("a", make([]byte, 4))
	c.Put("b", make([]byte, 4))
	if !c.Touch("a") {
		t.Error("Touch missed a resident key")
	}
	c.Put("c", make([]byte, 4)) // evicts b: a was touched more recently
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry survived; Touch did not refresh recency")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("touched entry evicted")
	}
	var nilCache *Cache
	if nilCache.Touch("a") {
		t.Error("nil cache Touch reported a hit")
	}
}
