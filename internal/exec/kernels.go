package exec

import (
	"fmt"

	"pdcquery/internal/dtype"
	"pdcquery/internal/query"
)

// localRun is a contiguous run of local element indices [Start, Start+Len)
// within one region buffer.
type localRun struct {
	Start uint64
	Len   uint64
}

// scanTyped appends the local indices within the given runs whose value
// satisfies the interval.
func scanTyped[E dtype.Native](vals []E, runs []localRun, iv query.Interval, out []uint64) []uint64 {
	for _, run := range runs {
		end := run.Start + run.Len
		if end > uint64(len(vals)) {
			end = uint64(len(vals))
		}
		for i := run.Start; i < end; i++ {
			if iv.Contains(float64(vals[i])) {
				out = append(out, i)
			}
		}
	}
	return out
}

// scanRegion dispatches scanTyped on the region's element type. An
// unknown type means corrupt metadata reached the evaluation engine; it
// is reported as an error, not a panic, so one bad request cannot take
// the server down.
func scanRegion(t dtype.Type, data []byte, runs []localRun, iv query.Interval, out []uint64) ([]uint64, error) {
	switch t {
	case dtype.Float32:
		return scanTyped(dtype.View[float32](data), runs, iv, out), nil
	case dtype.Float64:
		return scanTyped(dtype.View[float64](data), runs, iv, out), nil
	case dtype.Int8:
		return scanTyped(dtype.View[int8](data), runs, iv, out), nil
	case dtype.Int16:
		return scanTyped(dtype.View[int16](data), runs, iv, out), nil
	case dtype.Int32:
		return scanTyped(dtype.View[int32](data), runs, iv, out), nil
	case dtype.Int64:
		return scanTyped(dtype.View[int64](data), runs, iv, out), nil
	case dtype.Uint8:
		return scanTyped(dtype.View[uint8](data), runs, iv, out), nil
	case dtype.Uint16:
		return scanTyped(dtype.View[uint16](data), runs, iv, out), nil
	case dtype.Uint32:
		return scanTyped(dtype.View[uint32](data), runs, iv, out), nil
	case dtype.Uint64:
		return scanTyped(dtype.View[uint64](data), runs, iv, out), nil
	}
	return nil, fmt.Errorf("exec: scan on invalid element type %v", t)
}

// probeTyped filters local hit indices in place, keeping those whose value
// in vals satisfies the interval (the paper's AND refinement: only already
// selected locations are evaluated for subsequent conditions).
func probeTyped[E dtype.Native](vals []E, hits []uint64, iv query.Interval) []uint64 {
	out := hits[:0]
	for _, i := range hits {
		if iv.Contains(float64(vals[i])) {
			out = append(out, i)
		}
	}
	return out
}

// probeRegion dispatches probeTyped on the region's element type; like
// scanRegion it reports unknown types as errors.
func probeRegion(t dtype.Type, data []byte, hits []uint64, iv query.Interval) ([]uint64, error) {
	switch t {
	case dtype.Float32:
		return probeTyped(dtype.View[float32](data), hits, iv), nil
	case dtype.Float64:
		return probeTyped(dtype.View[float64](data), hits, iv), nil
	case dtype.Int8:
		return probeTyped(dtype.View[int8](data), hits, iv), nil
	case dtype.Int16:
		return probeTyped(dtype.View[int16](data), hits, iv), nil
	case dtype.Int32:
		return probeTyped(dtype.View[int32](data), hits, iv), nil
	case dtype.Int64:
		return probeTyped(dtype.View[int64](data), hits, iv), nil
	case dtype.Uint8:
		return probeTyped(dtype.View[uint8](data), hits, iv), nil
	case dtype.Uint16:
		return probeTyped(dtype.View[uint16](data), hits, iv), nil
	case dtype.Uint32:
		return probeTyped(dtype.View[uint32](data), hits, iv), nil
	case dtype.Uint64:
		return probeTyped(dtype.View[uint64](data), hits, iv), nil
	}
	return nil, fmt.Errorf("exec: probe on invalid element type %v", t)
}

// filterRuns keeps the sorted local indices that fall inside the sorted,
// disjoint runs (used to apply a spatial constraint to index results).
func filterRuns(hits []uint64, runs []localRun) []uint64 {
	out := hits[:0]
	r := 0
	for _, h := range hits {
		for r < len(runs) && runs[r].Start+runs[r].Len <= h {
			r++
		}
		if r == len(runs) {
			break
		}
		if h >= runs[r].Start {
			out = append(out, h)
		}
	}
	return out
}
