package core

import (
	"bytes"
	"strings"
	"testing"

	"pdcquery/internal/exec"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/workload"
)

// TestRecorderWorkerCountDeterminism extends the worker-count contract
// (TestWorkerCountDeterminism: selections, costs, traces) to the flight
// recorder: every server's encoded event stream — ordering, Seq
// numbers, vclock stamps, and the cache-traffic events aggregated at
// the merge barriers — must be byte-identical whether region evaluation
// runs serially or on 1, 4, or 16 workers. This is the regression gate
// for recording from inside pooled region tasks, where event order
// would depend on goroutine scheduling.
func TestRecorderWorkerCountDeterminism(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Histogram, exec.SortedHistogram} {
		t.Run(strat.String(), func(t *testing.T) {
			run := func(workers int) [][]byte {
				d, ids := vpicDeployment(t, 30000, Options{
					Servers: 4, Strategy: strat, RegionBytes: 8 << 10,
					BuildIndex: true, Workers: workers,
				})
				for _, q := range workload.SingleObjectQueries(ids["Energy"])[:4] {
					if _, err := d.Client().Run(q); err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
				}
				streams := make([][]byte, 0, len(d.Servers()))
				for _, srv := range d.Servers() {
					events, total := srv.Recorder().SnapshotTotal()
					if total == 0 {
						t.Fatalf("workers=%d: server recorded no events", workers)
					}
					streams = append(streams, telemetry.EncodeEvents(events, total))
				}
				return streams
			}
			base := run(0)
			// The gate only means something if the contested events are in
			// the stream: region evaluation must have produced cache
			// traffic (recorded via the merge-barrier aggregation path).
			var cacheEvents int
			for _, enc := range base {
				events, _, err := telemetry.DecodeEvents(enc)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range events {
					switch e.Kind {
					case telemetry.EvCacheHit, telemetry.EvCacheMiss, telemetry.EvCacheEvict:
						cacheEvents++
					}
				}
			}
			if cacheEvents == 0 {
				t.Fatal("no cache events in the recorded streams: the workload does not exercise the aggregation path")
			}
			for _, workers := range []int{1, 4, 16} {
				got := run(workers)
				for i := range base {
					if !bytes.Equal(got[i], base[i]) {
						t.Errorf("workers=%d: server %d event stream differs from serial run:\n--- serial\n%s\n--- parallel\n%s",
							workers, i, renderStream(t, base[i]), renderStream(t, got[i]))
					}
				}
			}
		})
	}
}

// renderStream decodes an encoded event stream back to the /debug/events
// text form for failure diffs.
func renderStream(t *testing.T, enc []byte) string {
	t.Helper()
	events, total, err := telemetry.DecodeEvents(enc)
	if err != nil {
		t.Fatalf("decode event stream: %v", err)
	}
	var sb strings.Builder
	_ = telemetry.WriteEvents(&sb, events, total)
	return sb.String()
}
