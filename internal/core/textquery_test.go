package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/plan"
	"pdcquery/internal/qlang"
	"pdcquery/internal/query"
	"pdcquery/internal/workload"
)

// textDeployment imports VPIC data with every access path available:
// region histograms, bitmap indexes, and a sorted replica on Energy —
// so the planner has real choices to make.
func textDeployment(t *testing.T, n int) (*Deployment, map[string]object.ID) {
	t.Helper()
	d := NewDeployment(Options{Servers: 4, Strategy: exec.Histogram, RegionBytes: 8 << 10, BuildIndex: true})
	c := d.CreateContainer("vpic")
	v := workload.GenerateVPIC(n, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = o.ID
	}
	if err := d.BuildSortedReplica(ids["Energy"]); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, ids
}

// lowerText resolves a statement against the deployment's metadata the
// same way client and server do.
func lowerText(t *testing.T, d *Deployment, text string) (*qlang.Query, *query.Query) {
	t.Helper()
	parsed, err := qlang.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	low, err := parsed.Lower(func(name string) (object.ID, bool) {
		o, ok := d.Meta().GetByName(name)
		if !ok {
			return 0, false
		}
		return o.ID, true
	})
	if err != nil {
		t.Fatalf("lower %q: %v", text, err)
	}
	return parsed, low.Query
}

// textCorpus is the planner-vs-oracle corpus: single-object, range,
// multi-object, disjunctive, and value-first shapes.
var textCorpus = []string{
	"select ids where Energy > 2",
	"select ids where Energy between 1 and 2.5",
	"select ids where Energy > 2 and x < 100",
	"select ids where Energy < 0.5 or Energy > 3",
	"select ids where 2 < Energy and Energy <= 3.5",
	"select ids where x >= 50 and x < 250 and Energy > 1",
}

// TestTextQueryPlannerMatchesOracle is the corpus property test: for
// every statement, the cost-chosen plan and every forcing produce a
// selection byte-identical to the brute-force ground truth. Plans may
// change cost, never results.
func TestTextQueryPlannerMatchesOracle(t *testing.T) {
	d, _ := textDeployment(t, 30000)
	for _, text := range textCorpus {
		_, q := lowerText(t, d, text)
		want, err := d.GroundTruth(q)
		if err != nil {
			t.Fatalf("truth %q: %v", text, err)
		}
		wantBytes := want.Encode()
		for _, force := range []plan.Force{plan.ForceAuto, plan.ForceScan, plan.ForceBitmap, plan.ForceSorted} {
			res, err := d.Client().RunText(text, force)
			if err != nil {
				t.Fatalf("%q force=%v: %v", text, force, err)
			}
			if !bytes.Equal(res.Sel.Encode(), wantBytes) {
				t.Errorf("%q force=%v: selection differs from oracle (%d hits, want %d)",
					text, force, res.Sel.NHits, want.NHits)
			}
		}
	}
}

func TestTextQueryCountProjection(t *testing.T) {
	d, _ := textDeployment(t, 20000)
	text := "select count where Energy > 2 and x < 150"
	_, q := lowerText(t, d, text)
	want, err := d.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Client().RunText(text, plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits != want.NHits {
		t.Errorf("count = %d, want %d", res.Sel.NHits, want.NHits)
	}
	if !res.Sel.CountOnly || res.Sel.Coords != nil {
		t.Error("count projection returned coordinates")
	}
	if res.Info.Elapsed.Total() <= 0 {
		t.Error("no modeled elapsed time")
	}
}

func TestTextQueryHistProjection(t *testing.T) {
	d, _ := textDeployment(t, 20000)
	text := "select hist(x, 32) where Energy > 1.5"
	_, q := lowerText(t, d, text)
	want, err := d.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	var scanEnc, bitmapEnc []byte
	var min, max float64
	for i, force := range []plan.Force{plan.ForceAuto, plan.ForceScan, plan.ForceBitmap, plan.ForceSorted} {
		res, err := d.Client().RunText(text, force)
		if err != nil {
			t.Fatalf("force=%v: %v", force, err)
		}
		if res.Hist == nil {
			t.Fatalf("force=%v: no histogram", force)
		}
		if res.Hist.Total != want.NHits {
			t.Errorf("force=%v: hist total %d, want %d", force, res.Hist.Total, want.NHits)
		}
		// The matching value multiset is identical for every forcing, so
		// the exact extrema must agree. (The merged grid itself can vary
		// with the per-server partition: the sorted replica splits work
		// differently than the base regions.)
		if i == 0 {
			min, max = res.Hist.Min, res.Hist.Max
		} else if res.Hist.Min != min || res.Hist.Max != max {
			t.Errorf("force=%v: extrema %g..%g, want %g..%g", force, res.Hist.Min, res.Hist.Max, min, max)
		}
		switch force {
		case plan.ForceScan:
			scanEnc = res.Hist.Encode()
		case plan.ForceBitmap:
			bitmapEnc = res.Hist.Encode()
		}
	}
	// Scan and bitmap run over the same per-server partition, so their
	// merged histograms are byte-identical.
	if !bytes.Equal(scanEnc, bitmapEnc) {
		t.Error("scan and bitmap forcings produced different histograms")
	}
}

func TestTextQueryTagGating(t *testing.T) {
	d, ids := textDeployment(t, 10000)
	if err := d.Meta().AddTag(ids["Energy"], "run", "vpic-7"); err != nil {
		t.Fatal(err)
	}
	base, err := d.Client().RunText("select count where Energy > 2", plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	// Matching tag: same answer as the untagged query.
	tagged, err := d.Client().RunText(`select count where Energy > 2 and tag run = "vpic-7"`, plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Sel.NHits != base.Sel.NHits {
		t.Errorf("matching tag: %d hits, want %d", tagged.Sel.NHits, base.Sel.NHits)
	}
	// Non-matching tag: the queried object is outside the tagged set.
	none, err := d.Client().RunText(`select count where Energy > 2 and tag run = "other"`, plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if none.Sel.NHits != 0 {
		t.Errorf("non-matching tag: %d hits, want 0", none.Sel.NHits)
	}
}

func TestTextQueryExplain(t *testing.T) {
	d, _ := textDeployment(t, 10000)
	// Plain EXPLAIN: plan text, no execution.
	res, err := d.Client().RunText("explain select count where Energy > 2 and x < 100", plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel != nil {
		t.Error("plain EXPLAIN must not execute")
	}
	for _, want := range []string{"plan:", "conjunct 0:", "drive", "est rows", "modeled cost"} {
		if !strings.Contains(res.Explain, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, res.Explain)
		}
	}
	// EXPLAIN ANALYZE: executes with tracing and reports actual rows.
	res, err = d.Client().RunText("explain analyze select count where Energy > 2 and x < 100", plan.ForceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel == nil {
		t.Fatal("EXPLAIN ANALYZE must execute")
	}
	if !strings.Contains(res.Explain, "actual in") {
		t.Errorf("EXPLAIN ANALYZE output missing actuals:\n%s", res.Explain)
	}
}

func TestTextQueryPlanCache(t *testing.T) {
	d, ids := textDeployment(t, 10000)
	text := "select count where Energy > 2"
	if _, err := d.Client().RunText(text, plan.ForceAuto); err != nil {
		t.Fatal(err)
	}
	var hits0, misses0 uint64
	for _, s := range d.Servers() {
		h, m := s.PlanCacheStats()
		hits0 += h
		misses0 += m
	}
	if misses0 == 0 {
		t.Fatal("first run must miss the plan cache")
	}
	if _, err := d.Client().RunText(text, plan.ForceAuto); err != nil {
		t.Fatal(err)
	}
	var hits1, misses1 uint64
	for _, s := range d.Servers() {
		h, m := s.PlanCacheStats()
		hits1 += h
		misses1 += m
	}
	if hits1 <= hits0 {
		t.Error("repeat run must hit the plan cache")
	}
	if misses1 != misses0 {
		t.Errorf("repeat run missed: %d -> %d", misses0, misses1)
	}
	// A metadata mutation bumps the generation and invalidates the plan.
	if err := d.Meta().AddTag(ids["Energy"], "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Client().RunText(text, plan.ForceAuto); err != nil {
		t.Fatal(err)
	}
	var misses2 uint64
	for _, s := range d.Servers() {
		_, m := s.PlanCacheStats()
		misses2 += m
	}
	if misses2 <= misses1 {
		t.Error("metadata mutation must invalidate cached plans")
	}
}

// TestPlanBuildDeterministic pins the planner's purity: rebuilding the
// same statement against the same metadata snapshot yields a deeply
// equal plan, every time, for every forcing.
func TestPlanBuildDeterministic(t *testing.T) {
	d, _ := textDeployment(t, 15000)
	for _, text := range textCorpus {
		_, q := lowerText(t, d, text)
		for _, force := range []plan.Force{plan.ForceAuto, plan.ForceScan, plan.ForceBitmap, plan.ForceSorted} {
			first, err := plan.Build(d.Meta(), q, force)
			if err != nil {
				t.Fatalf("%q force=%v: %v", text, force, err)
			}
			for i := 0; i < 5; i++ {
				again, err := plan.Build(d.Meta(), q, force)
				if err != nil {
					t.Fatalf("%q force=%v: %v", text, force, err)
				}
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("%q force=%v: plan differs across rebuilds", text, force)
				}
			}
		}
	}
}

// TestPlanCostBasedChoosesCheaper sanity-checks the cost model: the
// auto plan's modeled cost never exceeds any forcing's.
func TestPlanCostBasedChoosesCheaper(t *testing.T) {
	d, _ := textDeployment(t, 15000)
	for _, text := range textCorpus {
		_, q := lowerText(t, d, text)
		auto, err := plan.Build(d.Meta(), q, plan.ForceAuto)
		if err != nil {
			t.Fatal(err)
		}
		for _, force := range []plan.Force{plan.ForceScan, plan.ForceBitmap, plan.ForceSorted} {
			forced, err := plan.Build(d.Meta(), q, force)
			if err != nil {
				t.Fatal(err)
			}
			if auto.CostNs > forced.CostNs+1e-9 {
				t.Errorf("%q: auto cost %.0f ns exceeds force=%v cost %.0f ns",
					text, auto.CostNs, force, forced.CostNs)
			}
		}
	}
}

func TestTextQueryErrors(t *testing.T) {
	d, _ := textDeployment(t, 5000)
	for _, c := range []struct{ text, want string }{
		{"select count where Nope > 1", "unknown column"},
		{"select count where Energy >", "expected comparison value"},
		{"count where Energy > 1", `expected "select"`},
	} {
		if _, err := d.Client().RunText(c.text, plan.ForceAuto); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("RunText(%q) error = %v, want containing %q", c.text, err, c.want)
		}
	}
}
