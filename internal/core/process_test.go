package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	osexec "os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/selection"
	"pdcquery/internal/workload"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// serverBinary builds cmd/pdc-server once per test run and returns the
// path. Tests that need the real multi-process cluster skip when the
// toolchain cannot build it (e.g. a stripped-down environment).
func serverBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pdc-bin-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = dir + "/pdc-server"
		cmd := osexec.Command("go", "build", "-o", buildBin, "pdcquery/cmd/pdc-server")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build pdc-server: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build pdc-server: %v", buildErr)
	}
	return buildBin
}

// processSource builds the import source and oracle for process tests.
func processSource(t *testing.T, particles int) (*Deployment, []*query.Query, []*selection.Selection) {
	t.Helper()
	d := NewDeployment(Options{Servers: 2, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	c := d.CreateContainer("process-e2e")
	v := workload.GenerateVPIC(particles, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(particles)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			t.Fatalf("import %s: %v", name, err)
		}
		ids[name] = o.ID
	}
	queries := workload.SingleObjectQueries(ids["Energy"])
	truths := make([]*selection.Selection, len(queries))
	for i, q := range queries {
		sel, err := d.GroundTruth(q)
		if err != nil {
			t.Fatalf("ground truth %d: %v", i, err)
		}
		truths[i] = sel
	}
	t.Cleanup(func() { _ = d.Close() })
	return d, queries, truths
}

// TestProcessDeployment is the full multi-process story: a real catalog
// process and three real pdc-server member processes over TCP; import,
// byte-identical corpus, SIGKILL failover, replacement join, and a
// strict /metrics parse.
func TestProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster skipped in -short")
	}
	bin := serverBinary(t)
	src, queries, truths := processSource(t, 4000)

	p, err := StartProcessDeployment(ProcessOptions{
		BinPath: bin, Members: 3, R: 2, Seed: 42, Metrics: true,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer p.Close()

	s, err := p.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	if err := s.Import(src); err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify: %v", err)
	}
	corpus := func(stage string) {
		for i, q := range queries {
			out, err := s.Run(q)
			if err != nil {
				t.Fatalf("%s: query %d: %v", stage, i, err)
			}
			if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
				t.Fatalf("%s: query %d: differs from oracle", stage, i)
			}
		}
	}
	corpus("baseline")

	// SIGKILL one member mid-query: the kill races the corpus below, so
	// some queries see the dying member's connection drop. Answers must
	// stay byte-identical while the catalog fails over to the replicas.
	victim := p.MemberAddrs()[0]
	killDone := make(chan error, 1)
	go func() { killDone <- p.Kill(victim) }()
	corpus("during kill")
	if err := <-killDone; err != nil {
		t.Fatalf("kill: %v", err)
	}
	corpus("after kill")
	if err := p.WaitMembers(2, 15*time.Second); err != nil {
		t.Fatalf("settle after kill: %v", err)
	}

	// A replacement joins and pulls its regions from the survivors.
	if _, err := p.Spawn(); err != nil {
		t.Fatalf("replacement: %v", err)
	}
	if err := p.WaitMembers(3, 15*time.Second); err != nil {
		t.Fatalf("settle after join: %v", err)
	}
	s.Invalidate()
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify after replacement: %v", err)
	}
	corpus("after replacement")

	// Strict metrics check: the catalog scrape must expose the cluster
	// gauges and the membership counters this run produced.
	body := httpGet(t, "http://"+p.MetricsAddr("catalog")+"/metrics")
	for _, want := range []string{"cluster_members 3", "cluster_member_join", "cluster_member_down"} {
		if !strings.Contains(body, want) {
			t.Errorf("catalog /metrics missing %q:\n%s", want, body)
		}
	}
	// A member scrape carries the ingest/transfer counters.
	mAddr := p.MetricsAddr(p.MemberAddrs()[0])
	if mAddr == "" {
		t.Fatal("member has no metrics address")
	}
	mBody := httpGet(t, "http://"+mAddr+"/metrics")
	if !strings.Contains(mBody, "ingest_extents") {
		t.Errorf("member /metrics missing ingest_extents:\n%s", mBody)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}

// TestProcessDrain retires a member process gracefully: its regions
// migrate off, the process exits on its own, and the survivors answer
// the corpus byte-identically.
func TestProcessDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster skipped in -short")
	}
	bin := serverBinary(t)
	src, queries, truths := processSource(t, 3000)

	p, err := StartProcessDeployment(ProcessOptions{BinPath: bin, Members: 3, R: 2, Seed: 42})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer p.Close()
	s, err := p.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	if err := s.Import(src); err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := p.Drain(p.MemberAddrs()[1], 15*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s.Invalidate()
	if err := s.Verify(src); err != nil {
		t.Fatalf("verify after drain: %v", err)
	}
	for i, q := range queries {
		out, err := s.Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !bytes.Equal(out.Sel.Encode(), truths[i].Encode()) {
			t.Fatalf("query %d: differs from oracle after drain", i)
		}
	}
}
