// Package core assembles the PDC-Query system: a storage substrate, a
// metadata service, N query servers, and a client, wired over in-process
// pipes or TCP. It is the paper's deployment — "one PDC server per
// compute node" — in library form, and the entry point the examples,
// benchmarks, and command-line tools use.
//
// Lifecycle: create a Deployment, import objects (regions are written to
// the simulated PFS with per-region histograms, optional bitmap indexes,
// and optional sorted replicas), then Start it and query through
// Client(). Strategy, server count, and cost model are configurable per
// experiment run.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pdcquery/internal/bitindex"
	"pdcquery/internal/client"
	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/histogram"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/selection"
	"pdcquery/internal/server"
	"pdcquery/internal/simio"
	"pdcquery/internal/sortstore"
	"pdcquery/internal/transport"
	"pdcquery/internal/vclock"
)

// Options configures a deployment.
type Options struct {
	// Servers is the number of PDC server processes (64 in most of the
	// paper's experiments; 32–512 in Fig. 6).
	Servers int
	// Strategy is the initial query evaluation strategy.
	Strategy exec.Strategy
	// RegionBytes is the region partition size (the paper sweeps 4 MB to
	// 128 MB). Zero defaults to 4 MB.
	RegionBytes int64
	// HistBins is the per-region histogram resolution (50–100 in the
	// paper). Zero defaults to histogram.DefaultBins.
	HistBins int
	// BuildIndex builds a per-region bitmap index for every imported
	// object (the PDC-HI prerequisite).
	BuildIndex bool
	// IndexPrecision is the FastBit-style decimal precision (default 2).
	IndexPrecision int
	// CacheBytes bounds each server's region cache (default 1 GiB; the
	// paper used 64 GB per server).
	CacheBytes int64
	// Model overrides the storage cost model (DefaultModel if zero).
	Model *simio.Model
	// TCP runs servers behind real TCP loopback connections instead of
	// in-process pipes.
	TCP bool
	// DisableHistograms skips per-region/global histogram construction
	// (ablation: min/max-only metadata remains).
	DisableHistograms bool
	// WireScale scales the modeled interconnect latency (scaled
	// deployments shrink it with their storage latencies; 0 means 1.0).
	WireScale float64
	// Workers sets each server's region-parallel worker count. Zero keeps
	// the serial engine (results are byte-identical either way; see
	// internal/sched).
	Workers int
	// QueueDepth bounds each server's admission queue (0 means
	// server.DefaultQueueDepth). Requests beyond it get busy replies that
	// the client retries with backoff.
	QueueDepth int
	// WrapConn, when set, wraps each client-side connection at Start and
	// on every redial — the seam fault injection uses to interpose on the
	// transport (see internal/fault).
	WrapConn func(srv int, c transport.Conn) transport.Conn
	// Redial enables the client's reconnection path: a connection lost
	// mid-call is re-established against the same server rank (a fresh
	// serve session) and the in-flight request is resent. Off by default
	// so existing single-connection semantics are unchanged.
	Redial bool
	// CallTimeout bounds each client call in wall-clock time (0 = none);
	// see client.SetCallTimeout. The defense against a wedged server.
	CallTimeout time.Duration
}

// Deployment is a running PDC-Query system.
type Deployment struct {
	opts     Options
	store    *simio.Store
	meta     *metadata.Service
	replicas map[object.ID]*sortstore.Replica

	importAcct *vclock.Account

	cli     *client.Client
	wg      sync.WaitGroup
	started bool

	// mu guards servers and listeners: after Start, RestartServer swaps
	// server instances while accept loops and the redial path resolve
	// them concurrently.
	mu        sync.Mutex
	servers   []*server.Server
	listeners []*transport.Listener // per-server, TCP mode only
}

// NewDeployment creates an empty deployment (no servers running yet).
func NewDeployment(opts Options) *Deployment {
	if opts.Servers <= 0 {
		opts.Servers = 1
	}
	if opts.RegionBytes <= 0 {
		opts.RegionBytes = 4 << 20
	}
	if opts.HistBins <= 0 {
		opts.HistBins = histogram.DefaultBins
	}
	if opts.IndexPrecision <= 0 {
		opts.IndexPrecision = bitindex.DefaultPrecision
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 1 << 30
	}
	model := simio.DefaultModel()
	if opts.Model != nil {
		model = *opts.Model
	}
	// Per-read costs are uncontended; the client applies the aggregate
	// shared-backend floor per query instead (a static division by the
	// server count would penalize idle servers on selective queries).
	model.Streams = 1
	return &Deployment{
		opts:       opts,
		store:      simio.New(model),
		meta:       metadata.NewService(),
		replicas:   make(map[object.ID]*sortstore.Replica),
		importAcct: vclock.NewAccount(),
	}
}

// Store exposes the storage substrate (for experiments and tools).
func (d *Deployment) Store() *simio.Store { return d.store }

// SetWrapConn installs Options.WrapConn after construction. Must be
// called before Start; the fault harness uses it to arm the transport
// seam only after its oracle pass.
func (d *Deployment) SetWrapConn(f func(srv int, c transport.Conn) transport.Conn) {
	d.opts.WrapConn = f
}

// Meta exposes the metadata service.
func (d *Deployment) Meta() *metadata.Service { return d.meta }

// Replicas exposes the sorted-replica registry (used by standalone
// server daemons that reuse the import pipeline). The map is a copy:
// deleting or replacing entries in it must not detach replicas from
// the deployment itself.
func (d *Deployment) Replicas() map[object.ID]*sortstore.Replica {
	out := make(map[object.ID]*sortstore.Replica, len(d.replicas))
	for id, r := range d.replicas {
		out[id] = r
	}
	return out
}

// ImportCost returns the accumulated virtual cost of imports, index
// builds, and sorted-replica builds (the offline costs the paper reports
// separately from query time).
func (d *Deployment) ImportCost() vclock.Cost { return d.importAcct.Cost() }

// CreateContainer registers a container.
func (d *Deployment) CreateContainer(name string) *object.Container {
	return d.meta.CreateContainer(name)
}

// ImportObject registers an object described by prop and ingests data
// (raw elements of prop.Type): the data is partitioned into regions of
// Options.RegionBytes, written to the PFS tier, and each region gets
// exact min/max plus a mergeable histogram; the global histogram is the
// merge of the region histograms (§IV). With Options.BuildIndex a bitmap
// index is built and stored per region.
func (d *Deployment) ImportObject(cid object.ContainerID, prop object.Property, data []byte) (*object.Object, error) {
	if d.started {
		return nil, fmt.Errorf("core: cannot import after Start")
	}
	o, err := d.meta.CreateObject(cid, prop)
	if err != nil {
		return nil, err
	}
	if got, want := int64(len(data)), o.ByteSize(); got != want {
		return nil, fmt.Errorf("core: object %q: %d data bytes, want %d", prop.Name, got, want)
	}
	elemSize := o.Type.Size()
	var hists []*histogram.Histogram
	for i, r := range object.Partition(o.Dims, o.Type, d.opts.RegionBytes) {
		start := r.Offset[0]
		rowElems := uint64(1)
		for _, dd := range o.Dims[1:] {
			rowElems *= dd
		}
		lo := start * rowElems * uint64(elemSize)
		hi := lo + r.NumElems()*uint64(elemSize)
		raw := data[lo:hi]
		key := object.ExtentKey(o.ID, i)
		d.store.Write(d.importAcct, key, simio.PFS, raw)
		mn, mx := dtype.MinMax(o.Type, raw)
		rm := object.RegionMeta{
			Index: i, Region: r, ExtentKey: key, Tier: simio.PFS,
			Min: mn, Max: mx,
		}
		if !d.opts.DisableHistograms {
			h := histogram.BuildBytes(o.Type, raw, d.opts.HistBins)
			rm.Hist = h
			hists = append(hists, h)
		}
		if d.opts.BuildIndex {
			x := bitindex.Build(o.Type, raw, d.opts.IndexPrecision)
			xkey := object.IndexExtentKey(o.ID, i)
			d.store.Write(d.importAcct, xkey, simio.PFS, x.Encode())
			rm.IndexKey = xkey
			rm.IndexBins = len(x.Bins)
			rm.IndexDir = x.Directory()
		}
		o.Regions = append(o.Regions, rm)
	}
	if !d.opts.DisableHistograms {
		o.Global = histogram.MergeAll(hists)
	}
	if err := o.CheckRegionCover(); err != nil {
		return nil, err
	}
	return o, nil
}

// BuildSortedReplica builds the sorted reorganization of an object
// (§III-D3) so the SortedHistogram strategy can use it. The paper exposes
// this as a user hint at object creation.
func (d *Deployment) BuildSortedReplica(id object.ID) error {
	if d.started {
		return fmt.Errorf("core: cannot build replicas after Start")
	}
	o, ok := d.meta.Get(id)
	if !ok {
		return fmt.Errorf("core: object %d not found", id)
	}
	elemsPerRegion := uint64(d.opts.RegionBytes) / uint64(o.Type.Size())
	if elemsPerRegion == 0 {
		elemsPerRegion = 1
	}
	rep, err := sortstore.Build(d.store, d.importAcct, o, elemsPerRegion, simio.PFS)
	if err != nil {
		return err
	}
	d.replicas[id] = rep
	o.SortedBy = id
	return nil
}

// AddCompanions extends an existing sorted replica with co-sorted copies
// of other objects (the multi-variable reorganization named as future
// work in §IX): conditions on companion objects are then resolved from
// contiguous co-sorted extents instead of scattered original regions.
func (d *Deployment) AddCompanions(key object.ID, companions ...object.ID) error {
	if d.started {
		return fmt.Errorf("core: cannot add companions after Start")
	}
	rep := d.replicas[key]
	if rep == nil {
		return fmt.Errorf("core: object %d has no sorted replica", key)
	}
	return rep.AddCompanions(d.store, d.importAcct, d.meta.Get, companions, simio.PFS)
}

// MigrateObject moves every region of an object (and, when present, its
// sorted replica extents) to the given storage tier — PDC's transparent
// data movement across the hierarchy (§II). Typical use is staging a hot
// object from the parallel file system into the burst buffer before a
// query campaign.
func (d *Deployment) MigrateObject(id object.ID, tier simio.Tier) error {
	o, ok := d.meta.Get(id)
	if !ok {
		return fmt.Errorf("core: object %d not found", id)
	}
	for i := range o.Regions {
		rm := &o.Regions[i]
		if err := d.store.Migrate(d.importAcct, rm.ExtentKey, tier); err != nil {
			return err
		}
		rm.Tier = tier
		if rm.IndexKey != "" {
			if err := d.store.Migrate(d.importAcct, rm.IndexKey, tier); err != nil {
				return err
			}
		}
	}
	if rep := d.replicas[id]; rep != nil {
		for _, ri := range rep.Regions {
			if err := d.store.Migrate(d.importAcct, object.SortedValKey(id, ri.Index), tier); err != nil {
				return err
			}
			if err := d.store.Migrate(d.importAcct, object.SortedPermKey(id, ri.Index), tier); err != nil {
				return err
			}
		}
	}
	return nil
}

// IndexBytes returns the total stored size of all bitmap indexes
// (compared against data size in §V: FastBit took 15–17%).
func (d *Deployment) IndexBytes() int64 {
	var n int64
	for _, o := range d.meta.Objects() {
		for _, rm := range o.Regions {
			if rm.IndexKey != "" {
				if sz, err := d.store.Size(rm.IndexKey); err == nil {
					n += sz
				}
			}
		}
	}
	return n
}

// newServer builds the server instance for rank i from the deployment's
// options (shared store, metadata, and replicas).
func (d *Deployment) newServer(i int) *server.Server {
	return server.New(server.Config{
		ID: i, N: d.opts.Servers,
		Store:      d.store,
		Meta:       d.meta,
		Replicas:   d.replicas,
		Strategy:   d.opts.Strategy,
		CacheBytes: d.opts.CacheBytes,
		Workers:    d.opts.Workers,
		QueueDepth: d.opts.QueueDepth,
	})
}

// serveConn runs the current server instance for rank i on conn in a
// deployment-owned goroutine. The instance is resolved at call time so
// sessions started after RestartServer land on the replacement.
func (d *Deployment) serveConn(i int, conn transport.Conn) {
	d.mu.Lock()
	srv := d.servers[i]
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		// The serve loop's exit error has no caller to flow to here;
		// sessions that die abnormally surface through the client's
		// redial path instead.
		_ = srv.Serve(conn)
		_ = conn.Close()
	}()
}

// dialServer establishes one client-side connection to server rank i
// (and starts the matching serve session), applying Options.WrapConn.
func (d *Deployment) dialServer(i int) (transport.Conn, error) {
	var clientSide transport.Conn
	if d.opts.TCP {
		d.mu.Lock()
		l := d.listeners[i]
		d.mu.Unlock()
		c, err := transport.Dial(l.Addr())
		if err != nil {
			return nil, err
		}
		clientSide = c // the accept loop starts the serve session
	} else {
		var serverSide transport.Conn
		clientSide, serverSide = transport.Pipe()
		d.serveConn(i, serverSide)
	}
	if d.opts.WrapConn != nil {
		clientSide = d.opts.WrapConn(i, clientSide)
	}
	return clientSide, nil
}

// Start launches the servers and connects the client.
func (d *Deployment) Start() error {
	if d.started {
		return fmt.Errorf("core: already started")
	}
	n := d.opts.Servers
	conns := make([]transport.Conn, n)
	d.mu.Lock()
	for i := 0; i < n; i++ {
		d.servers = append(d.servers, d.newServer(i))
	}
	d.mu.Unlock()
	if d.opts.TCP {
		for i := 0; i < n; i++ {
			// Persistent listener with an accept loop, so the client can
			// redial a server whose connection dropped (each accepted
			// connection is a fresh serve session against the rank's
			// current server instance).
			l, err := transport.Listen("127.0.0.1:0")
			if err != nil {
				return err
			}
			d.mu.Lock()
			d.listeners = append(d.listeners, l)
			d.mu.Unlock()
			go func(i int, l *transport.Listener) {
				for {
					c, err := l.Accept()
					if err != nil {
						return // listener closed in Close
					}
					d.serveConn(i, c)
				}
			}(i, l)
		}
	}
	for i := 0; i < n; i++ {
		c, err := d.dialServer(i)
		if err != nil {
			return err
		}
		conns[i] = c
	}
	d.cli = client.New(conns, d.meta)
	d.cli.SetSharedBW(d.store.Model().Tiers[simio.PFS].SharedBW)
	if d.opts.WireScale > 0 {
		d.cli.SetWireModel(time.Duration(float64(transport.DefaultLatency)*d.opts.WireScale), transport.DefaultBW)
	}
	if d.opts.Redial {
		d.cli.SetRedial(d.dialServer)
	}
	if d.opts.CallTimeout > 0 {
		d.cli.SetCallTimeout(d.opts.CallTimeout)
	}
	d.started = true
	return nil
}

// RestartServer models a crash/restart of server rank i: the old
// instance is shut down (in-flight work cancelled, its serve sessions
// end) and a fresh instance — empty cache, fresh accounts, state rebuilt
// only from the shared store and metadata (the persistence layer a real
// restart would reload from disk) — takes over the rank. Existing client
// connections to the old instance die; with Options.Redial the client
// reconnects and the next call is served by the replacement.
func (d *Deployment) RestartServer(i int) error {
	if !d.started {
		return fmt.Errorf("core: not started")
	}
	if i < 0 || i >= len(d.servers) {
		return fmt.Errorf("core: no server %d", i)
	}
	d.mu.Lock()
	old := d.servers[i]
	d.mu.Unlock()
	old.Shutdown()
	d.mu.Lock()
	d.servers[i] = d.newServer(i)
	d.mu.Unlock()
	return nil
}

// Client returns the connected client library. Valid after Start.
func (d *Deployment) Client() *client.Client { return d.cli }

// Servers exposes the current server instances (experiments read their
// accounts and caches). The returned slice is a snapshot: RestartServer
// may swap an instance afterwards.
func (d *Deployment) Servers() []*server.Server {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*server.Server(nil), d.servers...)
}

// SetStrategy switches every server's evaluation strategy between
// experiment runs (the paper restarts servers with a different
// environment variable).
func (d *Deployment) SetStrategy(s exec.Strategy) {
	for _, srv := range d.Servers() {
		srv.SetStrategy(s)
	}
}

// ResetCaches clears every server's region cache and virtual-time
// account, giving each experiment run a cold start.
func (d *Deployment) ResetCaches() {
	for _, srv := range d.Servers() {
		srv.Cache().Clear()
		srv.Account().Reset()
	}
}

// Close shuts down the client and all servers: client connections close,
// listeners stop accepting, the serve loops drain, then each server's
// dispatchers are stopped.
func (d *Deployment) Close() error {
	var errs []error
	if d.cli != nil {
		if err := d.cli.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	d.mu.Lock()
	listeners := append([]*transport.Listener(nil), d.listeners...)
	servers := append([]*server.Server(nil), d.servers...)
	d.mu.Unlock()
	for _, l := range listeners {
		if err := l.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	d.wg.Wait()
	for _, srv := range servers {
		srv.Shutdown()
	}
	return errors.Join(errs...)
}

// DeploymentStats summarizes the fleet's activity since the last cache
// reset: storage traffic, cache behaviour, and the busiest server's
// accumulated virtual time.
type DeploymentStats struct {
	// ReadOps and ReadBytes total the storage reads across servers.
	ReadOps, ReadBytes int64
	// CacheHits counts region-cache hits across servers.
	CacheHits int64
	// CachedBytes is the current total of cached region bytes.
	CachedBytes int64
	// BusiestServer is the maximum accumulated virtual time of any server.
	BusiestServer time.Duration
	// StoredBytes is the total data held by the storage substrate.
	StoredBytes int64
}

// Stats gathers DeploymentStats from every server.
func (d *Deployment) Stats() DeploymentStats {
	var s DeploymentStats
	for _, srv := range d.Servers() {
		a := srv.Account()
		s.ReadOps += a.Counter("read.ops")
		s.ReadBytes += a.Counter("read.bytes")
		s.CacheHits += a.Counter("cache.hits")
		s.CachedBytes += srv.Cache().Used()
		if t := a.Cost().Total(); t > s.BusiestServer {
			s.BusiestServer = t
		}
	}
	s.StoredBytes = d.store.TotalBytes(-1)
	return s
}

// GroundTruth evaluates a query by brute force over the stored data
// (uncharged reads) — the correctness oracle used by tests and the
// experiment harness's verification mode.
func (d *Deployment) GroundTruth(q *query.Query) (*selection.Selection, error) {
	ids := q.Root.Objects()
	data := make(map[object.ID][]byte, len(ids))
	var anchor *object.Object
	for _, id := range ids {
		o, ok := d.meta.Get(id)
		if !ok {
			return nil, fmt.Errorf("core: object %d not found", id)
		}
		if anchor == nil {
			anchor = o
		}
		buf := make([]byte, 0, o.ByteSize())
		for _, rm := range o.Regions {
			raw, err := d.store.ReadAll(nil, rm.ExtentKey)
			if err != nil {
				return nil, err
			}
			buf = append(buf, raw...)
		}
		data[id] = buf
	}
	types := make(map[object.ID]dtype.Type, len(ids))
	for _, id := range ids {
		o, _ := d.meta.Get(id)
		types[id] = o.Type
	}
	var eval func(n *query.Node, i int) bool
	eval = func(n *query.Node, i int) bool {
		switch n.Kind {
		case query.KindLeaf:
			return query.FromLeaf(n.Op, n.Value).Contains(dtype.At(types[n.Obj], data[n.Obj], i))
		case query.KindAnd:
			return eval(n.Left, i) && eval(n.Right, i)
		case query.KindOr:
			return eval(n.Left, i) || eval(n.Right, i)
		}
		return false
	}
	total := int(anchor.NumElems())
	coordBuf := make([]uint64, len(anchor.Dims))
	var coords []uint64
	for i := 0; i < total; i++ {
		if q.Constraint != nil {
			if !q.Constraint.ContainsCoord(region.LinearToCoord(anchor.Dims, uint64(i), coordBuf)) {
				continue
			}
		}
		if eval(q.Root, i) {
			coords = append(coords, uint64(i))
		}
	}
	return selection.New(coords, anchor.Dims), nil
}
