package core

import (
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/workload"
)

// companionDeployment imports VPIC with an Energy-sorted replica plus
// co-sorted x, y, z companions.
func companionDeployment(t *testing.T, n int) (*Deployment, map[string]object.ID) {
	t.Helper()
	d := NewDeployment(Options{Servers: 4, Strategy: exec.SortedHistogram, RegionBytes: 8 << 10})
	c := d.CreateContainer("vpic")
	v := workload.GenerateVPIC(n, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = o.ID
	}
	if err := d.BuildSortedReplica(ids["Energy"]); err != nil {
		t.Fatal(err)
	}
	if err := d.AddCompanions(ids["Energy"], ids["x"], ids["y"], ids["z"]); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, ids
}

func TestCompanionQueriesMatchTruth(t *testing.T) {
	d, ids := companionDeployment(t, 25000)
	queries := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])
	for k, q := range queries {
		want, err := d.GroundTruth(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Client().Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", k, err)
		}
		if res.Sel.NHits != want.NHits {
			t.Fatalf("query %d: %d hits, want %d", k, res.Sel.NHits, want.NHits)
		}
		for i := range want.Coords {
			if res.Sel.Coords[i] != want.Coords[i] {
				t.Fatalf("query %d: coord %d mismatch", k, i)
			}
		}
	}
}

func TestCompanionGetData(t *testing.T) {
	d, ids := companionDeployment(t, 20000)
	v := workload.GenerateVPIC(20000, 42)
	q := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])[1]
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits == 0 {
		t.Skip("no hits at this scale")
	}
	for _, name := range []string{"Energy", "x", "y"} {
		data, _, err := res.GetData(ids[name])
		if err != nil {
			t.Fatal(err)
		}
		got := dtype.View[float32](data)
		for i, c := range res.Sel.Coords {
			if got[i] != v.Vars[name][c] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], v.Vars[name][c])
			}
		}
	}
}

func TestCompanionMixedConditions(t *testing.T) {
	// A query mixing companion (x) and non-companion (Ux) conditions
	// exercises both probe paths in one conjunct.
	d, ids := companionDeployment(t, 20000)
	q := &query.Query{Root: query.And(
		query.Leaf(ids["Energy"], query.OpGT, 2.0),
		query.And(
			query.Between(ids["x"], 100, 200, false, false),
			query.Leaf(ids["Ux"], query.OpGT, 0)))}
	want, err := d.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits != want.NHits {
		t.Fatalf("%d hits, want %d", res.Sel.NHits, want.NHits)
	}
}

func TestCompanionReducesOriginalRegionReads(t *testing.T) {
	// The point of the reorganization: with companions, the sorted path's
	// probe traffic against original regions disappears for the covered
	// conditions.
	const n = 30000
	v := workload.GenerateVPIC(n, 42)
	build := func(withCompanions bool) (*Deployment, map[string]object.ID) {
		d := NewDeployment(Options{Servers: 4, Strategy: exec.SortedHistogram, RegionBytes: 8 << 10})
		c := d.CreateContainer("vpic")
		ids := make(map[string]object.ID)
		for _, name := range workload.VPICNames {
			o, err := d.ImportObject(c.ID, object.Property{
				Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
			}, dtype.Bytes(v.Vars[name]))
			if err != nil {
				t.Fatal(err)
			}
			ids[name] = o.ID
		}
		if err := d.BuildSortedReplica(ids["Energy"]); err != nil {
			t.Fatal(err)
		}
		if withCompanions {
			if err := d.AddCompanions(ids["Energy"], ids["x"], ids["y"], ids["z"]); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		return d, ids
	}

	run := func(withCompanions bool) (uint64, int64) {
		d, ids := build(withCompanions)
		defer d.Close()
		q := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])[0]
		res, err := d.Client().Run(q)
		if err != nil {
			t.Fatal(err)
		}
		var ops int64
		for _, s := range d.Servers() {
			ops += s.Account().Counter("read.ops")
		}
		return res.Sel.NHits, ops
	}

	hitsWithout, opsWithout := run(false)
	hitsWith, opsWith := run(true)
	if hitsWith != hitsWithout {
		t.Fatalf("companions changed the answer: %d vs %d", hitsWith, hitsWithout)
	}
	if opsWith >= opsWithout {
		t.Errorf("companions did not reduce read ops: %d vs %d", opsWith, opsWithout)
	}
}

func TestAddCompanionsErrors(t *testing.T) {
	d := NewDeployment(Options{Servers: 2, RegionBytes: 4 << 10})
	c := d.CreateContainer("c")
	a, err := d.ImportObject(c.ID, object.Property{Name: "a", Type: dtype.Float32, Dims: []uint64{100}}, make([]byte, 400))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.ImportObject(c.ID, object.Property{Name: "b", Type: dtype.Float32, Dims: []uint64{50}}, make([]byte, 200))
	if err != nil {
		t.Fatal(err)
	}
	// No replica yet.
	if err := d.AddCompanions(a.ID, b.ID); err == nil {
		t.Error("companions without a replica accepted")
	}
	if err := d.BuildSortedReplica(a.ID); err != nil {
		t.Fatal(err)
	}
	// Size mismatch.
	if err := d.AddCompanions(a.ID, b.ID); err == nil {
		t.Error("mismatched companion accepted")
	}
	// Unknown object.
	if err := d.AddCompanions(a.ID, 999); err == nil {
		t.Error("unknown companion accepted")
	}
	// Idempotent add of the key itself as companion of same shape.
	if err := d.AddCompanions(a.ID, a.ID); err != nil {
		t.Errorf("self companion rejected: %v", err)
	}
	if err := d.AddCompanions(a.ID, a.ID); err != nil {
		t.Errorf("repeated add not idempotent: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.AddCompanions(a.ID, a.ID); err == nil {
		t.Error("companions after Start accepted")
	}
}
