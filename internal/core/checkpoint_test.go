package core

import (
	"bytes"
	"testing"

	"pdcquery/internal/exec"
	"pdcquery/internal/query"
	"pdcquery/internal/workload"
)

func TestCheckpointRoundTrip(t *testing.T) {
	// Build a full-featured deployment (indexes + sorted replica), then
	// checkpoint, reload into a fresh deployment with a different server
	// count, and verify every strategy still answers identically.
	d, ids := vpicDeployment(t, 15000, Options{
		Servers: 3, Strategy: exec.SortedHistogram, RegionBytes: 8 << 10, BuildIndex: true,
	})
	var buf bytes.Buffer
	if err := d.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	d2, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), Options{Servers: 5, Strategy: exec.Histogram})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	if d2.Meta().NumObjects() != 7 {
		t.Fatalf("restored %d objects", d2.Meta().NumObjects())
	}
	for _, q := range []*query.Query{
		{Root: query.Between(ids["Energy"], 2.1, 2.5, false, false)},
		workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])[1],
	} {
		want, err := d.Client().RunCount(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []exec.Strategy{exec.Histogram, exec.HistogramIndex, exec.SortedHistogram} {
			d2.SetStrategy(s)
			d2.ResetCaches()
			got, err := d2.Client().RunCount(q)
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			if got.Sel.NHits != want.Sel.NHits {
				t.Errorf("%v: restored deployment %d hits, original %d", s, got.Sel.NHits, want.Sel.NHits)
			}
		}
	}
	// The restored metadata still carries global histograms and replicas.
	o, _ := d2.Meta().Get(ids["Energy"])
	if o.Global == nil || o.Global.Total != 15000 {
		t.Error("restored global histogram missing or wrong")
	}
	if o.SortedBy != ids["Energy"] {
		t.Error("restored SortedBy marker missing")
	}
}

func TestCheckpointErrors(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader(nil), Options{}); err == nil {
		t.Error("empty checkpoint accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewReader(make([]byte, 64)), Options{}); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// Truncation anywhere must error, not panic.
	d, _ := vpicDeployment(t, 2000, Options{Servers: 2, RegionBytes: 4 << 10})
	var buf bytes.Buffer
	if err := d.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, 9, 40, len(full) / 2, len(full) - 3} {
		if _, err := LoadCheckpoint(bytes.NewReader(full[:cut]), Options{}); err == nil {
			t.Errorf("checkpoint truncated to %d accepted", cut)
		}
	}
}
