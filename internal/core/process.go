package core

import (
	"bufio"
	"fmt"
	"io"
	osexec "os/exec"
	"strings"
	"sync"
	"time"

	"pdcquery/internal/cluster"
	"pdcquery/internal/telemetry"
)

// ProcessDeployment is the multi-process cluster: one pdc-server
// -catalog child plus N pdc-server -join children, each a real OS
// process over real TCP. The in-proc Deployment stays the deterministic
// fast path; this harness exists to prove the same catalog, placement,
// replication, and failover machinery holds when members are separate
// processes that can be SIGKILLed — cmd/pdc-clustersmoke and the
// process chaos test drive it.
type ProcessDeployment struct {
	opts ProcessOptions

	catalog     *child
	catalogAddr string

	mu      sync.Mutex
	members []*child // live members, spawn order
}

// ProcessOptions configures a process cluster.
type ProcessOptions struct {
	// BinPath is the pdc-server binary to spawn. Required.
	BinPath string
	// Members is the initial member count (default 3).
	Members int
	// R is the replication factor (default 2).
	R int
	// Seed parameterizes placement.
	Seed uint64
	// Heartbeat is the member beat interval (default 100ms); the catalog
	// declares silence longer than HeartbeatTimeout (default 1s) a death.
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// StartTimeout bounds each child's listen handshake (default 30s): a
	// child that neither prints PDC_LISTENING nor exits is killed.
	StartTimeout time.Duration
	// Metrics starts each child's HTTP metrics listener on a free port
	// (read the address back with MetricsAddr).
	Metrics bool
	// Stderr receives the children's stderr (nil = discard).
	Stderr io.Writer
}

// child is one spawned pdc-server process.
type child struct {
	cmd         *osexec.Cmd
	addr        string // serving address from the PDC_LISTENING handshake
	metricsAddr string // from PDC_METRICS (empty unless Metrics)
	waitErr     chan error
}

// StartProcessDeployment spawns the catalog and the initial members,
// then waits for the committed view to include them all.
func StartProcessDeployment(opts ProcessOptions) (*ProcessDeployment, error) {
	if opts.BinPath == "" {
		return nil, fmt.Errorf("core: ProcessOptions.BinPath is required")
	}
	if opts.Members <= 0 {
		opts.Members = 3
	}
	if opts.R <= 0 {
		opts.R = 2
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 100 * time.Millisecond
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = time.Second
	}
	if opts.StartTimeout <= 0 {
		opts.StartTimeout = 30 * time.Second
	}
	p := &ProcessDeployment{opts: opts}
	cat, err := p.spawn(
		"-catalog", "-addr", "127.0.0.1:0",
		"-seed", fmt.Sprint(opts.Seed),
		"-cluster-r", fmt.Sprint(opts.R),
		"-heartbeat-timeout", opts.HeartbeatTimeout.String(),
	)
	if err != nil {
		return nil, fmt.Errorf("core: start catalog: %w", err)
	}
	p.catalog = cat
	p.catalogAddr = cat.addr
	for i := 0; i < opts.Members; i++ {
		if _, err := p.Spawn(); err != nil {
			p.Close()
			return nil, err
		}
	}
	if err := p.WaitMembers(opts.Members, opts.StartTimeout); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// spawn starts one child and completes the PDC_LISTENING handshake.
func (p *ProcessDeployment) spawn(args ...string) (*child, error) {
	if p.opts.Metrics {
		args = append(args, "-metrics-addr", "127.0.0.1:0")
	}
	cmd := osexec.Command(p.opts.BinPath, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if p.opts.Stderr != nil {
		cmd.Stderr = p.opts.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, waitErr: make(chan error, 1)}
	// One goroutine owns Wait (reaps the child); the handshake below
	// reads stdout until the listen line or EOF. A watchdog kills a
	// child that hangs before printing, which EOFs the scanner.
	go func() { c.waitErr <- cmd.Wait() }()
	handshake := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "PDC_LISTENING "); ok {
				c.addr = strings.TrimSpace(rest)
				if !p.opts.Metrics {
					break
				}
				continue
			}
			if rest, ok := strings.CutPrefix(line, "PDC_METRICS "); ok {
				c.metricsAddr = strings.TrimSpace(rest)
				break
			}
		}
		if c.addr == "" {
			handshake <- fmt.Errorf("core: child exited before PDC_LISTENING handshake")
			return
		}
		handshake <- nil
		// Keep draining so a chatty child can never block on stdout.
		for sc.Scan() {
		}
	}()
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		for waited := time.Duration(0); waited < p.opts.StartTimeout; waited += 50 * time.Millisecond {
			select {
			case <-watchdogDone:
				return
			default:
			}
			telemetry.WallSleep.Sleep(50 * time.Millisecond)
		}
		_ = cmd.Process.Kill()
	}()
	if err := <-handshake; err != nil {
		_ = cmd.Process.Kill()
		<-c.waitErr
		return nil, err
	}
	return c, nil
}

// Spawn adds one member process (a join: the catalog rebalances and
// the joiner pulls its regions). Returns its serving address.
func (p *ProcessDeployment) Spawn() (string, error) {
	c, err := p.spawn(
		"-join", p.catalogAddr, "-addr", "127.0.0.1:0",
		"-heartbeat", p.opts.Heartbeat.String(),
	)
	if err != nil {
		return "", fmt.Errorf("core: spawn member: %w", err)
	}
	p.mu.Lock()
	p.members = append(p.members, c)
	p.mu.Unlock()
	return c.addr, nil
}

// CatalogAddr returns the catalog's TCP address.
func (p *ProcessDeployment) CatalogAddr() string { return p.catalogAddr }

// MemberAddrs lists the live members' serving addresses in spawn order.
func (p *ProcessDeployment) MemberAddrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	addrs := make([]string, len(p.members))
	for i, c := range p.members {
		addrs[i] = c.addr
	}
	return addrs
}

// MetricsAddr returns the metrics address of the member serving addr
// ("" when metrics are off); "catalog" names the catalog process.
func (p *ProcessDeployment) MetricsAddr(addr string) string {
	if addr == "catalog" {
		return p.catalog.metricsAddr
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.members {
		if c.addr == addr {
			return c.metricsAddr
		}
	}
	return ""
}

// Kill SIGKILLs the member serving addr — no goodbye, no flush; the
// catalog finds out through the broken control connection or the
// heartbeat timeout, and failover must keep answers exact.
func (p *ProcessDeployment) Kill(addr string) error {
	p.mu.Lock()
	var victim *child
	for i, c := range p.members {
		if c.addr == addr {
			victim = c
			p.members = append(p.members[:i], p.members[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	if victim == nil {
		return fmt.Errorf("core: no member at %s", addr)
	}
	_ = victim.cmd.Process.Kill()
	<-victim.waitErr
	return nil
}

// Session opens a catalog-aware client session over TCP, configured
// for a live cluster: wall-clock call timeouts and paced retries.
func (p *ProcessDeployment) Session() (*cluster.Session, error) {
	return cluster.DialSession(cluster.SessionOptions{
		Net:         cluster.TCPNetwork{},
		CatalogAddr: p.catalogAddr,
		CallTimeout: 10 * time.Second,
		MaxAttempts: 60,
		RetryWait:   50 * time.Millisecond,
		Sleeper:     telemetry.WallSleep,
		Clock:       telemetry.Wall,
	})
}

// Drain retires the member serving addr through the catalog and waits
// for its process to exit.
func (p *ProcessDeployment) Drain(addr string, timeout time.Duration) error {
	s, err := p.Session()
	if err != nil {
		return err
	}
	defer s.Close()
	v, err := s.FetchView()
	if err != nil {
		return err
	}
	id := cluster.MemberID(-1)
	for _, mi := range v.Members {
		if mi.Addr == addr {
			id = mi.ID
			break
		}
	}
	if id < 0 {
		return fmt.Errorf("core: no member at %s in committed view", addr)
	}
	if err := s.Drain(id); err != nil {
		return err
	}
	p.mu.Lock()
	var victim *child
	for i, c := range p.members {
		if c.addr == addr {
			victim = c
			p.members = append(p.members[:i], p.members[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	if victim == nil {
		return fmt.Errorf("core: no member process at %s", addr)
	}
	select {
	case <-victim.waitErr:
		return nil
	case <-wallAfter(timeout):
		_ = victim.cmd.Process.Kill()
		<-victim.waitErr
		return fmt.Errorf("core: member %s did not exit %v after drain", addr, timeout)
	}
}

// wallAfter is a telemetry-seam replacement for time.After (the
// nondeterminism contract keeps raw timers out of production packages).
func wallAfter(d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		telemetry.WallSleep.Sleep(d)
		close(ch)
	}()
	return ch
}

// WaitMembers polls the committed view until it holds n members.
func (p *ProcessDeployment) WaitMembers(n int, timeout time.Duration) error {
	s, err := p.Session()
	if err != nil {
		return err
	}
	defer s.Close()
	const poll = 20 * time.Millisecond
	for waited := time.Duration(0); ; waited += poll {
		v, err := s.FetchView()
		if err == nil && len(v.Members) == n {
			return nil
		}
		if waited >= timeout {
			if err != nil {
				return fmt.Errorf("core: cluster view unavailable after %v: %w", timeout, err)
			}
			return fmt.Errorf("core: %d members in view after %v, want %d", len(v.Members), timeout, n)
		}
		telemetry.WallSleep.Sleep(poll)
	}
}

// Close SIGKILLs every child and reaps them.
func (p *ProcessDeployment) Close() {
	p.mu.Lock()
	members := p.members
	p.members = nil
	p.mu.Unlock()
	for _, c := range members {
		_ = c.cmd.Process.Kill()
	}
	for _, c := range members {
		<-c.waitErr
	}
	if p.catalog != nil {
		_ = p.catalog.cmd.Process.Kill()
		<-p.catalog.waitErr
	}
}
