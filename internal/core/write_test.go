package core

import (
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
)

func TestWritePathMatchesImport(t *testing.T) {
	const n = 20000
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32((i*7919)%10000) / 100
	}

	// Reference: bulk import.
	dRef := NewDeployment(Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 8 << 10, BuildIndex: true})
	cRef := dRef.CreateContainer("c")
	oRef, err := dRef.ImportObject(cRef.ID, object.Property{Name: "v", Type: dtype.Float32, Dims: []uint64{n}}, dtype.Bytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	if err := dRef.Start(); err != nil {
		t.Fatal(err)
	}
	defer dRef.Close()

	// Write path: region by region, out of order.
	d := NewDeployment(Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 8 << 10, BuildIndex: true})
	c := d.CreateContainer("c")
	o, err := d.CreateObject(c.ID, object.Property{Name: "v", Type: dtype.Float32, Dims: []uint64{n}})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Regions) < 2 {
		t.Fatalf("expected multiple regions, got %d", len(o.Regions))
	}
	// Finalize before writing must fail.
	if err := d.FinalizeObject(o.ID); err == nil {
		t.Fatal("finalize of unwritten object succeeded")
	}
	// Write regions in reverse order.
	for i := len(o.Regions) - 1; i >= 0; i-- {
		r := o.Regions[i].Region
		lo := r.Offset[0]
		hi := lo + r.Count[0]
		if err := d.WriteRegion(o.ID, i, dtype.Bytes(vals[lo:hi])); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.FinalizeObject(o.ID); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Identical answers through every strategy-relevant artifact.
	for _, w := range [][2]float64{{42, 43}, {0, 5}, {99, 100}} {
		q := &query.Query{Root: query.Between(1, w[0], w[1], false, false)}
		want, err := dRef.Client().RunCount(&query.Query{Root: query.Between(oRef.ID, w[0], w[1], false, false)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Client().RunCount(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Sel.NHits != want.Sel.NHits {
			t.Errorf("window %v: write path %d hits, import %d", w, got.Sel.NHits, want.Sel.NHits)
		}
	}
	// The global histogram was merged at finalize.
	if o.Global == nil || o.Global.Total != n {
		t.Errorf("finalized global histogram = %+v", o.Global)
	}
	// The index strategy works on written regions too.
	d.SetStrategy(exec.HistogramIndex)
	d.ResetCaches()
	got, err := d.Client().RunCount(&query.Query{Root: query.Between(o.ID, 42, 43, false, false)})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dRef.Client().RunCount(&query.Query{Root: query.Between(oRef.ID, 42, 43, false, false)})
	if got.Sel.NHits != want.Sel.NHits {
		t.Errorf("index strategy on written object: %d hits, want %d", got.Sel.NHits, want.Sel.NHits)
	}
}

func TestWriteRegionErrors(t *testing.T) {
	d := NewDeployment(Options{Servers: 2, RegionBytes: 4 << 10})
	c := d.CreateContainer("c")
	o, err := d.CreateObject(c.ID, object.Property{Name: "v", Type: dtype.Float32, Dims: []uint64{5000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegion(999, 0, nil); err == nil {
		t.Error("unknown object accepted")
	}
	if err := d.WriteRegion(o.ID, 99, nil); err == nil {
		t.Error("out-of-range region accepted")
	}
	if err := d.WriteRegion(o.ID, 0, make([]byte, 10)); err == nil {
		t.Error("short write accepted")
	}
	// Rewriting a region before finalize is allowed.
	size := int(o.Regions[0].Region.NumElems()) * 4
	if err := d.WriteRegion(o.ID, 0, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRegion(o.ID, 0, make([]byte, size)); err != nil {
		t.Errorf("rewrite rejected: %v", err)
	}
	if err := d.FinalizeObject(999); err == nil {
		t.Error("finalize of unknown object accepted")
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.CreateObject(c.ID, object.Property{Name: "late", Type: dtype.Float32, Dims: []uint64{10}}); err == nil {
		t.Error("create after start accepted")
	}
	if err := d.WriteRegion(o.ID, 0, make([]byte, size)); err == nil {
		t.Error("write after start accepted")
	}
}
