package core

import (
	"fmt"

	"pdcquery/internal/bitindex"
	"pdcquery/internal/dtype"
	"pdcquery/internal/histogram"
	"pdcquery/internal/object"
	"pdcquery/internal/simio"
)

// The PDC write path: applications produce objects region by region
// (§III-D2 — "a local histogram is automatically generated for each data
// region when data is either produced within PDC or imported"). An
// object is created with a fixed partition, its regions are written in
// any order (by different producers, as in a simulation writing per
// rank), and finalization merges the region histograms into the global
// one.

// CreateObject registers an object and pre-computes its region partition
// without ingesting any data. Write each region with WriteRegion, then
// call FinalizeObject before Start.
func (d *Deployment) CreateObject(cid object.ContainerID, prop object.Property) (*object.Object, error) {
	if d.started {
		return nil, fmt.Errorf("core: cannot create objects after Start")
	}
	o, err := d.meta.CreateObject(cid, prop)
	if err != nil {
		return nil, err
	}
	for i, r := range object.Partition(o.Dims, o.Type, d.opts.RegionBytes) {
		o.Regions = append(o.Regions, object.RegionMeta{
			Index: i, Region: r, ExtentKey: object.ExtentKey(o.ID, i), Tier: simio.PFS,
		})
	}
	if err := o.CheckRegionCover(); err != nil {
		return nil, err
	}
	return o, nil
}

// WriteRegion ingests one region's data (raw elements of the object's
// type, exactly the region's size): the bytes go to the PFS tier and the
// region's metadata — exact min/max, local mergeable histogram, and
// (when the deployment builds indexes) its bitmap index — is generated
// on the spot, as the paper's automatic histogram generation describes.
// Regions may be written in any order and rewritten before finalization.
func (d *Deployment) WriteRegion(id object.ID, regionIndex int, data []byte) error {
	if d.started {
		return fmt.Errorf("core: cannot write regions after Start")
	}
	o, ok := d.meta.Get(id)
	if !ok {
		return fmt.Errorf("core: object %d not found", id)
	}
	if regionIndex < 0 || regionIndex >= len(o.Regions) {
		return fmt.Errorf("core: object %d has no region %d", id, regionIndex)
	}
	rm := &o.Regions[regionIndex]
	want := int64(rm.Region.NumElems()) * int64(o.Type.Size())
	if int64(len(data)) != want {
		return fmt.Errorf("core: region %d of object %d needs %d bytes, got %d", regionIndex, id, want, len(data))
	}
	d.store.Write(d.importAcct, rm.ExtentKey, simio.PFS, data)
	rm.Min, rm.Max = dtype.MinMax(o.Type, data)
	if !d.opts.DisableHistograms {
		rm.Hist = histogram.BuildBytes(o.Type, data, d.opts.HistBins)
	}
	if d.opts.BuildIndex {
		x := bitindex.Build(o.Type, data, d.opts.IndexPrecision)
		xkey := object.IndexExtentKey(o.ID, regionIndex)
		d.store.Write(d.importAcct, xkey, simio.PFS, x.Encode())
		rm.IndexKey = xkey
		rm.IndexBins = len(x.Bins)
		rm.IndexDir = x.Directory()
	}
	return nil
}

// FinalizeObject verifies that every region has been written and merges
// the region histograms into the object's global histogram (§IV).
func (d *Deployment) FinalizeObject(id object.ID) error {
	o, ok := d.meta.Get(id)
	if !ok {
		return fmt.Errorf("core: object %d not found", id)
	}
	var hists []*histogram.Histogram
	for i := range o.Regions {
		rm := &o.Regions[i]
		if !d.store.Exists(rm.ExtentKey) {
			return fmt.Errorf("core: object %d region %d was never written", id, i)
		}
		if rm.Hist != nil {
			hists = append(hists, rm.Hist)
		}
	}
	if len(hists) > 0 {
		o.Global = histogram.MergeAll(hists)
	}
	return nil
}
