package core

import (
	"fmt"
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/selection"
	"pdcquery/internal/workload"
)

// vpicDeployment imports a small VPIC dataset and starts the system.
func vpicDeployment(t *testing.T, n int, opts Options) (*Deployment, map[string]object.ID) {
	t.Helper()
	d := NewDeployment(opts)
	c := d.CreateContainer("vpic")
	v := workload.GenerateVPIC(n, 42)
	ids := make(map[string]object.ID)
	for _, name := range workload.VPICNames {
		o, err := d.ImportObject(c.ID, object.Property{
			Name: name, Type: dtype.Float32, Dims: []uint64{uint64(n)},
		}, dtype.Bytes(v.Vars[name]))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = o.ID
	}
	if opts.Strategy == exec.SortedHistogram {
		if err := d.BuildSortedReplica(ids["Energy"]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, ids
}

func checkAgainstTruth(t *testing.T, d *Deployment, q *query.Query, label string) {
	t.Helper()
	want, err := d.GroundTruth(q)
	if err != nil {
		t.Fatalf("%s: truth: %v", label, err)
	}
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatalf("%s: run: %v", label, err)
	}
	if res.Sel.NHits != want.NHits {
		t.Fatalf("%s: %d hits, want %d", label, res.Sel.NHits, want.NHits)
	}
	for i := range want.Coords {
		if res.Sel.Coords[i] != want.Coords[i] {
			t.Fatalf("%s: coord %d mismatch", label, i)
		}
	}
	if res.Info.Elapsed.Total() <= 0 {
		t.Errorf("%s: no modeled elapsed time", label)
	}
}

func TestEndToEndAllStrategies(t *testing.T) {
	for _, s := range []exec.Strategy{exec.FullScan, exec.Histogram, exec.HistogramIndex, exec.SortedHistogram} {
		t.Run(s.String(), func(t *testing.T) {
			d, ids := vpicDeployment(t, 30000, Options{
				Servers: 4, Strategy: s, RegionBytes: 8 << 10, BuildIndex: true,
			})
			if s == exec.SortedHistogram {
				// replica built in helper only for SortedHistogram; ensure set
				if d.replicas[ids["Energy"]] == nil {
					t.Fatal("no replica")
				}
			}
			for _, q := range workload.SingleObjectQueries(ids["Energy"])[:4] {
				checkAgainstTruth(t, d, q, s.String())
			}
			qs := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])
			checkAgainstTruth(t, d, qs[0], s.String()+"/multi0")
			checkAgainstTruth(t, d, qs[5], s.String()+"/multi5")
		})
	}
}

func TestRunCountMatchesRun(t *testing.T) {
	d, ids := vpicDeployment(t, 20000, Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	q := &query.Query{Root: query.Leaf(ids["Energy"], query.OpGT, 1.5)}
	full, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := d.Client().RunCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Sel.NHits != full.Sel.NHits {
		t.Errorf("count %d != selection %d", cnt.Sel.NHits, full.Sel.NHits)
	}
	if !cnt.Sel.CountOnly || cnt.Sel.Coords != nil {
		t.Error("RunCount returned coordinates")
	}
}

func TestGetDataAllStrategies(t *testing.T) {
	for _, s := range []exec.Strategy{exec.FullScan, exec.Histogram, exec.HistogramIndex, exec.SortedHistogram} {
		t.Run(s.String(), func(t *testing.T) {
			d, ids := vpicDeployment(t, 25000, Options{
				Servers: 4, Strategy: s, RegionBytes: 8 << 10, BuildIndex: true,
			})
			v := workload.GenerateVPIC(25000, 42)
			q := &query.Query{Root: query.Between(ids["Energy"], 1.5, 2.5, false, false)}
			res, err := d.Client().Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Sel.NHits == 0 {
				t.Fatal("query matched nothing; test needs hits")
			}
			// Values of the queried object.
			data, info, err := res.GetData(ids["Energy"])
			if err != nil {
				t.Fatal(err)
			}
			vals := dtype.View[float32](data)
			for i, c := range res.Sel.Coords {
				if vals[i] != v.Vars["Energy"][c] {
					t.Fatalf("energy[%d] = %v, want %v", i, vals[i], v.Vars["Energy"][c])
				}
			}
			if info.Elapsed.Total() <= 0 {
				t.Error("no modeled get-data time")
			}
			// Values of an object NOT in the query condition (the paper's
			// "memory objects may differ from the query objects").
			data, _, err = res.GetData(ids["Uy"])
			if err != nil {
				t.Fatal(err)
			}
			vals = dtype.View[float32](data)
			for i, c := range res.Sel.Coords {
				if vals[i] != v.Vars["Uy"][c] {
					t.Fatalf("Uy[%d] mismatch", i)
				}
			}
		})
	}
}

func TestGetDataBatch(t *testing.T) {
	d, ids := vpicDeployment(t, 20000, Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	v := workload.GenerateVPIC(20000, 42)
	q := &query.Query{Root: query.Leaf(ids["Energy"], query.OpGT, 1.0)}
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []float32
	var gotCoords []uint64
	batches := 0
	_, err = res.GetDataBatch(ids["Energy"], 100, func(batch *selection.Selection, data []byte) error {
		batches++
		if batch.NHits > 100 {
			return fmt.Errorf("batch of %d hits exceeds limit", batch.NHits)
		}
		got = append(got, dtype.View[float32](data)...)
		gotCoords = append(gotCoords, batch.Coords...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches < 2 {
		t.Errorf("only %d batches for %d hits", batches, res.Sel.NHits)
	}
	if uint64(len(got)) != res.Sel.NHits {
		t.Fatalf("batched %d values, want %d", len(got), res.Sel.NHits)
	}
	for i, c := range res.Sel.Coords {
		if gotCoords[i] != c {
			t.Fatalf("batch coord %d mismatch", i)
		}
		if got[i] != v.Vars["Energy"][c] {
			t.Fatalf("batch value %d = %v, want %v", i, got[i], v.Vars["Energy"][c])
		}
	}
	// Count-only results cannot be batched.
	cnt, err := d.Client().RunCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cnt.GetDataBatch(ids["Energy"], 100, func(*selection.Selection, []byte) error { return nil }); err == nil {
		t.Error("batching a count-only result succeeded")
	}
}

func TestScalabilityConsistency(t *testing.T) {
	// Fig. 6's invariant: the answer does not depend on the server count.
	var baseline uint64
	for _, nsrv := range []int{1, 2, 8, 16} {
		d, ids := vpicDeployment(t, 20000, Options{Servers: nsrv, Strategy: exec.Histogram, RegionBytes: 4 << 10})
		q := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])[2]
		res, err := d.Client().Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if nsrv == 1 {
			baseline = res.Sel.NHits
		} else if res.Sel.NHits != baseline {
			t.Errorf("nsrv=%d: %d hits, baseline %d", nsrv, res.Sel.NHits, baseline)
		}
		d.Close()
	}
}

func TestRegionConstraintEndToEnd(t *testing.T) {
	d, ids := vpicDeployment(t, 15000, Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 4 << 10})
	q := &query.Query{Root: query.Leaf(ids["Energy"], query.OpGT, 1.0)}
	q.SetRegion(region.New([]uint64{3000}, []uint64{5000}))
	checkAgainstTruth(t, d, q, "constrained")
}

func TestGetHistogram(t *testing.T) {
	d, ids := vpicDeployment(t, 10000, Options{Servers: 4, Strategy: exec.Histogram, RegionBytes: 4 << 10})
	h, info, err := d.Client().GetHistogram(ids["Energy"])
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || h.Total != 10000 {
		t.Fatalf("histogram total = %v", h)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if info.Elapsed.Total() <= 0 {
		t.Error("no modeled histogram time")
	}
	if _, _, err := d.Client().GetHistogram(9999); err == nil {
		t.Error("histogram of unknown object succeeded")
	}
}

func TestTagQueryEndToEnd(t *testing.T) {
	d := NewDeployment(Options{Servers: 5, RegionBytes: 1 << 20})
	c := d.CreateContainer("boss")
	objs := workload.GenerateBOSS(3000, 10, 7)
	for _, bo := range objs {
		_, err := d.ImportObject(c.ID, object.Property{
			Name: bo.Name, Type: dtype.Float32, Dims: []uint64{uint64(len(bo.Flux))},
			Tags: map[string]string{"RADEG": bo.RADeg, "DECDEG": bo.DECDeg},
		}, dtype.Bytes(bo.Flux))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ids, info, err := d.Client().QueryTag([]metadata.TagCond{
		{Key: "RADEG", Value: objs[0].RADeg}, {Key: "DECDEG", Value: objs[0].DECDeg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != workload.BOSSGroupSize {
		t.Errorf("tag query found %d objects, want %d", len(ids), workload.BOSSGroupSize)
	}
	if info.Elapsed.Total() <= 0 {
		t.Error("no modeled tag query time")
	}
	// Union across servers must be duplicate-free and sorted.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("tag result not sorted/unique")
		}
	}
}

func TestTCPDeployment(t *testing.T) {
	d, ids := vpicDeployment(t, 8000, Options{
		Servers: 3, Strategy: exec.Histogram, RegionBytes: 4 << 10, TCP: true,
	})
	q := &query.Query{Root: query.Between(ids["Energy"], 1.0, 2.0, false, false)}
	checkAgainstTruth(t, d, q, "tcp")
	// SyncMeta over the wire.
	if err := d.Client().SyncMeta(); err != nil {
		t.Fatal(err)
	}
	if d.Client().Meta().NumObjects() != 7 {
		t.Errorf("synced metadata has %d objects", d.Client().Meta().NumObjects())
	}
}

func TestStrategySwitchAndCacheReset(t *testing.T) {
	d, ids := vpicDeployment(t, 10000, Options{Servers: 2, Strategy: exec.FullScan, RegionBytes: 4 << 10})
	q := &query.Query{Root: query.Leaf(ids["Energy"], query.OpGT, 2.0)}
	r1, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	d.SetStrategy(exec.Histogram)
	d.ResetCaches()
	r2, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sel.NHits != r2.Sel.NHits {
		t.Errorf("strategy switch changed hits: %d vs %d", r1.Sel.NHits, r2.Sel.NHits)
	}
	// After reset the caches were cold again; the second run must have
	// re-read from storage (accounts were reset, so cost > 0).
	if d.Servers()[0].Account().Cost().Total() == 0 && d.Servers()[1].Account().Cost().Total() == 0 {
		t.Error("no server cost after cache reset")
	}
}

func TestImportErrors(t *testing.T) {
	d := NewDeployment(Options{})
	c := d.CreateContainer("c")
	if _, err := d.ImportObject(c.ID, object.Property{Name: "o", Type: dtype.Float32, Dims: []uint64{10}}, make([]byte, 39)); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := d.ImportObject(c.ID, object.Property{Name: "", Type: dtype.Float32, Dims: []uint64{10}}, make([]byte, 40)); err == nil {
		t.Error("invalid property accepted")
	}
	if err := d.BuildSortedReplica(99); err == nil {
		t.Error("replica of unknown object accepted")
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err == nil {
		t.Error("double start accepted")
	}
	if _, err := d.ImportObject(c.ID, object.Property{Name: "late", Type: dtype.Float32, Dims: []uint64{10}}, make([]byte, 40)); err == nil {
		t.Error("import after start accepted")
	}
	if err := d.BuildSortedReplica(1); err == nil {
		t.Error("replica after start accepted")
	}
}

func TestIndexBytesReported(t *testing.T) {
	d, _ := vpicDeployment(t, 10000, Options{Servers: 2, Strategy: exec.HistogramIndex, RegionBytes: 8 << 10, BuildIndex: true})
	if d.IndexBytes() == 0 {
		t.Error("no index bytes reported")
	}
	if d.ImportCost().Total() == 0 {
		t.Error("no import cost recorded")
	}
}

func TestQueryValidationErrorPropagates(t *testing.T) {
	d, ids := vpicDeployment(t, 5000, Options{Servers: 2, RegionBytes: 4 << 10})
	_ = ids
	q := &query.Query{Root: query.Leaf(12345, query.OpGT, 0)}
	if _, err := d.Client().Run(q); err == nil {
		t.Error("query on unknown object succeeded")
	}
}

func TestManyQueriesSequentially(t *testing.T) {
	// The Fig. 3 pattern: 15 queries executed sequentially on one warm
	// deployment; later queries benefit from the region cache.
	d, ids := vpicDeployment(t, 30000, Options{Servers: 4, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	var prev uint64 = 1 << 62
	for k, q := range workload.SingleObjectQueries(ids["Energy"]) {
		res, err := d.Client().RunCount(q)
		if err != nil {
			t.Fatalf("query %d: %v", k, err)
		}
		// Selectivity decreases with k (statistically; allow slack for
		// the sparse tail).
		if k < 6 && res.Sel.NHits > prev*2 {
			t.Errorf("query %d: hits %d not decreasing (prev %d)", k, res.Sel.NHits, prev)
		}
		if res.Sel.NHits > 0 {
			prev = res.Sel.NHits
		}
	}
}

func TestLabelHelpers(t *testing.T) {
	if workload.SingleQueryLabel(14) != "3.5<E<3.6" {
		t.Errorf("label = %q", workload.SingleQueryLabel(14))
	}
	if fmt.Sprint(workload.MultiQueryLabel(0)) == "" {
		t.Error("empty multi label")
	}
}

// TestReplicasSnapshotIsCopy pins the aliasguard fix on
// Deployment.Replicas: the returned registry map is the caller's copy,
// so deleting from it must not detach replicas from the deployment.
func TestReplicasSnapshotIsCopy(t *testing.T) {
	d, ids := vpicDeployment(t, 64, Options{Servers: 2, Strategy: exec.SortedHistogram})
	_ = ids
	snap := d.Replicas()
	if len(snap) == 0 {
		t.Fatal("expected at least one replica")
	}
	for id := range snap {
		delete(snap, id)
	}
	if got := d.Replicas(); len(got) == 0 {
		t.Fatal("mutating the snapshot emptied the deployment's registry: Replicas leaked an alias")
	}
}

// TestDeploymentClosePropagatesTeardownErrors pins the errflow fix:
// Deployment.Close used to drop the client's and every listener's close
// error and return nil unconditionally. Closing twice makes the second
// teardown fail (sockets and listeners are already gone), and that
// failure must now surface instead of silently reporting success.
func TestDeploymentClosePropagatesTeardownErrors(t *testing.T) {
	d := NewDeployment(Options{Servers: 2, TCP: true})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("first Close() = %v, want nil", err)
	}
	if err := d.Close(); err == nil {
		t.Fatal("second Close() = nil, want the double-close errors to propagate")
	}
}
