package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"pdcquery/internal/client"
	"pdcquery/internal/exec"
	"pdcquery/internal/query"
	"pdcquery/internal/sched"
	"pdcquery/internal/selection"
	"pdcquery/internal/telemetry"
	"pdcquery/internal/transport"
	"pdcquery/internal/workload"
)

// TestWorkerCountDeterminism pins the scheduler's core contract: the
// merged selection bytes, the modeled costs, and the rendered traces of
// a query batch are identical whether the engine runs serially
// (Workers 0) or region-parallel with 1, 4, or 16 workers.
func TestWorkerCountDeterminism(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Histogram, exec.SortedHistogram} {
		t.Run(strat.String(), func(t *testing.T) {
			type outcome struct {
				sel    []byte
				total  time.Duration
				traces []string
			}
			run := func(workers int) outcome {
				d, ids := vpicDeployment(t, 30000, Options{
					Servers: 4, Strategy: strat, RegionBytes: 8 << 10,
					BuildIndex: true, Workers: workers,
				})
				var o outcome
				for _, q := range workload.SingleObjectQueries(ids["Energy"])[:4] {
					res, err := d.Client().RunTraced(q)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					o.sel = append(o.sel, res.Sel.Encode()...)
					o.total += res.Info.Elapsed.Total()
					o.traces = append(o.traces, res.Trace().Render(false))
				}
				return o
			}
			base := run(0)
			for _, workers := range []int{1, 4, 16} {
				got := run(workers)
				if !bytes.Equal(got.sel, base.sel) {
					t.Errorf("workers=%d: selection bytes differ from serial run", workers)
				}
				if got.total != base.total {
					t.Errorf("workers=%d: elapsed %v, serial %v", workers, got.total, base.total)
				}
				for i := range base.traces {
					if got.traces[i] != base.traces[i] {
						t.Errorf("workers=%d: trace %d differs from serial run:\n--- serial\n%s\n--- parallel\n%s",
							workers, i, base.traces[i], got.traces[i])
					}
				}
			}
		})
	}
}

// extraSession dials a second client into a running deployment: one new
// pipe per server, each served by its own Serve loop, exactly how the
// deployment wires its primary client.
func extraSession(t *testing.T, d *Deployment) *client.Client {
	t.Helper()
	srvs := d.Servers()
	conns := make([]transport.Conn, len(srvs))
	var wg sync.WaitGroup
	for i, srv := range srvs {
		clientSide, serverSide := transport.Pipe()
		conns[i] = clientSide
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Serve(serverSide)
			serverSide.Close()
		}()
	}
	cl := client.New(conns, d.Meta())
	t.Cleanup(func() {
		cl.Close()
		wg.Wait()
	})
	return cl
}

// TestConcurrentSessionsStress runs several client sessions, each with
// many in-flight queries, against a region-parallel deployment and
// checks every result against the brute-force oracle. Run under -race
// (the Makefile's stress target) this exercises the scheduler's
// session/dispatcher/writer interleavings.
func TestConcurrentSessionsStress(t *testing.T) {
	d, ids := vpicDeployment(t, 20000, Options{
		Servers: 2, Strategy: exec.Histogram, RegionBytes: 8 << 10, Workers: 4,
	})
	qs := workload.SingleObjectQueries(ids["Energy"])
	truths := make([]*selection.Selection, len(qs))
	for i, q := range qs {
		truth, err := d.GroundTruth(q)
		if err != nil {
			t.Fatal(err)
		}
		truths[i] = truth
	}

	clients := []*client.Client{d.Client()}
	for len(clients) < 3 {
		clients = append(clients, extraSession(t, d))
	}

	const inflight = 8
	var wg sync.WaitGroup
	errCh := make(chan error, len(clients)*inflight)
	for ci, cl := range clients {
		for m := 0; m < inflight; m++ {
			idx := (ci*inflight + m) % len(qs)
			wg.Add(1)
			go func(cl *client.Client, idx int) {
				defer wg.Done()
				res, err := cl.Run(qs[idx])
				if err != nil {
					errCh <- err
					return
				}
				want := truths[idx]
				if res.Sel.NHits != want.NHits {
					errCh <- errors.New("hit count diverged from oracle")
					return
				}
				for i := range want.Coords {
					if res.Sel.Coords[i] != want.Coords[i] {
						errCh <- errors.New("coords diverged from oracle")
						return
					}
				}
			}(cl, idx)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestOverloadBusyReplies drives a single-worker, depth-1 deployment far
// past its admission bound: the server must push back with busy replies
// (never silently drop a request), and the client's backoff must let at
// least part of the burst complete with oracle-correct results.
func TestOverloadBusyReplies(t *testing.T) {
	d, ids := vpicDeployment(t, 20000, Options{
		Servers: 1, Strategy: exec.FullScan, RegionBytes: 8 << 10,
		Workers: 1, QueueDepth: 1,
	})
	cl := d.Client()
	// Pace retries in real time so the burst is not a pure spin loop.
	cl.SetSleeper(telemetry.WallSleep)
	q := &query.Query{Root: query.Leaf(ids["Energy"], query.OpGT, 1.0)}
	truth, err := d.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}

	const burst = 24
	futures := make([]*client.Future, burst)
	for i := range futures {
		futures[i] = cl.RunAsync(q)
	}
	var completed, rejectedAfterRetries int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range futures {
			res, err := f.Wait()
			switch {
			case err == nil:
				completed++
				if res.Sel.NHits != truth.NHits {
					t.Errorf("overloaded query: %d hits, want %d", res.Sel.NHits, truth.NHits)
				}
			case errors.Is(err, sched.ErrBusy):
				// Retry budget exhausted: an explicit, typed outcome —
				// still a reply, not a drop.
				rejectedAfterRetries++
			default:
				t.Errorf("overloaded query failed with non-busy error: %v", err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burst did not drain: replies were dropped or a request hung")
	}
	if completed == 0 {
		t.Error("no queries completed under overload")
	}
	if completed+rejectedAfterRetries != burst {
		t.Errorf("%d completed + %d busy != %d issued", completed, rejectedAfterRetries, burst)
	}
	if rejected := d.Servers()[0].Metrics().Counter("sched.rejected"); rejected == 0 {
		t.Error("admission control never rejected: overload was not exercised")
	}
	t.Logf("burst=%d completed=%d busy-after-retries=%d", burst, completed, rejectedAfterRetries)
}
