package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"pdcquery/internal/object"
	"pdcquery/internal/sortstore"
)

// Checkpointing: the paper persists metadata periodically for fault
// tolerance (§II). A deployment checkpoint extends that to the full
// system state — metadata (objects, regions, histograms, index
// directories, tags), sorted-replica registries, and every stored extent
// — so an imported dataset can be written once and served by any number
// of later processes (cmd/pdc-import writes one, cmd/pdc-server loads
// it).
const (
	ckptMagic   = uint32(0x50444343) // "PDCC"
	ckptVersion = uint32(1)
)

// SaveCheckpoint writes the deployment's complete state to w. Valid
// before or after Start (the store is read uncharged).
func (d *Deployment) SaveCheckpoint(w io.Writer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], ckptVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	meta, err := d.meta.Snapshot()
	if err != nil {
		return err
	}
	if err := writeBlob(w, meta); err != nil {
		return err
	}
	var reps bytes.Buffer
	if err := gob.NewEncoder(&reps).Encode(d.replicas); err != nil {
		return fmt.Errorf("core: encode replicas: %w", err)
	}
	if err := writeBlob(w, reps.Bytes()); err != nil {
		return err
	}
	if _, err := d.store.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// LoadCheckpoint builds a fresh, not-yet-started deployment from a
// checkpoint written by SaveCheckpoint. Cost-model and server options
// come from opts; the data, metadata, and replicas come from the
// checkpoint (opts.RegionBytes and index options are ignored, since the
// partitioning was fixed at import time).
func LoadCheckpoint(r io.Reader, opts Options) (*Deployment, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != ckptMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != ckptVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", v)
	}
	d := NewDeployment(opts)
	meta, err := readBlob(r)
	if err != nil {
		return nil, err
	}
	if err := d.meta.Restore(meta); err != nil {
		return nil, err
	}
	reps, err := readBlob(r)
	if err != nil {
		return nil, err
	}
	replicas := make(map[object.ID]*sortstore.Replica)
	if err := gob.NewDecoder(bytes.NewReader(reps)).Decode(&replicas); err != nil {
		return nil, fmt.Errorf("core: decode replicas: %w", err)
	}
	d.replicas = replicas
	if _, err := d.store.ReadFrom(r); err != nil {
		return nil, err
	}
	// Re-establish per-object replica markers.
	for id := range replicas {
		if o, ok := d.meta.Get(id); ok {
			o.SortedBy = id
		}
	}
	return d, nil
}

func writeBlob(w io.Writer, b []byte) error {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBlob(r io.Reader) ([]byte, error) {
	var n [8]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint64(n[:])
	if size > 1<<40 {
		return nil, fmt.Errorf("core: blob of %d bytes exceeds limit", size)
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
