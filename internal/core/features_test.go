package core

import (
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/exec"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
	"pdcquery/internal/region"
	"pdcquery/internal/selection"
	"pdcquery/internal/simio"
	"pdcquery/internal/workload"
)

func TestMigrateObjectToBurstBuffer(t *testing.T) {
	d, ids := vpicDeployment(t, 20000, Options{
		Servers: 4, Strategy: exec.SortedHistogram, RegionBytes: 8 << 10, BuildIndex: true,
	})
	energy := ids["Energy"]
	q := &query.Query{Root: query.Between(energy, 2.1, 2.5, false, false)}

	// Cold query from the PFS tier.
	d.ResetCaches()
	resPFS, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}

	// Stage the object (data, index, sorted replica) into the burst
	// buffer; the answer must not change and the cold query must get
	// faster (the burst buffer's latency and bandwidth are better).
	if err := d.MigrateObject(energy, simio.BurstBuffer); err != nil {
		t.Fatal(err)
	}
	o, _ := d.Meta().Get(energy)
	for _, rm := range o.Regions {
		tier, err := d.Store().TierOf(rm.ExtentKey)
		if err != nil {
			t.Fatal(err)
		}
		if tier != simio.BurstBuffer {
			t.Fatalf("region %d still on %v", rm.Index, tier)
		}
		if rm.Tier != simio.BurstBuffer {
			t.Fatalf("region %d metadata tier not updated", rm.Index)
		}
	}
	d.ResetCaches()
	resBB, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if resBB.Sel.NHits != resPFS.Sel.NHits {
		t.Fatalf("migration changed hits: %d vs %d", resBB.Sel.NHits, resPFS.Sel.NHits)
	}
	if resBB.Info.Elapsed.Total() >= resPFS.Info.Elapsed.Total() {
		t.Errorf("burst buffer (%v) not faster than PFS (%v)",
			resBB.Info.Elapsed.Total(), resPFS.Info.Elapsed.Total())
	}
	// Unknown object.
	if err := d.MigrateObject(9999, simio.BurstBuffer); err == nil {
		t.Error("migrating unknown object succeeded")
	}
}

func TestEstimateNHitsBracketsTruth(t *testing.T) {
	d, ids := vpicDeployment(t, 30000, Options{Servers: 4, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	cli := d.Client()
	for k, q := range workload.SingleObjectQueries(ids["Energy"]) {
		lower, upper, err := cli.EstimateNHits(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cli.RunCount(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sel.NHits < lower || res.Sel.NHits > upper {
			t.Errorf("query %d: truth %d outside estimate [%d, %d]", k, res.Sel.NHits, lower, upper)
		}
	}
}

func TestEstimateNHitsMultiObjectAndOr(t *testing.T) {
	d, ids := vpicDeployment(t, 20000, Options{Servers: 2, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	cli := d.Client()

	// AND: upper bound is the tightest single condition.
	q := workload.MultiObjectQueries(ids["Energy"], ids["x"], ids["y"], ids["z"])[2]
	lower, upper, err := cli.EstimateNHits(q)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := cli.RunCount(q)
	if res.Sel.NHits < lower || res.Sel.NHits > upper {
		t.Errorf("multi: truth %d outside [%d, %d]", res.Sel.NHits, lower, upper)
	}

	// OR of two windows.
	or := &query.Query{Root: query.Or(
		query.Between(ids["Energy"], 2.1, 2.2, false, false),
		query.Between(ids["Energy"], 3.0, 3.2, false, false))}
	lower, upper, err = cli.EstimateNHits(or)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = cli.RunCount(or)
	if res.Sel.NHits < lower || res.Sel.NHits > upper {
		t.Errorf("or: truth %d outside [%d, %d]", res.Sel.NHits, lower, upper)
	}

	// Constraint: lower bound degrades to zero but still brackets.
	cq := &query.Query{Root: query.Leaf(ids["Energy"], query.OpGT, 1.0)}
	cq.SetRegion(region.New([]uint64{1000}, []uint64{2000}))
	lower, upper, err = cli.EstimateNHits(cq)
	if err != nil {
		t.Fatal(err)
	}
	if lower != 0 {
		t.Errorf("constrained lower = %d, want 0", lower)
	}
	res, _ = cli.RunCount(cq)
	if res.Sel.NHits > upper {
		t.Errorf("constrained: truth %d above upper %d", res.Sel.NHits, upper)
	}

	// Errors.
	if _, _, err := cli.EstimateNHits(&query.Query{Root: query.Leaf(9999, query.OpGT, 0)}); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestTwoDimensionalObjectEndToEnd(t *testing.T) {
	// A 2-D object (rows x cols) with a rectangular spatial constraint,
	// exercising the N-D region paths through the whole stack.
	const rows, cols = 200, 150
	d := NewDeployment(Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 4 << 10, BuildIndex: true})
	c := d.CreateContainer("matrix")
	vals := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			vals[r*cols+cc] = float32(r + cc)
		}
	}
	o, err := d.ImportObject(c.ID, object.Property{
		Name: "temp", Type: dtype.Float32, Dims: []uint64{rows, cols},
	}, dtype.Bytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BuildSortedReplica(o.ID); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q := &query.Query{Root: query.Between(o.ID, 100, 120, false, false)}
	q.SetRegion(region.New([]uint64{50, 30}, []uint64{40, 60}))
	want, err := d.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits != want.NHits {
		t.Fatalf("2-D constrained query: %d hits, want %d", res.Sel.NHits, want.NHits)
	}
	// Every strategy handles the 2-D constraint identically.
	for _, s := range []exec.Strategy{exec.FullScan, exec.HistogramIndex, exec.SortedHistogram} {
		d.SetStrategy(s)
		d.ResetCaches()
		r2, err := d.Client().Run(q)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r2.Sel.NHits != want.NHits {
			t.Errorf("%v: 2-D query %d hits, want %d", s, r2.Sel.NHits, want.NHits)
		}
	}
	d.SetStrategy(exec.Histogram)
	d.ResetCaches()
	if want.NHits == 0 {
		t.Fatal("test query selected nothing; choose different windows")
	}
	// Coordinates decode to in-constraint 2-D positions.
	buf := make([]uint64, 2)
	for i := 0; i < int(res.Sel.NHits); i++ {
		coord := res.Sel.Coord(i, buf)
		if coord[0] < 50 || coord[0] >= 90 || coord[1] < 30 || coord[1] >= 90 {
			t.Fatalf("hit %d at %v outside the constraint", i, coord)
		}
		v := vals[coord[0]*cols+coord[1]]
		if v <= 100 || v >= 120 {
			t.Fatalf("hit %d value %v outside the range", i, v)
		}
	}
	// Get-data on the 2-D selection.
	data, _, err := res.GetData(o.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := dtype.View[float32](data)
	for i, lin := range res.Sel.Coords {
		if got[i] != vals[lin] {
			t.Fatalf("2-D get-data mismatch at %d", i)
		}
	}
}

func TestGetDataAfterOrQuery(t *testing.T) {
	// OR results skip the server-side value stash (values cannot be
	// aligned across conjuncts), so get-data falls back to extraction —
	// the answer must be identical either way.
	d, ids := vpicDeployment(t, 20000, Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 8 << 10})
	v := workload.GenerateVPIC(20000, 42)
	q := &query.Query{Root: query.Or(
		query.Between(ids["Energy"], 2.1, 2.3, false, false),
		query.Between(ids["Energy"], 3.0, 3.4, false, false))}
	res, err := d.Client().Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sel.NHits == 0 {
		t.Fatal("no hits")
	}
	data, _, err := res.GetData(ids["Energy"])
	if err != nil {
		t.Fatal(err)
	}
	got := dtype.View[float32](data)
	for i, c := range res.Sel.Coords {
		if got[i] != v.Vars["Energy"][c] {
			t.Fatalf("or get-data[%d] = %v, want %v", i, got[i], v.Vars["Energy"][c])
		}
		e := float64(got[i])
		if !((e > 2.1 && e < 2.3) || (e > 3.0 && e < 3.4)) {
			t.Fatalf("hit %d value %v outside both windows", i, e)
		}
	}
	// Batched retrieval over the OR selection.
	var rebuilt []float32
	if _, err := res.GetDataBatch(ids["Energy"], 50, func(_ *selection.Selection, b []byte) error {
		rebuilt = append(rebuilt, dtype.View[float32](b)...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != int(res.Sel.NHits) {
		t.Fatalf("batched %d values, want %d", len(rebuilt), res.Sel.NHits)
	}
	for i := range rebuilt {
		if rebuilt[i] != got[i] {
			t.Fatalf("batch value %d differs", i)
		}
	}
}

func TestDeploymentStats(t *testing.T) {
	d, ids := vpicDeployment(t, 10000, Options{Servers: 3, Strategy: exec.Histogram, RegionBytes: 4 << 10})
	if s := d.Stats(); s.ReadBytes != 0 || s.StoredBytes == 0 {
		t.Fatalf("pre-query stats = %+v", s)
	}
	q := &query.Query{Root: query.Between(ids["Energy"], 2.1, 2.5, false, false)}
	if _, err := d.Client().Run(q); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.ReadOps == 0 || s.ReadBytes == 0 || s.BusiestServer == 0 {
		t.Errorf("post-query stats = %+v", s)
	}
	if s.CachedBytes == 0 {
		t.Error("no regions cached after evaluation")
	}
	// A repeat of the same query hits the cache.
	before := s.CacheHits
	if _, err := d.Client().Run(q); err != nil {
		t.Fatal(err)
	}
	if d.Stats().CacheHits <= before {
		t.Error("repeat query did not hit the cache")
	}
	d.ResetCaches()
	if s := d.Stats(); s.ReadBytes != 0 || s.CachedBytes != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}
