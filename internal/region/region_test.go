package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		r    Region
		ok   bool
		name string
	}{
		{New([]uint64{0}, []uint64{10}), true, "1d"},
		{New([]uint64{1, 2}, []uint64{3, 4}), true, "2d"},
		{Region{}, false, "zero rank"},
		{New([]uint64{0}, []uint64{0}), false, "zero count"},
		{New([]uint64{0, 0}, []uint64{1}), false, "rank mismatch"},
	}
	for _, c := range cases {
		if err := c.r.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNumElems(t *testing.T) {
	if got := New([]uint64{5}, []uint64{10}).NumElems(); got != 10 {
		t.Errorf("1d NumElems = %d, want 10", got)
	}
	if got := New([]uint64{0, 0, 0}, []uint64{2, 3, 4}).NumElems(); got != 24 {
		t.Errorf("3d NumElems = %d, want 24", got)
	}
	if got := (Region{}).NumElems(); got != 0 {
		t.Errorf("empty NumElems = %d, want 0", got)
	}
}

func TestCover(t *testing.T) {
	r := Cover([]uint64{7, 9})
	if r.Offset[0] != 0 || r.Offset[1] != 0 || r.Count[0] != 7 || r.Count[1] != 9 {
		t.Errorf("Cover = %v", r)
	}
	if r.NumElems() != 63 {
		t.Errorf("Cover NumElems = %d", r.NumElems())
	}
}

func TestIntersect(t *testing.T) {
	a := New([]uint64{0, 0}, []uint64{10, 10})
	b := New([]uint64{5, 8}, []uint64{10, 10})
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("expected non-empty intersection")
	}
	want := New([]uint64{5, 8}, []uint64{5, 2})
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// Disjoint.
	c := New([]uint64{20, 0}, []uint64{5, 5})
	if _, ok := Intersect(a, c); ok {
		t.Error("disjoint regions intersected")
	}
	// Touching edges do not overlap.
	d := New([]uint64{10, 0}, []uint64{5, 10})
	if _, ok := Intersect(a, d); ok {
		t.Error("touching regions intersected")
	}
	// Rank mismatch.
	if _, ok := Intersect(a, New([]uint64{0}, []uint64{1})); ok {
		t.Error("rank-mismatched regions intersected")
	}
}

func TestIntersectCommutative(t *testing.T) {
	f := func(ao, ac, bo, bc uint8) bool {
		a := New([]uint64{uint64(ao)}, []uint64{uint64(ac) + 1})
		b := New([]uint64{uint64(bo)}, []uint64{uint64(bc) + 1})
		r1, ok1 := Intersect(a, b)
		r2, ok2 := Intersect(b, a)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || r1.Equal(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	outer := New([]uint64{0, 0}, []uint64{10, 10})
	if !outer.Contains(New([]uint64{2, 3}, []uint64{4, 5})) {
		t.Error("inner region not contained")
	}
	if !outer.Contains(outer) {
		t.Error("region does not contain itself")
	}
	if outer.Contains(New([]uint64{8, 0}, []uint64{5, 5})) {
		t.Error("overflowing region contained")
	}
	if outer.Contains(New([]uint64{0}, []uint64{5})) {
		t.Error("rank-mismatched region contained")
	}
}

func TestContainsCoord(t *testing.T) {
	r := New([]uint64{5, 10}, []uint64{5, 10})
	if !r.ContainsCoord([]uint64{5, 10}) || !r.ContainsCoord([]uint64{9, 19}) {
		t.Error("corner coords not contained")
	}
	if r.ContainsCoord([]uint64{10, 10}) || r.ContainsCoord([]uint64{5, 20}) {
		t.Error("exclusive upper bound violated")
	}
	if r.ContainsCoord([]uint64{5}) {
		t.Error("rank-mismatched coord contained")
	}
}

func TestLinearCoordRoundTrip(t *testing.T) {
	dims := []uint64{4, 5, 6}
	buf := make([]uint64, 3)
	for idx := uint64(0); idx < 120; idx++ {
		coord := LinearToCoord(dims, idx, buf)
		if got := CoordToLinear(dims, coord); got != idx {
			t.Fatalf("round trip %d -> %v -> %d", idx, coord, got)
		}
	}
}

func TestLinearRuns1D(t *testing.T) {
	runs := LinearRuns([]uint64{100}, New([]uint64{10}, []uint64{25}))
	if len(runs) != 1 || runs[0].Start != 10 || runs[0].Len != 25 {
		t.Errorf("1d runs = %v", runs)
	}
}

func TestLinearRuns2D(t *testing.T) {
	// 10x10 object, region rows 2..4, cols 3..6.
	runs := LinearRuns([]uint64{10, 10}, New([]uint64{2, 3}, []uint64{2, 3}))
	want := []LinearRun{{23, 3}, {33, 3}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
}

func TestLinearRuns3D(t *testing.T) {
	dims := []uint64{3, 4, 5}
	r := New([]uint64{1, 1, 2}, []uint64{2, 2, 2})
	runs := LinearRuns(dims, r)
	// Verify by brute force: every element of the region appears in
	// exactly the produced runs, in order.
	var wantIdx []uint64
	buf := make([]uint64, 3)
	for idx := uint64(0); idx < 60; idx++ {
		if r.ContainsCoord(LinearToCoord(dims, idx, buf)) {
			wantIdx = append(wantIdx, idx)
		}
	}
	var gotIdx []uint64
	for _, run := range runs {
		for i := uint64(0); i < run.Len; i++ {
			gotIdx = append(gotIdx, run.Start+i)
		}
	}
	if len(gotIdx) != len(wantIdx) {
		t.Fatalf("runs cover %d elems, want %d", len(gotIdx), len(wantIdx))
	}
	for i := range wantIdx {
		if gotIdx[i] != wantIdx[i] {
			t.Fatalf("elem %d = %d, want %d", i, gotIdx[i], wantIdx[i])
		}
	}
	if int(r.NumElems()) != len(wantIdx) {
		t.Errorf("NumElems = %d, brute force = %d", r.NumElems(), len(wantIdx))
	}
}

func TestLinearRunsRankMismatch(t *testing.T) {
	if runs := LinearRuns([]uint64{10}, New([]uint64{0, 0}, []uint64{2, 2})); runs != nil {
		t.Errorf("rank mismatch runs = %v, want nil", runs)
	}
	if runs := LinearRuns(nil, Region{}); runs != nil {
		t.Errorf("empty dims runs = %v, want nil", runs)
	}
}

func TestSplit1D(t *testing.T) {
	regions := Split1D(100, 30)
	if len(regions) != 4 {
		t.Fatalf("split count = %d, want 4", len(regions))
	}
	var total uint64
	var next uint64
	for i, r := range regions {
		if r.Offset[0] != next {
			t.Errorf("region %d offset = %d, want %d", i, r.Offset[0], next)
		}
		next += r.Count[0]
		total += r.NumElems()
	}
	if total != 100 {
		t.Errorf("split total = %d, want 100", total)
	}
	if last := regions[3]; last.Count[0] != 10 {
		t.Errorf("last region count = %d, want 10", last.Count[0])
	}
	if got := Split1D(0, 10); got != nil {
		t.Errorf("Split1D(0) = %v, want nil", got)
	}
	// Exact division has no short tail.
	if got := Split1D(90, 30); len(got) != 3 || got[2].Count[0] != 30 {
		t.Errorf("exact split = %v", got)
	}
}

func TestSplit1DPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split1D(_, 0) did not panic")
		}
	}()
	Split1D(10, 0)
}

func TestSplitRows(t *testing.T) {
	dims := []uint64{10, 7}
	regions := SplitRows(dims, 4)
	if len(regions) != 3 {
		t.Fatalf("split count = %d, want 3", len(regions))
	}
	var total uint64
	for _, r := range regions {
		if r.Count[1] != 7 || r.Offset[1] != 0 {
			t.Errorf("inner dim not whole: %v", r)
		}
		total += r.NumElems()
	}
	if total != 70 {
		t.Errorf("total = %d, want 70", total)
	}
	if got := SplitRows(nil, 4); got != nil {
		t.Errorf("SplitRows(nil) = %v", got)
	}
}

func TestPropertySplit1DPartition(t *testing.T) {
	f := func(total uint16, per uint8) bool {
		p := uint64(per) + 1
		regions := Split1D(uint64(total), p)
		var sum uint64
		var next uint64
		for _, r := range regions {
			if r.Offset[0] != next || r.Count[0] == 0 || r.Count[0] > p {
				return false
			}
			next += r.Count[0]
			sum += r.Count[0]
		}
		return sum == uint64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := New(
			[]uint64{uint64(rng.Intn(50)), uint64(rng.Intn(50))},
			[]uint64{uint64(rng.Intn(50)) + 1, uint64(rng.Intn(50)) + 1})
		b := New(
			[]uint64{uint64(rng.Intn(50)), uint64(rng.Intn(50))},
			[]uint64{uint64(rng.Intn(50)) + 1, uint64(rng.Intn(50)) + 1})
		x, ok := Intersect(a, b)
		if !ok {
			continue
		}
		if !a.Contains(x) || !b.Contains(x) {
			t.Fatalf("intersection %v not contained in %v and %v", x, a, b)
		}
		if x.NumElems() > a.NumElems() || x.NumElems() > b.NumElems() {
			t.Fatalf("intersection larger than inputs")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	r := New([]uint64{1}, []uint64{2})
	c := r.Clone()
	c.Offset[0] = 99
	if r.Offset[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !r.Clone().Equal(r) {
		t.Error("Clone not equal to original")
	}
}

func TestString(t *testing.T) {
	if got := New([]uint64{5, 0}, []uint64{5, 3}).String(); got != "[5:10)x[0:3)" {
		t.Errorf("String = %q", got)
	}
}
