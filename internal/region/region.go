// Package region implements the N-dimensional region algebra used by the
// object model and the query service.
//
// A PDC object is an N-dimensional array stored row-major; large objects
// are partitioned into regions, the basic unit of data placement and query
// evaluation (§III-B of the paper). A region is a hyper-rectangle described
// by per-dimension offsets and counts. Users may also attach an arbitrary
// region as a spatial query constraint (PDCquery_set_region); it does not
// need to match any internal partition, so the algebra here supports
// intersection, containment, and linearization against any region.
package region

import (
	"fmt"
	"strings"
)

// Region is a hyper-rectangle: for each dimension d, it spans
// [Offset[d], Offset[d]+Count[d]). A Region with no dimensions is invalid
// except as a zero placeholder.
type Region struct {
	Offset []uint64
	Count  []uint64
}

// New returns a region with the given offsets and counts.
func New(offset, count []uint64) Region {
	return Region{Offset: offset, Count: count}
}

// Cover returns the region spanning an entire object with the given dims.
func Cover(dims []uint64) Region {
	r := Region{Offset: make([]uint64, len(dims)), Count: make([]uint64, len(dims))}
	copy(r.Count, dims)
	return r
}

// Rank returns the number of dimensions.
func (r Region) Rank() int { return len(r.Offset) }

// Validate checks structural invariants: matching rank, nonzero rank, and
// nonzero counts in every dimension.
func (r Region) Validate() error {
	if len(r.Offset) == 0 {
		return fmt.Errorf("region: zero rank")
	}
	if len(r.Offset) != len(r.Count) {
		return fmt.Errorf("region: offset rank %d != count rank %d", len(r.Offset), len(r.Count))
	}
	for d, c := range r.Count {
		if c == 0 {
			return fmt.Errorf("region: zero count in dimension %d", d)
		}
	}
	return nil
}

// NumElems returns the number of elements in the region.
func (r Region) NumElems() uint64 {
	if len(r.Count) == 0 {
		return 0
	}
	n := uint64(1)
	for _, c := range r.Count {
		n *= c
	}
	return n
}

// Equal reports whether two regions are identical.
func (r Region) Equal(o Region) bool {
	if len(r.Offset) != len(o.Offset) {
		return false
	}
	for d := range r.Offset {
		if r.Offset[d] != o.Offset[d] || r.Count[d] != o.Count[d] {
			return false
		}
	}
	return true
}

// String formats the region as [off:off+count)x... per dimension.
func (r Region) String() string {
	var b strings.Builder
	for d := range r.Offset {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%d:%d)", r.Offset[d], r.Offset[d]+r.Count[d])
	}
	return b.String()
}

// Clone returns a deep copy.
func (r Region) Clone() Region {
	c := Region{Offset: make([]uint64, len(r.Offset)), Count: make([]uint64, len(r.Count))}
	copy(c.Offset, r.Offset)
	copy(c.Count, r.Count)
	return c
}

// Intersect returns the intersection of two same-rank regions and whether
// it is non-empty.
func Intersect(a, b Region) (Region, bool) {
	if len(a.Offset) != len(b.Offset) {
		return Region{}, false
	}
	out := Region{Offset: make([]uint64, len(a.Offset)), Count: make([]uint64, len(a.Offset))}
	for d := range a.Offset {
		lo := a.Offset[d]
		if b.Offset[d] > lo {
			lo = b.Offset[d]
		}
		aEnd := a.Offset[d] + a.Count[d]
		bEnd := b.Offset[d] + b.Count[d]
		hi := aEnd
		if bEnd < hi {
			hi = bEnd
		}
		if hi <= lo {
			return Region{}, false
		}
		out.Offset[d] = lo
		out.Count[d] = hi - lo
	}
	return out, true
}

// Contains reports whether region r fully contains region o.
func (r Region) Contains(o Region) bool {
	if len(r.Offset) != len(o.Offset) {
		return false
	}
	for d := range r.Offset {
		if o.Offset[d] < r.Offset[d] ||
			o.Offset[d]+o.Count[d] > r.Offset[d]+r.Count[d] {
			return false
		}
	}
	return true
}

// ContainsCoord reports whether the coordinate lies inside the region.
func (r Region) ContainsCoord(coord []uint64) bool {
	if len(coord) != len(r.Offset) {
		return false
	}
	for d := range coord {
		if coord[d] < r.Offset[d] || coord[d] >= r.Offset[d]+r.Count[d] {
			return false
		}
	}
	return true
}

// CoordToLinear converts an absolute coordinate to the row-major linear
// index within an object of the given dims.
func CoordToLinear(dims, coord []uint64) uint64 {
	var idx uint64
	for d := range dims {
		idx = idx*dims[d] + coord[d]
	}
	return idx
}

// LinearToCoord converts a row-major linear index within an object of the
// given dims to an absolute coordinate, writing into buf (which must have
// len(dims) capacity) and returning it.
func LinearToCoord(dims []uint64, idx uint64, buf []uint64) []uint64 {
	buf = buf[:len(dims)]
	for d := len(dims) - 1; d >= 0; d-- {
		buf[d] = idx % dims[d]
		idx /= dims[d]
	}
	return buf
}

// LinearRun is a contiguous run of row-major linear indices
// [Start, Start+Len).
type LinearRun struct {
	Start uint64
	Len   uint64
}

// LinearRuns returns the contiguous row-major runs of linear indices
// covered by region r inside an object with the given dims. For a 1-D
// region this is a single run. The runs are produced in increasing order.
func LinearRuns(dims []uint64, r Region) []LinearRun {
	rank := len(dims)
	if rank == 0 || len(r.Offset) != rank {
		return nil
	}
	// The innermost dimension is contiguous; iterate the outer dims.
	runLen := r.Count[rank-1]
	if runLen == 0 {
		return nil
	}
	outer := uint64(1)
	for d := 0; d < rank-1; d++ {
		outer *= r.Count[d]
	}
	runs := make([]LinearRun, 0, outer)
	coord := make([]uint64, rank)
	copy(coord, r.Offset)
	for i := uint64(0); i < outer; i++ {
		start := CoordToLinear(dims, coord)
		runs = append(runs, LinearRun{Start: start, Len: runLen})
		// Increment the outer coordinate (odometer order).
		for d := rank - 2; d >= 0; d-- {
			coord[d]++
			if coord[d] < r.Offset[d]+r.Count[d] {
				break
			}
			coord[d] = r.Offset[d]
		}
	}
	return runs
}

// Split1D partitions a 1-D object of total elements into consecutive
// regions of at most elemsPerRegion elements. The last region may be
// shorter. It panics if elemsPerRegion is zero.
func Split1D(total, elemsPerRegion uint64) []Region {
	if elemsPerRegion == 0 {
		panic("region: Split1D with zero region size")
	}
	if total == 0 {
		return nil
	}
	n := (total + elemsPerRegion - 1) / elemsPerRegion
	out := make([]Region, 0, n)
	for off := uint64(0); off < total; off += elemsPerRegion {
		cnt := elemsPerRegion
		if off+cnt > total {
			cnt = total - off
		}
		out = append(out, Region{Offset: []uint64{off}, Count: []uint64{cnt}})
	}
	return out
}

// SplitRows partitions an N-D object along its first (slowest-varying)
// dimension into regions of at most rowsPerRegion rows each; all other
// dimensions are kept whole. For rank-1 objects this equals Split1D.
func SplitRows(dims []uint64, rowsPerRegion uint64) []Region {
	if rowsPerRegion == 0 {
		panic("region: SplitRows with zero rows per region")
	}
	if len(dims) == 0 || dims[0] == 0 {
		return nil
	}
	n := (dims[0] + rowsPerRegion - 1) / rowsPerRegion
	out := make([]Region, 0, n)
	for off := uint64(0); off < dims[0]; off += rowsPerRegion {
		cnt := rowsPerRegion
		if off+cnt > dims[0] {
			cnt = dims[0] - off
		}
		r := Cover(dims)
		r.Offset[0] = off
		r.Count[0] = cnt
		out = append(out, r)
	}
	return out
}
