package qlang

import "testing"

// FuzzParseQuery asserts the parser's two global properties on
// arbitrary input: it never panics (errors are typed ParseErrors),
// and any accepted input round-trips — render is a fixed point under
// parse∘render.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"select count where x > 5",
		"select ids where x between 1 and 2 or y >= -3.5",
		`explain analyze select hist(Energy, 32) where tag run = "a" and Energy <= 1e6`,
		"select count where ((x > 1 and y < 2) or x = 0) and y >= 1",
		"select count where 5 < x",
		`select count where tag k = "v \" w"`,
		"select hist(c, 65536) where c = 0.5e-3",
		"select count where x > ",
		"(((((",
		"select count where x !!! 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		canon := q.Render()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical render %q of accepted input %q does not reparse: %v", canon, src, err)
		}
		if got := q2.Render(); got != canon {
			t.Fatalf("render not a fixed point: %q → %q (input %q)", canon, got, src)
		}
	})
}
