package qlang

import (
	"fmt"

	"pdcquery/internal/metadata"
	"pdcquery/internal/object"
	"pdcquery/internal/query"
)

// Lowered is the engine-facing form of a parsed statement: the numeric
// condition tree, the metadata tag conditions gating object
// visibility, and the projection.
type Lowered struct {
	Query      *query.Query
	Tags       []metadata.TagCond
	Projection Projection
	// HistObj is the resolved object of a hist projection column.
	HistObj object.ID
}

// Lower resolves column names through the metadata and produces the
// query.Cond tree plus the tag conditions. Tag conditions may only be
// AND-combined with the rest of the where clause (they gate object
// visibility, so a disjunction over tags has no single-engine
// equivalent); a tag under OR is a typed error. A where clause of only
// tag conditions is an error too — the engine needs at least one
// numeric condition to evaluate.
func (q *Query) Lower(resolve func(name string) (object.ID, bool)) (*Lowered, error) {
	out := &Lowered{Projection: q.Projection}
	if q.Projection.Kind == ProjHist {
		id, ok := resolve(q.Projection.Col)
		if !ok {
			return nil, fmt.Errorf("qlang: unknown hist column %q", q.Projection.Col)
		}
		out.HistObj = id
	}
	if q.Where == nil {
		return nil, fmt.Errorf("qlang: missing where clause")
	}
	root, err := lowerExpr(q.Where, resolve, false, &out.Tags)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("qlang: where clause has no numeric conditions")
	}
	out.Query = &query.Query{Root: root}
	return out, nil
}

// lowerExpr lowers one expression node. underOr marks that the node
// sits beneath an OR, where tag conditions are rejected. Tag nodes
// lower to a nil numeric subtree and append to tags; query.And treats
// the nil side as the identity.
func lowerExpr(e Expr, resolve func(name string) (object.ID, bool), underOr bool, tags *[]metadata.TagCond) (*query.Node, error) {
	switch n := e.(type) {
	case *Cmp:
		id, ok := resolve(n.Col)
		if !ok {
			return nil, fmt.Errorf("qlang: unknown column %q", n.Col)
		}
		return query.Leaf(id, n.Op, n.Value), nil
	case *Between:
		id, ok := resolve(n.Col)
		if !ok {
			return nil, fmt.Errorf("qlang: unknown column %q", n.Col)
		}
		return query.Between(id, n.Lo, n.Hi, true, true), nil
	case *Tag:
		if underOr {
			return nil, fmt.Errorf("qlang: tag condition %s=%q under OR is not supported", n.Key, n.Value)
		}
		*tags = append(*tags, metadata.TagCond{Key: n.Key, Value: n.Value})
		return nil, nil
	case *Logic:
		childUnderOr := underOr || n.Or
		l, err := lowerExpr(n.Left, resolve, childUnderOr, tags)
		if err != nil {
			return nil, err
		}
		r, err := lowerExpr(n.Right, resolve, childUnderOr, tags)
		if err != nil {
			return nil, err
		}
		if n.Or {
			if l == nil || r == nil {
				return nil, fmt.Errorf("qlang: OR with an empty side")
			}
			return query.Or(l, r), nil
		}
		return query.And(l, r), nil
	}
	return nil, fmt.Errorf("qlang: unknown expression node %T", e)
}
