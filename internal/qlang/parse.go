package qlang

import (
	"strings"

	"pdcquery/internal/query"
)

// parser is a one-token-lookahead recursive-descent parser.
type parser struct {
	src string
	lx  lexer
	tok token // lookahead
}

// Parse parses one statement. Errors are always *ParseError with
// position info.
func Parse(src string) (*Query, error) {
	p := &parser{src: src, lx: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(src, p.tok.pos, "unexpected trailing input starting at %q", p.tokText())
	}
	return q, nil
}

// advance moves the lookahead one token forward.
func (p *parser) advance() *ParseError {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// tokText describes the lookahead for error messages.
func (p *parser) tokText() string {
	switch p.tok.kind {
	case tokEOF:
		return "end of input"
	case tokIdent, tokNumber:
		return p.tok.text
	case tokString:
		return `"` + p.tok.text + `"`
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokLT:
		return "<"
	case tokLE:
		return "<="
	case tokGT:
		return ">"
	case tokGE:
		return ">="
	case tokEQ:
		return "="
	}
	return "?"
}

// keyword reports whether the lookahead is the given keyword
// (case-insensitive identifier match).
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

// expectKeyword consumes a required keyword.
func (p *parser) expectKeyword(kw string) *ParseError {
	if !p.keyword(kw) {
		return errAt(p.src, p.tok.pos, "expected %q, found %q", kw, p.tokText())
	}
	return p.advance()
}

// reserved words may not be used as column or tag names.
var reserved = map[string]bool{
	"select": true, "where": true, "and": true, "or": true,
	"between": true, "tag": true, "count": true, "ids": true,
	"hist": true, "explain": true, "analyze": true,
}

// parseQuery := [explain [analyze]] select projection [where expr]
func (p *parser) parseQuery() (*Query, *ParseError) {
	q := &Query{}
	if p.keyword("explain") {
		q.Explain = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.keyword("analyze") {
			q.Analyze = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	proj, err := p.parseProjection()
	if err != nil {
		return nil, err
	}
	q.Projection = proj
	if p.keyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	return q, nil
}

// parseProjection := count | ids | hist '(' ident ',' int ')'
func (p *parser) parseProjection() (Projection, *ParseError) {
	switch {
	case p.keyword("count"):
		return Projection{Kind: ProjCount}, p.advance()
	case p.keyword("ids"):
		return Projection{Kind: ProjIDs}, p.advance()
	case p.keyword("hist"):
		if err := p.advance(); err != nil {
			return Projection{}, err
		}
		if p.tok.kind != tokLParen {
			return Projection{}, errAt(p.src, p.tok.pos, "expected '(' after hist, found %q", p.tokText())
		}
		if err := p.advance(); err != nil {
			return Projection{}, err
		}
		col, err := p.parseName("column")
		if err != nil {
			return Projection{}, err
		}
		if p.tok.kind != tokComma {
			return Projection{}, errAt(p.src, p.tok.pos, "expected ',' after hist column, found %q", p.tokText())
		}
		if err := p.advance(); err != nil {
			return Projection{}, err
		}
		if p.tok.kind != tokNumber {
			return Projection{}, errAt(p.src, p.tok.pos, "expected bin count, found %q", p.tokText())
		}
		bins := int(p.tok.num)
		if float64(bins) != p.tok.num || bins <= 0 || bins > 1<<16 {
			return Projection{}, errAt(p.src, p.tok.pos, "hist bins must be a positive integer ≤ 65536, got %s", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return Projection{}, err
		}
		if p.tok.kind != tokRParen {
			return Projection{}, errAt(p.src, p.tok.pos, "expected ')' after hist bins, found %q", p.tokText())
		}
		return Projection{Kind: ProjHist, Col: col, Bins: bins}, p.advance()
	}
	return Projection{}, errAt(p.src, p.tok.pos, "expected count, ids, or hist(col, bins), found %q", p.tokText())
}

// parseName consumes a non-reserved identifier.
func (p *parser) parseName(what string) (string, *ParseError) {
	if p.tok.kind != tokIdent {
		return "", errAt(p.src, p.tok.pos, "expected %s name, found %q", what, p.tokText())
	}
	if reserved[strings.ToLower(p.tok.text)] {
		return "", errAt(p.src, p.tok.pos, "reserved word %q cannot be a %s name", p.tok.text, what)
	}
	name := p.tok.text
	return name, p.advance()
}

// parseOr := parseAnd { or parseAnd }
func (p *parser) parseOr() (Expr, *ParseError) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Logic{Or: true, Left: left, Right: right}
	}
	return left, nil
}

// parseAnd := parseTerm { and parseTerm }
func (p *parser) parseAnd() (Expr, *ParseError) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &Logic{Or: false, Left: left, Right: right}
	}
	return left, nil
}

// parseTerm := '(' parseOr ')' | tag ident '=' string
//            | number cmpOp ident | ident (cmpOp number | between number and number)
func (p *parser) parseTerm() (Expr, *ParseError) {
	switch {
	case p.tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, errAt(p.src, p.tok.pos, "expected ')', found %q", p.tokText())
		}
		return e, p.advance()
	case p.keyword("tag"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		key, err := p.parseName("tag")
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokEQ {
			return nil, errAt(p.src, p.tok.pos, "expected '=' after tag key, found %q", p.tokText())
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, errAt(p.src, p.tok.pos, "expected quoted tag value, found %q", p.tokText())
		}
		val := p.tok.text
		return &Tag{Key: key, Value: val}, p.advance()
	case p.tok.kind == tokNumber:
		// value-first comparison: flip to column-first.
		v := p.tok.num
		if err := p.advance(); err != nil {
			return nil, err
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		col, err := p.parseName("column")
		if err != nil {
			return nil, err
		}
		return &Cmp{Col: col, Op: flipOp(op), Value: v}, nil
	case p.tok.kind == tokIdent:
		col, err := p.parseName("column")
		if err != nil {
			return nil, err
		}
		if p.keyword("between") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			lo, err := p.parseNumber("between lower bound")
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseNumber("between upper bound")
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, errAt(p.src, p.tok.pos, "between bounds inverted: %s > %s", num(lo), num(hi))
			}
			return &Between{Col: col, Lo: lo, Hi: hi}, nil
		}
		op, err2 := p.parseCmpOp()
		if err2 != nil {
			return nil, err2
		}
		v, err2 := p.parseNumber("comparison value")
		if err2 != nil {
			return nil, err2
		}
		return &Cmp{Col: col, Op: op, Value: v}, nil
	}
	return nil, errAt(p.src, p.tok.pos, "expected a condition, found %q", p.tokText())
}

// parseCmpOp consumes a comparison operator.
func (p *parser) parseCmpOp() (query.Op, *ParseError) {
	var o query.Op
	switch p.tok.kind {
	case tokLT:
		o = query.OpLT
	case tokLE:
		o = query.OpLE
	case tokGT:
		o = query.OpGT
	case tokGE:
		o = query.OpGE
	case tokEQ:
		o = query.OpEQ
	default:
		return 0, errAt(p.src, p.tok.pos, "expected comparison operator, found %q", p.tokText())
	}
	return o, p.advance()
}

// flipOp mirrors an operator across its operands: `5 < x` is `x > 5`.
func flipOp(op query.Op) query.Op {
	switch op {
	case query.OpLT:
		return query.OpGT
	case query.OpLE:
		return query.OpGE
	case query.OpGT:
		return query.OpLT
	case query.OpGE:
		return query.OpLE
	}
	return op // OpEQ is symmetric
}

// parseNumber consumes a numeric literal.
func (p *parser) parseNumber(what string) (float64, *ParseError) {
	if p.tok.kind != tokNumber {
		return 0, errAt(p.src, p.tok.pos, "expected %s, found %q", what, p.tokText())
	}
	v := p.tok.num
	return v, p.advance()
}
