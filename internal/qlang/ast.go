package qlang

import (
	"strconv"
	"strings"

	"pdcquery/internal/query"
)

// ProjKind is what the query asks for.
type ProjKind uint8

// Projections: the hit count, the matching element ids (selection
// transfer), or a histogram of the matching values of one column.
const (
	ProjCount ProjKind = iota
	ProjIDs
	ProjHist
)

// Projection is the select clause.
type Projection struct {
	Kind ProjKind
	Col  string // ProjHist only: the column to histogram
	Bins int    // ProjHist only: requested bin count
}

// Expr is a where-clause expression node.
type Expr interface {
	render(b *strings.Builder)
}

// Cmp is `col op value`. Comparisons written value-first are flipped
// at parse time so the AST is always column-first.
type Cmp struct {
	Col   string
	Op    query.Op
	Value float64
}

// Between is `col between lo and hi` — inclusive on both ends, SQL
// style.
type Between struct {
	Col    string
	Lo, Hi float64
}

// Tag is `tag key = "value"`: a metadata tag condition gating which
// objects the query sees.
type Tag struct {
	Key   string
	Value string
}

// Logic is a binary and/or node.
type Logic struct {
	Or          bool
	Left, Right Expr
}

// Query is one parsed statement.
type Query struct {
	Explain    bool
	Analyze    bool
	Projection Projection
	Where      Expr
}

// num renders a float in the canonical shortest round-trip form.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parseFloat is the lexer's number reader.
func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func (c *Cmp) render(b *strings.Builder) {
	b.WriteString(c.Col)
	b.WriteByte(' ')
	switch c.Op {
	case query.OpGT:
		b.WriteByte('>')
	case query.OpGE:
		b.WriteString(">=")
	case query.OpLT:
		b.WriteByte('<')
	case query.OpLE:
		b.WriteString("<=")
	default:
		b.WriteByte('=')
	}
	b.WriteByte(' ')
	b.WriteString(num(c.Value))
}

func (t *Between) render(b *strings.Builder) {
	b.WriteString(t.Col)
	b.WriteString(" between ")
	b.WriteString(num(t.Lo))
	b.WriteString(" and ")
	b.WriteString(num(t.Hi))
}

func (t *Tag) render(b *strings.Builder) {
	b.WriteString("tag ")
	b.WriteString(t.Key)
	b.WriteString(" = ")
	b.WriteString(strconv.Quote(t.Value))
}

func (l *Logic) render(b *strings.Builder) {
	b.WriteByte('(')
	l.Left.render(b)
	if l.Or {
		b.WriteString(" or ")
	} else {
		b.WriteString(" and ")
	}
	l.Right.render(b)
	b.WriteByte(')')
}

// Render produces the canonical text of the statement: lowercase
// keywords, single spaces, shortest float forms, fully parenthesized
// logic. Rendering then reparsing yields a structurally identical
// query, and render∘parse∘render is a fixed point — the property the
// plan-cache key and FuzzParseQuery rely on.
func (q *Query) Render() string {
	var b strings.Builder
	if q.Explain {
		b.WriteString("explain ")
		if q.Analyze {
			b.WriteString("analyze ")
		}
	}
	b.WriteString("select ")
	switch q.Projection.Kind {
	case ProjCount:
		b.WriteString("count")
	case ProjIDs:
		b.WriteString("ids")
	case ProjHist:
		b.WriteString("hist(")
		b.WriteString(q.Projection.Col)
		b.WriteString(", ")
		b.WriteString(strconv.Itoa(q.Projection.Bins))
		b.WriteByte(')')
	}
	if q.Where != nil {
		b.WriteString(" where ")
		q.Where.render(&b)
	}
	return b.String()
}

// CacheKey is the normalized text that keys the prepared-plan cache:
// the canonical rendering with the explain prefix stripped, so
// `EXPLAIN q` and `q` share one cached plan.
func (q *Query) CacheKey() string {
	bare := *q
	bare.Explain = false
	bare.Analyze = false
	return bare.Render()
}
