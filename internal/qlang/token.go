// Package qlang is the declarative text frontend for PDC queries: a
// lexer, recursive-descent parser, and lowering from the small query
// language
//
//	[explain [analyze]] select count | ids | hist(col, bins)
//	    where <conjuncts over numeric ranges and tags>
//
// to the query.Cond tree the engine evaluates plus the metadata tag
// conditions that gate object visibility. Parse errors are typed and
// positional; Render produces the canonical text form that keys the
// prepared-plan cache (parse∘render is a fixed point).
package qlang

import (
	"fmt"
	"strings"
)

// tokKind discriminates lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokLT // <
	tokLE // <=
	tokGT // >
	tokGE // >=
	tokEQ // =
)

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string  // raw text (ident/string) — strings are unquoted
	num  float64 // tokNumber value
	pos  int     // byte offset in the input
}

// ParseError is a typed, positional parse error. Pos is the byte
// offset; Line and Col are 1-based.
type ParseError struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

// Error renders "qlang: 1:17: expected number after '>'".
func (e *ParseError) Error() string {
	return fmt.Sprintf("qlang: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// errAt builds a ParseError at a byte offset of src.
func errAt(src string, pos int, format string, args ...any) *ParseError {
	if pos > len(src) {
		pos = len(src)
	}
	line, col := 1, 1
	for _, r := range src[:pos] {
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &ParseError{Pos: pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// isIdentStart / isIdentPart define identifiers: letters, '_', then
// also digits and '.' (column names like "Energy" or "grp.x").
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == '.' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexer walks the input producing tokens on demand.
type lexer struct {
	src string
	i   int
}

// next scans one token.
func (lx *lexer) next() (token, *ParseError) {
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.i++
			continue
		}
		break
	}
	if lx.i >= len(lx.src) {
		return token{kind: tokEOF, pos: len(lx.src)}, nil
	}
	start := lx.i
	c := lx.src[lx.i]
	switch {
	case c == '(':
		lx.i++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		lx.i++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		lx.i++
		return token{kind: tokComma, pos: start}, nil
	case c == '<':
		lx.i++
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			lx.i++
			return token{kind: tokLE, pos: start}, nil
		}
		return token{kind: tokLT, pos: start}, nil
	case c == '>':
		lx.i++
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			lx.i++
			return token{kind: tokGE, pos: start}, nil
		}
		return token{kind: tokGT, pos: start}, nil
	case c == '=':
		lx.i++
		// Accept both = and == as equality.
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			lx.i++
		}
		return token{kind: tokEQ, pos: start}, nil
	case c == '"':
		return lx.lexString(start)
	case isDigit(c), c == '.' && lx.i+1 < len(lx.src) && isDigit(lx.src[lx.i+1]),
		(c == '-' || c == '+') && lx.i+1 < len(lx.src) && (isDigit(lx.src[lx.i+1]) || lx.src[lx.i+1] == '.'):
		return lx.lexNumber(start)
	case isIdentStart(c):
		lx.i++
		for lx.i < len(lx.src) && isIdentPart(lx.src[lx.i]) {
			lx.i++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.i], pos: start}, nil
	}
	return token{}, errAt(lx.src, start, "unexpected character %q", string(rune(c)))
}

// lexString scans a double-quoted string with \" and \\ escapes.
func (lx *lexer) lexString(start int) (token, *ParseError) {
	lx.i++ // opening quote
	var b strings.Builder
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		if c == '\\' && lx.i+1 < len(lx.src) {
			nc := lx.src[lx.i+1]
			if nc == '"' || nc == '\\' {
				b.WriteByte(nc)
				lx.i += 2
				continue
			}
		}
		if c == '"' {
			lx.i++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		if c == '\n' {
			break
		}
		b.WriteByte(c)
		lx.i++
	}
	return token{}, errAt(lx.src, start, "unterminated string")
}

// lexNumber scans a float literal: [+-]digits[.digits][e[+-]digits].
func (lx *lexer) lexNumber(start int) (token, *ParseError) {
	i := lx.i
	if lx.src[i] == '-' || lx.src[i] == '+' {
		i++
	}
	for i < len(lx.src) && isDigit(lx.src[i]) {
		i++
	}
	if i < len(lx.src) && lx.src[i] == '.' {
		i++
		for i < len(lx.src) && isDigit(lx.src[i]) {
			i++
		}
	}
	if i < len(lx.src) && (lx.src[i] == 'e' || lx.src[i] == 'E') {
		j := i + 1
		if j < len(lx.src) && (lx.src[j] == '-' || lx.src[j] == '+') {
			j++
		}
		if j < len(lx.src) && isDigit(lx.src[j]) {
			i = j
			for i < len(lx.src) && isDigit(lx.src[i]) {
				i++
			}
		}
	}
	text := lx.src[start:i]
	v, err := parseFloat(text)
	if err != nil {
		return token{}, errAt(lx.src, start, "bad number %q", text)
	}
	lx.i = i
	return token{kind: tokNumber, num: v, text: text, pos: start}, nil
}
