package qlang

import (
	"errors"
	"strings"
	"testing"

	"pdcquery/internal/object"
	"pdcquery/internal/query"
)

// testResolve maps a fixed column namespace.
func testResolve(name string) (object.ID, bool) {
	switch name {
	case "Energy":
		return 1, true
	case "x":
		return 2, true
	case "y":
		return 3, true
	}
	return 0, false
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseProjections(t *testing.T) {
	q := mustParse(t, "select count where x > 5")
	if q.Projection.Kind != ProjCount || q.Explain {
		t.Errorf("count projection parsed wrong: %+v", q.Projection)
	}
	q = mustParse(t, "SELECT IDS WHERE x > 5")
	if q.Projection.Kind != ProjIDs {
		t.Errorf("ids projection parsed wrong: %+v", q.Projection)
	}
	q = mustParse(t, "select hist(Energy, 64) where Energy >= 1.5")
	if q.Projection.Kind != ProjHist || q.Projection.Col != "Energy" || q.Projection.Bins != 64 {
		t.Errorf("hist projection parsed wrong: %+v", q.Projection)
	}
}

func TestParseExplain(t *testing.T) {
	q := mustParse(t, "explain select count where x > 1")
	if !q.Explain || q.Analyze {
		t.Errorf("explain flags = %v/%v, want true/false", q.Explain, q.Analyze)
	}
	q = mustParse(t, "EXPLAIN ANALYZE select count where x > 1")
	if !q.Explain || !q.Analyze {
		t.Errorf("explain analyze flags = %v/%v, want true/true", q.Explain, q.Analyze)
	}
	if q.CacheKey() != "select count where x > 1" {
		t.Errorf("CacheKey = %q, must strip the explain prefix", q.CacheKey())
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	// AND binds tighter than OR.
	q := mustParse(t, "select count where x > 1 or x < 0 and y = 2")
	top, ok := q.Where.(*Logic)
	if !ok || !top.Or {
		t.Fatalf("top node must be OR, got %T", q.Where)
	}
	if r, ok := top.Right.(*Logic); !ok || r.Or {
		t.Errorf("right of OR must be the AND node, got %T", top.Right)
	}
	// Parens override.
	q = mustParse(t, "select count where (x > 1 or x < 0) and y = 2")
	top, ok = q.Where.(*Logic)
	if !ok || top.Or {
		t.Fatalf("top node must be AND, got %T", q.Where)
	}
}

func TestParseValueFirstComparisonFlips(t *testing.T) {
	q := mustParse(t, "select count where 5 < x")
	c, ok := q.Where.(*Cmp)
	if !ok || c.Col != "x" || c.Op != query.OpGT || c.Value != 5 {
		t.Fatalf("5 < x must flip to x > 5, got %+v", q.Where)
	}
}

func TestParseBetween(t *testing.T) {
	q := mustParse(t, "select count where x between 1.5 and 9 and y > 0")
	top, ok := q.Where.(*Logic)
	if !ok || top.Or {
		t.Fatalf("between must bind its AND: top %T", q.Where)
	}
	b, ok := top.Left.(*Between)
	if !ok || b.Lo != 1.5 || b.Hi != 9 {
		t.Fatalf("between parsed wrong: %+v", top.Left)
	}
	if _, err := Parse("select count where x between 9 and 1"); err == nil {
		t.Error("inverted between bounds must be a parse error")
	}
}

func TestParseTag(t *testing.T) {
	q := mustParse(t, `select count where tag run = "vpic-7" and x > 0`)
	low, err := q.Lower(testResolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Tags) != 1 || low.Tags[0].Key != "run" || low.Tags[0].Value != "vpic-7" {
		t.Errorf("tags = %+v", low.Tags)
	}
	if low.Query.Root.Kind != query.KindLeaf {
		t.Errorf("numeric tree must collapse to the single leaf, got %v", low.Query.Root)
	}
}

func TestParseErrorsArePositional(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", `expected "select"`},
		{"select", "expected count, ids, or hist"},
		{"select count where", "expected a condition"},
		{"select count where x >", "expected comparison value"},
		{"select count where x ! 5", "unexpected character"},
		{"select count where tag run = vpic", "expected quoted tag value"},
		{`select count where tag run = "unterminated`, "unterminated string"},
		{"select hist(x) where x > 1", "expected ','"},
		{"select hist(x, 0) where x > 1", "positive integer"},
		{"select count where x > 1 garbage", "unexpected trailing input"},
		{"select count where select > 1", "reserved word"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %T is not a *ParseError", c.src, err)
			continue
		}
		if !strings.Contains(pe.Error(), c.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, pe.Error(), c.want)
		}
		if pe.Line < 1 || pe.Col < 1 {
			t.Errorf("Parse(%q): position %d:%d not 1-based", c.src, pe.Line, pe.Col)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("select count\nwhere x >")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	srcs := []string{
		"select count where x > 5",
		"select ids where x between 1 and 2 or y >= -3.5",
		`explain analyze select hist(Energy, 32) where tag run = "a b" and Energy <= 1e6`,
		"select count where ((x > 1 and y < 2) or x = 0) and y >= 1",
		"select count where 5 < x and x <= 100",
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		canon := q.Render()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse of canonical %q: %v", canon, err)
		}
		if got := q2.Render(); got != canon {
			t.Errorf("render not a fixed point: %q → %q", canon, got)
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"select count where z > 1", "unknown column"},
		{"select hist(z, 8) where x > 1", "unknown hist column"},
		{`select count where tag a = "b" or x > 1`, "under OR"},
		{`select count where tag a = "b"`, "no numeric conditions"},
		{"select count", "missing where clause"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = q.Lower(testResolve)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Lower(%q): error %v does not contain %q", c.src, err, c.want)
		}
	}
}

func TestLowerMatchesHandBuiltTree(t *testing.T) {
	q := mustParse(t, "select count where x between 2 and 8 and y > 0")
	low, err := q.Lower(testResolve)
	if err != nil {
		t.Fatal(err)
	}
	want := query.And(query.Between(2, 2, 8, true, true), query.Leaf(3, query.OpGT, 0))
	if low.Query.Root.String() != want.String() {
		t.Errorf("lowered tree %v, want %v", low.Query.Root, want)
	}
}
