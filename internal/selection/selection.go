// Package selection implements the PDC data selection: the set of
// matching element locations a query returns (§III-A).
//
// A selection holds sorted row-major linear element indices plus the
// object dimensions needed to convert them to array coordinates. Servers
// produce partial selections for their assigned regions; the client's
// aggregator merges them (and the OR path of the evaluator merges
// selections with duplicate removal, the paper's merge-sort dedup).
package selection

import (
	"encoding/binary"
	"fmt"
	"slices"

	"pdcquery/internal/region"
)

// Selection is a set of matching element locations. CountOnly selections
// carry just NHits (the PDCquery_get_nhits fast path).
type Selection struct {
	// NHits is the number of matching elements.
	NHits uint64
	// Coords holds the sorted row-major linear indices of the matches;
	// nil for count-only selections with NHits > 0 possible only when
	// CountOnly is set.
	Coords []uint64
	// CountOnly marks a selection that deliberately omits locations.
	CountOnly bool
	// Dims are the object dimensions used to interpret Coords.
	Dims []uint64
}

// New returns a selection over the given sorted linear indices.
func New(coords []uint64, dims []uint64) *Selection {
	return &Selection{NHits: uint64(len(coords)), Coords: coords, Dims: dims}
}

// NewCount returns a count-only selection.
func NewCount(n uint64, dims []uint64) *Selection {
	return &Selection{NHits: n, CountOnly: true, Dims: dims}
}

// Validate checks internal consistency: sorted unique coords matching
// NHits.
func (s *Selection) Validate() error {
	if s.CountOnly {
		if s.Coords != nil {
			return fmt.Errorf("selection: count-only with coords")
		}
		return nil
	}
	if uint64(len(s.Coords)) != s.NHits {
		return fmt.Errorf("selection: NHits %d != %d coords", s.NHits, len(s.Coords))
	}
	for i := 1; i < len(s.Coords); i++ {
		if s.Coords[i] <= s.Coords[i-1] {
			return fmt.Errorf("selection: coords not strictly increasing at %d", i)
		}
	}
	return nil
}

// Coord returns the i-th match as an array coordinate.
func (s *Selection) Coord(i int, buf []uint64) []uint64 {
	return region.LinearToCoord(s.Dims, s.Coords[i], buf)
}

// Merge unions two selections (same object space), removing duplicates —
// the paper's OR combination. Count-only selections merge by adding hit
// counts (callers must guarantee disjointness, which holds for partial
// results from disjoint region sets).
func Merge(a, b *Selection) *Selection {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.CountOnly || b.CountOnly {
		return &Selection{NHits: a.NHits + b.NHits, CountOnly: true, Dims: a.Dims}
	}
	return New(MergeCoords(nil, a.Coords, b.Coords), a.Dims)
}

// MergeCoords unions two sorted strictly-increasing coordinate lists
// into dst[:0] and returns the result, growing dst only when its
// capacity is below the worst case (all coordinates distinct). With a
// pre-sized dst the merge is allocation-free — the reusable kernel
// behind Merge and the aggregator's fold loop.
func MergeCoords(dst, a, b []uint64) []uint64 {
	if cap(dst) < len(a)+len(b) {
		dst = make([]uint64, 0, len(a)+len(b))
	}
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MergeAll unions many selections.
func MergeAll(ss []*Selection) *Selection {
	var acc *Selection
	for _, s := range ss {
		acc = Merge(acc, s)
	}
	return acc
}

// Intersect returns the elements present in both selections (AND).
// Count-only selections carry no coordinates to intersect; asking for
// their intersection is an error, not a panic, because selections on the
// server side come from the wire.
func Intersect(a, b *Selection) (*Selection, error) {
	if a == nil || b == nil {
		return nil, nil
	}
	if a.CountOnly || b.CountOnly {
		return nil, fmt.Errorf("selection: cannot intersect count-only selections")
	}
	return New(IntersectCoords(nil, a.Coords, b.Coords), a.Dims), nil
}

// IntersectCoords writes the sorted intersection of two sorted
// strictly-increasing coordinate lists into dst[:0] and returns it,
// growing dst only when its capacity is below the worst case (the
// shorter input). With a pre-sized dst the intersection is
// allocation-free.
func IntersectCoords(dst, a, b []uint64) []uint64 {
	if cap(dst) < min(len(a), len(b)) {
		dst = make([]uint64, 0, min(len(a), len(b)))
	}
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// FromUnsorted builds a selection from unordered, possibly duplicated
// indices (sorting and deduplicating them).
func FromUnsorted(coords []uint64, dims []uint64) *Selection {
	slices.Sort(coords)
	coords = slices.Compact(coords)
	return New(coords, dims)
}

// Batches splits the selection into count-preserving chunks of at most
// batchSize hits, supporting PDCquery_get_data_batch. A count-only
// selection has no coordinates to batch and is reported as an error.
func (s *Selection) Batches(batchSize uint64) ([]*Selection, error) {
	if s.CountOnly {
		return nil, fmt.Errorf("selection: cannot batch count-only selection")
	}
	if batchSize == 0 {
		batchSize = 1 << 20
	}
	var out []*Selection
	for off := uint64(0); off < uint64(len(s.Coords)); off += batchSize {
		end := off + batchSize
		if end > uint64(len(s.Coords)) {
			end = uint64(len(s.Coords))
		}
		out = append(out, New(s.Coords[off:end], s.Dims))
	}
	return out, nil
}

// Encode serializes the selection for transport.
func (s *Selection) Encode() []byte {
	flags := byte(0)
	if s.CountOnly {
		flags = 1
	}
	n := 1 + 8 + 1 + 8*len(s.Dims) + 8*len(s.Coords)
	out := make([]byte, 0, n)
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint64(out, s.NHits)
	out = append(out, byte(len(s.Dims)))
	for _, d := range s.Dims {
		out = binary.LittleEndian.AppendUint64(out, d)
	}
	if !s.CountOnly {
		for _, c := range s.Coords {
			out = binary.LittleEndian.AppendUint64(out, c)
		}
	}
	return out
}

// Decode deserializes a selection produced by Encode.
func Decode(b []byte) (*Selection, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("selection: buffer too short")
	}
	s := &Selection{CountOnly: b[0] == 1}
	s.NHits = binary.LittleEndian.Uint64(b[1:9])
	rank := int(b[9])
	pos := 10
	if len(b) < pos+8*rank {
		return nil, fmt.Errorf("selection: truncated dims")
	}
	s.Dims = make([]uint64, rank)
	for d := 0; d < rank; d++ {
		s.Dims[d] = binary.LittleEndian.Uint64(b[pos:])
		pos += 8
	}
	if s.CountOnly {
		if pos != len(b) {
			return nil, fmt.Errorf("selection: trailing bytes")
		}
		return s, nil
	}
	if s.NHits != uint64(len(b)-pos)/8 || (len(b)-pos)%8 != 0 {
		return nil, fmt.Errorf("selection: coord bytes %d do not match %d hits", len(b)-pos, s.NHits)
	}
	s.Coords = make([]uint64, s.NHits)
	for i := range s.Coords {
		s.Coords[i] = binary.LittleEndian.Uint64(b[pos:])
		pos += 8
	}
	return s, nil
}
