package selection

import (
	"slices"
	"testing"
)

// TestCoordKernelsMatch pins the reusable-destination kernels against
// the Selection-level operations they back.
func TestCoordKernelsMatch(t *testing.T) {
	a := []uint64{1, 4, 9, 16, 25, 36}
	b := []uint64{2, 4, 8, 16, 32, 36, 64}
	m := Merge(New(slices.Clone(a), nil), New(slices.Clone(b), nil))
	if got := MergeCoords(nil, a, b); !slices.Equal(got, m.Coords) {
		t.Fatalf("MergeCoords = %v, want %v", got, m.Coords)
	}
	in, err := Intersect(New(slices.Clone(a), nil), New(slices.Clone(b), nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := IntersectCoords(nil, a, b); !slices.Equal(got, in.Coords) {
		t.Fatalf("IntersectCoords = %v, want %v", got, in.Coords)
	}
	// Dirty reused destinations must not leak stale coords.
	dst := []uint64{99, 98, 97, 96, 95, 94, 93, 92, 91, 90, 89, 88, 87}
	if got := IntersectCoords(dst, a, b); !slices.Equal(got, in.Coords) {
		t.Fatalf("IntersectCoords(dirty dst) = %v, want %v", got, in.Coords)
	}
	if got := MergeCoords(dst, a, b); !slices.Equal(got, m.Coords) {
		t.Fatalf("MergeCoords(dirty dst) = %v, want %v", got, m.Coords)
	}
}

// TestIntersectCoordsZeroAlloc pins the AND-combine hot path: with a
// pre-sized destination the sorted intersection allocates nothing.
func TestIntersectCoordsZeroAlloc(t *testing.T) {
	a := make([]uint64, 0, 4096)
	b := make([]uint64, 0, 4096)
	for i := uint64(0); i < 4096; i++ {
		if i%2 == 0 {
			a = append(a, i)
		}
		if i%3 == 0 {
			b = append(b, i)
		}
	}
	dst := make([]uint64, 0, min(len(a), len(b)))
	var out []uint64
	if n := testing.AllocsPerRun(200, func() { out = IntersectCoords(dst, a, b) }); n != 0 {
		t.Errorf("IntersectCoords with pre-sized dst allocated %.1f/op, want 0", n)
	}
	for _, c := range out {
		if c%6 != 0 {
			t.Fatalf("intersection contains %d, not a common multiple", c)
		}
	}
}

// TestMergeCoordsZeroAlloc pins the OR-combine hot path the same way.
func TestMergeCoordsZeroAlloc(t *testing.T) {
	a := []uint64{1, 3, 5, 7, 9, 11}
	b := []uint64{2, 3, 6, 7, 10, 11}
	dst := make([]uint64, 0, len(a)+len(b))
	var out []uint64
	if n := testing.AllocsPerRun(200, func() { out = MergeCoords(dst, a, b) }); n != 0 {
		t.Errorf("MergeCoords with pre-sized dst allocated %.1f/op, want 0", n)
	}
	if !slices.Equal(out, []uint64{1, 2, 3, 5, 6, 7, 9, 10, 11}) {
		t.Fatalf("MergeCoords = %v", out)
	}
}
