package selection

import (
	"reflect"
	"testing"
	"testing/quick"
)

var dims = []uint64{100}

func TestNewAndValidate(t *testing.T) {
	s := New([]uint64{1, 5, 9}, dims)
	if s.NHits != 3 {
		t.Errorf("NHits = %d", s.NHits)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid selection rejected: %v", err)
	}
	bad := &Selection{NHits: 2, Coords: []uint64{3, 3}, Dims: dims}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate coords accepted")
	}
	bad = &Selection{NHits: 5, Coords: []uint64{1}, Dims: dims}
	if err := bad.Validate(); err == nil {
		t.Error("count mismatch accepted")
	}
	c := NewCount(7, dims)
	if err := c.Validate(); err != nil {
		t.Errorf("count-only rejected: %v", err)
	}
	c.Coords = []uint64{1}
	if err := c.Validate(); err == nil {
		t.Error("count-only with coords accepted")
	}
}

func TestCoordConversion(t *testing.T) {
	s := New([]uint64{205}, []uint64{10, 100})
	buf := make([]uint64, 2)
	coord := s.Coord(0, buf)
	if coord[0] != 2 || coord[1] != 5 {
		t.Errorf("Coord = %v, want [2 5]", coord)
	}
}

func TestMergeDedups(t *testing.T) {
	a := New([]uint64{1, 3, 5}, dims)
	b := New([]uint64{2, 3, 6}, dims)
	m := Merge(a, b)
	want := []uint64{1, 2, 3, 5, 6}
	if !reflect.DeepEqual(m.Coords, want) {
		t.Errorf("Merge = %v, want %v", m.Coords, want)
	}
	if m.NHits != 5 {
		t.Errorf("NHits = %d", m.NHits)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergeNilAndCountOnly(t *testing.T) {
	a := New([]uint64{1}, dims)
	if Merge(nil, a) != a || Merge(a, nil) != a {
		t.Error("nil merge wrong")
	}
	c := Merge(NewCount(5, dims), NewCount(7, dims))
	if !c.CountOnly || c.NHits != 12 {
		t.Errorf("count merge = %+v", c)
	}
	mixed := Merge(a, NewCount(2, dims))
	if !mixed.CountOnly || mixed.NHits != 3 {
		t.Errorf("mixed merge = %+v", mixed)
	}
}

func TestMergeAll(t *testing.T) {
	parts := []*Selection{
		New([]uint64{10, 20}, dims),
		New([]uint64{5}, dims),
		nil,
		New([]uint64{20, 30}, dims),
	}
	m := MergeAll(parts)
	want := []uint64{5, 10, 20, 30}
	if !reflect.DeepEqual(m.Coords, want) {
		t.Errorf("MergeAll = %v", m.Coords)
	}
	if MergeAll(nil) != nil {
		t.Error("MergeAll(nil) != nil")
	}
}

func TestIntersect(t *testing.T) {
	a := New([]uint64{1, 3, 5, 7}, dims)
	b := New([]uint64{3, 4, 7, 9}, dims)
	x, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 7}
	if !reflect.DeepEqual(x.Coords, want) {
		t.Errorf("Intersect = %v", x.Coords)
	}
	if nilSel, err := Intersect(nil, a); err != nil || nilSel != nil {
		t.Errorf("Intersect with nil = %v, %v", nilSel, err)
	}
	empty, err := Intersect(New([]uint64{1}, dims), New([]uint64{2}, dims))
	if err != nil {
		t.Fatal(err)
	}
	if empty.NHits != 0 {
		t.Errorf("disjoint intersect = %v", empty.Coords)
	}
}

func TestIntersectCountOnlyErrors(t *testing.T) {
	if _, err := Intersect(NewCount(1, dims), New([]uint64{1}, dims)); err == nil {
		t.Error("Intersect(count-only) did not error")
	}
	if _, err := Intersect(New([]uint64{1}, dims), NewCount(1, dims)); err == nil {
		t.Error("Intersect(_, count-only) did not error")
	}
}

func TestFromUnsorted(t *testing.T) {
	s := FromUnsorted([]uint64{9, 3, 9, 1, 3}, dims)
	want := []uint64{1, 3, 9}
	if !reflect.DeepEqual(s.Coords, want) {
		t.Errorf("FromUnsorted = %v", s.Coords)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBatches(t *testing.T) {
	coords := make([]uint64, 10)
	for i := range coords {
		coords[i] = uint64(i)
	}
	s := New(coords, dims)
	bs, err := s.Batches(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("batches = %d", len(bs))
	}
	if bs[0].NHits != 4 || bs[1].NHits != 4 || bs[2].NHits != 2 {
		t.Errorf("batch sizes = %d %d %d", bs[0].NHits, bs[1].NHits, bs[2].NHits)
	}
	var total []uint64
	for _, b := range bs {
		total = append(total, b.Coords...)
	}
	if !reflect.DeepEqual(total, coords) {
		t.Error("batches do not reassemble the selection")
	}
	// Default batch size.
	if got, err := s.Batches(0); err != nil || len(got) != 1 {
		t.Errorf("default batch = %d parts, err %v", len(got), err)
	}
}

func TestBatchesCountOnlyErrors(t *testing.T) {
	if _, err := NewCount(5, dims).Batches(2); err == nil {
		t.Error("Batches on count-only did not error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []*Selection{
		New([]uint64{1, 5, 900}, []uint64{10, 100}),
		New(nil, dims),
		NewCount(123456, []uint64{7, 8, 9}),
	} {
		got, err := Decode(s.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.NHits != s.NHits || got.CountOnly != s.CountOnly {
			t.Errorf("header mismatch: %+v vs %+v", got, s)
		}
		if !reflect.DeepEqual(got.Dims, s.Dims) {
			t.Errorf("dims mismatch: %v vs %v", got.Dims, s.Dims)
		}
		if len(got.Coords) != len(s.Coords) {
			t.Errorf("coords len mismatch")
		}
		for i := range s.Coords {
			if got.Coords[i] != s.Coords[i] {
				t.Errorf("coord %d mismatch", i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	enc := New([]uint64{1, 2}, dims).Encode()
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Error("truncated coords accepted")
	}
	enc = NewCount(5, dims).Encode()
	if _, err := Decode(append(enc, 1)); err == nil {
		t.Error("count-only trailing bytes accepted")
	}
}

func TestPropertyMergeIsUnion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := FromUnsorted(toU64(xs), dims)
		b := FromUnsorted(toU64(ys), dims)
		m := Merge(a, b)
		if m.Validate() != nil {
			return false
		}
		set := map[uint64]bool{}
		for _, c := range a.Coords {
			set[c] = true
		}
		for _, c := range b.Coords {
			set[c] = true
		}
		if uint64(len(set)) != m.NHits {
			return false
		}
		for _, c := range m.Coords {
			if !set[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func toU64(xs []uint16) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}
