// Package object defines the object-centric data model of the ODMS: PDC
// containers, data objects, and the per-region metadata that the query
// service plans against.
//
// As in §II of the paper, an object is an abstract byte stream — here an
// N-dimensional typed array — grouped into containers and associated with
// metadata (name, ID, tags). Large objects are partitioned into regions,
// the basic unit of placement and query evaluation; each region carries
// its own metadata: location in the object, storage extent and tier, exact
// min/max, and a mergeable local histogram built at write/import time.
package object

import (
	"fmt"

	"pdcquery/internal/bitindex"
	"pdcquery/internal/dtype"
	"pdcquery/internal/histogram"
	"pdcquery/internal/region"
	"pdcquery/internal/simio"
)

// ID identifies an object within the ODMS.
type ID uint64

// ContainerID identifies a container.
type ContainerID uint64

// Container groups objects, mirroring PDC containers.
type Container struct {
	ID   ContainerID
	Name string
}

// Property describes an object at creation time (the PDC object creation
// property): name, element type, and array dimensions.
type Property struct {
	Name string
	Type dtype.Type
	Dims []uint64
	// Tags are user metadata key-value pairs attached at creation.
	Tags map[string]string
}

// Validate checks that the property describes a constructible object.
func (p *Property) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("object: empty name")
	}
	if !p.Type.Valid() {
		return fmt.Errorf("object %q: invalid element type", p.Name)
	}
	if len(p.Dims) == 0 {
		return fmt.Errorf("object %q: no dimensions", p.Name)
	}
	for d, n := range p.Dims {
		if n == 0 {
			return fmt.Errorf("object %q: zero-sized dimension %d", p.Name, d)
		}
	}
	return nil
}

// RegionMeta is the metadata of one object region. The actual data lives
// in the storage substrate under ExtentKey; IndexKey (when non-empty)
// names the extent holding the region's encoded bitmap index.
type RegionMeta struct {
	// Index is the region's ordinal within the object.
	Index int
	// Region locates the region within the object's element space.
	Region region.Region
	// ExtentKey is the simio extent holding the region's raw data.
	ExtentKey string
	// Tier is the storage layer the region currently resides on.
	Tier simio.Tier
	// Min and Max are the exact value extrema of the region.
	Min, Max float64
	// Hist is the region's mergeable local histogram (may be nil when
	// histograms are disabled).
	Hist *histogram.Histogram
	// IndexKey is the extent holding the region's bitmap index ("" when
	// not indexed).
	IndexKey string
	// IndexBins is the number of bins in the region's bitmap index (used
	// to size directory reads without fetching the whole index).
	IndexBins int
	// IndexDir caches the index directory in metadata (distributed to
	// all servers at startup, like histograms); queries then read only
	// the touched bins' bitmap blobs from storage. Nil when the
	// directory must be read from the IndexKey extent.
	IndexDir *bitindex.Directory
}

// Object is a data object together with all region metadata.
type Object struct {
	ID        ID
	Container ContainerID
	Name      string
	Type      dtype.Type
	Dims      []uint64
	Tags      map[string]string
	Regions   []RegionMeta
	// Global is the object-wide merged histogram (§IV); nil until built.
	Global *histogram.Histogram
	// SortedBy is the ID of the object whose values ordered this object's
	// sorted replica (SortedBy == own ID for the sort key itself); zero
	// when no sorted replica exists.
	SortedBy ID
}

// NumElems returns the total number of elements of the object.
func (o *Object) NumElems() uint64 {
	if len(o.Dims) == 0 {
		return 0
	}
	n := uint64(1)
	for _, d := range o.Dims {
		n *= d
	}
	return n
}

// ByteSize returns the object's total data size in bytes.
func (o *Object) ByteSize() int64 {
	return int64(o.NumElems()) * int64(o.Type.Size())
}

// RegionElems returns how many elements region i holds.
func (o *Object) RegionElems(i int) uint64 {
	return o.Regions[i].Region.NumElems()
}

// ExtentKey returns the storage key for region i's raw data of object id.
func ExtentKey(id ID, i int) string { return fmt.Sprintf("obj/%d/r%d", id, i) }

// IndexExtentKey returns the storage key for region i's bitmap index.
func IndexExtentKey(id ID, i int) string { return fmt.Sprintf("obj/%d/x%d", id, i) }

// SortedValKey returns the storage key for sorted-replica region i's
// values of object id.
func SortedValKey(id ID, i int) string { return fmt.Sprintf("obj/%d/sv%d", id, i) }

// SortedPermKey returns the storage key for sorted-replica region i's
// permutation (original linear indices) of object id.
func SortedPermKey(id ID, i int) string { return fmt.Sprintf("obj/%d/sp%d", id, i) }

// Partition computes the region decomposition for an object of the given
// dims and element type with a target region size in bytes, splitting
// along the slowest-varying dimension (§III-B). It guarantees at least
// one region and never produces zero-element regions.
func Partition(dims []uint64, t dtype.Type, regionBytes int64) []region.Region {
	if regionBytes <= 0 {
		regionBytes = 64 << 20
	}
	elemSize := int64(t.Size())
	if elemSize == 0 {
		return nil
	}
	if len(dims) == 0 {
		return nil
	}
	// Elements per row (product of inner dims).
	rowElems := int64(1)
	for _, d := range dims[1:] {
		rowElems *= int64(d)
	}
	rowsPerRegion := regionBytes / (rowElems * elemSize)
	if rowsPerRegion == 0 {
		rowsPerRegion = 1
	}
	return region.SplitRows(dims, uint64(rowsPerRegion))
}

// CheckRegionCover verifies that an object's regions exactly tile its
// element space along the first dimension: contiguous, non-overlapping,
// covering all rows. It is the invariant the query planner relies on.
func (o *Object) CheckRegionCover() error {
	if len(o.Regions) == 0 {
		return fmt.Errorf("object %q: no regions", o.Name)
	}
	var next uint64
	for i, rm := range o.Regions {
		if rm.Index != i {
			return fmt.Errorf("object %q: region %d has index %d", o.Name, i, rm.Index)
		}
		r := rm.Region
		if err := r.Validate(); err != nil {
			return fmt.Errorf("object %q region %d: %w", o.Name, i, err)
		}
		if len(r.Offset) != len(o.Dims) {
			return fmt.Errorf("object %q region %d: rank mismatch", o.Name, i)
		}
		if r.Offset[0] != next {
			return fmt.Errorf("object %q region %d: offset %d, want %d", o.Name, i, r.Offset[0], next)
		}
		for d := 1; d < len(o.Dims); d++ {
			if r.Offset[d] != 0 || r.Count[d] != o.Dims[d] {
				return fmt.Errorf("object %q region %d: inner dim %d not whole", o.Name, i, d)
			}
		}
		next += r.Count[0]
	}
	if next != o.Dims[0] {
		return fmt.Errorf("object %q: regions cover %d rows of %d", o.Name, next, o.Dims[0])
	}
	return nil
}

// RegionOfLinear returns the index of the region containing the given
// row-major linear element index. Regions tile along the first dimension,
// so this is a binary search over row offsets.
func (o *Object) RegionOfLinear(idx uint64) int {
	rowElems := uint64(1)
	for _, d := range o.Dims[1:] {
		rowElems *= d
	}
	row := idx / rowElems
	lo, hi := 0, len(o.Regions)-1
	for lo < hi {
		mid := (lo + hi) / 2
		r := o.Regions[mid].Region
		if row < r.Offset[0] {
			hi = mid - 1
		} else if row >= r.Offset[0]+r.Count[0] {
			lo = mid + 1
		} else {
			return mid
		}
	}
	return lo
}

// LinearStart returns the row-major linear index of the first element of
// region i.
func (o *Object) LinearStart(i int) uint64 {
	rowElems := uint64(1)
	for _, d := range o.Dims[1:] {
		rowElems *= d
	}
	return o.Regions[i].Region.Offset[0] * rowElems
}
