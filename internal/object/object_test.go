package object

import (
	"strings"
	"testing"

	"pdcquery/internal/dtype"
	"pdcquery/internal/region"
)

func TestPropertyValidate(t *testing.T) {
	ok := Property{Name: "energy", Type: dtype.Float32, Dims: []uint64{100}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid property rejected: %v", err)
	}
	bad := []Property{
		{Name: "", Type: dtype.Float32, Dims: []uint64{1}},
		{Name: "x", Type: dtype.Invalid, Dims: []uint64{1}},
		{Name: "x", Type: dtype.Float32, Dims: nil},
		{Name: "x", Type: dtype.Float32, Dims: []uint64{10, 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad property %d accepted", i)
		}
	}
}

func TestNumElemsAndByteSize(t *testing.T) {
	o := &Object{Type: dtype.Float64, Dims: []uint64{10, 20}}
	if o.NumElems() != 200 {
		t.Errorf("NumElems = %d", o.NumElems())
	}
	if o.ByteSize() != 1600 {
		t.Errorf("ByteSize = %d", o.ByteSize())
	}
	if (&Object{Type: dtype.Float64}).NumElems() != 0 {
		t.Error("dimensionless object has elements")
	}
}

func TestPartition1D(t *testing.T) {
	// 1M float32 elements = 4MB; 1MB regions -> 4 regions of 256K elems.
	regions := Partition([]uint64{1 << 20}, dtype.Float32, 1<<20)
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4", len(regions))
	}
	for i, r := range regions {
		if r.NumElems() != 1<<18 {
			t.Errorf("region %d elems = %d", i, r.NumElems())
		}
	}
}

func TestPartitionUneven(t *testing.T) {
	regions := Partition([]uint64{1000}, dtype.Float64, 8*300)
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4", len(regions))
	}
	if regions[3].NumElems() != 100 {
		t.Errorf("tail region = %d elems, want 100", regions[3].NumElems())
	}
}

func TestPartitionTinyRegionBytes(t *testing.T) {
	// Region size smaller than one row still yields one-row regions.
	regions := Partition([]uint64{10, 1000}, dtype.Float64, 16)
	if len(regions) != 10 {
		t.Fatalf("regions = %d, want 10", len(regions))
	}
	if regions[0].Count[0] != 1 || regions[0].Count[1] != 1000 {
		t.Errorf("region shape = %v", regions[0])
	}
}

func TestPartitionDefaults(t *testing.T) {
	if got := Partition([]uint64{100}, dtype.Float32, 0); len(got) != 1 {
		t.Errorf("default region bytes: %d regions", len(got))
	}
	if got := Partition(nil, dtype.Float32, 1024); got != nil {
		t.Errorf("nil dims: %v", got)
	}
	if got := Partition([]uint64{10}, dtype.Invalid, 1024); got != nil {
		t.Errorf("invalid type: %v", got)
	}
}

func buildObject(t *testing.T, dims []uint64, regionBytes int64) *Object {
	t.Helper()
	o := &Object{ID: 7, Name: "test", Type: dtype.Float32, Dims: dims}
	for i, r := range Partition(dims, o.Type, regionBytes) {
		o.Regions = append(o.Regions, RegionMeta{Index: i, Region: r, ExtentKey: ExtentKey(o.ID, i)})
	}
	return o
}

func TestCheckRegionCover(t *testing.T) {
	o := buildObject(t, []uint64{1000}, 4*128)
	if err := o.CheckRegionCover(); err != nil {
		t.Fatalf("valid cover rejected: %v", err)
	}
	// Break contiguity.
	o.Regions[1].Region.Offset[0]++
	if err := o.CheckRegionCover(); err == nil {
		t.Error("gap in cover accepted")
	}
	// No regions.
	if err := (&Object{Name: "x", Dims: []uint64{5}}).CheckRegionCover(); err == nil {
		t.Error("empty region list accepted")
	}
	// Wrong index.
	o = buildObject(t, []uint64{1000}, 4*128)
	o.Regions[2].Index = 9
	if err := o.CheckRegionCover(); err == nil || !strings.Contains(err.Error(), "index") {
		t.Errorf("bad index accepted: %v", err)
	}
	// Incomplete cover.
	o = buildObject(t, []uint64{1000}, 4*128)
	o.Regions = o.Regions[:len(o.Regions)-1]
	if err := o.CheckRegionCover(); err == nil {
		t.Error("incomplete cover accepted")
	}
	// 2D: inner dims must be whole.
	o2 := &Object{Name: "m", Type: dtype.Float32, Dims: []uint64{4, 8}}
	o2.Regions = []RegionMeta{
		{Index: 0, Region: region.New([]uint64{0, 0}, []uint64{2, 8})},
		{Index: 1, Region: region.New([]uint64{2, 0}, []uint64{2, 4})},
	}
	if err := o2.CheckRegionCover(); err == nil {
		t.Error("partial inner dim accepted")
	}
}

func TestRegionOfLinear(t *testing.T) {
	o := buildObject(t, []uint64{1000}, 4*300) // regions of 300,300,300,100
	cases := map[uint64]int{0: 0, 299: 0, 300: 1, 599: 1, 600: 2, 900: 3, 999: 3}
	for idx, want := range cases {
		if got := o.RegionOfLinear(idx); got != want {
			t.Errorf("RegionOfLinear(%d) = %d, want %d", idx, got, want)
		}
	}
}

func TestRegionOfLinear2D(t *testing.T) {
	o := &Object{Name: "m", Type: dtype.Float32, Dims: []uint64{10, 100}}
	for i, r := range Partition(o.Dims, o.Type, 4*300) { // 3 rows per region
		o.Regions = append(o.Regions, RegionMeta{Index: i, Region: r})
	}
	if err := o.CheckRegionCover(); err != nil {
		t.Fatal(err)
	}
	// Element (4, 50) -> linear 450 -> row 4 -> region 1 (rows 3..5).
	if got := o.RegionOfLinear(450); got != 1 {
		t.Errorf("RegionOfLinear(450) = %d, want 1", got)
	}
	if got := o.LinearStart(1); got != 300 {
		t.Errorf("LinearStart(1) = %d, want 300", got)
	}
}

func TestExtentKeysDistinct(t *testing.T) {
	keys := map[string]bool{}
	for _, k := range []string{
		ExtentKey(1, 0), ExtentKey(1, 1), ExtentKey(2, 0),
		IndexExtentKey(1, 0), SortedValKey(1, 0), SortedPermKey(1, 0),
	} {
		if keys[k] {
			t.Errorf("duplicate key %q", k)
		}
		keys[k] = true
	}
}

func TestRegionElems(t *testing.T) {
	o := buildObject(t, []uint64{1000}, 4*300)
	if got := o.RegionElems(0); got != 300 {
		t.Errorf("RegionElems(0) = %d", got)
	}
	if got := o.RegionElems(3); got != 100 {
		t.Errorf("RegionElems(3) = %d", got)
	}
}
