package dtype

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	want := map[Type]int{
		Float32: 4, Float64: 8,
		Int8: 1, Int16: 2, Int32: 4, Int64: 8,
		Uint8: 1, Uint16: 2, Uint32: 4, Uint64: 8,
	}
	for ty, sz := range want {
		if ty.Size() != sz {
			t.Errorf("%v.Size() = %d, want %d", ty, ty.Size(), sz)
		}
		if !ty.Valid() {
			t.Errorf("%v.Valid() = false", ty)
		}
	}
	if Invalid.Size() != 0 || Invalid.Valid() {
		t.Errorf("Invalid size/valid wrong")
	}
	if Type(200).Size() != 0 {
		t.Errorf("out-of-range type size = %d", Type(200).Size())
	}
}

func TestParseRoundTrip(t *testing.T) {
	for ty := Float32; ty <= Uint64; ty++ {
		got, err := Parse(ty.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", ty.String(), err)
		}
		if got != ty {
			t.Errorf("Parse(%q) = %v, want %v", ty.String(), got, ty)
		}
	}
	if _, err := Parse("invalid"); err == nil {
		t.Error("Parse(invalid) succeeded, want error")
	}
	if _, err := Parse("complex128"); err == nil {
		t.Error("Parse(complex128) succeeded, want error")
	}
}

func TestIsFloat(t *testing.T) {
	if !Float32.IsFloat() || !Float64.IsFloat() {
		t.Error("float types not reported as float")
	}
	if Int32.IsFloat() || Uint64.IsFloat() {
		t.Error("integer types reported as float")
	}
}

func TestViewRoundTrip(t *testing.T) {
	vals := []float32{1.5, -2.25, 3e7, 0}
	b := Bytes(vals)
	if len(b) != 16 {
		t.Fatalf("Bytes len = %d, want 16", len(b))
	}
	back := View[float32](b)
	for i, v := range vals {
		if back[i] != v {
			t.Errorf("round trip [%d] = %v, want %v", i, back[i], v)
		}
	}
	// View is a true view: writes through it are visible in the bytes.
	back[0] = 99
	if View[float32](b)[0] != 99 {
		t.Error("View is not aliasing the underlying bytes")
	}
}

func TestViewEmptyAndPartial(t *testing.T) {
	if v := View[float64](nil); v != nil {
		t.Errorf("View(nil) = %v, want nil", v)
	}
	if v := View[float64](make([]byte, 7)); v != nil {
		t.Errorf("View(7 bytes as float64) = %v, want nil", v)
	}
	if v := View[float64](make([]byte, 17)); len(v) != 2 {
		t.Errorf("View(17 bytes as float64) len = %d, want 2", len(v))
	}
	if b := Bytes[float32](nil); b != nil {
		t.Errorf("Bytes(nil) = %v, want nil", b)
	}
}

func TestAtPutAllTypes(t *testing.T) {
	for ty := Float32; ty <= Uint64; ty++ {
		data := make([]byte, 8*ty.Size())
		for i := 0; i < 8; i++ {
			Put(ty, data, i, float64(i+1))
		}
		for i := 0; i < 8; i++ {
			if got := At(ty, data, i); got != float64(i+1) {
				t.Errorf("%v At(%d) = %v, want %v", ty, i, got, float64(i+1))
			}
		}
	}
}

func TestAtNegativeValues(t *testing.T) {
	for _, ty := range []Type{Float32, Float64, Int8, Int16, Int32, Int64} {
		data := make([]byte, 2*ty.Size())
		Put(ty, data, 0, -7)
		if got := At(ty, data, 0); got != -7 {
			t.Errorf("%v negative round trip = %v, want -7", ty, got)
		}
	}
}

func TestCount(t *testing.T) {
	if got := Float64.Count(64); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	if got := Float64.Count(63); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := Invalid.Count(64); got != 0 {
		t.Errorf("Invalid Count = %d, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	vals := []float64{3, -8, 12.5, 0, 7}
	lo, hi := MinMax(Float64, Bytes(vals))
	if lo != -8 || hi != 12.5 {
		t.Errorf("MinMax = (%v, %v), want (-8, 12.5)", lo, hi)
	}
	lo, hi = MinMax(Float64, nil)
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Errorf("MinMax(empty) = (%v, %v), want (+Inf, -Inf)", lo, hi)
	}
}

func TestPropertyViewBytesInverse(t *testing.T) {
	f := func(vals []int64) bool {
		b := Bytes(vals)
		back := View[int64](b)
		if len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAtMatchesView(t *testing.T) {
	f := func(vals []float32) bool {
		b := Bytes(vals)
		for i := range vals {
			got := At(Float32, b, i)
			want := float64(vals[i])
			// NaN compares unequal to itself; treat both-NaN as a match.
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At(Invalid) did not panic")
		}
	}()
	At(Invalid, make([]byte, 8), 0)
}
