// Package dtype defines the element type system shared by objects, queries,
// and evaluation kernels.
//
// PDC objects are byte streams; a data object additionally declares the
// element type of its array (the paper supports float, double, int,
// unsigned, long long, ...). Query values arrive as float64 (wide enough to
// represent every supported type exactly except the extreme ends of the
// 64-bit integer ranges, which scientific range queries do not use) and are
// compared in the object's native domain by the kernels in internal/exec.
package dtype

import (
	"fmt"
	"math"
	"unsafe"
)

// Type identifies the element type of a data object.
type Type uint8

// Supported element types. The zero value Invalid is deliberately not a
// usable type so that uninitialized metadata is caught early.
const (
	Invalid Type = iota
	Float32
	Float64
	Int8
	Int16
	Int32
	Int64
	Uint8
	Uint16
	Uint32
	Uint64
)

var typeNames = [...]string{
	Invalid: "invalid",
	Float32: "float32",
	Float64: "float64",
	Int8:    "int8",
	Int16:   "int16",
	Int32:   "int32",
	Int64:   "int64",
	Uint8:   "uint8",
	Uint16:  "uint16",
	Uint32:  "uint32",
	Uint64:  "uint64",
}

var typeSizes = [...]int{
	Invalid: 0,
	Float32: 4,
	Float64: 8,
	Int8:    1,
	Int16:   2,
	Int32:   4,
	Int64:   8,
	Uint8:   1,
	Uint16:  2,
	Uint32:  4,
	Uint64:  8,
}

// String returns the Go-style name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Size returns the element size in bytes (0 for Invalid).
func (t Type) Size() int {
	if int(t) < len(typeSizes) {
		return typeSizes[t]
	}
	return 0
}

// Valid reports whether t is a defined, usable element type.
func (t Type) Valid() bool { return t > Invalid && int(t) < len(typeNames) }

// IsFloat reports whether t is a floating-point type.
func (t Type) IsFloat() bool { return t == Float32 || t == Float64 }

// Parse returns the Type with the given name.
func Parse(name string) (Type, error) {
	for t, n := range typeNames {
		if n == name && Type(t) != Invalid {
			return Type(t), nil
		}
	}
	return Invalid, fmt.Errorf("dtype: unknown type %q", name)
}

// ROBytes is a read-only view of a byte extent. The storage layer
// (simio.Store) and the region cache (exec.Cache) return their internal
// buffers as ROBytes so reads are zero-copy; in exchange, holders must
// never write through the view — extents and cached regions are shared
// by every concurrent query and by the store itself.
//
// The contract is enforced statically: the aliasguard analyzer flags
// any index assignment, copy destination, or append through a value of
// an immutable-marked type (including values laundered through a
// []byte conversion). Because a named slice type is assignable to
// []byte, read-only consumers (dtype.View, dtype.At, kernels) accept
// ROBytes arguments with no conversion churn. Use Clone for the rare
// caller that genuinely needs a private mutable copy.
//
//lint:immutable
type ROBytes []byte

// Clone returns a mutable copy of the view's bytes.
func (b ROBytes) Clone() []byte {
	return append([]byte(nil), b...)
}

// Native is the constraint satisfied by every supported element type.
type Native interface {
	~float32 | ~float64 | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint8 | ~uint16 | ~uint32 | ~uint64
}

// View reinterprets a byte slice as a slice of E without copying. The byte
// slice length must be a multiple of the element size; excess bytes beyond
// the last whole element are ignored.
func View[E Native](b []byte) []E {
	var e E
	sz := int(unsafe.Sizeof(e))
	n := len(b) / sz
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*E)(unsafe.Pointer(&b[0])), n)
}

// Bytes reinterprets a slice of E as its backing bytes without copying.
func Bytes[E Native](s []E) []byte {
	if len(s) == 0 {
		return nil
	}
	var e E
	sz := int(unsafe.Sizeof(e))
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*sz)
}

// Count returns how many whole elements of type t fit in n bytes.
func (t Type) Count(n int) int {
	if !t.Valid() {
		return 0
	}
	return n / t.Size()
}

// At returns element i of data (raw bytes of element type t) as float64.
// It is the slow generic accessor used by correctness checks and small
// probes; bulk kernels use View.
func At(t Type, data []byte, i int) float64 {
	switch t {
	case Float32:
		return float64(View[float32](data)[i])
	case Float64:
		return View[float64](data)[i]
	case Int8:
		return float64(View[int8](data)[i])
	case Int16:
		return float64(View[int16](data)[i])
	case Int32:
		return float64(View[int32](data)[i])
	case Int64:
		return float64(View[int64](data)[i])
	case Uint8:
		return float64(View[uint8](data)[i])
	case Uint16:
		return float64(View[uint16](data)[i])
	case Uint32:
		return float64(View[uint32](data)[i])
	case Uint64:
		return float64(View[uint64](data)[i])
	}
	panic("dtype: At on invalid type")
}

// Put stores v (converted to element type t) at element i of data.
func Put(t Type, data []byte, i int, v float64) {
	switch t {
	case Float32:
		View[float32](data)[i] = float32(v)
	case Float64:
		View[float64](data)[i] = v
	case Int8:
		View[int8](data)[i] = int8(v)
	case Int16:
		View[int16](data)[i] = int16(v)
	case Int32:
		View[int32](data)[i] = int32(v)
	case Int64:
		View[int64](data)[i] = int64(v)
	case Uint8:
		View[uint8](data)[i] = uint8(v)
	case Uint16:
		View[uint16](data)[i] = uint16(v)
	case Uint32:
		View[uint32](data)[i] = uint32(v)
	case Uint64:
		View[uint64](data)[i] = uint64(v)
	default:
		panic("dtype: Put on invalid type")
	}
}

// MinMax returns the minimum and maximum element of data as float64.
// It returns (+Inf, -Inf) for empty data so that merging is a no-op.
func MinMax(t Type, data []byte) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	n := t.Count(len(data))
	for i := 0; i < n; i++ {
		v := At(t, data, i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
