package bitindex

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pdcquery/internal/dtype"
	"pdcquery/internal/wah"
)

// equalIdx compares index slices treating nil and empty as equal.
func equalIdx(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func truthIndices(vals []float32, lo, hi float64, loIncl, hiIncl bool) []uint64 {
	var out []uint64
	for i, vf := range vals {
		v := float64(vf)
		if math.IsNaN(v) {
			continue
		}
		okLo := v > lo || (loIncl && v == lo)
		okHi := v < hi || (hiIncl && v == hi)
		if okLo && okHi {
			out = append(out, uint64(i))
		}
	}
	return out
}

// resolve runs Evaluate and resolves any candidates against the raw data,
// returning the final sorted hit indices.
func resolve(x *Index, vals []float32, lo, hi float64, loIncl, hiIncl bool) []uint64 {
	sure, cands := x.Evaluate(lo, hi, loIncl, hiIncl)
	if len(cands) > 0 {
		extra := x.CheckCandidates(dtype.Float32, dtype.Bytes(vals), cands, lo, hi, loIncl, hiIncl)
		sure = wah.Or(sure, extra)
	}
	return sure.ToIndices()
}

func randVals(rng *rand.Rand, n int, scale, off float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.Float64()*scale + off)
	}
	return out
}

func TestBuildBinStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := randVals(rng, 10000, 8, 0) // range ~8 -> step 0.1 at precision 2
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	if x.N != 10000 {
		t.Fatalf("N = %d", x.N)
	}
	if x.Step != 0.1 {
		t.Errorf("step = %v, want 0.1", x.Step)
	}
	var total uint64
	for i := range x.Bins {
		b := &x.Bins[i]
		if b.Count == 0 {
			t.Errorf("bin %d stored with zero count", i)
		}
		if b.Count != b.Bits.Cardinality() {
			t.Errorf("bin %d count %d != cardinality %d", i, b.Count, b.Bits.Cardinality())
		}
		if b.Min < b.Lo || b.Max >= b.Hi+1e-9 {
			t.Errorf("bin %d extrema [%v,%v] outside edges [%v,%v)", i, b.Min, b.Max, b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != x.N {
		t.Errorf("bin counts sum %d != N %d", total, x.N)
	}
}

func TestEvaluateExactOnAlignedBoundaries(t *testing.T) {
	// Query boundaries on bin edges (like the paper's 2.1 < E < 2.2)
	// resolve without candidates when no element equals the boundary.
	rng := rand.New(rand.NewSource(2))
	vals := randVals(rng, 50000, 4, 0)
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	sure, cands := x.Evaluate(2.1, 2.2, false, false)
	if len(cands) != 0 {
		t.Errorf("aligned boundaries produced %d candidate bins", len(cands))
	}
	want := truthIndices(vals, 2.1, 2.2, false, false)
	if got := sure.ToIndices(); !equalIdx(got, want) {
		t.Errorf("got %d hits, want %d", len(got), len(want))
	}
}

func TestEvaluateUnalignedBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randVals(rng, 20000, 10, -5)
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	for _, q := range []struct{ lo, hi float64 }{
		{-1.234, 2.345}, {0.001, 0.002}, {-5, 5}, {4.99, 5.01}, {-6, -4.5},
	} {
		got := resolve(x, vals, q.lo, q.hi, true, false)
		want := truthIndices(vals, q.lo, q.hi, true, false)
		if !equalIdx(got, want) {
			t.Errorf("query [%v,%v): got %d hits, want %d", q.lo, q.hi, len(got), len(want))
		}
	}
}

func TestEvaluateBoundaryValueInData(t *testing.T) {
	// Data containing the exact boundary value forces a candidate check,
	// which must distinguish strict from inclusive predicates.
	vals := []float32{1.0, 2.0, 2.0, 3.0, 4.0}
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)

	got := resolve(x, vals, 2.0, 4.0, false, false) // 2 < v < 4
	if want := []uint64{3}; !reflect.DeepEqual(got, want) {
		t.Errorf("strict: got %v, want %v", got, want)
	}
	got = resolve(x, vals, 2.0, 4.0, true, true) // 2 <= v <= 4
	if want := []uint64{1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("inclusive: got %v, want %v", got, want)
	}
}

func TestEqualityQuery(t *testing.T) {
	vals := []float32{1.5, 2.5, 2.5, 3.5}
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	got := resolve(x, vals, 2.5, 2.5, true, true) // v == 2.5
	if want := []uint64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("equality: got %v, want %v", got, want)
	}
}

func TestEmptyAndConstantData(t *testing.T) {
	x := Build(dtype.Float32, nil, 2)
	if x.N != 0 || len(x.Bins) != 0 {
		t.Errorf("empty index: N=%d bins=%d", x.N, len(x.Bins))
	}
	sure, cands := x.Evaluate(0, 1, true, true)
	if sure.Cardinality() != 0 || len(cands) != 0 {
		t.Error("empty index produced hits")
	}

	vals := []float32{7, 7, 7}
	x = Build(dtype.Float32, dtype.Bytes(vals), 2)
	got := resolve(x, vals, 6, 8, true, true)
	if len(got) != 3 {
		t.Errorf("constant data: %d hits, want 3", len(got))
	}
	got = resolve(x, vals, 8, 9, true, true)
	if len(got) != 0 {
		t.Errorf("constant data out of range: %d hits", len(got))
	}
}

func TestNaNNeverMatches(t *testing.T) {
	vals := []float32{1, float32(math.NaN()), 3}
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	got := resolve(x, vals, math.Inf(-1), math.Inf(1), false, false)
	if want := []uint64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("NaN handling: got %v, want %v", got, want)
	}
}

func TestIntegerData(t *testing.T) {
	vals := []int32{10, 20, 30, 40, 50}
	x := Build(dtype.Int32, dtype.Bytes(vals), 2)
	sure, cands := x.Evaluate(15, 45, true, true)
	if len(cands) > 0 {
		got := x.CheckCandidates(dtype.Int32, dtype.Bytes(vals), cands, 15, 45, true, true)
		sure = wah.Or(sure, got)
	}
	if want := []uint64{1, 2, 3}; !reflect.DeepEqual(sure.ToIndices(), want) {
		t.Errorf("int32 query: got %v, want %v", sure.ToIndices(), want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := randVals(rng, 5000, 6, 1)
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	enc := x.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != x.N || got.Step != x.Step || got.Base != x.Base || len(got.Bins) != len(x.Bins) {
		t.Fatalf("decode header mismatch")
	}
	for i := range x.Bins {
		a, b := &x.Bins[i], &got.Bins[i]
		if a.Lo != b.Lo || a.Hi != b.Hi || a.Min != b.Min || a.Max != b.Max || a.Count != b.Count {
			t.Fatalf("bin %d metadata mismatch", i)
		}
		if !reflect.DeepEqual(a.Bits.ToIndices(), b.Bits.ToIndices()) {
			t.Fatalf("bin %d bitmap mismatch", i)
		}
	}
}

func TestDirectoryPartialRead(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randVals(rng, 20000, 8, 0)
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	enc := x.Encode()

	// A query reads only the directory prefix first...
	dirBytes := enc[:DirectorySize(len(x.Bins))]
	d, err := DecodeDirectory(dirBytes)
	if err != nil {
		t.Fatal(err)
	}
	sure, cands := d.Select(2.1, 2.4, false, false)
	if len(cands) != 0 {
		t.Fatalf("aligned query produced candidates: %v", cands)
	}
	// ...then only the selected bins' blobs.
	var bms []*wah.Bitmap
	var blobBytes int64
	for _, bi := range sure {
		db := d.Bins[bi]
		bm, err := DecodeBin(enc[db.BlobOff : db.BlobOff+db.BlobLen])
		if err != nil {
			t.Fatal(err)
		}
		blobBytes += db.BlobLen
		bms = append(bms, bm)
	}
	got := wah.OrAll(bms).ToIndices()
	want := truthIndices(vals, 2.1, 2.4, false, false)
	if !equalIdx(got, want) {
		t.Errorf("partial-read query: %d hits, want %d", len(got), len(want))
	}
	// Selective queries must touch a small fraction of the index.
	if blobBytes*5 > int64(len(enc)) {
		t.Errorf("query read %d of %d index bytes; expected a small fraction", blobBytes, len(enc))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeDirectory(nil); err == nil {
		t.Error("DecodeDirectory(nil) succeeded")
	}
	if _, err := DecodeDirectory(make([]byte, 32)); err == nil {
		t.Error("bad magic accepted")
	}
	vals := []float32{1, 2, 3}
	enc := Build(dtype.Float32, dtype.Bytes(vals), 2).Encode()
	if _, err := DecodeDirectory(enc[:33]); err == nil {
		t.Error("truncated directory accepted")
	}
	if _, err := Decode(enc[:len(enc)-2]); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestSizeBytesMatchesEncoded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := randVals(rng, 3000, 5, 0)
	x := Build(dtype.Float32, dtype.Bytes(vals), 2)
	if got, want := x.SizeBytes(), int64(len(x.Encode())); got != want {
		t.Errorf("SizeBytes = %d, encoded length = %d", got, want)
	}
}

func TestPropertyResolveMatchesTruth(t *testing.T) {
	f := func(seed int64, loF, wF float64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randVals(rng, 800, 20, -10)
		x := Build(dtype.Float32, dtype.Bytes(vals), 2)
		lo := math.Mod(math.Abs(loF), 25) - 12
		hi := lo + math.Mod(math.Abs(wF), 8)
		got := resolve(x, vals, lo, hi, true, false)
		want := truthIndices(vals, lo, hi, true, false)
		return equalIdx(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBinStep(t *testing.T) {
	cases := []struct {
		lo, hi float64
		p      int
		want   float64
	}{
		{0, 8, 2, 0.1},
		{0, 80, 2, 1},
		{0, 0.8, 2, 0.01},
		{0, 8, 3, 0.01},
		{5, 5, 2, 1},  // zero range
		{0, 10, 0, 1}, // default precision
	}
	for _, c := range cases {
		if got := binStep(c.lo, c.hi, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("binStep(%v,%v,%d) = %v, want %v", c.lo, c.hi, c.p, got, c.want)
		}
	}
}
