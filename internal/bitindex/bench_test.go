package bitindex

import (
	"math/rand"
	"testing"

	"pdcquery/internal/dtype"
)

func benchData(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(rng.ExpFloat64() * 2)
	}
	return dtype.Bytes(vals)
}

func BenchmarkBuild(b *testing.B) {
	data := benchData(1 << 18)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(dtype.Float32, data, 2)
	}
}

func BenchmarkEvaluateSelective(b *testing.B) {
	x := Build(dtype.Float32, benchData(1<<18), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Evaluate(8.0, 9.0, false, false)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	x := Build(dtype.Float32, benchData(1<<16), 2)
	enc := x.Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
