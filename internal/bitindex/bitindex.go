// Package bitindex implements the binned, WAH-compressed bitmap index the
// paper builds per region with FastBit (§III-D4).
//
// Values are split into bins whose width is a power of ten chosen from the
// region's value range and a decimal precision (the paper uses
// precision=2, "sufficient for the queries evaluated"); one representative
// range per bin maps each element to a single bin bitmap, compressed with
// WAH. The index additionally stores the exact min and max value found in
// each bin: a range query resolves a boundary bin without touching raw
// data whenever the bin's observed extrema already decide it, which is
// exactly why the paper's PDC-HI strategy obtains selections "without the
// need to read the region's data". Elements of boundary bins that the
// extrema cannot decide are returned as candidates for a raw-data check.
//
// The encoded layout places a fixed-size directory (bin edges, extrema,
// counts, blob offsets) before the bitmap blobs so a query can read the
// directory plus only the touched bins' bitmaps — the reason index reads
// stay tiny for selective queries.
package bitindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"pdcquery/internal/dtype"
	"pdcquery/internal/wah"
)

// DefaultPrecision matches the paper's FastBit setting.
const DefaultPrecision = 2

// Bin is one value bin of the index.
type Bin struct {
	// Lo and Hi are the nominal decimal bin edges; elements satisfy
	// Lo <= v < Hi.
	Lo, Hi float64
	// Min and Max are the exact extrema of the values in the bin.
	Min, Max float64
	// Count is the number of elements in the bin.
	Count uint64
	// Bits marks which region elements fall in this bin.
	Bits *wah.Bitmap
}

// Index is a bitmap index over one region's values.
type Index struct {
	// N is the number of indexed elements.
	N uint64
	// Step is the decimal bin width (a power of ten scaled by the
	// precision), and Base the grid origin (a multiple of Step).
	Step, Base float64
	Bins       []Bin
}

// binStep picks the decimal bin width for a value range at the given
// precision: one decimal digit of the range magnitude per precision level.
func binStep(lo, hi float64, precision int) float64 {
	if precision <= 0 {
		precision = DefaultPrecision
	}
	r := hi - lo
	if !(r > 0) || math.IsInf(r, 0) {
		return 1
	}
	exp := int(math.Floor(math.Log10(r))) - precision + 1
	return math.Pow(10, float64(exp))
}

// Build constructs the index over a raw region buffer of the given element
// type. NaN elements are never indexed and never match queries.
func Build(t dtype.Type, data []byte, precision int) *Index {
	n := t.Count(len(data))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		v := dtype.At(t, data, i)
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	x := &Index{N: uint64(n)}
	if math.IsInf(lo, 1) {
		x.Step, x.Base = 1, 0
		return x
	}
	step := binStep(lo, hi, precision)
	base := math.Floor(lo/step) * step
	nbins := int(math.Floor((hi-base)/step)) + 1
	if nbins < 1 {
		nbins = 1
	}
	x.Step, x.Base = step, base

	type binAcc struct {
		idx      []uint64
		min, max float64
	}
	accs := make([]binAcc, nbins)
	for i := range accs {
		accs[i].min = math.Inf(1)
		accs[i].max = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		v := dtype.At(t, data, i)
		if math.IsNaN(v) {
			continue
		}
		j := int(math.Floor((v - base) / step))
		if j < 0 {
			j = 0
		}
		if j >= nbins {
			j = nbins - 1
		}
		a := &accs[j]
		a.idx = append(a.idx, uint64(i))
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	for j, a := range accs {
		if len(a.idx) == 0 {
			continue
		}
		x.Bins = append(x.Bins, Bin{
			Lo:    base + float64(j)*step,
			Hi:    base + float64(j+1)*step,
			Min:   a.min,
			Max:   a.max,
			Count: uint64(len(a.idx)),
			Bits:  wah.FromIndices(a.idx, uint64(n)),
		})
	}
	return x
}

// pred reports how a bin relates to the range predicate using the bin's
// exact extrema: all elements match, none match, or undecided.
func binMatch(b *Bin, lo, hi float64, loIncl, hiIncl bool) (all, none bool) {
	minOK := b.Min > lo || (loIncl && b.Min == lo)
	maxOK := b.Max < hi || (hiIncl && b.Max == hi)
	if minOK && maxOK {
		return true, false
	}
	outLow := b.Max < lo || (!loIncl && b.Max == lo)
	outHigh := b.Min > hi || (!hiIncl && b.Min == hi)
	if outLow || outHigh {
		return false, true
	}
	return false, false
}

// Evaluate resolves the range predicate lo (<|<=) v (<|<=) hi against the
// index. It returns the bitmap of elements that surely match and the list
// of bin indices (into x.Bins) whose elements need a raw-data candidate
// check. For queries whose boundaries do not coincide with data values —
// the common case for continuous data — the candidate list is empty and no
// raw data is needed.
func (x *Index) Evaluate(lo, hi float64, loIncl, hiIncl bool) (sure *wah.Bitmap, candidates []int) {
	var sureBins []*wah.Bitmap
	for i := range x.Bins {
		b := &x.Bins[i]
		all, none := binMatch(b, lo, hi, loIncl, hiIncl)
		switch {
		case all:
			sureBins = append(sureBins, b.Bits)
		case none:
		default:
			candidates = append(candidates, i)
		}
	}
	sure = wah.OrAll(sureBins)
	if sure == nil {
		sure = wah.Empty(x.N)
	}
	return sure, candidates
}

// CheckCandidates resolves candidate bins against raw region data,
// returning the bitmap of candidate elements that actually satisfy the
// predicate.
func (x *Index) CheckCandidates(t dtype.Type, data []byte, candidates []int, lo, hi float64, loIncl, hiIncl bool) *wah.Bitmap {
	var idx []uint64
	for _, ci := range candidates {
		x.Bins[ci].Bits.ForEach(func(i uint64) {
			v := dtype.At(t, data, int(i))
			okLo := v > lo || (loIncl && v == lo)
			okHi := v < hi || (hiIncl && v == hi)
			if okLo && okHi {
				idx = append(idx, i)
			}
		})
	}
	// Indices come out sorted per bin but bins may interleave; sort-merge.
	slices.Sort(idx)
	return wah.FromIndices(idx, x.N)
}

const (
	encMagic   = uint32(0x50444249) // "PDBI"
	headerSize = 32
	binMetaLen = 8 * 5 // lo, hi, min, max (f64) + count (u64)
)

// Directory is the decoded index metadata without the bitmap blobs: bin
// edges, extrema, counts, and blob placement. It is small (tens of bytes
// per bin) and is what a query reads first.
type Directory struct {
	N          uint64
	Step, Base float64
	Bins       []DirBin
}

// DirBin describes one bin and where its bitmap blob lives in the encoded
// index.
type DirBin struct {
	Lo, Hi   float64
	Min, Max float64
	Count    uint64
	BlobOff  int64
	BlobLen  int64
}

// DirectorySize returns the encoded directory size in bytes for an index
// with nbins bins; callers read this prefix before selecting bins.
func DirectorySize(nbins int) int64 {
	return headerSize + int64(nbins)*(binMetaLen+8)
}

// Encode serializes the index: header, directory, then bitmap blobs.
// It is single-pass in wire order — header fields first, then one visit
// per bin that fills the bin's directory entry and appends its blob —
// so the field-access order matches Decode's (wiresymmetry).
func (x *Index) Encode() []byte {
	out := make([]byte, DirectorySize(len(x.Bins)))
	binary.LittleEndian.PutUint32(out[0:4], encMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(x.Bins)))
	binary.LittleEndian.PutUint64(out[8:16], x.N)
	binary.LittleEndian.PutUint64(out[16:24], math.Float64bits(x.Step))
	binary.LittleEndian.PutUint64(out[24:32], math.Float64bits(x.Base))
	off := headerSize
	for i := range x.Bins {
		b := &x.Bins[i]
		blob := b.Bits.Encode()
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(b.Lo))
		binary.LittleEndian.PutUint64(out[off+8:], math.Float64bits(b.Hi))
		binary.LittleEndian.PutUint64(out[off+16:], math.Float64bits(b.Min))
		binary.LittleEndian.PutUint64(out[off+24:], math.Float64bits(b.Max))
		binary.LittleEndian.PutUint64(out[off+32:], b.Count)
		binary.LittleEndian.PutUint64(out[off+40:], uint64(len(blob)))
		off += binMetaLen + 8
		out = append(out, blob...)
	}
	return out
}

// Directory returns the index's directory as it would decode from the
// encoded form, with blob offsets matching Encode's layout. PDC keeps it
// in the region metadata (cached on every server after metadata
// distribution, §III-D2), so a query pays storage reads only for the
// touched bins' bitmap blobs.
func (x *Index) Directory() *Directory {
	d := &Directory{N: x.N, Step: x.Step, Base: x.Base, Bins: make([]DirBin, len(x.Bins))}
	blobOff := DirectorySize(len(x.Bins))
	for i := range x.Bins {
		b := &x.Bins[i]
		blobLen := int64(b.Bits.SizeBytes()) + 12 // wah.Encode header
		d.Bins[i] = DirBin{
			Lo: b.Lo, Hi: b.Hi, Min: b.Min, Max: b.Max,
			Count: b.Count, BlobOff: blobOff, BlobLen: blobLen,
		}
		blobOff += blobLen
	}
	return d
}

// DecodeDirectory parses the directory prefix of an encoded index. The
// input must contain at least the header; if it contains the full
// directory the bin list is populated with blob offsets relative to the
// start of the encoded index.
func DecodeDirectory(b []byte) (*Directory, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("bitindex: directory too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != encMagic {
		return nil, fmt.Errorf("bitindex: bad magic")
	}
	nbins := int(binary.LittleEndian.Uint32(b[4:8]))
	d := &Directory{
		N:    binary.LittleEndian.Uint64(b[8:16]),
		Step: math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
		Base: math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
	}
	need := DirectorySize(nbins)
	if int64(len(b)) < need {
		return nil, fmt.Errorf("bitindex: directory truncated: have %d, need %d", len(b), need)
	}
	off := int64(headerSize)
	blobOff := need
	d.Bins = make([]DirBin, nbins)
	for i := 0; i < nbins; i++ {
		db := &d.Bins[i]
		db.Lo = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		db.Hi = math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:]))
		db.Min = math.Float64frombits(binary.LittleEndian.Uint64(b[off+16:]))
		db.Max = math.Float64frombits(binary.LittleEndian.Uint64(b[off+24:]))
		db.Count = binary.LittleEndian.Uint64(b[off+32:])
		db.BlobLen = int64(binary.LittleEndian.Uint64(b[off+40:]))
		db.BlobOff = blobOff
		blobOff += db.BlobLen
		off += binMetaLen + 8
	}
	return d, nil
}

// Select classifies bins against a range predicate using the directory
// only: sure bins (every element matches) and candidate bins (need either
// their extrema-undecidable elements checked against raw data).
func (d *Directory) Select(lo, hi float64, loIncl, hiIncl bool) (sure, candidates []int) {
	for i := range d.Bins {
		db := &d.Bins[i]
		b := Bin{Lo: db.Lo, Hi: db.Hi, Min: db.Min, Max: db.Max}
		all, none := binMatch(&b, lo, hi, loIncl, hiIncl)
		switch {
		case all:
			sure = append(sure, i)
		case none:
		default:
			candidates = append(candidates, i)
		}
	}
	return sure, candidates
}

// DecodeBin decodes bin i's bitmap from its blob bytes (as located by the
// directory).
func DecodeBin(blob []byte) (*wah.Bitmap, error) {
	return wah.Decode(blob)
}

// Decode fully deserializes an encoded index (used by tests and tools;
// queries prefer DecodeDirectory + per-bin reads).
func Decode(b []byte) (*Index, error) {
	d, err := DecodeDirectory(b)
	if err != nil {
		return nil, err
	}
	x := &Index{N: d.N, Step: d.Step, Base: d.Base}
	for i := range d.Bins {
		db := &d.Bins[i]
		if db.BlobOff+db.BlobLen > int64(len(b)) {
			return nil, fmt.Errorf("bitindex: blob %d out of bounds", i)
		}
		bm, err := wah.Decode(b[db.BlobOff : db.BlobOff+db.BlobLen])
		if err != nil {
			return nil, fmt.Errorf("bitindex: bin %d: %w", i, err)
		}
		x.Bins = append(x.Bins, Bin{
			Lo: db.Lo, Hi: db.Hi, Min: db.Min, Max: db.Max,
			Count: db.Count, Bits: bm,
		})
	}
	return x, nil
}

// SizeBytes returns the encoded size of the index.
func (x *Index) SizeBytes() int64 {
	n := DirectorySize(len(x.Bins))
	for i := range x.Bins {
		n += int64(x.Bins[i].Bits.SizeBytes()) + 12
	}
	return n
}
