// Package lint is the repo's static-analysis subsystem: a small,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus a package
// loader, so custom invariant checkers can run offline with nothing but
// the Go toolchain.
//
// The checkers enforce the two load-bearing conventions of this
// codebase (see DESIGN.md "Correctness tooling"):
//
//   - determinism: all time and randomness flows through internal/vclock
//     and internal/simio, never the wall clock or the global rand source;
//   - mutex discipline: struct fields declared after a sync.Mutex /
//     sync.RWMutex field are guarded by it, and methods that touch them
//     must take the lock.
//
// plus two structural invariants: protocol message kinds must be wired
// on both the encode and dispatch sides, and server request paths must
// return errors rather than panic.
//
// A second, dataflow tier of analyzers (vclockcharge, wiresymmetry,
// lockorder, ctxpropagate) reasons across packages over a whole-repo
// static call graph (see callgraph.go). These set Analyzer.Global and receive every
// loaded package at once via Pass.Pkgs; Pass.CallGraph lazily builds
// and shares one graph per run.
//
// Diagnostics can be suppressed with a directive comment on the
// offending line or the line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Global marks analyzers that need the whole package set at once
	// (call-graph analyses). A global analyzer runs exactly once per
	// RunAnalyzers call with Pass.Pkgs populated; per-package fields
	// (Files, Pkg, Info, PkgPath) are left nil/empty. In unitchecker
	// mode the go command hands the tool one package at a time, so
	// global analyzers degrade to intra-package analysis there.
	Global bool
	// Run inspects a package (or, for Global analyzers, the whole
	// package set) and reports findings through the pass.
	Run func(*Pass) error
}

// Pass connects one analyzer run to one package (or, for Global
// analyzers, to the whole package set).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package import path (fixture packages use their
	// testdata-relative path).
	PkgPath string
	// Pkgs is the full package set; populated only for Global analyzers.
	Pkgs []*Package

	shared *sharedState
	diags  []Diagnostic
}

// sharedState caches artifacts that several analyzers in one
// RunAnalyzers invocation want to reuse: the call graph (vclockcharge,
// lockorder, barrierdet, errflow, lockhold) and the per-function CFGs
// the dataflow tier walks.
type sharedState struct {
	graph *CallGraph
	cfgs  map[string]*CFG
}

// CallGraph returns the static call graph over Pass.Pkgs, building it on
// first use and sharing it between Global analyzers of the same run.
func (p *Pass) CallGraph() *CallGraph {
	if p.shared == nil {
		p.shared = &sharedState{}
	}
	if p.shared.graph == nil {
		p.shared.graph = NewCallGraph(p.Pkgs)
	}
	return p.shared.graph
}

// CFG returns the control-flow graph of the declared function funcKey
// (a call-graph key), building it on first use and caching it for the
// rest of the run. Returns nil when the key is unknown or the function
// has no body. Function literals are not keyed — analyzers build their
// CFGs directly with NewCFG on the literal body.
func (p *Pass) CFG(funcKey string) *CFG {
	node := p.CallGraph().Nodes[funcKey]
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil
	}
	if p.shared.cfgs == nil {
		p.shared.cfgs = make(map[string]*CFG)
	}
	if c, ok := p.shared.cfgs[funcKey]; ok {
		return c
	}
	c := NewCFG(node.Decl.Body)
	p.shared.cfgs[funcKey] = c
	return c
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// FuncKey is the call-graph key of the function the finding is in
	// (empty for analyzers that do not reason per function).
	FuncKey string
	// Chain is the call path from a declared analysis root to FuncKey
	// (root first), for analyzers that attribute findings to roots.
	Chain []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAttributed records a diagnostic carrying the enclosing function's
// FuncKey and the root attribution chain that reaches it — the metadata
// the pdc-lint -json schema exposes for CI tooling.
func (p *Pass) ReportAttributed(pos token.Pos, funcKey string, chain []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		FuncKey:  funcKey,
		Chain:    chain,
	})
}

// InTestFile reports whether pos lies in a _test.go file; the
// determinism rules apply only to production code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns the analyzers shipped with pdc-lint, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		MutexGuardAnalyzer,
		ProtoExhaustiveAnalyzer,
		NopanicAnalyzer,
		VclockChargeAnalyzer,
		WireSymmetryAnalyzer,
		LockOrderAnalyzer,
		CtxPropagateAnalyzer,
		AliasGuardAnalyzer,
		HotAllocAnalyzer,
		BarrierDetAnalyzer,
		ErrFlowAnalyzer,
		NilChargeAnalyzer,
		LockHoldAnalyzer,
	}
}

// Session binds one loaded package set to the expensive artifacts the
// analyzers derive from it — today the whole-repo call graph — so that
// several RunAnalyzers-style invocations (one per analyzer, as the
// repo-clean tests and vet integrations issue them) build the graph once
// instead of once per invocation.
type Session struct {
	pkgs   []*Package
	shared *sharedState
}

// NewSession returns a session over pkgs with an empty artifact cache.
func NewSession(pkgs []*Package) *Session {
	return &Session{pkgs: pkgs, shared: &sharedState{}}
}

// Graph returns the session's cached whole-repo call graph, building it
// on first use. It is the same graph the session's Global analyzers
// share via Pass.CallGraph, so callers that need graph-level facts after
// a Run (the hotalloc budget staleness check, for one) pay nothing
// extra.
func (s *Session) Graph() *CallGraph {
	if s.shared.graph == nil {
		s.shared.graph = NewCallGraph(s.pkgs)
	}
	return s.shared.graph
}

// Packages returns the package set the session was created over (a
// fresh slice — appends by the caller cannot disturb the session).
func (s *Session) Packages() []*Package {
	return append([]*Package(nil), s.pkgs...)
}

// RunAnalyzers applies each per-package analyzer to each package and
// each Global analyzer once to the whole set, filters //lint:ignore'd
// findings, and returns the remainder sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewSession(pkgs).Run(analyzers)
}

// Run applies the analyzers over the session's package set, reusing the
// session's cached call graph across invocations.
func (s *Session) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	shared := s.shared
	pkgs := s.pkgs
	var out []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Global {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
				shared:   shared,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
			for _, d := range pass.diags {
				if !ig.suppressed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	if len(pkgs) > 0 {
		// Global analyzers see every package at once; their ignore set is
		// the union over all files (packages loaded together share one
		// FileSet, so positions are comparable).
		var allFiles []*ast.File
		for _, pkg := range pkgs {
			allFiles = append(allFiles, pkg.Files...)
		}
		ig := collectIgnores(pkgs[0].Fset, allFiles)
		for _, a := range analyzers {
			if !a.Global {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkgs[0].Fset,
				Pkgs:     pkgs,
				shared:   shared,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			for _, d := range pass.diags {
				if !ig.suppressed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by position then analyzer name — the
// stable output order of Run. Exported for callers that collect
// diagnostics across several Run invocations (pdc-lint -timing runs one
// analyzer at a time) and need the merged list back in canonical order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreSet records which (file, line) pairs are exempt per analyzer.
type ignoreSet struct {
	// byAnalyzer maps analyzer name -> "file:line" set.
	byAnalyzer map[string]map[string]bool
}

const ignorePrefix = "//lint:ignore"

// collectIgnores parses //lint:ignore directives. A directive on its own
// line exempts the next line; a trailing directive exempts its own line.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byAnalyzer: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// A directive without a reason is ignored (the reason
					// is mandatory, like staticcheck's).
					continue
				}
				pos := fset.Position(c.Pos())
				// Own-line directive: no code before the comment.
				line := pos.Line
				if startsLine(fset, f, c) {
					line = pos.Line + 1
				}
				for _, name := range strings.Split(fields[0], ",") {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if ig.byAnalyzer[name] == nil {
						ig.byAnalyzer[name] = make(map[string]bool)
					}
					ig.byAnalyzer[name][key] = true
				}
			}
		}
	}
	return ig
}

// startsLine reports whether the comment is the first token on its line
// (heuristic: its column is where any preceding run of whitespace ends —
// we approximate by checking nothing in the file's code overlaps the
// line before the comment's column; a column of 1 is always a line
// start; otherwise we scan the declarations).
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	if pos.Column == 1 {
		return true
	}
	// If any non-comment node ends on the same line before the comment
	// starts, the directive is trailing.
	trailing := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		end := fset.Position(n.End())
		if end.Filename == pos.Filename && end.Line == pos.Line && end.Column <= pos.Column {
			switch n.(type) {
			case *ast.Comment, *ast.CommentGroup, *ast.File:
			default:
				trailing = true
			}
		}
		return true
	})
	return !trailing
}

func (ig *ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	m := ig.byAnalyzer[analyzer]
	if m == nil {
		return false
	}
	return m[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
}
