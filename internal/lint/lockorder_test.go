package lint_test

import (
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrderAnalyzer, "lockorder")
}

// TestRepoLockOrder runs lockorder over the real tree: the global
// mutex-acquisition graph must stay acyclic.
func TestRepoLockOrder(t *testing.T) {
	requireRepoClean(t, lint.LockOrderAnalyzer)
}
