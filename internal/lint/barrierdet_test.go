package lint_test

import (
	"strings"
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestBarrierDet(t *testing.T) {
	linttest.Run(t, lint.BarrierDetAnalyzer, "barrierdet")
}

// TestRepoBarrierDeterminism runs barrierdet over the real tree: every
// pooled worker must confine its effects to per-task aggregates.
func TestRepoBarrierDeterminism(t *testing.T) {
	requireRepoClean(t, lint.BarrierDetAnalyzer)
}

// TestBarrierDetCatchesPooledRecord pins the PR 7 regression: a direct
// Recorder.Record inside a Pool.Map worker task must fail the lint. The
// fixture's BadDirectRecord reproduces exactly the bug shape (cache
// traffic recorded from pooled region tasks) that forced the rebuild
// around per-task aggregates flushed at the barrier.
func TestBarrierDetCatchesPooledRecord(t *testing.T) {
	pkgs, err := lint.LoadTree("testdata/src/barrierdet", "barrierdet")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.BarrierDetAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "telemetry Recorder write inside a Pool.Map worker task") {
			found = true
		}
	}
	if !found {
		t.Fatal("re-introducing a direct Recorder.Record in a pooled task must fail barrierdet")
	}
}
