package lint_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"pdcquery/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSARIFGolden pins the serialized SARIF shape against a golden
// file: schema/version header, rule table with indexes, warning-level
// results with physical locations, and the func/chain property bag.
// The diagnostics are hand-built (not produced by running fixtures) so
// the golden file contains stable relative paths.
func TestSARIFGolden(t *testing.T) {
	analyzers := []*lint.Analyzer{
		{Name: "barrierdet", Doc: "forbid telemetry and captured-state writes inside Pool.Map worker tasks\n\nLong doc."},
		{Name: "hotalloc", Doc: "budget heap-allocation sites in functions reachable from query hot paths"},
	}
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/exec/exec.go", Line: 42, Column: 7},
			Analyzer: "hotalloc",
			Message:  "hot-path make allocation exceeds budget",
			FuncKey:  "pdcquery/internal/exec.Engine.evalRegionScan",
			Chain: []string{
				"pdcquery/internal/exec.Engine.Evaluate",
				"pdcquery/internal/exec.Engine.evalRegionScan",
			},
		},
		{
			Pos:      token.Position{Filename: "internal/server/server.go", Line: 7, Column: 2},
			Analyzer: "barrierdet",
			Message:  "telemetry Recorder write inside a Pool.Map worker task",
			FuncKey:  "pdcquery/internal/server.Server.handleQuery",
		},
		{
			// An analyzer outside the passed catalog keeps its ruleId
			// but cannot be indexed.
			Pos:      token.Position{Filename: "internal/core/core.go", Line: 3, Column: 1},
			Analyzer: "errflow",
			Message:  "request-path error dropped",
		},
	}
	got, err := json.MarshalIndent(lint.ToSARIF(diags, analyzers), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "sarif_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/lint -run TestSARIFGolden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output drifted from golden file:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSARIFCatalogAndCleanRun checks the properties the golden file
// can't: the full shipped catalog becomes the rule table (checked-and-
// clean is distinguishable from not-checked), and a clean run emits a
// non-nil empty results array rather than null.
func TestSARIFCatalogAndCleanRun(t *testing.T) {
	log := lint.ToSARIF(nil, lint.All())
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != len(lint.All()) {
		t.Fatalf("rule table has %d entries, want %d", len(rules), len(lint.All()))
	}
	for i, a := range lint.All() {
		if rules[i].ID != a.Name {
			t.Errorf("rules[%d].ID = %q, want %q", i, rules[i].ID, a.Name)
		}
		if rules[i].ShortDescription.Text == "" {
			t.Errorf("rules[%d] (%s) has an empty description", i, a.Name)
		}
	}
	if log.Runs[0].Results == nil {
		t.Error("clean run must serialize as \"results\": [], not null")
	}
	b, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"results":[]`)) {
		t.Errorf("clean-run serialization lacks empty results array: %s", b)
	}
}
