package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MutexGuardAnalyzer enforces the repo's position-after-mutex convention:
// in a struct that declares a sync.Mutex / sync.RWMutex field, every
// field declared AFTER the mutex is guarded by it, and any method that
// reads or writes a guarded field must mention the mutex (Lock/RLock or
// passing it to a helper). Fields declared before the mutex are
// unguarded (immutable-after-construction configuration).
//
// Escapes: methods whose name ends in "Locked" are assumed to be called
// with the lock already held, and //lint:ignore mutexguard <reason>
// suppresses individual accesses.
var MutexGuardAnalyzer = &Analyzer{
	Name: "mutexguard",
	Doc:  "fields declared after a mutex are guarded: methods touching them must take the lock",
	Run:  runMutexGuard,
}

// guardedStruct records one struct type with a mutex field.
type guardedStruct struct {
	typeName string
	mutex    string          // mutex field name, e.g. "mu"
	guarded  map[string]bool // fields declared after the mutex
}

func runMutexGuard(pass *Pass) error {
	structs := make(map[string]*guardedStruct)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := scanStruct(pass, ts.Name.Name, st)
			if gs != nil {
				structs[ts.Name.Name] = gs
			}
			return true
		})
	}
	if len(structs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			gs := structs[recvTypeName(fd.Recv.List[0].Type)]
			if gs == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-lock convention
			}
			if len(fd.Recv.List[0].Names) == 0 {
				continue // receiver unnamed: fields unreachable
			}
			recvIdent := fd.Recv.List[0].Names[0]
			recvObj := pass.Info.Defs[recvIdent]
			if recvObj == nil {
				continue
			}
			checkMethod(pass, fd, gs, recvObj)
		}
	}
	return nil
}

// scanStruct returns the guard info for a struct, or nil when it has no
// named mutex field or no fields after it.
func scanStruct(pass *Pass, name string, st *ast.StructType) *guardedStruct {
	var gs *guardedStruct
	for _, field := range st.Fields.List {
		if gs != nil {
			for _, n := range field.Names {
				gs.guarded[n.Name] = true
			}
			continue
		}
		if len(field.Names) != 1 {
			continue
		}
		if isMutexType(pass.Info.Types[field.Type].Type) {
			gs = &guardedStruct{
				typeName: name,
				mutex:    field.Names[0].Name,
				guarded:  make(map[string]bool),
			}
		}
	}
	if gs == nil || len(gs.guarded) == 0 {
		return nil
	}
	return gs
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// checkMethod flags guarded-field accesses in methods that never mention
// the mutex. Mentioning the mutex at all (locking it, passing &recv.mu
// to a helper) counts as handling synchronization: the check is a
// convention linter, not a race detector — go test -race is the backstop.
func checkMethod(pass *Pass, fd *ast.FuncDecl, gs *guardedStruct, recvObj types.Object) {
	mentionsMutex := false
	type access struct {
		sel   *ast.SelectorExpr
		field string
	}
	var accesses []access
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !usesObject(pass, sel.X, recvObj) {
			return true
		}
		switch {
		case sel.Sel.Name == gs.mutex:
			mentionsMutex = true
		case gs.guarded[sel.Sel.Name]:
			accesses = append(accesses, access{sel, sel.Sel.Name})
		}
		return true
	})
	if mentionsMutex {
		return
	}
	for _, a := range accesses {
		pass.Reportf(a.sel.Pos(),
			"%s.%s is guarded by %q (declared after it) but method %s never locks it",
			gs.typeName, a.field, gs.mutex, fd.Name.Name)
	}
}
