package lint

import (
	"go/ast"
	"strings"
)

// NopanicAnalyzer forbids panic on server request-handling paths. A
// panicking handler kills the whole query server (one hostile or
// corrupt frame takes down every connection), so the packages between
// the wire and the evaluation engine must return errors instead. The
// write/build path (wah, dtype, region index construction) may keep
// panics for programmer-error invariants.
//
// Scope: packages whose import path contains one of nopanicScope.
// Escape hatch: //lint:ignore nopanic <reason> on the offending line.
var NopanicAnalyzer = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic() in server request-handling and transport packages; return errors",
	Run:  runNopanic,
}

// nopanicScope are the request-path packages (matched as path suffixes
// or interior segments so testdata fixtures can reproduce them).
var nopanicScope = []string{
	"internal/server",
	"internal/transport",
	"internal/exec",
	"internal/query",
	"internal/selection",
}

func runNopanic(pass *Pass) error {
	inScope := false
	for _, s := range nopanicScope {
		if strings.HasSuffix(pass.PkgPath, s) || strings.Contains(pass.PkgPath, s+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// The builtin, not a local redefinition.
			if obj := pass.Info.Uses[id]; obj != nil && obj.Parent() != nil && obj.Parent().Parent() == nil {
				if pass.InTestFile(id.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic on a request-handling path; return an error (a panicking handler kills the whole server)")
			}
			return true
		})
	}
	return nil
}
