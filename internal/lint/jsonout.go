package lint

// JSONDiagnostic is the stable one-object-per-line schema pdc-lint -json
// emits. CI tooling depends on these field names; changing them is a
// breaking change and must update the schema test alongside.
//
//   - file/line/col: position of the finding;
//   - analyzer: the reporting analyzer's name;
//   - message: the human-readable finding;
//   - func: the call-graph FuncKey of the enclosing function, when the
//     analyzer reasons per function (omitted otherwise);
//   - chain: for root-attributed analyzers (hotalloc), the call path from
//     the declared root to func, root first (omitted otherwise).
type JSONDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	FuncKey  string   `json:"func,omitempty"`
	Chain    []string `json:"chain,omitempty"`
}

// ToJSON converts a Diagnostic to its wire schema.
func ToJSON(d Diagnostic) JSONDiagnostic {
	return JSONDiagnostic{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
		FuncKey:  d.FuncKey,
		Chain:    d.Chain,
	}
}
