package lint_test

import (
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestNilCharge(t *testing.T) {
	linttest.Run(t, lint.NilChargeAnalyzer, "nilcharge")
}

// TestRepoNilCharges runs nilcharge over the real tree: accounts and
// tokens must be provably non-nil wherever they are charged or deref'd.
func TestRepoNilCharges(t *testing.T) {
	requireRepoClean(t, lint.NilChargeAnalyzer)
}
