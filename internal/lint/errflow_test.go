package lint_test

import (
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestErrFlow(t *testing.T) {
	linttest.Run(t, lint.ErrFlowAnalyzer, "errflow")
}

// TestRepoErrorsFlow runs errflow over the real tree: no request-path
// error may be dropped or shadowed.
func TestRepoErrorsFlow(t *testing.T) {
	requireRepoClean(t, lint.ErrFlowAnalyzer)
}
