package lint_test

import (
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestCtxPropagate(t *testing.T) {
	linttest.Run(t, lint.CtxPropagateAnalyzer, "ctxpropagate")
}

// TestRepoPropagatesCancellation runs ctxpropagate over the real tree:
// every request-path function that spawns goroutines or loops over
// storage I/O must thread and use a context or scheduler token.
func TestRepoPropagatesCancellation(t *testing.T) {
	requireRepoClean(t, lint.CtxPropagateAnalyzer)
}
