package lint_test

import (
	"strings"
	"sync"
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestVclockCharge(t *testing.T) {
	linttest.Run(t, lint.VclockChargeAnalyzer, "vclockcharge")
}

// TestRepoChargesAllRequestIO runs vclockcharge over the real tree:
// every simio touch on a request path must be charged.
func TestRepoChargesAllRequestIO(t *testing.T) {
	requireRepoClean(t, lint.VclockChargeAnalyzer)
}

// repoSession loads the production tree once per test binary and shares
// one lint.Session across every repo-clean test, so the whole-repo call
// graph the global analyzers need is built a single time instead of once
// per analyzer (the "cache the call graph between lint invocations"
// behaviour make lint and CI rely on).
var repoSession = struct {
	once sync.Once
	s    *lint.Session
	err  error
}{}

func loadRepoSession(t *testing.T) *lint.Session {
	t.Helper()
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	repoSession.once.Do(func() {
		pkgs, err := lint.Load("..", "./...")
		if err != nil {
			repoSession.err = err
			return
		}
		repoSession.s = lint.NewSession(pkgs)
	})
	if repoSession.err != nil {
		t.Fatal(repoSession.err)
	}
	return repoSession.s
}

// requireRepoClean loads the production packages and asserts the
// analyzer reports nothing.
func requireRepoClean(t *testing.T, a *lint.Analyzer) {
	t.Helper()
	diags, err := loadRepoSession(t).Run([]*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("%s must be clean on the repo:\n%s", a.Name, strings.Join(msgs, "\n"))
	}
}

// TestRepoCleanAllAnalyzers is the fourteen-analyzer gate: the full
// catalog must pass over the production tree, matching what make lint
// and CI enforce.
func TestRepoCleanAllAnalyzers(t *testing.T) {
	all := lint.All()
	if len(all) != 14 {
		t.Fatalf("analyzer catalog has %d entries, want 14", len(all))
	}
	diags, err := loadRepoSession(t).Run(all)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("analyzers must be clean on the repo:\n%s", strings.Join(msgs, "\n"))
	}
}
