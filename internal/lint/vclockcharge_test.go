package lint_test

import (
	"strings"
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestVclockCharge(t *testing.T) {
	linttest.Run(t, lint.VclockChargeAnalyzer, "vclockcharge")
}

// TestRepoChargesAllRequestIO runs vclockcharge over the real tree:
// every simio touch on a request path must be charged.
func TestRepoChargesAllRequestIO(t *testing.T) {
	requireRepoClean(t, lint.VclockChargeAnalyzer)
}

// requireRepoClean loads the production packages and asserts the
// analyzer reports nothing.
func requireRepoClean(t *testing.T, a *lint.Analyzer) {
	t.Helper()
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := lint.Load("..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("%s must be clean on the repo:\n%s", a.Name, strings.Join(msgs, "\n"))
	}
}

// TestRepoCleanAllAnalyzers is the eight-analyzer gate: the full
// catalog must pass over the production tree, matching what make lint
// and CI enforce.
func TestRepoCleanAllAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := lint.Load("..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	all := lint.All()
	if len(all) != 8 {
		t.Fatalf("analyzer catalog has %d entries, want 8", len(all))
	}
	diags, err := lint.RunAnalyzers(pkgs, all)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("analyzers must be clean on the repo:\n%s", strings.Join(msgs, "\n"))
	}
}
