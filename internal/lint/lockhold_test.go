package lint_test

import (
	"testing"

	"pdcquery/internal/lint"
	"pdcquery/internal/lint/linttest"
)

func TestLockHold(t *testing.T) {
	linttest.Run(t, lint.LockHoldAnalyzer, "lockhold")
}

// TestRepoLockHoldHygiene runs lockhold over the real tree: no storage
// I/O, transport send, or blocking channel send under a mutex.
func TestRepoLockHoldHygiene(t *testing.T) {
	requireRepoClean(t, lint.LockHoldAnalyzer)
}
