package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BarrierDetAnalyzer statically encodes the engine's barrier
// determinism invariant: a sched.Pool.Map worker task must confine its
// effects to per-index result slots and shadow aggregates; telemetry
// (Recorder events, Registry counters, PhaseTimes) and engine-shared
// maps/slices may only be touched at the serial merge barrier, after
// Map returns. Workers race, so a direct Recorder.Record from a task
// interleaves events in worker-completion order — the exact PR 7
// regression (cache traffic recorded from pooled region tasks) that
// had to be rebuilt around per-task CacheTraffic aggregates flushed at
// the barrier.
//
// Three rules, applied to every function passed to Pool.Map (resolved
// to its literal through the enclosing body):
//
//  1. No direct telemetry-sink call (Recorder.Record, Registry
//     mutators, PhaseTimes.Add) anywhere in the worker body.
//  2. No write to captured state: captured scalars and struct fields,
//     captured maps, and captured slices — unless the element index
//     references a worker-local variable (the per-index slot pattern
//     `results[i] = res`).
//  3. A call whose transitive call-graph closure reaches a telemetry
//     sink is only legal on a receiver the worker has neutralized
//     first: a must-dominating nil store to the receiver's recorder
//     field of that sink's type (the `te := *e; te.Rec = nil` shadow
//     engine idiom). The effects then accumulate in the task's shadow
//     aggregates instead of the shared recorder.
var BarrierDetAnalyzer = &Analyzer{
	Name:   "barrierdet",
	Doc:    "pooled worker tasks must route shared effects through per-task aggregates flushed at the serial barrier",
	Global: true,
	Run:    runBarrierDet,
}

// Sink kinds, as a bitmask for transitive reach propagation.
const (
	sinkRecorder = 1 << iota
	sinkRegistry
	sinkPhases
)

func sinkKindNames(mask int) string {
	var parts []string
	if mask&sinkRecorder != 0 {
		parts = append(parts, "Recorder")
	}
	if mask&sinkRegistry != 0 {
		parts = append(parts, "Registry")
	}
	if mask&sinkPhases != 0 {
		parts = append(parts, "PhaseTimes")
	}
	return strings.Join(parts, "+")
}

// telemetrySinkKind classifies a call as a direct telemetry sink.
func telemetrySinkKind(info *types.Info, call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return 0
	}
	m, ok := s.Obj().(*types.Func)
	if !ok {
		return 0
	}
	switch {
	case m.Name() == "Record" && isNamedFromPkg(s.Recv(), "Recorder", "telemetry"):
		return sinkRecorder
	case isNamedFromPkg(s.Recv(), "Registry", "telemetry"):
		switch m.Name() {
		case "Add", "SetGauge", "Observe", "AddCounters", "Merge":
			return sinkRegistry
		}
	case m.Name() == "Add" && isNamedFromPkg(s.Recv(), "PhaseTimes", "telemetry"):
		return sinkPhases
	}
	return 0
}

// sinkFieldKind classifies a struct field type as a neutralizable
// telemetry handle (*telemetry.Recorder etc.).
func sinkFieldKind(t types.Type) int {
	switch {
	case isNamedFromPkg(t, "Recorder", "telemetry"):
		return sinkRecorder
	case isNamedFromPkg(t, "Registry", "telemetry"):
		return sinkRegistry
	case isNamedFromPkg(t, "PhaseTimes", "telemetry"):
		return sinkPhases
	}
	return 0
}

func runBarrierDet(pass *Pass) error {
	g := pass.CallGraph()

	// Transitive sink reach: which functions (by key) lead to a
	// telemetry sink, and of which kinds?
	sinkReach := make(map[string]int)
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		mask := 0
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				mask |= telemetrySinkKind(n.Pkg.Info, call)
			}
			return true
		})
		if mask != 0 {
			sinkReach[key] = mask
		}
	}
	// Propagate over static edges only: the graph's name-based dynamic
	// dispatch over-approximates (any one-method interface pulls in
	// every same-named method), which here would only manufacture
	// false barrier violations.
	for changed := true; changed; {
		changed = false
		for _, key := range g.Keys() {
			mask := sinkReach[key]
			for _, e := range g.Nodes[key].Out {
				if e.Dynamic {
					continue
				}
				mask |= sinkReach[e.CalleeKey]
			}
			if mask != sinkReach[key] {
				sinkReach[key] = mask
				changed = true
			}
		}
	}

	// Find every Pool.Map call site and check its worker function.
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		if n.Decl == nil || n.Decl.Body == nil || pass.InTestFile(n.Decl.Pos()) {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPoolMapCall(info, call) || len(call.Args) == 0 {
				return true
			}
			worker := resolveWorkerLit(info, n.Decl.Body, call.Args[len(call.Args)-1])
			if worker == nil {
				return true
			}
			bd := &barrierDetWorker{pass: pass, node: n, key: key, worker: worker, sinkReach: sinkReach}
			bd.check()
			return true
		})
	}
	return nil
}

// isPoolMapCall recognizes (*sched.Pool).Map method calls.
func isPoolMapCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Map" {
		return false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	return isNamedFromPkg(s.Recv(), "Pool", "sched")
}

// resolveWorkerLit resolves the worker argument to its function
// literal: either inline, or a local variable assigned a literal in
// the same enclosing body.
func resolveWorkerLit(info *types.Info, body *ast.BlockStmt, arg ast.Expr) *ast.FuncLit {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return a
	case *ast.Ident:
		v, ok := info.Uses[a].(*types.Var)
		if !ok {
			return nil
		}
		var lit *ast.FuncLit
		ast.Inspect(body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] == v || info.Uses[id] == v {
					if fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
						lit = fl
					}
				}
			}
			return true
		})
		return lit
	}
	return nil
}

type barrierDetWorker struct {
	pass      *Pass
	node      *CallNode
	key       string
	worker    *ast.FuncLit
	sinkReach map[string]int
}

// workerLocal reports whether a variable is declared inside the worker
// literal (params included) — writes to such state are task-private.
func (bd *barrierDetWorker) workerLocal(v *types.Var) bool {
	return v.Pos() >= bd.worker.Pos() && v.Pos() <= bd.worker.End()
}

func (bd *barrierDetWorker) check() {
	info := bd.node.Pkg.Info

	// Rule 1+2: walk the whole worker body (nested literals run inside
	// the task too).
	ast.Inspect(bd.worker.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if kind := telemetrySinkKind(info, m); kind != 0 {
				bd.pass.ReportAttributed(m.Pos(), bd.key, nil,
					"telemetry %s write inside a Pool.Map worker task; accumulate into the task result and flush at the serial barrier (barrierdet)",
					sinkKindNames(kind))
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				bd.checkWriteTarget(lhs)
			}
		case *ast.IncDecStmt:
			bd.checkWriteTarget(m.X)
		}
		return true
	})

	// Rule 3: calls that transitively reach a sink need a dominating
	// neutralization of their receiver. Must-analysis over the worker
	// CFG (nested literals excluded — their calls are conservatively
	// checked with the facts at the literal's definition point... see
	// checkSinkCalls).
	cfg := NewCFG(bd.worker.Body)
	transfer := func(n ast.Node, fact any) any {
		return bd.neutralizeTransfer(n, fact.(neutralFacts), nil)
	}
	res := cfg.ForwardFlow(neutralLattice{}, neutralFacts{}, transfer, nil)
	for _, b := range cfg.Blocks {
		in, ok := res.In[b].(neutralFacts)
		if !ok || isNeutralBottom(in) {
			continue
		}
		fact := in
		for _, n := range b.Nodes {
			fact = bd.neutralizeTransfer(n, fact, bd.reportSinkCall)
		}
	}
}

// checkWriteTarget flags writes to captured state (rule 2).
func (bd *barrierDetWorker) checkWriteTarget(lhs ast.Expr) {
	info := bd.node.Pkg.Info
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := bd.baseVar(t); ok && !bd.workerLocal(v) {
			bd.pass.ReportAttributed(t.Pos(), bd.key, nil,
				"write to captured variable %q inside a Pool.Map worker task (barrierdet)", v.Name())
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(t.X).(*ast.Ident); ok {
			if v, ok := bd.baseVar(base); ok && !bd.workerLocal(v) {
				bd.pass.ReportAttributed(t.Pos(), bd.key, nil,
					"write to field %s.%s of captured variable inside a Pool.Map worker task (barrierdet)",
					v.Name(), t.Sel.Name)
			}
		}
	case *ast.IndexExpr:
		base, ok := ast.Unparen(t.X).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := bd.baseVar(base)
		if !ok || bd.workerLocal(v) {
			return
		}
		if bt := info.TypeOf(t.X); bt != nil {
			if _, isMap := bt.Underlying().(*types.Map); isMap {
				bd.pass.ReportAttributed(t.Pos(), bd.key, nil,
					"write to captured map %q inside a Pool.Map worker task (barrierdet)", v.Name())
				return
			}
		}
		if !bd.indexUsesWorkerVar(t.Index) {
			bd.pass.ReportAttributed(t.Pos(), bd.key, nil,
				"write to captured slice %q outside the task's index slot inside a Pool.Map worker task (barrierdet)", v.Name())
		}
	}
}

func (bd *barrierDetWorker) baseVar(id *ast.Ident) (*types.Var, bool) {
	info := bd.node.Pkg.Info
	if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok && !v.IsField() {
		return v, true
	}
	return nil, false
}

// indexUsesWorkerVar reports whether an index expression references
// any worker-local variable — the per-index slot discipline
// (`results[i] = res`, including through nested literals capturing the
// worker's index parameter).
func (bd *barrierDetWorker) indexUsesWorkerVar(idx ast.Expr) bool {
	info := bd.node.Pkg.Info
	uses := false
	ast.Inspect(idx, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() && bd.workerLocal(v) {
				uses = true
			}
		}
		return true
	})
	return uses
}

// neutralFacts maps a worker-local variable to the bitmask of sink
// kinds neutralized on every path so far (x.Rec = nil → Recorder bit).
type neutralFacts map[*types.Var]int

var neutralBottomFacts = neutralFacts{nil: -1}

func isNeutralBottom(f neutralFacts) bool { return f[nil] == -1 }

type neutralLattice struct{}

func (neutralLattice) Bottom() any { return neutralBottomFacts }

func (neutralLattice) Join(a, b any) any {
	as, bs := a.(neutralFacts), b.(neutralFacts)
	if isNeutralBottom(as) {
		return bs
	}
	if isNeutralBottom(bs) {
		return as
	}
	out := neutralFacts{}
	for v, m := range as {
		if bm, ok := bs[v]; ok {
			if inter := m & bm; inter != 0 {
				out[v] = inter
			}
		}
	}
	return out
}

func (neutralLattice) Equal(a, b any) bool {
	as, bs := a.(neutralFacts), b.(neutralFacts)
	if len(as) != len(bs) {
		return false
	}
	for v, m := range as {
		if bs[v] != m {
			return false
		}
	}
	return true
}

// neutralizeTransfer updates neutralization facts and, when report is
// non-nil, checks sink-reaching calls against them.
func (bd *barrierDetWorker) neutralizeTransfer(n ast.Node, in neutralFacts, report func(call *ast.CallExpr, needed, have int)) neutralFacts {
	info := bd.node.Pkg.Info
	out := in
	copied := false
	set := func(v *types.Var, mask int) {
		if !copied {
			c := neutralFacts{}
			for k, m := range out {
				c[k] = m
			}
			out, copied = c, true
		}
		if mask == 0 {
			delete(out, v)
		} else {
			out[v] = mask
		}
	}

	if report != nil {
		bd.checkSinkCalls(n, out, report)
	}

	inspectShallow(n, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			switch t := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				base, ok := ast.Unparen(t.X).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := bd.baseVar(base)
				if !ok || !bd.workerLocal(v) {
					continue
				}
				kind := sinkFieldKind(info.TypeOf(t.Sel))
				if kind == 0 {
					continue
				}
				if isNilIdent(as.Rhs[i]) {
					set(v, out[v]|kind)
				} else {
					set(v, out[v]&^kind)
				}
			case *ast.Ident:
				// Rebinding the variable discards its neutralization.
				if v, ok := bd.baseVar(t); ok {
					if _, had := out[v]; had {
						set(v, 0)
					}
				}
			}
		}
		return true
	})
	return out
}

// checkSinkCalls flags calls whose callee transitively reaches a
// telemetry sink the current receiver has not neutralized.
func (bd *barrierDetWorker) checkSinkCalls(n ast.Node, facts neutralFacts, report func(call *ast.CallExpr, needed, have int)) {
	info := bd.node.Pkg.Info
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if telemetrySinkKind(info, call) != 0 {
			return true // rule 1 already reported direct sinks
		}
		key := resolveCalleeKey(info, call)
		if key == "" {
			return true
		}
		needed, ok := bd.sinkReach[key]
		if !ok || needed == 0 {
			return true
		}
		have := 0
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := bd.baseVar(base); ok && bd.workerLocal(v) {
					have = facts[v]
				}
			}
		}
		if needed&^have != 0 {
			report(call, needed, have)
		}
		return true
	})
}

func (bd *barrierDetWorker) reportSinkCall(call *ast.CallExpr, needed, have int) {
	bd.pass.ReportAttributed(call.Pos(), bd.key, nil,
		"call inside a Pool.Map worker task reaches telemetry %s without a dominating nil-out of the receiver's handle; clone the engine and neutralize it (te.Rec = nil) before the call (barrierdet)",
		sinkKindNames(needed&^have))
}
