package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NilChargeAnalyzer upgrades vclockcharge's "not a literal nil at the
// call site" to real path-sensitive nilness: a `*vclock.Account` or
// `*sched.Token` must be provably non-nil on *every* CFG path that
// reaches a charge or deref of it. The engine's discipline is to guard
// with `if e.Acct != nil { ... }` — the analyzer learns those guards
// through branch-edge refinement and flags the paths the guard misses.
//
// Facts track locals, parameters, and one-level field paths (`x.f`)
// rooted at a local. A method whose body begins by checking its
// receiver against nil (the sched.Token idiom: `if t == nil { ... }`)
// is nil-safe and never a sink; vclock.Account methods lock the
// receiver's mutex immediately, so a nil receiver is a panic and every
// call site must dominate a non-nil proof. Store-I/O account arguments
// reuse vclockcharge's aggregate-charging (framecharges) exemption.
var NilChargeAnalyzer = &Analyzer{
	Name:   "nilcharge",
	Doc:    "require *vclock.Account/*sched.Token to be non-nil on all paths reaching a charge or deref",
	Global: true,
	Run:    runNilCharge,
}

type nilFact int8

const (
	nilUnknown nilFact = iota // not tracked / no information
	nilIsNil                  // provably nil on all in-paths
	nilNonNil                 // provably non-nil on all in-paths
	nilMaybe                  // nil on at least one in-path
)

func joinNilFact(a, b nilFact) nilFact {
	if a == b {
		return a
	}
	if a == nilMaybe || b == nilMaybe {
		return nilMaybe
	}
	// One side nil, other side unknown or non-nil: a nil path exists.
	if a == nilIsNil || b == nilIsNil {
		return nilMaybe
	}
	// Unknown vs non-nil: no proof, but no nil path either.
	return nilUnknown
}

// nilPath names a tracked value: a local/param (field==nil) or a
// one-level field path rooted at one.
type nilPath struct {
	base  *types.Var
	field *types.Var
}

type nilFacts map[nilPath]nilFact

var nilBottomFacts = nilFacts{nilPath{}: -1}

type nilLattice struct{}

func (nilLattice) Bottom() any { return nilBottomFacts }

func isNilBottom(f nilFacts) bool { return f[nilPath{}] == -1 }

func (nilLattice) Join(a, b any) any {
	as, bs := a.(nilFacts), b.(nilFacts)
	if isNilBottom(as) {
		return bs
	}
	if isNilBottom(bs) {
		return as
	}
	out := nilFacts{}
	for p, f := range as {
		out[p] = joinNilFact(f, bs[p])
	}
	for p, f := range bs {
		if _, ok := as[p]; !ok {
			out[p] = joinNilFact(nilUnknown, f)
		}
	}
	// Unknown entries carry no information; drop them to keep Equal cheap.
	for p, f := range out {
		if f == nilUnknown {
			delete(out, p)
		}
	}
	return out
}

func (nilLattice) Equal(a, b any) bool {
	as, bs := a.(nilFacts), b.(nilFacts)
	if len(as) != len(bs) {
		return false
	}
	for p, f := range as {
		if bs[p] != f {
			return false
		}
	}
	return true
}

func runNilCharge(pass *Pass) error {
	g := pass.CallGraph()
	safe := nilSafeMethods(g)
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		if n.Decl == nil || n.Decl.Body == nil || pass.InTestFile(n.Decl.Pos()) {
			continue
		}
		nc := &nilChargeFunc{pass: pass, node: n, key: key, safe: safe}
		nc.check(pass.CFG(key))
		for _, lit := range collectDeclLits(n.Decl.Body) {
			nc.check(NewCFG(lit.Body))
		}
	}
	return nil
}

// nilSafeMethods scans every method on a tracked type and records the
// ones whose body checks the receiver against nil — callable on a nil
// receiver by design, like sched.Token's accessors.
func nilSafeMethods(g *CallGraph) map[string]bool {
	safe := make(map[string]bool)
	for key, n := range g.Nodes {
		d := n.Decl
		if d == nil || d.Body == nil || d.Recv == nil || len(d.Recv.List) == 0 {
			continue
		}
		names := d.Recv.List[0].Names
		if len(names) == 0 {
			continue
		}
		recv, ok := n.Pkg.Info.Defs[names[0]].(*types.Var)
		if !ok || !trackedNilPtr(recv.Type()) {
			continue
		}
		guarded := false
		ast.Inspect(d.Body, func(m ast.Node) bool {
			be, ok := m.(*ast.BinaryExpr)
			if !ok || guarded {
				return !guarded
			}
			if be.Op != token.EQL && be.Op != token.NEQ {
				return true
			}
			x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
			for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
				if id, ok := pair[0].(*ast.Ident); ok && n.Pkg.Info.Uses[id] == recv && isNilIdent(pair[1]) {
					guarded = true
				}
			}
			return true
		})
		if guarded {
			safe[key] = true
		}
	}
	return safe
}

// trackedNilPtr reports whether t is *vclock.Account or *sched.Token.
func trackedNilPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamedFromPkg(p.Elem(), "Account", "vclock") || isNamedFromPkg(p.Elem(), "Token", "sched")
}

type nilChargeFunc struct {
	pass *Pass
	node *CallNode
	key  string
	safe map[string]bool
}

func (nc *nilChargeFunc) check(c *CFG) {
	if c == nil {
		return
	}
	transfer := func(n ast.Node, fact any) any {
		return nc.apply(n, fact.(nilFacts), false)
	}
	res := c.ForwardFlow(nilLattice{}, nilFacts{}, transfer, nc.refineEdge)
	for _, b := range c.Blocks {
		in, ok := res.In[b].(nilFacts)
		if !ok || isNilBottom(in) {
			continue
		}
		fact := in
		for _, n := range b.Nodes {
			fact = nc.apply(n, fact, true)
		}
	}
}

// pathOf resolves an expression to a tracked path: a plain local/param
// identifier, or a one-level field selection rooted at one. The value
// itself need not be of a tracked type — only paths whose type is
// tracked get facts, but bases are needed for kills.
func (nc *nilChargeFunc) pathOf(e ast.Expr) (nilPath, bool) {
	info := nc.node.Pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
			return nilPath{base: v}, true
		}
		if v, ok := info.Defs[e].(*types.Var); ok && !v.IsField() {
			return nilPath{base: v}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return nilPath{}, false
		}
		bv, ok := info.Uses[base].(*types.Var)
		if !ok || bv.IsField() {
			return nilPath{}, false
		}
		s := info.Selections[e]
		if s == nil || s.Kind() != types.FieldVal || len(s.Index()) != 1 {
			return nilPath{}, false
		}
		if fv, ok := s.Obj().(*types.Var); ok {
			return nilPath{base: bv, field: fv}, true
		}
	}
	return nilPath{}, false
}

// exprFact evaluates the nilness of an expression under facts.
func (nc *nilChargeFunc) exprFact(e ast.Expr, facts nilFacts) nilFact {
	info := nc.node.Pkg.Info
	e = ast.Unparen(e)
	if isNilIdent(e) {
		return nilIsNil
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return nilNonNil // &composite / &var is never nil
	}
	if call, ok := e.(*ast.CallExpr); ok {
		key := resolveCalleeKey(info, call)
		if strings.HasSuffix(key, ".NewAccount") || strings.HasSuffix(key, ".NewToken") {
			// The constructors always allocate.
			return nilNonNil
		}
		return nilUnknown
	}
	if p, ok := nc.pathOf(e); ok {
		return facts[p]
	}
	return nilUnknown
}

// apply is the transfer function; with report=true it also flags sinks
// using the incoming facts.
func (nc *nilChargeFunc) apply(n ast.Node, in nilFacts, report bool) nilFacts {
	info := nc.node.Pkg.Info
	out := in
	copied := false
	set := func(p nilPath, f nilFact) {
		if !copied {
			c := nilFacts{}
			for k, v := range out {
				c[k] = v
			}
			out, copied = c, true
		}
		if f == nilUnknown {
			delete(out, p)
		} else {
			out[p] = f
		}
	}
	killBaseFields := func(v *types.Var) {
		for p := range out {
			if p.base == v && p.field != nil {
				set(p, nilUnknown)
			}
		}
	}
	killBase := func(v *types.Var) {
		for p := range out {
			if p.base == v {
				set(p, nilUnknown)
			}
		}
	}

	if report {
		nc.reportSinks(n, in)
	}

	// Kills: a call that receives a local by pointer (receiver or
	// argument `x` of pointer type, or `&x`) may rewrite its fields.
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		exprs := make([]ast.Expr, 0, len(call.Args)+1)
		exprs = append(exprs, call.Args...)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			exprs = append(exprs, sel.X)
		}
		for _, a := range exprs {
			switch a := ast.Unparen(a).(type) {
			case *ast.Ident:
				if v, ok := info.Uses[a].(*types.Var); ok {
					killBaseFields(v)
				}
			case *ast.UnaryExpr:
				if a.Op != token.AND {
					continue
				}
				if id, ok := ast.Unparen(a.X).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						killBase(v)
					}
				} else if p, ok := nc.pathOf(a.X); ok {
					set(p, nilUnknown)
				}
			}
		}
		return true
	})

	// Gen: assignments and declarations establish facts.
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			// Evaluate all RHS facts before applying (parallel assignment).
			rhsFacts := make([]nilFact, len(s.Rhs))
			for i := range s.Rhs {
				rhsFacts[i] = nc.exprFact(s.Rhs[i], out)
			}
			for i, lhs := range s.Lhs {
				nc.assign(lhs, rhsFacts[i], set, killBaseFields)
			}
		} else {
			// Multi-value call/comma-ok: results are unknown.
			for _, lhs := range s.Lhs {
				nc.assign(lhs, nilUnknown, set, killBaseFields)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var f nilFact
				switch {
				case i < len(vs.Values):
					f = nc.exprFact(vs.Values[i], out)
				case len(vs.Values) == 0 && vs.Type != nil:
					// `var x *Account` zero value is nil.
					if tv, ok := info.Defs[name].(*types.Var); ok && trackedNilPtr(tv.Type()) {
						f = nilIsNil
					}
				}
				if v, ok := info.Defs[name].(*types.Var); ok && f != nilUnknown {
					set(nilPath{base: v}, f)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if p, ok := nc.pathOf(e); ok {
				set(p, nilUnknown)
			}
		}
	}
	return out
}

// assign updates the fact of a tracked LHS path; assigning to a base
// var also invalidates its stale field paths.
func (nc *nilChargeFunc) assign(lhs ast.Expr, f nilFact, set func(nilPath, nilFact), killFields func(*types.Var)) {
	p, ok := nc.pathOf(lhs)
	if !ok {
		return
	}
	t := nc.node.Pkg.Info.TypeOf(lhs)
	if p.field == nil {
		killFields(p.base)
		if t != nil && trackedNilPtr(t) {
			set(p, f)
		} else {
			set(p, nilUnknown)
		}
		return
	}
	if t != nil && trackedNilPtr(t) {
		set(p, f)
	}
}

// refineEdge narrows facts along the true/false edges of nil checks,
// including through &&, || and ! composition.
func (nc *nilChargeFunc) refineEdge(cond ast.Expr, branch bool, fact any) any {
	facts, ok := fact.(nilFacts)
	if !ok || isNilBottom(facts) {
		return fact
	}
	out := facts
	copied := false
	set := func(p nilPath, f nilFact) {
		if !copied {
			c := nilFacts{}
			for k, v := range out {
				c[k] = v
			}
			out, copied = c, true
		}
		out[p] = f
	}
	var walk func(e ast.Expr, b bool)
	walk = func(e ast.Expr, b bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				walk(e.X, !b)
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LAND:
				if b {
					walk(e.X, true)
					walk(e.Y, true)
				}
			case token.LOR:
				if !b {
					walk(e.X, false)
					walk(e.Y, false)
				}
			case token.EQL, token.NEQ:
				x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
				var pathExpr ast.Expr
				if isNilIdent(y) {
					pathExpr = x
				} else if isNilIdent(x) {
					pathExpr = y
				} else {
					return
				}
				p, ok := nc.pathOf(pathExpr)
				if !ok {
					return
				}
				t := nc.node.Pkg.Info.TypeOf(pathExpr)
				if t == nil || !trackedNilPtr(t) {
					return
				}
				isNil := (e.Op == token.EQL) == b
				if isNil {
					set(p, nilIsNil)
				} else {
					set(p, nilNonNil)
				}
			}
		}
	}
	walk(cond, branch)
	return out
}

// reportSinks flags derefs of possibly-nil tracked values under the
// incoming facts: method calls on non-nil-safe methods, and store-I/O
// account arguments outside aggregate-charging frames.
func (nc *nilChargeFunc) reportSinks(n ast.Node, facts nilFacts) {
	info := nc.node.Pkg.Info
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		mfn, ok := s.Obj().(*types.Func)
		if !ok {
			return true
		}
		// Sink 1: method call on a possibly-nil tracked receiver.
		if trackedNilPtr(s.Recv()) || trackedNilPtrElem(s.Recv()) {
			key := FuncKey(mfn)
			if !nc.safe[key] {
				if f := nc.recvFact(sel.X, facts); f == nilIsNil || f == nilMaybe {
					nc.pass.ReportAttributed(call.Pos(), nc.key, nil,
						"%s called on %s %s receiver; guard the path with a nil check (nilcharge)",
						mfn.Name(), nilFactName(f), typeShort(s.Recv()))
				}
			}
		}
		// Sink 2: store I/O with a possibly-nil *vclock.Account argument.
		if storeIOMethods[mfn.Name()] && isNamedFromPkg(s.Recv(), "Store", "simio") && !framecharges(nc.node) {
			sig, ok := mfn.Type().(*types.Signature)
			if !ok {
				return true
			}
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if !trackedNilPtr(sig.Params().At(i).Type()) {
					continue
				}
				if isNilIdent(ast.Unparen(call.Args[i])) {
					// A literal nil argument is visible intent
					// ("no accounting here"), like `_ =` for errors;
					// the defect is a *variable* nil on some path.
					continue
				}
				if f := nc.exprFact(call.Args[i], facts); f == nilIsNil || f == nilMaybe {
					nc.pass.ReportAttributed(call.Args[i].Pos(), nc.key, nil,
						"%s account argument to %s; guard the path or pass a literal nil for unaccounted I/O (nilcharge)",
						nilFactName(f), mfn.Name())
				}
			}
		}
		return true
	})
}

// recvFact evaluates the receiver expression's nilness.
func (nc *nilChargeFunc) recvFact(e ast.Expr, facts nilFacts) nilFact {
	return nc.exprFact(e, facts)
}

// trackedNilPtrElem also accepts the bare named type (method sets of
// *T include value-receiver methods looked up through T).
func trackedNilPtrElem(t types.Type) bool {
	return isNamedFromPkg(t, "Account", "vclock") || isNamedFromPkg(t, "Token", "sched")
}

func nilFactName(f nilFact) string {
	switch f {
	case nilIsNil:
		return "nil"
	case nilMaybe:
		return "possibly-nil"
	}
	return "unknown"
}

func typeShort(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if n.Obj().Pkg() != nil {
			return shortPkg(n.Obj().Pkg().Path()) + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}
