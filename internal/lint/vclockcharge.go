package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// VclockChargeAnalyzer enforces the cost-accounting invariant behind
// every number in EXPERIMENTS.md: all storage traffic on a request path
// is charged to a *vclock.Account. The evaluation IS the cost model, so
// an uncharged simio read silently deflates the reported cost of a
// strategy without failing any test.
//
// The analyzer walks the call graph from the request-path roots
// (exec.Evaluate* and server.handle*) and flags every reachable call to
// a simio.Store I/O entry point (Read, ReadAll, ReadRanges, Write,
// WriteOwned, Migrate) that passes a nil *vclock.Account, unless the
// enclosing function is itself a charge-bearing frame (it calls
// Account.Charge or Account.ChargeCost, i.e. it reads uncharged and
// aggregate-charges locally — the sanctioned batch pattern in
// exec.Engine's full-scan preload).
//
// Calls passing a non-nil account are charged inside the Store and need
// nothing further. Uncharged reads outside request paths (the
// ground-truth oracle, offline baselines, tests) are intentionally out
// of scope.
var VclockChargeAnalyzer = &Analyzer{
	Name:   "vclockcharge",
	Doc:    "forbid request-path simio I/O that is not charged to a vclock.Account",
	Global: true,
	Run:    runVclockCharge,
}

// storeIOMethods are the simio.Store entry points that move bytes.
var storeIOMethods = map[string]bool{
	"Read": true, "ReadAll": true, "ReadRanges": true,
	"Write": true, "WriteOwned": true, "Migrate": true,
}

func runVclockCharge(pass *Pass) error {
	g := pass.CallGraph()

	// Roots: the functions a client request enters through.
	var roots []string
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		name := n.Fn.Name()
		switch {
		case pkgPathHasSuffix(n.Pkg.PkgPath, "exec") && strings.HasPrefix(name, "Evaluate"):
			roots = append(roots, key)
		case pkgPathHasSuffix(n.Pkg.PkgPath, "server") && strings.HasPrefix(name, "handle"):
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)
	attr := g.RootAttribution(roots)

	for _, key := range g.Keys() {
		root, reachable := attr[key]
		if !reachable {
			continue
		}
		n := g.Nodes[key]
		if n.Decl.Body == nil || framecharges(n) {
			continue
		}
		for _, sink := range storeIOSinks(n) {
			pass.Reportf(sink.pos,
				"uncharged simio I/O on a request path: %s called with a nil *vclock.Account in %s (reachable from %s); pass the account or aggregate-charge in this frame",
				sink.what, ShortKey(key), ShortKey(root))
		}
	}
	return nil
}

// pkgPathHasSuffix matches a package by its last import-path element, so
// testdata fixtures (path "vclockcharge/exec") are treated like the real
// internal/exec.
func pkgPathHasSuffix(pkgPath, last string) bool {
	return pkgPath == last || strings.HasSuffix(pkgPath, "/"+last)
}

// framecharges reports whether the function body calls Charge or
// ChargeCost on a vclock.Account — the marker of an aggregate-charging
// frame.
func framecharges(n *CallNode) bool {
	info := n.Pkg.Info
	charges := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || charges {
			return !charges
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		m := s.Obj().(*types.Func)
		if m.Name() != "Charge" && m.Name() != "ChargeCost" {
			return true
		}
		if isNamedFromPkg(s.Recv(), "Account", "vclock") {
			charges = true
		}
		return true
	})
	return charges
}

type ioSink struct {
	pos  token.Pos
	what string // e.g. "Store.ReadAll"
}

// storeIOSinks returns the simio.Store I/O calls in n's body whose
// account argument is the nil literal.
func storeIOSinks(n *CallNode) []ioSink {
	info := n.Pkg.Info
	var sinks []ioSink
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		m := s.Obj().(*types.Func)
		if !storeIOMethods[m.Name()] || !isNamedFromPkg(s.Recv(), "Store", "simio") {
			return true
		}
		// Find the *Account parameter and check the matching argument.
		sig := m.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			pt := sig.Params().At(i).Type()
			if ptr, ok := pt.(*types.Pointer); ok && isNamedFromPkg(ptr.Elem(), "Account", "vclock") {
				if tv, ok := info.Types[call.Args[i]]; ok && tv.IsNil() {
					sinks = append(sinks, ioSink{call.Pos(), "Store." + m.Name()})
				}
				break
			}
		}
		return true
	})
	sort.Slice(sinks, func(i, j int) bool { return sinks[i].pos < sinks[j].pos })
	return sinks
}

// isNamedFromPkg reports whether t (possibly behind a pointer) is a
// named type with the given name whose package import path ends in
// pkgLast.
func isNamedFromPkg(t types.Type, name, pkgLast string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != name || n.Obj().Pkg() == nil {
		return false
	}
	return pkgPathHasSuffix(n.Obj().Pkg().Path(), pkgLast)
}
